// Package seqindex implements the large-scale sequence-search indexes of
// §3.2: the Sequence Bloom Tree (Solomon & Kingsford) — a binary tree of
// Bloom filters answering Θ-fraction experiment-discovery queries
// approximately — and a Mantis-style inverted index — an exact counting-
// quotient-filter maplet mapping each k-mer to a colour class (a set of
// experiments), which the tutorial describes as "smaller, faster, and
// exact compared to the SBT".
package seqindex

import (
	"math/bits"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/quotient"
)

// SBT is a sequence Bloom tree over a fixed set of experiments.
type SBT struct {
	nodes      []sbtNode // heap layout: node i has children 2i+1, 2i+2
	numExp     int
	bloomBits  float64
	filterSize int
	// Probes counts Bloom membership probes (query CPU-cost proxy).
	Probes int
}

type sbtNode struct {
	filter *bloom.Filter
	exp    int // experiment id at a leaf; -1 for internal/empty
}

// NewSBT builds an SBT over experiments, each given as its set of
// canonical k-mer codes, with bitsPerKmer Bloom budget per distinct
// k-mer at the leaves (internal nodes hold unions and are sized for
// them).
func NewSBT(experiments [][]uint64, bitsPerKmer float64) *SBT {
	numLeaves := 1
	for numLeaves < len(experiments) {
		numLeaves *= 2
	}
	t := &SBT{
		nodes:     make([]sbtNode, 2*numLeaves-1),
		numExp:    len(experiments),
		bloomBits: bitsPerKmer,
	}
	for i := range t.nodes {
		t.nodes[i].exp = -1
	}
	// Build bottom-up: leaves first, then unions.
	sets := make([]map[uint64]struct{}, len(t.nodes))
	for e, codes := range experiments {
		idx := numLeaves - 1 + e
		set := make(map[uint64]struct{}, len(codes))
		for _, c := range codes {
			set[c] = struct{}{}
		}
		sets[idx] = set
		t.nodes[idx].exp = e
	}
	for i := len(t.nodes) - 1; i > 0; i -= 2 {
		parent := (i - 1) / 2
		union := map[uint64]struct{}{}
		for _, child := range []int{i - 1, i} {
			for c := range sets[child] {
				union[c] = struct{}{}
			}
		}
		if len(union) > 0 {
			sets[parent] = union
		}
	}
	for i, set := range sets {
		if set == nil {
			continue
		}
		f := bloom.NewBitsSeeded(len(set), bitsPerKmer, 0x5B7+uint64(i)*0x9E3779B97F4A7C15)
		for c := range set {
			f.Insert(c)
		}
		t.nodes[i].filter = f
		t.filterSize += f.SizeBits()
	}
	return t
}

// Query returns the experiments containing at least theta of the query
// k-mers, by pruning descent: a subtree is abandoned as soon as its
// union filter matches fewer than theta·|q| k-mers. Bloom false
// positives can inflate counts, so results may include extra experiments
// (the SBT's approximation) but never miss one.
func (t *SBT) Query(codes []uint64, theta float64) []int {
	need := int(theta * float64(len(codes)))
	if need < 1 {
		need = 1
	}
	var out []int
	t.descend(0, codes, need, &out)
	return out
}

func (t *SBT) descend(node int, codes []uint64, need int, out *[]int) {
	if node >= len(t.nodes) || t.nodes[node].filter == nil {
		return
	}
	hits := 0
	remaining := len(codes)
	for _, c := range codes {
		t.Probes++
		if t.nodes[node].filter.Contains(c) {
			hits++
		}
		remaining--
		if hits >= need {
			break // enough evidence to descend
		}
		if hits+remaining < need {
			return // cannot possibly reach the threshold
		}
	}
	if hits < need {
		return
	}
	if t.nodes[node].exp >= 0 {
		*out = append(*out, t.nodes[node].exp)
		return
	}
	t.descend(2*node+1, codes, need, out)
	t.descend(2*node+2, codes, need, out)
}

// SizeBits returns the total footprint of all node filters.
func (t *SBT) SizeBits() int { return t.filterSize }

// Mantis is an exact inverted index: an identity-fingerprint maplet maps
// each k-mer to a colour-class id, and the colour table maps class ids to
// experiment bitvectors. Colour classes are multi-word bitvectors, so the
// experiment count is unbounded (Mantis proper indexed 40K experiments;
// it additionally compresses the colour table, which we skip and charge
// at raw width).
type Mantis struct {
	maplet  *quotient.Maplet
	classes [][]uint64 // colour-class bitvectors, numExp bits each
	classOf map[string]uint64
	numExp  int
	words   int
	kBits   uint
	// Probes counts maplet lookups (query CPU-cost proxy).
	Probes int
}

// mixer spreads k-mer codes across quotients bijectively (odd multiplier
// modulo 2^kBits), preserving exactness.
const mixer = 0x9E3779B97F4A7C15

// NewMantis builds the index over experiments (each a set of canonical
// k-mer codes of the given k).
func NewMantis(k int, experiments [][]uint64) *Mantis {
	kBits := uint(2 * k)
	words := (len(experiments) + 63) / 64
	if words == 0 {
		words = 1
	}
	// Gather each k-mer's experiment bitvector.
	colour := map[uint64][]uint64{}
	for e, codes := range experiments {
		for _, c := range codes {
			bv := colour[c]
			if bv == nil {
				bv = make([]uint64, words)
				colour[c] = bv
			}
			bv[e>>6] |= 1 << uint(e&63)
		}
	}
	m := &Mantis{
		classOf: make(map[string]uint64),
		numExp:  len(experiments),
		words:   words,
		kBits:   kBits,
	}
	// Assign class ids to distinct bitvectors.
	for _, bv := range colour {
		key := bvKey(bv)
		if _, ok := m.classOf[key]; !ok {
			m.classOf[key] = uint64(len(m.classes))
			m.classes = append(m.classes, bv)
		}
	}
	// Size the maplet: identity fingerprints covering the full code.
	q := uint(1)
	for float64(uint64(1)<<q)*0.9 < float64(len(colour))*1.1 {
		q++
	}
	if q >= kBits-1 {
		q = kBits - 2
	}
	vBits := uint(bits.Len(uint(len(m.classes))))
	if vBits < 1 {
		vBits = 1
	}
	m.maplet = quotient.NewMapletIdentity(q, kBits-q, vBits)
	for c, bv := range colour {
		if err := m.maplet.Put(m.mix(c), m.classOf[bvKey(bv)]); err != nil {
			panic("seqindex: mantis maplet full")
		}
	}
	return m
}

// bvKey serializes a bitvector for map indexing.
func bvKey(bv []uint64) string {
	b := make([]byte, len(bv)*8)
	for i, w := range bv {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * j))
		}
	}
	return string(b)
}

func (m *Mantis) mix(code uint64) uint64 {
	return (code * mixer) & (uint64(1)<<m.kBits - 1)
}

// Query returns the experiments containing at least theta of the query
// k-mers. Exact: no false positives, no misses.
func (m *Mantis) Query(codes []uint64, theta float64) []int {
	need := int(theta * float64(len(codes)))
	if need < 1 {
		need = 1
	}
	counts := make([]int, m.numExp)
	for _, c := range codes {
		m.Probes++
		for _, classID := range m.maplet.Get(m.mix(c)) {
			for wi, w := range m.classes[classID] {
				for w != 0 {
					e := wi<<6 + bits.TrailingZeros64(w)
					counts[e]++
					w &= w - 1
				}
			}
		}
	}
	var out []int
	for e, c := range counts {
		if c >= need {
			out = append(out, e)
		}
	}
	return out
}

// SizeBits returns the maplet plus colour-table footprint (numExp bits
// per class, uncompressed).
func (m *Mantis) SizeBits() int {
	return m.maplet.SizeBits() + len(m.classes)*m.words*64
}
