package seqindex

import (
	"sort"
	"testing"

	"beyondbloom/internal/kmer"
	"beyondbloom/internal/workload"
)

const testK = 15

// makeExperiments builds numExp synthetic experiments; experiments share
// a common genome backbone plus private mutations so queries hit subsets.
func makeExperiments(numExp, genomeLen int, seed int64) ([][]uint64, [][]byte) {
	genomes := make([][]byte, numExp)
	sets := make([][]uint64, numExp)
	backbone := workload.DNA(genomeLen, seed)
	for e := 0; e < numExp; e++ {
		g := make([]byte, genomeLen)
		copy(g, backbone)
		private := workload.DNA(genomeLen/4, seed+int64(e)+1)
		g = append(g, private...)
		genomes[e] = g
		set := map[uint64]struct{}{}
		kmer.Iterate(g, testK, func(code uint64) { set[code] = struct{}{} })
		codes := make([]uint64, 0, len(set))
		for c := range set {
			codes = append(codes, c)
		}
		sets[e] = codes
	}
	return sets, genomes
}

func queryCodes(g []byte, from, length int) []uint64 {
	var out []uint64
	kmer.Iterate(g[from:from+length], testK, func(code uint64) { out = append(out, code) })
	return out
}

// truth computes the exact experiment list for a query at threshold.
func truth(sets [][]uint64, q []uint64, theta float64) []int {
	need := int(theta * float64(len(q)))
	if need < 1 {
		need = 1
	}
	var out []int
	for e, codes := range sets {
		set := map[uint64]struct{}{}
		for _, c := range codes {
			set[c] = struct{}{}
		}
		hits := 0
		for _, c := range q {
			if _, ok := set[c]; ok {
				hits++
			}
		}
		if hits >= need {
			out = append(out, e)
		}
	}
	return out
}

func TestSBTFindsAllTrueExperiments(t *testing.T) {
	sets, genomes := makeExperiments(16, 4000, 1)
	sbt := NewSBT(sets, 12)
	for e := 0; e < 16; e += 3 {
		q := queryCodes(genomes[e], len(genomes[e])-800, 600) // private region
		want := truth(sets, q, 0.8)
		got := sbt.Query(q, 0.8)
		// SBT may report extras (approximate) but must include every true
		// experiment.
		gotSet := map[int]bool{}
		for _, g := range got {
			gotSet[g] = true
		}
		for _, w := range want {
			if !gotSet[w] {
				t.Fatalf("SBT missed true experiment %d (query from %d)", w, e)
			}
		}
	}
}

func TestSBTSharedRegionHitsAll(t *testing.T) {
	sets, genomes := makeExperiments(8, 4000, 3)
	sbt := NewSBT(sets, 12)
	q := queryCodes(genomes[0], 100, 600) // backbone region: in all
	got := sbt.Query(q, 0.8)
	if len(got) != 8 {
		t.Fatalf("backbone query matched %d/8 experiments", len(got))
	}
}

func TestMantisExact(t *testing.T) {
	sets, genomes := makeExperiments(16, 4000, 5)
	m := NewMantis(testK, sets)
	for e := 0; e < 16; e += 2 {
		for _, region := range []int{100, len(genomes[e]) - 800} {
			q := queryCodes(genomes[e], region, 600)
			want := truth(sets, q, 0.8)
			got := m.Query(q, 0.8)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("Mantis not exact: got %v want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Mantis not exact: got %v want %v", got, want)
				}
			}
		}
	}
}

func TestMantisSmallerThanSBT(t *testing.T) {
	// The tutorial: "Mantis proved to be smaller, faster, and exact
	// compared to the SBT".
	sets, _ := makeExperiments(32, 4000, 7)
	sbt := NewSBT(sets, 12)
	m := NewMantis(testK, sets)
	if m.SizeBits() >= sbt.SizeBits() {
		t.Errorf("Mantis %d bits >= SBT %d bits", m.SizeBits(), sbt.SizeBits())
	}
}

func TestSBTPruning(t *testing.T) {
	sets, _ := makeExperiments(32, 4000, 9)
	sbt := NewSBT(sets, 12)
	// A query of k-mers in no experiment should prune at the root:
	// probes ≈ (1-θ)|q| at one node, not |q|·nodes.
	foreign := workload.DNA(1000, 999)
	var q []uint64
	kmer.Iterate(foreign, testK, func(c uint64) { q = append(q, c) })
	sbt.Probes = 0
	if got := sbt.Query(q, 0.8); len(got) != 0 {
		t.Logf("foreign query matched %d experiments (Bloom noise)", len(got))
	}
	if sbt.Probes > 2*len(q) {
		t.Errorf("root pruning failed: %d probes for %d k-mers", sbt.Probes, len(q))
	}
}

func TestMantisRejectsForeign(t *testing.T) {
	sets, _ := makeExperiments(8, 3000, 11)
	m := NewMantis(testK, sets)
	foreign := workload.DNA(1000, 888)
	var q []uint64
	kmer.Iterate(foreign, testK, func(c uint64) { q = append(q, c) })
	if got := m.Query(q, 0.5); len(got) != 0 {
		t.Fatalf("Mantis (exact) matched foreign query: %v", got)
	}
}

func TestMantisBeyond64Experiments(t *testing.T) {
	// Multi-word colour classes: more experiments than one bitvector word.
	sets, genomes := makeExperiments(100, 1500, 21)
	m := NewMantis(testK, sets)
	for _, e := range []int{0, 64, 65, 99} {
		q := queryCodes(genomes[e], len(genomes[e])-500, 400)
		want := truth(sets, q, 0.8)
		got := m.Query(q, 0.8)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("exp %d: got %v want %v", e, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("exp %d: got %v want %v", e, got, want)
			}
		}
	}
}
