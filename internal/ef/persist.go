package ef

import (
	"io"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/codec"
)

// WriteTo serializes the sequence: one codec frame with the scalar
// geometry, followed by the nested frames of the low-bits array (when
// present) and the high-bits vector. The rank/select directory is
// derived state and is rebuilt on load rather than stored. It
// implements io.WriterTo.
func (s *Sequence) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	e.U64(uint64(s.n))
	e.U64(s.universe)
	e.U8(uint8(s.lowBits))
	e.Bool(s.low != nil)
	if s.low != nil {
		if _, err := s.low.WriteTo(&e); err != nil {
			return 0, err
		}
	}
	if _, err := s.high.WriteTo(&e); err != nil {
		return 0, err
	}
	return codec.WriteFrame(w, codec.KindSequence, e.Bytes())
}

// ReadFrom replaces the sequence's contents with a frame written by
// WriteTo, validating geometry and rebuilding the rank/select
// directory. It implements io.ReaderFrom; on error the receiver is
// left unchanged.
func (s *Sequence) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, codec.KindSequence)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	n := d.U64()
	universe := d.U64()
	lowBits := uint(d.U8())
	hasLow := d.Bool()
	var low *bitvec.Packed
	if d.Err() == nil && hasLow {
		low = &bitvec.Packed{}
		if _, err := low.ReadFrom(d); err != nil {
			return 0, err
		}
	}
	high := &bitvec.Vector{}
	if d.Err() == nil {
		if _, err := high.ReadFrom(d); err != nil {
			return 0, err
		}
	}
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if n > uint64(codec.MaxPayload)*8 || universe == 0 {
		return 0, d.Corruptf("ef: bad geometry (n=%d universe=%d)", n, universe)
	}
	if hasLow != (lowBits > 0) {
		return 0, d.Corruptf("ef: low array presence disagrees with lowBits=%d", lowBits)
	}
	if hasLow && (low.Len() != int(n) || low.Width() != lowBits) {
		return 0, d.Corruptf("ef: low array %d×%d, want %d×%d", low.Len(), low.Width(), n, lowBits)
	}
	rs := bitvec.NewRankSelect(high)
	if rs.Ones() != int(n) {
		return 0, d.Corruptf("ef: high vector has %d ones, want %d", rs.Ones(), n)
	}
	s.n = int(n)
	s.universe = universe
	s.lowBits = lowBits
	s.low = low
	s.high = high
	s.highRS = rs
	return int64(codec.HeaderSize + len(payload)), nil
}
