package ef

import (
	"sort"
	"testing"
)

// FuzzRoundTripAndSearch encodes arbitrary monotone sequences and checks
// access, successor, and range emptiness against the plain slice.
func FuzzRoundTripAndSearch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200})
	f.Add([]byte{0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]uint64, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			vals = append(vals, uint64(raw[i])<<8|uint64(raw[i+1]))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		const universe = 1 << 16
		s := New(vals, universe)
		for i, v := range vals {
			if got := s.Get(i); got != v {
				t.Fatalf("Get(%d) = %d, want %d", i, got, v)
			}
		}
		naiveSucc := func(x uint64) int {
			return sort.Search(len(vals), func(i int) bool { return vals[i] >= x })
		}
		// Probe around every value plus fixed points.
		probes := []uint64{0, universe - 1, universe / 2}
		for _, v := range vals {
			probes = append(probes, v)
			if v > 0 {
				probes = append(probes, v-1)
			}
			if v+1 < universe {
				probes = append(probes, v+1)
			}
		}
		for _, x := range probes {
			if got, want := s.SuccessorIndex(x), naiveSucc(x); got != want {
				t.Fatalf("SuccessorIndex(%d) = %d, want %d (vals %v)", x, got, want, vals)
			}
		}
		for i := 0; i+1 < len(probes); i += 2 {
			a, b := probes[i], probes[i+1]
			if a > b {
				a, b = b, a
			}
			j := naiveSucc(a)
			wantEmpty := j >= len(vals) || vals[j] > b
			if got := s.RangeEmpty(a, b); got != wantEmpty {
				t.Fatalf("RangeEmpty(%d,%d) = %v, want %v", a, b, got, wantEmpty)
			}
		}
	})
}
