// Package ef implements the Elias–Fano encoding of monotone integer
// sequences. Given n non-decreasing values in a universe [0, u), it stores
// them in n*ceil(log2(u/n)) + 2n + o(n) bits while supporting O(1) access
// by rank and efficient predecessor / range-emptiness queries.
//
// Grafite stores sorted hash codes in an Elias–Fano sequence and answers
// range emptiness by checking whether any code falls inside the query's
// image; SNARF stores the positions of set bits of its sparse bit array
// the same way.
package ef

import (
	"math/bits"
	"sort"

	"beyondbloom/internal/bitvec"
)

// Sequence is an immutable Elias–Fano encoded monotone sequence.
type Sequence struct {
	n        int
	universe uint64
	low      *bitvec.Packed // n low halves, lowBits wide (nil if lowBits==0)
	lowBits  uint
	high     *bitvec.Vector     // unary-coded high halves
	highRS   *bitvec.RankSelect // select1 for access, select0/rank for search
}

// New encodes vals, which must be non-decreasing and < universe.
// universe must be at least 1. An empty sequence is allowed.
func New(vals []uint64, universe uint64) *Sequence {
	if universe == 0 {
		universe = 1
	}
	n := len(vals)
	var lowBits uint
	if n > 0 && universe > uint64(n) {
		lowBits = uint(bits.Len64(universe/uint64(n) - 1))
	}

	s := &Sequence{n: n, universe: universe, lowBits: lowBits}
	if lowBits > 0 {
		s.low = bitvec.NewPacked(n, lowBits)
	}
	// High part: for each value, its top bits h(i) = v>>lowBits are
	// encoded in unary as a bit vector with a 1 for each element and a 0
	// for each increment of the high value: position of the i-th 1 is
	// h(i) + i.
	maxHigh := 0
	if n > 0 {
		maxHigh = int((vals[n-1]) >> lowBits)
	}
	s.high = bitvec.New(maxHigh + n + 1)
	var prev uint64
	for i, v := range vals {
		if v < prev {
			panic("ef: values not monotone")
		}
		if v >= universe {
			panic("ef: value out of universe")
		}
		prev = v
		if lowBits > 0 {
			s.low.Set(i, v&((1<<lowBits)-1))
		}
		s.high.Set(int(v>>lowBits) + i)
	}
	s.highRS = bitvec.NewRankSelect(s.high)
	return s
}

// Len returns the number of encoded values.
func (s *Sequence) Len() int { return s.n }

// Universe returns the exclusive upper bound given at encode time.
func (s *Sequence) Universe() uint64 { return s.universe }

// Get returns the i-th value (0-based).
func (s *Sequence) Get(i int) uint64 {
	pos := s.highRS.Select1(i)
	hi := uint64(pos - i)
	var lo uint64
	if s.lowBits > 0 {
		lo = s.low.Get(i)
	}
	return hi<<s.lowBits | lo
}

// SuccessorIndex returns the smallest index i with Get(i) >= x, or Len()
// if all values are smaller.
func (s *Sequence) SuccessorIndex(x uint64) int {
	if s.n == 0 {
		return 0
	}
	hx := int(x >> s.lowBits)
	// Elements with high part < hx are all before the candidate region.
	// Rank of ones before the zero that terminates high bucket hx-1:
	// the number of elements with high < hx is Rank1(Select0(hx-1)) for
	// hx > 0 (the hx-th zero, 0-based index hx-1, closes bucket hx-1).
	var lo int
	if hx > 0 {
		zeros := s.high.Len() - s.highRS.Ones()
		if hx-1 >= zeros {
			// x's high part is beyond every encoded bucket.
			return s.n
		}
		lo = s.highRS.Rank1(s.highRS.Select0(hx - 1))
	}
	// Binary search within the remaining tail for the first value >= x.
	hi := s.n
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Get(mid) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RangeEmpty reports whether the closed interval [a, b] contains none of
// the encoded values.
func (s *Sequence) RangeEmpty(a, b uint64) bool {
	if a > b {
		return true
	}
	i := s.SuccessorIndex(a)
	return i >= s.n || s.Get(i) > b
}

// Contains reports whether x is one of the encoded values.
func (s *Sequence) Contains(x uint64) bool {
	i := s.SuccessorIndex(x)
	return i < s.n && s.Get(i) == x
}

// SizeBits returns the footprint of the encoding in bits (payload plus
// the rank/select directory).
func (s *Sequence) SizeBits() int {
	bitsTotal := s.high.SizeBits() + s.highRS.SizeBits()
	if s.low != nil {
		bitsTotal += s.low.SizeBits()
	}
	return bitsTotal
}

// FromUnsorted is a convenience constructor that copies, sorts, and
// encodes vals (duplicates are kept).
func FromUnsorted(vals []uint64, universe uint64) *Sequence {
	cp := make([]uint64, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return New(cp, universe)
}
