package ef

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randSorted(rng *rand.Rand, n int, universe uint64) []uint64 {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() % universe
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func TestGetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 100, 5000} {
		for _, u := range []uint64{1, 10, 1 << 20, 1 << 62} {
			vals := randSorted(rng, n, u)
			s := New(vals, u)
			if s.Len() != n {
				t.Fatalf("Len=%d want %d", s.Len(), n)
			}
			for i, want := range vals {
				if got := s.Get(i); got != want {
					t.Fatalf("n=%d u=%d: Get(%d)=%d want %d", n, u, i, got, want)
				}
			}
		}
	}
}

func TestSuccessorIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const u = 1 << 30
	vals := randSorted(rng, 2000, u)
	s := New(vals, u)
	naive := func(x uint64) int {
		return sort.Search(len(vals), func(i int) bool { return vals[i] >= x })
	}
	// Probe encoded values themselves, their neighbours, and randoms.
	probes := []uint64{0, u - 1}
	for _, v := range vals[:200] {
		probes = append(probes, v)
		if v > 0 {
			probes = append(probes, v-1)
		}
		probes = append(probes, v+1)
	}
	for i := 0; i < 2000; i++ {
		probes = append(probes, rng.Uint64()%u)
	}
	for _, x := range probes {
		if got, want := s.SuccessorIndex(x), naive(x); got != want {
			t.Fatalf("SuccessorIndex(%d)=%d want %d", x, got, want)
		}
	}
}

func TestRangeEmptyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const u = 1 << 24
	vals := randSorted(rng, 500, u)
	s := New(vals, u)
	inSet := map[uint64]bool{}
	for _, v := range vals {
		inSet[v] = true
	}
	naiveEmpty := func(a, b uint64) bool {
		i := sort.Search(len(vals), func(i int) bool { return vals[i] >= a })
		return i >= len(vals) || vals[i] > b
	}
	for i := 0; i < 5000; i++ {
		a := rng.Uint64() % u
		b := a + rng.Uint64()%1024
		if b >= u {
			b = u - 1
		}
		if got, want := s.RangeEmpty(a, b), naiveEmpty(a, b); got != want {
			t.Fatalf("RangeEmpty(%d,%d)=%v want %v", a, b, got, want)
		}
	}
	// Inverted interval is empty by definition.
	if !s.RangeEmpty(10, 5) {
		t.Fatal("inverted interval should be empty")
	}
}

func TestContains(t *testing.T) {
	vals := []uint64{3, 3, 7, 100, 100000}
	s := New(vals, 1<<20)
	for _, v := range vals {
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 4, 99, 101, 99999, 100001} {
		if s.Contains(v) {
			t.Fatalf("Contains(%d) = true", v)
		}
	}
}

func TestDuplicatesAndDenseSequences(t *testing.T) {
	// Dense: universe == n, lowBits == 0 path.
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i)
	}
	s := New(vals, 100)
	for i := range vals {
		if s.Get(i) != uint64(i) {
			t.Fatalf("dense Get(%d) wrong", i)
		}
	}
	// All-equal values.
	same := []uint64{42, 42, 42, 42}
	s2 := New(same, 1000)
	for i := range same {
		if s2.Get(i) != 42 {
			t.Fatal("duplicate encode broken")
		}
	}
	if s2.SuccessorIndex(42) != 0 || s2.SuccessorIndex(43) != 4 {
		t.Fatal("successor over duplicates broken")
	}
}

func TestNonMonotonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-monotone input must panic")
		}
	}()
	New([]uint64{5, 3}, 10)
}

func TestOutOfUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-universe input must panic")
		}
	}()
	New([]uint64{5}, 5)
}

func TestFromUnsorted(t *testing.T) {
	s := FromUnsorted([]uint64{9, 1, 5, 5, 0}, 10)
	want := []uint64{0, 1, 5, 5, 9}
	for i, w := range want {
		if s.Get(i) != w {
			t.Fatalf("Get(%d)=%d want %d", i, s.Get(i), w)
		}
	}
}

func TestSpaceNearOptimal(t *testing.T) {
	// Elias-Fano should use about log2(u/n) + 2 bits/element plus the
	// rank directory. With our 32-bit-per-word directory, allow 4x slack;
	// mainly this guards against accidental blowups.
	rng := rand.New(rand.NewSource(3))
	n := 10000
	u := uint64(1 << 40)
	s := New(randSorted(rng, n, u), u)
	perElem := float64(s.SizeBits()) / float64(n)
	if perElem > 4*(40-13+2) {
		t.Fatalf("EF footprint %f bits/elem unexpectedly large", perElem)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := make([]uint64, len(raw))
		for i, r := range raw {
			vals[i] = uint64(r)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := New(vals, 1<<32)
		for i, v := range vals {
			if s.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSuccessorIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const u = 1 << 40
	s := New(randSorted(rng, 1<<20, u), u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SuccessorIndex(uint64(i) * 0x9E3779B97F4A7C15 % u)
	}
}
