package ef

import (
	"bytes"
	"errors"
	"testing"

	"beyondbloom/internal/codec"
)

func TestSequenceRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		vals     []uint64
		universe uint64
	}{
		{"empty", nil, 1000},
		{"single", []uint64{42}, 1000},
		{"dense", []uint64{0, 1, 2, 3, 4, 5, 6, 7}, 8},
		{"sparse", []uint64{5, 900, 1 << 40, 1 << 41}, 1 << 42},
	} {
		s := New(tc.vals, tc.universe)
		var buf bytes.Buffer
		wn, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var got Sequence
		rn, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rn != wn {
			t.Fatalf("%s: consumed %d, wrote %d", tc.name, rn, wn)
		}
		if got.Len() != s.Len() || got.Universe() != s.Universe() {
			t.Fatalf("%s: geometry differs", tc.name)
		}
		for i := range tc.vals {
			if got.Get(i) != tc.vals[i] {
				t.Fatalf("%s: Get(%d) = %d, want %d", tc.name, i, got.Get(i), tc.vals[i])
			}
		}
		for _, probe := range []uint64{0, 1, 42, 899, 900, 901, 1 << 40} {
			if got.Contains(probe) != s.Contains(probe) {
				t.Fatalf("%s: Contains(%d) differs", tc.name, probe)
			}
		}
		var buf2 bytes.Buffer
		got.WriteTo(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: re-encoding differs", tc.name)
		}
	}
}

func TestSequenceReadFromRejectsCorruption(t *testing.T) {
	s := New([]uint64{3, 14, 159, 2653}, 10000)
	var buf bytes.Buffer
	s.WriteTo(&buf)
	good := buf.Bytes()
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x20
		var got Sequence
		if _, err := got.ReadFrom(bytes.NewReader(bad)); !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v", i, err)
		}
	}
}
