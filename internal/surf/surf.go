// Package surf implements the Succinct Range Filter (Zhang et al., §2.5
// of the tutorial): a trie over the shortest unique prefixes of the key
// set, encoded in LOUDS-Sparse form (one label byte plus two bitvector
// bits per edge, navigated by rank/select), with optional per-key suffix
// bits.
//
// Keys are uint64, serialized big-endian so trie order equals integer
// order. Because keys are fixed-length, no key is a proper prefix of
// another and the FST's terminal-label machinery is unnecessary — a
// documented simplification that loses no behaviour for the integer
// range-filtering problem the tutorial discusses.
//
// Suffix modes reproduce the paper's variants:
//   - SuffixNone (SuRF-Base): truncated prefixes only.
//   - SuffixHash (SuRF-Hash): a few hash bits per key cut the point-query
//     FPR but cannot help range queries.
//   - SuffixReal (SuRF-Real): the key bits following the prefix tighten
//     both point and range queries.
package surf

import (
	"sort"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// SuffixMode selects what the per-leaf suffix bits contain.
type SuffixMode int

const (
	// SuffixNone stores no suffix bits (SuRF-Base).
	SuffixNone SuffixMode = iota
	// SuffixHash stores hash bits of the key (SuRF-Hash).
	SuffixHash
	// SuffixReal stores the key bits right after the truncated prefix
	// (SuRF-Real).
	SuffixReal
)

const keyBytes = 8

// Filter is an immutable SuRF.
type Filter struct {
	labels   []byte
	hasChild *bitvec.Vector
	louds    *bitvec.Vector
	hcRS     *bitvec.RankSelect
	loudsRS  *bitvec.RankSelect

	suffixes  *bitvec.Packed // one entry per leaf edge, in edge order
	suffixLen uint
	mode      SuffixMode

	n int
}

// New builds a SuRF over keys (duplicates tolerated) with the given
// suffix mode; suffixLen is the number of suffix bits per key (ignored
// for SuffixNone).
func New(keys []uint64, mode SuffixMode, suffixLen uint) *Filter {
	if mode == SuffixNone {
		suffixLen = 0
	}
	if suffixLen > 32 {
		panic("surf: suffix length must be <= 32")
	}
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sorted = dedupSorted(sorted)

	f := &Filter{
		hasChild:  &bitvec.Vector{},
		louds:     &bitvec.Vector{},
		suffixLen: suffixLen,
		mode:      mode,
		n:         len(sorted),
	}
	f.build(sorted)
	f.hcRS = bitvec.NewRankSelect(f.hasChild)
	f.loudsRS = bitvec.NewRankSelect(f.louds)
	return f
}

func dedupSorted(keys []uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

func keyByte(k uint64, depth int) byte {
	return byte(k >> (8 * (keyBytes - 1 - depth)))
}

// build encodes the truncated trie in BFS (level) order: for each node, a
// group of consecutive sorted keys sharing a prefix of the node's depth,
// one edge per distinct next byte. Edges whose subgroup has one key are
// leaves; larger subgroups become child nodes queued for the next level.
func (f *Filter) build(keys []uint64) {
	if len(keys) == 0 {
		return
	}
	type group struct {
		lo, hi, depth int // keys[lo:hi) share a prefix of depth bytes
	}
	var leafSuffixes []uint64
	queue := []group{{0, len(keys), 0}}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		first := true
		i := g.lo
		for i < g.hi {
			b := keyByte(keys[i], g.depth)
			j := i + 1
			for j < g.hi && keyByte(keys[j], g.depth) == b {
				j++
			}
			f.labels = append(f.labels, b)
			f.louds.Append(first)
			first = false
			if j-i == 1 {
				f.hasChild.Append(false)
				leafSuffixes = append(leafSuffixes, f.suffixOf(keys[i], g.depth+1))
			} else {
				f.hasChild.Append(true)
				queue = append(queue, group{i, j, g.depth + 1})
			}
			i = j
		}
	}
	if f.suffixLen > 0 {
		f.suffixes = bitvec.NewPacked(len(leafSuffixes), f.suffixLen)
		for i, s := range leafSuffixes {
			f.suffixes.Set(i, s)
		}
	}
}

// suffixOf computes the stored suffix of key whose truncated prefix has
// prefixBytes bytes.
func (f *Filter) suffixOf(key uint64, prefixBytes int) uint64 {
	switch f.mode {
	case SuffixHash:
		return hashutil.Mix64(key) & hashutil.Mask(f.suffixLen)
	case SuffixReal:
		return realSuffix(key, prefixBytes, f.suffixLen)
	default:
		return 0
	}
}

// realSuffix extracts suffixLen key bits starting right after prefixBytes
// bytes (zero-padded past the key's end).
func realSuffix(key uint64, prefixBytes int, suffixLen uint) uint64 {
	rem := uint(64 - 8*prefixBytes) // bits remaining after the prefix
	tail := key & hashutil.Mask(rem)
	if rem >= suffixLen {
		return tail >> (rem - suffixLen)
	}
	return tail << (suffixLen - rem)
}

// Navigation primitives (LOUDS-Sparse):
//
//	Edges occupy positions 0..len(labels)-1 in BFS order. louds marks the
//	first edge of each node; hasChild marks internal edges. The node
//	reached by internal edge at position p starts at
//	select1(louds, rank1(hasChild, p+1)) — child nodes appear in the same
//	order as their parent edges, offset by one (the root).

// nodeRange returns the edge positions [start, end) of the node whose
// index (in BFS node order) is nodeID.
func (f *Filter) nodeRange(nodeID int) (int, int) {
	start := f.loudsRS.Select1(nodeID)
	end := len(f.labels)
	if nodeID+1 < f.loudsRS.Ones() {
		end = f.loudsRS.Select1(nodeID + 1)
	}
	return start, end
}

// childNode returns the BFS node index of the child reached through the
// internal edge at position p.
func (f *Filter) childNode(p int) int {
	// rank1(hasChild, p+1) counts internal edges up to and including p;
	// child node IDs start at 1 (node 0 is the root).
	return f.hcRS.Rank1(p + 1)
}

// leafIndex returns the suffix-array index of the leaf edge at position
// p.
func (f *Filter) leafIndex(p int) int { return f.hcRS.Rank0(p) }

// findEdge locates byte b within the node's edge range via binary search
// (labels within a node are sorted). Returns the position and whether an
// exact match was found; on miss, pos is the first edge with label > b
// (possibly end).
func (f *Filter) findEdge(start, end int, b byte) (int, bool) {
	lo, hi := start, end
	for lo < hi {
		mid := (lo + hi) / 2
		if f.labels[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < end && f.labels[lo] == b
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key uint64) bool {
	if f.n == 0 {
		return false
	}
	node := 0
	for depth := 0; depth < keyBytes; depth++ {
		start, end := f.nodeRange(node)
		p, ok := f.findEdge(start, end, keyByte(key, depth))
		if !ok {
			return false
		}
		if !f.hasChild.Bit(p) {
			if f.suffixLen == 0 {
				return true
			}
			return f.suffixes.Get(f.leafIndex(p)) == f.suffixOf(key, depth+1)
		}
		node = f.childNode(p)
	}
	// All 8 bytes matched internal edges — cannot happen for deduped
	// fixed-length keys (depth-7 edges are always leaves), but be safe.
	return true
}

// leafBounds returns the smallest and largest full keys consistent with
// the leaf edge at position p reached at the given depth along prefix.
// With real suffixes the stored suffix bits tighten both bounds.
func (f *Filter) leafBounds(prefix uint64, depth int, p int) (uint64, uint64) {
	prefixBits := uint(8 * (depth + 1))
	lo := prefix << (64 - prefixBits)
	hi := lo | hashutil.Mask(64-prefixBits)
	if f.mode == SuffixReal && f.suffixLen > 0 {
		rem := 64 - prefixBits
		s := f.suffixes.Get(f.leafIndex(p))
		sb := f.suffixLen
		if sb > rem {
			// Suffix includes padding beyond the key: the significant
			// part is the top rem bits.
			s >>= sb - rem
			sb = rem
		}
		lo |= s << (rem - sb)
		hi = lo | hashutil.Mask(rem-sb)
	}
	return lo, hi
}

// MayContainRange reports whether [lo, hi] may intersect the key set: it
// finds the smallest stored key interval whose upper end is >= lo and
// checks whether its lower end is <= hi.
func (f *Filter) MayContainRange(lo, hi uint64) bool {
	if f.n == 0 || lo > hi {
		return false
	}
	type frame struct {
		node   int
		pos    int // current edge position
		end    int
		prefix uint64
		depth  int
	}
	// Descend along lo, keeping the path for backtracking.
	var stack []frame
	node, prefix, depth := 0, uint64(0), 0
	for {
		start, end := f.nodeRange(node)
		b := keyByte(lo, depth)
		p, ok := f.findEdge(start, end, b)
		if ok {
			if !f.hasChild.Bit(p) {
				// Leaf on lo's own path: its interval contains keys with
				// this exact prefix; check against [lo, hi].
				lLo, lHi := f.leafBounds(prefix<<8|uint64(b), depth, p)
				if lHi >= lo && lLo <= hi {
					return true
				}
				// Key interval entirely below lo: advance to next edge.
				stack = append(stack, frame{node, p + 1, end, prefix, depth})
				break
			}
			stack = append(stack, frame{node, p + 1, end, prefix, depth})
			node = f.childNode(p)
			prefix = prefix<<8 | uint64(b)
			depth++
			continue
		}
		stack = append(stack, frame{node, p, end, prefix, depth})
		break
	}
	// Backtrack: find the first edge after the descent point; the
	// leftmost key below it is the successor of lo.
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.pos >= fr.end {
			continue // node exhausted; pop to parent
		}
		// Leftmost descent from this edge gives the successor.
		node, p, prefix, depth := fr.node, fr.pos, fr.prefix, fr.depth
		_ = node
		for {
			b := f.labels[p]
			if !f.hasChild.Bit(p) {
				lLo, _ := f.leafBounds(prefix<<8|uint64(b), depth, p)
				return lLo <= hi
			}
			child := f.childNode(p)
			prefix = prefix<<8 | uint64(b)
			depth++
			p, _ = f.nodeRange(child)
		}
	}
	return false // lo is beyond every stored key
}

// Len returns the number of distinct keys encoded.
func (f *Filter) Len() int { return f.n }

// Edges returns the number of trie edges (diagnostic; grows toward
// 8 per key under adversarial shared-prefix key sets).
func (f *Filter) Edges() int { return len(f.labels) }

// SizeBits returns the encoding footprint: labels, the two edge
// bitvectors with their rank directories, and suffix bits.
func (f *Filter) SizeBits() int {
	bits := len(f.labels)*8 + f.hasChild.SizeBits() + f.louds.SizeBits()
	if f.hcRS != nil {
		bits += f.hcRS.SizeBits() + f.loudsRS.SizeBits()
	}
	if f.suffixes != nil {
		bits += f.suffixes.SizeBits()
	}
	return bits
}

var _ core.RangeFilter = (*Filter)(nil)
