package surf

import (
	"math/rand"
	"sort"
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegativesPoint(t *testing.T) {
	for _, mode := range []SuffixMode{SuffixNone, SuffixHash, SuffixReal} {
		keys := workload.Keys(20000, 1)
		f := New(keys, mode, 8)
		if fn := metrics.FalseNegatives(f, keys); fn != 0 {
			t.Fatalf("mode %d: %d false negatives", mode, fn)
		}
	}
}

func TestPointFPRImprovesWithSuffix(t *testing.T) {
	keys := workload.Keys(20000, 2)
	neg := workload.DisjointKeys(100000, 2)
	base := metrics.FPR(New(keys, SuffixNone, 0), neg)
	hash8 := metrics.FPR(New(keys, SuffixHash, 8), neg)
	if base == 0 {
		t.Skip("base produced no FPs (keyspace too sparse)")
	}
	if hash8 > base/4 {
		t.Errorf("8 hash suffix bits: FPR %g, want well below base %g", hash8, base)
	}
}

func TestRangeNoFalseNegatives(t *testing.T) {
	// Ranges that definitely contain a key must always return true.
	rng := rand.New(rand.NewSource(3))
	keys := workload.Keys(5000, 3)
	for _, mode := range []SuffixMode{SuffixNone, SuffixReal} {
		f := New(keys, mode, 8)
		for i := 0; i < 2000; i++ {
			k := keys[rng.Intn(len(keys))]
			span := rng.Uint64() % 1000
			lo := k - span/2
			if lo > k { // underflow
				lo = 0
			}
			hi := lo + span
			if hi < lo {
				hi = ^uint64(0)
			}
			if k < lo || k > hi {
				continue
			}
			if !f.MayContainRange(lo, hi) {
				t.Fatalf("mode %d: range [%d,%d] contains key %d but filter says empty", mode, lo, hi, k)
			}
		}
	}
}

func TestRangeAgainstNaive(t *testing.T) {
	// Small universe so truncation intervals are exercised hard; compare
	// conservative correctness (no false negatives) and measure that
	// answers aren't always-true.
	keys := workload.SmallUniverseKeys(300, 1<<20, 7)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	f := New(keys, SuffixReal, 8)
	rng := rand.New(rand.NewSource(9))
	trueEmpty, saidEmpty := 0, 0
	for i := 0; i < 5000; i++ {
		lo := rng.Uint64() % (1 << 20)
		hi := lo + rng.Uint64()%64
		idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
		actual := idx < len(sorted) && sorted[idx] <= hi
		got := f.MayContainRange(lo, hi)
		if actual && !got {
			t.Fatalf("false negative on range [%d,%d]", lo, hi)
		}
		if !actual {
			trueEmpty++
			if !got {
				saidEmpty++
			}
		}
	}
	if trueEmpty > 0 && saidEmpty == 0 {
		t.Error("filter never identified an empty range (no filtering power)")
	}
}

func TestEmptyRangeFPRReasonable(t *testing.T) {
	keys := workload.Keys(20000, 5)
	f := New(keys, SuffixReal, 8)
	qs := workload.UniformRanges(20000, 16, ^uint64(0)-16, 11)
	var empties [][2]uint64
	keySet := map[uint64]bool{}
	for _, k := range keys {
		keySet[k] = true
	}
	for _, q := range qs {
		hit := false
		for k := q.Lo; k <= q.Hi; k++ {
			if keySet[k] {
				hit = true
				break
			}
		}
		if !hit {
			empties = append(empties, [2]uint64{q.Lo, q.Hi})
		}
	}
	if fpr := metrics.RangeFPR(f, empties); fpr > 0.05 {
		t.Errorf("range FPR %g too high for sparse keys", fpr)
	}
}

func TestAdversarialPrefixBlowup(t *testing.T) {
	// The tutorial's SuRF limitation: keys sharing unique long prefixes
	// force the trie to store almost every byte, destroying space
	// efficiency relative to a random key set.
	n := 10000
	randomKeys := workload.Keys(n, 13)
	advKeys := workload.AdversarialPrefixKeys(n, 13)
	fr := New(randomKeys, SuffixNone, 0)
	fa := New(advKeys, SuffixNone, 0)
	if fa.Edges() < fr.Edges()*2 {
		t.Errorf("adversarial edges %d vs random %d — expected blowup", fa.Edges(), fr.Edges())
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := New(nil, SuffixNone, 0)
	if empty.Contains(5) || empty.MayContainRange(0, ^uint64(0)) {
		t.Fatal("empty filter claims membership")
	}
	single := New([]uint64{42}, SuffixReal, 8)
	if !single.Contains(42) {
		t.Fatal("singleton lost")
	}
	if !single.MayContainRange(0, 100) {
		t.Fatal("range containing the only key reported empty")
	}
	// A single key truncates to its first byte, so nearby ranges fall
	// inside its truncation interval (genuine SuRF behaviour). Ranges in
	// a different top byte must be filtered out.
	if single.MayContainRange(1<<60, 1<<60+1000) {
		t.Fatal("range in a different top byte reported non-empty")
	}
	dup := New([]uint64{7, 7, 7}, SuffixNone, 0)
	if dup.Len() != 1 {
		t.Fatalf("Len = %d after dedup", dup.Len())
	}
}

func TestInvertedRange(t *testing.T) {
	f := New([]uint64{10}, SuffixNone, 0)
	if f.MayContainRange(20, 10) {
		t.Fatal("inverted range must be empty")
	}
}

func TestDenseSequentialKeys(t *testing.T) {
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i)
	}
	f := New(keys, SuffixNone, 0)
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("sequential key %d lost", k)
		}
	}
	if !f.MayContainRange(100, 200) {
		t.Fatal("in-set range reported empty")
	}
	if f.MayContainRange(5000, 6000) {
		t.Fatal("out-of-set range reported non-empty for dense keys")
	}
}

func BenchmarkContains(b *testing.B) {
	keys := workload.Keys(1<<20, 21)
	f := New(keys, SuffixHash, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}

func BenchmarkRange(b *testing.B) {
	keys := workload.Keys(1<<20, 23)
	f := New(keys, SuffixReal, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) * 0x9E3779B97F4A7C15
		f.MayContainRange(lo, lo+1024)
	}
}
