// Package dleft implements the d-left counting Bloom filter (Bonomi et
// al., §2.6 of the tutorial): d subtables of buckets holding
// (fingerprint, counter) cells. Each key hashes to one candidate bucket
// per subtable and is stored once, in the least-loaded candidate
// (leftmost on ties — the "d-left" rule), giving far better space than a
// counting Bloom filter (typically 2x, the tutorial's claim) and good
// locality. The structure is not resizable and its false-positive rate
// depends on the bucket geometry, which the tutorial lists as its
// limitations.
package dleft

import (
	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Filter is a d-left counting filter.
type Filter struct {
	// cells is laid out as d subtables × buckets × cellsPerBucket cells;
	// each cell packs fingerprint<<ctrBits | counter. Counter zero with a
	// nonzero fingerprint cannot occur (cells are freed when their
	// counter hits zero), and fingerprint zero marks an empty cell.
	cells          *bitvec.Packed
	d              int
	buckets        uint64 // per subtable
	cellsPerBucket int
	fpBits         uint
	ctrBits        uint
	seed           uint64
	n              int // distinct stored fingerprints
}

// Geometry defaults follow the paper: 4 subtables, 8 cells per bucket.
const (
	defaultD     = 4
	defaultCells = 8
)

// New returns a d-left counting filter sized for n distinct keys with
// fpBits-bit fingerprints and ctrBits-bit counters.
func New(n int, fpBits, ctrBits uint) *Filter {
	if fpBits < 2 || fpBits > 32 || ctrBits < 1 || ctrBits > 24 {
		panic("dleft: invalid geometry")
	}
	// Target average load of 6 of 8 cells per bucket. Bucket selection
	// uses multiply-shift reduction, so the count need not be a power of
	// two — avoiding up-to-2x rounding waste.
	perTable := (uint64(n) + 1) / (defaultCells * defaultD * 3 / 4)
	if perTable < 2 {
		perTable = 2
	}
	return &Filter{
		cells:          bitvec.NewPacked(defaultD*int(perTable)*defaultCells, fpBits+ctrBits),
		d:              defaultD,
		buckets:        perTable,
		cellsPerBucket: defaultCells,
		fpBits:         fpBits,
		ctrBits:        ctrBits,
		seed:           0xD1EF7,
	}
}

func (f *Filter) cellIndex(table int, bucket uint64, cell int) int {
	return (table*int(f.buckets)+int(bucket))*f.cellsPerBucket + cell
}

func (f *Filter) getCell(idx int) (fp, ctr uint64) {
	v := f.cells.Get(idx)
	return v >> f.ctrBits, v & hashutil.Mask(f.ctrBits)
}

func (f *Filter) setCell(idx int, fp, ctr uint64) {
	f.cells.Set(idx, fp<<f.ctrBits|ctr)
}

// candidates returns the key's bucket in each subtable plus its
// fingerprint.
func (f *Filter) candidates(key uint64) ([]uint64, uint64) {
	h := hashutil.MixSeed(key, f.seed)
	fp := hashutil.Fingerprint(h, f.fpBits)
	bs := make([]uint64, f.d)
	for i := 0; i < f.d; i++ {
		bs[i] = hashutil.Reduce(hashutil.MixSeed(h, uint64(i)+1), f.buckets)
	}
	return bs, fp
}

// findCell locates the cell holding fp among the candidate buckets.
func (f *Filter) findCell(bs []uint64, fp uint64) (int, bool) {
	for t, b := range bs {
		for c := 0; c < f.cellsPerBucket; c++ {
			idx := f.cellIndex(t, b, c)
			if gotFP, _ := f.getCell(idx); gotFP == fp {
				return idx, true
			}
		}
	}
	return 0, false
}

// Add inserts delta occurrences of key. Returns ErrFull if all candidate
// buckets are full, and leaves the count saturated (stuck) if the
// counter overflows, as with fixed-width counters generally.
func (f *Filter) Add(key uint64, delta uint64) error {
	bs, fp := f.candidates(key)
	maxCtr := hashutil.Mask(f.ctrBits)
	if idx, ok := f.findCell(bs, fp); ok {
		_, ctr := f.getCell(idx)
		nc := ctr + delta
		if nc > maxCtr || nc < ctr {
			nc = maxCtr
		}
		f.setCell(idx, fp, nc)
		return nil
	}
	// Place in the least-loaded candidate bucket, leftmost on ties.
	bestTable, bestLoad := -1, f.cellsPerBucket+1
	for t, b := range bs {
		load := 0
		for c := 0; c < f.cellsPerBucket; c++ {
			if gotFP, _ := f.getCell(f.cellIndex(t, b, c)); gotFP != 0 {
				load++
			}
		}
		if load < bestLoad {
			bestLoad = load
			bestTable = t
		}
	}
	if bestLoad >= f.cellsPerBucket {
		return core.ErrFull
	}
	for c := 0; c < f.cellsPerBucket; c++ {
		idx := f.cellIndex(bestTable, bs[bestTable], c)
		if gotFP, _ := f.getCell(idx); gotFP == 0 {
			ctr := delta
			if ctr > maxCtr {
				ctr = maxCtr
			}
			f.setCell(idx, fp, ctr)
			f.n++
			return nil
		}
	}
	return core.ErrFull
}

// Insert adds one occurrence of key.
func (f *Filter) Insert(key uint64) error { return f.Add(key, 1) }

// Remove deletes delta occurrences; the cell is freed when its counter
// reaches zero. Saturated counters stick (cannot be decremented safely).
func (f *Filter) Remove(key uint64, delta uint64) error {
	bs, fp := f.candidates(key)
	idx, ok := f.findCell(bs, fp)
	if !ok {
		return core.ErrNotFound
	}
	_, ctr := f.getCell(idx)
	if ctr == hashutil.Mask(f.ctrBits) {
		return nil // stuck at saturation
	}
	if delta >= ctr {
		f.setCell(idx, 0, 0)
		f.n--
		return nil
	}
	f.setCell(idx, fp, ctr-delta)
	return nil
}

// Delete removes one occurrence of key.
func (f *Filter) Delete(key uint64) error { return f.Remove(key, 1) }

// Count returns the multiplicity of key (0 if absent).
func (f *Filter) Count(key uint64) uint64 {
	bs, fp := f.candidates(key)
	if idx, ok := f.findCell(bs, fp); ok {
		_, ctr := f.getCell(idx)
		return ctr
	}
	return 0
}

// Contains reports whether key may be present.
func (f *Filter) Contains(key uint64) bool { return f.Count(key) > 0 }

// Len returns the number of distinct stored fingerprints.
func (f *Filter) Len() int { return f.n }

// SizeBits returns the table footprint in bits.
func (f *Filter) SizeBits() int { return f.cells.SizeBits() }

var (
	_ core.CountingFilter  = (*Filter)(nil)
	_ core.DeletableFilter = (*Filter)(nil)
)
