package dleft

import (
	"errors"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestInsertContains(t *testing.T) {
	keys := workload.Keys(10000, 1)
	f := New(len(keys), 12, 4)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPR(t *testing.T) {
	keys := workload.Keys(20000, 2)
	f := New(len(keys), 12, 4)
	for _, k := range keys {
		f.Insert(k)
	}
	neg := workload.DisjointKeys(100000, 2)
	// ε ≈ d * cells * 2^-12 ≈ 32/4096 ≈ 0.008.
	if fpr := metrics.FPR(f, neg); fpr > 0.02 {
		t.Errorf("FPR %f too high", fpr)
	}
}

func TestCounts(t *testing.T) {
	f := New(2000, 14, 8)
	keys := workload.Keys(1000, 3)
	for i, k := range keys {
		f.Add(k, uint64(i%5+1))
	}
	for i, k := range keys {
		want := uint64(i%5 + 1)
		if got := f.Count(k); got < want {
			t.Fatalf("Count(%d)=%d < %d", k, got, want)
		}
	}
}

func TestRemove(t *testing.T) {
	f := New(1000, 14, 8)
	f.Add(5, 10)
	f.Remove(5, 3)
	if got := f.Count(5); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	f.Remove(5, 7)
	if f.Contains(5) {
		t.Fatal("still present after full removal")
	}
	if err := f.Remove(5, 1); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("remove absent: %v", err)
	}
}

func TestSaturationSticks(t *testing.T) {
	f := New(100, 12, 2) // counters max 3
	f.Add(9, 100)
	if got := f.Count(9); got != 3 {
		t.Fatalf("Count = %d, want clamp 3", got)
	}
	f.Remove(9, 1)
	if got := f.Count(9); got != 3 {
		t.Fatalf("saturated counter moved: %d", got)
	}
}

func TestSpaceVsCountingBloom(t *testing.T) {
	// The tutorial's claim: d-left saves ~2x vs counting Bloom at equal
	// error. CBF at ε=0.008 with 4-bit counters: 1.44*log2(1/0.008)*4 ≈
	// 40 bits/key. d-left with 12-bit fp + 4-bit ctr at 75% load ≈ 21.
	n := 50000
	f := New(n, 12, 4)
	keys := workload.Keys(n, 7)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	perKey := float64(f.SizeBits()) / float64(n)
	if perKey > 30 {
		t.Errorf("d-left bits/key = %f, want well under a CBF's ~40", perKey)
	}
}

func TestFullBuckets(t *testing.T) {
	f := New(64, 8, 4)
	var sawFull bool
	for i := 0; i < 10000; i++ {
		if err := f.Insert(uint64(i) * 2654435761); errors.Is(err, core.ErrFull) {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Error("never filled a deliberately tiny filter")
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry should panic")
		}
	}()
	New(10, 1, 1)
}

func BenchmarkInsert(b *testing.B) {
	f := New(b.N+1, 12, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}
