// Package hashutil provides the hashing primitives shared by every filter
// in this library: a 64-bit byte-string hash (an xxHash64 implementation),
// integer finalizers (splitmix64 / Murmur3), seeded hash families built by
// double hashing, and helpers for splitting hashes into quotient/remainder
// fingerprints.
//
// All functions are deterministic for a given seed, so experiments are
// reproducible run to run.
package hashutil

import (
	"encoding/binary"
	"math/bits"
)

// xxHash64 prime constants.
const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
	prime4 uint64 = 0x85EBCA77C2B2AE63
	prime5 uint64 = 0x27D4EB2F165667C5
)

// byteSeq abstracts the two byte-string representations so the xxHash64
// core is written once: hashing a string directly avoids the []byte
// conversion (and its allocation) that Sum64(([]byte)(s)) would pay on
// every call.
type byteSeq interface{ ~[]byte | ~string }

// le64 reads an 8-byte little-endian word at offset i.
func le64[T byteSeq](b T, i int) uint64 {
	return uint64(b[i]) | uint64(b[i+1])<<8 | uint64(b[i+2])<<16 |
		uint64(b[i+3])<<24 | uint64(b[i+4])<<32 | uint64(b[i+5])<<40 |
		uint64(b[i+6])<<48 | uint64(b[i+7])<<56
}

// le32 reads a 4-byte little-endian word at offset i.
func le32[T byteSeq](b T, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Sum64 returns the 64-bit xxHash of b with the given seed.
func Sum64(b []byte, seed uint64) uint64 { return sum64(b, seed) }

// Sum64String is Sum64 for strings, with identical output for identical
// bytes. It performs no allocation, so byte-string applications (URL
// blocking, k-mer text parsing) can hash straight off their inputs in
// the hot path.
func Sum64String(s string, seed uint64) uint64 { return sum64(s, seed) }

func sum64[T byteSeq](b T, seed uint64) uint64 {
	n := len(b)
	var h uint64
	i := 0

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for n-i >= 32 {
			v1 = round(v1, le64(b, i))
			v2 = round(v2, le64(b, i+8))
			v3 = round(v3, le64(b, i+16))
			v4 = round(v4, le64(b, i+24))
			i += 32
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for n-i >= 8 {
		h ^= round(0, le64(b, i))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		i += 8
	}
	if n-i >= 4 {
		h ^= uint64(le32(b, i)) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(b[i]) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}

	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime1
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	return acc*prime1 + prime4
}

// Mix64 applies the splitmix64 finalizer to x. It is a fast, high-quality
// bijective mixer suitable for hashing integer keys.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Unmix64 inverts Mix64 (splitmix64 is a bijection). Used by structures
// that need to recover the original key from a stored hash.
func Unmix64(x uint64) uint64 {
	x = (x ^ (x >> 31) ^ (x >> 62)) * 0x319642B2D24D8EC3
	x = (x ^ (x >> 27) ^ (x >> 54)) * 0x96DE1B173F119089
	x = x ^ (x >> 30) ^ (x >> 60)
	return x - 0x9E3779B97F4A7C15
}

// MixSeed mixes an integer key with a seed. Distinct seeds give
// effectively independent hash functions.
func MixSeed(x, seed uint64) uint64 {
	return Mix64(x ^ (seed * 0xA24BAED4963EE407))
}

// Fingerprint returns an f-bit nonzero fingerprint derived from h.
// f must be in [1, 64]. The result is never zero so that zero can be used
// as an empty-slot sentinel by table-based filters.
func Fingerprint(h uint64, f uint) uint64 {
	fp := h & maskBits(f)
	if fp == 0 {
		fp = 1
	}
	return fp
}

func maskBits(f uint) uint64 {
	if f >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << f) - 1
}

// Mask returns a mask with the low f bits set (f in [0,64]).
func Mask(f uint) uint64 { return maskBits(f) }

// KHash derives the i-th hash of a k-independent family from two base
// hashes using enhanced double hashing (Kirsch–Mitzenmacher): the family
// h_i = h1 + i*h2 + i^2 behaves like independent hashes for Bloom-style
// structures.
func KHash(h1, h2 uint64, i uint) uint64 {
	ii := uint64(i)
	return h1 + ii*h2 + ii*ii
}

// SplitHash derives two base hashes from one 64-bit hash for use with
// KHash. The halves are remixed so they are not trivially correlated.
func SplitHash(h uint64) (h1, h2 uint64) {
	h1 = h
	h2 = Mix64(h) | 1 // odd, so it cycles through power-of-two tables
	return
}

// SumU64 hashes a uint64 key directly through the splitmix64 finalizer
// — the zero-allocation path integer-keyed callers should take instead
// of the Sum64(U64Bytes(x), seed) round-trip, which materializes a heap
// byte slice on every call. It is exactly MixSeed, named for discovery
// next to the byte-string entry points.
func SumU64(x, seed uint64) uint64 { return MixSeed(x, seed) }

// U64Bytes serializes x little-endian for byte-oriented hashing.
// The returned slice escapes, so this allocates; hot paths hashing
// uint64 keys should call SumU64/MixSeed instead, and serializers
// should use AppendU64.
func U64Bytes(x uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	return b[:]
}

// AppendU64 appends x little-endian to dst, the allocation-free way to
// feed a uint64 into a byte-oriented hash or encoder: the caller's
// buffer is reused instead of a fresh slice per key.
func AppendU64(dst []byte, x uint64) []byte {
	return append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

// Reduce maps a 64-bit hash uniformly onto [0, n) without division
// (Lemire's multiply-shift reduction).
func Reduce(h uint64, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}
