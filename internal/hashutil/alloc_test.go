package hashutil

import (
	"strings"
	"testing"
)

// Sum64String must agree with Sum64 byte for byte: it is the same
// algorithm over the other byte-string representation.
func TestSum64StringMatchesSum64(t *testing.T) {
	cases := []string{
		"", "a", "abc", "0123456", "01234567", "0123456789ab",
		"0123456789abcde", "0123456789abcdef",
		strings.Repeat("chunky32bytes---", 2),
		strings.Repeat("long input spanning many 32-byte blocks ", 13),
	}
	for _, s := range cases {
		for _, seed := range []uint64{0, 1, 0x9e5, ^uint64(0)} {
			if got, want := Sum64String(s, seed), Sum64([]byte(s), seed); got != want {
				t.Errorf("Sum64String(%q, %d) = %#x, Sum64 = %#x", s, seed, got, want)
			}
		}
	}
}

func TestSumU64MatchesMixSeed(t *testing.T) {
	for x := uint64(0); x < 100; x++ {
		if SumU64(x, 42) != MixSeed(x, 42) {
			t.Fatalf("SumU64(%d) diverges from MixSeed", x)
		}
	}
}

func TestAppendU64(t *testing.T) {
	buf := AppendU64(nil, 0x0807060504030201)
	for i, want := range []byte{1, 2, 3, 4, 5, 6, 7, 8} {
		if buf[i] != want {
			t.Fatalf("AppendU64 byte %d = %d, want %d", i, buf[i], want)
		}
	}
	// Round-trips through the byte-oriented hash identically to U64Bytes.
	if Sum64(buf, 7) != Sum64(U64Bytes(0x0807060504030201), 7) {
		t.Fatal("AppendU64 and U64Bytes hash differently")
	}
}

func TestStringHashingZeroAllocs(t *testing.T) {
	url := "https://example.com/some/long/path?with=query&and=params"
	if avg := testing.AllocsPerRun(100, func() {
		Sum64String(url, 0x09e5)
		SumU64(12345, 0x09e5)
	}); avg != 0 {
		t.Fatalf("string/uint64 hash path allocates %v per run, want 0", avg)
	}
	var scratch [8]byte
	if avg := testing.AllocsPerRun(100, func() {
		buf := AppendU64(scratch[:0], 987654321)
		Sum64(buf, 1)
	}); avg != 0 {
		t.Fatalf("AppendU64 into caller buffer allocates %v per run, want 0", avg)
	}
}

func BenchmarkSum64String(b *testing.B) {
	s := "https://example.com/some/long/path?with=query&and=params"
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		Sum64String(s, uint64(i))
	}
}
