package hashutil

import (
	"testing"
	"testing/quick"
)

func TestSum64KnownVectors(t *testing.T) {
	// Reference values computed with the canonical xxHash64 implementation.
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xEF46DB3751D8E999},
		{"a", 0, 0xD24EC4F1A98C6E5B},
		{"abc", 0, 0x44BC2CF5AD770999},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Sum64(%q, %d) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestSum64SeedChangesHash(t *testing.T) {
	b := []byte("the quick brown fox")
	if Sum64(b, 1) == Sum64(b, 2) {
		t.Fatal("different seeds should give different hashes")
	}
}

func TestSum64LongInputDeterministic(t *testing.T) {
	// Exercises the 32-byte-block path: deterministic, seed- and
	// content-sensitive.
	long := make([]byte, 1000)
	for i := range long {
		long[i] = byte(i * 31)
	}
	h1 := Sum64(long, 7)
	if h2 := Sum64(long, 7); h2 != h1 {
		t.Fatal("hash not deterministic")
	}
	if Sum64(long, 8) == h1 {
		t.Fatal("seed ignored on long input")
	}
	long[999]++
	if Sum64(long, 7) == h1 {
		t.Fatal("trailing byte ignored on long input")
	}
}

func TestMix64Bijective(t *testing.T) {
	f := func(x uint64) bool { return Unmix64(Mix64(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix64NotIdentity(t *testing.T) {
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if Mix64(x) == x {
			same++
		}
	}
	if same > 0 {
		t.Errorf("Mix64 fixed points in small range: %d", same)
	}
}

func TestFingerprintNonzero(t *testing.T) {
	f := func(h uint64) bool {
		for _, bitsN := range []uint{1, 4, 8, 16, 32, 64} {
			fp := Fingerprint(h, bitsN)
			if fp == 0 {
				return false
			}
			if bitsN < 64 && fp >= 1<<bitsN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceInRange(t *testing.T) {
	f := func(h uint64, n uint32) bool {
		if n == 0 {
			return true
		}
		return Reduce(h, uint64(n)) < uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceUniformity(t *testing.T) {
	const n, trials = 16, 1 << 16
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[Reduce(Mix64(uint64(i)), n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

func TestKHashDistinct(t *testing.T) {
	h1, h2 := SplitHash(Mix64(12345))
	seen := map[uint64]bool{}
	for i := uint(0); i < 16; i++ {
		seen[KHash(h1, h2, i)%(1<<20)] = true
	}
	if len(seen) < 14 {
		t.Errorf("KHash family collapsed: only %d distinct of 16", len(seen))
	}
}

func TestMaskBits(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) should be 0")
	}
	if Mask(64) != ^uint64(0) {
		t.Error("Mask(64) should be all ones")
	}
	if Mask(8) != 0xFF {
		t.Error("Mask(8) should be 0xFF")
	}
}

func BenchmarkSum64_8B(b *testing.B) {
	buf := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		Sum64(buf, uint64(i))
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += Mix64(uint64(i))
	}
	_ = acc
}
