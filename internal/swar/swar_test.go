package swar

import (
	"math/rand"
	"testing"
)

func TestBroadcast(t *testing.T) {
	cases := []struct {
		v    uint64
		w    uint
		want uint64
	}{
		{0xAB, 8, 0xABABABABABABABAB},
		{0x12CD, 16, 0x12CD12CD12CD12CD},
		{0x1, 1, ^uint64(0)},
		{0x3, 2, ^uint64(0)},
		{0xDEADBEEF12345678, 64, 0xDEADBEEF12345678},
	}
	for _, c := range cases {
		if got := Broadcast(c.v, c.w); got != c.want {
			t.Errorf("Broadcast(%#x, %d) = %#x, want %#x", c.v, c.w, got, c.want)
		}
	}
	// Property: every aligned full lane holds v.
	for _, w := range []uint{3, 5, 7, 8, 11, 13, 16, 21, 32} {
		v := uint64(0x5A5A5A5A5A5A5A5A) & (uint64(1)<<w - 1)
		b := Broadcast(v, w)
		for l := uint(0); (l+1)*w <= 64; l += 1 {
			if got := b >> (l * w) & (uint64(1)<<w - 1); got != v {
				t.Fatalf("Broadcast(%#x, %d) lane %d = %#x", v, w, l, got)
			}
		}
	}
}

func TestHasZeroLanes(t *testing.T) {
	if HasZero8(0x0102030405060708) != 0 {
		t.Error("HasZero8 false positive")
	}
	if HasZero8(0x0102030400060708) == 0 {
		t.Error("HasZero8 missed zero byte")
	}
	if HasZero16(0x0001000200030004) != 0 {
		t.Error("HasZero16 false positive")
	}
	if HasZero16(0x0001000000030004) == 0 {
		t.Error("HasZero16 missed zero lane")
	}
	// Equality-test composition: some byte of x equals p.
	x := uint64(0x1122334455667788)
	if HasZero8(x^Broadcast(0x55, 8)) == 0 {
		t.Error("byte 0x55 not found")
	}
	if HasZero8(x^Broadcast(0x99, 8)) != 0 {
		t.Error("byte 0x99 falsely found")
	}
}

// refMatch is the scalar reference: does any of the first `lanes` w-bit
// lanes of win equal pattern?
func refMatch(win, pattern uint64, w uint, lanes int) bool {
	mask := uint64(1)<<w - 1
	for l := 0; l < lanes; l++ {
		if win>>(uint(l)*w)&mask == pattern&mask {
			return true
		}
	}
	return false
}

func TestMatchNoneAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []uint{2, 4, 8, 10, 13, 16} {
		lanes := int(64 / w)
		if lanes > 8 {
			lanes = 8
		}
		for trial := 0; trial < 5000; trial++ {
			win := rng.Uint64()
			pattern := rng.Uint64() & (uint64(1)<<w - 1)
			if trial%3 == 0 { // force planted matches
				l := rng.Intn(lanes)
				win = win&^((uint64(1)<<w-1)<<(uint(l)*w)) | pattern<<(uint(l)*w)
			}
			want := refMatch(win, pattern, w, lanes)
			if got := MatchNone(win, pattern, w, lanes); (got == 0) != want {
				t.Fatalf("MatchNone(%#x, %#x, w=%d, lanes=%d) = %d, scalar says match=%v",
					win, pattern, w, lanes, got, want)
			}
			if lanes >= 4 {
				got4 := MatchNone4(win, pattern, uint64(1)<<w-1, w)
				want4 := refMatch(win, pattern, w, 4)
				if (got4 == 0) != want4 {
					t.Fatalf("MatchNone4(%#x, %#x, w=%d) = %d, scalar says match=%v",
						win, pattern, w, got4, want4)
				}
			}
			mm := MatchMask(win, pattern, w, lanes)
			for l := 0; l < lanes; l++ {
				laneEq := win>>(uint(l)*w)&(uint64(1)<<w-1) == pattern
				if mm>>uint(l)&1 == 1 != laneEq {
					t.Fatalf("MatchMask(%#x, %#x, w=%d) lane %d wrong", win, pattern, w, l)
				}
			}
		}
	}
}

func TestSelectZero64From(t *testing.T) {
	// Reference: walk bits.
	ref := func(w uint64, from uint, r int) uint {
		seen := 0
		for i := from; i < 64; i++ {
			if w>>i&1 == 0 {
				if seen == r {
					return i
				}
				seen++
			}
		}
		return 64
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		w := rng.Uint64()
		if trial%4 == 0 {
			w |= ^uint64(0) << uint(rng.Intn(64)) // dense-high words
		}
		from := uint(rng.Intn(64))
		r := rng.Intn(10)
		if got, want := SelectZero64From(w, from, r), ref(w, from, r); got != want {
			t.Fatalf("SelectZero64From(%#x, %d, %d) = %d, want %d", w, from, r, got, want)
		}
	}
}
