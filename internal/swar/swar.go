// Package swar implements SIMD-within-a-register kernels: 64-bit lane
// compares that test several packed fingerprints against one pattern in
// a handful of ALU instructions, with no data-dependent branches. These
// are the pure-Go stand-ins for the SSE/AVX bucket compares that
// register-blocked filters use (cf. "Blocked Bloom Filters with
// Choices" and the cuckoo-filter reference implementation): a 4-way
// cuckoo bucket of ≤16-bit fingerprints, or a quotient-filter run of
// remainders, is one Window64 read plus one MatchNone call.
//
// Two forms are provided. The generic form (MatchNone/MatchMask) works
// for any lane width 1..16 by collapsing each lane's XOR difference to
// its sign bit via (d | -d); it costs a few ops per lane. The classic
// zero-byte trick (HasZero8/HasZero16 over x^Broadcast(p)) tests all
// lanes at once with five ops total, but only for uniform 8- or 16-bit
// lanes and with the caveat that borrow propagation can spill between
// lanes, so it is exact only as the "no lane is zero" test it states.
// Kernels pick the fast path when the geometry allows and fall back to
// the generic form otherwise.
package swar

import "math/bits"

// Repunit constants for the classic zero-lane tricks: lo has the lowest
// bit of every lane set, hi the highest.
const (
	lo8  uint64 = 0x0101010101010101
	hi8  uint64 = 0x8080808080808080
	lo16 uint64 = 0x0001000100010001
	hi16 uint64 = 0x8000800080008000
)

// Broadcast replicates the low w bits of v into every w-bit lane of a
// 64-bit word (the last partial lane, if 64%w != 0, holds the value's
// low bits). w must be in [1, 64].
func Broadcast(v uint64, w uint) uint64 {
	if w >= 64 {
		return v
	}
	v &= uint64(1)<<w - 1
	out := v
	for shift := w; shift < 64; shift <<= 1 {
		out |= out << shift
	}
	return out
}

// HasZero8 reports a nonzero value iff some aligned 8-bit lane of x is
// zero (the classic "determine if a word has a zero byte" bit trick).
// Combined with an XOR against Broadcast(p, 8) it becomes an 8-lane
// equality test: HasZero8(x ^ Broadcast(p, 8)) != 0 iff some byte of x
// equals p.
func HasZero8(x uint64) uint64 { return (x - lo8) & ^x & hi8 }

// HasZero16 is HasZero8 for four 16-bit lanes.
func HasZero16(x uint64) uint64 { return (x - lo16) & ^x & hi16 }

// MatchNone reports 1 if none of the `lanes` w-bit lanes in the low
// lanes*w bits of win equals pattern, else 0 — with no data-dependent
// branch: each lane's XOR difference is collapsed to the top bit of
// (d | -d) and the lanes are AND-ed arithmetically, so the result can
// feed survivor compaction as an addend. pattern must already be masked
// to w bits; lanes*w must be ≤ 64 and lanes in [1, 8].
func MatchNone(win, pattern uint64, w uint, lanes int) uint64 {
	mask := uint64(1)<<w - 1
	miss := uint64(1)
	for l := 0; l < lanes; l++ {
		d := win>>(uint(l)*w)&mask ^ pattern
		miss &= (d | -d) >> 63
	}
	return miss
}

// MatchNone4 is MatchNone for exactly four lanes (the cuckoo bucket
// shape), fully unrolled so the hot batch kernels pay no loop overhead.
func MatchNone4(win, pattern, mask uint64, w uint) uint64 {
	d0 := win&mask ^ pattern
	d1 := win>>w&mask ^ pattern
	d2 := win>>(2*w)&mask ^ pattern
	d3 := win>>(3*w)&mask ^ pattern
	return (d0 | -d0) & (d1 | -d1) & (d2 | -d2) & (d3 | -d3) >> 63
}

// MatchMask returns a bitmask with bit l set iff lane l (of the given
// width, counting from the low end of win) equals pattern. lanes*w must
// be ≤ 64. Used where the caller needs the matching position, not just
// existence (maplet value extraction, counting).
func MatchMask(win, pattern uint64, w uint, lanes int) uint64 {
	mask := uint64(1)<<w - 1
	var m uint64
	for l := 0; l < lanes; l++ {
		d := win>>(uint(l)*w)&mask ^ pattern
		// (d|-d)>>63 is 0 for a match; invert into bit l.
		m |= (1 ^ (d|-d)>>63) << uint(l)
	}
	return m
}

// SelectZero64From returns the position of the (r+1)-th zero bit of w
// at or above bit position from, or 64 if w has fewer than r+1 zero
// bits there (r is 0-based). It is the word-level building block of the
// quotient filter's run-start select: run starts are slots whose
// continuation bit is clear.
func SelectZero64From(w uint64, from uint, r int) uint {
	z := ^w
	if from > 0 {
		z &= ^uint64(0) << from
	}
	for i := 0; i < r; i++ {
		z &= z - 1
	}
	if z == 0 {
		return 64
	}
	return uint(bits.TrailingZeros64(z))
}
