// Package learned implements the classifier-based filter of §2.8's first
// half: given a sample of historical queries, train a model that
// predicts which keys are likely to be queried *and present*, answer
// those directly, and keep a conventional backup filter only for the
// positives the model misses. Frequently-queried positive keys then cost
// no filter space at all — the tutorial's "avoid having to insert them
// into a regular filter to save space".
//
// Substitution note (DESIGN.md §3): the papers train neural or
// gradient-boosted classifiers; stdlib-only Go substitutes a counting
// sketch over the query sample with a hot-key score threshold. The
// space/FPR mechanism under study — classifier handles the hot head,
// backup filter handles the tail — is identical; only the classifier's
// generalization differs (ours memorizes rather than generalizes, which
// for the skewed-workload claims is the relevant behaviour).
package learned

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
)

// Filter is a trained filter: classifier + backup.
type Filter struct {
	hot       map[uint64]struct{} // keys the classifier answers positively
	backup    *bloom.Filter
	threshold int
}

// New builds a learned filter over keys. querySample is a sample of the
// historical query stream (keys, with repetition); hotFraction of the
// backup budget is diverted to memorizing the hottest sampled positive
// keys.
//
// Keys whose sampled positive-query frequency reaches threshold are
// answered by the classifier (exactly); everything else goes to a Bloom
// backup with bitsPerKey budget.
func New(keys []uint64, querySample []uint64, threshold int, bitsPerKey float64) *Filter {
	keySet := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		keySet[k] = struct{}{}
	}
	// Count positive queries in the sample.
	freq := map[uint64]int{}
	for _, q := range querySample {
		if _, pos := keySet[q]; pos {
			freq[q]++
		}
	}
	f := &Filter{hot: make(map[uint64]struct{}), threshold: threshold}
	var cold []uint64
	for _, k := range keys {
		if freq[k] >= threshold {
			f.hot[k] = struct{}{}
		} else {
			cold = append(cold, k)
		}
	}
	f.backup = bloom.NewBitsSeeded(max(len(cold), 1), bitsPerKey, 0x1EA12ED)
	for _, k := range cold {
		f.backup.Insert(k)
	}
	return f
}

// Contains answers via the classifier for hot keys, the backup filter
// otherwise. No false negatives: every key is in exactly one of the two.
func (f *Filter) Contains(key uint64) bool {
	if _, ok := f.hot[key]; ok {
		return true
	}
	return f.backup.Contains(key)
}

// HotKeys returns how many keys the classifier absorbed.
func (f *Filter) HotKeys() int { return len(f.hot) }

// SizeBits charges the backup filter plus the classifier. The hot table
// is charged at the cost a compact exact representation of its keys
// would need (a perfect-hash table of fingerprint-sized entries ≈ 16
// bits each plus keys' information content is *not* needed — membership
// of a known finite set needs log2(C(u,n)) bits, but we charge a
// practical 16 bits/hot key, comparable to what the papers' model sizes
// amount to).
func (f *Filter) SizeBits() int {
	return f.backup.SizeBits() + len(f.hot)*16
}

var _ core.Filter = (*Filter)(nil)

// Oracle wraps any filter with a query-distribution-aware FPR probe:
// utility for experiments comparing weighted FPR under a skewed query
// distribution (hot keys weighted by their frequency).
func WeightedFPR(f core.Filter, queries []uint64, truth func(uint64) bool) float64 {
	if len(queries) == 0 {
		return 0
	}
	fp := 0
	neg := 0
	for _, q := range queries {
		if truth(q) {
			continue
		}
		neg++
		if f.Contains(q) {
			fp++
		}
	}
	if neg == 0 {
		return 0
	}
	return float64(fp) / float64(neg)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
