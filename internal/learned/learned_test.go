package learned

import (
	"testing"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// buildWorkload returns keys plus a Zipf-skewed positive query sample.
func buildWorkload(n int, seed uint64) (keys, sample []uint64) {
	keys = workload.Keys(n, seed)
	idx := workload.Zipf(n*5, n, 1.3, int64(seed))
	sample = make([]uint64, len(idx))
	for i, j := range idx {
		sample[i] = keys[j]
	}
	return
}

func TestNoFalseNegatives(t *testing.T) {
	keys, sample := buildWorkload(20000, 1)
	f := New(keys, sample, 3, 10)
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
	if f.HotKeys() == 0 {
		t.Fatal("classifier absorbed no keys from a skewed sample")
	}
}

func TestHotKeysLeaveBackup(t *testing.T) {
	keys, sample := buildWorkload(20000, 2)
	f := New(keys, sample, 3, 10)
	// Backup is sized for cold keys only: it should be smaller than a
	// filter over everything at the same bits/key.
	plain := bloom.NewBits(len(keys), 10)
	if f.backup.SizeBits() >= plain.SizeBits() {
		t.Errorf("backup %d bits not below full filter %d", f.backup.SizeBits(), plain.SizeBits())
	}
}

func TestColdNegativeFPRPreserved(t *testing.T) {
	keys, sample := buildWorkload(20000, 3)
	f := New(keys, sample, 3, 10)
	neg := workload.DisjointKeys(100000, 3)
	if fpr := metrics.FPR(f, neg); fpr > 0.02 {
		t.Errorf("negative FPR %g too high", fpr)
	}
}

func TestThresholdControlsAbsorption(t *testing.T) {
	keys, sample := buildWorkload(20000, 4)
	loose := New(keys, sample, 1, 10)
	strict := New(keys, sample, 50, 10)
	if loose.HotKeys() <= strict.HotKeys() {
		t.Errorf("threshold 1 absorbed %d keys, threshold 50 absorbed %d",
			loose.HotKeys(), strict.HotKeys())
	}
}

func TestEmptySample(t *testing.T) {
	keys := workload.Keys(1000, 5)
	f := New(keys, nil, 3, 10)
	if f.HotKeys() != 0 {
		t.Fatal("no sample should mean no hot keys")
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatal("false negatives with empty sample")
	}
}

func TestWeightedFPR(t *testing.T) {
	keys, _ := buildWorkload(1000, 6)
	keySet := map[uint64]bool{}
	for _, k := range keys {
		keySet[k] = true
	}
	f := New(keys, nil, 3, 10)
	neg := workload.DisjointKeys(10000, 6)
	got := WeightedFPR(f, neg, func(k uint64) bool { return keySet[k] })
	plain := metrics.FPR(f, neg)
	if got != plain {
		t.Fatalf("WeightedFPR over pure negatives %g != FPR %g", got, plain)
	}
	if WeightedFPR(f, keys, func(k uint64) bool { return keySet[k] }) != 0 {
		t.Fatal("all-positive stream must have zero weighted FPR")
	}
}
