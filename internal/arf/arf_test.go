package arf

import (
	"math/rand"
	"sort"
	"testing"

	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(5000, 1)
	f := New(keys, 20000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		k := keys[rng.Intn(len(keys))]
		if !f.MayContainRange(k, k) {
			t.Fatalf("point %d reported empty", k)
		}
		if !f.MayContainRange(k-10, k+10) {
			t.Fatalf("covering range reported empty")
		}
	}
}

func TestAdaptResolvesRepeatedFP(t *testing.T) {
	keys := workload.SmallUniverseKeys(1000, 1<<32, 3)
	f := New(keys, 100000)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Find an empty range the coarse tree flags as occupied.
	rng := rand.New(rand.NewSource(5))
	var lo, hi uint64
	found := false
	for i := 0; i < 100000; i++ {
		lo = rng.Uint64() % (1 << 32)
		hi = lo + 100
		j := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
		if (j >= len(sorted) || sorted[j] > hi) && f.MayContainRange(lo, hi) {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no false positive found")
	}
	f.Adapt(lo, hi)
	if f.MayContainRange(lo, hi) {
		t.Fatal("false positive survived Adapt")
	}
	// True positives must survive adaptation.
	for _, k := range keys[:200] {
		if !f.MayContainRange(k, k) {
			t.Fatalf("adaptation removed key %d", k)
		}
	}
}

func TestAdaptOnTruePositiveIsNoop(t *testing.T) {
	keys := []uint64{100}
	f := New(keys, 1000)
	f.Adapt(50, 150) // range actually contains the key: must not break it
	if !f.MayContainRange(50, 150) {
		t.Fatal("adapt on a non-empty range removed the key")
	}
}

func TestBudgetRespected(t *testing.T) {
	keys := workload.Keys(10000, 7)
	f := New(keys, 501)
	for i := 0; i < 1000; i++ {
		lo := uint64(i) * 1e15
		f.Adapt(lo, lo+100)
	}
	if f.Nodes() > 501+2 {
		t.Fatalf("node budget exceeded: %d", f.Nodes())
	}
}

func TestTrainedWorkloadFiltering(t *testing.T) {
	// The ARF sweet spot: a stable repeating query workload gets fully
	// adapted away.
	keys := workload.SmallUniverseKeys(500, 1<<24, 9)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	f := New(keys, 50000)
	qs := workload.UniformRanges(500, 64, 1<<24, 11)
	var emptyQs []workload.RangeQuery
	for _, q := range qs {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q.Lo })
		if i >= len(sorted) || sorted[i] > q.Hi {
			emptyQs = append(emptyQs, q)
		}
	}
	// Train.
	for _, q := range emptyQs {
		if f.MayContainRange(q.Lo, q.Hi) {
			f.Adapt(q.Lo, q.Hi)
		}
	}
	// Repeat: everything trained should now answer empty.
	fps := 0
	for _, q := range emptyQs {
		if f.MayContainRange(q.Lo, q.Hi) {
			fps++
		}
	}
	if fps > len(emptyQs)/50 {
		t.Errorf("after training, %d/%d repeated queries still false-positive", fps, len(emptyQs))
	}
}

func TestInvertedRange(t *testing.T) {
	f := New(workload.Keys(10, 13), 100)
	if f.MayContainRange(10, 5) {
		t.Fatal("inverted range must be empty")
	}
}

func BenchmarkQuery(b *testing.B) {
	keys := workload.Keys(100000, 15)
	f := New(keys, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) * 0x9E3779B97F4A7C15
		f.MayContainRange(lo, lo+1000)
	}
}
