// Package arf implements the Adaptive Range Filter (Alexiou, Kossmann &
// Larson — Hekaton's cold-data filter; §2.5 of the tutorial): a binary
// trie over the integer key space whose leaves carry one "occupied" bit.
// A range query reports non-empty iff it touches an occupied leaf.
//
// The filter is trained: it starts coarse (few leaves, everything that
// contains a key marked occupied) and refines itself when told about
// false positives, splitting the offending leaves — using the underlying
// key set, which the training host (the database) has anyway — until the
// query no longer hits an occupied-but-empty region or the node budget is
// reached. This adaptivity is what lets ARF work well on stable or
// repeating workloads, and the training cost is exactly the limitation
// the tutorial notes.
package arf

import (
	"sort"

	"beyondbloom/internal/core"
)

// node is a trie node covering [lo, hi].
type node struct {
	lo, hi      uint64
	left, right *node
	occupied    bool // meaningful for leaves only
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// Filter is an adaptive range filter.
type Filter struct {
	root     *node
	keys     []uint64 // sorted key set (the training source / remote)
	numNodes int
	budget   int
	adapts   int
}

// New builds an ARF over keys with a node budget (space cap: the encoded
// form costs about 2 bits per node). The initial tree splits down to the
// budget's depth, marking occupied leaves.
func New(keys []uint64, budget int) *Filter {
	if budget < 3 {
		budget = 3
	}
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	f := &Filter{
		root:     &node{lo: 0, hi: ^uint64(0)},
		keys:     dedupSorted(sorted),
		numNodes: 1,
		budget:   budget,
	}
	f.root.occupied = f.hasKeyIn(0, ^uint64(0))
	// Pre-train breadth-first until ~half the budget, leaving room for
	// query-driven adaptation.
	queue := []*node{f.root}
	for len(queue) > 0 && f.numNodes+2 <= budget/2 {
		nd := queue[0]
		queue = queue[1:]
		if !nd.occupied || nd.lo == nd.hi {
			continue
		}
		f.split(nd)
		queue = append(queue, nd.left, nd.right)
	}
	return f
}

func dedupSorted(keys []uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

// hasKeyIn reports whether any training key lies in [lo, hi].
func (f *Filter) hasKeyIn(lo, hi uint64) bool {
	i := sort.Search(len(f.keys), func(i int) bool { return f.keys[i] >= lo })
	return i < len(f.keys) && f.keys[i] <= hi
}

// split turns a leaf into an internal node with two trained children.
func (f *Filter) split(nd *node) {
	mid := nd.lo + (nd.hi-nd.lo)/2
	nd.left = &node{lo: nd.lo, hi: mid}
	nd.right = &node{lo: mid + 1, hi: nd.hi}
	nd.left.occupied = f.hasKeyIn(nd.left.lo, nd.left.hi)
	nd.right.occupied = f.hasKeyIn(nd.right.lo, nd.right.hi)
	f.numNodes += 2
}

// MayContainRange reports whether [lo, hi] may contain a key.
func (f *Filter) MayContainRange(lo, hi uint64) bool {
	if lo > hi {
		return false
	}
	return f.probe(f.root, lo, hi)
}

func (f *Filter) probe(nd *node, lo, hi uint64) bool {
	if hi < nd.lo || lo > nd.hi {
		return false
	}
	if nd.isLeaf() {
		return nd.occupied
	}
	return f.probe(nd.left, lo, hi) || f.probe(nd.right, lo, hi)
}

// Adapt informs the filter that MayContainRange(lo, hi) returned true
// but the range is actually empty. Occupied leaves overlapping the range
// are split (recursively, within budget) so the repeated query stops
// paying.
func (f *Filter) Adapt(lo, hi uint64) {
	f.adapts++
	f.refine(f.root, lo, hi)
}

func (f *Filter) refine(nd *node, lo, hi uint64) {
	if hi < nd.lo || lo > nd.hi {
		return
	}
	if nd.isLeaf() {
		if !nd.occupied || nd.lo == nd.hi || f.numNodes+2 > f.budget {
			return
		}
		// Only split when the leaf is a false positive for this query —
		// i.e. the overlap region is truly empty.
		oLo, oHi := maxU(lo, nd.lo), minU(hi, nd.hi)
		if f.hasKeyIn(oLo, oHi) {
			return // genuine hit; adapting would be wrong
		}
		f.split(nd)
		f.refine(nd.left, lo, hi)
		f.refine(nd.right, lo, hi)
		return
	}
	f.refine(nd.left, lo, hi)
	f.refine(nd.right, lo, hi)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Nodes returns the current node count.
func (f *Filter) Nodes() int { return f.numNodes }

// Adaptations returns how many Adapt calls were made.
func (f *Filter) Adaptations() int { return f.adapts }

// SizeBits charges the paper's succinct encoding: about 2 bits per node
// (shape bit + leaf-occupancy bit). The training key set belongs to the
// host database and is not charged.
func (f *Filter) SizeBits() int { return f.numNodes * 2 }

var _ core.RangeFilter = (*Filter)(nil)
