package xorfilter

import (
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(100000, 1)
	f, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPRMatchesFingerprint(t *testing.T) {
	keys := workload.Keys(50000, 2)
	for _, fp := range []uint{8, 12, 16} {
		f, err := New(keys, fp)
		if err != nil {
			t.Fatal(err)
		}
		neg := workload.DisjointKeys(200000, 2)
		got := metrics.FPR(f, neg)
		want := 1.0 / float64(uint64(1)<<fp)
		if got > want*2.5 {
			t.Errorf("fp=%d: FPR %g, want ≈%g", fp, got, want)
		}
	}
}

func TestSpaceIsAbout1_23(t *testing.T) {
	keys := workload.Keys(100000, 3)
	f, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	perKey := float64(f.SizeBits()) / float64(len(keys))
	if perKey < 1.22*8*0.95 || perKey > 1.23*8*1.1 {
		t.Errorf("bits/key = %f, want ≈ %f", perKey, 1.23*8.0)
	}
}

func TestDuplicateKeys(t *testing.T) {
	keys := []uint64{1, 2, 3, 1, 2, 3, 3, 3}
	f, err := New(keys, 16)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", f.Len())
	}
	for _, k := range []uint64{1, 2, 3} {
		if !f.Contains(k) {
			t.Fatalf("missing key %d", k)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	f, err := New(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Contains(42) {
		t.Error("empty filter claims membership")
	}
	f2, err := New([]uint64{99}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Contains(99) {
		t.Error("singleton filter misses its key")
	}
}

func TestZeroKeySupported(t *testing.T) {
	f, err := New([]uint64{0, 1, 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains(0) {
		t.Error("key 0 lost")
	}
}

func TestImmutableSemantics(t *testing.T) {
	// The filter has no Insert; this test pins the static classification
	// by checking the API surface compiles as core.Filter only.
	keys := workload.Keys(10, 5)
	f, _ := New(keys, 8)
	var _ interface{ Contains(uint64) bool } = f
	if _, ok := interface{}(f).(interface{ Insert(uint64) error }); ok {
		t.Error("XOR filter must not expose Insert")
	}
}

func BenchmarkBuild100k(b *testing.B) {
	keys := workload.Keys(100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(keys, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	keys := workload.Keys(1000000, 5)
	f, err := New(keys, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
