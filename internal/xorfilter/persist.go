package xorfilter

import (
	"io"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

func init() {
	// XOR filters are static — construction peels a key set, so there is
	// no Spec-only builder. Loading a saved filter is the only way to
	// reconstruct one without the keys.
	core.Register(core.TypeXor, "xorfilter",
		func() core.Persistent { return &Filter{} },
		nil)
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (f *Filter) TypeID() uint16 { return core.TypeXor }

// WriteTo serializes the filter as one codec frame: the construction
// Spec (including the peeling seed that succeeded), the segment length,
// and the nested slot-table frame.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	f.spec.Encode(&e)
	e.U64(f.segLen)
	if _, err := f.slots.WriteTo(&e); err != nil {
		return 0, err
	}
	return codec.WriteFrame(w, core.TypeXor, e.Bytes())
}

// ReadFrom restores a filter written by WriteTo into the receiver,
// validating the checksum, the Spec, and the geometry: the segment
// length must match the sizing formula for the stored key count, and
// the slot table must be exactly three segments of fpBits-wide slots.
// On error the receiver is left unchanged.
func (f *Filter) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeXor)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	segLen := d.U64()
	var slots bitvec.Packed
	if d.Err() == nil {
		if _, err := slots.ReadFrom(d); err != nil {
			return 0, err
		}
	}
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if spec.Type != core.TypeXor || spec.FPBits < 1 || spec.FPBits > 32 || spec.Seed == 0 {
		return 0, d.Corruptf("xorfilter: bad spec (type=%d fpBits=%d seed=%d)", spec.Type, spec.FPBits, spec.Seed)
	}
	if spec.N < 0 || spec.N > 1<<40 || segLen != segmentLen(spec.N) {
		return 0, d.Corruptf("xorfilter: segment length %d disagrees with %d keys (want %d)",
			segLen, spec.N, segmentLen(spec.N))
	}
	if uint64(slots.Len()) != 3*segLen || slots.Width() != uint(spec.FPBits) {
		return 0, d.Corruptf("xorfilter: table %d slots × %d bits, want %d × %d",
			slots.Len(), slots.Width(), 3*segLen, spec.FPBits)
	}
	f.spec = spec
	f.slots = &slots
	f.segLen = segLen
	f.fpBits = uint(spec.FPBits)
	return int64(codec.HeaderSize + len(payload)), nil
}

var _ core.Persistent = (*Filter)(nil)
