// Package xorfilter implements the XOR filter (Graf & Lemire, §2.7 of
// the tutorial): a static, algebraic filter built by hypergraph peeling.
// Each key maps to three slots in three equal segments; construction
// assigns slot values so the XOR of a key's three slots equals its
// fingerprint. The structure uses about 1.23·n·f bits for f-bit
// fingerprints and answers queries with exactly three memory probes.
package xorfilter

import (
	"errors"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// ErrConstruction is returned when peeling fails after all seed retries
// (vanishingly unlikely at the 1.23 sizing factor).
var ErrConstruction = errors.New("xorfilter: construction failed")

// Filter is an immutable XOR filter.
type Filter struct {
	spec   core.Spec // construction parameters (key count, fp bits, winning seed)
	slots  *bitvec.Packed
	segLen uint64 // slots per segment (3 segments)
	fpBits uint
}

// sizingFactor is the standard 1.23 slot-per-key overhead.
const sizingFactor = 1.23

// segmentLen returns the per-segment slot count for n keys — one
// deterministic formula shared by construction and the decoder's
// geometry validation.
func segmentLen(n int) uint64 {
	return uint64(float64(n)*sizingFactor/3) + 11
}

// New builds an XOR filter over keys with fpBits-bit fingerprints
// (false-positive rate 2^-fpBits). Duplicate keys are tolerated.
func New(keys []uint64, fpBits uint) (*Filter, error) {
	if fpBits < 1 || fpBits > 32 {
		panic("xorfilter: fingerprint bits must be in [1,32]")
	}
	keys = dedup(keys)
	n := len(keys)
	segLen := segmentLen(n)
	for seed := uint64(1); seed <= 64; seed++ {
		f := &Filter{
			spec: core.Spec{
				Type:   core.TypeXor,
				N:      n,
				FPBits: uint8(fpBits),
				Seed:   seed * 0x9E3779B97F4A7C15,
			},
			slots:  bitvec.NewPacked(int(3*segLen), fpBits),
			segLen: segLen,
			fpBits: fpBits,
		}
		if f.build(keys) {
			return f, nil
		}
	}
	return nil, ErrConstruction
}

// Spec returns the filter's construction parameters, including the
// peeling seed that succeeded.
func (f *Filter) Spec() core.Spec { return f.spec }

func dedup(keys []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	return out
}

// hashes returns the three slot indices and the fingerprint for key.
func (f *Filter) hashes(key uint64) (h [3]uint64, fp uint64) {
	x := hashutil.MixSeed(key, f.spec.Seed)
	fp = hashutil.Fingerprint(x, f.fpBits)
	h[0] = hashutil.Reduce(x, f.segLen)
	h[1] = f.segLen + hashutil.Reduce(hashutil.Mix64(x+1), f.segLen)
	h[2] = 2*f.segLen + hashutil.Reduce(hashutil.Mix64(x+2), f.segLen)
	return
}

// build runs the peeling construction: repeatedly remove keys that are
// the sole occupant of some slot, then assign fingerprints in reverse.
func (f *Filter) build(keys []uint64) bool {
	m := int(3 * f.segLen)
	// Per-slot XOR of incident key ids and degree counts.
	xorKey := make([]uint64, m)
	degree := make([]int32, m)
	for _, k := range keys {
		h, _ := f.hashes(k)
		for _, s := range h {
			xorKey[s] ^= k
			degree[s]++
		}
	}
	// Peel queue: slots of degree 1.
	stackSlot := make([]uint64, 0, len(keys))
	stackKey := make([]uint64, 0, len(keys))
	queue := make([]int, 0, m)
	for s := 0; s < m; s++ {
		if degree[s] == 1 {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if degree[s] != 1 {
			continue
		}
		k := xorKey[s]
		stackSlot = append(stackSlot, uint64(s))
		stackKey = append(stackKey, k)
		h, _ := f.hashes(k)
		for _, hs := range h {
			xorKey[hs] ^= k
			degree[hs]--
			if degree[hs] == 1 {
				queue = append(queue, int(hs))
			}
		}
	}
	if len(stackKey) != len(keys) {
		return false // 2-core non-empty; retry with a new seed
	}
	// Assign in reverse peel order.
	for i := len(stackKey) - 1; i >= 0; i-- {
		k := stackKey[i]
		slot := stackSlot[i]
		h, fp := f.hashes(k)
		v := fp
		for _, hs := range h {
			if hs != slot {
				v ^= f.slots.Get(int(hs))
			}
		}
		f.slots.Set(int(slot), v)
	}
	return true
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key uint64) bool {
	h, fp := f.hashes(key)
	return f.slots.Get(int(h[0]))^f.slots.Get(int(h[1]))^f.slots.Get(int(h[2])) == fp
}

// ContainsBatch probes every key (see core.BatchFilter). All three slot
// indices and the fingerprint are precomputed per chunk, so each key's
// three probes — one per segment, usually three distinct cache lines —
// issue together and overlap across keys instead of waiting on the hash
// of the next key.
func (f *Filter) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	var h0s, h1s, h2s, fps [core.BatchChunk]uint64
	for start := 0; start < len(keys); start += core.BatchChunk {
		chunk := keys[start:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[start : start+len(chunk)]
		for i, k := range chunk {
			h, fp := f.hashes(k)
			h0s[i], h1s[i], h2s[i], fps[i] = h[0], h[1], h[2], fp
		}
		for i := range chunk {
			co[i] = f.slots.Get(int(h0s[i]))^f.slots.Get(int(h1s[i]))^f.slots.Get(int(h2s[i])) == fps[i]
		}
	}
}

// Len returns the number of keys the filter was built over.
func (f *Filter) Len() int { return f.spec.N }

// SizeBits returns the footprint in bits.
func (f *Filter) SizeBits() int { return f.slots.SizeBits() }

var (
	_ core.Filter      = (*Filter)(nil)
	_ core.BatchFilter = (*Filter)(nil)
)
