package yesno

import (
	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Seesaw is a seesaw-counting-filter-style blocker (Li et al., §3.3): a
// counting-Bloom yes-list whose cells can be "pressed down" to protect
// benign keys. The static no-list is applied at build time; the dynamic
// extension decrements a discovered victim's cells so it stops being
// blocked.
//
// The tutorial's caveat is the point of this implementation: the dynamic
// extension "is not guaranteed to prevent false positives by doing so
// and can also introduce false negatives" — decrementing a cell shared
// with a malicious URL can release that URL. Experiment E14 measures
// both effects next to the adaptive filter, which has neither.
type Seesaw struct {
	counters *bitvec.Packed
	m        uint64
	k        uint
	seed     uint64
	maxCount uint64
}

// NewSeesaw builds the blocker over malicious URLs with bitsPerKey cells
// (4-bit counters) and a static no-list applied at build time.
func NewSeesaw(malicious, staticNoList []string, bitsPerKey float64) *Seesaw {
	n := max(len(malicious), 1)
	m := uint64(float64(n) * bitsPerKey)
	if m < 64 {
		m = 64
	}
	s := &Seesaw{
		counters: bitvec.NewPacked(int(m), 4),
		m:        m,
		k:        uint(core.BloomOptimalK(bitsPerKey)),
		seed:     0x5EE5A0,
		maxCount: 15,
	}
	for _, u := range malicious {
		s.press(Key(u), +1)
	}
	for _, u := range staticNoList {
		s.Protect(u)
	}
	return s
}

func (s *Seesaw) cells(key uint64, fn func(pos int)) {
	h1, h2 := hashutil.SplitHash(hashutil.MixSeed(key, s.seed))
	for i := uint(0); i < s.k; i++ {
		fn(int(hashutil.Reduce(hashutil.KHash(h1, h2, i), s.m)))
	}
}

// press adjusts a key's cells by +1 (yes side) or, for delta -1, presses
// them toward the no side (clamped at 0).
func (s *Seesaw) press(key uint64, delta int) {
	s.cells(key, func(pos int) {
		v := s.counters.Get(pos)
		if delta > 0 {
			if v < s.maxCount {
				s.counters.Set(pos, v+1)
			}
			return
		}
		if v > 0 {
			s.counters.Set(pos, v-1)
		}
	})
}

// Protect adds url to the no-list dynamically: its cells are pressed
// down until at least one is zero, so the url stops being blocked. Cells
// shared with malicious URLs lose a count — the documented
// false-negative hazard.
func (s *Seesaw) Protect(url string) {
	key := Key(url)
	for round := 0; round < int(s.maxCount); round++ {
		zero := false
		s.cells(key, func(pos int) {
			if s.counters.Get(pos) == 0 {
				zero = true
			}
		})
		if zero {
			return
		}
		s.press(key, -1)
	}
}

// Check blocks when every cell is positive; verified-benign hits are
// dynamically protected (the SSCF extension).
func (s *Seesaw) Check(url string, isMalicious bool) Verdict {
	key := Key(url)
	blocked := true
	s.cells(key, func(pos int) {
		if s.counters.Get(pos) == 0 {
			blocked = false
		}
	})
	if !blocked {
		return Verdict{}
	}
	if !isMalicious {
		s.Protect(url)
		return Verdict{Verified: true}
	}
	return Verdict{Blocked: true, Verified: true}
}

// SizeBits returns the counter array footprint.
func (s *Seesaw) SizeBits() int { return s.counters.SizeBits() }

var _ Blocker = (*Seesaw)(nil)
