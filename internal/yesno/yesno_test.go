package yesno

import (
	"math/rand"
	"testing"

	"beyondbloom/internal/workload"
)

// traffic builds a stream with a hot benign subset (the repeatedly
// visited sites the tutorial worries about) plus malicious hits.
func traffic(malicious, benign []string, hot []string, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	stream := make([]string, n)
	for i := range stream {
		switch r := rng.Float64(); {
		case r < 0.05:
			stream[i] = malicious[rng.Intn(len(malicious))]
		case r < 0.65:
			stream[i] = hot[rng.Intn(len(hot))]
		default:
			stream[i] = benign[rng.Intn(len(benign))]
		}
	}
	return stream
}

func setup(seed int64) (malicious, benign, hot []string, malSet map[string]bool) {
	urls := workload.URLs(30000, seed)
	malicious = urls[:10000]
	benign = urls[10000:]
	hot = benign[:200]
	malSet = map[string]bool{}
	for _, u := range malicious {
		malSet[u] = true
	}
	return
}

func TestAllMaliciousBlocked(t *testing.T) {
	malicious, benign, hot, malSet := setup(1)
	stream := traffic(malicious, benign, hot, 50000, 2)
	for name, b := range map[string]Blocker{
		"plain":    NewPlainBloom(malicious, 10),
		"static":   NewStaticNoList(malicious, hot, 10),
		"adaptive": NewAdaptive(malicious, 15, 8),
	} {
		st := Run(b, stream, malSet)
		// Every malicious request must be blocked (no false negatives).
		wantBlocked := 0
		for _, u := range stream {
			if malSet[u] {
				wantBlocked++
			}
		}
		if st.Blocked != wantBlocked {
			t.Errorf("%s: blocked %d, want %d", name, st.Blocked, wantBlocked)
		}
	}
}

func TestAdaptiveStopsRepayingHotBenign(t *testing.T) {
	malicious, benign, hot, malSet := setup(3)
	stream := traffic(malicious, benign, hot, 100000, 4)

	plain := NewPlainBloom(malicious, 8)
	adaptiveB := NewAdaptive(malicious, 15, 6) // coarse: FPs frequent

	stPlain := Run(plain, stream, malSet)
	stAdaptive := Run(adaptiveB, stream, malSet)

	if stPlain.FalseBlocks == 0 {
		t.Skip("plain filter produced no false blocks at this density")
	}
	// Adaptive should pay O(distinct benign URLs) once each, far fewer
	// than plain's per-visit penalty on hot URLs.
	if stAdaptive.FalseBlocks*4 > stPlain.FalseBlocks {
		t.Errorf("adaptive false blocks %d not well below plain %d",
			stAdaptive.FalseBlocks, stPlain.FalseBlocks)
	}
}

func TestStaticNoListProtectsKnownHot(t *testing.T) {
	malicious, _, hot, malSet := setup(5)
	// Stream of ONLY the known hot benign URLs: the no-list covers
	// exactly these, so false blocks should all but vanish. (Cold benign
	// URLs remain unprotected — the static design's limitation, measured
	// by experiment E14.)
	rng := rand.New(rand.NewSource(6))
	onlyHot := make([]string, 30000)
	for i := range onlyHot {
		onlyHot[i] = hot[rng.Intn(len(hot))]
	}
	static := NewStaticNoList(malicious, hot, 10)
	plain := NewPlainBloom(malicious, 10)
	stStatic := Run(static, onlyHot, malSet)
	stPlain := Run(plain, onlyHot, malSet)
	if stPlain.FalseBlocks == 0 {
		t.Skip("plain produced no false blocks on the hot set")
	}
	if stStatic.FalseBlocks > stPlain.FalseBlocks/10 {
		t.Errorf("static no-list false blocks %d vs plain %d on known-hot traffic", stStatic.FalseBlocks, stPlain.FalseBlocks)
	}
}

func TestAdaptiveSecondVisitFree(t *testing.T) {
	malicious, _, _, _ := setup(7)
	b := NewAdaptive(malicious, 15, 6)
	// Find a benign URL that false-positives.
	probe := workload.URLs(50000, 99)
	var fp string
	for _, u := range probe {
		if b.filter.Contains(Key(u)) {
			fp = u
			break
		}
	}
	if fp == "" {
		t.Skip("no FP found")
	}
	first := b.Check(fp, false)
	if !first.Verified {
		t.Fatal("first visit should verify")
	}
	second := b.Check(fp, false)
	if second.Verified || second.Blocked {
		t.Fatal("second visit still paying after adaptation")
	}
}

func TestKeyDeterministic(t *testing.T) {
	if Key("http://a.com/x") != Key("http://a.com/x") {
		t.Fatal("Key not deterministic")
	}
	if Key("http://a.com/x") == Key("http://a.com/y") {
		t.Fatal("distinct URLs share keys (hash collapse)")
	}
}

func TestSeesawBlocksMalicious(t *testing.T) {
	malicious, _, hot, _ := setup(9)
	s := NewSeesaw(malicious, nil, 10)
	for _, u := range malicious[:2000] {
		v := s.Check(u, true)
		if !v.Blocked {
			t.Fatalf("malicious URL not blocked before any protection")
		}
	}
	_ = hot
}

func TestSeesawProtectStopsBlocking(t *testing.T) {
	malicious, _, _, _ := setup(11)
	s := NewSeesaw(malicious, nil, 8)
	// Find a benign URL that gets blocked (false positive).
	probe := workload.URLs(100000, 77)
	var fp string
	for _, u := range probe {
		if v := s.Check(u, false); v.Verified {
			fp = u
			break
		}
	}
	if fp == "" {
		t.Skip("no false positive found")
	}
	// Check fired Protect already; second visit must pass free.
	if v := s.Check(fp, false); v.Verified {
		t.Fatal("protected URL still paying")
	}
}

func TestSeesawDynamicProtectionCausesFalseNegatives(t *testing.T) {
	// The tutorial's caveat: pressing down cells to protect benign URLs
	// can release malicious ones. Protect many benign URLs and count
	// malicious URLs that are no longer blocked.
	malicious, benign, _, _ := setup(13)
	s := NewSeesaw(malicious, nil, 8)
	for _, u := range benign[:5000] {
		s.Protect(u)
	}
	released := 0
	for _, u := range malicious {
		if v := s.Check(u, true); !v.Blocked {
			released++
		}
	}
	if released == 0 {
		t.Error("expected false negatives after aggressive dynamic protection (the documented SSCF hazard)")
	}
	t.Logf("released %d/%d malicious URLs after 5000 dynamic protections", released, len(malicious))
}

func TestSeesawStaticNoList(t *testing.T) {
	malicious, _, hot, malSet := setup(15)
	s := NewSeesaw(malicious, hot, 10)
	stream := make([]string, 0, 10000)
	for i := 0; i < 10000; i++ {
		stream = append(stream, hot[i%len(hot)])
	}
	st := Run(s, stream, malSet)
	if st.FalseBlocks > 0 {
		t.Errorf("static no-list members still false-blocked %d times", st.FalseBlocks)
	}
}
