// Package yesno implements the §3.3 networking/cybersecurity case study:
// blocking malicious URLs with a filter ("yes list") while protecting
// important benign URLs from false blocking ("no list").
//
// Three blockers reproduce the tutorial's storyline:
//
//   - PlainBloom: the traditional design. Benign URLs that collide with
//     the filter pay the verification penalty forever.
//   - StaticNoList: a stacked/Bloomier-style design where a known, fixed
//     set of benign URLs is exempted at build time (Chazelle et al.'s
//     Bloomier filter, SSCF, the Integrated Filter). Unknown benign URLs
//     still pay.
//   - Adaptive: an adaptive-filter design (Wen et al.): any benign URL
//     discovered to be falsely blocked is adapted away, so each pays the
//     penalty O(1) times — solving the dynamic yes/no-list problem.
package yesno

import (
	"beyondbloom/internal/adaptive"
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/hashutil"
	"beyondbloom/internal/stacked"
)

// Key hashes a URL to the uint64 key space shared by all blockers.
// Sum64String hashes the string in place, so the per-check []byte
// conversion (one heap allocation per URL) is gone from the hot path.
func Key(url string) uint64 { return hashutil.Sum64String(url, 0x09e5) }

// Verdict is the result of checking one URL.
type Verdict struct {
	Blocked bool
	// Verified reports whether the expensive URL-verification step ran
	// (the cost filters exist to avoid).
	Verified bool
}

// Blocker is a malicious-URL filter frontend.
type Blocker interface {
	// Check classifies a URL. isMalicious is ground truth supplied by
	// the verification oracle, consulted only when the filter fires.
	Check(url string, isMalicious bool) Verdict
	SizeBits() int
}

// PlainBloom is the traditional Bloom-filter blocker.
type PlainBloom struct {
	filter *bloom.Filter
}

// NewPlainBloom builds the blocker over the malicious URL set.
func NewPlainBloom(malicious []string, bitsPerKey float64) *PlainBloom {
	f := bloom.NewBits(max(len(malicious), 1), bitsPerKey)
	for _, u := range malicious {
		f.Insert(Key(u))
	}
	return &PlainBloom{filter: f}
}

// Check blocks when the filter fires; a fired filter triggers
// verification, and verified-benign URLs are passed through (but the
// penalty was paid, and will be paid again next time).
func (p *PlainBloom) Check(url string, isMalicious bool) Verdict {
	if !p.filter.Contains(Key(url)) {
		return Verdict{}
	}
	return Verdict{Blocked: isMalicious, Verified: true}
}

// SizeBits returns the filter footprint.
func (p *PlainBloom) SizeBits() int { return p.filter.SizeBits() }

// StaticNoList exempts a fixed benign sample via a stacked filter.
type StaticNoList struct {
	filter *stacked.Filter
}

// NewStaticNoList builds the blocker over malicious URLs with a static
// no-list of known benign URLs.
func NewStaticNoList(malicious, knownBenign []string, bitsPerKey float64) *StaticNoList {
	pos := make([]uint64, len(malicious))
	for i, u := range malicious {
		pos[i] = Key(u)
	}
	neg := make([]uint64, len(knownBenign))
	for i, u := range knownBenign {
		neg[i] = Key(u)
	}
	return &StaticNoList{filter: stacked.New(pos, neg, bitsPerKey, 3)}
}

// Check blocks when the stacked filter fires.
func (s *StaticNoList) Check(url string, isMalicious bool) Verdict {
	if !s.filter.Contains(Key(url)) {
		return Verdict{}
	}
	return Verdict{Blocked: isMalicious, Verified: true}
}

// SizeBits returns the stacked filter footprint.
func (s *StaticNoList) SizeBits() int { return s.filter.SizeBits() }

// Adaptive uses an adaptive quotient filter: every verified-benign hit is
// adapted away, building the no-list dynamically.
type Adaptive struct {
	filter *adaptive.QF
}

// NewAdaptive builds the blocker over malicious URLs. q and r size the
// quotient filter.
func NewAdaptive(malicious []string, q, r uint) *Adaptive {
	f := adaptive.NewQF(q, r, adaptive.ExtendUntilDistinct)
	for _, u := range malicious {
		if err := f.Insert(Key(u)); err != nil {
			panic("yesno: adaptive filter full — raise q")
		}
	}
	return &Adaptive{filter: f}
}

// Check blocks when the filter fires; verified-benign hits adapt the
// filter so the same URL never pays again.
func (a *Adaptive) Check(url string, isMalicious bool) Verdict {
	k := Key(url)
	if !a.filter.Contains(k) {
		return Verdict{}
	}
	if !isMalicious {
		a.filter.Adapt(k)
		return Verdict{Verified: true}
	}
	return Verdict{Blocked: true, Verified: true}
}

// SizeBits returns the filter footprint including adaptivity bits.
func (a *Adaptive) SizeBits() int { return a.filter.SizeBits() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats aggregates a blocker's behaviour over a traffic stream.
type Stats struct {
	Requests      int
	Blocked       int
	Verifications int
	FalseBlocks   int // benign URLs that would have been delayed/blocked
}

// Run replays a URL stream against a blocker. maliciousSet supplies
// ground truth (standing in for the expensive verification service).
func Run(b Blocker, stream []string, maliciousSet map[string]bool) Stats {
	var st Stats
	for _, u := range stream {
		st.Requests++
		v := b.Check(u, maliciousSet[u])
		if v.Verified {
			st.Verifications++
			if !maliciousSet[u] {
				st.FalseBlocks++
			}
		}
		if v.Blocked {
			st.Blocked++
		}
	}
	return st
}
