// Package rosetta implements Rosetta (Luo et al., §2.5 of the tutorial):
// a range filter made of a hierarchy of Bloom filters, one per prefix
// length, forming an implicit segment tree over the key space. A range
// query decomposes into dyadic intervals; each interval's prefix is
// probed in the Bloom filter of its level and, on a positive, recursively
// refined down to the bottom level. Only a bottom-level (full-key)
// positive makes the query return "maybe non-empty", which gives Rosetta
// its robustness for point and short-range queries — and its two
// weaknesses the tutorial calls out: false-positive rate that grows with
// range length, and high CPU cost from the many probes.
package rosetta

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
)

// Filter is an immutable-capacity, insert-supporting Rosetta filter over
// uint64 keys.
type Filter struct {
	// blooms[i] covers prefixes of length minLevel+i bits; the last entry
	// covers full 64-bit keys.
	blooms   []*bloom.Filter
	minLevel uint
	probes   int // cumulative probe count (CPU-cost diagnostic)
	n        int
}

// New returns a Rosetta filter sized for n keys with bitsPerKey total
// memory budget, supporting range queries up to 2^maxRangeLog long.
// Levels above 64-maxRangeLog are not materialized: dyadic intervals
// larger than the longest supported query never need probing, and
// queries longer than 2^maxRangeLog degrade gracefully (their oversized
// intervals are assumed non-empty — "eventually provides no filtering").
func New(n int, bitsPerKey float64, maxRangeLog uint) *Filter {
	if maxRangeLog < 1 || maxRangeLog > 63 {
		panic("rosetta: maxRangeLog must be in [1,63]")
	}
	levels := int(maxRangeLog) + 1
	f := &Filter{minLevel: 64 - maxRangeLog, n: n}
	// Bottom-heavy memory split (the paper's tuning): the full-key level
	// gets half the budget and each level above gets half of what the
	// level below it got. Starved upper levels would pass almost every
	// probe, and with two children per positive node the doubting
	// recursion then *multiplies* surviving paths faster than thin
	// filters can kill them.
	share := bitsPerKey / 2
	budgets := make([]float64, levels)
	for i := levels - 1; i >= 0; i-- {
		budgets[i] = share
		if i > 0 {
			share /= 2
		} else {
			budgets[0] += share // fold the remainder into the top level
		}
	}
	for i := 0; i < levels; i++ {
		seed := 0x40533774 + uint64(i)*0x9E3779B97F4A7C15
		f.blooms = append(f.blooms, bloom.NewBitsSeeded(n, budgets[i], seed))
	}
	return f
}

// NewEvenSplit is New with the memory budget divided evenly across
// levels instead of bottom-heavy. It exists for the ablation experiment
// (A2): even splits starve the doubting recursion and the compound FPR
// balloons, which is why the geometric split is the default.
func NewEvenSplit(n int, bitsPerKey float64, maxRangeLog uint) *Filter {
	if maxRangeLog < 1 || maxRangeLog > 63 {
		panic("rosetta: maxRangeLog must be in [1,63]")
	}
	levels := int(maxRangeLog) + 1
	f := &Filter{minLevel: 64 - maxRangeLog, n: n}
	per := bitsPerKey / float64(levels)
	for i := 0; i < levels; i++ {
		seed := 0x40533774 + uint64(i)*0x9E3779B97F4A7C15
		f.blooms = append(f.blooms, bloom.NewBitsSeeded(n, per, seed))
	}
	return f
}

// Insert adds key: every materialized level records the corresponding
// prefix.
func (f *Filter) Insert(key uint64) error {
	for i, b := range f.blooms {
		level := f.minLevel + uint(i)
		b.Insert(key >> (64 - level))
	}
	return nil
}

// Contains is a point query: a single probe of the bottom filter.
func (f *Filter) Contains(key uint64) bool {
	f.probes++
	return f.blooms[len(f.blooms)-1].Contains(key)
}

// MayContainRange reports whether [lo, hi] may contain a key: greedy
// dyadic decomposition, each piece probed and recursively refined.
func (f *Filter) MayContainRange(lo, hi uint64) bool {
	if lo > hi {
		return false
	}
	for {
		// Largest dyadic block starting at lo and fitting within hi.
		k := uint(0)
		for k < 63 {
			size := uint64(1) << (k + 1)
			if lo&(size-1) != 0 {
				break
			}
			if hi-lo < size-1 { // block [lo, lo+size-1] must fit
				break
			}
			k++
		}
		if f.doubt(lo>>k, 64-k) {
			return true
		}
		next := lo + 1<<k
		if next > hi || next < lo { // done or wrapped
			return false
		}
		lo = next
	}
}

// doubt checks whether the dyadic interval (prefix at the given level)
// may be non-empty, recursing toward the bottom level.
func (f *Filter) doubt(prefix uint64, level uint) bool {
	if level < f.minLevel {
		// Interval larger than the filter is provisioned for: cannot
		// filter, assume non-empty.
		return true
	}
	f.probes++
	if !f.blooms[level-f.minLevel].Contains(prefix) {
		return false
	}
	if level == 64 {
		return true // full-key positive
	}
	return f.doubt(prefix<<1, level+1) || f.doubt(prefix<<1|1, level+1)
}

// Probes returns the cumulative number of Bloom probes (CPU cost proxy).
func (f *Filter) Probes() int { return f.probes }

// SizeBits returns the total footprint of all levels.
func (f *Filter) SizeBits() int {
	total := 0
	for _, b := range f.blooms {
		total += b.SizeBits()
	}
	return total
}

var _ core.RangeFilter = (*Filter)(nil)
