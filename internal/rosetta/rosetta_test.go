package rosetta

import (
	"math/rand"
	"sort"
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func buildFilter(t *testing.T, keys []uint64, bpk float64, maxRangeLog uint) *Filter {
	t.Helper()
	f := New(len(keys), bpk, maxRangeLog)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestPointNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(20000, 1)
	f := buildFilter(t, keys, 16, 10)
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestRangeNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(5000, 2)
	f := buildFilter(t, keys, 16, 10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		k := keys[rng.Intn(len(keys))]
		span := rng.Uint64()%1000 + 1
		lo := k - rng.Uint64()%span
		if lo > k {
			lo = 0
		}
		hi := lo + span
		if hi < k {
			hi = k
		}
		if !f.MayContainRange(lo, hi) {
			t.Fatalf("range [%d,%d] contains %d but reported empty", lo, hi, k)
		}
	}
}

func TestShortRangeFPRLow(t *testing.T) {
	keys := workload.Keys(20000, 5)
	f := buildFilter(t, keys, 20, 12)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	emptyRangesOf := func(length uint64, m int, seed int64) [][2]uint64 {
		qs := workload.UniformRanges(m*2, length, ^uint64(0)-length-1, seed)
		var out [][2]uint64
		for _, q := range qs {
			i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q.Lo })
			if i >= len(sorted) || sorted[i] > q.Hi {
				out = append(out, [2]uint64{q.Lo, q.Hi})
			}
			if len(out) == m {
				break
			}
		}
		return out
	}
	shortFPR := metrics.RangeFPR(f, emptyRangesOf(2, 3000, 7))
	longFPR := metrics.RangeFPR(f, emptyRangesOf(1<<11, 3000, 9))
	if shortFPR > 0.05 {
		t.Errorf("short-range FPR %g too high", shortFPR)
	}
	// The tutorial: Rosetta's FPR grows rapidly with range length.
	if longFPR < shortFPR {
		t.Errorf("long-range FPR %g below short-range %g — expected growth", longFPR, shortFPR)
	}
}

func TestOversizedRangeNoFiltering(t *testing.T) {
	keys := workload.Keys(1000, 11)
	f := buildFilter(t, keys, 16, 8)
	// A range far longer than 2^8 cannot be filtered: must return true
	// ("eventually provides no filtering").
	if !f.MayContainRange(1<<30, 1<<30+1<<20) {
		t.Fatal("oversized range filtered — should degrade to no filtering")
	}
}

func TestProbeCountGrowsWithRange(t *testing.T) {
	keys := workload.Keys(5000, 13)
	f := buildFilter(t, keys, 16, 12)
	f.probes = 0
	f.MayContainRange(12345, 12345+3)
	shortProbes := f.Probes()
	f.probes = 0
	f.MayContainRange(12345, 12345+4000)
	longProbes := f.Probes()
	if longProbes <= shortProbes {
		t.Errorf("probe counts: short %d, long %d — CPU cost should grow", shortProbes, longProbes)
	}
}

func TestInvertedRange(t *testing.T) {
	f := buildFilter(t, workload.Keys(10, 17), 16, 8)
	if f.MayContainRange(100, 50) {
		t.Fatal("inverted range must be empty")
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	f := New(100000, 18, 10)
	keys := workload.Keys(100000, 19)
	for _, k := range keys {
		f.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) * 0x9E3779B97F4A7C15
		f.MayContainRange(lo, lo+255)
	}
}

func TestPointQueryUsesBottomFilter(t *testing.T) {
	f := buildFilter(t, workload.Keys(5000, 21), 16, 10)
	f.probes = 0
	f.Contains(12345)
	if f.Probes() != 1 {
		t.Fatalf("point query used %d probes, want 1", f.Probes())
	}
}

func TestEvenSplitWorseAtShortRanges(t *testing.T) {
	keys := workload.Keys(10000, 23)
	geo := New(len(keys), 18, 12)
	even := NewEvenSplit(len(keys), 18, 12)
	for _, k := range keys {
		geo.Insert(k)
		even.Insert(k)
	}
	// Sample empty short ranges (uniform random in the full space is
	// almost surely empty at this density).
	rng := rand.New(rand.NewSource(25))
	geoFP, evenFP := 0, 0
	for i := 0; i < 3000; i++ {
		lo := rng.Uint64()
		if geo.MayContainRange(lo, lo+15) {
			geoFP++
		}
		if even.MayContainRange(lo, lo+15) {
			evenFP++
		}
	}
	if evenFP <= geoFP {
		t.Errorf("even split FPs %d not above geometric %d", evenFP, geoFP)
	}
}

func TestBadMaxRangeLogPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(10, 16, 0) },
		func() { New(10, 16, 64) },
		func() { NewEvenSplit(10, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad maxRangeLog should panic")
				}
			}()
			fn()
		}()
	}
}

func TestSizeBitsCoversAllLevels(t *testing.T) {
	f := New(1000, 20, 8)
	if f.SizeBits() < 1000*15 {
		t.Errorf("SizeBits %d suspiciously small for 20 bits/key", f.SizeBits())
	}
}
