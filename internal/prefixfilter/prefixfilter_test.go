package prefixfilter

import (
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(50000, 1)
	f := New(len(keys), 12)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPR(t *testing.T) {
	keys := workload.Keys(50000, 2)
	f := New(len(keys), 12)
	for _, k := range keys {
		f.Insert(k)
	}
	// A bucketized filter's FPR is (average bucket occupancy)·2^-f:
	// ~22 fingerprints per bucket × 2^-12 ≈ 0.0054, plus the spare.
	neg := workload.DisjointKeys(200000, 2)
	if fpr := metrics.FPR(f, neg); fpr > 0.009 {
		t.Errorf("FPR %f, want ≈ occupancy·2^-12 ≈ 0.0055", fpr)
	}
}

func TestSpillPath(t *testing.T) {
	// Overload a tiny filter so buckets overflow into the spare.
	f := New(100, 12)
	keys := workload.Keys(3000, 3)
	inserted := []uint64{}
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			break
		}
		inserted = append(inserted, k)
	}
	if f.Spilled() == 0 {
		t.Fatal("expected spills under overload")
	}
	if fn := metrics.FalseNegatives(f, inserted); fn != 0 {
		t.Fatalf("%d false negatives with spills", fn)
	}
}

func TestSpaceReasonable(t *testing.T) {
	n := 50000
	keys := workload.Keys(n, 5)
	f := New(n, 12)
	for _, k := range keys {
		f.Insert(k)
	}
	perKey := float64(f.SizeBits()) / float64(n)
	if perKey > 20 {
		t.Errorf("bits/key = %f, want modest overhead over 12", perKey)
	}
}

func BenchmarkInsert(b *testing.B) {
	f := New(b.N+1, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(1<<20, 12)
	for i := 0; i < 1<<20; i++ {
		f.Insert(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
