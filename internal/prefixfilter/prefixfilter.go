// Package prefixfilter implements a simplified Prefix filter (Even,
// Even & Morrison, §2.1 of the tutorial): a semi-dynamic,
// incrementally-buildable filter organized as first-level buckets of
// sorted fingerprints plus a small "spare" second level that absorbs
// bucket overflows. The original achieves this with pocket dictionaries
// and bin packing; this implementation keeps the architecture (bounded
// buckets + spare, inserts but no deletes, near-cuckoo query speed) with
// plain sorted byte-bucket storage, and documents the substitution in
// DESIGN.md.
package prefixfilter

import (
	"sort"

	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/hashutil"
)

// bucketCap is the first-level bucket capacity. Sized so that at design
// load most keys land in the first level and only a few percent spill.
const bucketCap = 25

// Filter is a prefix filter over uint64 keys: insert and lookup, no
// deletes (semi-dynamic).
type Filter struct {
	buckets    [][]uint32 // sorted fpBits-bit fingerprints
	numBuckets uint64
	fpBits     uint
	spare      *cuckoo.Filter
	seed       uint64
	n          int
	spilled    int
}

// New returns a prefix filter sized for n keys with fpBits-bit
// fingerprints.
func New(n int, fpBits uint) *Filter {
	if fpBits < 2 || fpBits > 32 {
		panic("prefixfilter: fingerprint bits must be in [2,32]")
	}
	nb := uint64(1)
	// Aim for ~90% of bucketCap average occupancy.
	for float64(nb)*bucketCap*0.9 < float64(n) {
		nb <<= 1
	}
	return &Filter{
		buckets:    make([][]uint32, nb),
		numBuckets: nb,
		fpBits:     fpBits,
		spare:      cuckoo.New(n/10+64, fpBits),
		seed:       0x9EF1C,
	}
}

func (f *Filter) bucketAndFP(key uint64) (uint64, uint32) {
	h := hashutil.MixSeed(key, f.seed)
	return hashutil.Reduce(h, f.numBuckets), uint32(hashutil.Fingerprint(h>>32, f.fpBits))
}

// Insert adds key. Overflowing buckets spill to the spare filter; the
// filter is full only when the spare is.
func (f *Filter) Insert(key uint64) error {
	b, fp := f.bucketAndFP(key)
	bucket := f.buckets[b]
	i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= fp })
	if i < len(bucket) && bucket[i] == fp {
		f.n++
		return nil // fingerprint already present
	}
	if len(bucket) < bucketCap {
		bucket = append(bucket, 0)
		copy(bucket[i+1:], bucket[i:])
		bucket[i] = fp
		f.buckets[b] = bucket
		f.n++
		return nil
	}
	// Spill to the spare level, keyed so lookups can recompute.
	if err := f.spare.Insert(key); err != nil {
		return err
	}
	f.spilled++
	f.n++
	return nil
}

// Contains reports whether key may be present.
func (f *Filter) Contains(key uint64) bool {
	b, fp := f.bucketAndFP(key)
	bucket := f.buckets[b]
	i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= fp })
	if i < len(bucket) && bucket[i] == fp {
		return true
	}
	if len(bucket) == bucketCap { // only full buckets can have spilled
		return f.spare.Contains(key)
	}
	return false
}

// Len returns the number of inserted keys.
func (f *Filter) Len() int { return f.n }

// Spilled returns how many inserts went to the spare level.
func (f *Filter) Spilled() int { return f.spilled }

// SizeBits charges the first level at fpBits per stored fingerprint plus
// bucket bookkeeping, and the spare at its table size.
func (f *Filter) SizeBits() int {
	stored := 0
	for _, b := range f.buckets {
		stored += len(b)
	}
	return stored*int(f.fpBits) + int(f.numBuckets)*8 + f.spare.SizeBits()
}

var _ core.MutableFilter = (*Filter)(nil)
