package bloomier

import (
	"errors"
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func buildPairs(n int, seed uint64) ([]uint64, []uint64) {
	keys := workload.Keys(n, seed)
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i % 251)
	}
	return keys, values
}

func TestExactValues(t *testing.T) {
	keys, values := buildPairs(50000, 1)
	f, err := New(keys, values, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		got := f.Get(k)
		if len(got) != 1 || got[0] != values[i] {
			t.Fatalf("Get(%d) = %v, want [%d] — PRS must be exactly 1", k, got, values[i])
		}
	}
}

func TestNegativeQueries(t *testing.T) {
	keys, values := buildPairs(20000, 2)
	f, err := New(keys, values, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	neg := workload.DisjointKeys(100000, 2)
	fpr := metrics.FPR(f, neg)
	if fpr > 2.5/1024 {
		t.Errorf("FPR %g, want ≈ 2^-10", fpr)
	}
	// NRS: candidates per negative query must be <= 1.
	for _, k := range neg[:10000] {
		if len(f.Get(k)) > 1 {
			t.Fatal("NRS > 1")
		}
	}
}

func TestUpdate(t *testing.T) {
	keys, values := buildPairs(1000, 3)
	f, err := New(keys, values, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Update(keys[5], 123); err != nil {
		t.Fatal(err)
	}
	if got := f.Get(keys[5]); len(got) != 1 || got[0] != 123 {
		t.Fatalf("after update Get = %v", got)
	}
	// Other keys untouched.
	for i, k := range keys {
		if i == 5 {
			continue
		}
		if got := f.Get(k); len(got) != 1 || got[0] != values[i] {
			t.Fatalf("update corrupted key %d: %v", i, got)
		}
	}
}

func TestUpdateUnknownKey(t *testing.T) {
	keys, values := buildPairs(1000, 4)
	f, err := New(keys, values, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	unknown := workload.DisjointKeys(100, 4)
	rejected := 0
	for _, k := range unknown {
		if err := f.Update(k, 9); errors.Is(err, ErrUnknownKey) {
			rejected++
		}
	}
	if rejected < 99 { // ~2^-16 slip probability
		t.Errorf("only %d/100 unknown updates rejected", rejected)
	}
}

func TestEmpty(t *testing.T) {
	f, err := New(nil, nil, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Contains(1) {
		t.Error("empty bloomier claims membership")
	}
}

func TestMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	New([]uint64{1}, nil, 8, 8)
}

func BenchmarkGet(b *testing.B) {
	keys, values := buildPairs(100000, 9)
	f, err := New(keys, values, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Get(keys[i%len(keys)])
	}
}
