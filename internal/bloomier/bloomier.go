// Package bloomier implements the Bloomier filter (Chazelle et al.,
// §2.4 of the tutorial): a static maplet built over a fixed key set. A
// query for a present key returns exactly its value (PRS = 1); a query
// for an absent key is detected with probability 1-ε and otherwise
// returns one arbitrary value (NRS ≤ 1). Values of existing keys can be
// updated in O(1), but new keys cannot be inserted.
//
// Construction follows Chazelle's two-table design: a selector table G,
// built by 3-hypergraph peeling, encodes for each key which of its three
// slots is "critical" along with a checksum; a value table V stores the
// value at the critical slot. Updates write V directly without touching
// G, which is what distinguishes a Bloomier filter from an XOR filter
// with values.
package bloomier

import (
	"errors"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// ErrConstruction is returned when peeling fails after all seed retries.
var ErrConstruction = errors.New("bloomier: construction failed")

// ErrUnknownKey is returned by Update for keys outside the build set.
var ErrUnknownKey = errors.New("bloomier: key not in build set")

// Filter is an immutable-keyset Bloomier filter mapping uint64 keys to
// vBits-bit values.
type Filter struct {
	g      *bitvec.Packed // selector (2 bits) + checksum (fpBits)
	v      *bitvec.Packed // values
	m      uint64
	fpBits uint
	vBits  uint
	seed   uint64
	n      int
}

// New builds a Bloomier filter mapping keys[i] -> values[i], with
// fpBits-bit checksums (false-positive rate 2^-fpBits for absent keys).
func New(keys, values []uint64, fpBits, vBits uint) (*Filter, error) {
	if len(keys) != len(values) {
		panic("bloomier: keys/values length mismatch")
	}
	if fpBits < 1 || fpBits > 30 || vBits < 1 || vBits > 62 {
		panic("bloomier: invalid geometry")
	}
	n := len(keys)
	m := uint64(float64(n)*1.23) + 32
	for attempt := uint64(1); attempt <= 64; attempt++ {
		f := &Filter{
			g:      bitvec.NewPacked(int(m), 2+fpBits),
			v:      bitvec.NewPacked(int(m), vBits),
			m:      m,
			fpBits: fpBits,
			vBits:  vBits,
			seed:   attempt * 0xB10031E500000001,
			n:      n,
		}
		if f.build(keys, values) {
			return f, nil
		}
	}
	return nil, ErrConstruction
}

// hashes returns the three candidate slots and the checksum for key.
func (f *Filter) hashes(key uint64) (h [3]uint64, check uint64) {
	x := hashutil.MixSeed(key, f.seed)
	third := f.m / 3
	h[0] = hashutil.Reduce(x, third)
	h[1] = third + hashutil.Reduce(hashutil.Mix64(x+1), third)
	h[2] = 2*third + hashutil.Reduce(hashutil.Mix64(x+2), f.m-2*third)
	check = hashutil.Fingerprint(hashutil.Mix64(x+3), f.fpBits)
	return
}

func (f *Filter) build(keys, values []uint64) bool {
	m := int(f.m)
	xorKey := make([]uint64, m)
	xorIdx := make([]int, m) // xor of key indices (to recover which key)
	degree := make([]int32, m)
	for i, k := range keys {
		h, _ := f.hashes(k)
		for _, s := range h {
			xorKey[s] ^= k
			xorIdx[s] ^= i
			degree[s]++
		}
	}
	type peeled struct {
		slot uint64
		idx  int
	}
	stack := make([]peeled, 0, len(keys))
	queue := make([]int, 0, m)
	for s := 0; s < m; s++ {
		if degree[s] == 1 {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if degree[s] != 1 {
			continue
		}
		i := xorIdx[s]
		k := keys[i]
		stack = append(stack, peeled{slot: uint64(s), idx: i})
		h, _ := f.hashes(k)
		for _, hs := range h {
			xorKey[hs] ^= k
			xorIdx[hs] ^= i
			degree[hs]--
			if degree[hs] == 1 {
				queue = append(queue, int(hs))
			}
		}
	}
	if len(stack) != len(keys) {
		return false
	}
	// Assign G in reverse peel order so each key's critical slot is
	// written last: G[h0]^G[h1]^G[h2] must equal selector|check, where
	// selector says which of the three slots is the critical one.
	for i := len(stack) - 1; i >= 0; i-- {
		p := stack[i]
		k := keys[p.idx]
		h, check := f.hashes(k)
		var sel uint64
		for j, hs := range h {
			if hs == p.slot {
				sel = uint64(j)
				break
			}
		}
		want := check<<2 | sel
		g := want
		for _, hs := range h {
			if hs != p.slot {
				g ^= f.g.Get(int(hs))
			}
		}
		f.g.Set(int(p.slot), g)
		f.v.Set(int(p.slot), values[p.idx])
	}
	return true
}

// criticalSlot decodes key's critical slot if the checksum matches.
func (f *Filter) criticalSlot(key uint64) (uint64, bool) {
	h, check := f.hashes(key)
	d := f.g.Get(int(h[0])) ^ f.g.Get(int(h[1])) ^ f.g.Get(int(h[2]))
	if d>>2 != check {
		return 0, false
	}
	sel := d & 3
	if sel > 2 {
		return 0, false
	}
	return h[sel], true
}

// Get returns the candidate values for key: exactly one for keys in the
// build set, at most one (with probability ε) for absent keys.
func (f *Filter) Get(key uint64) []uint64 {
	if s, ok := f.criticalSlot(key); ok {
		return []uint64{f.v.Get(int(s))}
	}
	return nil
}

// Contains reports whether key appears to be in the build set.
func (f *Filter) Contains(key uint64) bool {
	_, ok := f.criticalSlot(key)
	return ok
}

// Update changes the value of a key from the build set in O(1). Updating
// a key outside the build set usually returns ErrUnknownKey; with
// probability ε it instead silently corrupts one colliding key's value,
// exactly as in the original structure.
func (f *Filter) Update(key, value uint64) error {
	s, ok := f.criticalSlot(key)
	if !ok {
		return ErrUnknownKey
	}
	f.v.Set(int(s), value)
	return nil
}

// Put is Update under the core.Maplet interface: the key set is static.
func (f *Filter) Put(key, value uint64) error { return f.Update(key, value) }

// Len returns the build-set size.
func (f *Filter) Len() int { return f.n }

// SizeBits returns the footprint of both tables in bits.
func (f *Filter) SizeBits() int { return f.g.SizeBits() + f.v.SizeBits() }

var _ core.Maplet = (*Filter)(nil)
