// Package concurrent provides thread-safe filter composition: a sharded
// wrapper that partitions the key space across independent sub-filters,
// each guarded by its own lock. This is the tutorial's §1 feature (6) —
// quotient filters "scale with the number of threads" — realized the way
// production systems do it (the counting quotient filter paper shards by
// high-order hash bits; per-shard locking keeps writers on different
// shards fully parallel).
package concurrent

import (
	"errors"
	"fmt"
	"sync"

	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// MaxLogShards bounds the shard count at 2^12: the routing hash only
// spends 16 bits, and more shards than cores×contention just wastes
// memory.
const MaxLogShards = 12

// errNilBuild reports a missing shard constructor.
var errNilBuild = errors.New("concurrent: nil build function")

// Sharded is a thread-safe filter built from 2^logShards sub-filters.
// The shard is chosen by high bits of the key's hash, so each sub-filter
// sees a uniform slice of the key space and capacity splits evenly.
type Sharded struct {
	spec    core.Spec // construction parameters (log2 shards, routing seed)
	shards  []shard
	mask    uint64
	scratch sync.Pool // *batchScratch, reused across ContainsBatch calls
}

type shard struct {
	mu sync.RWMutex
	f  core.MutableFilter
}

// NewSharded builds a sharded filter from deletable shards: build is
// called once per shard and must return an independent filter sized for
// its share of the keys. Invalid configuration (too many shards, nil or
// nil-returning build) is reported as an error, never a panic — callers
// embedding this in a serving path get to degrade instead of crashing.
func NewSharded(logShards uint, build func(shardIndex int) core.DeletableFilter) (*Sharded, error) {
	if build == nil {
		return nil, errNilBuild
	}
	return NewShardedMutable(logShards, func(i int) core.MutableFilter { return build(i) })
}

// NewShardedMutable is NewSharded for insert-only shard filters (the
// Bloom family, which has no Delete). The wrapper's own Delete then
// reports core.ErrImmutable instead of forwarding.
func NewShardedMutable(logShards uint, build func(shardIndex int) core.MutableFilter) (*Sharded, error) {
	if logShards > MaxLogShards {
		return nil, fmt.Errorf("concurrent: logShards %d exceeds max %d", logShards, MaxLogShards)
	}
	if build == nil {
		return nil, errNilBuild
	}
	n := 1 << logShards
	s := &Sharded{
		spec:   core.Spec{Type: core.TypeSharded, LogShards: uint8(logShards), Seed: 0x5A4DED},
		shards: make([]shard, n),
		mask:   uint64(n - 1),
	}
	for i := range s.shards {
		if s.shards[i].f = build(i); s.shards[i].f == nil {
			return nil, fmt.Errorf("concurrent: build returned nil filter for shard %d", i)
		}
	}
	return s, nil
}

// shardOf routes a key. The routing hash is independent of the filters'
// internal hashing (different seed), so sharding does not bias them.
func (s *Sharded) shardOf(key uint64) *shard {
	return &s.shards[hashutil.MixSeed(key, s.spec.Seed)>>48&s.mask]
}

// Spec returns the wrapper's construction parameters.
func (s *Sharded) Spec() core.Spec { return s.spec }

// Insert adds key to its shard.
func (s *Sharded) Insert(key uint64) error {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Insert(key)
}

// Delete removes key from its shard. If the shards were built from
// insert-only filters (NewShardedMutable), it reports
// core.ErrImmutable.
func (s *Sharded) Delete(key uint64) error {
	sh := s.shardOf(key)
	df, ok := sh.f.(core.DeletableFilter)
	if !ok {
		return core.ErrImmutable
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return df.Delete(key)
}

// Contains probes the key's shard under a read lock, so readers scale.
func (s *Sharded) Contains(key uint64) bool {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.f.Contains(key)
}

// batchScratch holds the buffers of one sharded batch probe: the routed
// shard of every key, per-shard bucket boundaries, and the keys
// permuted into shard order. Pooled so steady-state batches allocate
// nothing.
type batchScratch struct {
	shardIdx []uint32
	bounds   []int32 // len shards+1: bucket j occupies [bounds[j], bounds[j+1])
	cursors  []int32
	keys     []uint64 // keys permuted into shard order
	origin   []int32  // original batch index of permuted slot j
	res      []bool   // sub-batch answers, permuted order
}

func (sc *batchScratch) ensure(n, shards int) {
	if cap(sc.shardIdx) < n {
		sc.shardIdx = make([]uint32, n)
		sc.keys = make([]uint64, n)
		sc.origin = make([]int32, n)
		sc.res = make([]bool, n)
	}
	if cap(sc.bounds) < shards+1 {
		sc.bounds = make([]int32, shards+1)
		sc.cursors = make([]int32, shards)
	}
}

// groupByShard routes keys, counting-sorts them into shard order inside
// sc, and returns the number of shards. After it returns, shard j's
// sub-batch is sc.keys[sc.bounds[j]:sc.bounds[j+1]], and sc.origin maps
// permuted slots back to batch positions.
func groupByShard(sc *batchScratch, keys []uint64, seed, mask uint64, shards int) {
	sc.ensure(len(keys), shards)
	shardIdx := sc.shardIdx[:len(keys)]
	for i, k := range keys {
		shardIdx[i] = uint32(hashutil.MixSeed(k, seed) >> 48 & mask)
	}
	bounds := sc.bounds[:shards+1]
	cursors := sc.cursors[:shards]
	for i := range cursors {
		cursors[i] = 0
	}
	for _, si := range shardIdx {
		cursors[si]++
	}
	sum := int32(0)
	for i, c := range cursors {
		bounds[i] = sum
		cursors[i] = sum
		sum += c
	}
	bounds[shards] = sum
	for i, k := range keys {
		si := shardIdx[i]
		j := cursors[si]
		cursors[si] = j + 1
		sc.keys[j] = k
		sc.origin[j] = int32(i)
	}
}

// ContainsBatch probes every key (see core.BatchFilter). The batch is
// counting-sorted by shard so each shard's lock is taken once for its
// whole sub-batch — one acquisition per touched shard instead of one
// per key — and each sub-batch uses the shard filter's own batched
// probe when it has one.
func (s *Sharded) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	if len(keys) == 0 {
		return
	}
	sc, _ := s.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	shards := len(s.shards)
	groupByShard(sc, keys, s.spec.Seed, s.mask, shards)
	for j := 0; j < shards; j++ {
		lo, hi := sc.bounds[j], sc.bounds[j+1]
		if lo == hi {
			continue
		}
		sh := &s.shards[j]
		sh.mu.RLock()
		core.ContainsBatch(sh.f, sc.keys[lo:hi], sc.res[lo:hi])
		sh.mu.RUnlock()
	}
	for j := 0; j < len(keys); j++ {
		out[sc.origin[j]] = sc.res[j]
	}
	s.scratch.Put(sc)
}

// SizeBits sums the shards.
func (s *Sharded) SizeBits() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		total += s.shards[i].f.SizeBits()
		s.shards[i].mu.RUnlock()
	}
	return total
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Expansions sums the capacity doublings across growable shards (zero
// when the shards are fixed-capacity filters). Shards grow
// independently — each behind its own lock, with no cross-shard
// coordination — so the sum advances smoothly rather than in
// whole-structure steps.
func (s *Sharded) Expansions() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		if g, ok := s.shards[i].f.(core.GrowableFilter); ok {
			total += g.Expansions()
		}
		s.shards[i].mu.RUnlock()
	}
	return total
}

// FPRBudget returns the shards' common false-positive budget: every
// shard sees a disjoint slice of the keyspace, so the wrapper's
// compound FPR is its shards' budget, not their sum. Zero when the
// shards are not growable filters.
func (s *Sharded) FPRBudget() float64 {
	if len(s.shards) == 0 {
		return 0
	}
	if g, ok := s.shards[0].f.(core.GrowableFilter); ok {
		return g.FPRBudget()
	}
	return 0
}

var (
	_ core.DeletableFilter = (*Sharded)(nil)
	_ core.BatchFilter     = (*Sharded)(nil)
	_ core.GrowableFilter  = (*Sharded)(nil)
)

// Counting is the sharded wrapper for counting filters.
type Counting struct {
	shards  []countingShard
	mask    uint64
	seed    uint64
	scratch sync.Pool // *batchScratch, reused across ContainsBatch calls
}

type countingShard struct {
	mu sync.RWMutex
	f  core.CountingFilter
}

// NewCounting builds a sharded counting filter. Bad configuration is
// returned as an error (see NewSharded).
func NewCounting(logShards uint, build func(shardIndex int) core.CountingFilter) (*Counting, error) {
	if logShards > MaxLogShards {
		return nil, fmt.Errorf("concurrent: logShards %d exceeds max %d", logShards, MaxLogShards)
	}
	if build == nil {
		return nil, errNilBuild
	}
	n := 1 << logShards
	c := &Counting{shards: make([]countingShard, n), mask: uint64(n - 1), seed: 0x5A4DED}
	for i := range c.shards {
		if c.shards[i].f = build(i); c.shards[i].f == nil {
			return nil, fmt.Errorf("concurrent: build returned nil filter for shard %d", i)
		}
	}
	return c, nil
}

func (c *Counting) shardOf(key uint64) *countingShard {
	return &c.shards[hashutil.MixSeed(key, c.seed)>>48&c.mask]
}

// Add inserts delta occurrences of key.
func (c *Counting) Add(key uint64, delta uint64) error {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Add(key, delta)
}

// Remove deletes delta occurrences of key.
func (c *Counting) Remove(key uint64, delta uint64) error {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Remove(key, delta)
}

// Count returns key's multiplicity.
func (c *Counting) Count(key uint64) uint64 {
	sh := c.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.f.Count(key)
}

// Contains reports whether key may be present.
func (c *Counting) Contains(key uint64) bool { return c.Count(key) > 0 }

// ContainsBatch probes every key (see core.BatchFilter), grouping the
// batch by shard so each shard's lock is taken once per sub-batch.
func (c *Counting) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	if len(keys) == 0 {
		return
	}
	sc, _ := c.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	shards := len(c.shards)
	groupByShard(sc, keys, c.seed, c.mask, shards)
	for j := 0; j < shards; j++ {
		lo, hi := sc.bounds[j], sc.bounds[j+1]
		if lo == hi {
			continue
		}
		sh := &c.shards[j]
		sh.mu.RLock()
		for i := lo; i < hi; i++ {
			sc.res[i] = sh.f.Count(sc.keys[i]) > 0
		}
		sh.mu.RUnlock()
	}
	for j := 0; j < len(keys); j++ {
		out[sc.origin[j]] = sc.res[j]
	}
	c.scratch.Put(sc)
}

// SizeBits sums the shards.
func (c *Counting) SizeBits() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		total += c.shards[i].f.SizeBits()
		c.shards[i].mu.RUnlock()
	}
	return total
}

var (
	_ core.CountingFilter = (*Counting)(nil)
	_ core.BatchFilter    = (*Counting)(nil)
)
