// Package concurrent provides thread-safe filter composition: a sharded
// wrapper that partitions the key space across independent sub-filters,
// each guarded by its own lock. This is the tutorial's §1 feature (6) —
// quotient filters "scale with the number of threads" — realized the way
// production systems do it (the counting quotient filter paper shards by
// high-order hash bits; per-shard locking keeps writers on different
// shards fully parallel).
package concurrent

import (
	"errors"
	"fmt"
	"sync"

	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// MaxLogShards bounds the shard count at 2^12: the routing hash only
// spends 16 bits, and more shards than cores×contention just wastes
// memory.
const MaxLogShards = 12

// errNilBuild reports a missing shard constructor.
var errNilBuild = errors.New("concurrent: nil build function")

// Sharded is a thread-safe filter built from 2^logShards sub-filters.
// The shard is chosen by high bits of the key's hash, so each sub-filter
// sees a uniform slice of the key space and capacity splits evenly.
type Sharded struct {
	shards []shard
	mask   uint64
	seed   uint64
}

type shard struct {
	mu sync.RWMutex
	f  core.DeletableFilter
}

// NewSharded builds a sharded filter: build is called once per shard and
// must return an independent filter sized for its share of the keys.
// Invalid configuration (too many shards, nil or nil-returning build) is
// reported as an error, never a panic — callers embedding this in a
// serving path get to degrade instead of crashing.
func NewSharded(logShards uint, build func(shardIndex int) core.DeletableFilter) (*Sharded, error) {
	if logShards > MaxLogShards {
		return nil, fmt.Errorf("concurrent: logShards %d exceeds max %d", logShards, MaxLogShards)
	}
	if build == nil {
		return nil, errNilBuild
	}
	n := 1 << logShards
	s := &Sharded{shards: make([]shard, n), mask: uint64(n - 1), seed: 0x5A4DED}
	for i := range s.shards {
		if s.shards[i].f = build(i); s.shards[i].f == nil {
			return nil, fmt.Errorf("concurrent: build returned nil filter for shard %d", i)
		}
	}
	return s, nil
}

// shardOf routes a key. The routing hash is independent of the filters'
// internal hashing (different seed), so sharding does not bias them.
func (s *Sharded) shardOf(key uint64) *shard {
	return &s.shards[hashutil.MixSeed(key, s.seed)>>48&s.mask]
}

// Insert adds key to its shard.
func (s *Sharded) Insert(key uint64) error {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Insert(key)
}

// Delete removes key from its shard.
func (s *Sharded) Delete(key uint64) error {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Delete(key)
}

// Contains probes the key's shard under a read lock, so readers scale.
func (s *Sharded) Contains(key uint64) bool {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.f.Contains(key)
}

// SizeBits sums the shards.
func (s *Sharded) SizeBits() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		total += s.shards[i].f.SizeBits()
		s.shards[i].mu.RUnlock()
	}
	return total
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

var _ core.DeletableFilter = (*Sharded)(nil)

// Counting is the sharded wrapper for counting filters.
type Counting struct {
	shards []countingShard
	mask   uint64
	seed   uint64
}

type countingShard struct {
	mu sync.RWMutex
	f  core.CountingFilter
}

// NewCounting builds a sharded counting filter. Bad configuration is
// returned as an error (see NewSharded).
func NewCounting(logShards uint, build func(shardIndex int) core.CountingFilter) (*Counting, error) {
	if logShards > MaxLogShards {
		return nil, fmt.Errorf("concurrent: logShards %d exceeds max %d", logShards, MaxLogShards)
	}
	if build == nil {
		return nil, errNilBuild
	}
	n := 1 << logShards
	c := &Counting{shards: make([]countingShard, n), mask: uint64(n - 1), seed: 0x5A4DED}
	for i := range c.shards {
		if c.shards[i].f = build(i); c.shards[i].f == nil {
			return nil, fmt.Errorf("concurrent: build returned nil filter for shard %d", i)
		}
	}
	return c, nil
}

func (c *Counting) shardOf(key uint64) *countingShard {
	return &c.shards[hashutil.MixSeed(key, c.seed)>>48&c.mask]
}

// Add inserts delta occurrences of key.
func (c *Counting) Add(key uint64, delta uint64) error {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Add(key, delta)
}

// Remove deletes delta occurrences of key.
func (c *Counting) Remove(key uint64, delta uint64) error {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.f.Remove(key, delta)
}

// Count returns key's multiplicity.
func (c *Counting) Count(key uint64) uint64 {
	sh := c.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.f.Count(key)
}

// Contains reports whether key may be present.
func (c *Counting) Contains(key uint64) bool { return c.Count(key) > 0 }

// SizeBits sums the shards.
func (c *Counting) SizeBits() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		total += c.shards[i].f.SizeBits()
		c.shards[i].mu.RUnlock()
	}
	return total
}

var _ core.CountingFilter = (*Counting)(nil)
