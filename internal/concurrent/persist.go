package concurrent

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

func init() {
	// Sharded wrappers need a per-shard build function, so there is no
	// Spec-only builder; loading reconstructs the shards from the stream.
	core.Register(core.TypeSharded, "concurrent.Sharded",
		func() core.Persistent { return &Sharded{} },
		nil)
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (s *Sharded) TypeID() uint16 { return core.TypeSharded }

// WriteTo serializes the wrapper as a small header frame (the Spec)
// followed by one sibling frame per shard — each shard filter's own
// self-delimiting encoding. Shards are encoded concurrently, each under
// its own read lock, and the buffers are written out in shard order.
// Every shard filter must itself implement core.Persistent.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	s.spec.Encode(&e)
	bufs := make([][]byte, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &s.shards[i]
			p, ok := sh.f.(core.Persistent)
			if !ok {
				errs[i] = fmt.Errorf("concurrent: shard %d filter %T is not persistent", i, sh.f)
				return
			}
			var buf bytes.Buffer
			sh.mu.RLock()
			_, errs[i] = p.WriteTo(&buf)
			sh.mu.RUnlock()
			bufs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total, err := codec.WriteFrame(w, core.TypeSharded, e.Bytes())
	if err != nil {
		return total, err
	}
	for _, b := range bufs {
		n, err := w.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFrom restores a wrapper written by WriteTo into the receiver. The
// header frame fixes the shard count; the shard frames are then sliced
// off the stream (each is length-prefixed) and decoded concurrently via
// the registry. On error the receiver is left unchanged.
func (s *Sharded) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeSharded)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if spec.Type != core.TypeSharded || spec.LogShards > MaxLogShards {
		return 0, d.Corruptf("concurrent: bad spec (type=%d logShards=%d)", spec.Type, spec.LogShards)
	}
	total := int64(codec.HeaderSize + len(payload))
	n := 1 << spec.LogShards
	raws := make([][]byte, n)
	for i := range raws {
		_, raw, err := codec.ReadRaw(r)
		if err != nil {
			return 0, fmt.Errorf("concurrent: shard %d: %w", i, err)
		}
		raws[i] = raw
		total += int64(len(raw))
	}
	shards := make([]shard, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range raws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := core.Load(bytes.NewReader(raws[i]))
			if err != nil {
				errs[i] = fmt.Errorf("concurrent: shard %d: %w", i, err)
				return
			}
			mf, ok := f.(core.MutableFilter)
			if !ok {
				errs[i] = fmt.Errorf("%w: concurrent: shard %d decoded to non-mutable %T",
					codec.ErrCorrupt, i, f)
				return
			}
			shards[i].f = mf
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	s.spec = spec
	s.shards = shards
	s.mask = uint64(n - 1)
	return total, nil
}

var _ core.Persistent = (*Sharded)(nil)
