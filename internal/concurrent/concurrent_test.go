package concurrent

import (
	"runtime"
	"sync"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
)

func newShardedQF(tb testing.TB, logShards uint, totalCap int) *Sharded {
	tb.Helper()
	s, err := NewSharded(logShards, func(int) core.DeletableFilter {
		return quotient.NewForCapacity(totalCap>>logShards+totalCap>>(logShards+1), 0.001)
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestShardedBasic(t *testing.T) {
	s := newShardedQF(t, 3, 20000)
	keys := workload.Keys(10000, 1)
	for _, k := range keys {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(s, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
	for _, k := range keys[:5000] {
		if err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(s, keys[5000:]); fn != 0 {
		t.Fatalf("%d false negatives after deletes", fn)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards = %d", s.Shards())
	}
}

func TestShardedConcurrentMixed(t *testing.T) {
	// Hammer the filter from many goroutines with disjoint key slices;
	// run with -race to validate the locking.
	s := newShardedQF(t, 4, 200000)
	workers := runtime.GOMAXPROCS(0) * 2
	perWorker := 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := workload.Keys(perWorker, uint64(w+1))
			for _, k := range keys {
				if err := s.Insert(k); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
			for _, k := range keys {
				if !s.Contains(k) {
					t.Errorf("lost key %d", k)
					return
				}
			}
			for _, k := range keys[:perWorker/2] {
				if err := s.Delete(k); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Survivors of every worker still present.
	for w := 0; w < workers; w++ {
		keys := workload.Keys(perWorker, uint64(w+1))
		if fn := metrics.FalseNegatives(s, keys[perWorker/2:]); fn != 0 {
			t.Fatalf("worker %d: %d false negatives", w, fn)
		}
	}
}

func TestBadConfigReturnsError(t *testing.T) {
	if _, err := NewSharded(13, func(int) core.DeletableFilter { return cuckoo.New(10, 8) }); err == nil {
		t.Fatal("oversized logShards must be rejected")
	}
	if _, err := NewSharded(1, nil); err == nil {
		t.Fatal("nil build must be rejected")
	}
	if _, err := NewSharded(1, func(int) core.DeletableFilter { return nil }); err == nil {
		t.Fatal("nil shard filter must be rejected")
	}
	if _, err := NewCounting(13, func(int) core.CountingFilter { return quotient.NewCounting(4, 4) }); err == nil {
		t.Fatal("oversized counting logShards must be rejected")
	}
	if _, err := NewCounting(1, nil); err == nil {
		t.Fatal("nil counting build must be rejected")
	}
	if _, err := NewCounting(1, func(int) core.CountingFilter { return nil }); err == nil {
		t.Fatal("nil counting shard filter must be rejected")
	}
	if s, err := NewSharded(MaxLogShards, func(int) core.DeletableFilter { return cuckoo.New(8, 8) }); err != nil || s.Shards() != 1<<MaxLogShards {
		t.Fatalf("max logShards should be accepted: %v", err)
	}
}

func TestShardedCuckooBackend(t *testing.T) {
	s, err := NewSharded(2, func(int) core.DeletableFilter {
		return cuckoo.New(4000, 14)
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(10000, 3)
	for _, k := range keys {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(s, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestCountingSharded(t *testing.T) {
	c, err := NewCounting(3, func(int) core.CountingFilter {
		return quotient.NewCountingForCapacity(2000, 0.001)
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(1000, 5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				if err := c.Add(k, 1); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, k := range keys {
		if got := c.Count(k); got < 8 {
			t.Fatalf("Count(%d) = %d, want >= 8", k, got)
		}
	}
}

func TestShardingUniform(t *testing.T) {
	// Keys should spread roughly evenly across shards (capacity planning
	// depends on it).
	s := newShardedQF(t, 4, 160000)
	keys := workload.Keys(80000, 7)
	for _, k := range keys {
		s.Insert(k)
	}
	for i := range s.shards {
		n := s.shards[i].f.(*quotient.Filter).Len()
		want := len(keys) / len(s.shards)
		if n < want*8/10 || n > want*12/10 {
			t.Errorf("shard %d holds %d keys, want ≈%d", i, n, want)
		}
	}
}

func BenchmarkShardedInsertParallel(b *testing.B) {
	s := newShardedQF(b, 6, b.N+1024)
	var ctr uint64
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		base := ctr
		ctr += 1 << 32
		mu.Unlock()
		i := base
		for pb.Next() {
			s.Insert(i)
			i++
		}
	})
}

func BenchmarkShardedLookupParallel(b *testing.B) {
	s := newShardedQF(b, 6, 1<<20)
	keys := workload.Keys(1<<19, 9)
	for _, k := range keys {
		s.Insert(k)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Contains(keys[i&(1<<19-1)])
			i++
		}
	})
}

func TestCountingRemoveAndContains(t *testing.T) {
	c, err := NewCounting(2, func(int) core.CountingFilter {
		return quotient.NewCountingForCapacity(1000, 0.001)
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(200, 11)
	for _, k := range keys {
		c.Add(k, 3)
	}
	for _, k := range keys {
		if !c.Contains(k) {
			t.Fatalf("missing key %d", k)
		}
		if err := c.Remove(k, 3); err != nil {
			t.Fatal(err)
		}
	}
	present := 0
	for _, k := range keys {
		if c.Contains(k) {
			present++
		}
	}
	if present > 2 {
		t.Errorf("%d keys still present after removal", present)
	}
	if c.SizeBits() <= 0 {
		t.Error("SizeBits must be positive")
	}
}

func TestShardedSizeBits(t *testing.T) {
	s := newShardedQF(t, 2, 1000)
	if s.SizeBits() <= 0 {
		t.Error("SizeBits must be positive")
	}
}
