package concurrent

import (
	"sync"
	"sync/atomic"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/taffy"
	"beyondbloom/internal/workload"
)

func newShardedTaffy(tb testing.TB, logShards uint, eps float64) *Sharded {
	tb.Helper()
	s, err := NewShardedMutable(logShards, func(int) core.MutableFilter {
		f, err := taffy.New(64, eps)
		if err != nil {
			tb.Fatal(err)
		}
		return f
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestShardedGrowableBasics checks the wrapper surfaces the growable
// interface: expansions accumulate across shards and the budget is the
// shards' common budget (disjoint keyspace slices, not a sum).
func TestShardedGrowableBasics(t *testing.T) {
	s := newShardedTaffy(t, 3, 1.0/256)
	if got := s.FPRBudget(); got != 1.0/256 {
		t.Fatalf("FPRBudget = %v, want 1/256", got)
	}
	if got := s.Expansions(); got != 0 {
		t.Fatalf("Expansions = %d before any insert", got)
	}
	keys := workload.Keys(100_000, 0x60)
	for _, k := range keys {
		if err := s.Insert(k); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if got := s.Expansions(); got < 8 {
		t.Fatalf("Expansions = %d after 100k inserts into 8x64-cap shards", got)
	}
	out := make([]bool, len(keys))
	s.ContainsBatch(keys, out)
	for i, ok := range out {
		if !ok {
			t.Fatalf("false negative at %d after sharded growth", i)
		}
	}
	// A fixed-capacity sharded filter reports no growth capability.
	fixed := newShardedQF(t, 2, 4096)
	if fixed.Expansions() != 0 || fixed.FPRBudget() != 0 {
		t.Fatal("fixed-capacity shards claim growable state")
	}
}

// TestShardedGrowUnderConcurrentProbes is the satellite -race test:
// writers drive every shard through multiple doubling rounds while
// readers hammer scalar and batched probes of already-inserted keys.
// The one-lock-per-shard protocol must make each shard's growth
// invisible to probes — no false negatives, no torn reads, no races.
func TestShardedGrowUnderConcurrentProbes(t *testing.T) {
	const (
		logShards = 3
		writers   = 4
		readers   = 4
		perWriter = 20_000
	)
	s := newShardedTaffy(t, logShards, 1.0/128)
	keys := workload.Keys(writers*perWriter, 0x6012)

	// inserted[i] flips to 1 only after keys[i] is in the filter, so
	// readers only assert on keys whose insert has completed.
	inserted := make([]atomic.Bool, len(keys))
	var done atomic.Bool
	var wrongResults atomic.Int64

	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := w * perWriter; i < (w+1)*perWriter; i++ {
				if err := s.Insert(keys[i]); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				inserted[i].Store(true)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			batch := make([]uint64, 256)
			out := make([]bool, 256)
			pre := make([]bool, 256)
			for round := 0; !done.Load(); round++ {
				base := (r*7919 + round*4099) % (len(keys) - len(batch))
				copy(batch, keys[base:base+len(batch)])
				// Snapshot the inserted flags BEFORE probing: only a key
				// whose insert had completed before the probe started is
				// guaranteed a positive answer.
				for j := range batch {
					pre[j] = inserted[base+j].Load()
				}
				s.ContainsBatch(batch, out)
				for j := range batch {
					if pre[j] && !out[j] {
						wrongResults.Add(1)
					}
				}
				if pre[0] && !s.Contains(keys[base]) {
					wrongResults.Add(1)
				}
				_ = s.Expansions() // growth counters race-free under probes
			}
		}(r)
	}
	writeWG.Wait()
	done.Store(true)
	readWG.Wait()

	if n := wrongResults.Load(); n != 0 {
		t.Fatalf("wrong_results = %d (false negatives under concurrent growth)", n)
	}
	if got := s.Expansions(); got < 8 {
		t.Fatalf("Expansions = %d, expected every shard to double repeatedly", got)
	}
	for i, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("false negative at %d after writers finished", i)
		}
	}
}
