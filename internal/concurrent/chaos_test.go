package concurrent

import (
	"math/rand"
	"sync"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
)

// TestShardedChaos is the sharded filter's property test: many
// goroutines run a seeded mixed Insert/Delete/Contains workload over
// disjoint key pools (so each owns the ground truth for its keys) while
// extra reader goroutines hammer random keys across pools. The invariant
// under -race and interleaving: a key its owner has inserted and not
// deleted is NEVER reported absent.
func TestShardedChaos(t *testing.T) {
	const (
		workers  = 8
		readers  = 4
		poolSize = 4000
		ops      = 20000
	)
	// Deleting by fingerprint is only exact when fingerprints don't
	// collide across workers, so the chaos filter buys a deep fingerprint
	// space (δ=1e-9 ⇒ ~2^43): the seeded pools are then collision-free
	// and "live key answers true" is a sound invariant.
	totalCap := workers * poolSize * 2
	s, err := NewSharded(5, func(int) core.DeletableFilter {
		return quotient.NewForCapacity(totalCap>>5+totalCap>>6, 1e-9)
	})
	if err != nil {
		t.Fatal(err)
	}

	pools := make([][]uint64, workers)
	for w := range pools {
		pools[w] = workload.Keys(poolSize, uint64(100+w))
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pool := pools[rng.Intn(workers)]
				// Result is unchecked: another goroutine may own this key.
				// The read exists to interleave with writers under -race.
				s.Contains(pool[rng.Intn(poolSize)])
			}
		}(int64(1000 + r))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pool := pools[w]
			live := make(map[uint64]struct{}, poolSize)
			inserted := make([]uint64, 0, poolSize)
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 5 && len(inserted) < poolSize: // insert a fresh key
					k := pool[len(inserted)]
					if err := s.Insert(k); err != nil {
						t.Errorf("worker %d: insert: %v", w, err)
						return
					}
					inserted = append(inserted, k)
					live[k] = struct{}{}
				case op < 7 && len(live) > 0: // delete a live key
					for k := range live {
						if err := s.Delete(k); err != nil {
							t.Errorf("worker %d: delete: %v", w, err)
							return
						}
						delete(live, k)
						break
					}
				case len(live) > 0: // probe a live key: must be present
					k := inserted[rng.Intn(len(inserted))]
					if _, isLive := live[k]; isLive && !s.Contains(k) {
						t.Errorf("worker %d: false negative on live key %d", w, k)
						return
					}
				}
			}
			// Final sweep: every live key visible.
			for k := range live {
				if !s.Contains(k) {
					t.Errorf("worker %d: false negative on %d in final sweep", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
}

// TestCountingChaos: concurrent Add/Remove/Count on the sharded counting
// filter; counts must never underreport a worker's own live additions.
func TestCountingChaos(t *testing.T) {
	const workers = 8
	c, err := NewCounting(4, func(int) core.CountingFilter {
		return quotient.NewCountingForCapacity(workers*2000*2, 0.001)
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			keys := workload.Keys(2000, uint64(200+w))
			counts := make(map[uint64]uint64, len(keys))
			for i := 0; i < 10000; i++ {
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(3) == 0 && counts[k] > 0 {
					if err := c.Remove(k, 1); err != nil {
						t.Errorf("worker %d: remove: %v", w, err)
						return
					}
					counts[k]--
				} else {
					if err := c.Add(k, 1); err != nil {
						t.Errorf("worker %d: add: %v", w, err)
						return
					}
					counts[k]++
				}
				if got := c.Count(k); got < counts[k] {
					t.Errorf("worker %d: Count(%d) = %d underreports %d", w, k, got, counts[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
