package concurrent

import (
	"sync"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/dleft"
	"beyondbloom/internal/workload"
)

func newShardedCuckoo(t testing.TB, logShards uint, perShard int) *Sharded {
	t.Helper()
	s, err := NewSharded(logShards, func(int) core.DeletableFilter {
		return cuckoo.New(perShard, 14)
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedContainsBatchMatchesScalar(t *testing.T) {
	const n = 20000
	s := newShardedCuckoo(t, 4, n)
	keys := workload.Keys(n, 11)
	for _, k := range keys[:n/2] {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	probes := append(append([]uint64{}, keys...), workload.DisjointKeys(n, 11)...)
	out := make([]bool, len(probes))
	s.ContainsBatch(probes, out)
	for i, k := range probes {
		if out[i] != s.Contains(k) {
			t.Fatalf("batch/scalar disagree for key %d at %d", k, i)
		}
	}
}

func TestCountingContainsBatchMatchesScalar(t *testing.T) {
	const n = 5000
	c, err := NewCounting(3, func(int) core.CountingFilter {
		return dleft.New(n, 12, 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(n, 12)
	for _, k := range keys[:n/2] {
		if err := c.Add(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]bool, len(keys))
	c.ContainsBatch(keys, out)
	for i, k := range keys {
		if out[i] != c.Contains(k) {
			t.Fatalf("batch/scalar disagree for key %d at %d", k, i)
		}
	}
}

// TestShardedBatchUnderWriters drives batched readers concurrently with
// writers: keys inserted before the readers start must never be missed
// (no false negatives under concurrency), and -race must stay quiet.
func TestShardedBatchUnderWriters(t *testing.T) {
	const n = 8000
	s := newShardedCuckoo(t, 3, 4*n)
	stable := workload.Keys(n, 13)
	extra := workload.DisjointKeys(n, 13)
	for _, k := range stable {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, k := range extra {
			_ = s.Insert(k)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]bool, len(stable))
			for iter := 0; iter < 20; iter++ {
				s.ContainsBatch(stable, out)
				for i := range out {
					if !out[i] {
						t.Errorf("false negative for stable key %d", stable[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
