package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.Bool(true)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(0x0102030405060708)
	e.F64(3.14159)
	e.U64s([]uint64{1, 2, 3, ^uint64(0)})

	var buf bytes.Buffer
	n, err := WriteFrame(&buf, 42, e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(HeaderSize+e.Len()) {
		t.Fatalf("WriteFrame reported %d bytes, want %d", n, HeaderSize+e.Len())
	}

	payload, err := ReadFrame(bytes.NewReader(buf.Bytes()), 42)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDec(payload)
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0102030405060708 {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	ws := d.U64s()
	if len(ws) != 4 || ws[3] != ^uint64(0) {
		t.Errorf("U64s = %v", ws)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	var e Enc
	e.U64s([]uint64{10, 20, 30})
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 9, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every single-byte flip must be detected.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := ReadFrame(bytes.NewReader(bad), 9); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
	// Truncation at every length must be detected.
	for n := 0; n < len(good); n++ {
		if _, err := ReadFrame(bytes.NewReader(good[:n]), 9); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
	// Wrong expected kind.
	if _, err := ReadFrame(bytes.NewReader(good), 10); !errors.Is(err, ErrKind) {
		t.Fatalf("wrong kind: %v", err)
	}
}

func TestReadFrameHugeLengthDoesNotAllocate(t *testing.T) {
	var hdr [HeaderSize]byte
	putU32(hdr[0:], Magic)
	putU16(hdr[4:], Version)
	putU16(hdr[6:], 1)
	putU64(hdr[8:], MaxPayload) // in-bounds length, but no data follows
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying length: %v", err)
	}
	putU64(hdr[8:], 1<<62) // out-of-bounds length
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("giant length: %v", err)
	}
}

func TestDecFinishTrailing(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	d.U8()
	if err := d.Finish(); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDecU64sCorruptCount(t *testing.T) {
	var e Enc
	e.U64(1 << 40) // claims 2^40 words with no data behind it
	d := NewDec(e.Bytes())
	if vs := d.U64s(); vs != nil {
		t.Fatalf("U64s returned %v for corrupt count", vs)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestPeekKind(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 77, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	kind, hdr, err := PeekKind(r)
	if err != nil || kind != 77 {
		t.Fatalf("PeekKind = %d, %v", kind, err)
	}
	// Replaying the header restores a readable stream.
	payload, err := ReadFrame(io.MultiReader(bytes.NewReader(hdr[:]), r), 77)
	if err != nil || len(payload) != 3 {
		t.Fatalf("replayed read: %v", err)
	}
}

// TestTruncationWrapsErrCorrupt cuts a golden frame at every byte
// offset and checks each reader's contract: the error must wrap
// ErrCorrupt and must NOT leak the raw io error through the chain —
// callers branch on ErrCorrupt (torn tail, repairable) and a bare
// io.ErrUnexpectedEOF would dodge that branch and escalate a routine
// crash tail into a fatal open error.
func TestTruncationWrapsErrCorrupt(t *testing.T) {
	var e Enc
	e.U64(0x1122334455667788)
	e.U64s([]uint64{5, 6, 7})
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 11, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	golden := buf.Bytes()

	readers := []struct {
		name string
		// whole reports whether the reader consumes the full frame
		// (payload included) or only the header.
		whole bool
		read  func(data []byte) error
	}{
		{"ReadFrame", true, func(data []byte) error {
			_, err := ReadFrame(bytes.NewReader(data), 11)
			return err
		}},
		{"ReadRaw", true, func(data []byte) error {
			_, _, err := ReadRaw(bytes.NewReader(data))
			return err
		}},
		{"PeekKind", false, func(data []byte) error {
			_, _, err := PeekKind(bytes.NewReader(data))
			return err
		}},
	}
	for _, r := range readers {
		for cut := 0; cut < len(golden); cut++ {
			err := r.read(golden[:cut])
			if !r.whole && cut >= HeaderSize {
				// Header-only readers succeed once the header is intact.
				if err != nil {
					t.Fatalf("%s: cut at %d: unexpected error %v", r.name, cut, err)
				}
				continue
			}
			if err == nil {
				t.Fatalf("%s: cut at %d decoded successfully", r.name, cut)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: cut at %d: %v does not wrap ErrCorrupt", r.name, cut, err)
			}
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				t.Fatalf("%s: cut at %d: raw io error leaks through chain: %v", r.name, cut, err)
			}
		}
		// The intact frame must decode.
		if err := r.read(golden); err != nil {
			t.Fatalf("%s: golden frame: %v", r.name, err)
		}
	}
}

// FuzzFrameRoundTrip feeds arbitrary bytes to ReadFrame: it must either
// decode a frame whose re-encoding reproduces the consumed bytes, or
// return an error — never panic.
func FuzzFrameRoundTrip(f *testing.F) {
	var e Enc
	e.U64s([]uint64{1, 2, 3})
	var buf bytes.Buffer
	WriteFrame(&buf, 5, e.Bytes())
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		kind, hdr, err := PeekKind(r)
		if err != nil {
			return
		}
		payload, err := ReadFrame(io.MultiReader(bytes.NewReader(hdr[:]), bytes.NewReader(data[HeaderSize:])), kind)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := WriteFrame(&out, kind, payload); err != nil {
			t.Fatal(err)
		}
		consumed := HeaderSize + len(payload)
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode differs from consumed input")
		}
	})
}
