// Package codec is the binary persistence substrate shared by every
// serializable structure in the library. It defines one framed,
// little-endian wire format — magic, format version, object kind,
// payload length, payload checksum — plus append-only encode and
// checked decode helpers, so corrupt or truncated files fail loudly
// with an error instead of decoding into garbage.
//
// Layout of one frame (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "BBF1"
//	4       2     format version (currently 1)
//	6       2     kind (object kind / filter TypeID, see core)
//	8       8     payload length in bytes
//	16      4     CRC-32C (Castagnoli) of the payload
//	20      -     payload
//
// Composite objects nest: a filter's payload embeds the frames of its
// substrate parts (bit vectors, packed arrays), so the outer checksum
// covers the inner frames and a single flipped bit anywhere fails the
// outermost read. Large multi-part objects (sharded filters, LSM
// manifests) may instead write a sequence of sibling frames; each is
// still individually checksummed and length-prefixed, which is what
// makes shard-parallel decoding possible.
package codec

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Magic identifies a frame; "BBF1" in little-endian byte order.
	Magic uint32 = 0x31464242
	// Version is the current format version. Decoders reject frames
	// with a newer version instead of misinterpreting them.
	Version uint16 = 1
	// HeaderSize is the fixed byte length of a frame header.
	HeaderSize = 20
	// MaxPayload bounds a single frame's payload (1 GiB). Real filters
	// are far smaller; the bound exists so a corrupt length field fails
	// fast instead of driving a giant allocation.
	MaxPayload = 1 << 30
)

// Sentinel errors. All decode failures wrap ErrCorrupt so callers can
// detect "this file is damaged" with errors.Is regardless of the
// specific failure.
var (
	ErrCorrupt = errors.New("codec: corrupt data")
	// ErrVersion wraps ErrCorrupt: the frame is from a newer format.
	ErrVersion = fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	// ErrKind wraps ErrCorrupt: the frame holds a different object kind
	// than the decoder expected.
	ErrKind = fmt.Errorf("%w: unexpected object kind", ErrCorrupt)
)

// Object kinds 1–15 are reserved for the substrate containers defined
// here; kinds ≥ 16 are filter TypeIDs allocated in the core registry
// (see core.Register and the TypeID table in DESIGN.md §7).
const (
	KindVector   uint16 = 1 // bitvec.Vector
	KindPacked   uint16 = 2 // bitvec.Packed
	KindSequence uint16 = 3 // ef.Sequence
	KindQTable   uint16 = 4 // quotient table (shared by filter/maplet variants)
	KindMaplet   uint16 = 5 // quotient.Maplet (key → value approximate map)
	// KindWALRecord frames one write-ahead-log record (wal package): a
	// batch of mutations stamped with contiguous log sequence numbers.
	KindWALRecord uint16 = 6
	// KindMapletV2 wraps a maplet image together with its packed-value
	// geometry — the LSM's (run id, block offset) layout. A bare
	// KindMaplet frame remains the v1 run-id-only image.
	KindMapletV2 uint16 = 7
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// putU16/putU32/putU64 are the little-endian primitives (explicit so the
// format is identical on every platform).
func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func getU64(b []byte) uint64 { return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32 }

// appendHeader appends a frame header for kind over payload to dst.
func appendHeader(dst []byte, kind uint16, payload []byte) []byte {
	var h [HeaderSize]byte
	putU32(h[0:], Magic)
	putU16(h[4:], Version)
	putU16(h[6:], kind)
	putU64(h[8:], uint64(len(payload)))
	putU32(h[16:], crc32.Checksum(payload, castagnoli))
	return append(dst, h[:]...)
}

// WriteFrame writes one complete frame (header + payload) for kind.
func WriteFrame(w io.Writer, kind uint16, payload []byte) (int64, error) {
	hdr := appendHeader(make([]byte, 0, HeaderSize), kind, payload)
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, err
	}
	n, err = w.Write(payload)
	return written + int64(n), err
}

// ParseHeader validates a raw header and returns its kind and payload
// length. The payload checksum is verified later by ReadFrame.
func ParseHeader(hdr []byte) (kind uint16, length uint64, err error) {
	if len(hdr) < HeaderSize {
		return 0, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if getU32(hdr) != Magic {
		return 0, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, getU32(hdr))
	}
	if v := getU16(hdr[4:]); v != Version {
		return 0, 0, fmt.Errorf("%w %d", ErrVersion, v)
	}
	length = getU64(hdr[8:])
	if length > MaxPayload {
		return 0, 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, length)
	}
	return getU16(hdr[6:]), length, nil
}

// PeekKind reads exactly one frame header from r and returns its kind
// together with the raw header bytes, so the caller can dispatch on the
// kind and then replay the header to the chosen decoder (see core.Load).
func PeekKind(r io.Reader) (kind uint16, hdr [HeaderSize]byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, hdr, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	kind, _, err = ParseHeader(hdr[:])
	return kind, hdr, err
}

// ReadFrame reads one frame from r, verifies magic, version, kind and
// checksum, and returns the payload. The payload buffer is read in
// bounded chunks so a corrupt length field cannot drive one giant
// allocation: memory grows only as fast as data actually arrives.
func ReadFrame(r io.Reader, wantKind uint16) ([]byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	kind, length, err := ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if kind != wantKind {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrKind, kind, wantKind)
	}
	payload, err := readPayload(r, length)
	if err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(payload, castagnoli), getU32(hdr[16:]); got != want {
		return nil, fmt.Errorf("%w: payload checksum %#x, header says %#x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// ReadRaw reads one complete frame (header + payload) from r and
// returns its kind and raw bytes without verifying the payload
// checksum. Multi-part readers use it to slice a stream of sibling
// frames into independent buffers that separate goroutines then decode
// (and checksum) in parallel.
func ReadRaw(r io.Reader) (kind uint16, raw []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	kind, length, err := ParseHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	payload, err := readPayload(r, length)
	if err != nil {
		return 0, nil, err
	}
	return kind, append(hdr[:], payload...), nil
}

// readPayload reads length bytes in chunks of at most 1 MiB.
func readPayload(r io.Reader, length uint64) ([]byte, error) {
	const chunk = 1 << 20
	cap0 := length
	if cap0 > chunk {
		cap0 = chunk
	}
	buf := make([]byte, 0, cap0)
	for uint64(len(buf)) < length {
		n := length - uint64(len(buf))
		if n > chunk {
			n = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
		}
	}
	return buf, nil
}

// Enc builds a frame payload by appending fields. It also implements
// io.Writer so nested structures can stream their own frames into an
// enclosing payload via WriteTo.
type Enc struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the accumulated payload length.
func (e *Enc) Len() int { return len(e.buf) }

// Write implements io.Writer (for nesting sub-frames).
func (e *Enc) Write(p []byte) (int, error) {
	e.buf = append(e.buf, p...)
	return len(p), nil
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) {
	var b [2]byte
	putU16(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	var b [4]byte
	putU32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	putU64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// F64 appends a float64 by its IEEE-754 bit pattern (exact round-trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// U64s appends a length-prefixed slice of uint64 words.
func (e *Enc) U64s(vs []uint64) {
	e.U64(uint64(len(vs)))
	var b [8]byte
	for _, v := range vs {
		putU64(b[:], v)
		e.buf = append(e.buf, b[:]...)
	}
}

// Dec consumes a frame payload. All getters record the first error and
// return zero values afterwards; callers check Err (or Finish) once at
// the end instead of after every field. It also implements io.Reader so
// nested structures can decode their own frames from an enclosing
// payload via ReadFrom.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unconsumed payload bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Finish returns the first decode error, or an error if unconsumed
// bytes remain (trailing garbage in a checksummed payload means the
// encoder and decoder disagree about the format — fail loudly).
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Read implements io.Reader over the unconsumed payload.
func (d *Dec) Read(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	if d.off >= len(d.buf) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[d.off:])
	d.off += n
	return n, nil
}

// U8 consumes one byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool consumes one byte as a bool; any value other than 0 or 1 is an
// error (a canonical encoding has exactly one representation).
func (d *Dec) Bool() bool {
	v := d.U8()
	if v > 1 {
		if d.err == nil {
			d.err = fmt.Errorf("%w: non-canonical bool %d", ErrCorrupt, v)
		}
		return false
	}
	return v == 1
}

// U16 consumes a little-endian uint16.
func (d *Dec) U16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail("u16")
		return 0
	}
	v := getU16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 consumes a little-endian uint32.
func (d *Dec) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := getU32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 consumes a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := getU64(d.buf[d.off:])
	d.off += 8
	return v
}

// F64 consumes a float64 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// U64s consumes a length-prefixed slice of uint64 words. The count is
// validated against the remaining payload before allocating, so a
// corrupt count cannot drive a giant allocation.
func (d *Dec) U64s() []uint64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off)/8 {
		d.err = fmt.Errorf("%w: word count %d exceeds remaining payload", ErrCorrupt, n)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = getU64(d.buf[d.off:])
		d.off += 8
	}
	return vs
}

// Corruptf records (if none is set yet) and returns a decode
// consistency error wrapping ErrCorrupt. Structure decoders use it for
// cross-field validation failures (a length that disagrees with a
// count, an out-of-range parameter).
func (d *Dec) Corruptf(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	return d.err
}
