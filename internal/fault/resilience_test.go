package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"beyondbloom/internal/core"
)

func TestRetrierEventualSuccess(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 4, Sleep: NoSleep})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return ErrTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
	s := r.Stats()
	if s.Attempts != 3 || s.Retries != 2 || s.Giveups != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetrierGivesUp(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, Sleep: NoSleep})
	err := r.Do(context.Background(), func(context.Context) error { return ErrTransient })
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if s := r.Stats(); s.Giveups != 1 || s.Attempts != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetrierFailsFastOnPermanent(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, Sleep: NoSleep})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return ErrPermanent
	})
	if !errors.Is(err, ErrPermanent) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent after 1 call", err, calls)
	}
	if s := r.Stats(); s.Failfast != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetrierDelayBounded(t *testing.T) {
	r := NewRetrier(RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond})
	for retry := 0; retry < 20; retry++ {
		d := r.delay(retry)
		if d < time.Millisecond/2 || d > 12*time.Millisecond {
			t.Fatalf("delay(%d) = %v out of [base/2, 1.5*max]", retry, d)
		}
	}
}

func TestTimeout(t *testing.T) {
	err := Timeout(context.Background(), 10*time.Millisecond, func(ctx context.Context) error {
		return SleepCtx(ctx, time.Second)
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if err := Timeout(context.Background(), time.Second, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("fast op: %v", err)
	}
	// Zero budget disables the deadline.
	if err := Timeout(context.Background(), 0, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("no budget: %v", err)
	}
}

// fakeClock drives Breaker cooldowns without real sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{FailureThreshold: 3, Cooldown: time.Second, SuccessThreshold: 2, Now: clk.now})
	ctx := context.Background()
	fail := func(context.Context) error { return ErrTransient }
	ok := func(context.Context) error { return nil }

	for i := 0; i < 3; i++ {
		if err := b.Do(ctx, fail); !errors.Is(err, ErrTransient) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after threshold", b.State())
	}
	if err := b.Do(ctx, ok); !errors.Is(err, ErrOpen) {
		t.Fatalf("open circuit admitted a call: %v", err)
	}

	// After the cooldown, probes are admitted (half-open).
	clk.advance(2 * time.Second)
	if err := b.Do(ctx, ok); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open (1 of 2 successes)", b.State())
	}
	if err := b.Do(ctx, ok); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	// A half-open failure reopens immediately.
	for i := 0; i < 3; i++ {
		b.Do(ctx, fail)
	}
	clk.advance(2 * time.Second)
	if err := b.Do(ctx, fail); !errors.Is(err, ErrTransient) {
		t.Fatalf("half-open probe: %v", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want re-opened", b.State())
	}
	s := b.Stats()
	if s.Trips != 3 || s.Rejections == 0 || s.Probes == 0 || s.Closes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBreakerSuccessResetsFailures(t *testing.T) {
	b := NewBreaker(BreakerOptions{FailureThreshold: 3})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		b.Do(ctx, func(context.Context) error { return ErrTransient })
		b.Do(ctx, func(context.Context) error { return nil })
	}
	if b.State() != BreakerClosed {
		t.Fatalf("interleaved successes should keep the circuit closed")
	}
}

func TestFallibleSet(t *testing.T) {
	set := core.NewMapSet()
	set.Insert(7)
	ctx := context.Background()

	// Clean injector: exact answers.
	fs := NewFallibleSet(set, NewInjector(1))
	if ok, err := fs.Contains(ctx, 7); err != nil || !ok {
		t.Fatalf("Contains(7) = %v,%v", ok, err)
	}
	if ok, err := fs.Contains(ctx, 8); err != nil || ok {
		t.Fatalf("Contains(8) = %v,%v", ok, err)
	}

	// Always-failing injector: errors, and the remote is never consulted.
	set2 := core.NewMapSet()
	set2.Insert(7)
	fs2 := NewFallibleSet(set2, NewInjector(1, Transient(1.0)))
	if _, err := fs2.Contains(ctx, 7); !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if set2.Accesses() != 0 {
		t.Fatalf("failed call should not touch the remote")
	}

	// Bit flips surface as detected corruption, not a wrong answer.
	fs3 := NewFallibleSet(set, NewInjector(1, BitFlip(1.0)))
	if _, err := fs3.Contains(ctx, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestFailSafeRemoteAdapter(t *testing.T) {
	set := core.NewMapSet()
	set.Insert(1)
	fr := NewFallibleSet(set, NewInjector(5, Transient(1.0)))
	ad := &core.FailSafeRemote{R: fr}
	if !ad.Contains(2) {
		t.Fatal("fail-safe adapter must answer present on error")
	}
	if ad.Errors != 1 {
		t.Fatalf("Errors = %d", ad.Errors)
	}
	// Round trip: Remote -> FallibleRemote -> Remote is exact.
	rt := &core.FailSafeRemote{R: core.AsFallible(set)}
	if !rt.Contains(1) || rt.Contains(2) || rt.Errors != 0 {
		t.Fatal("round-tripped adapter lost exactness")
	}
}
