// Package fault is the repository's fault-injection and resilience
// substrate. The tutorial's surrounding-system stories (§2.3's adaptive
// filters fronting a remote dictionary, §3.1's LSM-tree fronting a block
// device) all assume the backing store is slow and unreliable — that is
// *why* filters pay for themselves. This package makes that assumption
// executable:
//
//   - Injector: a deterministic, seed-driven source of faults (transient
//     errors, permanent errors, injected latency, detected bit-flip
//     corruption) governed by op-window schedules such as "fail 10% of
//     calls between ops 1000 and 2000". Same seed, same schedule, same
//     faults — experiments stay reproducible.
//
//   - Resilience combinators: Retrier (bounded retries with exponential
//     backoff and deterministic jitter), Timeout (context-aware), and
//     Breaker (circuit breaker with half-open probing), each exposing
//     counters so experiments can report attempts, give-ups and trips.
//
// Corruption is always *detected* corruption (a checksum mismatch
// surfacing as an error), never a silently wrong answer: the layers
// above (adaptive repair, LSM degraded lookups) rely on errors being
// visible to preserve their no-false-negative guarantees.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors produced by the injector (and recognized by the
// combinators).
var (
	// ErrTransient marks a failure that may succeed on retry.
	ErrTransient = errors.New("fault: transient error")

	// ErrPermanent marks a failure retrying cannot fix.
	ErrPermanent = errors.New("fault: permanent error")

	// ErrCorrupt marks a detected corruption (checksum mismatch). It is
	// transient from the caller's perspective: re-reading (or reading a
	// replica) may return intact data.
	ErrCorrupt = fmt.Errorf("fault: detected corruption: %w", ErrTransient)
)

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Kind classifies an injected fault.
type Kind int

const (
	// KindTransient fails the op with ErrTransient.
	KindTransient Kind = iota
	// KindPermanent fails the op with ErrPermanent.
	KindPermanent
	// KindLatency delays the op without failing it.
	KindLatency
	// KindBitFlip corrupts the op's payload; Outcome.FlipBit selects the
	// bit. Callers that checksum (all of ours) surface it as ErrCorrupt.
	KindBitFlip
)

// Rule injects one kind of fault at a given rate inside an op window.
// Ops are numbered from 1 in injector order; the window is [From, To),
// with To == 0 meaning "forever". Rate is a probability in [0, 1].
type Rule struct {
	Kind Kind
	Rate float64
	From uint64
	To   uint64
	// Latency is the injected delay for KindLatency rules.
	Latency time.Duration
	// Err overrides the error for KindTransient/KindPermanent rules.
	Err error
}

// active reports whether the rule applies to op.
func (r Rule) active(op uint64) bool {
	return op >= r.From && (r.To == 0 || op < r.To)
}

// Transient returns an always-on transient-error rule.
func Transient(rate float64) Rule { return Rule{Kind: KindTransient, Rate: rate} }

// TransientBetween returns a transient-error rule active on ops
// [from, to).
func TransientBetween(rate float64, from, to uint64) Rule {
	return Rule{Kind: KindTransient, Rate: rate, From: from, To: to}
}

// Permanent returns an always-on permanent-error rule.
func Permanent(rate float64) Rule { return Rule{Kind: KindPermanent, Rate: rate} }

// Latency returns an injected-delay rule.
func Latency(rate float64, d time.Duration) Rule {
	return Rule{Kind: KindLatency, Rate: rate, Latency: d}
}

// BitFlip returns a detected-corruption rule.
func BitFlip(rate float64) Rule { return Rule{Kind: KindBitFlip, Rate: rate} }

// Outcome is the injector's verdict for one operation.
type Outcome struct {
	// Err is non-nil when the op should fail.
	Err error
	// Latency is the delay the op should observe before completing.
	Latency time.Duration
	// FlipBit is the bit index (0-63) to corrupt in the op's payload, or
	// -1 for no corruption.
	FlipBit int
}

// Stats counts what the injector has done.
type Stats struct {
	Ops        uint64
	Transients uint64
	Permanents uint64
	Latencies  uint64
	BitFlips   uint64
}

// Injector produces deterministic fault outcomes. It is safe for
// concurrent use.
type Injector struct {
	mu    sync.Mutex
	state uint64
	rules []Rule
	op    uint64
	stats Stats
}

// NewInjector returns an injector seeded for reproducibility. With no
// rules it never faults (every Outcome is clean), so a nil-vs-healthy
// distinction is unnecessary for callers that always construct one.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Injector{state: seed, rules: rules}
}

// next is xorshift64*: fast, deterministic, good enough for rates.
func (in *Injector) next() uint64 {
	x := in.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.state = x
	return x * 0x2545F4914F6CDD1D
}

// chance returns true with probability rate.
func (in *Injector) chance(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(in.next()>>11)/float64(1<<53) < rate
}

// Next advances the op counter and returns the outcome for this op.
// Rules are evaluated in order; the first matching error rule wins,
// while latency and bit-flips compose with an error-free outcome.
func (in *Injector) Next() Outcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.op++
	in.stats.Ops++
	out := Outcome{FlipBit: -1}
	for _, r := range in.rules {
		if !r.active(in.op) || !in.chance(r.Rate) {
			continue
		}
		switch r.Kind {
		case KindTransient:
			if out.Err != nil {
				continue
			}
			out.Err = r.Err
			if out.Err == nil {
				out.Err = ErrTransient
			}
			in.stats.Transients++
		case KindPermanent:
			if out.Err != nil {
				continue
			}
			out.Err = r.Err
			if out.Err == nil {
				out.Err = ErrPermanent
			}
			in.stats.Permanents++
		case KindLatency:
			out.Latency += r.Latency
			in.stats.Latencies++
		case KindBitFlip:
			if out.FlipBit >= 0 {
				continue
			}
			out.FlipBit = int(in.next() & 63)
			in.stats.BitFlips++
		}
	}
	return out
}

// Op returns how many operations the injector has judged.
func (in *Injector) Op() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.op
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Corrupt flips the outcome's bit in v (identity when FlipBit < 0).
func Corrupt(v uint64, o Outcome) uint64 {
	if o.FlipBit < 0 {
		return v
	}
	return v ^ 1<<uint(o.FlipBit)
}
