package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Op is a fallible, context-aware operation.
type Op func(ctx context.Context) error

// ErrTimeout is returned by Timeout when the budget expires. A timed-out
// call may succeed if retried, so it counts as transient.
var ErrTimeout = fmt.Errorf("fault: timeout: %w", ErrTransient)

// ErrOpen is returned by a Breaker that is rejecting calls. It is not
// transient: an immediate retry would be rejected again.
var ErrOpen = errors.New("fault: circuit open")

// SleepCtx waits d or until ctx is done, whichever comes first. It is
// the default sleeper for retries and injected latency.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// NoSleep ignores the requested delay — simulations use it so retries
// cost bookkeeping, not wall-clock time.
func NoSleep(context.Context, time.Duration) error { return nil }

// Timeout runs op under a deadline of d. The op must honor its context
// (all ops in this repository do); expiry surfaces as ErrTimeout.
func Timeout(ctx context.Context, d time.Duration, op Op) error {
	if d <= 0 {
		return op(ctx)
	}
	tctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	err := op(tctx)
	if err != nil && tctx.Err() != nil && ctx.Err() == nil {
		return ErrTimeout
	}
	return err
}

// RetryPolicy configures a Retrier.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, first included (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms); each
	// further retry doubles it up to MaxDelay (default 100ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed seeds the deterministic ±50% jitter applied to each
	// delay (default a fixed seed).
	JitterSeed uint64
	// Sleep waits between attempts; defaults to SleepCtx. Simulations
	// pass NoSleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 0xDECAF
	}
	if p.Sleep == nil {
		p.Sleep = SleepCtx
	}
}

// RetryStats counts a Retrier's work.
type RetryStats struct {
	Calls    uint64 // Do invocations
	Attempts uint64 // op invocations (>= Calls)
	Retries  uint64 // attempts beyond the first
	Giveups  uint64 // calls that exhausted MaxAttempts on transient errors
	Failfast uint64 // calls that stopped early on a non-transient error
}

// Retrier retries transient failures with exponential backoff and
// deterministic jitter. Safe for concurrent use.
type Retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    uint64
	stats  RetryStats
}

// NewRetrier returns a retrier with the given policy (zero fields take
// defaults).
func NewRetrier(policy RetryPolicy) *Retrier {
	policy.fill()
	return &Retrier{policy: policy, rng: policy.JitterSeed}
}

// delay returns the jittered backoff for the given retry ordinal.
func (r *Retrier) delay(retry int) time.Duration {
	d := r.policy.BaseDelay << uint(retry)
	if d > r.policy.MaxDelay || d <= 0 {
		d = r.policy.MaxDelay
	}
	r.mu.Lock()
	x := r.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.rng = x
	r.mu.Unlock()
	// Jitter into [d/2, 3d/2) so synchronized retriers spread out.
	frac := float64((x*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d))
}

// Do runs op, retrying transient errors up to MaxAttempts times. It
// returns nil on the first success, the last error otherwise.
func (r *Retrier) Do(ctx context.Context, op Op) error {
	r.bump(func(s *RetryStats) { s.Calls++ })
	var err error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.bump(func(s *RetryStats) { s.Retries++ })
			if serr := r.policy.Sleep(ctx, r.delay(attempt-1)); serr != nil {
				return serr
			}
		}
		r.bump(func(s *RetryStats) { s.Attempts++ })
		if err = op(ctx); err == nil {
			return nil
		}
		if !IsTransient(err) {
			r.bump(func(s *RetryStats) { s.Failfast++ })
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	r.bump(func(s *RetryStats) { s.Giveups++ })
	return err
}

func (r *Retrier) bump(f func(*RetryStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// Stats returns a snapshot of the retry counters.
func (r *Retrier) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// BreakerState is a circuit breaker's condition.
type BreakerState int

const (
	// BreakerClosed passes calls through, counting failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets probe calls through; enough successes close
	// the circuit, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerOptions configure a Breaker.
type BreakerOptions struct {
	// FailureThreshold is how many consecutive failures trip the circuit
	// (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before probing
	// (default 100ms).
	Cooldown time.Duration
	// SuccessThreshold is how many consecutive half-open successes close
	// the circuit (default 1).
	SuccessThreshold int
	// Now supplies the clock; tests inject a fake one.
	Now func() time.Time
}

func (o *BreakerOptions) fill() {
	if o.FailureThreshold == 0 {
		o.FailureThreshold = 5
	}
	if o.Cooldown == 0 {
		o.Cooldown = 100 * time.Millisecond
	}
	if o.SuccessThreshold == 0 {
		o.SuccessThreshold = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// BreakerStats counts a breaker's decisions.
type BreakerStats struct {
	Trips      uint64 // closed/half-open -> open transitions
	Rejections uint64 // calls refused while open
	Probes     uint64 // calls admitted while half-open
	Closes     uint64 // half-open -> closed transitions
}

// Breaker is a circuit breaker with half-open probing. Safe for
// concurrent use.
type Breaker struct {
	opts      BreakerOptions
	mu        sync.Mutex
	state     BreakerState
	failures  int
	successes int
	openedAt  time.Time
	stats     BreakerStats
}

// NewBreaker returns a closed breaker (zero option fields take
// defaults).
func NewBreaker(opts BreakerOptions) *Breaker {
	opts.fill()
	return &Breaker{opts: opts}
}

// Do runs op unless the circuit is open, updating state from the result.
func (b *Breaker) Do(ctx context.Context, op Op) error {
	if err := b.admit(); err != nil {
		return err
	}
	err := op(ctx)
	b.record(err == nil)
	return err
}

// admit decides whether a call may proceed.
func (b *Breaker) admit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) < b.opts.Cooldown {
			b.stats.Rejections++
			return ErrOpen
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		fallthrough
	case BreakerHalfOpen:
		b.stats.Probes++
	}
	return nil
}

// record folds a call result into the state machine.
func (b *Breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		switch b.state {
		case BreakerHalfOpen:
			b.successes++
			if b.successes >= b.opts.SuccessThreshold {
				b.state = BreakerClosed
				b.failures = 0
				b.stats.Closes++
			}
		case BreakerClosed:
			b.failures = 0
		}
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.opts.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the circuit; caller holds the lock.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.opts.Now()
	b.failures = 0
	b.stats.Trips++
}

// State returns the current state (open circuits past their cooldown
// still report open until the next call probes them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
