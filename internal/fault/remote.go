package fault

import (
	"context"

	"beyondbloom/internal/core"
)

// FallibleSet wraps an exact Remote with injected faults, producing the
// unreliable backing store the adaptive-filter experiments need. Bit-flip
// outcomes surface as ErrCorrupt (detected by checksum), never as a
// silently wrong answer — the repair loop's no-false-negative guarantee
// depends on corruption being visible.
type FallibleSet struct {
	R  core.Remote
	In *Injector
	// SleepLatency, when true, really sleeps injected latency (honoring
	// ctx, so Timeout cuts it short). Simulations leave it false and the
	// latency only shows up in the injector's stats.
	SleepLatency bool
}

// NewFallibleSet wraps r with the injector's fault schedule.
func NewFallibleSet(r core.Remote, in *Injector) *FallibleSet {
	return &FallibleSet{R: r, In: in}
}

// Contains reports membership, subject to injected faults.
func (f *FallibleSet) Contains(ctx context.Context, key uint64) (bool, error) {
	o := f.In.Next()
	if o.Latency > 0 && f.SleepLatency {
		if err := SleepCtx(ctx, o.Latency); err != nil {
			return false, ErrTimeout
		}
	}
	if o.Err != nil {
		return false, o.Err
	}
	if o.FlipBit >= 0 {
		return false, ErrCorrupt
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return f.R.Contains(key), nil
}

var _ core.FallibleRemote = (*FallibleSet)(nil)
