package fault

import (
	"math"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	mk := func() *Injector {
		return NewInjector(42, Transient(0.3), Latency(0.2, time.Millisecond), BitFlip(0.1))
	}
	a, b := mk(), mk()
	for i := 0; i < 10000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("op %d: outcomes diverge: %+v vs %+v", i, oa, ob)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestInjectorRateApprox(t *testing.T) {
	in := NewInjector(7, Transient(0.2))
	n := 100000
	fails := 0
	for i := 0; i < n; i++ {
		if in.Next().Err != nil {
			fails++
		}
	}
	got := float64(fails) / float64(n)
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("transient rate = %.4f, want ~0.20", got)
	}
}

func TestInjectorWindow(t *testing.T) {
	in := NewInjector(3, TransientBetween(1.0, 100, 200))
	for i := uint64(1); i <= 300; i++ {
		o := in.Next()
		inWindow := i >= 100 && i < 200
		if (o.Err != nil) != inWindow {
			t.Fatalf("op %d: err=%v, want fault iff in [100,200)", i, o.Err)
		}
	}
}

func TestInjectorNoRulesClean(t *testing.T) {
	in := NewInjector(1)
	for i := 0; i < 1000; i++ {
		o := in.Next()
		if o.Err != nil || o.Latency != 0 || o.FlipBit != -1 {
			t.Fatalf("clean injector faulted: %+v", o)
		}
	}
}

func TestInjectorKinds(t *testing.T) {
	in := NewInjector(9, Permanent(1.0))
	if o := in.Next(); !IsTransient(o.Err) == false || o.Err == nil {
		// Permanent must not be transient.
		if IsTransient(o.Err) {
			t.Fatalf("permanent error classified transient")
		}
	}
	in2 := NewInjector(9, BitFlip(1.0))
	o := in2.Next()
	if o.FlipBit < 0 || o.FlipBit > 63 {
		t.Fatalf("FlipBit = %d, want [0,63]", o.FlipBit)
	}
	v := uint64(0)
	if c := Corrupt(v, o); c != 1<<uint(o.FlipBit) {
		t.Fatalf("Corrupt = %x", c)
	}
	if c := Corrupt(123, Outcome{FlipBit: -1}); c != 123 {
		t.Fatalf("Corrupt identity broken")
	}
}

func TestErrCorruptIsTransient(t *testing.T) {
	if !IsTransient(ErrCorrupt) {
		t.Fatal("ErrCorrupt should be transient (re-read may succeed)")
	}
	if !IsTransient(ErrTimeout) {
		t.Fatal("ErrTimeout should be transient")
	}
	if IsTransient(ErrPermanent) || IsTransient(ErrOpen) {
		t.Fatal("permanent/open must not be transient")
	}
}
