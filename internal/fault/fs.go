package fault

// This file extends the fault substrate from I/O outcomes (fault.go) to
// whole-filesystem crash semantics. The durability work in internal/wal
// and lsm's checkpoint path is only trustworthy if it survives a kill at
// *every* filesystem operation — mid-append, mid-rename, mid-fsync —
// and the only way to test that exhaustively is to put a simulated
// filesystem under the store whose crash behavior is precise:
//
//   - FS is the small filesystem surface the durable layers write
//     through. Disk is the real-OS implementation used in production.
//   - CrashFS is an in-memory implementation that models the
//     page-cache/disk split: written bytes are volatile until Sync, a
//     file's directory entry (creation, rename, removal) is volatile
//     until SyncDir on its parent, and a simulated crash throws away
//     the volatile layer — keeping, deterministically, a partial prefix
//     of any un-synced tail (a torn write).
//
// A crash is armed with CrashAfter(n): the nth mutating operation takes
// partial effect and fails with ErrCrashed, and every later operation
// fails too (the process is dead). Recover() then yields the disk image
// a rebooted machine would see. Sweeping n across a workload's whole
// operation count visits every crash window the code has.

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every CrashFS operation at and after the
// injected crash point: from the store's perspective the machine died.
var ErrCrashed = errors.New("fault: simulated crash")

// File is the writable-file surface durable layers need: append bytes,
// force them to stable storage, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the durability path (WAL
// segments, checkpoint temp-file-plus-rename) so tests can substitute a
// crash-simulating implementation. Paths are ordinary slash-separated
// OS paths; implementations clean them, so "dir//f" and "dir/f" name
// the same file.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// ReadFile returns name's full content.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the sorted base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically moves oldname to newname (replacing it).
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name's content to size bytes.
	Truncate(name string, size int64) error
	// SyncDir makes dir's entries (creations, renames, removals)
	// durable, the way fsync on a directory fd does.
	SyncDir(dir string) error
}

// Disk is the real-OS filesystem.
var Disk FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// crashFile is one file's two-tier content: synced bytes survive a
// crash intact; unsynced bytes survive only as a deterministic prefix
// (the torn tail).
type crashFile struct {
	synced   []byte
	unsynced []byte
}

func (f *crashFile) content() []byte {
	out := make([]byte, 0, len(f.synced)+len(f.unsynced))
	out = append(out, f.synced...)
	return append(out, f.unsynced...)
}

// CrashFS is the in-memory crash-simulating filesystem. It is safe for
// concurrent use. Mutating operations (Create, Write, Sync, Rename,
// Remove, Truncate, SyncDir) advance an operation counter; when the
// counter reaches the armed crash point, that operation takes partial
// effect — governed by the seeded generator, so a given (seed, crash
// point) pair always tears the same way — and the filesystem is dead:
// it and every subsequent call return ErrCrashed.
//
// Two documented simplifications relative to strict POSIX: MkdirAll is
// durable immediately (the stores under test create their directories
// once, before the crash window opens), and Truncate applies to the
// durable tier directly (it is only used by recovery-time tail repair,
// which re-syncs what it keeps).
type CrashFS struct {
	mu   sync.Mutex
	seed uint64
	rng  uint64

	files map[string]*crashFile // live namespace (what un-crashed readers see)
	dirs  map[string]bool
	// durable holds, per name, the file its directory entry durably
	// points at. A crash resets the namespace to exactly this map.
	durable map[string]*crashFile

	ops     int
	crashAt int
	crashed bool
}

// NewCrashFS returns an empty crash-simulating filesystem. The seed
// drives the deterministic torn-write and partial-effect choices.
func NewCrashFS(seed uint64) *CrashFS {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &CrashFS{
		seed:    seed,
		rng:     seed,
		files:   make(map[string]*crashFile),
		dirs:    make(map[string]bool),
		durable: make(map[string]*crashFile),
	}
}

// CrashAfter arms the crash: the nth mutating operation from now fails
// mid-flight (n >= 1). Zero disarms.
func (c *CrashFS) CrashAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		c.crashAt = 0
		return
	}
	c.crashAt = c.ops + n
}

// Ops returns the number of mutating operations performed so far
// (including the one that crashed). A dry run's count bounds the sweep.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the injected crash has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// next is xorshift64*, matching the Injector's generator.
func (c *CrashFS) next() uint64 {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545F4914F6CDD1D
}

// step charges one mutating operation. It returns (partial, dead):
// dead means the call must return ErrCrashed without any effect;
// partial means this call IS the crash point — it should take its
// deterministic partial effect and then return ErrCrashed.
func (c *CrashFS) step() (partial, dead bool) {
	if c.crashed {
		return false, true
	}
	c.ops++
	if c.crashAt != 0 && c.ops >= c.crashAt {
		c.crashed = true
		return true, false
	}
	return false, false
}

// Recover returns the filesystem a rebooted machine would mount: the
// durable namespace, each surviving file holding its synced bytes plus
// a deterministic prefix of its un-synced tail. The returned filesystem
// is healthy (op counter reset, no crash armed) and seeded to tear
// differently on a subsequent crash. Calling Recover on an un-crashed
// filesystem models a clean shutdown: the full live state survives.
func (c *CrashFS) Recover() *CrashFS {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := NewCrashFS(c.seed*0x9E3779B97F4A7C15 + uint64(c.ops) + 1)
	for d := range c.dirs {
		out.dirs[d] = true
	}
	ns := c.durable
	if !c.crashed {
		ns = c.files
	}
	// Deterministic iteration: torn lengths must not depend on map order.
	names := make([]string, 0, len(ns))
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := ns[name]
		content := f.content()
		if c.crashed {
			keep := len(f.synced)
			if n := len(f.unsynced); n > 0 {
				keep += int(c.tornLen(name, n))
			}
			content = content[:keep]
		}
		out.files[name] = &crashFile{synced: append([]byte(nil), content...)}
		out.durable[name] = out.files[name]
	}
	return out
}

// tornLen picks how many of n un-synced bytes survive for the named
// file: deterministic in (seed, crash op, name).
func (c *CrashFS) tornLen(name string, n int) uint64 {
	h := c.seed ^ uint64(c.ops)*0x9E3779B97F4A7C15
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001B3
	}
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h % uint64(n+1)
}

func clean(p string) string { return filepath.Clean(p) }

func (c *CrashFS) parentExists(name string) bool {
	dir := filepath.Dir(name)
	return dir == "." || dir == "/" || c.dirs[dir]
}

// MkdirAll creates dir and its parents (durable immediately — see the
// type comment). It is not a crash window.
func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	dir = clean(dir)
	for d := dir; d != "." && d != "/"; d = filepath.Dir(d) {
		c.dirs[d] = true
	}
	return nil
}

// Create opens name truncated. The new (empty) content and the
// directory entry are both volatile until Sync/SyncDir.
func (c *CrashFS) Create(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = clean(name)
	partial, dead := c.step()
	if dead {
		return nil, ErrCrashed
	}
	if !c.parentExists(name) {
		return nil, fmt.Errorf("create %s: %w", name, fs.ErrNotExist)
	}
	if partial {
		// The crash strikes mid-create: the entry may or may not have
		// reached the (volatile) namespace. Either way the caller is dead.
		if c.next()&1 == 0 {
			c.files[name] = &crashFile{}
		}
		return nil, ErrCrashed
	}
	c.files[name] = &crashFile{}
	return &crashHandle{fs: c, name: name}, nil
}

// Append opens name for appending, creating it (volatile) if absent.
func (c *CrashFS) Append(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = clean(name)
	partial, dead := c.step()
	if dead {
		return nil, ErrCrashed
	}
	if !c.parentExists(name) {
		return nil, fmt.Errorf("append %s: %w", name, fs.ErrNotExist)
	}
	if _, ok := c.files[name]; !ok {
		if partial {
			if c.next()&1 == 0 {
				c.files[name] = &crashFile{}
			}
			return nil, ErrCrashed
		}
		c.files[name] = &crashFile{}
	} else if partial {
		return nil, ErrCrashed
	}
	return &crashHandle{fs: c, name: name}, nil
}

// ReadFile returns name's live content (reads hit the page cache, so
// they see volatile bytes; they are not crash windows).
func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	f, ok := c.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("read %s: %w", name, fs.ErrNotExist)
	}
	return f.content(), nil
}

// ReadDir returns the sorted base names of dir's live entries.
func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	dir = clean(dir)
	if !c.dirs[dir] && dir != "." && dir != "/" {
		return nil, fmt.Errorf("readdir %s: %w", dir, fs.ErrNotExist)
	}
	var names []string
	prefix := dir + string(filepath.Separator)
	for name := range c.files {
		if filepath.Dir(name) == dir {
			names = append(names, strings.TrimPrefix(name, prefix))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename moves oldname over newname. The move is atomic in the live
// namespace but volatile until SyncDir: a crash first reverts it.
func (c *CrashFS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	partial, dead := c.step()
	if dead {
		return ErrCrashed
	}
	f, ok := c.files[oldname]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldname, fs.ErrNotExist)
	}
	if partial && c.next()&1 == 0 {
		return ErrCrashed
	}
	c.files[newname] = f
	delete(c.files, oldname)
	if partial {
		return ErrCrashed
	}
	return nil
}

// Remove deletes name from the live namespace (volatile until SyncDir:
// a crash resurrects the durable entry).
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = clean(name)
	partial, dead := c.step()
	if dead {
		return ErrCrashed
	}
	if _, ok := c.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, fs.ErrNotExist)
	}
	if partial && c.next()&1 == 0 {
		return ErrCrashed
	}
	delete(c.files, name)
	if partial {
		return ErrCrashed
	}
	return nil
}

// Truncate cuts name to size bytes (durable directly — see the type
// comment).
func (c *CrashFS) Truncate(name string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = clean(name)
	partial, dead := c.step()
	if dead {
		return ErrCrashed
	}
	f, ok := c.files[name]
	if !ok {
		return fmt.Errorf("truncate %s: %w", name, fs.ErrNotExist)
	}
	if partial && c.next()&1 == 0 {
		return ErrCrashed
	}
	content := f.content()
	if int64(len(content)) > size {
		content = content[:size]
	}
	f.synced = append([]byte(nil), content...)
	f.unsynced = nil
	if partial {
		return ErrCrashed
	}
	return nil
}

// SyncDir makes dir's entries durable: files created or renamed into
// dir now survive a crash under their current names; removed entries
// stay removed.
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir = clean(dir)
	partial, dead := c.step()
	if dead {
		return ErrCrashed
	}
	if partial && c.next()&1 == 0 {
		return ErrCrashed
	}
	for name, f := range c.files {
		if filepath.Dir(name) == dir {
			c.durable[name] = f
		}
	}
	for name := range c.durable {
		if filepath.Dir(name) != dir {
			continue
		}
		if _, live := c.files[name]; !live {
			delete(c.durable, name)
		}
	}
	if partial {
		return ErrCrashed
	}
	return nil
}

// crashHandle is an open file on a CrashFS.
type crashHandle struct {
	fs   *CrashFS
	name string
}

// Write appends to the file's volatile tail. When the crash strikes
// mid-write, a deterministic prefix of p reaches the tail (and a
// deterministic prefix of the whole tail later survives Recover):
// exactly a torn write.
func (h *crashHandle) Write(p []byte) (int, error) {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	partial, dead := c.step()
	if dead {
		return 0, ErrCrashed
	}
	f, ok := c.files[h.name]
	if !ok {
		return 0, fmt.Errorf("write %s: %w", h.name, fs.ErrNotExist)
	}
	if partial {
		keep := int(c.next() % uint64(len(p)+1))
		f.unsynced = append(f.unsynced, p[:keep]...)
		return 0, ErrCrashed
	}
	f.unsynced = append(f.unsynced, p...)
	return len(p), nil
}

// Sync promotes the file's volatile tail to the durable tier. A crash
// mid-sync leaves the tail volatile (the fsync never completed).
func (h *crashHandle) Sync() error {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	partial, dead := c.step()
	if dead || partial {
		return ErrCrashed
	}
	f, ok := c.files[h.name]
	if !ok {
		return fmt.Errorf("sync %s: %w", h.name, fs.ErrNotExist)
	}
	f.synced = append(f.synced, f.unsynced...)
	f.unsynced = nil
	return nil
}

// Close releases the handle. Un-synced bytes stay volatile: closing is
// not a durability point.
func (h *crashHandle) Close() error {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}
