package fault

import (
	"bytes"
	"errors"
	"io/fs"
	"path/filepath"
	"testing"
)

// writeAll is a test helper: create, write, sync, close, sync dir.
func writeAll(t *testing.T, f FS, name string, data []byte) {
	t.Helper()
	h, err := f.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if _, err := h.Write(data); err != nil {
		t.Fatalf("Write(%s): %v", name, err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("Sync(%s): %v", name, err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
	if err := f.SyncDir(filepath.Dir(name)); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}

// TestDiskFS exercises the real-OS implementation end to end.
func TestDiskFS(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := Disk.MkdirAll(sub); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	writeAll(t, Disk, filepath.Join(sub, "x.tmp"), []byte("hello"))
	if err := Disk.Rename(filepath.Join(sub, "x.tmp"), filepath.Join(sub, "x")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	h, err := Disk.Append(filepath.Join(sub, "x"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := h.Write([]byte(" world")); err != nil {
		t.Fatalf("append write: %v", err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("append sync: %v", err)
	}
	h.Close()
	got, err := Disk.ReadFile(filepath.Join(sub, "x"))
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := Disk.Truncate(filepath.Join(sub, "x"), 5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, _ = Disk.ReadFile(filepath.Join(sub, "x"))
	if string(got) != "hello" {
		t.Fatalf("after truncate = %q", got)
	}
	names, err := Disk.ReadDir(sub)
	if err != nil || len(names) != 1 || names[0] != "x" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := Disk.Remove(filepath.Join(sub, "x")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := Disk.ReadFile(filepath.Join(sub, "x")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read after remove: %v", err)
	}
}

// TestCrashFSSyncedSurvives: synced bytes and dir-synced entries come
// back intact after a crash.
func TestCrashFSSyncedSurvives(t *testing.T) {
	c := NewCrashFS(1)
	if err := c.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, c, "d/f", []byte("durable"))
	c.CrashAfter(1)
	if err := c.SyncDir("d"); !errors.Is(err, ErrCrashed) && err != nil {
		t.Fatalf("expected crash or nil, got %v", err)
	}
	r := c.Recover()
	got, err := r.ReadFile("d/f")
	if err != nil || string(got) != "durable" {
		t.Fatalf("recovered = %q, %v", got, err)
	}
}

// TestCrashFSTornTail: un-synced bytes survive only as a prefix.
func TestCrashFSTornTail(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		c := NewCrashFS(seed)
		c.MkdirAll("d")
		writeAll(t, c, "d/log", []byte("AAAA"))
		h, err := c.Append("d/log")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("BBBBBBBB")); err != nil {
			t.Fatal(err)
		}
		// No sync: crash loses an arbitrary suffix of the B's.
		c.CrashAfter(1)
		h.Write([]byte("ignored"))
		got, err := c.Recover().ReadFile("d/log")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, []byte("AAAA")) {
			t.Fatalf("seed %d: synced prefix damaged: %q", seed, got)
		}
		if len(got) > len("AAAA")+8+len("ignored") {
			t.Fatalf("seed %d: recovered more than was written: %q", seed, got)
		}
		rest := got[4:]
		if !bytes.HasPrefix([]byte("BBBBBBBBignored"), rest) && len(rest) > 0 {
			// The torn tail must be a prefix of what was written after
			// the last sync (never reordered or invented bytes).
			t.Fatalf("seed %d: torn tail %q is not a written prefix", seed, rest)
		}
	}
}

// TestCrashFSCreateVolatile: a file whose directory entry was never
// synced vanishes in the crash.
func TestCrashFSCreateVolatile(t *testing.T) {
	c := NewCrashFS(3)
	c.MkdirAll("d")
	h, err := c.Create("d/ghost")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("data"))
	h.Sync() // content synced, but the ENTRY is not
	c.CrashAfter(1)
	c.Remove("d/ghost")
	if _, err := c.Recover().ReadFile("d/ghost"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-dir-synced file survived: %v", err)
	}
}

// TestCrashFSRenameVolatile: an un-dir-synced rename rolls back; a
// dir-synced one holds.
func TestCrashFSRenameVolatile(t *testing.T) {
	for _, durable := range []bool{false, true} {
		c := NewCrashFS(7)
		c.MkdirAll("d")
		writeAll(t, c, "d/old", []byte("payload"))
		if err := c.Rename("d/old", "d/new"); err != nil {
			t.Fatal(err)
		}
		if durable {
			if err := c.SyncDir("d"); err != nil {
				t.Fatal(err)
			}
		}
		c.CrashAfter(1)
		c.SyncDir("d")
		r := c.Recover()
		wantName, goneName := "d/old", "d/new"
		if durable {
			wantName, goneName = "d/new", "d/old"
		}
		got, err := r.ReadFile(wantName)
		if err != nil || string(got) != "payload" {
			t.Fatalf("durable=%v: %s = %q, %v", durable, wantName, got, err)
		}
		if _, err := r.ReadFile(goneName); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("durable=%v: %s still present (%v)", durable, goneName, err)
		}
	}
}

// TestCrashFSRemoveResurrects: an un-dir-synced remove comes back.
func TestCrashFSRemoveResurrects(t *testing.T) {
	c := NewCrashFS(9)
	c.MkdirAll("d")
	writeAll(t, c, "d/f", []byte("back"))
	if err := c.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	// Crash on an unrelated operation: the removal never reached a
	// directory sync, so the durable namespace still holds d/f.
	c.CrashAfter(1)
	c.Append("d/unrelated")
	got, err := c.Recover().ReadFile("d/f")
	if err != nil || string(got) != "back" {
		t.Fatalf("removed-but-not-synced file did not resurrect: %q, %v", got, err)
	}
}

// TestCrashFSDeterministic: the same seed and crash point produce the
// same recovered image.
func TestCrashFSDeterministic(t *testing.T) {
	image := func() map[string]string {
		c := NewCrashFS(42)
		c.MkdirAll("d")
		writeAll(t, c, "d/a", []byte("aaaa"))
		c.CrashAfter(3)
		h, _ := c.Append("d/a")
		if h != nil {
			h.Write([]byte("bbbbbbbb"))
			h.Sync()
		}
		r := c.Recover()
		out := map[string]string{}
		names, _ := r.ReadDir("d")
		for _, n := range names {
			b, _ := r.ReadFile("d/" + n)
			out[n] = string(b)
		}
		return out
	}
	a, b := image(), image()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic image: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("nondeterministic content for %s: %q vs %q", k, v, b[k])
		}
	}
}

// TestCrashFSDeadAfterCrash: every operation after the crash fails
// with ErrCrashed.
func TestCrashFSDeadAfterCrash(t *testing.T) {
	c := NewCrashFS(5)
	c.MkdirAll("d")
	c.CrashAfter(1)
	if _, err := c.Create("d/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point op: %v", err)
	}
	if !c.Crashed() {
		t.Fatal("Crashed() = false after the crash fired")
	}
	if _, err := c.Create("d/y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Create: %v", err)
	}
	if _, err := c.ReadFile("d/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile: %v", err)
	}
	if err := c.SyncDir("d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash SyncDir: %v", err)
	}
}

// TestCrashFSCleanRecover: recovering an un-crashed filesystem keeps
// the full live state (clean shutdown).
func TestCrashFSCleanRecover(t *testing.T) {
	c := NewCrashFS(11)
	c.MkdirAll("d")
	h, _ := c.Create("d/f")
	h.Write([]byte("unsynced but clean"))
	r := c.Recover()
	got, err := r.ReadFile("d/f")
	if err != nil || string(got) != "unsynced but clean" {
		t.Fatalf("clean recover = %q, %v", got, err)
	}
}
