// Package stacked implements stacked filters (Deeds, Hentschel & Idreos,
// §2.8 of the tutorial): a hierarchy of alternating filters that exploits
// a sample of frequently-queried *negative* keys. Layer 1 holds the
// positives; layer 2 holds the known negatives that layer 1 falsely
// accepts; layer 3 holds the positives that layer 2 falsely rejects; and
// so on. A known hot negative must slip through every odd layer to be a
// false positive, so its error probability decreases exponentially with
// depth — the tutorial's "exponentially decrease the false positive rate
// when querying for them".
package stacked

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
)

// Filter is an immutable stacked filter.
type Filter struct {
	layers []*bloom.Filter // alternating: even index guards positives
	n      int
}

// New builds a stacked filter over the positive keys, using knownNegs —
// a sample of keys expected to be queried often despite being absent —
// and a per-layer bits-per-key budget. depth is the number of layers
// (>= 1; odd depths end on a positive layer, the usual choice is 3).
func New(positives, knownNegs []uint64, bitsPerKey float64, depth int) *Filter {
	if depth < 1 {
		depth = 1
	}
	f := &Filter{n: len(positives)}
	curPos, curNeg := positives, knownNegs
	for layer := 0; layer < depth; layer++ {
		seed := 0x57AC4ED + uint64(layer)*0x9E3779B97F4A7C15
		if layer%2 == 0 {
			bf := bloom.NewBitsSeeded(max(len(curPos), 1), bitsPerKey, seed)
			for _, k := range curPos {
				bf.Insert(k)
			}
			f.layers = append(f.layers, bf)
			// Negatives that pass this layer proceed to the next.
			curNeg = passing(bf, curNeg)
			if len(curNeg) == 0 {
				break
			}
		} else {
			bf := bloom.NewBitsSeeded(max(len(curNeg), 1), bitsPerKey, seed)
			for _, k := range curNeg {
				bf.Insert(k)
			}
			f.layers = append(f.layers, bf)
			// Positives falsely caught here must be re-asserted deeper.
			curPos = passing(bf, curPos)
			if len(curPos) == 0 {
				break
			}
		}
	}
	return f
}

func passing(bf *bloom.Filter, keys []uint64) []uint64 {
	var out []uint64
	for _, k := range keys {
		if bf.Contains(k) {
			out = append(out, k)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Contains walks the stack: a "no" from a positive layer or a "yes"
// carried to the end of a negative layer run decides the answer.
func (f *Filter) Contains(key uint64) bool {
	for i, layer := range f.layers {
		if !layer.Contains(key) {
			// Positive layers assert membership: missing means absent.
			// Negative layers assert known-negativity: missing means the
			// chain of doubt ends and the previous positive evidence
			// stands.
			return i%2 == 1
		}
	}
	// Passed every layer: the deepest layer decides.
	return len(f.layers)%2 == 1
}

// Len returns the number of positive keys.
func (f *Filter) Len() int { return f.n }

// Layers returns the number of constructed layers.
func (f *Filter) Layers() int { return len(f.layers) }

// SizeBits returns the total footprint of all layers.
func (f *Filter) SizeBits() int {
	total := 0
	for _, l := range f.layers {
		total += l.SizeBits()
	}
	return total
}

var _ core.Filter = (*Filter)(nil)
