package stacked

import (
	"testing"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	pos := workload.Keys(20000, 1)
	hotNeg := workload.DisjointKeys(5000, 1)
	f := New(pos, hotNeg, 10, 3)
	if fn := metrics.FalseNegatives(f, pos); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestHotNegativesSuppressed(t *testing.T) {
	// The §2.8 claim: FPR on the known hot negatives drops exponentially
	// vs a plain filter of comparable size.
	pos := workload.Keys(20000, 2)
	hotNeg := workload.DisjointKeys(5000, 2)
	f := New(pos, hotNeg, 8, 3)

	plain := bloom.NewBits(len(pos), float64(f.SizeBits())/float64(len(pos)))
	for _, k := range pos {
		plain.Insert(k)
	}

	stackedFPR := metrics.FPR(f, hotNeg)
	plainFPR := metrics.FPR(plain, hotNeg)
	if plainFPR == 0 {
		t.Skip("plain filter produced no FPs on the sample")
	}
	if stackedFPR > plainFPR/4 {
		t.Errorf("stacked FPR %g not well below plain %g on hot negatives", stackedFPR, plainFPR)
	}
}

func TestColdNegativesStillFiltered(t *testing.T) {
	pos := workload.Keys(20000, 3)
	hotNeg := workload.DisjointKeys(5000, 3)
	f := New(pos, hotNeg, 10, 3)
	coldNeg := workload.DisjointKeys(50000, 99)
	if fpr := metrics.FPR(f, coldNeg); fpr > 0.02 {
		t.Errorf("cold-negative FPR %g too high", fpr)
	}
}

func TestDepthOne(t *testing.T) {
	pos := workload.Keys(1000, 4)
	f := New(pos, nil, 10, 1)
	if f.Layers() != 1 {
		t.Fatalf("Layers = %d", f.Layers())
	}
	if fn := metrics.FalseNegatives(f, pos); fn != 0 {
		t.Fatal("false negatives at depth 1")
	}
}

func TestEmptyNegativesShortCircuit(t *testing.T) {
	pos := workload.Keys(1000, 5)
	f := New(pos, nil, 10, 5)
	if f.Layers() != 1 {
		t.Fatalf("Layers = %d, want 1 when no negatives pass", f.Layers())
	}
}

func TestEmptyPositives(t *testing.T) {
	f := New(nil, workload.Keys(10, 6), 10, 3)
	if f.Contains(123) {
		t.Error("empty-positive stacked filter claims membership")
	}
}
