package rsqf

import (
	"testing"
	"testing/quick"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(100000, 1)
	f := New(keys, 9)
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPRNearTarget(t *testing.T) {
	keys := workload.Keys(50000, 2)
	f := New(keys, 10)
	neg := workload.DisjointKeys(200000, 2)
	fpr := metrics.FPR(f, neg)
	// ε ≈ load · 2^-10 ≈ 0.00075 at ~0.77 load; allow 3x.
	if fpr > 0.003 {
		t.Errorf("FPR %g too high for r=10", fpr)
	}
	if fpr == 0 {
		t.Error("FPR exactly zero is suspicious at this size")
	}
}

func TestMetadataIs2Point125Bits(t *testing.T) {
	// The headline claim: metadata is exactly 2.125 bits/slot.
	keys := workload.Keys(100000, 3)
	f := New(keys, 8)
	meta := f.SizeBits() - f.remainders.SizeBits()
	perSlot := float64(meta) / float64(f.slots)
	if perSlot != 2.125 {
		t.Fatalf("metadata bits/slot = %f, want exactly 2.125", perSlot)
	}
}

func TestSpaceBeatsThreeBitLayout(t *testing.T) {
	// n at ~93% of a power of two so slot rounding doesn't mask the
	// metadata comparison (same convention as experiment E1).
	n := 1 << 17 * 93 / 100
	keys := workload.Keys(n, 5)
	f := New(keys, 8)
	perKey := float64(f.SizeBits()) / float64(len(keys))
	// (8+2.125)/0.93 ≈ 10.9; must be under the 3-bit layout's
	// (8+3)/0.93 ≈ 11.8.
	if perKey > 11.3 {
		t.Errorf("bits/key = %f, want ≈10.9 (below the 3-bit layout's ~11.8)", perKey)
	}
}

func TestDensePacking(t *testing.T) {
	// Sequential keys stress run shifting across block boundaries.
	keys := make([]uint64, 60000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	f := New(keys, 8)
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives on sequential keys", fn)
	}
}

func TestClusteredQuotients(t *testing.T) {
	// Many keys forced into few quotients: long runs, big offsets,
	// saturation path.
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = uint64(i) // fingerprints spread by hashing; fine
	}
	// Small r so the table is small and runs collide hard.
	f := New(keys, 4)
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives under clustering", fn)
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	prop := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		f := New(keys, 12)
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmpty(t *testing.T) {
	f := New(nil, 8)
	if f.Contains(42) {
		t.Fatal("empty filter claims membership")
	}
}

func BenchmarkContains(b *testing.B) {
	keys := workload.Keys(1<<20, 7)
	f := New(keys, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}

func BenchmarkBuild(b *testing.B) {
	keys := workload.Keys(100000, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(keys, 9)
	}
}
