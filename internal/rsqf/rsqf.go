// Package rsqf implements the rank-and-select quotient filter block
// layout of the counting quotient filter paper (Pandey et al. 2017) —
// the structure behind the tutorial's headline claim that a quotient
// filter costs n·lg(1/ε) + 2.125n bits. Slots are grouped into 64-slot
// blocks, each carrying one occupieds word, one runends word, and one
// 8-bit offset, for exactly 2.125 metadata bits per slot on top of the
// r remainder bits.
//
// This implementation is a static filter: it bulk-builds from the key
// set and serves membership lookups. The dynamic quotient filter in
// package quotient uses the original 3-metadata-bit layout; this package
// exists to reproduce the 2.125-bit space point and the rank/select
// lookup algorithm. (The paper's dynamic insert — shifting remainders
// and runends across block boundaries while patching offsets — changes
// no space accounting, so the static build preserves everything the
// space experiments measure.)
package rsqf

import (
	"math/bits"
	"sort"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Filter is an immutable RSQF.
type Filter struct {
	occupieds  []uint64 // one word per block: quotient j has a run
	runends    []uint64 // one word per block: slot j ends a run
	offsets    []uint8  // per block: overhang of the last run from before
	remainders *bitvec.Packed
	q          uint // log2 of nominal slots
	r          uint
	extraSlack uint64 // grown when pathological shifting exhausts slack
	slots      uint64 // physical slots = 2^q + slack (shifted runs spill)
	seed       uint64
	n          int
}

// New builds an RSQF over keys with r-bit remainders. The quotient count
// is the smallest power of two giving load factor <= 0.95.
func New(keys []uint64, r uint) *Filter {
	if r < 1 || r > 56 {
		panic("rsqf: remainder bits out of range")
	}
	q := uint(1)
	for float64(uint64(1)<<q)*0.95 < float64(len(keys)) {
		q++
	}
	f := &Filter{q: q, r: r, seed: 0x125E1EC7}
	f.build(keys)
	return f
}

func (f *Filter) fingerprint(key uint64) (fq, fr uint64) {
	h := hashutil.MixSeed(key, f.seed)
	fp := h & hashutil.Mask(f.q+f.r)
	return fp >> f.r, fp & hashutil.Mask(f.r)
}

// build places runs in quotient order with first-fit shifting, then
// derives the per-block offsets.
func (f *Filter) build(keys []uint64) {
	nominal := uint64(1) << f.q
	// Collect remainders grouped by quotient.
	type fpr struct{ fq, fr uint64 }
	fps := make([]fpr, 0, len(keys))
	for _, k := range keys {
		fq, fr := f.fingerprint(k)
		fps = append(fps, fpr{fq, fr})
	}
	sort.Slice(fps, func(i, j int) bool {
		if fps[i].fq != fps[j].fq {
			return fps[i].fq < fps[j].fq
		}
		return fps[i].fr < fps[j].fr
	})
	// Dedup full fingerprints.
	dedup := fps[:0]
	for i, p := range fps {
		if i == 0 || p != fps[i-1] {
			dedup = append(dedup, p)
		}
	}
	fps = dedup
	f.n = len(fps)

	// Slack: shifted runs can spill past the last nominal slot.
	slack := uint64(64) + f.extraSlack
	for uint64(len(fps)) > nominal {
		slack += 64 // degenerate (overfull) inputs; keep building anyway
		nominal += 64
	}
	f.slots = nominal + slack
	numBlocks := int((f.slots + 63) / 64)
	f.occupieds = make([]uint64, numBlocks)
	f.runends = make([]uint64, numBlocks)
	f.offsets = make([]uint8, numBlocks)
	f.remainders = bitvec.NewPacked(int(f.slots), f.r)

	// ends[i] = runend position of the i-th run (in quotient order);
	// quotients[i] = its quotient.
	var endPositions []uint64
	var quotients []uint64
	pos := uint64(0)
	i := 0
	for i < len(fps) {
		fq := fps[i].fq
		j := i
		for j < len(fps) && fps[j].fq == fq {
			j++
		}
		start := fq
		if pos > start {
			start = pos
		}
		if start+uint64(j-i) > f.slots {
			// Exhausted slack (pathological). Grow and restart.
			f.extraSlack += 256
			f.build(keys)
			return
		}
		f.occupieds[fq>>6] |= 1 << (fq & 63)
		for k := i; k < j; k++ {
			slot := start + uint64(k-i)
			f.remainders.Set(int(slot), fps[k].fr)
		}
		end := start + uint64(j-i) - 1
		f.runends[end>>6] |= 1 << (end & 63)
		endPositions = append(endPositions, end)
		quotients = append(quotients, fq)
		pos = end + 1
		i = j
	}

	// Offsets: for each block base b*64, the runend of the last run whose
	// quotient is < b*64, expressed relative to b*64-1 and clamped at 0.
	// Lookups anchor their runend scan at base-1+offset.
	ri := 0
	for b := 0; b < numBlocks; b++ {
		base := uint64(b) << 6
		for ri < len(quotients) && quotients[ri] < base {
			ri++
		}
		// Last run with quotient < base is ri-1.
		if ri > 0 && endPositions[ri-1] >= base {
			off := endPositions[ri-1] - (base - 1)
			if off > 255 {
				off = 255 // saturate; lookups fall back to a longer scan
			}
			f.offsets[b] = uint8(off)
		}
	}
}

// runendAfter returns the position of the p-th runend bit strictly after
// anchor (p >= 1), scanning the runends words.
func (f *Filter) runendAfter(anchor int64, p int) uint64 {
	word := int((anchor + 1) >> 6)
	bit := uint((anchor + 1) & 63)
	w := f.runends[word] >> bit << bit // clear bits below start
	for {
		c := bits.OnesCount64(w)
		if c >= p {
			for i := 1; i < p; i++ {
				w &= w - 1
			}
			return uint64(word)<<6 + uint64(bits.TrailingZeros64(w))
		}
		p -= c
		word++
		w = f.runends[word]
	}
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key uint64) bool {
	fq, fr := f.fingerprint(key)
	block := fq >> 6
	inBlock := fq & 63
	if f.occupieds[block]&(1<<inBlock) == 0 {
		return false
	}
	// Number of occupied quotients in [block*64, fq].
	p := bits.OnesCount64(f.occupieds[block] & ((2 << inBlock) - 1))
	anchor := int64(block<<6) - 1 + int64(f.offsets[block])
	if f.offsets[block] == 255 {
		// Saturated offset: rebase the anchor by walking back to the
		// previous block whose offset is exact. Rare; simple fallback:
		// scan from the previous block's anchor including its runs.
		pb := block - 1
		for pb > 0 && f.offsets[pb] == 255 {
			pb--
		}
		anchor = int64(pb<<6) - 1 + int64(f.offsets[pb])
		for b := pb; b < block; b++ {
			p += bits.OnesCount64(f.occupieds[b])
		}
	}
	end := f.runendAfter(anchor, p)
	// Run start: after the previous run's end, and at or after fq.
	start := fq
	if p > 1 || anchor >= int64(fq) {
		var prevEnd uint64
		if p > 1 {
			prevEnd = f.runendAfter(anchor, p-1)
		} else {
			prevEnd = uint64(anchor)
		}
		if prevEnd+1 > start {
			start = prevEnd + 1
		}
	}
	for s := start; s <= end; s++ {
		v := f.remainders.Get(int(s))
		if v == fr {
			return true
		}
		if v > fr {
			return false
		}
	}
	return false
}

// Len returns the number of distinct fingerprints stored.
func (f *Filter) Len() int { return f.n }

// SizeBits returns the physical footprint: r-bit remainders plus exactly
// 2.125 metadata bits per slot (occupieds + runends + offsets/64).
func (f *Filter) SizeBits() int {
	return f.remainders.SizeBits() + len(f.occupieds)*64 + len(f.runends)*64 + len(f.offsets)*8
}

var _ core.Filter = (*Filter)(nil)
