package persisttest

import (
	"bytes"
	"errors"
	"testing"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/wal"
)

// walOp mirrors one logged operation for comparison.
type walOp struct {
	lsn uint64
	op  wal.Op
}

// buildWALSegment writes a real log through the WAL's own writer and
// returns the raw segment image plus the operations it acknowledged —
// the fuzz target then grafts arbitrary suffixes onto that image.
func buildWALSegment(tb testing.TB) ([]byte, []walOp) {
	fs := fault.NewCrashFS(42)
	l, err := wal.Open("wal", wal.Options{FS: fs, SegmentBytes: 1 << 20}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	var want []walOp
	lsn := uint64(0)
	batches := [][]wal.Op{
		{{Key: 1, Value: 100}},
		{{Key: 2, Value: 200}, {Key: 3, Tombstone: true}},
		{{Key: 4, Value: 400}, {Key: 5, Value: 500}, {Key: 1, Tombstone: true}},
	}
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			tb.Fatal(err)
		}
		for _, op := range b {
			lsn++
			want = append(want, walOp{lsn, op})
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	names, err := fs.ReadDir("wal")
	if err != nil || len(names) != 1 {
		tb.Fatalf("segments %v, %v", names, err)
	}
	data, err := fs.ReadFile("wal/" + names[0])
	if err != nil {
		tb.Fatal(err)
	}
	return data, want
}

// FuzzWALReplay appends arbitrary byte suffixes to a valid WAL segment
// and scans the result. The replay contract under any tail damage:
// never panic, never drop or alter the valid record prefix, never
// invent operations past it without a checksum-valid contiguous-LSN
// frame, and fail only with errors wrapping codec.ErrCorrupt. The
// truncate-to-validLen repair must be idempotent: re-scanning the
// repaired image succeeds cleanly and yields the identical history.
func FuzzWALReplay(f *testing.F) {
	seg, want := buildWALSegment(f)

	f.Add([]byte{})                         // clean tail
	f.Add(seg[:codec.HeaderSize/2])         // torn mid-header
	f.Add(seg[:codec.HeaderSize+3])         // torn mid-payload
	f.Add(bytes.Repeat([]byte{0x00}, 64))   // zero padding (preallocated tail)
	f.Add(bytes.Repeat([]byte{0xFF}, 64))   // flash-erase padding
	f.Add(seg)                              // full duplicate segment (LSN restart = corrupt)
	f.Add([]byte("BBF1 torn tail garbage")) // magic without a frame
	f.Fuzz(func(t *testing.T, suffix []byte) {
		data := append(append([]byte(nil), seg...), suffix...)
		var got []walOp
		validLen, first, last, err := wal.ScanSegment(data, func(lsn uint64, op wal.Op) error {
			got = append(got, walOp{lsn, op})
			return nil
		})
		if err != nil && !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("scan error %v does not wrap codec.ErrCorrupt", err)
		}
		// The intact prefix is inviolable: every original record survives
		// unaltered, in order, regardless of what follows it.
		if validLen < len(seg) {
			t.Fatalf("valid prefix shrank to %d bytes (segment is %d)", validLen, len(seg))
		}
		if len(got) < len(want) {
			t.Fatalf("replayed %d ops, want at least the %d valid ones", len(got), len(want))
		}
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("op %d: replayed %+v, want %+v", i, got[i], w)
			}
		}
		// No invented history: anything past the original ops must carry
		// contiguous LSNs (ScanSegment enforces it; double-check here).
		for i, g := range got {
			if g.lsn != uint64(i)+1 {
				t.Fatalf("op %d carries LSN %d", i, g.lsn)
			}
		}
		if first != 1 || last != uint64(len(got)) {
			t.Fatalf("scan reported LSNs [%d, %d] for %d ops", first, last, len(got))
		}
		// Repair idempotence: the truncated image scans cleanly and
		// reproduces the same history byte for byte.
		var again []walOp
		validLen2, _, _, err2 := wal.ScanSegment(data[:validLen], func(lsn uint64, op wal.Op) error {
			again = append(again, walOp{lsn, op})
			return nil
		})
		if err2 != nil {
			t.Fatalf("re-scan of repaired image failed: %v", err2)
		}
		if validLen2 != validLen || len(again) != len(got) {
			t.Fatalf("repair not idempotent: %d/%d bytes, %d/%d ops",
				validLen2, validLen, len(again), len(got))
		}
		for i := range got {
			if again[i] != got[i] {
				t.Fatalf("re-scan op %d: %+v != %+v", i, again[i], got[i])
			}
		}
	})
}
