package persisttest

import (
	"bytes"
	"testing"

	"beyondbloom/internal/core"
)

// maxOverheadBytes bounds the framing overhead of one encoded
// component: the outer frame header, the Spec, the scalar state
// fields, and the nested substrate frame headers together stay well
// under this. Anything beyond means SizeBits and the encoder disagree
// about what the filter's state is — accounting drift the benchmarks
// would silently inherit.
const maxOverheadBytes = 512

// TestSizeBitsMatchesEncoding cross-checks each filter's reported
// footprint against its actual encoded length: the encoding must not
// be smaller than SizeBits claims (state missing from the file) nor
// more than the per-component header allowance larger (state SizeBits
// fails to account for).
func TestSizeBitsMatchesEncoding(t *testing.T) {
	fixtures, err := Fixtures(2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		t.Run(fx.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := core.Save(&buf, fx.Filter); err != nil {
				t.Fatal(err)
			}
			encodedBits := buf.Len() * 8
			sizeBits := fx.Filter.SizeBits()
			slackBits := 8*maxOverheadBytes*fx.Components + fx.EncodedSlackBits
			if encodedBits < sizeBits {
				t.Errorf("encoding is %d bits but SizeBits reports %d: state missing from the file",
					encodedBits, sizeBits)
			}
			if encodedBits > sizeBits+slackBits {
				t.Errorf("encoding is %d bits, SizeBits %d + %d overhead allowance: SizeBits undercounts state",
					encodedBits, sizeBits, slackBits)
			}
		})
	}
}
