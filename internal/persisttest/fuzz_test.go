package persisttest

import (
	"bytes"
	"errors"
	"testing"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the registry loader. The
// contract under fuzzing: Load either returns an error wrapping
// codec.ErrCorrupt (or reports a stream-level failure that still wraps
// it) or succeeds — and on success the loaded filter must re-encode to
// exactly the bytes consumed (canonical encoding). It must never
// panic, hang on a huge corrupt length, or silently accept a mutation.
func FuzzCodecRoundTrip(f *testing.F) {
	fixtures, err := Fixtures(64)
	if err != nil {
		f.Fatal(err)
	}
	for _, fx := range fixtures {
		var buf bytes.Buffer
		if _, err := core.Save(&buf, fx.Filter); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A mutated variant per fixture seeds the interesting edge of the
		// space: almost-valid frames.
		mut := append([]byte(nil), buf.Bytes()...)
		mut[len(mut)/2] ^= 0x01
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("BBF1 but not really a frame"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		loaded, err := core.Load(r)
		if err != nil {
			if !errors.Is(err, codec.ErrCorrupt) {
				t.Fatalf("Load error %v does not wrap codec.ErrCorrupt", err)
			}
			return
		}
		consumed := len(data) - r.Len()
		var out bytes.Buffer
		if _, err := core.Save(&out, loaded); err != nil {
			t.Fatalf("re-encoding a successfully loaded filter failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("non-canonical load: consumed %d bytes but re-encoded %d different ones",
				consumed, out.Len())
		}
	})
}
