package persisttest

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beyondbloom/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden .bbf files from current encoders")

// goldenN is the fixture size the golden files were generated with.
// Changing it (or anything that changes the fixtures' bytes) requires
// regenerating with -update — which is exactly the point: the files pin
// the version-1 wire format, and any unintended encoding change fails
// here before it ships as a silent format break.
const goldenN = 256

func goldenPath(name string) string {
	return filepath.Join("testdata", strings.ReplaceAll(name, "/", "_")+".bbf")
}

// TestGoldenFiles pins the wire format: every fixture must encode to
// byte-identical .bbf files checked into testdata, and the checked-in
// bytes must load into filters that still answer membership for the
// fixture keys.
func TestGoldenFiles(t *testing.T) {
	fixtures, err := Fixtures(goldenN)
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		t.Run(fx.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := core.Save(&buf, fx.Filter); err != nil {
				t.Fatal(err)
			}
			path := goldenPath(fx.Name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("encoding of %s changed: %d bytes vs %d golden — the v1 wire format must stay stable (use -update only for deliberate, versioned changes)",
					fx.Name, buf.Len(), len(want))
			}
			loaded, err := core.Load(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("loading golden file: %v", err)
			}
			for _, k := range fx.Keys {
				if !loaded.Contains(k) {
					t.Fatalf("golden-loaded filter lost key %#x", k)
				}
			}
		})
	}
}
