// Package persisttest exercises the persistence layer across every
// registered filter type in one place: round-trip property tests
// (bit-identical re-encoding, identical query answers after reload),
// SizeBits-versus-encoded-length cross-checks, golden files pinning
// the version-1 wire format, and a fuzzer feeding mutated frames to
// the registry loader. It lives apart from the filter packages so the
// same fixtures drive every check and a new Persistent implementation
// only needs a fixture entry here to inherit the whole suite.
package persisttest

import (
	"fmt"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/xorfilter"
)

// Fixture is one built, populated filter ready for persistence checks.
type Fixture struct {
	Name   string
	Filter core.Persistent
	Keys   []uint64 // the inserted keys
	// Components counts the independently framed structures inside the
	// encoding (shards for wrappers, 1 otherwise); the SizeBits
	// cross-check scales its header-overhead allowance by it.
	Components int
}

// Keys returns n deterministic pseudo-random keys (golden files and
// fuzz corpora need bit-reproducible fixtures, so no math/rand).
func Keys(n int, salt uint64) []uint64 {
	out := make([]uint64, n)
	x := salt*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for i := range out {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		out[i] = z
	}
	return out
}

// Fixtures builds one populated fixture per registered filter type
// with n keys each. Construction is fully deterministic: the same n
// always yields bit-identical filters.
func Fixtures(n int) ([]Fixture, error) {
	keys := Keys(n, 1)
	var fixtures []Fixture

	bf := bloom.NewBits(n, 10)
	for _, k := range keys {
		if err := bf.Insert(k); err != nil {
			return nil, fmt.Errorf("bloom insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom", Filter: bf, Keys: keys, Components: 1})

	bb := bloom.NewBlocked(n, 10)
	for _, k := range keys {
		if err := bb.Insert(k); err != nil {
			return nil, fmt.Errorf("blocked insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom.Blocked", Filter: bb, Keys: keys, Components: 1})

	bc := bloom.NewBlockedChoices(n, 10)
	for _, k := range keys {
		if err := bc.Insert(k); err != nil {
			return nil, fmt.Errorf("choices insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom.BlockedChoices", Filter: bc, Keys: keys, Components: 1})

	cf := cuckoo.New(n, 12)
	for _, k := range keys {
		if err := cf.Insert(k); err != nil {
			return nil, fmt.Errorf("cuckoo insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "cuckoo", Filter: cf, Keys: keys, Components: 1})

	qf := quotient.NewForCapacity(n, 1.0/1024)
	for _, k := range keys {
		if err := qf.Insert(k); err != nil {
			return nil, fmt.Errorf("quotient insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "quotient", Filter: qf, Keys: keys, Components: 1})

	xf, err := xorfilter.New(keys, 12)
	if err != nil {
		return nil, fmt.Errorf("xorfilter build: %w", err)
	}
	fixtures = append(fixtures, Fixture{Name: "xorfilter", Filter: xf, Keys: keys, Components: 1})

	const logShards = 2
	sf, err := concurrent.NewSharded(logShards, func(int) core.DeletableFilter {
		return cuckoo.New(n>>logShards+16, 12)
	})
	if err != nil {
		return nil, fmt.Errorf("sharded build: %w", err)
	}
	for _, k := range keys {
		if err := sf.Insert(k); err != nil {
			return nil, fmt.Errorf("sharded insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "concurrent.Sharded", Filter: sf, Keys: keys, Components: 1 << logShards})

	return fixtures, nil
}
