// Package persisttest exercises the persistence layer across every
// registered filter type in one place: round-trip property tests
// (bit-identical re-encoding, identical query answers after reload),
// SizeBits-versus-encoded-length cross-checks, golden files pinning
// the version-1 wire format, and a fuzzer feeding mutated frames to
// the registry loader. It lives apart from the filter packages so the
// same fixtures drive every check and a new Persistent implementation
// only needs a fixture entry here to inherit the whole suite.
package persisttest

import (
	"fmt"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/infini"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/taffy"
	"beyondbloom/internal/xorfilter"
)

// Fixture is one built, populated filter ready for persistence checks.
type Fixture struct {
	Name   string
	Filter core.Persistent
	Keys   []uint64 // the inserted keys
	// Components counts the independently framed structures inside the
	// encoding (shards for wrappers, 1 otherwise); the SizeBits
	// cross-check scales its header-overhead allowance by it.
	Components int
	// EncodedSlackBits is extra allowance for filters whose SizeBits is
	// deliberately not a byte count of their state — infini reports the
	// paper's packed-slot layout, while its recovery encoding stores
	// byte-aligned (fingerprint, length) pairs. Zero for every filter
	// whose accounting and encoding describe the same bytes.
	EncodedSlackBits int
}

// Keys returns n deterministic pseudo-random keys (golden files and
// fuzz corpora need bit-reproducible fixtures, so no math/rand).
func Keys(n int, salt uint64) []uint64 {
	out := make([]uint64, n)
	x := salt*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for i := range out {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		out[i] = z
	}
	return out
}

// Fixtures builds one populated fixture per registered filter type
// with n keys each. Construction is fully deterministic: the same n
// always yields bit-identical filters.
func Fixtures(n int) ([]Fixture, error) {
	keys := Keys(n, 1)
	var fixtures []Fixture

	bf := bloom.NewBits(n, 10)
	for _, k := range keys {
		if err := bf.Insert(k); err != nil {
			return nil, fmt.Errorf("bloom insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom", Filter: bf, Keys: keys, Components: 1})

	bb := bloom.NewBlocked(n, 10)
	for _, k := range keys {
		if err := bb.Insert(k); err != nil {
			return nil, fmt.Errorf("blocked insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom.Blocked", Filter: bb, Keys: keys, Components: 1})

	bc := bloom.NewBlockedChoices(n, 10)
	for _, k := range keys {
		if err := bc.Insert(k); err != nil {
			return nil, fmt.Errorf("choices insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom.BlockedChoices", Filter: bc, Keys: keys, Components: 1})

	cf := cuckoo.New(n, 12)
	for _, k := range keys {
		if err := cf.Insert(k); err != nil {
			return nil, fmt.Errorf("cuckoo insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "cuckoo", Filter: cf, Keys: keys, Components: 1})

	qf := quotient.NewForCapacity(n, 1.0/1024)
	for _, k := range keys {
		if err := qf.Insert(k); err != nil {
			return nil, fmt.Errorf("quotient insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "quotient", Filter: qf, Keys: keys, Components: 1})

	xf, err := xorfilter.New(keys, 12)
	if err != nil {
		return nil, fmt.Errorf("xorfilter build: %w", err)
	}
	fixtures = append(fixtures, Fixture{Name: "xorfilter", Filter: xf, Keys: keys, Components: 1})

	const logShards = 2
	sf, err := concurrent.NewSharded(logShards, func(int) core.DeletableFilter {
		return cuckoo.New(n>>logShards+16, 12)
	})
	if err != nil {
		return nil, fmt.Errorf("sharded build: %w", err)
	}
	for _, k := range keys {
		if err := sf.Insert(k); err != nil {
			return nil, fmt.Errorf("sharded insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "concurrent.Sharded", Filter: sf, Keys: keys, Components: 1 << logShards})

	// The growable filters start well under n so the fixtures capture
	// real growth state (expansion counters, stage chains, mid-table
	// migration) rather than a filter still in its first configuration.
	sb, err := bloom.NewScalable(n/8+1, 1.0/128)
	if err != nil {
		return nil, fmt.Errorf("scalable build: %w", err)
	}
	for _, k := range keys {
		if err := sb.Insert(k); err != nil {
			return nil, fmt.Errorf("scalable insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "bloom.Scalable", Filter: sb, Keys: keys, Components: 1})

	inf, err := infini.New(4)
	if err != nil {
		return nil, fmt.Errorf("infini build: %w", err)
	}
	for _, k := range keys {
		if err := inf.Insert(k); err != nil {
			return nil, fmt.Errorf("infini insert: %w", err)
		}
	}
	// infini's SizeBits models the paper's bit-packed slot layout
	// (~len+5 bits per entry); the byte-aligned recovery encoding costs
	// up to ~2x that, so the cross-check gets the difference as slack.
	fixtures = append(fixtures, Fixture{Name: "infini", Filter: inf, Keys: keys, Components: 1,
		EncodedSlackBits: inf.SizeBits()})

	tf, err := taffy.New(8, 1.0/128)
	if err != nil {
		return nil, fmt.Errorf("taffy build: %w", err)
	}
	for _, k := range keys {
		if err := tf.Insert(k); err != nil {
			return nil, fmt.Errorf("taffy insert: %w", err)
		}
	}
	fixtures = append(fixtures, Fixture{Name: "taffy", Filter: tf, Keys: keys, Components: 1})

	return fixtures, nil
}
