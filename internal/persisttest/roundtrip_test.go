package persisttest

import (
	"bytes"
	"errors"
	"testing"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

// TestRoundTrip is the core persistence property for every registered
// filter type: Save → Load must reproduce bit-identical state (the
// reloaded filter re-encodes to the same bytes) and identical query
// answers, scalar and batched, for present and absent keys alike.
func TestRoundTrip(t *testing.T) {
	fixtures, err := Fixtures(2000)
	if err != nil {
		t.Fatal(err)
	}
	absent := Keys(4000, 99)
	for _, fx := range fixtures {
		t.Run(fx.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := core.Save(&buf, fx.Filter); err != nil {
				t.Fatalf("Save: %v", err)
			}
			encoded := buf.Bytes()
			got, err := core.Load(bytes.NewReader(encoded))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if got.TypeID() != fx.Filter.TypeID() {
				t.Fatalf("TypeID: got %d, want %d", got.TypeID(), fx.Filter.TypeID())
			}

			// Bit-identical state: the reloaded filter must serialize to
			// exactly the bytes it was loaded from.
			var buf2 bytes.Buffer
			if _, err := core.Save(&buf2, got); err != nil {
				t.Fatalf("re-Save: %v", err)
			}
			if !bytes.Equal(encoded, buf2.Bytes()) {
				t.Fatalf("re-encoding differs: %d vs %d bytes", len(encoded), buf2.Len())
			}

			if got.SizeBits() != fx.Filter.SizeBits() {
				t.Errorf("SizeBits: got %d, want %d", got.SizeBits(), fx.Filter.SizeBits())
			}
			for _, k := range fx.Keys {
				if !got.Contains(k) {
					t.Fatalf("reloaded filter lost key %#x", k)
				}
			}
			wantAbsent := make([]bool, len(absent))
			gotAbsent := make([]bool, len(absent))
			for i, k := range absent {
				wantAbsent[i] = fx.Filter.Contains(k)
				gotAbsent[i] = got.Contains(k)
			}
			for i := range absent {
				if wantAbsent[i] != gotAbsent[i] {
					t.Fatalf("Contains(%#x): got %v, want %v", absent[i], gotAbsent[i], wantAbsent[i])
				}
			}

			// Batched answers must agree with the original's batched path.
			wantBatch := make([]bool, len(absent))
			gotBatch := make([]bool, len(absent))
			core.ContainsBatch(fx.Filter, absent, wantBatch)
			core.ContainsBatch(got, absent, gotBatch)
			for i := range absent {
				if wantBatch[i] != gotBatch[i] {
					t.Fatalf("ContainsBatch(%#x): got %v, want %v", absent[i], gotBatch[i], wantBatch[i])
				}
			}
		})
	}
}

// TestLoadStreamsBackToBack verifies Load leaves the reader positioned
// exactly after one filter's encoding, so several filters can share a
// stream.
func TestLoadStreamsBackToBack(t *testing.T) {
	fixtures, err := Fixtures(300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, fx := range fixtures {
		if _, err := core.Save(&buf, fx.Filter); err != nil {
			t.Fatalf("Save(%s): %v", fx.Name, err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for _, fx := range fixtures {
		got, err := core.Load(r)
		if err != nil {
			t.Fatalf("Load(%s): %v", fx.Name, err)
		}
		if got.TypeID() != fx.Filter.TypeID() {
			t.Fatalf("Load(%s): TypeID %d, want %d", fx.Name, got.TypeID(), fx.Filter.TypeID())
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left after loading every filter", r.Len())
	}
}

// TestCorruptionDetected flips bytes throughout each filter's encoding
// and requires every mutation to surface as an ErrCorrupt-wrapped
// error (or, for undetectable header-adjacent flips, at least not a
// silently different filter).
func TestCorruptionDetected(t *testing.T) {
	fixtures, err := Fixtures(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		t.Run(fx.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := core.Save(&buf, fx.Filter); err != nil {
				t.Fatal(err)
			}
			encoded := buf.Bytes()
			// Stride through the encoding; exhaustive per-byte flips are
			// the codec package's job, here we check every region of every
			// filter format reports corruption.
			for off := 0; off < len(encoded); off += 7 {
				mutated := append([]byte(nil), encoded...)
				mutated[off] ^= 0x40
				_, err := core.Load(bytes.NewReader(mutated))
				if err == nil {
					t.Fatalf("flip at offset %d/%d not detected", off, len(encoded))
				}
				if !errors.Is(err, codec.ErrCorrupt) {
					t.Fatalf("flip at offset %d: error %v does not wrap ErrCorrupt", off, err)
				}
			}
		})
	}
}

// TestRegistryCoverage pins the registered type table: all six filter
// types from the tutorial must be present under their stable IDs.
func TestRegistryCoverage(t *testing.T) {
	want := map[uint16]string{
		core.TypeBloom:        "bloom",
		core.TypeBlockedBloom: "bloom.Blocked",
		core.TypeCuckoo:       "cuckoo",
		core.TypeQuotient:     "quotient",
		core.TypeXor:          "xorfilter",
		core.TypeSharded:      "concurrent.Sharded",
	}
	for id, name := range want {
		if got := core.TypeName(id); got != name {
			t.Errorf("TypeName(%d) = %q, want %q", id, got, name)
		}
	}
	if got := len(core.RegisteredTypes()); got < len(want) {
		t.Errorf("RegisteredTypes: %d entries, want at least %d", got, len(want))
	}
}
