// Package workload generates the deterministic synthetic workloads used
// by every experiment: uniform and Zipfian key sets, adversarial query
// streams, correlated range queries, URL-like strings, and DNA sequences.
// All generators are seeded, so experiment output is reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"beyondbloom/internal/hashutil"
)

// Keys returns n distinct pseudo-random uint64 keys derived from seed.
// Distinctness comes from Mix64 being a bijection over a counter.
func Keys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.Mix64(uint64(i) + seed<<32)
	}
	return keys
}

// DisjointKeys returns n keys guaranteed not to collide with Keys(m, seed)
// for any m (it uses a disjoint counter range under the same bijection).
func DisjointKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.Mix64(uint64(i) + seed<<32 + 1<<48)
	}
	return keys
}

// SmallUniverseKeys returns n distinct keys drawn uniformly from
// [0, universe). It panics if n > universe.
func SmallUniverseKeys(n int, universe uint64, seed int64) []uint64 {
	if uint64(n) > universe {
		panic("workload: n exceeds universe")
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]struct{}, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := rng.Uint64() % universe
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// Zipf returns a stream of m samples over items [0, n) following a
// Zipfian distribution with parameter s > 1.
func Zipf(m, n int, s float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]int, m)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// ZipfMultiset returns a multiset over the given keys: counts follow a
// Zipfian distribution with parameter s, total samples m.
func ZipfMultiset(keys []uint64, m int, s float64, seed int64) map[uint64]uint64 {
	idx := Zipf(m, len(keys), s, seed)
	counts := make(map[uint64]uint64)
	for _, i := range idx {
		counts[keys[i]]++
	}
	return counts
}

// RangeQuery is a closed-interval query [Lo, Hi].
type RangeQuery struct {
	Lo, Hi uint64
}

// UniformRanges returns m queries of the given length with uniformly
// random starting points in [0, universe-length).
func UniformRanges(m int, length, universe uint64, seed int64) []RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]RangeQuery, m)
	for i := range qs {
		lo := rng.Uint64() % (universe - length)
		qs[i] = RangeQuery{Lo: lo, Hi: lo + length - 1}
	}
	return qs
}

// CorrelatedRanges returns m queries whose left endpoint sits a fixed
// small gap after an existing key — the adversarially correlated workload
// the tutorial credits Grafite with surviving. Such queries are usually
// empty but land very close to keys, defeating prefix-based filters.
func CorrelatedRanges(keys []uint64, m int, length, gap uint64, seed int64) []RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]RangeQuery, m)
	for i := range qs {
		k := keys[rng.Intn(len(keys))]
		lo := k + gap
		qs[i] = RangeQuery{Lo: lo, Hi: lo + length - 1}
	}
	return qs
}

// AdversarialPrefixKeys returns n key pairs engineered so that every pair
// shares a unique long prefix (they differ only in the low bits). This is
// the workload the tutorial notes destroys SuRF's space efficiency, since
// the trie must store nearly all 64 bits of every key to disambiguate.
func AdversarialPrefixKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, 0, n)
	for i := 0; len(keys) < n; i++ {
		base := hashutil.Mix64(uint64(i)+seed) &^ uint64(3)
		keys = append(keys, base)
		if len(keys) < n {
			keys = append(keys, base|1)
		}
	}
	return keys
}

// URLs returns n synthetic URL-like strings with realistic structure
// (scheme, domain drawn from a skewed distribution, random path).
func URLs(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	tlds := []string{"com", "net", "org", "io", "ru", "cn", "info"}
	out := make([]string, n)
	for i := range out {
		domLen := 5 + rng.Intn(12)
		dom := randString(rng, domLen)
		pathLen := 4 + rng.Intn(24)
		path := randString(rng, pathLen)
		out[i] = fmt.Sprintf("http://%s.%s/%s", dom, tlds[rng.Intn(len(tlds))], path)
	}
	return out
}

const lowerAlnum = "abcdefghijklmnopqrstuvwxyz0123456789"

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = lowerAlnum[rng.Intn(len(lowerAlnum))]
	}
	return string(b)
}

// DNA returns a random genome of length n over ACGT.
func DNA(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	g := make([]byte, n)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	return g
}

// Reads fragments genome into m reads of the given length at random
// offsets, optionally flipping each base with errRate (sequencing error).
func Reads(genome []byte, m, length int, errRate float64, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	reads := make([][]byte, m)
	for i := range reads {
		off := rng.Intn(len(genome) - length + 1)
		r := make([]byte, length)
		copy(r, genome[off:off+length])
		if errRate > 0 {
			for j := range r {
				if rng.Float64() < errRate {
					r[j] = bases[rng.Intn(4)]
				}
			}
		}
		reads[i] = r
	}
	return reads
}

// Shuffle permutes xs deterministically in place.
func Shuffle[T any](xs []T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
