package workload

import (
	"regexp"
	"testing"
)

func TestKeysDistinctAndDeterministic(t *testing.T) {
	a := Keys(10000, 1)
	b := Keys(10000, 1)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Keys not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("Keys not distinct")
		}
		seen[a[i]] = true
	}
}

func TestDisjointKeysDisjoint(t *testing.T) {
	a := Keys(10000, 1)
	b := DisjointKeys(10000, 1)
	set := map[uint64]bool{}
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		if set[k] {
			t.Fatal("DisjointKeys overlaps Keys")
		}
	}
}

func TestSmallUniverseKeys(t *testing.T) {
	ks := SmallUniverseKeys(100, 1000, 3)
	seen := map[uint64]bool{}
	for _, k := range ks {
		if k >= 1000 {
			t.Fatalf("key %d out of universe", k)
		}
		if seen[k] {
			t.Fatal("duplicate key")
		}
		seen[k] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n > universe must panic")
		}
	}()
	SmallUniverseKeys(11, 10, 1)
}

func TestZipfSkew(t *testing.T) {
	samples := Zipf(100000, 1000, 1.5, 7)
	counts := make([]int, 1000)
	for _, s := range samples {
		if s < 0 || s >= 1000 {
			t.Fatalf("sample %d out of range", s)
		}
		counts[s]++
	}
	// Item 0 should dominate under heavy skew.
	if counts[0] < counts[500]*10 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfMultisetTotal(t *testing.T) {
	keys := Keys(100, 2)
	ms := ZipfMultiset(keys, 5000, 1.3, 9)
	total := uint64(0)
	for _, c := range ms {
		total += c
	}
	if total != 5000 {
		t.Fatalf("multiset total %d, want 5000", total)
	}
}

func TestUniformRanges(t *testing.T) {
	qs := UniformRanges(1000, 16, 1<<30, 5)
	for _, q := range qs {
		if q.Hi-q.Lo != 15 {
			t.Fatalf("range length wrong: [%d,%d]", q.Lo, q.Hi)
		}
		if q.Hi >= 1<<30 {
			t.Fatal("range exceeds universe")
		}
	}
}

func TestCorrelatedRangesNearKeys(t *testing.T) {
	keys := SmallUniverseKeys(100, 1<<40, 11)
	keySet := map[uint64]bool{}
	for _, k := range keys {
		keySet[k] = true
	}
	qs := CorrelatedRanges(keys, 500, 8, 2, 13)
	for _, q := range qs {
		if !keySet[q.Lo-2] {
			t.Fatal("correlated query not anchored at a key")
		}
	}
}

func TestAdversarialPrefixKeysSharePrefixes(t *testing.T) {
	keys := AdversarialPrefixKeys(1000, 17)
	if len(keys) != 1000 {
		t.Fatalf("got %d keys", len(keys))
	}
	pairsSharing := 0
	for i := 0; i+1 < len(keys); i += 2 {
		if keys[i]>>2 == keys[i+1]>>2 {
			pairsSharing++
		}
	}
	if pairsSharing < 450 {
		t.Errorf("adversarial pairs sharing 62-bit prefix: %d of 500", pairsSharing)
	}
}

func TestURLsShape(t *testing.T) {
	urls := URLs(200, 23)
	re := regexp.MustCompile(`^http://[a-z0-9]+\.[a-z]+/[a-z0-9]+$`)
	for _, u := range urls {
		if !re.MatchString(u) {
			t.Fatalf("malformed URL %q", u)
		}
	}
}

func TestDNAAndReads(t *testing.T) {
	g := DNA(10000, 31)
	for _, b := range g {
		if b != 'A' && b != 'C' && b != 'G' && b != 'T' {
			t.Fatalf("bad base %c", b)
		}
	}
	reads := Reads(g, 50, 100, 0, 37)
	for _, r := range reads {
		if len(r) != 100 {
			t.Fatal("read length wrong")
		}
		// Error-free reads must appear in the genome.
		if !contains(g, r) {
			t.Fatal("error-free read not a substring of genome")
		}
	}
	// With error rate 1, reads will (almost surely) differ.
	noisy := Reads(g, 10, 100, 1.0, 41)
	diff := 0
	for _, r := range noisy {
		if !contains(g, r) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("fully-noisy reads all matched genome (unexpected)")
	}
}

func contains(g, sub []byte) bool {
	for i := 0; i+len(sub) <= len(g); i++ {
		if string(g[i:i+len(sub)]) == string(sub) {
			return true
		}
	}
	return false
}

func TestShuffleDeterministic(t *testing.T) {
	a := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b := []int{1, 2, 3, 4, 5, 6, 7, 8}
	Shuffle(a, 99)
	Shuffle(b, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic")
		}
	}
}
