package workload

import "testing"

func TestPoissonArrivals(t *testing.T) {
	const n, rate = 100000, 50000.0
	a := PoissonArrivals(n, rate, 7)
	b := PoissonArrivals(n, rate, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PoissonArrivals is not deterministic per seed")
		}
	}
	last := int64(-1)
	for i, v := range a {
		if v < last {
			t.Fatalf("arrival %d = %d precedes %d", i, v, last)
		}
		last = v
	}
	// The mean realized rate should be within a few percent of nominal.
	span := float64(a[n-1]) / 1e9
	realized := float64(n) / span
	if realized < rate*0.95 || realized > rate*1.05 {
		t.Fatalf("realized rate %.0f/s, want ~%.0f/s", realized, rate)
	}
}

func TestUniformArrivals(t *testing.T) {
	a := UniformArrivals(10, 1e6) // 1 µs apart
	for i, v := range a {
		want := int64(i+1) * 1000
		if v != want {
			t.Fatalf("arrival %d = %dns, want %dns", i, v, want)
		}
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := int64(100); i >= 1; i-- { // insert descending: 1..100
		r.Record(i)
	}
	cases := []struct {
		p    float64
		want int64
	}{{50, 50}, {99, 99}, {99.9, 100}, {100, 100}, {0, 1}}
	for _, tc := range cases {
		if got := r.Percentile(tc.p); got != tc.want {
			t.Fatalf("p%.1f = %d, want %d", tc.p, got, tc.want)
		}
	}
	if m := r.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	if got := (&LatencyRecorder{}).Percentile(99); got != 0 {
		t.Fatalf("empty recorder p99 = %d, want 0", got)
	}
}
