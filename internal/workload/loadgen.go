package workload

import (
	"math"
	"math/rand"
	"sort"
)

// This file is the load-generation side of the workload package: open-
// loop arrival schedules and latency aggregation for the service
// experiments (E21). Like everything else here it is seeded and
// deterministic.

// PoissonArrivals returns n cumulative arrival offsets in nanoseconds
// for an open-loop Poisson process with the given mean rate (events per
// second). Offset i is when request i should be injected, measured from
// the start of the run; inter-arrival gaps are exponential, so bursts
// and lulls both occur, which is exactly what a coalescing window has
// to survive.
func PoissonArrivals(n int, ratePerSec float64, seed int64) []int64 {
	if ratePerSec <= 0 {
		panic("workload: arrival rate must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	t := float64(0)
	meanGapNs := 1e9 / ratePerSec
	for i := range out {
		t += rng.ExpFloat64() * meanGapNs
		out[i] = int64(t)
	}
	return out
}

// UniformArrivals returns n cumulative arrival offsets in nanoseconds
// with constant spacing (a paced closed-form schedule, no jitter).
func UniformArrivals(n int, ratePerSec float64) []int64 {
	if ratePerSec <= 0 {
		panic("workload: arrival rate must be positive")
	}
	out := make([]int64, n)
	gapNs := 1e9 / ratePerSec
	for i := range out {
		out[i] = int64(float64(i+1) * gapNs)
	}
	return out
}

// LatencyRecorder accumulates request latencies (in nanoseconds) and
// reports percentiles. It is not concurrency-safe: each loadgen worker
// records into its own recorder, or one sink goroutine owns it.
type LatencyRecorder struct {
	samples []int64
	sorted  bool
}

// NewLatencyRecorder pre-sizes the sample buffer.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]int64, 0, capacity)}
}

// Record adds one latency sample.
func (r *LatencyRecorder) Record(ns int64) {
	r.samples = append(r.samples, ns)
	r.sorted = false
}

// Count returns the number of recorded samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Percentile returns the p-th percentile (p in [0, 100]) in
// nanoseconds, using nearest-rank on the sorted samples. Zero samples
// yield zero.
func (r *LatencyRecorder) Percentile(p float64) int64 {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Mean returns the mean latency in nanoseconds.
func (r *LatencyRecorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.samples {
		sum += float64(s)
	}
	return sum / float64(len(r.samples))
}

// RecordAll adds a batch of latency samples.
func (r *LatencyRecorder) RecordAll(ns []int64) {
	r.samples = append(r.samples, ns...)
	r.sorted = false
}
