package lsm

import (
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/workload"
)

// loadStore ingests n keys (forcing flushes and compactions) and returns
// the store plus its keys.
func loadStore(t *testing.T, opts Options, n int) (*Store, []uint64) {
	t.Helper()
	s := New(opts)
	keys := workload.Keys(n, 9)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	s.Flush()
	return s, keys
}

// verifyExact asserts the store answers every query with ground truth:
// each inserted key maps to its value, each disjoint key is absent.
func verifyExact(t *testing.T, name string, s *Store, keys []uint64) {
	t.Helper()
	for i, k := range keys {
		v, ok := s.Get(k)
		if !ok || v != uint64(i) {
			t.Fatalf("%s: Get(%d) = (%d,%v), want (%d,true)", name, k, v, ok, i)
		}
	}
	for _, k := range workload.DisjointKeys(2000, 9) {
		if _, ok := s.Get(k); ok {
			t.Fatalf("%s: phantom key %d", name, k)
		}
	}
}

// TestDegradedLookupsStayCorrect injects device faults at flush,
// compaction, and lookup time and asserts exact membership is preserved
// while the I/O counters reflect retries, replica recoveries, and
// filter-fallback probes.
func TestDegradedLookupsStayCorrect(t *testing.T) {
	const n = 20000
	base := Options{Policy: PolicyBloom, MemtableSize: 512, SizeRatio: 4}

	// Fault-free twin: the cost floor every faulty scenario must exceed.
	clean, cleanKeys := loadStore(t, base, n)
	verifyExact(t, "clean", clean, cleanKeys)
	cleanReads, cleanWrites := clean.Device().Reads(), clean.Device().Writes()

	cases := []struct {
		name string
		opts func() Options
		// faultLookups installs lookup-time faults after a clean load.
		faultLookups     func(s *Store)
		wantFailedWrites bool
		wantFailedReads  bool
		wantReplica      bool
		wantFallbacks    bool
	}{
		{
			name: "transient write faults at flush and compaction",
			opts: func() Options {
				o := base
				o.DeviceFaults = fault.NewInjector(101, fault.Transient(0.2))
				return o
			},
			wantFailedWrites: true,
		},
		{
			name: "transient read faults at lookup",
			opts: func() Options { return base },
			faultLookups: func(s *Store) {
				s.Device().Faults = fault.NewInjector(102, fault.Transient(0.3))
			},
			wantFailedReads: true,
		},
		{
			name: "permanent read faults trigger replica recovery",
			opts: func() Options { return base },
			faultLookups: func(s *Store) {
				s.Device().Faults = fault.NewInjector(103, fault.Permanent(0.1))
			},
			wantFailedReads: true,
			wantReplica:     true,
		},
		{
			name: "corrupt filter blocks force fallback probes",
			opts: func() Options {
				o := base
				o.FilterFaults = fault.NewInjector(104, fault.BitFlip(0.5))
				return o
			},
			wantFallbacks: true,
		},
		{
			name: "maplet faults degrade to probing all runs",
			opts: func() Options {
				o := base
				o.Policy = PolicyMaplet
				o.FilterFaults = fault.NewInjector(105, fault.Transient(0.5))
				return o
			},
			wantFallbacks: true,
		},
		{
			name: "combined schedule: windowed I/O faults plus filter corruption",
			opts: func() Options {
				o := base
				o.DeviceFaults = fault.NewInjector(106,
					fault.TransientBetween(0.5, 10, 5000), fault.Permanent(0.02))
				o.FilterFaults = fault.NewInjector(107, fault.BitFlip(0.2), fault.Transient(0.1))
				return o
			},
			wantFailedWrites: true,
			wantFailedReads:  true,
			wantFallbacks:    true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, keys := loadStore(t, tc.opts(), n)
			if tc.faultLookups != nil {
				tc.faultLookups(s)
			}
			verifyExact(t, tc.name, s, keys)
			d := s.Device()
			if tc.wantFailedWrites {
				if d.FailedWrites() == 0 {
					t.Error("expected failed write attempts")
				}
				if d.Writes() <= cleanWrites {
					t.Errorf("Writes = %d, want > clean %d (retries must cost I/O)", d.Writes(), cleanWrites)
				}
			}
			if tc.wantFailedReads && d.FailedReads() == 0 {
				t.Error("expected failed read attempts")
			}
			if tc.faultLookups != nil && d.Reads() <= cleanReads {
				t.Errorf("Reads = %d, want > clean %d (degraded lookups must cost more)", d.Reads(), cleanReads)
			}
			if tc.wantReplica && d.ReplicaReads() == 0 {
				t.Error("expected replica recoveries")
			}
			if tc.wantFallbacks {
				if s.FilterFallbacks() == 0 {
					t.Error("expected filter fallback probes")
				}
				if d.Reads() <= cleanReads {
					t.Errorf("Reads = %d, want > clean %d (fallback probes must cost I/O)", d.Reads(), cleanReads)
				}
			}
		})
	}
}

// denyAllRange claims every range is empty, so any entry a faulty-probe
// scan still returns must have come through the fallback path.
type denyAllRange struct{}

func (denyAllRange) MayContainRange(lo, hi uint64) bool { return false }
func (denyAllRange) SizeBits() int                      { return 0 }

// TestDegradedScanStaysCorrect: a faulted range-filter probe must not
// let the filter skip the run — the scan pays the I/O instead. With a
// filter that (wrongly) denies everything and probes that always fault,
// scans remain exact purely via the degraded path.
func TestDegradedScanStaysCorrect(t *testing.T) {
	s := New(Options{
		Policy:       PolicyBloom,
		MemtableSize: 256,
		FilterFaults: fault.NewInjector(7, fault.Transient(1.0)),
		RangeFilter:  func([]uint64) core.RangeFilter { return denyAllRange{} },
	})
	const n = 4000
	for k := uint64(0); k < n; k++ {
		s.Put(k*10, k)
	}
	s.Flush()
	got := s.Scan(0, (n-1)*10)
	if len(got) != n {
		t.Fatalf("Scan returned %d entries, want %d", len(got), n)
	}
	if s.FilterFallbacks() == 0 {
		t.Fatal("expected range-filter fallbacks")
	}
}
