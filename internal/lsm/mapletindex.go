package lsm

import (
	"io"
	"sync"

	"beyondbloom/internal/quotient"
)

// mapletIndex makes the global PolicyMaplet maplet safe for concurrent
// use: compaction mutates it (per-key remaps via Apply, best-effort
// strips via Delete) while readers probe it lock-free of the store
// mutex. Combined with the engine's ordering — maplet maintenance
// lands before the view swap publishes a new run, retired-run cleanup
// after — a reader whose view pointer is unchanged across its maplet
// read holds candidates covering every run of that view, so the maplet
// never produces a false negative mid-compaction (mapletGet detects
// the raced case and retries).
type mapletIndex struct {
	mu sync.RWMutex
	m  *quotient.Maplet
}

func newMapletIndex(m *quotient.Maplet) *mapletIndex {
	return &mapletIndex{m: m}
}

// GetAppend appends key's candidate packed values to dst (zero-alloc
// when dst has capacity).
func (mi *mapletIndex) GetAppend(dst []uint64, key uint64) []uint64 {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.GetAppend(dst, key)
}

// GetBatch resolves every key's candidates under one read lock; see
// quotient.Maplet.GetBatch for the ends/dst contract.
func (mi *mapletIndex) GetBatch(keys []uint64, ends []int32, dst []uint64) ([]int32, []uint64) {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.GetBatch(keys, ends, dst)
}

// PutExpanding associates a packed value with key, expanding the
// maplet when it is full. The put and any expansions happen under one
// critical section, so readers never observe a half-built table.
func (mi *mapletIndex) PutExpanding(key, val uint64) error {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	return mi.putExpandingLocked(key, val)
}

func (mi *mapletIndex) putExpandingLocked(key, val uint64) error {
	for {
		if err := mi.m.Put(key, val); err == nil {
			return nil
		}
		if err := mi.m.Expand(); err != nil {
			return err
		}
	}
}

// Delete removes one (key, packed value) association (best effort).
func (mi *mapletIndex) Delete(key, val uint64) error {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	return mi.m.Delete(key, val)
}

// mapletRemap is one key's compaction-time remap: delete each old
// packed entry (the key's versions in the source runs), then — when
// the key survives into the new run — insert the new one. Apply keeps
// each key's deletes and insert in one critical section, so readers
// never observe a transient state where some of a key's versions route
// and others don't (which could resurrect an older version of a
// dropped key).
type mapletRemap struct {
	key    uint64
	olds   []uint64 // packed values to delete
	newVal uint64   // packed value in the new run
	put    bool     // newVal is valid (false: the merge dropped the key)
}

// mapletApplyChunk bounds how many keys Apply remaps per write-lock
// acquisition, so a large compaction doesn't stall readers for its
// whole duration. Chunk boundaries fall only between keys.
const mapletApplyChunk = 256

// Apply performs a batch of per-key remaps. A delete that finds no
// exact entry retries with sentinel(old) — the unknown-offset shape
// that entries loaded from v1 images carry — and counts a miss only
// when both fail. Returns the miss count; a non-nil error means the
// maplet could not expand to admit an insert (the index is still
// coherent, but the caller's new run is unindexed).
func (mi *mapletIndex) Apply(ops []mapletRemap, sentinel func(uint64) uint64) (misses int, err error) {
	for len(ops) > 0 {
		n := len(ops)
		if n > mapletApplyChunk {
			n = mapletApplyChunk
		}
		mi.mu.Lock()
		for _, op := range ops[:n] {
			for _, old := range op.olds {
				if mi.m.Delete(op.key, old) == nil {
					continue
				}
				if alt := sentinel(old); alt != old && mi.m.Delete(op.key, alt) == nil {
					continue
				}
				misses++
			}
			if op.put {
				if perr := mi.putExpandingLocked(op.key, op.newVal); perr != nil {
					mi.mu.Unlock()
					return misses, perr
				}
			}
		}
		mi.mu.Unlock()
		ops = ops[n:]
	}
	return misses, nil
}

// SizeBits returns the maplet's physical footprint.
func (mi *mapletIndex) SizeBits() int {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.SizeBits()
}

// Len returns the number of stored entries.
func (mi *mapletIndex) Len() int {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.Len()
}

// WriteTo serializes the maplet under the read lock, so Save pins a
// consistent maplet image even mid-compaction.
func (mi *mapletIndex) WriteTo(w io.Writer) (int64, error) {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.WriteTo(w)
}
