package lsm

import (
	"io"
	"sync"

	"beyondbloom/internal/quotient"
)

// mapletIndex makes the global PolicyMaplet maplet safe for concurrent
// use: compaction mutates it (Put for the new run's keys, Delete for
// the retired runs') while readers Get from it lock-free of the store
// mutex. Combined with the engine's retire-after-swap ordering —
// inserts land before the view swap, deletes after — a reader whose
// view pointer is unchanged across its maplet read holds candidates
// covering every run of that view, so the maplet never produces a
// false negative mid-compaction (mapletGet detects the raced case and
// retries).
type mapletIndex struct {
	mu sync.RWMutex
	m  *quotient.Maplet
}

func newMapletIndex(m *quotient.Maplet) *mapletIndex {
	return &mapletIndex{m: m}
}

// Get returns the candidate run ids for key.
func (mi *mapletIndex) Get(key uint64) []uint64 {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.Get(key)
}

// PutExpanding associates runID with key, expanding the maplet when it
// is full. The put and any expansions happen under one critical
// section, so readers never observe a half-built table.
func (mi *mapletIndex) PutExpanding(key, runID uint64) error {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	for {
		if err := mi.m.Put(key, runID); err == nil {
			return nil
		}
		if err := mi.m.Expand(); err != nil {
			return err
		}
	}
}

// Delete removes one (key, runID) association (best effort).
func (mi *mapletIndex) Delete(key, runID uint64) error {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	return mi.m.Delete(key, runID)
}

// SizeBits returns the maplet's physical footprint.
func (mi *mapletIndex) SizeBits() int {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.SizeBits()
}

// WriteTo serializes the maplet under the read lock, so Save pins a
// consistent maplet image even mid-compaction.
func (mi *mapletIndex) WriteTo(w io.Writer) (int64, error) {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	return mi.m.WriteTo(w)
}
