package lsm

// Maplet value packing (PolicyMaplet). The global maplet is the
// store's primary index: each entry's value packs the run holding the
// key together with the key's block offset inside that run, so a hit
// costs one maplet probe plus one block read — no per-run probing and
// no whole-run binary search:
//
//	[ run id : mapletRunBits ][ block offset : s.mapOffBits ]
//
// Run ids fit mapletRunBits by construction: allocRunID recycles ids
// from a pool bounded by the live-run count (L0RunBudget plus the
// level tree), so ids never outgrow the width. The offset width is
// derived per store from its flush geometry: enough bits to address
// every entriesPerBlock-sized block of a run mapletOffsetLevels levels
// deep (MemtableSize · SizeRatio^levels entries), clamped to
// [mapletMinOffsetBits, mapletMaxOffsetBits]. The all-ones offset is
// reserved as the "offset unknown" sentinel: entries loaded from v1
// run-id-only checkpoint images, and entries of runs too deep for the
// width, carry it and resolve by whole-run binary search instead —
// graceful, never wrong. Compactions rewrite surviving entries with
// exact offsets, so sentinel entries disappear as the tree churns
// (lazy backfill).

const mapletRunBits = 16

const (
	mapletOffsetLevels  = 6
	mapletMinOffsetBits = 8
	mapletMaxOffsetBits = 20
)

// mapletOffsetBits derives the block-offset width from the store's
// flush geometry, keeping one code point spare for the sentinel.
func mapletOffsetBits(memtableSize, sizeRatio int) uint {
	entries := memtableSize
	for i := 0; i < mapletOffsetLevels && entries < 1<<40; i++ {
		entries *= sizeRatio
	}
	blocks := (entries + entriesPerBlock - 1) / entriesPerBlock
	bits := uint(mapletMinOffsetBits)
	for bits < mapletMaxOffsetBits && 1<<bits <= blocks {
		bits++
	}
	return bits
}

// mapletPack packs a run id and the entry's index into one maplet
// value; block offsets beyond the width clamp to the unknown sentinel.
func (s *Store) mapletPack(runID uint64, entryIndex int) uint64 {
	off := uint64(entryIndex) / entriesPerBlock
	if off >= s.mapOffNone {
		off = s.mapOffNone
	}
	return runID<<s.mapOffBits | off
}

// mapletValRun extracts the run id from a packed value.
func (s *Store) mapletValRun(v uint64) uint64 { return v >> s.mapOffBits }

// mapletValOffset extracts the block offset; exact is false for the
// unknown-offset sentinel, which requires a whole-run search.
func (s *Store) mapletValOffset(v uint64) (off uint64, exact bool) {
	off = v & s.mapOffNone
	return off, off != s.mapOffNone
}

// mapletSentinel rewrites a packed value's offset to the unknown
// sentinel — the shape entries loaded from v1 images take, which
// best-effort deletes must be able to target (see mapletIndex.Apply).
func (s *Store) mapletSentinel(v uint64) uint64 { return v | s.mapOffNone }
