package lsm

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/quotient"
)

// ManifestName is the store's root metadata file inside a saved
// directory. Each run stores its entries in run-<id>.bbr with its
// filter (when the policy builds one) next to it in run-<id>.bbf, so a
// run's data and its filter travel together the way an SSTable and its
// filter block do.
const ManifestName = "MANIFEST"

func runDataName(id uint64) string   { return fmt.Sprintf("run-%d.bbr", id) }
func runFilterName(id uint64) string { return fmt.Sprintf("run-%d.bbf", id) }

// writeTo serializes one run's entries as a TypeLSMRun frame.
func (r *run) writeTo(w io.Writer) (int64, error) {
	var e codec.Enc
	e.U64(r.id)
	e.U32(uint32(r.level))
	e.U64(uint64(len(r.entries)))
	for _, en := range r.entries {
		e.U64(en.Key)
		e.U64(en.Value)
		e.Bool(en.Tombstone)
	}
	return codec.WriteFrame(w, core.TypeLSMRun, e.Bytes())
}

// entryBytes is the encoded size of one Entry (key + value + tombstone).
const entryBytes = 17

// readRun decodes one TypeLSMRun frame, validating the sort invariant
// every lookup's binary search depends on.
func readRun(rd io.Reader) (*run, error) {
	payload, err := codec.ReadFrame(rd, core.TypeLSMRun)
	if err != nil {
		return nil, err
	}
	d := codec.NewDec(payload)
	id := d.U64()
	level := d.U32()
	n := d.U64()
	if d.Err() == nil && n > uint64(d.Remaining())/entryBytes {
		return nil, d.Corruptf("lsm: run %d claims %d entries in %d payload bytes", id, n, d.Remaining())
	}
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: d.U64(), Value: d.U64(), Tombstone: d.Bool()}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			return nil, d.Corruptf("lsm: run %d entries not strictly sorted at index %d", id, i)
		}
	}
	return &run{id: id, entries: entries, level: int(level)}, nil
}

// manifestRun is one run's manifest record: its position in the level
// structure plus whether a filter file accompanies the data file.
type manifestRun struct {
	id        uint64
	hasFilter bool
}

// Save persists the store's complete state into dir: the MANIFEST
// (structural options, I/O counters, memtable, level structure, free
// id pool, and — under PolicyMaplet — the global maplet), one .bbr
// data file per run, and one .bbf filter file per filtered run. Run
// files are encoded and written concurrently; they are independent
// sibling frames. Function-valued options (range-filter builders,
// fault injectors, retry policies) are not persisted — the caller
// passes them again to OpenStore.
//
// Save is safe to call concurrently with queries, writes, and a
// background compaction: it pins one view under the store mutex and
// serializes that snapshot. Frozen memtables that have not flushed yet
// are folded into the saved memtable image (newest writer wins), so no
// committed entry is lost; the reopened store re-flushes them on its
// own schedule.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Pin the snapshot: the view plus a copy of the active memtable,
	// taken under the mutex so no freeze or publish interleaves.
	s.mu.Lock()
	v := s.view.Load()
	mem := make(map[uint64]Entry, len(s.mem))
	for i := len(v.frozen) - 1; i >= 0; i-- { // oldest first
		for k, e := range v.frozen[i].entries {
			mem[k] = e
		}
	}
	for k, e := range s.mem { // the active memtable is newest
		mem[k] = e
	}
	s.mu.Unlock()
	s.idMu.Lock()
	nextID := s.nextID
	freeIDs := append([]uint64(nil), s.freeIDs...)
	s.idMu.Unlock()

	var runs []*run
	for _, level := range v.levels {
		runs = append(runs, level...)
	}
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r *run) {
			defer wg.Done()
			errs[i] = saveRunFiles(dir, r)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var e codec.Enc
	// Structural options: a reopened store must rebuild the exact same
	// level arithmetic and filter policy.
	e.U64(uint64(s.opts.MemtableSize))
	e.U64(uint64(s.opts.SizeRatio))
	e.U8(uint8(s.opts.Policy))
	e.F64(s.opts.BitsPerKey)
	e.F64(s.opts.MonkeyBaseFPR)
	e.U8(uint8(s.opts.Compaction))
	e.Bool(s.opts.RangeFilter != nil)
	// Device and filter counters: a reopened store resumes accounting
	// where the saved one stopped, so experiments comparing the two see
	// identical I/O for identical workloads.
	c := s.dev.Counters()
	e.U64(uint64(c.Reads))
	e.U64(uint64(c.Writes))
	e.U64(uint64(c.FailedReads))
	e.U64(uint64(c.FailedWrites))
	e.U64(uint64(c.SlowIOs))
	e.U64(uint64(c.ReplicaReads))
	e.U64(uint64(c.ReplicaWrites))
	e.U64(uint64(s.FilterProbes()))
	e.U64(uint64(s.FilterFallbacks()))
	// Run id allocation state.
	e.U64(nextID)
	e.U64s(freeIDs)
	// Memtable, sorted by key for a deterministic encoding.
	memKeys := make([]uint64, 0, len(mem))
	for k := range mem {
		memKeys = append(memKeys, k)
	}
	sort.Slice(memKeys, func(i, j int) bool { return memKeys[i] < memKeys[j] })
	e.U64(uint64(len(memKeys)))
	for _, k := range memKeys {
		en := mem[k]
		e.U64(en.Key)
		e.U64(en.Value)
		e.Bool(en.Tombstone)
	}
	// Level structure: run ids in order (newest first within a level).
	e.U64(uint64(len(v.levels)))
	for _, level := range v.levels {
		e.U64(uint64(len(level)))
		for _, r := range level {
			e.U64(r.id)
			e.Bool(r.filter != nil)
		}
	}
	// Global maplet (PolicyMaplet): nested frame.
	e.Bool(s.maplet != nil)
	if s.maplet != nil {
		if _, err := s.maplet.WriteTo(&e); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	if _, err := codec.WriteFrame(&buf, core.TypeLSMManifest, e.Bytes()); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), buf.Bytes(), 0o644)
}

// saveRunFiles writes one run's data file and, when present, its
// filter file.
func saveRunFiles(dir string, r *run) error {
	var buf bytes.Buffer
	if _, err := r.writeTo(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, runDataName(r.id)), buf.Bytes(), 0o644); err != nil {
		return err
	}
	if r.filter == nil {
		return nil
	}
	p, ok := r.filter.(core.Persistent)
	if !ok {
		return fmt.Errorf("lsm: run %d filter %T is not persistent", r.id, r.filter)
	}
	buf.Reset()
	if _, err := core.Save(&buf, p); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, runFilterName(r.id)), buf.Bytes(), 0o644)
}

// OpenStore reopens a store saved by Save. Structural options come
// from the manifest; any structural field the caller sets in opts must
// agree with it (a mismatched geometry would silently change level
// arithmetic). Function-valued options — the range-filter builder,
// fault injectors, the retry policy — are taken from opts, since
// functions cannot be persisted; range filters are rebuilt per run
// from the reloaded keys. Run files load concurrently. The reopened
// store's query behavior and I/O counters are identical to the saved
// store's: the same lookups cost the same reads.
func OpenStore(dir string, opts Options) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	payload, err := codec.ReadFrame(bytes.NewReader(raw), core.TypeLSMManifest)
	if err != nil {
		return nil, err
	}
	d := codec.NewDec(payload)
	memtableSize := int(d.U64())
	sizeRatio := int(d.U64())
	policy := FilterPolicy(d.U8())
	bitsPerKey := d.F64()
	monkeyBaseFPR := d.F64()
	compaction := CompactionPolicy(d.U8())
	hadRangeFilter := d.Bool()
	var counters [9]uint64
	for i := range counters {
		counters[i] = d.U64()
	}
	nextID := d.U64()
	freeIDs := d.U64s()
	memCount := d.U64()
	if d.Err() == nil && memCount > uint64(d.Remaining())/entryBytes {
		return nil, d.Corruptf("lsm: manifest claims %d memtable entries in %d bytes", memCount, d.Remaining())
	}
	memtable := make(map[uint64]Entry, memCount)
	for i := uint64(0); i < memCount; i++ {
		en := Entry{Key: d.U64(), Value: d.U64(), Tombstone: d.Bool()}
		memtable[en.Key] = en
	}
	numLevels := d.U64()
	if d.Err() == nil && numLevels > uint64(d.Remaining()) {
		return nil, d.Corruptf("lsm: manifest claims %d levels in %d bytes", numLevels, d.Remaining())
	}
	levelRuns := make([][]manifestRun, numLevels)
	totalRuns := 0
	for li := range levelRuns {
		n := d.U64()
		if d.Err() == nil && n > uint64(d.Remaining())/9 {
			return nil, d.Corruptf("lsm: manifest claims %d runs at level %d in %d bytes", n, li, d.Remaining())
		}
		levelRuns[li] = make([]manifestRun, n)
		for ri := range levelRuns[li] {
			levelRuns[li][ri] = manifestRun{id: d.U64(), hasFilter: d.Bool()}
			totalRuns++
		}
	}
	hasMaplet := d.Bool()
	var maplet *quotient.Maplet
	if d.Err() == nil && hasMaplet {
		maplet = &quotient.Maplet{}
		if _, err := maplet.ReadFrom(d); err != nil {
			return nil, err
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}

	// Structural validation: manifest values are authoritative; caller
	// overrides that disagree are configuration bugs, not corruption.
	if err := checkStructural(&opts, memtableSize, sizeRatio, policy, bitsPerKey, monkeyBaseFPR, compaction); err != nil {
		return nil, err
	}
	if (policy == PolicyMaplet) != hasMaplet {
		return nil, fmt.Errorf("%w: lsm: manifest policy %d but maplet presence %v", codec.ErrCorrupt, policy, hasMaplet)
	}
	if hadRangeFilter && opts.RangeFilter == nil {
		return nil, fmt.Errorf("lsm: store was saved with a range filter; pass Options.RangeFilter to OpenStore (builders cannot be persisted)")
	}
	if nextID >= 1<<16 {
		return nil, fmt.Errorf("%w: lsm: next run id %d out of the 16-bit id space", codec.ErrCorrupt, nextID)
	}

	opts.MemtableSize = memtableSize
	opts.SizeRatio = sizeRatio
	opts.Policy = policy
	opts.BitsPerKey = bitsPerKey
	opts.MonkeyBaseFPR = monkeyBaseFPR
	opts.Compaction = compaction
	// Build the store synchronously and install the loaded state before
	// starting any background engine, so the worker never races the load.
	wantBackground := opts.Background
	opts.Background = false
	s, err := NewStore(opts)
	if err != nil {
		return nil, err
	}
	if maplet != nil {
		s.maplet = newMapletIndex(maplet)
	}
	s.mem = memtable
	s.nextID = nextID
	s.freeIDs = freeIDs
	s.dev.reads.Store(int64(counters[0]))
	s.dev.writes.Store(int64(counters[1]))
	s.dev.failedReads.Store(int64(counters[2]))
	s.dev.failedWrites.Store(int64(counters[3]))
	s.dev.slowIOs.Store(int64(counters[4]))
	s.dev.replicaReads.Store(int64(counters[5]))
	s.dev.replicaWrite.Store(int64(counters[6]))
	s.filterProbes.Store(int64(counters[7]))
	s.filterFallbacks.Store(int64(counters[8]))

	// Load every run's files concurrently: each (data, filter) pair is
	// independent, so reopening a many-run store scales with cores.
	type slot struct {
		level int
		pos   int
		mr    manifestRun
	}
	slots := make([]slot, 0, totalRuns)
	for li, level := range levelRuns {
		for ri, mr := range level {
			slots = append(slots, slot{level: li, pos: ri, mr: mr})
		}
	}
	runs := make([]*run, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, sl := range slots {
		wg.Add(1)
		go func(i int, sl slot) {
			defer wg.Done()
			runs[i], errs[i] = loadRunFiles(dir, sl.mr, sl.level, opts.RangeFilter)
		}(i, sl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.tree = make([][]*run, numLevels)
	for i, sl := range slots {
		r := runs[i]
		s.ensureLevel(sl.level)
		s.tree[sl.level] = append(s.tree[sl.level], r)
		if _, dup := s.runByID[r.id]; dup {
			return nil, fmt.Errorf("%w: lsm: run id %d appears twice in the manifest", codec.ErrCorrupt, r.id)
		}
		s.runByID[r.id] = r
	}
	// Publish the loaded tree as the initial view, then (only now) start
	// the background engine if the caller asked for one.
	s.mu.Lock()
	s.publishLocked(nil)
	s.mu.Unlock()
	if wantBackground {
		s.startBackground()
	}
	return s, nil
}

// checkStructural rejects caller-set structural options that disagree
// with the manifest.
func checkStructural(opts *Options, memtableSize, sizeRatio int, policy FilterPolicy, bitsPerKey, monkeyBaseFPR float64, compaction CompactionPolicy) error {
	if opts.MemtableSize != 0 && opts.MemtableSize != memtableSize {
		return fmt.Errorf("lsm: MemtableSize %d disagrees with saved store's %d", opts.MemtableSize, memtableSize)
	}
	if opts.SizeRatio != 0 && opts.SizeRatio != sizeRatio {
		return fmt.Errorf("lsm: SizeRatio %d disagrees with saved store's %d", opts.SizeRatio, sizeRatio)
	}
	if opts.Policy != PolicyNone && opts.Policy != policy {
		return fmt.Errorf("lsm: Policy %d disagrees with saved store's %d", opts.Policy, policy)
	}
	if opts.BitsPerKey != 0 && opts.BitsPerKey != bitsPerKey {
		return fmt.Errorf("lsm: BitsPerKey %v disagrees with saved store's %v", opts.BitsPerKey, bitsPerKey)
	}
	if opts.MonkeyBaseFPR != 0 && opts.MonkeyBaseFPR != monkeyBaseFPR {
		return fmt.Errorf("lsm: MonkeyBaseFPR %v disagrees with saved store's %v", opts.MonkeyBaseFPR, monkeyBaseFPR)
	}
	if opts.Compaction != Leveling && opts.Compaction != compaction {
		return fmt.Errorf("lsm: Compaction %d disagrees with saved store's %d", opts.Compaction, compaction)
	}
	return nil
}

// loadRunFiles reads one run's data file, its filter file when the
// manifest promises one, and rebuilds its range filter from the
// reloaded keys when a builder is configured.
func loadRunFiles(dir string, mr manifestRun, level int, rangeBuilder RangeFilterBuilder) (*run, error) {
	raw, err := os.ReadFile(filepath.Join(dir, runDataName(mr.id)))
	if err != nil {
		return nil, fmt.Errorf("lsm: run %d: %w", mr.id, err)
	}
	r, err := readRun(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("lsm: run %d: %w", mr.id, err)
	}
	if r.id != mr.id {
		return nil, fmt.Errorf("%w: lsm: file %s holds run %d", codec.ErrCorrupt, runDataName(mr.id), r.id)
	}
	if r.level != level {
		return nil, fmt.Errorf("%w: lsm: run %d recorded at level %d but manifest places it at %d",
			codec.ErrCorrupt, r.id, r.level, level)
	}
	if mr.hasFilter {
		fraw, err := os.ReadFile(filepath.Join(dir, runFilterName(mr.id)))
		if err != nil {
			return nil, fmt.Errorf("lsm: run %d filter: %w", mr.id, err)
		}
		f, err := core.Load(bytes.NewReader(fraw))
		if err != nil {
			return nil, fmt.Errorf("lsm: run %d filter: %w", mr.id, err)
		}
		r.filter = f
	}
	if rangeBuilder != nil && len(r.entries) > 0 {
		keys := make([]uint64, len(r.entries))
		for i, e := range r.entries {
			keys[i] = e.Key
		}
		r.rangeF = rangeBuilder(keys)
	}
	return r, nil
}
