package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/wal"
)

// ManifestName is the store's root metadata file inside a saved
// directory. Each run stores its entries in run-<id>.bbr with its
// filter (when the policy builds one) next to it in run-<id>.bbf, so a
// run's data and its filter travel together the way an SSTable and its
// filter block do. Durable stores add wal-*.bbl log segments (see the
// wal package) alongside.
const ManifestName = "MANIFEST"

func runDataName(id uint64) string   { return fmt.Sprintf("run-%d.bbr", id) }
func runFilterName(id uint64) string { return fmt.Sprintf("run-%d.bbf", id) }

// writeTo serializes one run's entries as a TypeLSMRun frame.
func (r *run) writeTo(w io.Writer) (int64, error) {
	var e codec.Enc
	e.U64(r.id)
	e.U32(uint32(r.level))
	e.U64(uint64(len(r.entries)))
	for _, en := range r.entries {
		e.U64(en.Key)
		e.U64(en.Value)
		e.Bool(en.Tombstone)
	}
	return codec.WriteFrame(w, core.TypeLSMRun, e.Bytes())
}

// entryBytes is the encoded size of one Entry (key + value + tombstone).
const entryBytes = 17

// testLegacyMapletImage, when set (tests only), substitutes a bare v1
// KindMaplet frame for the versioned image so the v1→v2 load path can
// be exercised end to end.
var testLegacyMapletImage *quotient.Maplet

// writeMapletImage frames the global maplet image. The current layout
// is KindMapletV2: the packed-value geometry (run-id and block-offset
// widths) followed by the maplet frame itself. v1 images — a bare
// KindMaplet frame whose values are run ids only — are still read (see
// readMapletImage) but never written.
func (s *Store) writeMapletImage(w io.Writer) error {
	if testLegacyMapletImage != nil {
		_, err := testLegacyMapletImage.WriteTo(w)
		return err
	}
	var e codec.Enc
	e.U8(uint8(mapletRunBits))
	e.U8(uint8(s.mapOffBits))
	if _, err := s.maplet.WriteTo(&e); err != nil {
		return err
	}
	_, err := codec.WriteFrame(w, codec.KindMapletV2, e.Bytes())
	return err
}

// readMapletImage decodes a maplet image written by writeMapletImage
// or by a pre-(run,offset) release, returning the maplet and the
// block-offset width its packed values use. A v2 frame carries its
// geometry. A v1 frame holds run-id-only values, which are widened in
// place to the packed layout with every offset set to the unknown
// sentinel — those entries resolve by whole-run search until
// compactions rewrite them with exact offsets (lazy backfill).
func readMapletImage(d *codec.Dec, memtableSize, sizeRatio int) (*quotient.Maplet, uint, error) {
	kind, raw, err := codec.ReadRaw(d)
	if err != nil {
		return nil, 0, err
	}
	switch kind {
	case codec.KindMaplet: // v1: run-id-only values
		m := &quotient.Maplet{}
		if _, err := m.ReadFrom(bytes.NewReader(raw)); err != nil {
			return nil, 0, err
		}
		if m.ValueBits() != mapletRunBits {
			return nil, 0, fmt.Errorf("%w: lsm: v1 maplet image value width %d, want %d",
				codec.ErrCorrupt, m.ValueBits(), mapletRunBits)
		}
		offBits := mapletOffsetBits(memtableSize, sizeRatio)
		sentinel := uint64(1)<<offBits - 1
		wide, err := m.RemapValues(mapletRunBits+offBits, func(v uint64) uint64 {
			return v<<offBits | sentinel
		})
		if err != nil {
			return nil, 0, err
		}
		return wide, offBits, nil
	case codec.KindMapletV2:
		payload, err := codec.ReadFrame(bytes.NewReader(raw), codec.KindMapletV2)
		if err != nil {
			return nil, 0, err
		}
		id := codec.NewDec(payload)
		runBits := uint(id.U8())
		offBits := uint(id.U8())
		if runBits != mapletRunBits || offBits < mapletMinOffsetBits || offBits > mapletMaxOffsetBits {
			return nil, 0, fmt.Errorf("%w: lsm: maplet image geometry run=%d off=%d out of range",
				codec.ErrCorrupt, runBits, offBits)
		}
		m := &quotient.Maplet{}
		if _, err := m.ReadFrom(id); err != nil {
			return nil, 0, err
		}
		if err := id.Finish(); err != nil {
			return nil, 0, err
		}
		if m.ValueBits() != runBits+offBits {
			return nil, 0, fmt.Errorf("%w: lsm: maplet value width %d disagrees with geometry %d+%d",
				codec.ErrCorrupt, m.ValueBits(), runBits, offBits)
		}
		return m, offBits, nil
	default:
		return nil, 0, fmt.Errorf("%w: lsm: maplet image frame kind %d, want %d (v1) or %d (v2)",
			codec.ErrKind, kind, codec.KindMaplet, codec.KindMapletV2)
	}
}

// readRun decodes one TypeLSMRun frame, validating the sort invariant
// every lookup's binary search depends on.
func readRun(rd io.Reader) (*run, error) {
	payload, err := codec.ReadFrame(rd, core.TypeLSMRun)
	if err != nil {
		return nil, err
	}
	d := codec.NewDec(payload)
	id := d.U64()
	level := d.U32()
	n := d.U64()
	if d.Err() == nil && n > uint64(d.Remaining())/entryBytes {
		return nil, d.Corruptf("lsm: run %d claims %d entries in %d payload bytes", id, n, d.Remaining())
	}
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: d.U64(), Value: d.U64(), Tombstone: d.Bool()}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			return nil, d.Corruptf("lsm: run %d entries not strictly sorted at index %d", id, i)
		}
	}
	return &run{id: id, entries: entries, level: int(level)}, nil
}

// manifestRun is one run's manifest record: its position in the level
// structure plus whether a filter file accompanies the data file.
type manifestRun struct {
	id        uint64
	hasFilter bool
}

// writeFileAtomic writes data to path crash-atomically: the bytes land
// in a temp file, are fsynced, and reach the final name by rename. A
// crash leaves either the old file or the new one, never a torn mix.
// The caller fsyncs the directory once after its batch of renames to
// make the names themselves durable.
func writeFileAtomic(fsys fault.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// pinSnapshot captures a consistent persistence image under the store
// mutex: the current view, the folded memtable (frozen memtables plus
// the active one, newest writer winning), and the last assigned log
// sequence number. Every operation with an LSN at or below the
// returned watermark is contained in (view, mem).
func (s *Store) pinSnapshot() (v *view, mem map[uint64]Entry, watermark uint64) {
	s.mu.Lock()
	v = s.view.Load()
	mem = make(map[uint64]Entry, len(s.mem))
	for i := len(v.frozen) - 1; i >= 0; i-- { // oldest first
		for k, e := range v.frozen[i].entries {
			mem[k] = e
		}
	}
	for k, e := range s.mem { // the active memtable is newest
		mem[k] = e
	}
	watermark = s.lastLSN
	s.mu.Unlock()
	return v, mem, watermark
}

// Save persists the store's complete state into dir: the MANIFEST
// (structural options, I/O counters, memtable, level structure, free
// id pool, and — under PolicyMaplet — the global maplet), one .bbr
// data file per run, and one .bbf filter file per filtered run. Every
// file is written crash-atomically (temp + fsync + rename + directory
// fsync), so a crash mid-Save can never corrupt an existing snapshot.
// Run files are encoded and written concurrently; they are independent
// sibling frames. Function-valued options (range-filter builders,
// fault injectors, retry policies) are not persisted — the caller
// passes them again to OpenStore.
//
// On a durable store, saving into the store's own directory is a
// checkpoint (see Checkpoint); saving elsewhere writes a detached
// snapshot that does not include the write-ahead log.
//
// Save is safe to call concurrently with queries, writes, and a
// background compaction: it pins one view under the store mutex and
// serializes that snapshot. Frozen memtables that have not flushed yet
// are folded into the saved memtable image (newest writer wins), so no
// committed entry is lost; the reopened store re-flushes them on its
// own schedule.
func (s *Store) Save(dir string) error {
	if s.wal != nil && filepath.Clean(dir) == filepath.Clean(s.dir) {
		return s.Checkpoint()
	}
	fsys := s.fs
	if fsys == nil {
		fsys = fault.Disk
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return err
	}
	v, mem, _ := s.pinSnapshot()
	s.idMu.Lock()
	nextID := s.nextID
	freeIDs := append([]uint64(nil), s.freeIDs...)
	s.idMu.Unlock()

	var runs []*run
	for _, level := range v.levels {
		runs = append(runs, level...)
	}
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r *run) {
			defer wg.Done()
			errs[i] = saveRunFiles(fsys, dir, r)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Run-file names durable before the manifest that references them.
	if len(runs) > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	}
	manifest, err := s.encodeManifest(v, mem, nextID, freeIDs, false, 0)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(fsys, filepath.Join(dir, ManifestName), manifest); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// encodeManifest serializes the manifest frame for a pinned snapshot.
// durable marks WAL checkpoints: watermark is then the LSN through
// which (view, mem) is complete, so replay applies only newer records.
// The frame kind is TypeLSMManifestV3: the durability fields extended
// the v1 layout mid-stream (v2), and the growable-run-filter flag
// extended v2 (v3) — each a distinct kind rather than a silent
// relayout. OpenStore still decodes v1 and v2 manifests (their missing
// fields are false/zero by construction), and an image from a format
// newer than all three fails with a clear kind error instead of a
// misparse.
func (s *Store) encodeManifest(v *view, mem map[uint64]Entry, nextID uint64, freeIDs []uint64, durable bool, watermark uint64) ([]byte, error) {
	var e codec.Enc
	// Structural options: a reopened store must rebuild the exact same
	// level arithmetic and filter policy.
	e.U64(uint64(s.opts.MemtableSize))
	e.U64(uint64(s.opts.SizeRatio))
	e.U8(uint8(s.opts.Policy))
	e.F64(s.opts.BitsPerKey)
	e.F64(s.opts.MonkeyBaseFPR)
	e.U8(uint8(s.opts.Compaction))
	e.Bool(s.opts.RangeFilter != nil)
	e.Bool(s.opts.GrowableFilters)
	// Device and filter counters: a reopened store resumes accounting
	// where the saved one stopped, so experiments comparing the two see
	// identical I/O for identical workloads.
	c := s.dev.Counters()
	e.U64(uint64(c.Reads))
	e.U64(uint64(c.Writes))
	e.U64(uint64(c.FailedReads))
	e.U64(uint64(c.FailedWrites))
	e.U64(uint64(c.SlowIOs))
	e.U64(uint64(c.ReplicaReads))
	e.U64(uint64(c.ReplicaWrites))
	e.U64(uint64(s.FilterProbes()))
	e.U64(uint64(s.FilterFallbacks()))
	// Run id allocation state.
	e.U64(nextID)
	e.U64s(freeIDs)
	// Durability: whether this manifest is a WAL checkpoint, and the
	// replay watermark.
	e.Bool(durable)
	e.U64(watermark)
	// Memtable, sorted by key for a deterministic encoding.
	memKeys := make([]uint64, 0, len(mem))
	for k := range mem {
		memKeys = append(memKeys, k)
	}
	sort.Slice(memKeys, func(i, j int) bool { return memKeys[i] < memKeys[j] })
	e.U64(uint64(len(memKeys)))
	for _, k := range memKeys {
		en := mem[k]
		e.U64(en.Key)
		e.U64(en.Value)
		e.Bool(en.Tombstone)
	}
	// Level structure: run ids in order (newest first within a level).
	e.U64(uint64(len(v.levels)))
	for _, level := range v.levels {
		e.U64(uint64(len(level)))
		for _, r := range level {
			e.U64(r.id)
			e.Bool(r.filter != nil)
		}
	}
	// Global maplet (PolicyMaplet): nested frame, versioned
	// independently of the manifest (see writeMapletImage).
	e.Bool(s.maplet != nil)
	if s.maplet != nil {
		if err := s.writeMapletImage(&e); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if _, err := codec.WriteFrame(&buf, core.TypeLSMManifestV3, e.Bytes()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// saveRunFiles writes one run's data file and, when present, its
// filter file, each crash-atomically.
func saveRunFiles(fsys fault.FS, dir string, r *run) error {
	var buf bytes.Buffer
	if _, err := r.writeTo(&buf); err != nil {
		return err
	}
	if err := writeFileAtomic(fsys, filepath.Join(dir, runDataName(r.id)), buf.Bytes()); err != nil {
		return err
	}
	if r.filter == nil {
		return nil
	}
	p, ok := r.filter.(core.Persistent)
	if !ok {
		return fmt.Errorf("lsm: run %d filter %T is not persistent", r.id, r.filter)
	}
	buf.Reset()
	if _, err := core.Save(&buf, p); err != nil {
		return err
	}
	return writeFileAtomic(fsys, filepath.Join(dir, runFilterName(r.id)), buf.Bytes())
}

// Checkpoint forces a durable checkpoint of the store into its own
// directory: unpersisted run files and a fresh manifest land
// crash-atomically, then the WAL segments the manifest covers retire.
// Durable stores checkpoint automatically at every flush; an explicit
// call bounds replay work before a planned shutdown. It fails on a
// snapshot-only store (use Save).
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("lsm: Checkpoint requires a durable store (OpenStore with Options.Durability)")
	}
	return s.checkpoint()
}

// checkpoint writes one full-consistency checkpoint. The protocol, in
// crash-ordering terms:
//
//  1. Pin (view, folded memtable, watermark) under mu — complete
//     through the watermark LSN by construction.
//  2. Write run files the directory does not hold yet (temp + fsync +
//     rename), then fsync the directory. Runs are immutable and ids
//     recycle only after step 5 deletes stale files, so a persisted
//     file never goes stale.
//  3. Write the manifest the same way and fsync the directory. This
//     rename is the commit point: before it the old checkpoint + WAL
//     recover the store, after it the new one does.
//  4. Advance the replay watermark.
//  5. Garbage-collect: delete run files the new manifest no longer
//     references and WAL segments at or below the watermark. A crash
//     here only leaves debris for OpenStore's sweep.
//  6. Recycle retired run ids — but only those the committed manifest
//     does not reference. A run retired by a concurrent flush or
//     compaction after step 1's pin is still named by this manifest
//     (its file must survive, its id must stay out of circulation);
//     it stays on the deferred list until a later checkpoint commits
//     without it.
//
// Serialized by ckptMu; the snapshot pin is the only step that takes
// mu, so checkpoints run concurrently with writers and readers.
func (s *Store) checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	v, mem, watermark := s.pinSnapshot()
	s.idMu.Lock()
	nextID := s.nextID
	freeIDs := append([]uint64(nil), s.freeIDs...)
	s.idMu.Unlock()

	refs := make(map[uint64]*run)
	ids := make([]uint64, 0, 16)
	for _, level := range v.levels {
		for _, r := range level {
			refs[r.id] = r
			ids = append(ids, r.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) // deterministic I/O order
	wrote := false
	for _, id := range ids {
		if _, ok := s.persisted[id]; ok {
			continue
		}
		if err := saveRunFiles(s.fs, s.dir, refs[id]); err != nil {
			return err
		}
		wrote = true
	}
	if wrote {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
	}
	manifest, err := s.encodeManifest(v, mem, nextID, freeIDs, true, watermark)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.fs, filepath.Join(s.dir, ManifestName), manifest); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	// Commit point passed: bookkeeping, then garbage collection.
	for _, id := range ids {
		s.persisted[id] = refs[id].filter != nil
	}
	if watermark > s.flushedLSN {
		s.flushedLSN = watermark
	}
	stale := make([]uint64, 0, 4)
	for id := range s.persisted {
		if _, ok := refs[id]; !ok {
			stale = append(stale, id)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, id := range stale {
		if err := s.fs.Remove(filepath.Join(s.dir, runDataName(id))); err != nil {
			return err
		}
		if s.persisted[id] {
			if err := s.fs.Remove(filepath.Join(s.dir, runFilterName(id))); err != nil {
				return err
			}
		}
		delete(s.persisted, id)
	}
	if len(stale) > 0 {
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
	}
	if err := s.wal.Retire(s.flushedLSN); err != nil {
		return err
	}
	// Step 6: recycle retired runs the committed manifest no longer
	// references — their files are gone (deleted above, or never
	// written). Runs retired after the pin may still be referenced by
	// this very manifest, so they stay deferred.
	s.retMu.Lock()
	kept := s.retired[:0]
	var recyclable []*run
	for _, old := range s.retired {
		if _, referenced := refs[old.id]; referenced {
			kept = append(kept, old)
		} else {
			recyclable = append(recyclable, old)
		}
	}
	s.retired = kept
	s.retMu.Unlock()
	for _, old := range recyclable {
		s.recycleRun(old)
	}
	return nil
}

// OpenStore reopens a store saved by Save (or maintained by durable
// checkpoints). Structural options come from the manifest; any
// structural field the caller sets in opts must agree with it (a
// mismatched geometry would silently change level arithmetic).
// Function-valued options — the range-filter builder, fault injectors,
// the retry policy — are taken from opts, since functions cannot be
// persisted; range filters are rebuilt per run from the reloaded keys.
// Run files load concurrently. The reopened store's query behavior and
// I/O counters are identical to the saved store's: the same lookups
// cost the same reads.
//
// With Options.Durability set, OpenStore also recovers the write-ahead
// log: surviving segments replay into the memtable (torn tails are
// repaired, crash debris is swept), and an absent manifest bootstraps
// a fresh durable store in dir. A directory whose manifest came from a
// durable checkpoint refuses to open with DurabilityNone — silently
// ignoring its log would drop acknowledged writes.
func OpenStore(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = fault.Disk
	}
	want := opts.Durability
	raw, err := fsys.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if want != DurabilityNone && errors.Is(err, iofs.ErrNotExist) {
			return bootstrapDurable(dir, opts, fsys)
		}
		return nil, err
	}
	// The manifest kind doubles as the layout version: v1 (pre-WAL
	// releases) lacks the durability fields, v2 carries them, v3 adds
	// the growable-run-filter flag. Anything else is a foreign or future
	// format and is rejected loudly.
	kind, _, err := codec.PeekKind(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if kind != core.TypeLSMManifest && kind != core.TypeLSMManifestV2 && kind != core.TypeLSMManifestV3 {
		return nil, fmt.Errorf("%w: lsm: manifest frame kind %d, want %d (v1), %d (v2) or %d (v3)",
			codec.ErrKind, kind, core.TypeLSMManifest, core.TypeLSMManifestV2, core.TypeLSMManifestV3)
	}
	payload, err := codec.ReadFrame(bytes.NewReader(raw), kind)
	if err != nil {
		return nil, err
	}
	d := codec.NewDec(payload)
	memtableSize := int(d.U64())
	sizeRatio := int(d.U64())
	policy := FilterPolicy(d.U8())
	bitsPerKey := d.F64()
	monkeyBaseFPR := d.F64()
	compaction := CompactionPolicy(d.U8())
	hadRangeFilter := d.Bool()
	// The growable-filter flag exists only in the v3 layout; older
	// manifests predate growable run filters, so it is false there.
	growable := false
	if kind == core.TypeLSMManifestV3 {
		growable = d.Bool()
	}
	var counters [9]uint64
	for i := range counters {
		counters[i] = d.U64()
	}
	nextID := d.U64()
	freeIDs := d.U64s()
	// The durability fields exist only in the v2 layout; a v1 manifest
	// is by definition a snapshot-only image.
	durable, watermark := false, uint64(0)
	if kind != core.TypeLSMManifest {
		durable = d.Bool()
		watermark = d.U64()
	}
	memCount := d.U64()
	if d.Err() == nil && memCount > uint64(d.Remaining())/entryBytes {
		return nil, d.Corruptf("lsm: manifest claims %d memtable entries in %d bytes", memCount, d.Remaining())
	}
	memtable := make(map[uint64]Entry, memCount)
	for i := uint64(0); i < memCount; i++ {
		en := Entry{Key: d.U64(), Value: d.U64(), Tombstone: d.Bool()}
		memtable[en.Key] = en
	}
	numLevels := d.U64()
	if d.Err() == nil && numLevels > uint64(d.Remaining()) {
		return nil, d.Corruptf("lsm: manifest claims %d levels in %d bytes", numLevels, d.Remaining())
	}
	levelRuns := make([][]manifestRun, numLevels)
	totalRuns := 0
	for li := range levelRuns {
		n := d.U64()
		if d.Err() == nil && n > uint64(d.Remaining())/9 {
			return nil, d.Corruptf("lsm: manifest claims %d runs at level %d in %d bytes", n, li, d.Remaining())
		}
		levelRuns[li] = make([]manifestRun, n)
		for ri := range levelRuns[li] {
			levelRuns[li][ri] = manifestRun{id: d.U64(), hasFilter: d.Bool()}
			totalRuns++
		}
	}
	hasMaplet := d.Bool()
	var maplet *quotient.Maplet
	var mapOffBits uint
	if d.Err() == nil && hasMaplet {
		maplet, mapOffBits, err = readMapletImage(d, memtableSize, sizeRatio)
		if err != nil {
			return nil, err
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}

	// Structural validation: manifest values are authoritative; caller
	// overrides that disagree are configuration bugs, not corruption.
	if err := checkStructural(&opts, memtableSize, sizeRatio, policy, bitsPerKey, monkeyBaseFPR, compaction, growable); err != nil {
		return nil, err
	}
	if (policy == PolicyMaplet) != hasMaplet {
		return nil, fmt.Errorf("%w: lsm: manifest policy %d but maplet presence %v", codec.ErrCorrupt, policy, hasMaplet)
	}
	if hadRangeFilter && opts.RangeFilter == nil {
		return nil, fmt.Errorf("lsm: store was saved with a range filter; pass Options.RangeFilter to OpenStore (builders cannot be persisted)")
	}
	if nextID >= 1<<16 {
		return nil, fmt.Errorf("%w: lsm: next run id %d out of the 16-bit id space", codec.ErrCorrupt, nextID)
	}
	if durable && want == DurabilityNone {
		return nil, fmt.Errorf("lsm: %s was written by a durable store; set Options.Durability to open it (its write-ahead log would be silently dropped otherwise)", dir)
	}

	opts.MemtableSize = memtableSize
	opts.SizeRatio = sizeRatio
	opts.Policy = policy
	opts.BitsPerKey = bitsPerKey
	opts.MonkeyBaseFPR = monkeyBaseFPR
	opts.Compaction = compaction
	opts.GrowableFilters = growable
	// Build the store synchronously and install the loaded state before
	// starting any background engine, so the worker never races the load.
	wantBackground := opts.Background
	opts.Background = false
	opts.Durability = DurabilityNone
	s, err := NewStore(opts)
	if err != nil {
		return nil, err
	}
	if maplet != nil {
		s.maplet = newMapletIndex(maplet)
		// The image's offset geometry is authoritative — it must match
		// the packed values it carries, not what NewStore re-derived.
		s.mapOffBits = mapOffBits
		s.mapOffNone = 1<<mapOffBits - 1
	}
	s.mem = memtable
	s.nextID = nextID
	s.freeIDs = freeIDs
	s.dev.reads.Store(int64(counters[0]))
	s.dev.writes.Store(int64(counters[1]))
	s.dev.failedReads.Store(int64(counters[2]))
	s.dev.failedWrites.Store(int64(counters[3]))
	s.dev.slowIOs.Store(int64(counters[4]))
	s.dev.replicaReads.Store(int64(counters[5]))
	s.dev.replicaWrite.Store(int64(counters[6]))
	s.filterProbes.Store(int64(counters[7]))
	s.filterFallbacks.Store(int64(counters[8]))

	// Load every run's files concurrently: each (data, filter) pair is
	// independent, so reopening a many-run store scales with cores.
	type slot struct {
		level int
		pos   int
		mr    manifestRun
	}
	slots := make([]slot, 0, totalRuns)
	for li, level := range levelRuns {
		for ri, mr := range level {
			slots = append(slots, slot{level: li, pos: ri, mr: mr})
		}
	}
	runs := make([]*run, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, sl := range slots {
		wg.Add(1)
		go func(i int, sl slot) {
			defer wg.Done()
			runs[i], errs[i] = loadRunFiles(fsys, dir, sl.mr, sl.level, opts.RangeFilter)
		}(i, sl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.tree = make([][]*run, numLevels)
	for i, sl := range slots {
		r := runs[i]
		s.ensureLevel(sl.level)
		s.tree[sl.level] = append(s.tree[sl.level], r)
		if _, dup := s.runByID[r.id]; dup {
			return nil, fmt.Errorf("%w: lsm: run id %d appears twice in the manifest", codec.ErrCorrupt, r.id)
		}
		s.runByID[r.id] = r
	}
	// Publish the loaded tree as the initial view, then recover the log
	// and (only now) start the background engine if the caller asked for
	// one.
	s.mu.Lock()
	s.publishLocked(nil)
	s.mu.Unlock()
	if want != DurabilityNone {
		s.persisted = make(map[uint64]bool, totalRuns)
		for _, level := range levelRuns {
			for _, mr := range level {
				s.persisted[mr.id] = mr.hasFilter
			}
		}
		if err := s.attachWAL(dir, fsys, want, watermark, durable); err != nil {
			return nil, err
		}
	}
	if wantBackground {
		s.startBackground()
	}
	return s, nil
}

// bootstrapDurable starts a fresh durable store in an empty (or
// crash-interrupted pre-first-checkpoint) directory: no manifest yet,
// but any surviving WAL segments replay — a crash before the first
// checkpoint must not lose acknowledged writes.
func bootstrapDurable(dir string, opts Options, fsys fault.FS) (*Store, error) {
	want := opts.Durability
	wantBackground := opts.Background
	opts.Durability = DurabilityNone
	opts.Background = false
	s, err := NewStore(opts)
	if err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	if err := s.attachWAL(dir, fsys, want, 0, true); err != nil {
		return nil, err
	}
	if wantBackground {
		s.startBackground()
	}
	return s, nil
}

// attachWAL turns a freshly constructed store durable: it sweeps crash
// debris out of dir, opens the log (repairing any torn tail), and
// replays every record above the checkpoint watermark into the
// memtable. hadWAL distinguishes directories where segments are
// legitimate from snapshot-only directories where they would be
// ambiguous.
func (s *Store) attachWAL(dir string, fsys fault.FS, want Durability, watermark uint64, hadWAL bool) error {
	s.dir, s.fs = dir, fsys
	s.opts.Durability = want
	s.deferRetire = true
	if s.persisted == nil {
		s.persisted = make(map[uint64]bool)
	}
	s.flushedLSN = watermark
	// Sweep crash debris: temp files and run files no checkpoint
	// references (a crash between a checkpoint's manifest commit and its
	// garbage collection leaves both; volatile removes can resurrect).
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range names {
		if name == ManifestName {
			continue
		}
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".bbl") {
			if !hadWAL {
				return fmt.Errorf("lsm: %s holds WAL segments but its manifest is not a durable checkpoint; refusing to guess which is authoritative", dir)
			}
			continue
		}
		drop := strings.HasSuffix(name, ".tmp")
		if !drop {
			var id uint64
			if n, _ := fmt.Sscanf(name, "run-%d.bbr", &id); n == 1 && strings.HasSuffix(name, ".bbr") {
				_, keep := s.persisted[id]
				drop = !keep
			} else if n, _ := fmt.Sscanf(name, "run-%d.bbf", &id); n == 1 && strings.HasSuffix(name, ".bbf") {
				_, keep := s.persisted[id]
				drop = !keep
			}
		}
		if drop {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	}
	wl, err := wal.Open(dir, wal.Options{
		FS:           fsys,
		SegmentBytes: s.opts.WALSegmentBytes,
		Mode:         walMode(want),
		FloorLSN:     watermark,
	}, func(lsn uint64, op wal.Op) {
		// Open replays only records above the watermark (FloorLSN);
		// everything else is folded into the checkpoint image already.
		s.mem[op.Key] = Entry{Key: op.Key, Value: op.Value, Tombstone: op.Tombstone}
	})
	if err != nil {
		return err
	}
	s.wal = wl
	s.lastLSN = wl.LastLSN()
	return nil
}

// WAL exposes the store's write-ahead log (nil on snapshot-only
// stores) for stats and diagnostics.
func (s *Store) WAL() *wal.Log { return s.wal }

// checkStructural rejects caller-set structural options that disagree
// with the manifest.
func checkStructural(opts *Options, memtableSize, sizeRatio int, policy FilterPolicy, bitsPerKey, monkeyBaseFPR float64, compaction CompactionPolicy, growable bool) error {
	if opts.MemtableSize != 0 && opts.MemtableSize != memtableSize {
		return fmt.Errorf("lsm: MemtableSize %d disagrees with saved store's %d", opts.MemtableSize, memtableSize)
	}
	if opts.SizeRatio != 0 && opts.SizeRatio != sizeRatio {
		return fmt.Errorf("lsm: SizeRatio %d disagrees with saved store's %d", opts.SizeRatio, sizeRatio)
	}
	if opts.Policy != PolicyNone && opts.Policy != policy {
		return fmt.Errorf("lsm: Policy %d disagrees with saved store's %d", opts.Policy, policy)
	}
	if opts.BitsPerKey != 0 && opts.BitsPerKey != bitsPerKey {
		return fmt.Errorf("lsm: BitsPerKey %v disagrees with saved store's %v", opts.BitsPerKey, bitsPerKey)
	}
	if opts.MonkeyBaseFPR != 0 && opts.MonkeyBaseFPR != monkeyBaseFPR {
		return fmt.Errorf("lsm: MonkeyBaseFPR %v disagrees with saved store's %v", opts.MonkeyBaseFPR, monkeyBaseFPR)
	}
	if opts.Compaction != Leveling && opts.Compaction != compaction {
		return fmt.Errorf("lsm: Compaction %d disagrees with saved store's %d", opts.Compaction, compaction)
	}
	// A bool override can only be checked in the set direction: a caller
	// asking for growable filters on a fixed-filter store is a
	// configuration bug (the saved filter files would not match), while
	// false just means "use the manifest's value".
	if opts.GrowableFilters && !growable {
		return fmt.Errorf("lsm: GrowableFilters set but the saved store used fixed-capacity run filters")
	}
	return nil
}

// loadRunFiles reads one run's data file, its filter file when the
// manifest promises one, and rebuilds its range filter from the
// reloaded keys when a builder is configured.
func loadRunFiles(fsys fault.FS, dir string, mr manifestRun, level int, rangeBuilder RangeFilterBuilder) (*run, error) {
	raw, err := fsys.ReadFile(filepath.Join(dir, runDataName(mr.id)))
	if err != nil {
		return nil, fmt.Errorf("lsm: run %d: %w", mr.id, err)
	}
	r, err := readRun(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("lsm: run %d: %w", mr.id, err)
	}
	if r.id != mr.id {
		return nil, fmt.Errorf("%w: lsm: file %s holds run %d", codec.ErrCorrupt, runDataName(mr.id), r.id)
	}
	if r.level != level {
		return nil, fmt.Errorf("%w: lsm: run %d recorded at level %d but manifest places it at %d",
			codec.ErrCorrupt, r.id, r.level, level)
	}
	if mr.hasFilter {
		fraw, err := fsys.ReadFile(filepath.Join(dir, runFilterName(mr.id)))
		if err != nil {
			return nil, fmt.Errorf("lsm: run %d filter: %w", mr.id, err)
		}
		f, err := core.Load(bytes.NewReader(fraw))
		if err != nil {
			return nil, fmt.Errorf("lsm: run %d filter: %w", mr.id, err)
		}
		r.filter = f
	}
	if rangeBuilder != nil && len(r.entries) > 0 {
		keys := make([]uint64, len(r.entries))
		for i, e := range r.entries {
			keys[i] = e.Key
		}
		r.rangeF = rangeBuilder(keys)
	}
	return r, nil
}
