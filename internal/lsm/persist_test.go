package lsm

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/surf"
	"beyondbloom/internal/workload"
)

// reopen saves s into a fresh directory and opens it again.
func reopen(t *testing.T, s *Store, opts Options) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return got
}

// TestReopenIdenticalAnswersAndIO is the durability acceptance check:
// a reopened store must give the same Get/GetBatch answers as the
// original AND pay the same I/O doing it — counters are persisted and
// every reloaded filter answers bit-identically, so the two stores'
// Device counters stay equal through an identical workload.
func TestReopenIdenticalAnswersAndIO(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"bloom-leveling", Options{Policy: PolicyBloom, MemtableSize: 256}},
		{"monkey-tiering", Options{Policy: PolicyMonkey, MemtableSize: 256, Compaction: Tiering}},
		{"maplet", Options{Policy: PolicyMaplet, MemtableSize: 256}},
		{"none-lazy", Options{Policy: PolicyNone, MemtableSize: 256, Compaction: LazyLeveling}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.opts)
			keys := fillStore(t, s, 20000, 7)
			for _, k := range keys[:500] {
				s.Delete(k)
			}
			// Leave the memtable partially full so its persistence is
			// exercised too.
			s.Put(123456789, 42)

			got := reopen(t, s, Options{RangeFilter: tc.opts.RangeFilter})
			if got.Levels() != s.Levels() || got.Runs() != s.Runs() {
				t.Fatalf("shape: got %d levels/%d runs, want %d/%d", got.Levels(), got.Runs(), s.Levels(), s.Runs())
			}
			if got.Device().Reads() != s.Device().Reads() || got.Device().Writes() != s.Device().Writes() {
				t.Fatalf("restored counters: got R=%d W=%d, want R=%d W=%d",
					got.Device().Reads(), got.Device().Writes(), s.Device().Reads(), s.Device().Writes())
			}
			if got.FilterMemoryBits() != s.FilterMemoryBits() {
				t.Fatalf("FilterMemoryBits: got %d, want %d", got.FilterMemoryBits(), s.FilterMemoryBits())
			}

			// Identical workload on both stores: answers and the exact I/O
			// trajectory must match.
			probe := append(append([]uint64{}, keys...), workload.DisjointKeys(5000, 7)...)
			for _, k := range probe {
				v1, ok1 := s.Get(k)
				v2, ok2 := got.Get(k)
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("Get(%d): original (%d,%v), reopened (%d,%v)", k, v1, ok1, v2, ok2)
				}
			}
			if got.Device().Reads() != s.Device().Reads() {
				t.Fatalf("scalar lookups diverged: %d reads vs %d", got.Device().Reads(), s.Device().Reads())
			}
			if got.FilterProbes() != s.FilterProbes() {
				t.Fatalf("filter probes diverged: %d vs %d", got.FilterProbes(), s.FilterProbes())
			}

			v1 := make([]uint64, len(probe))
			f1 := make([]bool, len(probe))
			v2 := make([]uint64, len(probe))
			f2 := make([]bool, len(probe))
			s.GetBatch(probe, v1, f1)
			got.GetBatch(probe, v2, f2)
			for i := range probe {
				if v1[i] != v2[i] || f1[i] != f2[i] {
					t.Fatalf("GetBatch(%d): original (%d,%v), reopened (%d,%v)", probe[i], v1[i], f1[i], v2[i], f2[i])
				}
			}
			if got.Device().Reads() != s.Device().Reads() {
				t.Fatalf("batched lookups diverged: %d reads vs %d", got.Device().Reads(), s.Device().Reads())
			}

			// The reopened store keeps working as a store: new writes flush
			// and compact with the restored id pool and level arithmetic.
			for i, k := range workload.Keys(5000, 11) {
				got.Put(k, uint64(i))
			}
			for i, k := range workload.Keys(5000, 11) {
				if v, ok := got.Get(k); !ok || v != uint64(i) {
					t.Fatalf("post-reopen Put/Get(%d) = (%d,%v)", k, v, ok)
				}
			}
		})
	}
}

// TestReopenWithRangeFilter verifies range filters are rebuilt from
// the reloaded keys and Scan still skips runs.
func TestReopenWithRangeFilter(t *testing.T) {
	builder := func(keys []uint64) core.RangeFilter {
		return surf.New(keys, surf.SuffixReal, 8)
	}
	s := New(Options{Policy: PolicyBloom, MemtableSize: 256, RangeFilter: builder})
	keys := fillStore(t, s, 8000, 5)
	got := reopen(t, s, Options{RangeFilter: builder})
	lo, hi := keys[17], keys[17]+1000
	want := s.Scan(lo, hi)
	have := got.Scan(lo, hi)
	if len(want) != len(have) {
		t.Fatalf("Scan: %d entries vs %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("Scan[%d]: %+v vs %+v", i, have[i], want[i])
		}
	}
	if s.Device().Reads() != got.Device().Reads() {
		t.Fatalf("scan I/O diverged: %d vs %d", got.Device().Reads(), s.Device().Reads())
	}

	// Reopening without the builder must fail loudly, not silently lose
	// the range filters.
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, Options{}); err == nil {
		t.Fatal("OpenStore without the saved store's RangeFilter builder should error")
	}
}

// TestOpenStoreRejectsMismatchedOptions checks structural overrides
// that disagree with the manifest are configuration errors.
func TestOpenStoreRejectsMismatchedOptions(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 256, SizeRatio: 4})
	fillStore(t, s, 3000, 9)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		{MemtableSize: 512},
		{SizeRatio: 8},
		{Policy: PolicyMaplet},
		{BitsPerKey: 4},
		{Compaction: Tiering},
	} {
		if _, err := OpenStore(dir, bad); err == nil {
			t.Fatalf("OpenStore with mismatched %+v should error", bad)
		}
	}
	if _, err := OpenStore(dir, Options{}); err != nil {
		t.Fatalf("OpenStore with zero options: %v", err)
	}
}

// TestOpenStoreDetectsCorruption flips bytes in each saved file and
// requires OpenStore to fail rather than serve wrong answers.
func TestOpenStoreDetectsCorruption(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 256})
	fillStore(t, s, 4000, 13)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected manifest plus run files, found %d files", len(files))
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutated := append([]byte(nil), raw...)
		mutated[len(mutated)/2] ^= 0x10
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(dir, Options{}); err == nil {
			t.Fatalf("corrupting %s went undetected", filepath.Base(path))
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenStore(dir, Options{}); err != nil {
		t.Fatalf("restored files should open cleanly: %v", err)
	}
}

// TestOpenStoreV1Manifest: a manifest written by the pre-durability
// release (kind TypeLSMManifest, no durable/watermark fields) still
// opens — the persistence layer is versioned by frame kind, so the
// old layout decodes as a snapshot-only image instead of misparsing.
func TestOpenStoreV1Manifest(t *testing.T) {
	var e codec.Enc
	e.U64(8) // MemtableSize
	e.U64(4) // SizeRatio
	e.U8(uint8(PolicyBloom))
	e.F64(10)   // BitsPerKey
	e.F64(0.01) // MonkeyBaseFPR
	e.U8(uint8(Leveling))
	e.Bool(false)            // no range filter
	for i := 0; i < 9; i++ { // device + filter counters
		e.U64(0)
	}
	e.U64(0)    // nextID
	e.U64s(nil) // freeIDs
	// v1 stops here: no durable flag, no watermark.
	e.U64(2) // memtable
	e.U64(1)
	e.U64(10)
	e.Bool(false)
	e.U64(2)
	e.U64(20)
	e.Bool(false)
	e.U64(0)      // no levels
	e.Bool(false) // no maplet
	var buf bytes.Buffer
	if _, err := codec.WriteFrame(&buf, core.TypeLSMManifest, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatalf("v1 manifest refused: %v", err)
	}
	for k := uint64(1); k <= 2; k++ {
		if v, ok := s.Get(k); !ok || v != k*10 {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
	// Upgrade path: a v1 snapshot opens durable too — it holds no WAL
	// segments, so the store starts a fresh log on top of it.
	u, err := OpenStore(dir, Options{Durability: DurabilityGroup})
	if err != nil {
		t.Fatalf("v1 manifest with durability: %v", err)
	}
	u.Close()
}

// TestOpenStoreRejectsForeignManifestKind: a MANIFEST holding some
// other frame kind fails with a kind error, not a misparse.
func TestOpenStoreRejectsForeignManifestKind(t *testing.T) {
	var buf bytes.Buffer
	if _, err := codec.WriteFrame(&buf, core.TypeLSMRun, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, Options{}); !errors.Is(err, codec.ErrKind) {
		t.Fatalf("foreign manifest kind: err = %v, want ErrKind", err)
	}
}
