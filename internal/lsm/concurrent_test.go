package lsm

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"beyondbloom/internal/fault"
)

// TestNewStoreValidation: NewStore rejects configurations the engine
// cannot operate under instead of misbehaving later.
func TestNewStoreValidation(t *testing.T) {
	bad := []Options{
		{MemtableSize: -1},
		{SizeRatio: -2},
		{SizeRatio: 1},
		{BitsPerKey: -3},
		{MonkeyBaseFPR: -0.5},
		{MonkeyBaseFPR: 1.5},
		{Policy: FilterPolicy(99)},
		{Compaction: CompactionPolicy(99)},
		{L0RunBudget: -1},
	}
	for _, opts := range bad {
		if _, err := NewStore(opts); err == nil {
			t.Errorf("NewStore(%+v) accepted invalid options", opts)
		}
	}
	// Zero values select defaults and must be accepted.
	s, err := NewStore(Options{})
	if err != nil {
		t.Fatalf("NewStore(zero) = %v", err)
	}
	if s == nil {
		t.Fatal("NewStore(zero) returned nil store")
	}
	// New panics on the same inputs NewStore rejects.
	defer func() {
		if recover() == nil {
			t.Fatal("New(L0RunBudget:-1) did not panic")
		}
	}()
	New(Options{L0RunBudget: -1})
}

// TestCloseIdempotentAndSyncAfterClose: Close drains the background
// engine, can be called twice, and leaves the store usable (synchronous
// flushes) afterwards.
func TestCloseIdempotentAndSyncAfterClose(t *testing.T) {
	s := New(Options{MemtableSize: 16, Background: true})
	for i := uint64(0); i < 100; i++ {
		s.Put(i, i*3)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if len(s.view.Load().frozen) != 0 {
		t.Fatal("Close left frozen memtables behind")
	}
	for i := uint64(100); i < 200; i++ {
		s.Put(i, i*3)
	}
	s.Flush()
	for i := uint64(0); i < 200; i++ {
		if v, ok := s.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v after Close", i, v, ok)
		}
	}
}

// TestBackgroundFlushWaits: Flush on a Background store blocks until
// the worker has drained every frozen memtable.
func TestBackgroundFlushWaits(t *testing.T) {
	s := New(Options{MemtableSize: 32, Background: true, L0RunBudget: 4})
	defer s.Close()
	for i := uint64(0); i < 1000; i++ {
		s.Put(i, i+7)
	}
	s.Flush()
	if n := len(s.view.Load().frozen); n != 0 {
		t.Fatalf("Flush returned with %d frozen memtables pending", n)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := s.Get(i); !ok || v != i+7 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestScanRacingCompaction: a key deleted before a scan starts must
// never appear in that scan's results, even while background flushes
// and compactions continuously rewrite the tree underneath it. This
// pins the snapshot-scan dedup: the scan resolves each key once against
// one consistent view, so a tombstone shadows every older version of
// its key regardless of which run the compaction has moved it to.
func TestScanRacingCompaction(t *testing.T) {
	const n = 2000
	s := New(Options{MemtableSize: 64, SizeRatio: 4, Background: true, L0RunBudget: 4})
	defer s.Close()
	for i := uint64(1); i <= n; i++ {
		s.Put(i, i*10)
	}
	s.Flush()
	for i := uint64(2); i <= n; i += 2 {
		s.Delete(i)
	}

	// Churn writer: keys above the scanned range, forcing continuous
	// flush + compaction while the scans run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := uint64(n + 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Put(k, k)
			k++
		}
	}()

	for round := 0; round < 200; round++ {
		got := s.Scan(1, n)
		seen := make(map[uint64]bool, len(got))
		for i, e := range got {
			if i > 0 && got[i-1].Key >= e.Key {
				t.Fatalf("round %d: scan out of order at %d", round, i)
			}
			if e.Key%2 == 0 {
				t.Fatalf("round %d: deleted key %d resurfaced in scan", round, e.Key)
			}
			if e.Value != e.Key*10 {
				t.Fatalf("round %d: key %d has value %d, want %d", round, e.Key, e.Value, e.Key*10)
			}
			seen[e.Key] = true
		}
		for i := uint64(1); i <= n; i += 2 {
			if !seen[i] {
				t.Fatalf("round %d: live key %d missing from scan", round, i)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// chaosKeyState tracks one key's externally visible history: writers
// advance it only after the store operation returns, so any reader that
// observes the new state is ordered after the store mutation and can
// assert exact results.
const (
	chaosUnwritten = int32(iota)
	chaosWritten
	chaosDeleted
)

func chaosValue(k uint64) uint64 { return k*2654435761 + 1 }

// TestChaosConcurrentStore is the -race chaos test: concurrent writers,
// deleters, point readers, batch readers, scanners, and a Save loop,
// all against a store whose device and filter blocks fault — asserting
// exact results (no false negatives, no wrong values) for every
// operation whose ordering is established.
func TestChaosConcurrentStore(t *testing.T) {
	for _, pc := range []struct {
		name   string
		policy FilterPolicy
	}{
		{"monkey", PolicyMonkey},
		{"maplet", PolicyMaplet},
	} {
		t.Run(pc.name, func(t *testing.T) {
			const (
				writers       = 4
				keysPerWriter = 3000
				total         = writers * keysPerWriter
				deleteEvery   = 3
			)
			s := New(Options{
				MemtableSize: 128,
				SizeRatio:    4,
				Policy:       pc.policy,
				Background:   true,
				L0RunBudget:  6,
				DeviceFaults: fault.NewInjector(42, fault.Transient(0.05), fault.BitFlip(0.02)),
				FilterFaults: fault.NewInjector(43, fault.Transient(0.05)),
			})
			defer s.Close()

			state := make([]atomic.Int32, total)
			var wg sync.WaitGroup

			// Writers: each owns the disjoint key range [w*keysPerWriter,
			// (w+1)*keysPerWriter); every key is written once, and every
			// deleteEvery-th key deleted once afterwards.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := w * keysPerWriter
					for i := 0; i < keysPerWriter; i++ {
						k := uint64(base + i)
						s.Put(k, chaosValue(k))
						state[base+i].Store(chaosWritten)
						if i%deleteEvery == 0 {
							s.Delete(k)
							state[base+i].Store(chaosDeleted)
						}
					}
				}(w)
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()

			// deleteEligible keys get a Delete right after their Put; for
			// those, observing state "written" is inconclusive about
			// presence (the delete may have applied before the flag
			// advanced), so only never-deleted keys assert a mandatory hit.
			deleteEligible := func(k uint64) bool {
				return (k%keysPerWriter)%deleteEvery == 0
			}
			var readers sync.WaitGroup
			checkKey := func(k uint64, v uint64, ok, observed bool, st int32) {
				switch {
				case observed && st == chaosWritten && !deleteEligible(k):
					if !ok {
						t.Errorf("false negative: key %d written but not found", k)
					} else if v != chaosValue(k) {
						t.Errorf("key %d = %d, want %d", k, v, chaosValue(k))
					}
				case observed && st == chaosDeleted:
					if ok {
						t.Errorf("key %d deleted but still found (=%d)", k, v)
					}
				default: // in-flight or delete-pending: a hit must still carry the right value
					if ok && v != chaosValue(k) {
						t.Errorf("key %d = %d, want %d", k, v, chaosValue(k))
					}
				}
			}

			// Point readers.
			for r := 0; r < 2; r++ {
				readers.Add(1)
				go func(seed uint64) {
					defer readers.Done()
					rng := seed
					for {
						select {
						case <-done:
							return
						default:
						}
						rng = rng*6364136223846793005 + 1442695040888963407
						k := rng % total
						st := state[k].Load() // observe BEFORE the read
						v, ok := s.Get(k)
						checkKey(k, v, ok, st != chaosUnwritten, st)
					}
				}(uint64(r + 1))
			}

			// Batch reader.
			readers.Add(1)
			go func() {
				defer readers.Done()
				keys := make([]uint64, 64)
				vals := make([]uint64, 64)
				found := make([]bool, 64)
				states := make([]int32, 64)
				rng := uint64(99)
				for {
					select {
					case <-done:
						return
					default:
					}
					for i := range keys {
						rng = rng*6364136223846793005 + 1442695040888963407
						keys[i] = rng % total
						states[i] = state[keys[i]].Load()
					}
					s.GetBatch(keys, vals, found)
					for i, k := range keys {
						checkKey(k, vals[i], found[i], states[i] != chaosUnwritten, states[i])
					}
				}
			}()

			// Scanner: keys observed written (and not deleted) before the
			// scan must appear; keys observed deleted must not.
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					lo := uint64(0)
					hi := uint64(total - 1)
					pre := make([]int32, total)
					for i := range pre {
						pre[i] = state[i].Load()
					}
					got := s.Scan(lo, hi)
					present := make(map[uint64]uint64, len(got))
					for i, e := range got {
						if i > 0 && got[i-1].Key >= e.Key {
							t.Error("scan output not strictly ascending")
							return
						}
						present[e.Key] = e.Value
					}
					for k := range pre {
						switch pre[k] {
						case chaosWritten:
							// For delete-eligible keys the flag may lag the
							// writer's Delete, so absence is inconclusive.
							v, ok := present[uint64(k)]
							if !ok {
								if !deleteEligible(uint64(k)) {
									t.Errorf("scan lost written key %d", k)
									return
								}
							} else if v != chaosValue(uint64(k)) {
								t.Errorf("scan key %d = %d, want %d", k, v, chaosValue(uint64(k)))
								return
							}
						case chaosDeleted:
							if _, ok := present[uint64(k)]; ok {
								t.Errorf("scan resurfaced deleted key %d", k)
								return
							}
						}
					}
					runtime.Gosched()
				}
			}()

			// Save loop: serializing a pinned snapshot mid-churn must not
			// fail, and the saved image must reopen cleanly.
			dir := t.TempDir()
			readers.Add(1)
			go func() {
				defer readers.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					if err := s.Save(dir); err != nil {
						t.Errorf("Save mid-churn: %v", err)
						return
					}
					runtime.Gosched()
				}
			}()

			wg.Wait()
			readers.Wait()
			s.Flush()

			// Quiesced: every key's final state must read back exactly.
			for k := 0; k < total; k++ {
				v, ok := s.Get(uint64(k))
				switch state[k].Load() {
				case chaosWritten:
					if !ok || v != chaosValue(uint64(k)) {
						t.Fatalf("final: key %d = %d,%v want %d,true", k, v, ok, chaosValue(uint64(k)))
					}
				case chaosDeleted:
					if ok {
						t.Fatalf("final: deleted key %d still present", k)
					}
				}
			}

			// And the last saved snapshot reopens to a consistent store
			// (it may predate the final writes; every key it does hold
			// must carry the right value).
			if _, err := os.Stat(dir + "/" + ManifestName); err == nil {
				reopened, err := OpenStore(dir, Options{})
				if err != nil {
					t.Fatalf("OpenStore(chaos snapshot) = %v", err)
				}
				for _, e := range reopened.Scan(0, total-1) {
					if e.Value != chaosValue(e.Key) {
						t.Fatalf("reopened key %d = %d, want %d", e.Key, e.Value, chaosValue(e.Key))
					}
				}
			}
		})
	}
}

// TestWriteStallBackpressure: with a tiny L0 budget the writer must
// stall rather than grow the frozen backlog without bound.
func TestWriteStallBackpressure(t *testing.T) {
	s := New(Options{MemtableSize: 16, Background: true, L0RunBudget: 2})
	defer s.Close()
	for i := uint64(0); i < 5000; i++ {
		s.Put(i, i)
	}
	s.mu.RLock()
	backlog := len(s.view.Load().frozen)
	s.mu.RUnlock()
	if backlog > s.opts.L0RunBudget+1 {
		t.Fatalf("frozen backlog %d exceeds budget %d", backlog, s.opts.L0RunBudget)
	}
	s.Flush()
	for i := uint64(0); i < 5000; i++ {
		if v, ok := s.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestBackgroundMatchesSyncResults: the background engine must converge
// to the same logical contents as the synchronous engine for the same
// operation sequence (I/O order may differ; answers may not).
func TestBackgroundMatchesSyncResults(t *testing.T) {
	for _, pol := range []FilterPolicy{PolicyNone, PolicyBloom, PolicyMonkey, PolicyMaplet} {
		sync1 := New(Options{MemtableSize: 64, Policy: pol})
		bg := New(Options{MemtableSize: 64, Policy: pol, Background: true})
		for i := uint64(0); i < 4000; i++ {
			sync1.Put(i, i*5)
			bg.Put(i, i*5)
			if i%7 == 0 {
				sync1.Delete(i)
				bg.Delete(i)
			}
		}
		sync1.Flush()
		bg.Flush()
		bg.Close()
		for i := uint64(0); i < 4000; i++ {
			v1, ok1 := sync1.Get(i)
			v2, ok2 := bg.Get(i)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("policy %d key %d: sync %d,%v bg %d,%v", pol, i, v1, ok1, v2, ok2)
			}
		}
		a, b := sync1.Scan(0, 4000), bg.Scan(0, 4000)
		if len(a) != len(b) {
			t.Fatalf("policy %d: scan lengths %d vs %d", pol, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("policy %d: scan diverges at %d: %+v vs %+v", pol, i, a[i], b[i])
			}
		}
	}
}
