package lsm

import (
	"sort"
	"sync"

	"beyondbloom/internal/core"
)

// This file is the read side: every query loads the current view (an
// immutable snapshot of the frozen memtables and the level tree) and
// probes it without locks. The only lock a reader ever takes is a short
// read-lock on mu to consult the active memtable.
//
// Ordering matters: readers check the active memtable FIRST and load
// the view after. A key missing from the active memtable at check time
// is either never-written or already frozen — and any view loaded
// after the check includes that frozen memtable (or the run it flushed
// into), so no committed key can fall through the gap.

// Get returns the value for key. The boolean reports presence.
func (s *Store) Get(key uint64) (uint64, bool) {
	s.mu.RLock()
	e, ok := s.mem[key]
	s.mu.RUnlock()
	if ok {
		return e.Value, !e.Tombstone
	}
	v := s.view.Load()
	if e, ok := frozenLookup(v.frozen, key); ok {
		return e.Value, !e.Tombstone
	}
	if s.opts.Policy == PolicyMaplet {
		return s.mapletGet(key)
	}
	for level := 0; level < len(v.levels); level++ {
		for _, r := range v.levels[level] { // newest first
			if len(r.entries) == 0 || key < r.minKey() || key > r.maxKey() {
				continue
			}
			if r.filter != nil {
				// A faulted filter probe cannot rule the run out, so the
				// lookup degrades to paying the data I/O.
				if ok, usable := s.probeFilter(func() bool { return r.filter.Contains(key) }); usable && !ok {
					continue
				}
			}
			s.devRead(1)
			if e, ok := r.find(key); ok {
				return e.Value, !e.Tombstone
			}
		}
	}
	return 0, false
}

// GetBatch performs a batch of point lookups, writing the value and
// presence of keys[i] into values[i] and found[i] (both must be at
// least len(keys) long). Results and I/O accounting are identical to
// calling Get per key; the win is on the filter side: each run's filter
// is probed with the whole surviving key batch through its native
// batched path (hash-once/probe-many) before any data block is touched,
// instead of re-entering the filter once per key.
func (s *Store) GetBatch(keys []uint64, values []uint64, found []bool) {
	_ = values[:len(keys)]
	_ = found[:len(keys)]
	sc := getBatchPool.Get().(*getBatchScratch)
	pending := sc.pending[:0]
	inRange, mustProbe := sc.inRange, sc.mustProbe
	probeKeys, probeOut, resolved := sc.probeKeys, sc.probeOut, sc.resolved
	defer func() {
		sc.pending, sc.inRange, sc.mustProbe = pending, inRange, mustProbe
		sc.probeKeys, sc.probeOut, sc.resolved = probeKeys, probeOut, resolved
		getBatchPool.Put(sc)
	}()
	s.mu.RLock()
	for i, k := range keys {
		values[i], found[i] = 0, false
		if e, ok := s.mem[k]; ok {
			values[i], found[i] = e.Value, !e.Tombstone
			continue
		}
		pending = append(pending, int32(i))
	}
	s.mu.RUnlock()
	v := s.view.Load()
	if len(v.frozen) > 0 && len(pending) > 0 {
		kept := pending[:0]
		for _, i := range pending {
			if e, ok := frozenLookup(v.frozen, keys[i]); ok {
				values[i], found[i] = e.Value, !e.Tombstone
				continue
			}
			kept = append(kept, i)
		}
		pending = kept
	}
	if len(pending) == 0 {
		return
	}
	if s.opts.Policy == PolicyMaplet {
		// Native maplet batch path: one batched maplet probe per attempt
		// (hash-once under a single read lock) fetches every pending key's
		// packed (run, block) candidates, then one newest-first walk over
		// the view's runs probes them — grouping the block reads by run
		// instead of re-walking the view per key. Results and I/O
		// accounting match the scalar mapletGet exactly, retries and
		// fallback included.
		s.mapletGetBatch(keys, values, found, pending)
		return
	}
	// Scratch for the per-run sub-batches (pooled — this path runs per
	// service request at steady state). inRange holds the pending batch
	// positions whose key falls in the run's key range; probeKeys/
	// probeOut hold the (smaller) sub-batch whose filter probe was
	// usable; resolved marks batch positions answered by some run.
	if cap(inRange) < len(pending) {
		inRange = make([]int32, 0, len(pending))
	}
	if cap(mustProbe) < len(pending) {
		mustProbe = make([]bool, len(pending))
	}
	if cap(probeKeys) < len(pending) {
		probeKeys = make([]uint64, 0, len(pending))
	}
	if cap(probeOut) < len(pending) {
		probeOut = make([]bool, len(pending))
	}
	probeOut = probeOut[:len(pending)]
	if cap(resolved) < len(keys) {
		resolved = make([]bool, len(keys))
	}
	resolved = resolved[:len(keys)]
	for i := range resolved {
		resolved[i] = false
	}
	for level := 0; level < len(v.levels) && len(pending) > 0; level++ {
		for _, r := range v.levels[level] { // newest first
			if len(pending) == 0 {
				break
			}
			if len(r.entries) == 0 {
				continue
			}
			minK, maxK := r.minKey(), r.maxKey()
			inRange = inRange[:0]
			for _, i := range pending {
				if k := keys[i]; k >= minK && k <= maxK {
					inRange = append(inRange, i)
				}
			}
			if len(inRange) == 0 {
				continue
			}
			// Filter pass: judge each key's probe (fault injection is
			// per probe, as in the scalar path), then answer all usable
			// probes with one batched filter call. mustProbe[j] records
			// that inRange[j] needs the data I/O regardless.
			mustProbe = mustProbe[:len(inRange)]
			if r.filter != nil {
				probeKeys = probeKeys[:0]
				for j, i := range inRange {
					s.filterProbes.Add(1)
					usable := true
					if s.opts.FilterFaults != nil {
						if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
							s.filterFallbacks.Add(1)
							usable = false
						}
					}
					mustProbe[j] = !usable
					if usable {
						probeKeys = append(probeKeys, keys[i])
					}
				}
				core.ContainsBatch(r.filter, probeKeys, probeOut[:len(probeKeys)])
				p := 0
				for j := range inRange {
					if !mustProbe[j] {
						mustProbe[j] = probeOut[p]
						p++
					}
				}
			} else {
				for j := range mustProbe {
					mustProbe[j] = true
				}
			}
			// Data pass: pay one read per surviving key, resolve hits.
			resolvedAny := false
			for j, i := range inRange {
				if !mustProbe[j] {
					continue
				}
				s.devRead(1)
				if e, ok := r.find(keys[i]); ok {
					values[i], found[i] = e.Value, !e.Tombstone
					resolved[i] = true
					resolvedAny = true
				}
			}
			if resolvedAny {
				next := pending[:0]
				for _, i := range pending {
					if !resolved[i] {
						next = append(next, i)
					}
				}
				pending = next
			}
		}
	}
}

// getBatchScratch holds GetBatch's per-call worklists. They are pooled
// so a hot batched read path allocates nothing at steady state; no
// slice retains store data, only key copies and positions.
type getBatchScratch struct {
	pending   []int32
	inRange   []int32
	mustProbe []bool
	probeKeys []uint64
	probeOut  []bool
	resolved  []bool
}

var getBatchPool = sync.Pool{New: func() any { return new(getBatchScratch) }}

// frozenLookup probes the frozen memtables, newest first.
func frozenLookup(frozen []*memRun, key uint64) (Entry, bool) {
	for _, fm := range frozen {
		if e, ok := fm.entries[key]; ok {
			return e, true
		}
	}
	return Entry{}, false
}

// mapletGet resolves a point lookup through the global maplet, the
// store's primary index: each candidate value packs (run id, block
// offset), so a hit costs one maplet probe plus one block read — no
// per-run filter probes and no whole-run binary search. Candidates
// carrying the unknown-offset sentinel (loaded from a v1 image, or a
// run too deep for the offset width) fall back to a whole-run search
// at the same single charged read. When the maplet block itself cannot
// be read, the lookup degrades to probing every overlapping run (the
// PolicyNone cost) rather than failing.
//
// Three ordering rules make this exact under concurrency (and under
// run-id recycling, where a numerically higher id says nothing about
// recency):
//
//   - Candidates are probed in view order — levels top-down, runs
//     newest first within a level — so the newest version of the key
//     (its tombstone included) always wins.
//   - The maplet is read after loading the view, and the result only
//     counts if the view pointer is unchanged afterwards (a compaction
//     publishing mid-probe may have remapped entries this view still
//     needs).
//   - A candidate whose run id the view does not hold means a
//     compaction remap is mid-flight: the freshest version of this key
//     may already have been re-pointed at a run the view cannot see
//     yet, so the whole result — hit or not — is inconclusive, probing
//     is skipped, and the lookup retries against a fresher view. If it
//     keeps losing that race it falls back to probing every
//     overlapping run, which needs no maplet at all.
func (s *Store) mapletGet(key uint64) (uint64, bool) {
	s.filterProbes.Add(1)
	if s.opts.FilterFaults != nil {
		if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
			s.filterFallbacks.Add(1)
			return s.probeAllRuns(s.view.Load(), key)
		}
	}
	sc := mapletGetPool.Get().(*mapletGetScratch)
	defer mapletGetPool.Put(sc)
	for attempt := 0; attempt < 4; attempt++ {
		v := s.view.Load()
		sc.cand = s.maplet.GetAppend(sc.cand[:0], key)
		value, live, found, conclusive := s.mapletResolve(v, key, sc.cand)
		if !conclusive || s.view.Load() != v {
			continue
		}
		return value, found && live
	}
	s.mapletFallbacks.Add(1)
	return s.probeAllRuns(s.view.Load(), key)
}

// mapletResolve probes a candidate list against one view snapshot.
// conclusive is false when some candidate's run id is absent from the
// view (a compaction remap is mid-flight; see mapletGet); no device
// read is charged in that case.
func (s *Store) mapletResolve(v *view, key uint64, cand []uint64) (value uint64, live, found, conclusive bool) {
	if len(cand) == 0 {
		return 0, false, false, true
	}
	// Candidates come back sorted (the maplet run is value-ordered), so
	// duplicates — colliding fingerprints packed identically — sit
	// adjacent and are screened and probed once.
	for i, c := range cand {
		if i > 0 && c == cand[i-1] {
			continue
		}
		if !viewHasRun(v, s.mapletValRun(c)) {
			return 0, false, false, false
		}
	}
	for level := 0; level < len(v.levels); level++ {
		for _, r := range v.levels[level] { // newest first
			for i, c := range cand {
				if i > 0 && c == cand[i-1] {
					continue
				}
				if s.mapletValRun(c) != r.id {
					continue
				}
				s.devRead(1)
				var e Entry
				var ok bool
				if off, exact := s.mapletValOffset(c); exact {
					e, ok = r.findInBlock(key, off)
				} else {
					e, ok = r.find(key)
				}
				if ok {
					return e.Value, !e.Tombstone, true, true
				}
			}
		}
	}
	return 0, false, false, true
}

// viewHasRun reports whether the view holds a run with this id.
func viewHasRun(v *view, id uint64) bool {
	for _, level := range v.levels {
		for _, r := range level {
			if r.id == id {
				return true
			}
		}
	}
	return false
}

// mapletGetScratch pools mapletGet's candidate buffer (≤1+ε entries at
// steady state) so the serving hot path allocates nothing.
type mapletGetScratch struct{ cand []uint64 }

var mapletGetPool = sync.Pool{New: func() any { return new(mapletGetScratch) }}

// mapletGetBatch is mapletGet over a pending sub-batch: per attempt,
// one batched maplet probe resolves every unresolved key's candidates,
// then a single newest-first walk over the view's runs probes them —
// each run answers all of its keys before the walk moves on. Keys
// whose candidates reference a run the view does not hold (a
// compaction remap mid-flight) stay unresolved and retry with the next
// view; after the attempt budget they fall back to probing every
// overlapping run, exactly like the scalar path.
func (s *Store) mapletGetBatch(keys []uint64, values []uint64, found []bool, pending []int32) {
	sc := mapletBatchPool.Get().(*mapletBatchScratch)
	rem, kbuf, ends, cand := sc.rem[:0], sc.keys, sc.ends, sc.cand
	state, val, liv := sc.state, sc.val, sc.liv
	defer func() {
		sc.rem, sc.keys, sc.ends, sc.cand = rem, kbuf, ends, cand
		sc.state, sc.val, sc.liv = state, val, liv
		mapletBatchPool.Put(sc)
	}()
	// Fault pass: judge each key's maplet probe once, exactly as the
	// scalar path does; faulted keys degrade to the filterless walk.
	for _, i := range pending {
		s.filterProbes.Add(1)
		if s.opts.FilterFaults != nil {
			if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
				s.filterFallbacks.Add(1)
				values[i], found[i] = s.probeAllRuns(s.view.Load(), keys[i])
				continue
			}
		}
		rem = append(rem, i)
	}
	for attempt := 0; attempt < 4 && len(rem) > 0; attempt++ {
		v := s.view.Load()
		kbuf = kbuf[:0]
		for _, i := range rem {
			kbuf = append(kbuf, keys[i])
		}
		ends, cand = s.maplet.GetBatch(kbuf, ends[:0], cand[:0])
		n := len(rem)
		if cap(state) < n {
			state = make([]int8, n)
			val = make([]uint64, n)
			liv = make([]bool, n)
		}
		state, val, liv = state[:n], val[:n], liv[:n]
		// state per key: 0 = unresolved, 1 = hit (val/liv), 2 =
		// conclusively absent, 3 = inconclusive (some candidate's run is
		// unknown to this view — retry).
		for j := 0; j < n; j++ {
			state[j] = 0
			lo := int32(0)
			if j > 0 {
				lo = ends[j-1]
			}
			if lo == ends[j] {
				state[j] = 2
				continue
			}
			for ci := lo; ci < ends[j]; ci++ {
				if ci > lo && cand[ci] == cand[ci-1] {
					continue
				}
				if !viewHasRun(v, s.mapletValRun(cand[ci])) {
					state[j] = 3
					break
				}
			}
		}
		for level := 0; level < len(v.levels); level++ {
			for _, r := range v.levels[level] { // newest first
				for j := 0; j < n; j++ {
					if state[j] != 0 {
						continue
					}
					lo := int32(0)
					if j > 0 {
						lo = ends[j-1]
					}
					for ci := lo; ci < ends[j]; ci++ {
						c := cand[ci]
						if ci > lo && c == cand[ci-1] {
							continue
						}
						if s.mapletValRun(c) != r.id {
							continue
						}
						s.devRead(1)
						var e Entry
						var ok bool
						if off, exact := s.mapletValOffset(c); exact {
							e, ok = r.findInBlock(keys[rem[j]], off)
						} else {
							e, ok = r.find(keys[rem[j]])
						}
						if ok {
							state[j], val[j], liv[j] = 1, e.Value, !e.Tombstone
							break
						}
					}
				}
			}
		}
		if s.view.Load() != v {
			continue // commit nothing; retry the whole remainder
		}
		next := rem[:0]
		for j := 0; j < n; j++ {
			i := rem[j]
			switch state[j] {
			case 1:
				values[i], found[i] = val[j], liv[j]
			case 2, 0: // absent, or every candidate probed without a hit
				values[i], found[i] = 0, false
			default:
				next = append(next, i)
			}
		}
		rem = next
	}
	for _, i := range rem {
		s.mapletFallbacks.Add(1)
		values[i], found[i] = s.probeAllRuns(s.view.Load(), keys[i])
	}
}

// mapletBatchScratch pools mapletGetBatch's worklists; nothing in it
// retains store data, only key copies, packed values, and positions.
type mapletBatchScratch struct {
	rem   []int32
	keys  []uint64
	ends  []int32
	cand  []uint64
	state []int8
	val   []uint64
	liv   []bool
}

var mapletBatchPool = sync.Pool{New: func() any { return new(mapletBatchScratch) }}

// probeAllRuns is the filterless fallback: binary-search every run whose
// key range covers key, newest first, paying one read per probed run.
func (s *Store) probeAllRuns(v *view, key uint64) (uint64, bool) {
	for level := 0; level < len(v.levels); level++ {
		for _, r := range v.levels[level] { // newest first
			if len(r.entries) == 0 || key < r.minKey() || key > r.maxKey() {
				continue
			}
			s.devRead(1)
			if e, ok := r.find(key); ok {
				return e.Value, !e.Tombstone
			}
		}
	}
	return 0, false
}

// Scan returns all live entries with keys in [lo, hi], using range
// filters (when configured) to skip runs. It merges the snapshot's
// sources newest-first in a single pass: each key is resolved exactly
// once, so a tombstone shadows every older version of its key even
// while a compaction races the scan.
func (s *Store) Scan(lo, hi uint64) []Entry {
	// Sources in newest-first order: active memtable, frozen memtables,
	// then levels top-down with runs newest first. Each source is an
	// ascending-sorted slice; the first source holding a key wins.
	var sources [][]Entry
	var mem []Entry
	s.mu.RLock()
	for k, e := range s.mem {
		if k >= lo && k <= hi {
			mem = append(mem, e)
		}
	}
	s.mu.RUnlock()
	v := s.view.Load()
	sort.Slice(mem, func(i, j int) bool { return mem[i].Key < mem[j].Key })
	sources = append(sources, mem)
	for _, fm := range v.frozen {
		var part []Entry
		for k, e := range fm.entries {
			if k >= lo && k <= hi {
				part = append(part, e)
			}
		}
		sort.Slice(part, func(i, j int) bool { return part[i].Key < part[j].Key })
		sources = append(sources, part)
	}
	for level := 0; level < len(v.levels); level++ {
		for _, r := range v.levels[level] { // newest first
			if len(r.entries) == 0 || hi < r.minKey() || lo > r.maxKey() {
				continue
			}
			if r.rangeF != nil {
				if ok, usable := s.probeFilter(func() bool { return r.rangeF.MayContainRange(lo, hi) }); usable && !ok {
					continue
				}
			}
			s.devRead(1)
			i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Key >= lo })
			j := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Key > hi })
			sources = append(sources, r.entries[i:j])
		}
	}
	return mergeSources(sources)
}

// mergeSources merges ascending-sorted entry slices into the live
// result: among sources holding the same key, the earliest (newest)
// wins; tombstones suppress their key. Output is ascending by key.
func mergeSources(sources [][]Entry) []Entry {
	idx := make([]int, len(sources))
	total := 0
	for _, src := range sources {
		total += len(src)
	}
	out := make([]Entry, 0, total)
	for {
		// Find the smallest pending key and the newest source holding it.
		best := -1
		var bestKey uint64
		for si, src := range sources {
			if idx[si] >= len(src) {
				continue
			}
			k := src[idx[si]].Key
			if best == -1 || k < bestKey {
				best, bestKey = si, k
			}
		}
		if best == -1 {
			return out
		}
		winner := sources[best][idx[best]]
		// Advance every source sitting on this key (older versions are
		// superseded — this is the single dedup point).
		for si, src := range sources {
			if idx[si] < len(src) && src[idx[si]].Key == bestKey {
				idx[si]++
			}
		}
		if !winner.Tombstone {
			out = append(out, winner)
		}
	}
}

// Levels returns the number of allocated levels.
func (s *Store) Levels() int { return len(s.view.Load().levels) }

// Runs returns the total number of live runs (reads probe up to this
// many under tiering).
func (s *Store) Runs() int {
	n := 0
	for _, level := range s.view.Load().levels {
		n += len(level)
	}
	return n
}

// FilterMemoryBits returns the total filter footprint (per-run filters or
// the global maplet).
func (s *Store) FilterMemoryBits() int {
	if s.maplet != nil {
		return s.maplet.SizeBits()
	}
	total := 0
	for _, level := range s.view.Load().levels {
		for _, r := range level {
			if r.filter != nil {
				total += r.filter.SizeBits()
			}
		}
	}
	return total
}

// Len returns the number of live entries (exact; walks all runs).
func (s *Store) Len() int {
	keys := map[uint64]bool{}
	s.mu.RLock()
	for k, e := range s.mem {
		keys[k] = !e.Tombstone
	}
	s.mu.RUnlock()
	v := s.view.Load()
	for _, fm := range v.frozen {
		for k, e := range fm.entries {
			if _, ok := keys[k]; !ok {
				keys[k] = !e.Tombstone
			}
		}
	}
	for level := 0; level < len(v.levels); level++ {
		for _, r := range v.levels[level] { // newest first
			for _, e := range r.entries {
				if _, ok := keys[e.Key]; !ok {
					keys[e.Key] = !e.Tombstone
				}
			}
		}
	}
	n := 0
	for _, live := range keys {
		if live {
			n++
		}
	}
	return n
}
