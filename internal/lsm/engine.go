package lsm

import (
	"fmt"
	"sort"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
	"beyondbloom/internal/taffy"
)

// This file is the flush/compaction engine: every function here mutates
// the store's level tree (s.tree, s.runByID) and therefore runs only on
// the engine goroutine — the background worker in Background mode, or a
// caller holding mu's write lock in synchronous mode. Queries never
// touch the tree; they probe the immutable view published by
// publishLocked.

// flushMem writes one frozen memtable as a new level-0 run.
func (s *Store) flushMem(fm *memRun) {
	entries := make([]Entry, 0, len(fm.entries))
	for _, e := range fm.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	s.pushRun(entries, 0, nil)
}

// levelCapacity returns the entry capacity of level i.
func (s *Store) levelCapacity(level int) int {
	c := s.opts.MemtableSize
	for i := 0; i <= level; i++ {
		c *= s.opts.SizeRatio
	}
	return c
}

// ensureLevel grows the level slice.
func (s *Store) ensureLevel(level int) {
	for len(s.tree) <= level {
		s.tree = append(s.tree, nil)
	}
}

// pushRun installs entries at the given level. Under Leveling (or at the
// last level under LazyLeveling) the new entries merge with the level's
// existing run; otherwise the run is appended, newest first. sources
// lists the already-merged runs the entries came from (nil for a fresh
// flush); level runs merged away here join it, and under PolicyMaplet
// the whole set feeds the in-place maplet remap in buildRun.
func (s *Store) pushRun(entries []Entry, level int, sources []*run) {
	s.ensureLevel(level)
	// Lazy leveling merges only at the largest level, and never at level
	// 0 (before any compaction has opened deeper levels, level 0 is
	// trivially "last" and merging there would rewrite it every flush).
	merge := s.opts.Compaction == Leveling ||
		(s.opts.Compaction == LazyLeveling && level > 0 && s.isLastDataLevel(level))
	if merge && len(s.tree[level]) > 0 {
		for _, old := range s.tree[level] {
			entries = s.mergeEntries(entries, old.entries, s.isLastDataLevel(level))
			s.devRead((len(old.entries) + entriesPerBlock - 1) / entriesPerBlock)
			sources = append(sources, old)
			old.remapped = s.maplet != nil
			s.retireRun(old)
		}
		s.tree[level] = nil
	}
	r := s.buildRun(entries, level, sources)
	s.tree[level] = append([]*run{r}, s.tree[level]...)
}

// isLastDataLevel reports whether no deeper level currently holds data.
func (s *Store) isLastDataLevel(level int) bool {
	for i := level + 1; i < len(s.tree); i++ {
		if len(s.tree[i]) > 0 {
			return false
		}
	}
	return true
}

// levelEntries counts entries across a level's runs.
func (s *Store) levelEntries(level int) int {
	n := 0
	for _, r := range s.tree[level] {
		n += len(r.entries)
	}
	return n
}

// mergeEntries merges newer over older; tombstones survive unless this is
// the last level.
func (s *Store) mergeEntries(newer, older []Entry, lastLevel bool) []Entry {
	out := make([]Entry, 0, len(newer)+len(older))
	i, j := 0, 0
	for i < len(newer) || j < len(older) {
		var e Entry
		switch {
		case i >= len(newer):
			e = older[j]
			j++
		case j >= len(older):
			e = newer[i]
			i++
		case newer[i].Key < older[j].Key:
			e = newer[i]
			i++
		case newer[i].Key > older[j].Key:
			e = older[j]
			j++
		default:
			e = newer[i] // newer wins
			i++
			j++
		}
		if e.Tombstone && lastLevel {
			continue
		}
		out = append(out, e)
	}
	return out
}

// allocRunID takes an id from the recycle pool (or mints a fresh one).
func (s *Store) allocRunID() uint64 {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	if n := len(s.freeIDs); n > 0 {
		id := s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
		return id
	}
	s.nextID++
	if s.nextID >= 1<<16 {
		panic("lsm: run id space exhausted")
	}
	return s.nextID
}

// buildRun constructs the run plus its filters, charging write I/O.
// sources lists the retired runs the entries were merged from (nil for
// a fresh flush); PolicyMaplet uses it to remap the surviving keys'
// maplet entries in place.
func (s *Store) buildRun(entries []Entry, level int, sources []*run) *run {
	r := &run{id: s.allocRunID(), entries: entries, level: level}
	s.devWrite((len(entries) + entriesPerBlock - 1) / entriesPerBlock)
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	switch s.opts.Policy {
	case PolicyBloom:
		if s.opts.GrowableFilters {
			r.filter = growableRunFilter(core.BloomEpsForBits(s.opts.BitsPerKey), keys)
			break
		}
		bf := bloom.NewBits(len(entries), s.opts.BitsPerKey)
		for _, k := range keys {
			bf.Insert(k)
		}
		r.filter = bf
	case PolicyMonkey:
		fpr := s.monkeyFPR(level)
		if s.opts.GrowableFilters {
			r.filter = growableRunFilter(fpr, keys)
			break
		}
		bf := bloom.New(len(entries), fpr)
		for _, k := range keys {
			bf.Insert(k)
		}
		r.filter = bf
	case PolicyMaplet:
		// Maplet maintenance happens before the view swap: a fresh flush
		// inserts packed (run, block) values for its keys, a compaction
		// re-points each surviving key from its source runs to the new run
		// in one per-key step. A reader whose view is unchanged across its
		// maplet read therefore holds candidates covering every run of
		// that view; candidates naming a not-yet-published run mark the
		// lookup inconclusive and it retries (see mapletGet).
		s.mapletRemapRun(r, sources)
	}
	if s.opts.RangeFilter != nil {
		r.rangeF = s.opts.RangeFilter(keys)
	}
	s.runByID[r.id] = r
	return r
}

// growableRunFilter builds a taffy run filter with false-positive
// budget eps (clamped to the supported range): it starts at a small
// capacity and grows under the insert stream, so no run size needs to
// be known — or over-provisioned — up front.
func growableRunFilter(eps float64, keys []uint64) core.Filter {
	if eps < taffy.MinEps {
		eps = taffy.MinEps
	}
	if eps > taffy.MaxEps {
		eps = taffy.MaxEps
	}
	tf, err := taffy.New(256, eps)
	if err != nil {
		panic(err) // unreachable: eps is clamped, capacity is constant
	}
	for _, k := range keys {
		tf.Insert(k)
	}
	return tf
}

// monkeyFPR returns the Monkey-assigned false-positive rate for a level:
// the largest level pays MonkeyBaseFPR; each smaller level pays a factor
// T less, so the series sums to ≈ base·T/(T-1) = O(base).
func (s *Store) monkeyFPR(level int) float64 {
	depth := len(s.tree) - 1 - level
	if depth < 0 {
		depth = 0
	}
	fpr := s.opts.MonkeyBaseFPR
	for i := 0; i < depth; i++ {
		fpr /= float64(s.opts.SizeRatio)
	}
	if fpr < 1e-9 {
		fpr = 1e-9
	}
	return fpr
}

// mapletRemapRun maintains the global maplet for a new run: a k-way
// merge by key over the sorted source runs and the new run's entries
// builds one remap op per key — delete every source incarnation's
// packed value, insert the new run's packed value when the key
// survived the merge — and mapletIndex.Apply executes them atomically
// per key. Compared with the old insert-all-then-delete-all churn this
// keeps the maplet's footprint flat (it never transiently doubles) and
// halves the mutation count for overwritten keys. Keys present only in
// the new run (a fresh flush, or memtable-only keys) degenerate to
// pure inserts; keys only in sources (tombstones dropped at the last
// level) to pure deletes.
func (s *Store) mapletRemapRun(r *run, sources []*run) {
	total := 0
	for _, src := range sources {
		total += len(src.entries)
	}
	arena := make([]uint64, 0, total)
	ops := make([]mapletRemap, 0, len(r.entries)+total)
	cur := make([]int, len(sources))
	ni := 0
	for {
		var key uint64
		have := false
		if ni < len(r.entries) {
			key, have = r.entries[ni].Key, true
		}
		for si, src := range sources {
			if cur[si] < len(src.entries) {
				if k := src.entries[cur[si]].Key; !have || k < key {
					key, have = k, true
				}
			}
		}
		if !have {
			break
		}
		start := len(arena)
		for si, src := range sources {
			if cur[si] < len(src.entries) && src.entries[cur[si]].Key == key {
				arena = append(arena, s.mapletPack(src.id, cur[si]))
				cur[si]++
			}
		}
		op := mapletRemap{key: key, olds: arena[start:len(arena):len(arena)]}
		if ni < len(r.entries) && r.entries[ni].Key == key {
			op.put, op.newVal = true, s.mapletPack(r.id, ni)
			ni++
		}
		ops = append(ops, op)
	}
	misses, err := s.maplet.Apply(ops, s.mapletSentinel)
	if err != nil {
		panic(fmt.Sprintf("lsm: maplet cannot expand: %v", err))
	}
	if misses > 0 {
		s.mapletDeleteMisses.Add(int64(misses))
	}
}

// retireRun removes a compaction-superseded run from the engine's index.
// Synchronously it also strips its maplet entries and recycles its id on
// the spot (the deterministic legacy order); in Background mode both
// steps wait until after the view swap (finishRetired), so a concurrent
// reader holding stale maplet candidates still finds the run's data.
// Durable stores always defer, and drain inside checkpoint() instead: a
// retired id may be recycled only after a committed manifest stops
// referencing the run and its files are deleted, or a recycled id's
// fresh data could collide with a stale file.
func (s *Store) retireRun(old *run) {
	delete(s.runByID, old.id)
	if s.deferRetire {
		s.retMu.Lock()
		s.retired = append(s.retired, old)
		s.retMu.Unlock()
		return
	}
	s.recycleRun(old)
}

// recycleRun strips a retired run's remaining maplet entries, then
// returns its id to the pool. The maplet deletes come first: once the
// id is in the pool a concurrent allocator may reuse it and insert
// fresh entries under it, which in-flight deletes for the old
// incarnation would wrongly strip. Runs consumed by a compaction are
// marked remapped — the compaction's in-place remap already moved or
// deleted their entries, so the strip loop is skipped for them; it
// survives as a safety net for any retirement path that bypasses the
// remap, and its misses feed the drift counter.
func (s *Store) recycleRun(old *run) {
	if s.maplet != nil && !old.remapped {
		for i, e := range old.entries {
			v := s.mapletPack(old.id, i)
			if s.maplet.Delete(e.Key, v) == nil {
				continue
			}
			if alt := s.mapletSentinel(v); alt != v && s.maplet.Delete(e.Key, alt) == nil {
				continue
			}
			s.mapletDeleteMisses.Add(1)
		}
	}
	s.idMu.Lock()
	s.freeIDs = append(s.freeIDs, old.id)
	s.idMu.Unlock()
}

// finishRetired performs the deferred half of retirement: maplet
// deletions and id recycling, strictly after the view swap that
// removed the runs (retire-after-swap). Only non-durable Background
// stores use it; durable stores drain selectively inside checkpoint(),
// after the commit that stops referencing the runs.
func (s *Store) finishRetired() {
	s.retMu.Lock()
	retired := s.retired
	s.retired = nil
	s.retMu.Unlock()
	for _, old := range retired {
		s.recycleRun(old)
	}
}

// compact cascades oversized levels downward. Leveling moves a level's
// single run down when it outgrows its capacity; tiering merges a
// level's T runs into one run a level down once T accumulate.
func (s *Store) compact() {
	for level := 0; level < len(s.tree); level++ {
		switch s.opts.Compaction {
		case Leveling:
			if s.levelEntries(level) <= s.levelCapacity(level) {
				continue
			}
			runs := s.tree[level]
			s.tree[level] = nil
			merged := s.drainRuns(runs, s.isLastDataLevel(level))
			s.pushRun(merged, level+1, runs)
		case Tiering:
			if len(s.tree[level]) < s.opts.SizeRatio {
				continue
			}
			runs := s.tree[level]
			s.tree[level] = nil
			merged := s.drainRuns(runs, s.isLastDataLevel(level))
			s.pushRun(merged, level+1, runs)
		case LazyLeveling:
			// Tier every level except the largest; the largest spills to
			// a fresh deeper level when it outgrows its capacity.
			if level > 0 && s.isLastDataLevel(level) {
				if s.levelEntries(level) <= s.levelCapacity(level) {
					continue
				}
			} else if len(s.tree[level]) < s.opts.SizeRatio {
				continue
			}
			runs := s.tree[level]
			s.tree[level] = nil
			merged := s.drainRuns(runs, s.isLastDataLevel(level))
			s.pushRun(merged, level+1, runs)
		}
	}
}

// drainRuns merges runs (newest first) into one entry list, retiring
// them and charging the read I/O of the rewrite.
func (s *Store) drainRuns(runs []*run, lastLevel bool) []Entry {
	var merged []Entry
	for i, r := range runs {
		s.devRead((len(r.entries) + entriesPerBlock - 1) / entriesPerBlock)
		if i == 0 {
			merged = append(merged, r.entries...)
		} else {
			merged = s.mergeEntries(merged, r.entries, lastLevel)
		}
		r.remapped = s.maplet != nil
		s.retireRun(r)
	}
	return merged
}
