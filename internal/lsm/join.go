package lsm

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/xorfilter"
)

// JoinStats reports the effect of filter pushdown on a selective equality
// join (§3.1: "build a filter over qualified join keys from the smaller
// table ... preemptively discard rows with non-matching join keys").
type JoinStats struct {
	ProbeRows    int // rows scanned from the large side
	PassedFilter int // rows surviving the filter (sent to the join)
	Matched      int // rows with a genuine partner
	FilterBits   int
}

// FilterKind selects the join filter implementation.
type FilterKind int

const (
	// JoinBloom uses a Bloom filter (the traditional choice).
	JoinBloom FilterKind = iota
	// JoinXor uses a static XOR filter — applicable because the build
	// side's key set is known before the probe side is scanned.
	JoinXor
)

// FilteredJoin performs a semi-join: it returns the probe-side rows whose
// join key exists in buildKeys, using a filter to discard non-matching
// rows early, plus statistics.
func FilteredJoin(buildKeys, probeKeys []uint64, kind FilterKind, epsilon float64) ([]uint64, JoinStats, error) {
	var contains func(uint64) bool
	var bits int
	switch kind {
	case JoinBloom:
		bf := bloom.New(len(buildKeys), epsilon)
		for _, k := range buildKeys {
			bf.Insert(k)
		}
		contains = bf.Contains
		bits = bf.SizeBits()
	case JoinXor:
		fpBits := uint(1)
		for ; fpBits < 32; fpBits++ {
			if 1.0/float64(uint64(1)<<fpBits) <= epsilon {
				break
			}
		}
		xf, err := xorfilter.New(buildKeys, fpBits)
		if err != nil {
			return nil, JoinStats{}, err
		}
		contains = xf.Contains
		bits = xf.SizeBits()
	}
	buildSet := make(map[uint64]struct{}, len(buildKeys))
	for _, k := range buildKeys {
		buildSet[k] = struct{}{}
	}
	stats := JoinStats{ProbeRows: len(probeKeys), FilterBits: bits}
	var out []uint64
	for _, k := range probeKeys {
		if !contains(k) {
			continue
		}
		stats.PassedFilter++
		if _, ok := buildSet[k]; ok {
			stats.Matched++
			out = append(out, k)
		}
	}
	return out, stats, nil
}
