package lsm

import (
	"errors"
	"testing"

	"beyondbloom/internal/fault"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
)

// These tests pin the maplet-first read path: the global maplet maps
// key → (run, block offset) and is the store's primary index, so its
// maintenance protocol (remap-on-compaction, strip-on-recycle) must
// keep it exactly in sync with the run tree, its lookups must be
// allocation-free, and its checkpoint image must reconstruct the exact
// same routing.

// TestMapletGetZeroAlloc pins the scalar maplet lookup's allocation
// contract: at steady state (scratch pool warm) a Get allocates
// nothing, hit or miss.
func TestMapletGetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	s := New(Options{Policy: PolicyMaplet, MemtableSize: 256})
	keys := workload.Keys(5000, 17)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	s.Flush()
	miss := workload.DisjointKeys(8, 17)
	s.Get(keys[0]) // warm the scratch pool
	if avg := testing.AllocsPerRun(200, func() {
		s.Get(keys[1])
		s.Get(keys[4000])
		s.Get(miss[3])
	}); avg != 0 {
		t.Fatalf("maplet Get allocates %.1f objects per 3 lookups, want 0", avg)
	}
}

// TestMapletRemapKeepsIndexTight drives a churny workload (puts,
// overwrites, deletes) through many flushes and compactions in every
// compaction policy and asserts the remap protocol leaves the maplet
// exactly tight: one entry per run entry, zero best-effort delete
// misses, and correct lookups for present, overwritten, deleted, and
// absent keys.
func TestMapletRemapKeepsIndexTight(t *testing.T) {
	for _, comp := range []CompactionPolicy{Leveling, Tiering, LazyLeveling} {
		s := New(Options{Policy: PolicyMaplet, MemtableSize: 64, Compaction: comp})
		keys := workload.Keys(4000, 23)
		model := make(map[uint64]uint64, len(keys))
		for i, k := range keys {
			s.Put(k, uint64(i))
			model[k] = uint64(i)
			switch i % 7 {
			case 3: // overwrite an older key
				old := keys[i/2]
				s.Put(old, uint64(i)*13)
				model[old] = uint64(i) * 13
			case 5: // delete an older key
				old := keys[i/3]
				s.Delete(old)
				delete(model, old)
			}
		}
		s.Flush()
		if m := s.MapletDeleteMisses(); m != 0 {
			t.Fatalf("comp=%d: %d maplet delete misses, want 0", comp, m)
		}
		total := 0
		v := s.view.Load()
		for _, level := range v.levels {
			for _, r := range level {
				total += len(r.entries)
			}
		}
		if got := s.maplet.Len(); got != total {
			t.Fatalf("comp=%d: maplet holds %d entries, run tree holds %d", comp, got, total)
		}
		for k, want := range model {
			if got, ok := s.Get(k); !ok || got != want {
				t.Fatalf("comp=%d: key %d = %d, %v; want %d", comp, k, got, ok, want)
			}
		}
		for _, k := range workload.DisjointKeys(2000, 23) {
			if _, ok := s.Get(k); ok {
				t.Fatalf("comp=%d: phantom key %d", comp, k)
			}
		}
		if f := s.MapletFallbacks(); f != 0 {
			t.Fatalf("comp=%d: %d maplet fallbacks in single-threaded run, want 0", comp, f)
		}
	}
}

func mapletCrashOpts(fs fault.FS) Options {
	return Options{
		MemtableSize:    8,
		Policy:          PolicyMaplet,
		Durability:      DurabilityGroup,
		FS:              fs,
		WALSegmentBytes: 256,
	}
}

// mapletReadsPerKey probes every key the crash script could have
// written and records the device reads each lookup charged.
func mapletReadsPerKey(s *Store) []int {
	out := make([]int, 0, crashKeySpace)
	for k := uint64(1); k <= crashKeySpace; k++ {
		before := s.Device().Reads()
		s.Get(k)
		out = append(out, s.Device().Reads()-before)
	}
	return out
}

// TestMapletCrashSweepRouting kills a PolicyMaplet durable store at
// every mutating filesystem operation and asserts (a) the recovered
// state is an acceptable script prefix with zero delete misses, and
// (b) the recovered maplet routes every surviving key with
// counter-identical device reads across a checkpoint/reopen cycle —
// the offsets reconstructed from the image plus WAL replay cost
// exactly what the re-checkpointed image costs.
func TestMapletCrashSweepRouting(t *testing.T) {
	script := crashScript()
	models := crashModels(script)
	run := func(fs *fault.CrashFS) (acked int, openErr error) {
		s, err := OpenStore("db", mapletCrashOpts(fs))
		if err != nil {
			return 0, err
		}
		for i, e := range script {
			if err := s.Apply(e); err != nil {
				return i, nil
			}
		}
		s.Close()
		return len(script), nil
	}
	dry := fault.NewCrashFS(42)
	acked, openErr := run(dry)
	if openErr != nil || acked != len(script) {
		t.Fatalf("dry run: acked %d, open err %v", acked, openErr)
	}
	total := dry.Ops()
	if total < 100 {
		t.Fatalf("workload too small to exercise crash windows: %d FS ops", total)
	}
	t.Logf("sweeping %d crash points", total)
	for k := 1; k <= total; k++ {
		fs := fault.NewCrashFS(42)
		fs.CrashAfter(k)
		acked, openErr := run(fs)
		if openErr != nil && !errors.Is(openErr, fault.ErrCrashed) {
			t.Fatalf("crash point %d: unexpected open failure %v", k, openErr)
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d never fired (only %d ops this run)", k, fs.Ops())
		}
		rfs := fs.Recover()
		r1, err := OpenStore("db", mapletCrashOpts(rfs))
		if err != nil {
			t.Fatalf("crash point %d: recovery failed: %v", k, err)
		}
		state := dumpState(r1)
		lo := acked
		if openErr != nil {
			lo = 0
		}
		hi := acked + 1
		if hi > len(script) {
			hi = len(script)
		}
		if i := matchPrefix(state, models, lo, hi); i < 0 {
			t.Fatalf("crash point %d: recovered state %v matches no script prefix in [%d, %d] (acked %d)",
				k, state, lo, hi, acked)
		}
		if m := r1.MapletDeleteMisses(); m != 0 {
			t.Fatalf("crash point %d: %d maplet delete misses after recovery", k, m)
		}
		reads1 := mapletReadsPerKey(r1)
		if err := r1.Close(); err != nil {
			t.Fatalf("crash point %d: close after recovery: %v", k, err)
		}
		r2, err := OpenStore("db", mapletCrashOpts(rfs))
		if err != nil {
			t.Fatalf("crash point %d: second reopen failed: %v", k, err)
		}
		if !statesEqual(state, dumpState(r2)) {
			t.Fatalf("crash point %d: state changed across checkpoint/reopen", k)
		}
		reads2 := mapletReadsPerKey(r2)
		for i := range reads1 {
			if reads1[i] != reads2[i] {
				t.Fatalf("crash point %d: key %d costs %d reads recovered but %d reopened",
					k, i+1, reads1[i], reads2[i])
			}
		}
		r2.Close()
	}
}

// TestMapletImageV1Compat saves a store whose manifest carries a v1
// (run-id-only) maplet image and asserts the reopened store widens it
// to the packed layout: every key still routes (via the unknown-offset
// sentinel's whole-run search) at one read per probed run, and
// subsequent compactions remap the sentinel entries away without a
// single delete miss.
func TestMapletImageV1Compat(t *testing.T) {
	s := New(Options{Policy: PolicyMaplet, MemtableSize: 64})
	keys := workload.Keys(1500, 31)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	s.Flush()

	// Rebuild what a v1 release would have persisted: the same routing,
	// but values holding bare run ids.
	legacy := quotient.NewMaplet(12, 12, 16)
	v := s.view.Load()
	for _, level := range v.levels {
		for _, r := range level {
			for _, e := range r.entries {
				for {
					if err := legacy.Put(e.Key, r.id); err == nil {
						break
					}
					if err := legacy.Expand(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	dir := t.TempDir()
	testLegacyMapletImage = legacy
	err := s.Save(dir)
	testLegacyMapletImage = nil
	if err != nil {
		t.Fatalf("Save: %v", err)
	}

	r, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatalf("OpenStore of v1 image: %v", err)
	}
	if r.mapOffBits == 0 || r.maplet.Len() != legacy.Len() {
		t.Fatalf("widened maplet: offBits=%d len=%d, want offBits>0 len=%d",
			r.mapOffBits, r.maplet.Len(), legacy.Len())
	}
	for i, k := range keys {
		before := r.Device().Reads()
		got, ok := r.Get(k)
		if !ok || got != uint64(i) {
			t.Fatalf("key %d = %d, %v; want %d", k, got, ok, i)
		}
		if reads := r.Device().Reads() - before; reads < 1 || reads > 3 {
			t.Fatalf("key %d cost %d reads through sentinel offsets", k, reads)
		}
	}
	for _, k := range workload.DisjointKeys(1000, 31) {
		if _, ok := r.Get(k); ok {
			t.Fatalf("phantom key %d after v1 widen", k)
		}
	}

	// Churn until compactions have rewritten the tree: the remap's
	// sentinel-retry delete path must strip every v1-shaped entry.
	more := workload.Keys(3000, 37)
	for i, k := range more {
		r.Put(k, uint64(i)^0xF0F0)
	}
	r.Flush()
	if m := r.MapletDeleteMisses(); m != 0 {
		t.Fatalf("%d maplet delete misses while compacting v1 entries, want 0", m)
	}
	for i, k := range more {
		if got, ok := r.Get(k); !ok || got != uint64(i)^0xF0F0 {
			t.Fatalf("post-churn key %d = %d, %v", k, got, ok)
		}
	}
}
