package lsm

import (
	"testing"

	"beyondbloom/internal/fault"
)

// buildStore loads a deterministic workload: keys 0..n-1 with value
// 10*key, then deletes every 7th key.
func buildBatchStore(opts Options, n int) *Store {
	s := New(opts)
	for i := 0; i < n; i++ {
		s.Put(uint64(i)*3, uint64(i)*10)
	}
	for i := 0; i < n; i += 7 {
		s.Delete(uint64(i) * 3)
	}
	return s
}

func batchProbes(n int) []uint64 {
	// Present keys, deleted keys, absent keys, duplicates.
	probes := make([]uint64, 0, 2*n)
	for i := 0; i < n; i++ {
		probes = append(probes, uint64(i)*3)   // present or tombstoned
		probes = append(probes, uint64(i)*3+1) // absent
	}
	probes = append(probes, probes[:16]...) // duplicates
	return probes
}

func TestGetBatchMatchesGet(t *testing.T) {
	const n = 3000
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"none", Options{Policy: PolicyNone}},
		{"bloom", Options{Policy: PolicyBloom}},
		{"monkey", Options{Policy: PolicyMonkey}},
		{"maplet", Options{Policy: PolicyMaplet}},
		{"bloom_tiering", Options{Policy: PolicyBloom, Compaction: Tiering}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			scalar := buildBatchStore(tc.opts, n)
			batch := buildBatchStore(tc.opts, n)
			probes := batchProbes(n)

			baseScalar := scalar.Device().Reads()
			baseBatch := batch.Device().Reads()
			if baseScalar != baseBatch {
				t.Fatalf("construction I/O diverged: %d vs %d", baseScalar, baseBatch)
			}

			values := make([]uint64, len(probes))
			found := make([]bool, len(probes))
			batch.GetBatch(probes, values, found)
			for i, k := range probes {
				v, ok := scalar.Get(k)
				if found[i] != ok || (ok && values[i] != v) {
					t.Fatalf("key %d: batch (%d,%v) vs scalar (%d,%v)", k, values[i], found[i], v, ok)
				}
			}
			// Identical probe workload must charge identical read I/O and
			// filter probes on both paths.
			if got, want := batch.Device().Reads()-baseBatch, scalar.Device().Reads()-baseScalar; got != want {
				t.Errorf("batch read I/O %d, scalar %d", got, want)
			}
			if batch.FilterProbes() != scalar.FilterProbes() {
				t.Errorf("batch FilterProbes %d, scalar %d", batch.FilterProbes(), scalar.FilterProbes())
			}
		})
	}
}

func TestGetBatchEdgeBatches(t *testing.T) {
	s := buildBatchStore(Options{Policy: PolicyBloom}, 500)
	// Empty batch is a no-op.
	s.GetBatch(nil, nil, nil)
	// Single-key batch.
	values := make([]uint64, 1)
	found := make([]bool, 1)
	s.GetBatch([]uint64{3}, values, found)
	if v, ok := s.Get(3); ok != found[0] || (ok && v != values[0]) {
		t.Fatalf("single-key batch mismatch")
	}
	// Stale output buffers are overwritten.
	values[0], found[0] = 999, true
	s.GetBatch([]uint64{1}, values, found) // absent key
	if found[0] {
		t.Fatal("stale found not overwritten for absent key")
	}
}

// TestGetBatchWithFilterFaults exercises the degraded path: faulted
// filter probes must fall back to data I/O, never to a wrong answer.
func TestGetBatchWithFilterFaults(t *testing.T) {
	const n = 2000
	opts := Options{
		Policy:       PolicyBloom,
		FilterFaults: fault.NewInjector(77, fault.Transient(0.2)),
	}
	s := buildBatchStore(opts, n)
	probes := batchProbes(n)
	values := make([]uint64, len(probes))
	found := make([]bool, len(probes))
	s.GetBatch(probes, values, found)
	// Answers must be exact regardless of filter faults; compare against
	// a fault-free scalar store.
	ref := buildBatchStore(Options{Policy: PolicyBloom}, n)
	for i, k := range probes {
		v, ok := ref.Get(k)
		if found[i] != ok || (ok && values[i] != v) {
			t.Fatalf("key %d: faulted batch (%d,%v) vs reference (%d,%v)", k, values[i], found[i], v, ok)
		}
	}
	if s.FilterFallbacks() == 0 {
		t.Fatal("expected some faulted filter probes")
	}
}
