package lsm

import (
	"math/rand"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/surf"
	"beyondbloom/internal/workload"
)

func fillStore(t *testing.T, s *Store, n int, seed uint64) []uint64 {
	t.Helper()
	keys := workload.Keys(n, seed)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	return keys
}

func TestGetPutAllPolicies(t *testing.T) {
	for _, policy := range []FilterPolicy{PolicyNone, PolicyBloom, PolicyMonkey, PolicyMaplet} {
		s := New(Options{Policy: policy, MemtableSize: 256})
		keys := fillStore(t, s, 10000, 1)
		for i, k := range keys {
			v, ok := s.Get(k)
			if !ok || v != uint64(i) {
				t.Fatalf("policy %d: Get(%d) = (%d,%v), want (%d,true)", policy, k, v, ok, i)
			}
		}
		// Absent keys must report absent.
		for _, k := range workload.DisjointKeys(1000, 1) {
			if _, ok := s.Get(k); ok {
				t.Fatalf("policy %d: phantom key", policy)
			}
		}
	}
}

func TestUpdateOverwrites(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 64})
	for round := uint64(0); round < 5; round++ {
		for k := uint64(0); k < 500; k++ {
			s.Put(k, k*1000+round)
		}
	}
	for k := uint64(0); k < 500; k++ {
		v, ok := s.Get(k)
		if !ok || v != k*1000+4 {
			t.Fatalf("Get(%d) = (%d,%v), want latest round", k, v, ok)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 128})
	keys := fillStore(t, s, 2000, 3)
	for _, k := range keys[:1000] {
		s.Delete(k)
	}
	s.Flush()
	for _, k := range keys[:1000] {
		if _, ok := s.Get(k); ok {
			t.Fatalf("deleted key %d still visible", k)
		}
	}
	for i, k := range keys[1000:] {
		v, ok := s.Get(k)
		if !ok || v != uint64(i+1000) {
			t.Fatalf("survivor %d lost", k)
		}
	}
}

func TestModelChurn(t *testing.T) {
	s := New(Options{Policy: PolicyMaplet, MemtableSize: 64})
	rng := rand.New(rand.NewSource(7))
	model := map[uint64]uint64{}
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(10) {
		case 0:
			s.Delete(k)
			delete(model, k)
		default:
			v := rng.Uint64()
			s.Put(k, v)
			model[k] = v
		}
	}
	for k, want := range model {
		v, ok := s.Get(k)
		if !ok || v != want {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	// Spot-check absent keys.
	for k := uint64(3000); k < 3500; k++ {
		if _, ok := s.Get(k); ok {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestFiltersReduceMissIO(t *testing.T) {
	// The §3.1 claim chain: none >> uniform bloom >> monkey; maplet ≈ 1
	// probe. Compare read I/Os for a pure-miss workload.
	miss := workload.DisjointKeys(20000, 5)
	ios := map[FilterPolicy]int{}
	for _, policy := range []FilterPolicy{PolicyNone, PolicyBloom, PolicyMonkey, PolicyMaplet} {
		s := New(Options{Policy: policy, MemtableSize: 256, BitsPerKey: 10})
		fillStore(t, s, 50000, 5)
		s.Flush()
		before := s.Device().Reads()
		for _, k := range miss {
			s.Get(k)
		}
		ios[policy] = s.Device().Reads() - before
	}
	if ios[PolicyNone] <= ios[PolicyBloom]*5 {
		t.Errorf("no-filter I/O %d not far above bloom %d", ios[PolicyNone], ios[PolicyBloom])
	}
	if ios[PolicyBloom] < ios[PolicyMonkey] {
		t.Errorf("monkey I/O %d above uniform bloom %d", ios[PolicyMonkey], ios[PolicyBloom])
	}
	if ios[PolicyMaplet] > len(miss)/50 {
		t.Errorf("maplet miss I/O %d should be near zero", ios[PolicyMaplet])
	}
}

func TestHitCostNearOne(t *testing.T) {
	s := New(Options{Policy: PolicyMaplet, MemtableSize: 256})
	keys := fillStore(t, s, 30000, 9)
	s.Flush()
	before := s.Device().Reads()
	probes := keys[:5000]
	for _, k := range probes {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("lost key %d", k)
		}
	}
	perGet := float64(s.Device().Reads()-before) / float64(len(probes))
	if perGet > 1.2 {
		t.Errorf("maplet hit cost %f I/Os per get, want ≈1", perGet)
	}
}

func TestScan(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 128})
	for k := uint64(0); k < 5000; k += 2 { // even keys only
		s.Put(k, k*10)
	}
	got := s.Scan(100, 120)
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("Scan returned %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Key != want[i] || e.Value != want[i]*10 {
			t.Fatalf("Scan[%d] = %+v", i, e)
		}
	}
	// Deleted keys must not appear.
	s.Delete(104)
	got = s.Scan(100, 120)
	for _, e := range got {
		if e.Key == 104 {
			t.Fatal("tombstoned key in scan")
		}
	}
}

func TestScanWithRangeFilterSkipsRuns(t *testing.T) {
	builder := func(keys []uint64) core.RangeFilter {
		return surf.New(keys, surf.SuffixReal, 8)
	}
	s := New(Options{Policy: PolicyBloom, MemtableSize: 256, RangeFilter: builder})
	// Clustered keys: lots of empty space between clusters.
	for k := uint64(0); k < 20000; k++ {
		s.Put(k<<32, k)
	}
	s.Flush()
	before := s.Device().Reads()
	// Scan mid-gap, beyond the trie's truncation resolution (the stored
	// prefixes resolve ~2^24 here): range filters should skip all runs.
	empties := 0
	for i := 0; i < 2000; i++ {
		lo := uint64(i)<<32 + 1<<30
		if got := s.Scan(lo, lo+100); len(got) != 0 {
			t.Fatalf("scan of empty gap returned entries")
		}
		empties++
	}
	ioPerEmpty := float64(s.Device().Reads()-before) / float64(empties)
	if ioPerEmpty > 0.2 {
		t.Errorf("empty scans cost %f I/Os each; range filter should skip runs", ioPerEmpty)
	}
	// Non-empty scans still return data.
	if got := s.Scan(5<<32, 5<<32+10); len(got) != 1 {
		t.Fatalf("non-empty scan broken: %d entries", len(got))
	}
}

func TestLevelsGrowLogarithmically(t *testing.T) {
	s := New(Options{Policy: PolicyNone, MemtableSize: 128, SizeRatio: 4})
	fillStore(t, s, 100000, 11)
	if s.Levels() > 8 {
		t.Errorf("levels = %d for 100k entries at T=4, expected ~log", s.Levels())
	}
}

func TestLenTracksLiveKeys(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 64})
	keys := fillStore(t, s, 1000, 13)
	for _, k := range keys[:300] {
		s.Delete(k)
	}
	if got := s.Len(); got != 700 {
		t.Fatalf("Len = %d, want 700", got)
	}
}

func TestFilteredJoin(t *testing.T) {
	build := workload.Keys(5000, 15)
	probeHit := build[:1000]
	probeMiss := workload.DisjointKeys(100000, 15)
	probe := append(append([]uint64{}, probeHit...), probeMiss...)
	for _, kind := range []FilterKind{JoinBloom, JoinXor} {
		rows, stats, err := FilteredJoin(build, probe, kind, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1000 || stats.Matched != 1000 {
			t.Fatalf("kind %d: matched %d, want 1000", kind, stats.Matched)
		}
		// The filter must have discarded the vast majority of misses.
		if stats.PassedFilter > 1000+len(probeMiss)/50 {
			t.Errorf("kind %d: %d rows passed filter, want ≈1000", kind, stats.PassedFilter)
		}
	}
}

func BenchmarkGetHitBloom(b *testing.B) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 1024})
	keys := workload.Keys(200000, 17)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	s.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(keys[i%len(keys)])
	}
}

func BenchmarkGetMissMonkey(b *testing.B) {
	s := New(Options{Policy: PolicyMonkey, MemtableSize: 1024})
	keys := workload.Keys(200000, 19)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	s.Flush()
	miss := workload.DisjointKeys(1<<20, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(miss[i%len(miss)])
	}
}

func TestCompactionPoliciesCorrect(t *testing.T) {
	for _, pol := range []CompactionPolicy{Leveling, Tiering, LazyLeveling} {
		s := New(Options{Policy: PolicyBloom, MemtableSize: 128, Compaction: pol})
		keys := workload.Keys(20000, 21)
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		// Overwrite a slice, delete a slice.
		for i, k := range keys[:2000] {
			s.Put(k, uint64(i)+1<<40)
		}
		for _, k := range keys[2000:4000] {
			s.Delete(k)
		}
		s.Flush()
		for i, k := range keys[:2000] {
			v, ok := s.Get(k)
			if !ok || v != uint64(i)+1<<40 {
				t.Fatalf("policy %d: overwritten key wrong", pol)
			}
		}
		for _, k := range keys[2000:4000] {
			if _, ok := s.Get(k); ok {
				t.Fatalf("policy %d: deleted key visible", pol)
			}
		}
		for i, k := range keys[4000:] {
			v, ok := s.Get(k)
			if !ok || v != uint64(i+4000) {
				t.Fatalf("policy %d: key lost", pol)
			}
		}
	}
}

func TestTieringAccumulatesRuns(t *testing.T) {
	s := New(Options{Policy: PolicyNone, MemtableSize: 128, SizeRatio: 4, Compaction: Tiering})
	keys := workload.Keys(10000, 23)
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	sLev := New(Options{Policy: PolicyNone, MemtableSize: 128, SizeRatio: 4, Compaction: Leveling})
	for i, k := range keys {
		sLev.Put(k, uint64(i))
	}
	if s.Runs() <= sLev.Runs() {
		t.Errorf("tiering runs %d should exceed leveling runs %d", s.Runs(), sLev.Runs())
	}
}

func TestTieringWritesLessLevelingReadsLess(t *testing.T) {
	// The Dostoevsky trade: tiering has lower write amplification,
	// leveling lower read cost (without filters).
	keys := workload.Keys(60000, 25)
	writes := map[CompactionPolicy]int{}
	readIO := map[CompactionPolicy]float64{}
	for _, pol := range []CompactionPolicy{Leveling, Tiering} {
		s := New(Options{Policy: PolicyNone, MemtableSize: 256, SizeRatio: 4, Compaction: pol})
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()
		writes[pol] = s.Device().Writes()
		before := s.Device().Reads()
		for _, k := range keys[:5000] {
			s.Get(k)
		}
		readIO[pol] = float64(s.Device().Reads()-before) / 5000
	}
	if writes[Tiering] >= writes[Leveling] {
		t.Errorf("tiering writes %d not below leveling %d", writes[Tiering], writes[Leveling])
	}
	if readIO[Tiering] <= readIO[Leveling] {
		t.Errorf("tiering read I/O %f not above leveling %f", readIO[Tiering], readIO[Leveling])
	}
}

func TestLazyLevelingBetweenBoth(t *testing.T) {
	keys := workload.Keys(60000, 27)
	writes := map[CompactionPolicy]int{}
	for _, pol := range []CompactionPolicy{Leveling, Tiering, LazyLeveling} {
		s := New(Options{Policy: PolicyNone, MemtableSize: 256, SizeRatio: 4, Compaction: pol})
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()
		writes[pol] = s.Device().Writes()
	}
	if !(writes[Tiering] <= writes[LazyLeveling] && writes[LazyLeveling] <= writes[Leveling]) {
		t.Errorf("write amp ordering violated: lev=%d lazy=%d tier=%d",
			writes[Leveling], writes[LazyLeveling], writes[Tiering])
	}
}
