//go:build race

package lsm

// raceEnabled reports that this test binary was built with the race
// detector, so allocation-count gates (which sync.Pool breaks by
// design under -race) know to skip themselves.
const raceEnabled = true
