package lsm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"beyondbloom/internal/fault"
)

// The crash-point sweep is the durability proof: run a scripted
// workload over a crash-simulating filesystem, kill it at EVERY
// mutating filesystem operation — mid-append, mid-rotation, mid-flush,
// mid-checkpoint, mid-retire — recover, reopen, and assert the store
// holds exactly some prefix of the write history, never less than what
// was acknowledged (durable modes) and never anything it invented.

// crashKeySpace bounds the script's keys so state dumps can enumerate
// every key the store could hold.
const crashKeySpace = 37

// crashScript is the deterministic workload: overlapping puts and
// deletes, sized so the tiny crash geometry (memtable 8, segment 256 B)
// forces multiple flushes, WAL rotations, compactions and checkpoints.
func crashScript() []Entry {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	script := make([]Entry, 0, 60)
	for i := 0; i < 60; i++ {
		k := next()%crashKeySpace + 1
		if next()%5 == 0 {
			script = append(script, Entry{Key: k, Tombstone: true})
		} else {
			script = append(script, Entry{Key: k, Value: next()})
		}
	}
	return script
}

// crashModels[i] is the exact expected store contents after the first
// i script operations.
func crashModels(script []Entry) []map[uint64]uint64 {
	models := make([]map[uint64]uint64, len(script)+1)
	models[0] = map[uint64]uint64{}
	for i, e := range script {
		m := make(map[uint64]uint64, len(models[i])+1)
		for k, v := range models[i] {
			m[k] = v
		}
		if e.Tombstone {
			delete(m, e.Key)
		} else {
			m[e.Key] = e.Value
		}
		models[i+1] = m
	}
	return models
}

func crashOpts(mode Durability, fs fault.FS) Options {
	return Options{
		MemtableSize:    8,
		Policy:          PolicyBloom,
		Durability:      mode,
		FS:              fs,
		WALSegmentBytes: 256,
	}
}

// dumpState reads back every key the script could have written.
func dumpState(s *Store) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for k := uint64(1); k <= crashKeySpace; k++ {
		if v, ok := s.Get(k); ok {
			out[k] = v
		}
	}
	return out
}

func statesEqual(a, b map[uint64]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// runToCrash opens a durable store over fs and applies the script
// until the filesystem dies (or the script completes, ending with
// Close). It returns the number of acknowledged operations and any
// OpenStore failure.
func runToCrash(fs *fault.CrashFS, mode Durability, script []Entry) (acked int, openErr error) {
	s, err := OpenStore("db", crashOpts(mode, fs))
	if err != nil {
		return 0, err
	}
	for i, e := range script {
		if err := s.Apply(e); err != nil {
			return i, nil
		}
	}
	s.Close() // the closing checkpoint may itself be the crash victim
	return len(script), nil
}

// matchPrefix finds i in [lo, hi] with state == models[i].
func matchPrefix(state map[uint64]uint64, models []map[uint64]uint64, lo, hi int) int {
	for i := lo; i <= hi && i < len(models); i++ {
		if statesEqual(state, models[i]) {
			return i
		}
	}
	return -1
}

// TestCrashSweep kills the store at every op-window in every
// durability mode and asserts exact recovery.
func TestCrashSweep(t *testing.T) {
	script := crashScript()
	models := crashModels(script)
	for _, mode := range []Durability{DurabilityGroup, DurabilityAlways, DurabilityBuffered} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			// Dry run: no crash point armed; count the total mutating
			// filesystem operations the workload performs.
			dry := fault.NewCrashFS(99)
			acked, openErr := runToCrash(dry, mode, script)
			if openErr != nil || acked != len(script) {
				t.Fatalf("dry run: acked %d, open err %v", acked, openErr)
			}
			total := dry.Ops()
			if total < 100 {
				t.Fatalf("workload too small to exercise crash windows: %d FS ops", total)
			}
			t.Logf("sweeping %d crash points", total)
			for k := 1; k <= total; k++ {
				fs := fault.NewCrashFS(99)
				fs.CrashAfter(k)
				acked, openErr := runToCrash(fs, mode, script)
				if openErr != nil && !errors.Is(openErr, fault.ErrCrashed) {
					t.Fatalf("crash point %d: unexpected open failure %v", k, openErr)
				}
				if !fs.Crashed() {
					t.Fatalf("crash point %d never fired (only %d ops this run)", k, fs.Ops())
				}
				r, err := OpenStore("db", crashOpts(mode, fs.Recover()))
				if err != nil {
					t.Fatalf("crash point %d: recovery failed: %v", k, err)
				}
				state := dumpState(r)
				// Durable modes: no acknowledged write may be lost. The
				// crashing (unacknowledged) operation may or may not have
				// reached the log — both are correct. Buffered mode only
				// promises a clean prefix.
				lo := acked
				if mode == DurabilityBuffered || openErr != nil {
					lo = 0
				}
				hi := acked + 1
				if hi > len(script) {
					hi = len(script)
				}
				i := matchPrefix(state, models, lo, hi)
				if i < 0 {
					t.Fatalf("crash point %d (mode %d): recovered state %v matches no script prefix in [%d, %d] (acked %d)",
						k, mode, state, lo, hi, acked)
				}
			}
		})
	}
}

// TestCrashDuringRecovery crashes the store, then crashes the RECOVERY
// at every op-window too, then recovers a third time — repair must be
// idempotent: the final image still matches an acceptable prefix.
func TestCrashDuringRecovery(t *testing.T) {
	script := crashScript()
	models := crashModels(script)
	const mode = DurabilityGroup

	dry := fault.NewCrashFS(7)
	if acked, err := runToCrash(dry, mode, script); err != nil || acked != len(script) {
		t.Fatalf("dry run: %d, %v", acked, err)
	}
	total := dry.Ops()
	for k := 3; k <= total; k += 7 {
		fs := fault.NewCrashFS(7)
		fs.CrashAfter(k)
		acked, openErr := runToCrash(fs, mode, script)
		// Count the mutating ops a clean recovery performs (Recover
		// images are deterministic, so this probe matches the real one).
		probe := fs.Recover()
		if _, err := OpenStore("db", crashOpts(mode, probe)); err != nil {
			t.Fatalf("crash point %d: clean recovery failed: %v", k, err)
		}
		recOps := probe.Ops()
		for j := 1; j <= recOps; j++ {
			rec := fs.Recover()
			rec.CrashAfter(j)
			if _, err := OpenStore("db", crashOpts(mode, rec)); err != nil &&
				!errors.Is(err, fault.ErrCrashed) {
				t.Fatalf("crash %d/recovery crash %d: unexpected error %v", k, j, err)
			}
			final, err := OpenStore("db", crashOpts(mode, rec.Recover()))
			if err != nil {
				t.Fatalf("crash %d/recovery crash %d: second recovery failed: %v", k, j, err)
			}
			lo := acked
			if openErr != nil {
				lo = 0
			}
			hi := acked + 1
			if hi > len(script) {
				hi = len(script)
			}
			if i := matchPrefix(dumpState(final), models, lo, hi); i < 0 {
				t.Fatalf("crash %d/recovery crash %d: final state matches no prefix in [%d, %d]", k, j, lo, hi)
			}
		}
	}
}

// TestCrashChaosBackground crashes a Background-mode durable store
// under concurrent writers and asserts the recovered image holds every
// acknowledged write (run with -race; interleaving is nondeterministic
// so the check is acked ⊆ recovered, not byte-exact prefix).
func TestCrashChaosBackground(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		fs := fault.NewCrashFS(seed)
		fs.CrashAfter(150 + int(seed)*83)
		opts := crashOpts(DurabilityGroup, fs)
		opts.Background = true
		opts.MemtableSize = 16
		s, err := OpenStore("db", opts)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		const writers, perWriter = 4, 120
		var mu sync.Mutex
		acked := make(map[uint64]uint64)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					k := uint64(w*perWriter+i) + 1000 // distinct keys per writer
					v := k * 7
					if err := s.Apply(Entry{Key: k, Value: v}); err != nil {
						return
					}
					mu.Lock()
					acked[k] = v
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		s.Close() // stop the worker; errors expected after the crash
		ropts := opts
		ropts.Background = false
		ropts.FS = fs.Recover()
		r, err := OpenStore("db", ropts)
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		for k, v := range acked {
			got, ok := r.Get(k)
			if !ok || got != v {
				t.Fatalf("seed %d: acknowledged key %d lost after crash (= %d, %v); %d acked total",
					seed, k, got, ok, len(acked))
			}
		}
	}
}
