package lsm

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"beyondbloom/internal/fault"
)

// durableOpts is the small-geometry durable configuration the tests
// share: tiny memtables and segments so flushes, rotations, and
// checkpoints all fire within a few dozen operations.
func durableOpts(d Durability, fs fault.FS) Options {
	return Options{
		MemtableSize:    8,
		Policy:          PolicyBloom,
		Durability:      d,
		FS:              fs,
		WALSegmentBytes: 256,
	}
}

// TestNewStoreRejectsDurability: durable stores need a directory.
func TestNewStoreRejectsDurability(t *testing.T) {
	if _, err := NewStore(Options{Durability: DurabilityGroup}); err == nil ||
		!strings.Contains(err.Error(), "OpenStore") {
		t.Fatalf("NewStore with Durability: %v", err)
	}
}

// TestDurableBootstrapReplay: a fresh durable store's acknowledged
// writes survive an abandoned process (no Close, no Save) via the log
// alone — even before the first checkpoint exists.
func TestDurableBootstrapReplay(t *testing.T) {
	fs := fault.NewCrashFS(1)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	for k := uint64(1); k <= 5; k++ { // below the flush trigger: WAL only
		s.Put(k, k*100)
	}
	// Abandon the store (simulated process exit without Close); the
	// recovered image holds only what was made durable.
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 5; k++ {
		if v, ok := r.Get(k); !ok || v != k*100 {
			t.Fatalf("key %d after replay = %d, %v", k, v, ok)
		}
	}
	if st := r.WAL().Stats(); st.Replayed == 0 {
		t.Fatal("reopen did not replay the log")
	}
}

// TestDurableFlushCheckpoint: flushes checkpoint automatically, retire
// covered segments, and the reopened store is exact — including
// tombstones.
func TestDurableFlushCheckpoint(t *testing.T) {
	fs := fault.NewCrashFS(2)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Put(k, k)
	}
	for k := uint64(1); k <= 100; k += 3 {
		s.Delete(k)
	}
	if st := s.WAL().Stats(); st.Retired == 0 {
		t.Fatalf("no segments retired by checkpoints: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 100; k++ {
		v, ok := r.Get(k)
		if k%3 == 1 {
			if ok {
				t.Fatalf("deleted key %d resurrected with %d", k, v)
			}
		} else if !ok || v != k {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
	// A clean Close checkpointed everything: replay had nothing to do.
	if st := r.WAL().Stats(); st.Replayed != 0 {
		t.Fatalf("clean shutdown replayed %d ops", st.Replayed)
	}
}

// TestDurableRefusesNone: a durable directory cannot be opened with
// DurabilityNone — that would silently drop the log.
func TestDurableRefusesNone(t *testing.T) {
	fs := fault.NewCrashFS(3)
	s, err := OpenStore("db", durableOpts(DurabilityAlways, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		s.Put(k, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore("db", Options{FS: fs}); err == nil ||
		!strings.Contains(err.Error(), "Durability") {
		t.Fatalf("DurabilityNone open of durable dir: %v", err)
	}
}

// TestDurableSaveElsewhere: Save to a foreign directory writes a
// detached snapshot that opens as a plain store.
func TestDurableSaveElsewhere(t *testing.T) {
	fs := fault.NewCrashFS(4)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 30; k++ {
		s.Put(k, k+7)
	}
	if err := s.Save("snap"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap, err := OpenStore("snap", Options{FS: fs})
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	for k := uint64(1); k <= 30; k++ {
		if v, ok := snap.Get(k); !ok || v != k+7 {
			t.Fatalf("snapshot key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableOwnDirSaveIsCheckpoint: Save into the store's own
// directory routes through Checkpoint and keeps the WAL consistent.
func TestDurableOwnDirSaveIsCheckpoint(t *testing.T) {
	fs := fault.NewCrashFS(5)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 5; k++ {
		s.Put(k, k)
	}
	if err := s.Save("db"); err != nil {
		t.Fatalf("Save(own dir): %v", err)
	}
	// The checkpoint folded the memtable: replay-on-reopen is empty.
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatal(err)
	}
	if st := r.WAL().Stats(); st.Replayed != 0 {
		t.Fatalf("checkpointed store replayed %d ops", st.Replayed)
	}
	for k := uint64(1); k <= 5; k++ {
		if v, ok := r.Get(k); !ok || v != k {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableBackgroundConcurrent: a Background durable store under
// concurrent writers acknowledges every Put durably; after Close and
// reopen nothing acknowledged is missing. Run with -race.
func TestDurableBackgroundConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		MemtableSize: 64,
		Policy:       PolicyBloom,
		Background:   true,
		Durability:   DurabilityGroup,
	}
	s, err := OpenStore(filepath.Join(dir, "db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*perWriter + i + 1)
				s.Put(k, k*3)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenStore(filepath.Join(dir, "db"), opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	for k := uint64(1); k <= writers*perWriter; k++ {
		if v, ok := r.Get(k); !ok || v != k*3 {
			t.Fatalf("acknowledged key %d lost (= %d, %v)", k, v, ok)
		}
	}
}

// TestDurableMapletPolicy: the maplet policy works durably — the
// global index is checkpointed with the manifest and replayed writes
// land in the memtable above it.
func TestDurableMapletPolicy(t *testing.T) {
	fs := fault.NewCrashFS(6)
	opts := durableOpts(DurabilityGroup, fs)
	opts.Policy = PolicyMaplet
	s, err := OpenStore("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 60; k++ {
		s.Put(k, k^0xABCD)
	}
	r, err := OpenStore("db", opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 60; k++ {
		if v, ok := r.Get(k); !ok || v != k^0xABCD {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableApplyBatch: one Apply batch is logged as one record and
// survives as a unit.
func TestDurableApplyBatch(t *testing.T) {
	fs := fault.NewCrashFS(7)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	batch := []Entry{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Tombstone: true}}
	if err := s.Apply(batch...); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if v, ok := r.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d, %v", v, ok)
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("tombstoned key 3 present")
	}
}

// TestCheckpointKeepsReferencedRetiredRuns: a run retired by a
// concurrent flush/compaction AFTER a checkpoint pinned its snapshot
// is still referenced by that checkpoint's manifest, so the
// checkpoint must neither recycle its id nor forget its file — only a
// later checkpoint that commits without the run may. (Regression: the
// checkpoint used to drain the whole deferred-retirement list, so a
// reused id's file was skipped by the next checkpoint and the
// manifest pointed at stale data.)
func TestCheckpointKeepsReferencedRetiredRuns(t *testing.T) {
	fs := fault.NewCrashFS(8)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 40; k++ { // several flushes + checkpoints
		s.Put(k, k)
	}
	v := s.view.Load()
	var live *run
	for _, level := range v.levels {
		if len(level) > 0 {
			live = level[0]
			break
		}
	}
	if live == nil {
		t.Fatal("no runs after 40 puts")
	}
	// Simulate the race: `live` lands on the deferred-retirement list
	// (as a concurrent compaction would put it, between this
	// checkpoint's pin and its drain) while the view — and therefore
	// the manifest about to be written — still references it.
	s.retMu.Lock()
	s.retired = append(s.retired, live)
	s.retMu.Unlock()
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.idMu.Lock()
	for _, id := range s.freeIDs {
		if id == live.id {
			t.Fatalf("id %d recycled while the manifest still references run %d", id, live.id)
		}
	}
	s.idMu.Unlock()
	if _, ok := s.persisted[live.id]; !ok {
		t.Fatalf("run %d dropped from the persisted set while referenced", live.id)
	}
	s.retMu.Lock()
	kept := false
	remaining := s.retired[:0]
	for _, r := range s.retired {
		if r == live {
			kept = true
		} else {
			remaining = append(remaining, r)
		}
	}
	s.retired = remaining // undo the simulation before Close
	s.retMu.Unlock()
	if !kept {
		t.Fatal("referenced retired run left the deferred list at the checkpoint that still references it")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 40; k++ {
		if v, ok := r.Get(k); !ok || v != k {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableConcurrentCheckpoints: explicit checkpoints racing
// concurrent writers and the background engine never lose an
// acknowledged write across close + reopen. Run with -race.
func TestDurableConcurrentCheckpoints(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		MemtableSize: 16,
		Policy:       PolicyMaplet,
		Background:   true,
		Durability:   DurabilityGroup,
	}
	s, err := OpenStore(filepath.Join(dir, "db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 3, 150
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*perWriter + i + 1)
				s.Put(k, k*7)
			}
		}(w)
	}
	ckErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := s.Checkpoint(); err != nil {
				ckErrs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(ckErrs)
	for err := range ckErrs {
		t.Fatalf("concurrent Checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenStore(filepath.Join(dir, "db"), opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	for k := uint64(1); k <= writers*perWriter; k++ {
		if v, ok := r.Get(k); !ok || v != k*7 {
			t.Fatalf("acknowledged key %d lost (= %d, %v)", k, v, ok)
		}
	}
}
