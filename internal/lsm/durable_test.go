package lsm

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"beyondbloom/internal/fault"
)

// durableOpts is the small-geometry durable configuration the tests
// share: tiny memtables and segments so flushes, rotations, and
// checkpoints all fire within a few dozen operations.
func durableOpts(d Durability, fs fault.FS) Options {
	return Options{
		MemtableSize:    8,
		Policy:          PolicyBloom,
		Durability:      d,
		FS:              fs,
		WALSegmentBytes: 256,
	}
}

// TestNewStoreRejectsDurability: durable stores need a directory.
func TestNewStoreRejectsDurability(t *testing.T) {
	if _, err := NewStore(Options{Durability: DurabilityGroup}); err == nil ||
		!strings.Contains(err.Error(), "OpenStore") {
		t.Fatalf("NewStore with Durability: %v", err)
	}
}

// TestDurableBootstrapReplay: a fresh durable store's acknowledged
// writes survive an abandoned process (no Close, no Save) via the log
// alone — even before the first checkpoint exists.
func TestDurableBootstrapReplay(t *testing.T) {
	fs := fault.NewCrashFS(1)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	for k := uint64(1); k <= 5; k++ { // below the flush trigger: WAL only
		s.Put(k, k*100)
	}
	// Abandon the store (simulated process exit without Close); the
	// recovered image holds only what was made durable.
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 5; k++ {
		if v, ok := r.Get(k); !ok || v != k*100 {
			t.Fatalf("key %d after replay = %d, %v", k, v, ok)
		}
	}
	if st := r.WAL().Stats(); st.Replayed == 0 {
		t.Fatal("reopen did not replay the log")
	}
}

// TestDurableFlushCheckpoint: flushes checkpoint automatically, retire
// covered segments, and the reopened store is exact — including
// tombstones.
func TestDurableFlushCheckpoint(t *testing.T) {
	fs := fault.NewCrashFS(2)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Put(k, k)
	}
	for k := uint64(1); k <= 100; k += 3 {
		s.Delete(k)
	}
	if st := s.WAL().Stats(); st.Retired == 0 {
		t.Fatalf("no segments retired by checkpoints: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 100; k++ {
		v, ok := r.Get(k)
		if k%3 == 1 {
			if ok {
				t.Fatalf("deleted key %d resurrected with %d", k, v)
			}
		} else if !ok || v != k {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
	// A clean Close checkpointed everything: replay had nothing to do.
	if st := r.WAL().Stats(); st.Replayed != 0 {
		t.Fatalf("clean shutdown replayed %d ops", st.Replayed)
	}
}

// TestDurableRefusesNone: a durable directory cannot be opened with
// DurabilityNone — that would silently drop the log.
func TestDurableRefusesNone(t *testing.T) {
	fs := fault.NewCrashFS(3)
	s, err := OpenStore("db", durableOpts(DurabilityAlways, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		s.Put(k, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore("db", Options{FS: fs}); err == nil ||
		!strings.Contains(err.Error(), "Durability") {
		t.Fatalf("DurabilityNone open of durable dir: %v", err)
	}
}

// TestDurableSaveElsewhere: Save to a foreign directory writes a
// detached snapshot that opens as a plain store.
func TestDurableSaveElsewhere(t *testing.T) {
	fs := fault.NewCrashFS(4)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 30; k++ {
		s.Put(k, k+7)
	}
	if err := s.Save("snap"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap, err := OpenStore("snap", Options{FS: fs})
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	for k := uint64(1); k <= 30; k++ {
		if v, ok := snap.Get(k); !ok || v != k+7 {
			t.Fatalf("snapshot key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableOwnDirSaveIsCheckpoint: Save into the store's own
// directory routes through Checkpoint and keeps the WAL consistent.
func TestDurableOwnDirSaveIsCheckpoint(t *testing.T) {
	fs := fault.NewCrashFS(5)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 5; k++ {
		s.Put(k, k)
	}
	if err := s.Save("db"); err != nil {
		t.Fatalf("Save(own dir): %v", err)
	}
	// The checkpoint folded the memtable: replay-on-reopen is empty.
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatal(err)
	}
	if st := r.WAL().Stats(); st.Replayed != 0 {
		t.Fatalf("checkpointed store replayed %d ops", st.Replayed)
	}
	for k := uint64(1); k <= 5; k++ {
		if v, ok := r.Get(k); !ok || v != k {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableBackgroundConcurrent: a Background durable store under
// concurrent writers acknowledges every Put durably; after Close and
// reopen nothing acknowledged is missing. Run with -race.
func TestDurableBackgroundConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		MemtableSize: 64,
		Policy:       PolicyBloom,
		Background:   true,
		Durability:   DurabilityGroup,
	}
	s, err := OpenStore(filepath.Join(dir, "db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*perWriter + i + 1)
				s.Put(k, k*3)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenStore(filepath.Join(dir, "db"), opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	for k := uint64(1); k <= writers*perWriter; k++ {
		if v, ok := r.Get(k); !ok || v != k*3 {
			t.Fatalf("acknowledged key %d lost (= %d, %v)", k, v, ok)
		}
	}
}

// TestDurableMapletPolicy: the maplet policy works durably — the
// global index is checkpointed with the manifest and replayed writes
// land in the memtable above it.
func TestDurableMapletPolicy(t *testing.T) {
	fs := fault.NewCrashFS(6)
	opts := durableOpts(DurabilityGroup, fs)
	opts.Policy = PolicyMaplet
	s, err := OpenStore("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 60; k++ {
		s.Put(k, k^0xABCD)
	}
	r, err := OpenStore("db", opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k := uint64(1); k <= 60; k++ {
		if v, ok := r.Get(k); !ok || v != k^0xABCD {
			t.Fatalf("key %d = %d, %v", k, v, ok)
		}
	}
}

// TestDurableApplyBatch: one Apply batch is logged as one record and
// survives as a unit.
func TestDurableApplyBatch(t *testing.T) {
	fs := fault.NewCrashFS(7)
	s, err := OpenStore("db", durableOpts(DurabilityGroup, fs))
	if err != nil {
		t.Fatal(err)
	}
	batch := []Entry{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Tombstone: true}}
	if err := s.Apply(batch...); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	r, err := OpenStore("db", durableOpts(DurabilityGroup, fs.Recover()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if v, ok := r.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d, %v", v, ok)
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("tombstoned key 3 present")
	}
}
