// Package lsm implements the storage-engine substrate of §3.1: a
// log-structured merge-tree with an in-memory memtable, immutable sorted
// runs on a simulated block device that counts I/Os, leveled compaction
// with a configurable size ratio, and pluggable per-run filters.
//
// The filter policies reproduce the tutorial's storyline:
//
//   - PolicyNone: every point lookup probes every overlapping run — the
//     baseline cost O(levels) I/Os per miss.
//   - PolicyBloom: a Bloom filter per run with uniform bits/key — misses
//     cost O(ε·levels).
//   - PolicyMonkey: Monkey's allocation — lower FPRs for smaller levels,
//     making the sum of FPRs converge so misses cost O(ε) I/Os.
//   - PolicyMaplet: a single global maplet maps each key to the run
//     holding it (Chucky/SlimDB style) — lookups probe ~one run.
//
// Range scans optionally use a per-run range filter (SuRF, Rosetta or
// Grafite built at flush/compaction time) to skip runs whose key range
// matches but whose contents don't (experiment E11).
//
// # Concurrency model
//
// The store is safe for concurrent use (see DESIGN.md §8). Readers
// (Get, GetBatch, Scan, Len, ...) probe an immutable snapshot — the
// frozen memtables plus the full level/run tree — loaded from an
// atomic.Pointer, so they never contend with each other and only take a
// short read-lock to consult the active memtable. Writers append to the
// mutex-guarded active memtable; a full memtable is frozen and handed
// to the flush engine. With Options.Background set, a dedicated
// goroutine runs flushes and compactions and writers stall only when
// the L0 backlog exceeds Options.L0RunBudget; otherwise flushing runs
// inline, which keeps the I/O accounting deterministic for experiment
// replay.
package lsm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/wal"
)

// Entry is a key-value record. Tombstones mark deletions until
// compaction discards them.
type Entry struct {
	Key       uint64
	Value     uint64
	Tombstone bool
}

// Device simulates block storage: it stores nothing (runs keep their
// entries in memory) but counts the I/Os a real device would serve. An
// optional fault injector makes those I/Os fallible: reads and writes
// then fail or report detected corruption per the injector's schedule,
// and the Store degrades (retries, then recovers from a replica) instead
// of panicking. Every attempt is charged to Reads/Writes, so a faulty
// run costs strictly more I/O than a healthy one — never a wrong answer.
//
// Counters are atomics: they may be read from any goroutine while
// operations are in flight. Each counter is individually exact and
// monotonic; Counters returns a read-side snapshot (see DESIGN.md §8
// for what "snapshot-consistent" means under concurrency).
type Device struct {
	reads        atomic.Int64
	writes       atomic.Int64
	failedReads  atomic.Int64
	failedWrites atomic.Int64
	slowIOs      atomic.Int64
	replicaReads atomic.Int64
	replicaWrite atomic.Int64
	// Faults, when non-nil, judges every I/O. Transient/permanent
	// outcomes fail the call; bit-flips surface as detected corruption
	// (checksum mismatch); latency outcomes only bump SlowIOs. The
	// injector itself is safe for concurrent use; installing a new one
	// must happen before concurrent operations start.
	Faults *fault.Injector
}

// Reads returns the read I/Os charged so far (attempts included).
func (d *Device) Reads() int { return int(d.reads.Load()) }

// Writes returns the write I/Os charged so far (attempts included).
func (d *Device) Writes() int { return int(d.writes.Load()) }

// FailedReads counts individual read attempts that faulted.
func (d *Device) FailedReads() int { return int(d.failedReads.Load()) }

// FailedWrites counts individual write attempts that faulted.
func (d *Device) FailedWrites() int { return int(d.failedWrites.Load()) }

// SlowIOs counts attempts that saw injected latency.
func (d *Device) SlowIOs() int { return int(d.slowIOs.Load()) }

// ReplicaReads counts reads that exhausted their retries and fell back
// to the (always-intact) replica.
func (d *Device) ReplicaReads() int { return int(d.replicaReads.Load()) }

// ReplicaWrites is ReplicaReads' write-side twin.
func (d *Device) ReplicaWrites() int { return int(d.replicaWrite.Load()) }

// DeviceCounters is a point-in-time copy of every Device counter.
type DeviceCounters struct {
	Reads, Writes             int
	FailedReads, FailedWrites int
	SlowIOs                   int
	ReplicaReads              int
	ReplicaWrites             int
}

// Counters returns a snapshot of all counters. Each value is exact and
// monotonic; under concurrent load the fields are read one after
// another, so the snapshot is consistent only in the sense that every
// field is some value the counter actually held.
func (d *Device) Counters() DeviceCounters {
	return DeviceCounters{
		Reads:         d.Reads(),
		Writes:        d.Writes(),
		FailedReads:   d.FailedReads(),
		FailedWrites:  d.FailedWrites(),
		SlowIOs:       d.SlowIOs(),
		ReplicaReads:  d.ReplicaReads(),
		ReplicaWrites: d.ReplicaWrites(),
	}
}

// read charges blocks of read I/O and returns the injected outcome.
func (d *Device) read(blocks int) error {
	d.reads.Add(int64(blocks))
	return d.outcome(&d.failedReads)
}

// write charges blocks of write I/O and returns the injected outcome.
func (d *Device) write(blocks int) error {
	d.writes.Add(int64(blocks))
	return d.outcome(&d.failedWrites)
}

func (d *Device) outcome(failed *atomic.Int64) error {
	if d.Faults == nil {
		return nil
	}
	o := d.Faults.Next()
	if o.Latency > 0 {
		d.slowIOs.Add(1)
	}
	if o.Err != nil {
		failed.Add(1)
		return o.Err
	}
	if o.FlipBit >= 0 {
		failed.Add(1)
		return fault.ErrCorrupt
	}
	return nil
}

// entriesPerBlock sets the simulated block granularity for write I/O
// accounting.
const entriesPerBlock = 128

// FilterPolicy selects the filtering strategy.
type FilterPolicy int

const (
	// PolicyNone disables filters.
	PolicyNone FilterPolicy = iota
	// PolicyBloom gives every run a Bloom filter with uniform bits/key.
	PolicyBloom
	// PolicyMonkey allocates exponentially lower false-positive rates to
	// smaller levels (Monkey).
	PolicyMonkey
	// PolicyMaplet replaces per-run filters with one global maplet
	// mapping keys to runs (Chucky/SlimDB).
	PolicyMaplet
)

// RangeFilterBuilder constructs a range filter over a run's keys; nil
// disables range filtering.
type RangeFilterBuilder func(keys []uint64) core.RangeFilter

// Durability selects the write-ahead-logging contract of a store
// opened with OpenStore (see DESIGN.md §9). Snapshot-only stores
// (DurabilityNone, the default) persist nothing between explicit Save
// calls; every other mode logs mutations to a WAL in the store's
// directory before they enter the memtable and replays the log on
// reopen, so no acknowledged write is lost to a crash.
type Durability int

const (
	// DurabilityNone disables the WAL: the legacy snapshot-only store.
	DurabilityNone Durability = iota
	// DurabilityGroup logs every write and batches fsyncs across
	// concurrent writers (group commit): full durability with flat
	// latency tails. The recommended durable mode.
	DurabilityGroup
	// DurabilityAlways fsyncs every write individually before
	// acknowledging it: the naive baseline the E19 ablation measures
	// group commit against.
	DurabilityAlways
	// DurabilityBuffered logs without fsync: a crash may lose the
	// buffered tail, but what survives is always a clean prefix of the
	// write history.
	DurabilityBuffered
)

// CompactionPolicy selects the merge strategy (§3.1's design space).
type CompactionPolicy int

const (
	// Leveling keeps one run per level: each flush merges greedily, so
	// reads probe one run per level but writes are rewritten up to T
	// times per level (write amplification O(T·levels)).
	Leveling CompactionPolicy = iota
	// Tiering lets each level accumulate T runs before merging them into
	// one run a level down: write amplification drops to O(levels), at
	// the cost of up to T runs probed per level on reads. This is the
	// trade Dostoevsky and LSM-Bush push further.
	Tiering
	// LazyLeveling (Dostoevsky) tiers every level except the largest,
	// which stays leveled: most of tiering's write savings with
	// leveling's read cost where it matters (the largest level holds
	// most data and most queries bottom out there).
	LazyLeveling
)

// Options configure a Store.
type Options struct {
	// MemtableSize is the flush trigger: entries buffered in the active
	// memtable before it is frozen and flushed (default 1024).
	MemtableSize int
	SizeRatio    int          // level capacity ratio T (default 4)
	Policy       FilterPolicy // default PolicyBloom
	BitsPerKey   float64      // Bloom budget per key (default 10)
	// MonkeyBaseFPR is the false-positive rate of the largest level under
	// PolicyMonkey (smaller levels get geometrically lower rates).
	MonkeyBaseFPR float64
	// RangeFilter, when set, is built per run and consulted by Scan.
	RangeFilter RangeFilterBuilder
	// GrowableFilters switches per-run point filters (PolicyBloom and
	// PolicyMonkey) from fixed-capacity Bloom filters to growable taffy
	// filters with the equivalent false-positive budget. Runs produced by
	// compaction have sizes unknown until the merge finishes, so fixed
	// filters force an over-provision-or-rebuild choice at flush time;
	// growables remove it — the filter starts small and doubles online
	// while the run is built. The flag is structural (it decides what
	// filter files contain) and is therefore recorded in the manifest;
	// reopening with a conflicting explicit setting is rejected.
	GrowableFilters bool
	// Compaction selects the merge strategy (default Leveling).
	Compaction CompactionPolicy
	// Background enables the background flush/compaction engine: Put and
	// Delete hand full memtables to a dedicated goroutine instead of
	// flushing inline, and writers stall only when the L0 backlog
	// exceeds L0RunBudget. Leave it false (the default) for
	// deterministic experiment replay: the synchronous engine performs
	// the exact same I/O in the exact same order on every run. Stores
	// with Background set should be Closed when done.
	Background bool
	// L0RunBudget is the write-stall threshold for Background mode: a
	// Put stalls while flush work is pending and the number of frozen
	// memtables plus level-0 runs exceeds this budget (default 8; zero
	// selects the default, negative is rejected by NewStore). It is
	// ignored in synchronous mode, where the backlog never exceeds one.
	L0RunBudget int
	// DeviceFaults, when set, is installed on the store's Device so data
	// block I/O fails per its schedule.
	DeviceFaults *fault.Injector
	// FilterFaults, when set, judges every filter-block probe (filters
	// live on storage too). A faulted probe makes the filter unusable for
	// that lookup: the store falls back to probing the run directly,
	// trading extra I/O for correctness.
	FilterFaults *fault.Injector
	// DeviceRetry overrides the retry policy for faulted device I/O
	// (default: 4 attempts, no simulated sleep).
	DeviceRetry *fault.RetryPolicy
	// Durability selects the write-ahead-logging contract. Any value
	// other than DurabilityNone requires a directory, so it is accepted
	// only by OpenStore (NewStore rejects it).
	Durability Durability
	// FS is the filesystem persistence writes through (nil selects the
	// real OS disk). Crash tests substitute a fault.CrashFS.
	FS fault.FS
	// WALSegmentBytes caps one WAL segment file before rotation
	// (default 1 MiB). Ignored under DurabilityNone.
	WALSegmentBytes int
}

func (o *Options) fill() {
	if o.MemtableSize == 0 {
		o.MemtableSize = 1024
	}
	if o.SizeRatio == 0 {
		o.SizeRatio = 4
	}
	if o.BitsPerKey == 0 {
		o.BitsPerKey = 10
	}
	if o.MonkeyBaseFPR == 0 {
		o.MonkeyBaseFPR = 0.01
	}
	if o.L0RunBudget == 0 {
		o.L0RunBudget = 8
	}
}

// validate rejects option values the level arithmetic or the flush
// engine cannot operate under. Zero values mean "use the default" and
// are filled before validation.
func (o *Options) validate() error {
	if o.MemtableSize < 0 {
		return fmt.Errorf("lsm: MemtableSize %d must be positive", o.MemtableSize)
	}
	if o.SizeRatio < 0 || o.SizeRatio == 1 {
		return fmt.Errorf("lsm: SizeRatio %d must be at least 2", o.SizeRatio)
	}
	if o.BitsPerKey < 0 {
		return fmt.Errorf("lsm: BitsPerKey %v must be positive", o.BitsPerKey)
	}
	if o.MonkeyBaseFPR < 0 || o.MonkeyBaseFPR >= 1 {
		return fmt.Errorf("lsm: MonkeyBaseFPR %v must be in (0, 1)", o.MonkeyBaseFPR)
	}
	if o.Policy < PolicyNone || o.Policy > PolicyMaplet {
		return fmt.Errorf("lsm: unknown FilterPolicy %d", o.Policy)
	}
	if o.Compaction < Leveling || o.Compaction > LazyLeveling {
		return fmt.Errorf("lsm: unknown CompactionPolicy %d", o.Compaction)
	}
	if o.L0RunBudget < 0 {
		return fmt.Errorf("lsm: L0RunBudget %d must be positive (zero selects the default)", o.L0RunBudget)
	}
	if o.Durability < DurabilityNone || o.Durability > DurabilityBuffered {
		return fmt.Errorf("lsm: unknown Durability %d", o.Durability)
	}
	if o.WALSegmentBytes < 0 {
		return fmt.Errorf("lsm: WALSegmentBytes %d must be positive (zero selects the default)", o.WALSegmentBytes)
	}
	return nil
}

// walMode maps a Durability to the log's commit mode.
func walMode(d Durability) wal.Mode {
	switch d {
	case DurabilityAlways:
		return wal.ModeAlways
	case DurabilityBuffered:
		return wal.ModeBuffered
	default:
		return wal.ModeGroup
	}
}

// run is an immutable sorted run.
type run struct {
	id      uint64
	entries []Entry // sorted by key, unique keys
	filter  core.Filter
	rangeF  core.RangeFilter
	level   int
	// remapped marks a run consumed by a compaction whose maplet
	// entries the compaction's in-place remap already moved or deleted;
	// recycleRun must not strip them again (see recycleRun).
	remapped bool
}

func (r *run) minKey() uint64 { return r.entries[0].Key }
func (r *run) maxKey() uint64 { return r.entries[len(r.entries)-1].Key }

// find binary-searches the run; the caller has already paid the I/O.
func (r *run) find(key uint64) (Entry, bool) {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Key >= key })
	if i < len(r.entries) && r.entries[i].Key == key {
		return r.entries[i], true
	}
	return Entry{}, false
}

// findInBlock binary-searches one entriesPerBlock-sized block; the
// caller has already paid the (single-block) I/O. An out-of-range
// block — a stale offset left by a recycled-id collision — misses.
func (r *run) findInBlock(key uint64, block uint64) (Entry, bool) {
	if block > uint64(len(r.entries))/entriesPerBlock {
		return Entry{}, false
	}
	lo := int(block) * entriesPerBlock
	if lo >= len(r.entries) {
		return Entry{}, false
	}
	hi := lo + entriesPerBlock
	if hi > len(r.entries) {
		hi = len(r.entries)
	}
	seg := r.entries[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i].Key >= key })
	if i < len(seg) && seg[i].Key == key {
		return seg[i], true
	}
	return Entry{}, false
}

// memRun is a frozen memtable: immutable once published in a view,
// awaiting its flush into a level-0 run.
type memRun struct {
	entries map[uint64]Entry
}

// view is the immutable read snapshot: the frozen memtables (newest
// first) plus the complete level/run tree. Readers load it from an
// atomic pointer and probe it without locks; every structural change
// (freeze, flush, compaction, reopen) publishes a fresh view under the
// store mutex.
type view struct {
	frozen []*memRun
	levels [][]*run // levels[i] holds the runs of level i, newest first
}

// Store is the LSM-tree. It is safe for concurrent use; see the
// package comment and DESIGN.md §8 for the concurrency model.
type Store struct {
	opts Options
	dev  *Device

	// mu guards the active memtable and serializes view publication;
	// readers take it only in read mode and only to consult the active
	// memtable. cond (on mu) wakes write-stalled Puts and synchronous
	// Flushes when the engine publishes progress.
	mu   sync.RWMutex
	cond *sync.Cond
	mem  map[uint64]Entry
	view atomic.Pointer[view]

	// Engine state: the mutable level tree. It is owned by whichever
	// goroutine is flushing — the background worker in Background mode,
	// or a caller holding mu's write lock in synchronous mode — and is
	// never read by queries (they use the published view).
	tree    [][]*run
	runByID map[uint64]*run
	// retMu guards the deferred-retirement list: retireRun appends from
	// the engine, finishRetired drains from whichever goroutine ran the
	// last checkpoint (durable mode) or view swap (Background mode).
	retMu       sync.Mutex
	retired     []*run
	deferRetire bool

	// Durable-mode state (zero for snapshot-only stores). lastLSN is
	// guarded by mu and advances with every logged batch; flushedLSN and
	// persisted are guarded by ckptMu, which serializes checkpoints.
	// persisted maps a run id with files in the store directory to
	// whether a filter file accompanies the data file. bgErr (guarded by
	// mu) is the sticky failure of a background checkpoint, surfaced on
	// the next Apply.
	wal        *wal.Log
	dir        string
	fs         fault.FS
	lastLSN    uint64
	bgErr      error
	closeErr   error
	ckptMu     sync.Mutex
	flushedLSN uint64
	persisted  map[uint64]bool

	// Run ids are recycled from a small pool so they always fit the
	// maplet's 16-bit value width no matter how many flushes occur.
	// idMu guards the pool so Save can snapshot it mid-compaction.
	idMu    sync.Mutex
	freeIDs []uint64
	nextID  uint64

	maplet     *mapletIndex
	mapOffBits uint   // block-offset width of packed maplet values
	mapOffNone uint64 // all-ones offset: the "offset unknown" sentinel

	filterProbes    atomic.Int64
	filterFallbacks atomic.Int64
	// mapletDeleteMisses counts best-effort maplet deletions that found
	// no matching entry (index-drift diagnostic); mapletFallbacks counts
	// maplet lookups that lost the race with a compaction remap and
	// degraded to probing every overlapping run.
	mapletDeleteMisses atomic.Int64
	mapletFallbacks    atomic.Int64

	// ioRetry retries faulted device I/O before replica recovery.
	ioRetry *fault.Retrier

	// Background engine plumbing.
	bg        bool // cleared by Close; guarded by mu
	flushCh   chan struct{}
	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewStore returns an empty store, or an error when the options are
// invalid (negative sizes, a size ratio of one, an L0 run budget that
// could never admit a write, an unknown policy...). Durable stores
// need a directory for their log, so Options.Durability is accepted
// only by OpenStore.
func NewStore(opts Options) (*Store, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Durability != DurabilityNone {
		return nil, fmt.Errorf("lsm: Options.Durability requires a directory; open durable stores with OpenStore")
	}
	retry := fault.RetryPolicy{MaxAttempts: 4, Sleep: fault.NoSleep}
	if opts.DeviceRetry != nil {
		retry = *opts.DeviceRetry
	}
	s := &Store{
		opts:    opts,
		mem:     make(map[uint64]Entry),
		dev:     &Device{Faults: opts.DeviceFaults},
		runByID: make(map[uint64]*run),
		ioRetry: fault.NewRetrier(retry),
	}
	s.cond = sync.NewCond(&s.mu)
	if opts.Policy == PolicyMaplet {
		// The maplet is the primary index: 16-bit recycled run ids packed
		// with per-run block offsets (see mapletval.go); sized small here
		// and expanded on demand.
		s.mapOffBits = mapletOffsetBits(opts.MemtableSize, opts.SizeRatio)
		s.mapOffNone = 1<<s.mapOffBits - 1
		s.maplet = newMapletIndex(quotient.NewMaplet(12, 12, mapletRunBits+s.mapOffBits))
	}
	s.view.Store(&view{})
	if opts.Background {
		s.startBackground()
	}
	return s, nil
}

// New returns an empty store, panicking on invalid options. Use
// NewStore to handle configuration errors gracefully.
func New(opts Options) *Store {
	s, err := NewStore(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// startBackground launches the flush/compaction worker.
func (s *Store) startBackground() {
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.flushCh = make(chan struct{}, 1)
	s.bg = true
	s.deferRetire = true
	s.wg.Add(1)
	go s.flusher()
}

// Close stops the background engine, draining any pending flush work
// first, and — on a durable store — writes a final checkpoint and
// closes the write-ahead log. It is idempotent. A snapshot-only store
// remains usable in synchronous mode after Close (subsequent Puts
// flush inline); a durable store must not be written after Close.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		running := s.bg
		s.mu.Unlock()
		if running {
			s.cancel()
			s.signalFlush() // wake the worker if it is idle
			s.wg.Wait()
			s.mu.Lock()
			s.bg = false
			if s.wal == nil {
				s.deferRetire = false
			}
			// The worker drained everything before exiting, but wake any
			// stalled writer or waiting Flush so it re-checks under the new
			// (synchronous) regime.
			s.cond.Broadcast()
			s.mu.Unlock()
		}
		if s.wal != nil {
			if err := s.Checkpoint(); err != nil {
				s.closeErr = err
			}
			if err := s.wal.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Device exposes the I/O counters.
func (s *Store) Device() *Device { return s.dev }

// FilterProbes counts filter consultations (CPU-cost diagnostic).
func (s *Store) FilterProbes() int { return int(s.filterProbes.Load()) }

// FilterFallbacks counts lookups where a faulted filter probe forced
// the store to probe runs directly (degraded mode).
func (s *Store) FilterFallbacks() int { return int(s.filterFallbacks.Load()) }

// MapletDeleteMisses counts best-effort maplet deletions (compaction
// remaps, retired-run strips) that found no matching entry. Lookups
// stay correct regardless — the maplet only routes — but a nonzero
// value means the index drifted from the maintenance protocol's
// expectations and is worth alarming on.
func (s *Store) MapletDeleteMisses() int { return int(s.mapletDeleteMisses.Load()) }

// MapletFallbacks counts maplet lookups that could not be resolved
// against a stable view (a compaction remap was mid-flight for all
// four attempts) and fell back to probing every overlapping run.
func (s *Store) MapletFallbacks() int { return int(s.mapletFallbacks.Load()) }

// devRead performs a fallible read of blocks: faulted attempts are
// retried (each attempt pays its I/O), and exhausted retries recover
// from the replica at a further blocks of cost. It never fails — the
// degraded path trades I/O for correctness.
func (s *Store) devRead(blocks int) {
	if err := s.ioRetry.Do(context.Background(), func(context.Context) error {
		return s.dev.read(blocks)
	}); err != nil {
		s.dev.reads.Add(int64(blocks))
		s.dev.replicaReads.Add(1)
	}
}

// devWrite is devRead's write-side twin.
func (s *Store) devWrite(blocks int) {
	if err := s.ioRetry.Do(context.Background(), func(context.Context) error {
		return s.dev.write(blocks)
	}); err != nil {
		s.dev.writes.Add(int64(blocks))
		s.dev.replicaWrite.Add(1)
	}
}

// probeFilter consults a run's filter block. ok is the filter's answer;
// usable is false when the probe faulted (the caller must treat the run
// as maybe-containing and pay the data I/O).
func (s *Store) probeFilter(contains func() bool) (ok, usable bool) {
	s.filterProbes.Add(1)
	if s.opts.FilterFaults != nil {
		if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
			s.filterFallbacks.Add(1)
			return false, false
		}
	}
	return contains(), true
}

// Put inserts or updates a key. On a durable store a logging failure
// is fatal (panic): acknowledging an unlogged write would break the
// durability promise. Use Apply to handle the error instead.
func (s *Store) Put(key, value uint64) {
	if err := s.Apply(Entry{Key: key, Value: value}); err != nil {
		panic(fmt.Sprintf("lsm: put: %v", err))
	}
}

// Delete removes a key (via tombstone). See Put for the durable-mode
// failure contract.
func (s *Store) Delete(key uint64) {
	if err := s.Apply(Entry{Key: key, Tombstone: true}); err != nil {
		panic(fmt.Sprintf("lsm: delete: %v", err))
	}
}

// Apply applies a batch of mutations: stall if the flush backlog is
// over budget, log the batch (durable stores), insert into the active
// memtable, and freeze it at the flush trigger. The batch receives
// consecutive log sequence numbers and enters the memtable atomically
// with their assignment, so replay order equals apply order. On a
// durable store Apply returns only once the batch is acknowledged
// under the configured Durability mode — after the group-commit fsync
// in DurabilityGroup/Always, after the OS write in DurabilityBuffered.
// On a snapshot-only store it never fails.
func (s *Store) Apply(entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	s.mu.Lock()
	for s.bg && s.bgErr == nil && s.stalledLocked() {
		s.cond.Wait()
	}
	if s.bgErr != nil {
		err := s.bgErr
		s.mu.Unlock()
		return err
	}
	var target uint64
	if s.wal != nil {
		ops := make([]wal.Op, len(entries))
		for i, e := range entries {
			ops[i] = wal.Op{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}
		}
		lsn, err := s.wal.Enqueue(ops)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.lastLSN = lsn
		target = lsn
	}
	for _, e := range entries {
		s.mem[e.Key] = e
	}
	if len(s.mem) < s.opts.MemtableSize {
		s.mu.Unlock()
		if s.wal != nil {
			return s.wal.Sync(target)
		}
		return nil
	}
	s.freezeLocked()
	if s.bg {
		s.mu.Unlock()
		if s.wal != nil {
			if err := s.wal.Sync(target); err != nil {
				return err
			}
		}
		s.signalFlush()
		return nil
	}
	s.drainLocked()
	s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	// Synchronous durable flush: acknowledge the batch, then fold the
	// flushed tree into a durable checkpoint so the covered log
	// segments can retire.
	if err := s.wal.Sync(target); err != nil {
		return err
	}
	return s.Checkpoint()
}

// stalledLocked reports whether a writer must wait for the engine:
// flush work is pending and the backlog (frozen memtables plus level-0
// runs) exceeds the configured budget.
func (s *Store) stalledLocked() bool {
	v := s.view.Load()
	if len(v.frozen) == 0 {
		return false
	}
	l0 := 0
	if len(v.levels) > 0 {
		l0 = len(v.levels[0])
	}
	return len(v.frozen)+l0 > s.opts.L0RunBudget
}

// freezeLocked publishes the active memtable as a frozen memtable
// (newest first) and replaces it with an empty one. Callers hold mu.
func (s *Store) freezeLocked() {
	if len(s.mem) == 0 {
		return
	}
	fm := &memRun{entries: s.mem}
	s.mem = make(map[uint64]Entry)
	v := s.view.Load()
	frozen := make([]*memRun, 0, len(v.frozen)+1)
	frozen = append(frozen, fm)
	frozen = append(frozen, v.frozen...)
	s.view.Store(&view{frozen: frozen, levels: v.levels})
}

// signalFlush nudges the background worker (non-blocking: the worker
// re-scans the frozen backlog on every wakeup, so one pending signal
// covers any number of freezes).
func (s *Store) signalFlush() {
	select {
	case s.flushCh <- struct{}{}:
	default:
	}
}

// Flush forces the memtable down to level 0 and waits until every
// frozen memtable has been flushed and compacted. In synchronous mode
// this happens inline; in Background mode it blocks until the worker
// drains the backlog. On a durable store Flush also writes a
// checkpoint; a checkpoint failure is surfaced on the next Apply.
func (s *Store) Flush() {
	s.mu.Lock()
	s.freezeLocked()
	if !s.bg {
		s.drainLocked()
		s.mu.Unlock()
		if s.wal != nil {
			if err := s.Checkpoint(); err != nil {
				s.setBgErr(err)
			}
		}
		return
	}
	s.mu.Unlock()
	s.signalFlush()
	s.mu.Lock()
	for s.bg && s.bgErr == nil && len(s.view.Load().frozen) > 0 {
		s.cond.Wait()
	}
	if !s.bg {
		// The engine shut down under us (concurrent Close): finish the
		// backlog inline.
		s.drainLocked()
	}
	s.mu.Unlock()
}

// setBgErr records a sticky engine failure and wakes stalled writers
// so they observe it.
func (s *Store) setBgErr(err error) {
	s.mu.Lock()
	if s.bgErr == nil {
		s.bgErr = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// flusher is the background engine: woken by signalFlush (or shutdown),
// it drains the frozen-memtable backlog, cascading compactions and
// publishing a fresh view after each flush.
func (s *Store) flusher() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			s.drainBackground()
			return
		case <-s.flushCh:
			s.drainBackground()
		}
	}
}

// drainBackground flushes every pending frozen memtable, oldest first.
// Engine work (merging, filter builds, device I/O) runs without mu;
// only the view publication takes the write lock. On a durable store
// the drained backlog is folded into one checkpoint at the end, and a
// checkpoint failure parks the store in a sticky error state.
func (s *Store) drainBackground() {
	flushed := false
	for {
		v := s.view.Load()
		if len(v.frozen) == 0 {
			break
		}
		fm := v.frozen[len(v.frozen)-1] // oldest
		s.flushMem(fm)
		s.compact()
		s.mu.Lock()
		s.publishLocked(fm)
		s.mu.Unlock()
		flushed = true
		if s.wal == nil {
			s.finishRetired()
		}
	}
	if flushed && s.wal != nil {
		if err := s.Checkpoint(); err != nil {
			s.setBgErr(err)
		}
	}
}

// drainLocked is the synchronous twin: callers hold mu's write lock for
// the whole flush+compact+publish sequence, so the I/O order is exactly
// the single-threaded engine's.
func (s *Store) drainLocked() {
	for {
		v := s.view.Load()
		if len(v.frozen) == 0 {
			return
		}
		fm := v.frozen[len(v.frozen)-1]
		s.flushMem(fm)
		s.compact()
		s.publishLocked(fm)
	}
}

// publishLocked installs a fresh view: the current frozen backlog minus
// the consumed memtable, plus a snapshot of the engine's tree. Callers
// hold mu's write lock.
func (s *Store) publishLocked(consumed *memRun) {
	v := s.view.Load()
	frozen := v.frozen
	if consumed != nil {
		kept := make([]*memRun, 0, len(frozen))
		for _, fm := range frozen {
			if fm != consumed {
				kept = append(kept, fm)
			}
		}
		frozen = kept
	}
	levels := make([][]*run, len(s.tree))
	for i, level := range s.tree {
		levels[i] = append([]*run(nil), level...)
	}
	s.view.Store(&view{frozen: frozen, levels: levels})
	s.cond.Broadcast()
}
