// Package lsm implements the storage-engine substrate of §3.1: a
// log-structured merge-tree with an in-memory memtable, immutable sorted
// runs on a simulated block device that counts I/Os, leveled compaction
// with a configurable size ratio, and pluggable per-run filters.
//
// The filter policies reproduce the tutorial's storyline:
//
//   - PolicyNone: every point lookup probes every overlapping run — the
//     baseline cost O(levels) I/Os per miss.
//   - PolicyBloom: a Bloom filter per run with uniform bits/key — misses
//     cost O(ε·levels).
//   - PolicyMonkey: Monkey's allocation — lower FPRs for smaller levels,
//     making the sum of FPRs converge so misses cost O(ε) I/Os.
//   - PolicyMaplet: a single global maplet maps each key to the run
//     holding it (Chucky/SlimDB style) — lookups probe ~one run.
//
// Range scans optionally use a per-run range filter (SuRF, Rosetta or
// Grafite built at flush/compaction time) to skip runs whose key range
// matches but whose contents don't (experiment E11).
package lsm

import (
	"context"
	"fmt"
	"sort"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/quotient"
)

// Entry is a key-value record. Tombstones mark deletions until
// compaction discards them.
type Entry struct {
	Key       uint64
	Value     uint64
	Tombstone bool
}

// Device simulates block storage: it stores nothing (runs keep their
// entries in memory) but counts the I/Os a real device would serve. An
// optional fault injector makes those I/Os fallible: reads and writes
// then fail or report detected corruption per the injector's schedule,
// and the Store degrades (retries, then recovers from a replica) instead
// of panicking. Every attempt is charged to Reads/Writes, so a faulty
// run costs strictly more I/O than a healthy one — never a wrong answer.
type Device struct {
	Reads  int
	Writes int
	// Faults, when non-nil, judges every I/O. Transient/permanent
	// outcomes fail the call; bit-flips surface as detected corruption
	// (checksum mismatch); latency outcomes only bump SlowIOs.
	Faults *fault.Injector
	// FailedReads/FailedWrites count individual attempts that faulted.
	FailedReads  int
	FailedWrites int
	// SlowIOs counts attempts that saw injected latency.
	SlowIOs int
	// ReplicaReads/ReplicaWrites count operations that exhausted their
	// retries and fell back to the (always-intact) replica.
	ReplicaReads  int
	ReplicaWrites int
}

// read charges blocks of read I/O and returns the injected outcome.
func (d *Device) read(blocks int) error {
	d.Reads += blocks
	return d.outcome(&d.FailedReads)
}

// write charges blocks of write I/O and returns the injected outcome.
func (d *Device) write(blocks int) error {
	d.Writes += blocks
	return d.outcome(&d.FailedWrites)
}

func (d *Device) outcome(failed *int) error {
	if d.Faults == nil {
		return nil
	}
	o := d.Faults.Next()
	if o.Latency > 0 {
		d.SlowIOs++
	}
	if o.Err != nil {
		*failed++
		return o.Err
	}
	if o.FlipBit >= 0 {
		*failed++
		return fault.ErrCorrupt
	}
	return nil
}

// entriesPerBlock sets the simulated block granularity for write I/O
// accounting.
const entriesPerBlock = 128

// FilterPolicy selects the filtering strategy.
type FilterPolicy int

const (
	// PolicyNone disables filters.
	PolicyNone FilterPolicy = iota
	// PolicyBloom gives every run a Bloom filter with uniform bits/key.
	PolicyBloom
	// PolicyMonkey allocates exponentially lower false-positive rates to
	// smaller levels (Monkey).
	PolicyMonkey
	// PolicyMaplet replaces per-run filters with one global maplet
	// mapping keys to runs (Chucky/SlimDB).
	PolicyMaplet
)

// RangeFilterBuilder constructs a range filter over a run's keys; nil
// disables range filtering.
type RangeFilterBuilder func(keys []uint64) core.RangeFilter

// CompactionPolicy selects the merge strategy (§3.1's design space).
type CompactionPolicy int

const (
	// Leveling keeps one run per level: each flush merges greedily, so
	// reads probe one run per level but writes are rewritten up to T
	// times per level (write amplification O(T·levels)).
	Leveling CompactionPolicy = iota
	// Tiering lets each level accumulate T runs before merging them into
	// one run a level down: write amplification drops to O(levels), at
	// the cost of up to T runs probed per level on reads. This is the
	// trade Dostoevsky and LSM-Bush push further.
	Tiering
	// LazyLeveling (Dostoevsky) tiers every level except the largest,
	// which stays leveled: most of tiering's write savings with
	// leveling's read cost where it matters (the largest level holds
	// most data and most queries bottom out there).
	LazyLeveling
)

// Options configure a Store.
type Options struct {
	MemtableSize int          // entries buffered before flush (default 1024)
	SizeRatio    int          // level capacity ratio T (default 4)
	Policy       FilterPolicy // default PolicyBloom
	BitsPerKey   float64      // Bloom budget per key (default 10)
	// MonkeyBaseFPR is the false-positive rate of the largest level under
	// PolicyMonkey (smaller levels get geometrically lower rates).
	MonkeyBaseFPR float64
	// RangeFilter, when set, is built per run and consulted by Scan.
	RangeFilter RangeFilterBuilder
	// Compaction selects the merge strategy (default Leveling).
	Compaction CompactionPolicy
	// DeviceFaults, when set, is installed on the store's Device so data
	// block I/O fails per its schedule.
	DeviceFaults *fault.Injector
	// FilterFaults, when set, judges every filter-block probe (filters
	// live on storage too). A faulted probe makes the filter unusable for
	// that lookup: the store falls back to probing the run directly,
	// trading extra I/O for correctness.
	FilterFaults *fault.Injector
	// DeviceRetry overrides the retry policy for faulted device I/O
	// (default: 4 attempts, no simulated sleep).
	DeviceRetry *fault.RetryPolicy
}

func (o *Options) fill() {
	if o.MemtableSize == 0 {
		o.MemtableSize = 1024
	}
	if o.SizeRatio == 0 {
		o.SizeRatio = 4
	}
	if o.BitsPerKey == 0 {
		o.BitsPerKey = 10
	}
	if o.MonkeyBaseFPR == 0 {
		o.MonkeyBaseFPR = 0.01
	}
}

// run is an immutable sorted run.
type run struct {
	id      uint64
	entries []Entry // sorted by key, unique keys
	filter  core.Filter
	rangeF  core.RangeFilter
	level   int
}

func (r *run) minKey() uint64 { return r.entries[0].Key }
func (r *run) maxKey() uint64 { return r.entries[len(r.entries)-1].Key }

// find binary-searches the run; the caller has already paid the I/O.
func (r *run) find(key uint64) (Entry, bool) {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Key >= key })
	if i < len(r.entries) && r.entries[i].Key == key {
		return r.entries[i], true
	}
	return Entry{}, false
}

// Store is the LSM-tree.
type Store struct {
	opts     Options
	memtable map[uint64]Entry
	levels   [][]*run // levels[i] holds the runs of level i, newest first
	dev      *Device
	maplet   *quotient.Maplet
	runByID  map[uint64]*run
	// Run ids are recycled from a small pool so they always fit the
	// maplet's 16-bit value width no matter how many flushes occur.
	freeIDs []uint64
	nextID  uint64
	// FilterProbes counts filter consultations (CPU-cost diagnostic).
	FilterProbes int
	// FilterFallbacks counts lookups where a faulted filter probe forced
	// the store to probe runs directly (degraded mode).
	FilterFallbacks int
	// ioRetry retries faulted device I/O before replica recovery.
	ioRetry *fault.Retrier
}

// New returns an empty store.
func New(opts Options) *Store {
	opts.fill()
	retry := fault.RetryPolicy{MaxAttempts: 4, Sleep: fault.NoSleep}
	if opts.DeviceRetry != nil {
		retry = *opts.DeviceRetry
	}
	s := &Store{
		opts:     opts,
		memtable: make(map[uint64]Entry),
		dev:      &Device{Faults: opts.DeviceFaults},
		runByID:  make(map[uint64]*run),
		ioRetry:  fault.NewRetrier(retry),
	}
	if opts.Policy == PolicyMaplet {
		// 16-bit run ids; sized generously and expanded on demand.
		s.maplet = quotient.NewMaplet(12, 12, 16)
	}
	return s
}

// Device exposes the I/O counters.
func (s *Store) Device() *Device { return s.dev }

// devRead performs a fallible read of blocks: faulted attempts are
// retried (each attempt pays its I/O), and exhausted retries recover
// from the replica at a further blocks of cost. It never fails — the
// degraded path trades I/O for correctness.
func (s *Store) devRead(blocks int) {
	if err := s.ioRetry.Do(context.Background(), func(context.Context) error {
		return s.dev.read(blocks)
	}); err != nil {
		s.dev.Reads += blocks
		s.dev.ReplicaReads++
	}
}

// devWrite is devRead's write-side twin.
func (s *Store) devWrite(blocks int) {
	if err := s.ioRetry.Do(context.Background(), func(context.Context) error {
		return s.dev.write(blocks)
	}); err != nil {
		s.dev.Writes += blocks
		s.dev.ReplicaWrites++
	}
}

// probeFilter consults a run's filter block. ok is the filter's answer;
// usable is false when the probe faulted (the caller must treat the run
// as maybe-containing and pay the data I/O).
func (s *Store) probeFilter(contains func() bool) (ok, usable bool) {
	s.FilterProbes++
	if s.opts.FilterFaults != nil {
		if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
			s.FilterFallbacks++
			return false, false
		}
	}
	return contains(), true
}

// Put inserts or updates a key.
func (s *Store) Put(key, value uint64) {
	s.memtable[key] = Entry{Key: key, Value: value}
	s.maybeFlush()
}

// Delete removes a key (via tombstone).
func (s *Store) Delete(key uint64) {
	s.memtable[key] = Entry{Key: key, Tombstone: true}
	s.maybeFlush()
}

func (s *Store) maybeFlush() {
	if len(s.memtable) >= s.opts.MemtableSize {
		s.Flush()
	}
}

// Flush writes the memtable as a new level-0 run and cascades
// compactions.
func (s *Store) Flush() {
	if len(s.memtable) == 0 {
		return
	}
	entries := make([]Entry, 0, len(s.memtable))
	for _, e := range s.memtable {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	s.memtable = make(map[uint64]Entry)
	s.pushRun(entries, 0)
	s.compact()
}

// levelCapacity returns the entry capacity of level i.
func (s *Store) levelCapacity(level int) int {
	c := s.opts.MemtableSize
	for i := 0; i <= level; i++ {
		c *= s.opts.SizeRatio
	}
	return c
}

// ensureLevel grows the level slice.
func (s *Store) ensureLevel(level int) {
	for len(s.levels) <= level {
		s.levels = append(s.levels, nil)
	}
}

// pushRun installs entries at the given level. Under Leveling (or at the
// last level under LazyLeveling) the new entries merge with the level's
// existing run; otherwise the run is appended, newest first.
func (s *Store) pushRun(entries []Entry, level int) {
	s.ensureLevel(level)
	// Lazy leveling merges only at the largest level, and never at level
	// 0 (before any compaction has opened deeper levels, level 0 is
	// trivially "last" and merging there would rewrite it every flush).
	merge := s.opts.Compaction == Leveling ||
		(s.opts.Compaction == LazyLeveling && level > 0 && s.isLastDataLevel(level))
	if merge && len(s.levels[level]) > 0 {
		for _, old := range s.levels[level] {
			entries = s.mergeEntries(entries, old.entries, s.isLastDataLevel(level))
			s.devRead((len(old.entries) + entriesPerBlock - 1) / entriesPerBlock)
			s.retireRun(old)
		}
		s.levels[level] = nil
	}
	r := s.buildRun(entries, level)
	s.levels[level] = append([]*run{r}, s.levels[level]...)
}

// isLastDataLevel reports whether no deeper level currently holds data.
func (s *Store) isLastDataLevel(level int) bool {
	for i := level + 1; i < len(s.levels); i++ {
		if len(s.levels[i]) > 0 {
			return false
		}
	}
	return true
}

// levelEntries counts entries across a level's runs.
func (s *Store) levelEntries(level int) int {
	n := 0
	for _, r := range s.levels[level] {
		n += len(r.entries)
	}
	return n
}

// mergeEntries merges newer over older; tombstones survive unless this is
// the last level.
func (s *Store) mergeEntries(newer, older []Entry, lastLevel bool) []Entry {
	out := make([]Entry, 0, len(newer)+len(older))
	i, j := 0, 0
	for i < len(newer) || j < len(older) {
		var e Entry
		switch {
		case i >= len(newer):
			e = older[j]
			j++
		case j >= len(older):
			e = newer[i]
			i++
		case newer[i].Key < older[j].Key:
			e = newer[i]
			i++
		case newer[i].Key > older[j].Key:
			e = older[j]
			j++
		default:
			e = newer[i] // newer wins
			i++
			j++
		}
		if e.Tombstone && lastLevel {
			continue
		}
		out = append(out, e)
	}
	return out
}

// buildRun constructs the run plus its filters, charging write I/O.
func (s *Store) buildRun(entries []Entry, level int) *run {
	var id uint64
	if n := len(s.freeIDs); n > 0 {
		id = s.freeIDs[n-1]
		s.freeIDs = s.freeIDs[:n-1]
	} else {
		s.nextID++
		if s.nextID >= 1<<16 {
			panic("lsm: run id space exhausted")
		}
		id = s.nextID
	}
	r := &run{id: id, entries: entries, level: level}
	s.devWrite((len(entries) + entriesPerBlock - 1) / entriesPerBlock)
	keys := make([]uint64, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	switch s.opts.Policy {
	case PolicyBloom:
		bf := bloom.NewBits(len(entries), s.opts.BitsPerKey)
		for _, k := range keys {
			bf.Insert(k)
		}
		r.filter = bf
	case PolicyMonkey:
		fpr := s.monkeyFPR(level)
		bf := bloom.New(len(entries), fpr)
		for _, k := range keys {
			bf.Insert(k)
		}
		r.filter = bf
	case PolicyMaplet:
		for _, k := range keys {
			s.mapletPut(k, r.id)
		}
	}
	if s.opts.RangeFilter != nil {
		r.rangeF = s.opts.RangeFilter(keys)
	}
	s.runByID[r.id] = r
	return r
}

// monkeyFPR returns the Monkey-assigned false-positive rate for a level:
// the largest level pays MonkeyBaseFPR; each smaller level pays a factor
// T less, so the series sums to ≈ base·T/(T-1) = O(base).
func (s *Store) monkeyFPR(level int) float64 {
	depth := len(s.levels) - 1 - level
	if depth < 0 {
		depth = 0
	}
	fpr := s.opts.MonkeyBaseFPR
	for i := 0; i < depth; i++ {
		fpr /= float64(s.opts.SizeRatio)
	}
	if fpr < 1e-9 {
		fpr = 1e-9
	}
	return fpr
}

func (s *Store) mapletPut(key, runID uint64) {
	for {
		if err := s.maplet.Put(key, runID); err == nil {
			return
		}
		if err := s.maplet.Expand(); err != nil {
			panic(fmt.Sprintf("lsm: maplet cannot expand: %v", err))
		}
	}
}

// retireRun removes a run's maplet entries (compaction superseded it)
// and recycles its id.
func (s *Store) retireRun(old *run) {
	delete(s.runByID, old.id)
	s.freeIDs = append(s.freeIDs, old.id)
	if s.maplet == nil {
		return
	}
	for _, e := range old.entries {
		// The entry may have been re-pointed already; delete is best
		// effort keyed by (key, old run id).
		_ = s.maplet.Delete(e.Key, old.id)
	}
}

// compact cascades oversized levels downward. Leveling moves a level's
// single run down when it outgrows its capacity; tiering merges a
// level's T runs into one run a level down once T accumulate.
func (s *Store) compact() {
	for level := 0; level < len(s.levels); level++ {
		switch s.opts.Compaction {
		case Leveling:
			if s.levelEntries(level) <= s.levelCapacity(level) {
				continue
			}
			runs := s.levels[level]
			s.levels[level] = nil
			merged := s.drainRuns(runs, s.isLastDataLevel(level))
			s.pushRun(merged, level+1)
		case Tiering:
			if len(s.levels[level]) < s.opts.SizeRatio {
				continue
			}
			runs := s.levels[level]
			s.levels[level] = nil
			merged := s.drainRuns(runs, s.isLastDataLevel(level))
			s.pushRun(merged, level+1)
		case LazyLeveling:
			// Tier every level except the largest; the largest spills to
			// a fresh deeper level when it outgrows its capacity.
			if level > 0 && s.isLastDataLevel(level) {
				if s.levelEntries(level) <= s.levelCapacity(level) {
					continue
				}
			} else if len(s.levels[level]) < s.opts.SizeRatio {
				continue
			}
			runs := s.levels[level]
			s.levels[level] = nil
			merged := s.drainRuns(runs, s.isLastDataLevel(level))
			s.pushRun(merged, level+1)
		}
	}
}

// drainRuns merges runs (newest first) into one entry list, retiring
// them and charging the read I/O of the rewrite.
func (s *Store) drainRuns(runs []*run, lastLevel bool) []Entry {
	var merged []Entry
	for i, r := range runs {
		s.devRead((len(r.entries) + entriesPerBlock - 1) / entriesPerBlock)
		if i == 0 {
			merged = append(merged, r.entries...)
		} else {
			merged = s.mergeEntries(merged, r.entries, lastLevel)
		}
		s.retireRun(r)
	}
	return merged
}

// Get returns the value for key. The boolean reports presence.
func (s *Store) Get(key uint64) (uint64, bool) {
	if e, ok := s.memtable[key]; ok {
		return e.Value, !e.Tombstone
	}
	if s.opts.Policy == PolicyMaplet {
		return s.mapletGet(key)
	}
	for level := 0; level < len(s.levels); level++ {
		for _, r := range s.levels[level] { // newest first
			if len(r.entries) == 0 || key < r.minKey() || key > r.maxKey() {
				continue
			}
			if r.filter != nil {
				// A faulted filter probe cannot rule the run out, so the
				// lookup degrades to paying the data I/O.
				if ok, usable := s.probeFilter(func() bool { return r.filter.Contains(key) }); usable && !ok {
					continue
				}
			}
			s.devRead(1)
			if e, ok := r.find(key); ok {
				return e.Value, !e.Tombstone
			}
		}
	}
	return 0, false
}

// GetBatch performs a batch of point lookups, writing the value and
// presence of keys[i] into values[i] and found[i] (both must be at
// least len(keys) long). Results and I/O accounting are identical to
// calling Get per key; the win is on the filter side: each run's filter
// is probed with the whole surviving key batch through its native
// batched path (hash-once/probe-many) before any data block is touched,
// instead of re-entering the filter once per key.
func (s *Store) GetBatch(keys []uint64, values []uint64, found []bool) {
	_ = values[:len(keys)]
	_ = found[:len(keys)]
	pending := make([]int32, 0, len(keys))
	for i, k := range keys {
		values[i], found[i] = 0, false
		if e, ok := s.memtable[k]; ok {
			values[i], found[i] = e.Value, !e.Tombstone
			continue
		}
		pending = append(pending, int32(i))
	}
	if len(pending) == 0 {
		return
	}
	if s.opts.Policy == PolicyMaplet {
		// The maplet is a point structure routing each key to ~one run;
		// there is no per-run filter to amortize, so the batch devolves
		// to the scalar path per key.
		for _, i := range pending {
			values[i], found[i] = s.mapletGet(keys[i])
		}
		return
	}
	// Scratch for the per-run sub-batches. inRange holds the pending
	// batch positions whose key falls in the run's key range; probeKeys/
	// probeOut hold the (smaller) sub-batch whose filter probe was
	// usable; resolved marks batch positions answered by some run.
	inRange := make([]int32, 0, len(pending))
	mustProbe := make([]bool, 0, len(pending))
	probeKeys := make([]uint64, 0, len(pending))
	probeOut := make([]bool, len(pending))
	resolved := make([]bool, len(keys))
	for level := 0; level < len(s.levels) && len(pending) > 0; level++ {
		for _, r := range s.levels[level] { // newest first
			if len(pending) == 0 {
				break
			}
			if len(r.entries) == 0 {
				continue
			}
			minK, maxK := r.minKey(), r.maxKey()
			inRange = inRange[:0]
			for _, i := range pending {
				if k := keys[i]; k >= minK && k <= maxK {
					inRange = append(inRange, i)
				}
			}
			if len(inRange) == 0 {
				continue
			}
			// Filter pass: judge each key's probe (fault injection is
			// per probe, as in the scalar path), then answer all usable
			// probes with one batched filter call. mustProbe[j] records
			// that inRange[j] needs the data I/O regardless.
			mustProbe = mustProbe[:len(inRange)]
			if r.filter != nil {
				probeKeys = probeKeys[:0]
				for j, i := range inRange {
					s.FilterProbes++
					usable := true
					if s.opts.FilterFaults != nil {
						if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
							s.FilterFallbacks++
							usable = false
						}
					}
					mustProbe[j] = !usable
					if usable {
						probeKeys = append(probeKeys, keys[i])
					}
				}
				core.ContainsBatch(r.filter, probeKeys, probeOut[:len(probeKeys)])
				p := 0
				for j := range inRange {
					if !mustProbe[j] {
						mustProbe[j] = probeOut[p]
						p++
					}
				}
			} else {
				for j := range mustProbe {
					mustProbe[j] = true
				}
			}
			// Data pass: pay one read per surviving key, resolve hits.
			resolvedAny := false
			for j, i := range inRange {
				if !mustProbe[j] {
					continue
				}
				s.devRead(1)
				if e, ok := r.find(keys[i]); ok {
					values[i], found[i] = e.Value, !e.Tombstone
					resolved[i] = true
					resolvedAny = true
				}
			}
			if resolvedAny {
				next := pending[:0]
				for _, i := range pending {
					if !resolved[i] {
						next = append(next, i)
					}
				}
				pending = next
			}
		}
	}
}

// mapletGet probes only the runs the global maplet points to. When the
// maplet block itself cannot be read, the lookup degrades to probing
// every overlapping run (the PolicyNone cost) rather than failing.
func (s *Store) mapletGet(key uint64) (uint64, bool) {
	s.FilterProbes++
	if s.opts.FilterFaults != nil {
		if o := s.opts.FilterFaults.Next(); o.Err != nil || o.FlipBit >= 0 {
			s.FilterFallbacks++
			return s.probeAllRuns(key)
		}
	}
	candidates := s.maplet.Get(key)
	// Probe newer runs first (higher id = newer).
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	seen := map[uint64]bool{}
	for _, id := range candidates {
		if seen[id] {
			continue
		}
		seen[id] = true
		r, ok := s.runByID[id]
		if !ok {
			continue // stale pointer from a fingerprint collision
		}
		s.devRead(1)
		if e, ok := r.find(key); ok {
			return e.Value, !e.Tombstone
		}
	}
	return 0, false
}

// probeAllRuns is the filterless fallback: binary-search every run whose
// key range covers key, newest first, paying one read per probed run.
func (s *Store) probeAllRuns(key uint64) (uint64, bool) {
	for level := 0; level < len(s.levels); level++ {
		for _, r := range s.levels[level] { // newest first
			if len(r.entries) == 0 || key < r.minKey() || key > r.maxKey() {
				continue
			}
			s.devRead(1)
			if e, ok := r.find(key); ok {
				return e.Value, !e.Tombstone
			}
		}
	}
	return 0, false
}

// Scan returns all live entries with keys in [lo, hi], using range
// filters (when configured) to skip runs.
func (s *Store) Scan(lo, hi uint64) []Entry {
	// Sources in newest-first order: memtable, then levels top-down.
	// First writer per key wins.
	var sources [][]Entry
	var mem []Entry
	for k, e := range s.memtable {
		if k >= lo && k <= hi {
			mem = append(mem, e)
		}
	}
	sources = append(sources, mem)
	for level := 0; level < len(s.levels); level++ {
		for _, r := range s.levels[level] { // newest first
			if len(r.entries) == 0 || hi < r.minKey() || lo > r.maxKey() {
				continue
			}
			if r.rangeF != nil {
				if ok, usable := s.probeFilter(func() bool { return r.rangeF.MayContainRange(lo, hi) }); usable && !ok {
					continue
				}
			}
			s.devRead(1)
			i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Key >= lo })
			j := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Key > hi })
			sources = append(sources, r.entries[i:j])
		}
	}
	merged := map[uint64]Entry{}
	for _, entries := range sources {
		for _, e := range entries {
			if _, ok := merged[e.Key]; !ok {
				merged[e.Key] = e
			}
		}
	}
	out := make([]Entry, 0, len(merged))
	for _, e := range merged {
		if !e.Tombstone {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Levels returns the number of allocated levels.
func (s *Store) Levels() int { return len(s.levels) }

// Runs returns the total number of live runs (reads probe up to this
// many under tiering).
func (s *Store) Runs() int {
	n := 0
	for _, level := range s.levels {
		n += len(level)
	}
	return n
}

// FilterMemoryBits returns the total filter footprint (per-run filters or
// the global maplet).
func (s *Store) FilterMemoryBits() int {
	if s.maplet != nil {
		return s.maplet.SizeBits()
	}
	total := 0
	for _, level := range s.levels {
		for _, r := range level {
			if r.filter != nil {
				total += r.filter.SizeBits()
			}
		}
	}
	return total
}

// Len returns the number of live entries (exact; walks all runs).
func (s *Store) Len() int {
	keys := map[uint64]bool{}
	for k, e := range s.memtable {
		if !e.Tombstone {
			keys[k] = true
		} else {
			keys[k] = false
		}
	}
	for level := 0; level < len(s.levels); level++ {
		for _, r := range s.levels[level] { // newest first
			for _, e := range r.entries {
				if _, ok := keys[e.Key]; !ok {
					keys[e.Key] = !e.Tombstone
				}
			}
		}
	}
	n := 0
	for _, live := range keys {
		if live {
			n++
		}
	}
	return n
}
