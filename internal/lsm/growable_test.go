package lsm

import (
	"errors"
	"strings"
	"testing"

	"beyondbloom/internal/fault"
	"beyondbloom/internal/taffy"
	"beyondbloom/internal/workload"
)

// TestGrowableRunFilters checks the Options.GrowableFilters knob: point
// lookups stay exact, absent keys stay mostly absent, and every run
// filter the engine built is actually the growable type.
func TestGrowableRunFilters(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"bloom", Options{Policy: PolicyBloom, MemtableSize: 256, GrowableFilters: true}},
		{"monkey", Options{Policy: PolicyMonkey, MemtableSize: 256, GrowableFilters: true}},
		{"monkey-tiering", Options{Policy: PolicyMonkey, MemtableSize: 256, Compaction: Tiering, GrowableFilters: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.opts)
			keys := fillStore(t, s, 10000, 23)
			for i, k := range keys {
				v, ok := s.Get(k)
				if !ok || v != uint64(i) {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, i)
				}
			}
			for _, k := range workload.DisjointKeys(1000, 23) {
				if _, ok := s.Get(k); ok {
					t.Fatal("phantom key with growable run filters")
				}
			}
			v := s.view.Load()
			nRuns := 0
			for _, level := range v.levels {
				for _, r := range level {
					if r.filter == nil {
						continue
					}
					nRuns++
					if _, ok := r.filter.(*taffy.Filter); !ok {
						t.Fatalf("run %d filter is %T, want *taffy.Filter", r.id, r.filter)
					}
				}
			}
			if nRuns == 0 {
				t.Fatal("no run filters built; workload never flushed")
			}
		})
	}
}

// TestGrowableReopenIdenticalAnswersAndIO is the durability acceptance
// check for the growable flush path: a reopened growable store answers
// identically to the original with the identical I/O trajectory, and
// the manifest (not the caller's Options) supplies the knob.
func TestGrowableReopenIdenticalAnswersAndIO(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"bloom", Options{Policy: PolicyBloom, MemtableSize: 256, GrowableFilters: true}},
		{"monkey", Options{Policy: PolicyMonkey, MemtableSize: 256, GrowableFilters: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.opts)
			keys := fillStore(t, s, 20000, 29)
			for _, k := range keys[:500] {
				s.Delete(k)
			}
			s.Put(987654321, 7)

			// Reopen with empty Options: GrowableFilters must come back
			// from the manifest, not the caller.
			got := reopen(t, s, Options{})
			if !got.opts.GrowableFilters {
				t.Fatal("reopened store lost the GrowableFilters flag")
			}
			if got.Levels() != s.Levels() || got.Runs() != s.Runs() {
				t.Fatalf("shape: got %d levels/%d runs, want %d/%d", got.Levels(), got.Runs(), s.Levels(), s.Runs())
			}
			if got.FilterMemoryBits() != s.FilterMemoryBits() {
				t.Fatalf("FilterMemoryBits: got %d, want %d", got.FilterMemoryBits(), s.FilterMemoryBits())
			}
			probe := append(append([]uint64{}, keys...), workload.DisjointKeys(5000, 29)...)
			for _, k := range probe {
				v1, ok1 := s.Get(k)
				v2, ok2 := got.Get(k)
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("Get(%d): original (%d,%v), reopened (%d,%v)", k, v1, ok1, v2, ok2)
				}
			}
			if got.Device().Reads() != s.Device().Reads() {
				t.Fatalf("lookups diverged: %d reads vs %d", got.Device().Reads(), s.Device().Reads())
			}
			if got.FilterProbes() != s.FilterProbes() {
				t.Fatalf("filter probes diverged: %d vs %d", got.FilterProbes(), s.FilterProbes())
			}
			// The store must keep working after reopen.
			got.Put(42, 4242)
			if v, ok := got.Get(42); !ok || v != 4242 {
				t.Fatal("post-reopen write lost")
			}
		})
	}
}

// TestOpenStoreRejectsGrowableMismatch: asking for growable run filters
// on a store saved with fixed-capacity ones is a structural conflict,
// not something OpenStore may silently paper over.
func TestOpenStoreRejectsGrowableMismatch(t *testing.T) {
	s := New(Options{Policy: PolicyBloom, MemtableSize: 256})
	fillStore(t, s, 5000, 31)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	_, err := OpenStore(dir, Options{GrowableFilters: true})
	if err == nil {
		t.Fatal("OpenStore accepted GrowableFilters=true on a fixed-filter store")
	}
	if !strings.Contains(err.Error(), "fixed-capacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// crashOptsGrowable mirrors crashOpts with growable run filters, so the
// crash sweep exercises taffy filter files through every crash window.
func crashOptsGrowable(mode Durability, fs fault.FS) Options {
	o := crashOpts(mode, fs)
	o.GrowableFilters = true
	return o
}

// runToCrashGrowable is runToCrash with the growable knob set.
func runToCrashGrowable(fs *fault.CrashFS, mode Durability, script []Entry) (acked int, openErr error) {
	s, err := OpenStore("db", crashOptsGrowable(mode, fs))
	if err != nil {
		return 0, err
	}
	for i, e := range script {
		if err := s.Apply(e); err != nil {
			return i, nil
		}
	}
	s.Close()
	return len(script), nil
}

// TestGrowableCrashSweep runs the full crash-point sweep with growable
// run filters: the durability contract must be indifferent to which
// filter type accompanies each run on disk.
func TestGrowableCrashSweep(t *testing.T) {
	script := crashScript()
	models := crashModels(script)
	const mode = DurabilityGroup
	dry := fault.NewCrashFS(17)
	acked, openErr := runToCrashGrowable(dry, mode, script)
	if openErr != nil || acked != len(script) {
		t.Fatalf("dry run: acked %d, open err %v", acked, openErr)
	}
	total := dry.Ops()
	if total < 100 {
		t.Fatalf("workload too small to exercise crash windows: %d FS ops", total)
	}
	t.Logf("sweeping %d crash points", total)
	for k := 1; k <= total; k++ {
		fs := fault.NewCrashFS(17)
		fs.CrashAfter(k)
		acked, openErr := runToCrashGrowable(fs, mode, script)
		if openErr != nil && !errors.Is(openErr, fault.ErrCrashed) {
			t.Fatalf("crash point %d: unexpected open failure %v", k, openErr)
		}
		if !fs.Crashed() {
			t.Fatalf("crash point %d never fired (only %d ops this run)", k, fs.Ops())
		}
		r, err := OpenStore("db", crashOptsGrowable(mode, fs.Recover()))
		if err != nil {
			t.Fatalf("crash point %d: recovery failed: %v", k, err)
		}
		state := dumpState(r)
		lo := acked
		if openErr != nil {
			lo = 0
		}
		hi := acked + 1
		if hi > len(script) {
			hi = len(script)
		}
		if i := matchPrefix(state, models, lo, hi); i < 0 {
			t.Fatalf("crash point %d: recovered state %v matches no script prefix in [%d, %d] (acked %d)",
				k, state, lo, hi, acked)
		}
	}
}
