package bloom

import (
	"beyondbloom/internal/core"
)

// Scalable is a scalable Bloom filter (Almeida et al., §2.2): a chain of
// Bloom filters with geometrically growing capacities and geometrically
// tightening false-positive rates, so the compound FPR converges to a
// fixed budget no matter how far the set grows. It is the classic
// "chain of filters" answer to expansion; its cost, which experiment E3
// measures, is that queries must probe every filter in the chain.
type Scalable struct {
	stages     []*Filter
	stageCap   []int
	growth     int     // capacity growth factor per stage
	tightening float64 // per-stage FPR multiplier (r < 1)
	stageEps   float64 // FPR of the next stage to allocate
	initialCap int
	n          int
}

// NewScalable returns a scalable Bloom filter starting at initialCap keys
// with a compound false-positive budget epsilon. Stage i gets capacity
// initialCap*2^i and FPR epsilon*(1-r)*r^i with tightening ratio r=0.5,
// so the series sums to epsilon.
func NewScalable(initialCap int, epsilon float64) *Scalable {
	if initialCap < 1 {
		initialCap = 1
	}
	const r = 0.5
	return &Scalable{
		growth:     2,
		tightening: r,
		stageEps:   epsilon * (1 - r),
		initialCap: initialCap,
	}
}

func (s *Scalable) addStage() {
	cap := s.initialCap
	for range s.stages {
		cap *= s.growth
	}
	s.stages = append(s.stages, New(cap, s.stageEps))
	s.stageCap = append(s.stageCap, cap)
	s.stageEps *= s.tightening
}

// Insert adds key, opening a new stage when the current one reaches its
// design capacity.
func (s *Scalable) Insert(key uint64) error {
	if len(s.stages) == 0 || s.stages[len(s.stages)-1].Len() >= s.stageCap[len(s.stages)-1] {
		s.addStage()
	}
	s.n++
	return s.stages[len(s.stages)-1].Insert(key)
}

// Contains probes every stage in the chain (the linear query cost the
// tutorial attributes to chained expansion).
func (s *Scalable) Contains(key uint64) bool {
	for _, st := range s.stages {
		if st.Contains(key) {
			return true
		}
	}
	return false
}

// Stages returns the current chain length (query cost in probes).
func (s *Scalable) Stages() int { return len(s.stages) }

// Len returns the number of inserted keys.
func (s *Scalable) Len() int { return s.n }

// SizeBits returns the total footprint of all stages.
func (s *Scalable) SizeBits() int {
	total := 0
	for _, st := range s.stages {
		total += st.SizeBits()
	}
	return total
}

var _ core.MutableFilter = (*Scalable)(nil)
