package bloom

import (
	"fmt"

	"beyondbloom/internal/core"
)

// Scalable is a scalable Bloom filter (Almeida et al., §2.2): a chain of
// Bloom filters with geometrically growing capacities and geometrically
// tightening false-positive rates, so the compound FPR converges to a
// fixed budget no matter how far the set grows. It is the classic
// "chain of filters" answer to expansion; its cost, which experiments E3
// and E23 measure, is that queries must probe every filter in the chain.
type Scalable struct {
	stages     []*Filter
	stageCap   []int
	growth     int     // capacity growth factor per stage
	tightening float64 // per-stage FPR multiplier (r < 1)
	stageEps   float64 // FPR of the next stage to allocate
	initialCap int
	epsilon    float64 // compound FPR budget the chain converges to
	n          int
}

// scalableTightening is the stage-FPR ratio r: stage i gets FPR
// epsilon*(1-r)*r^i, summing to epsilon.
const scalableTightening = 0.5

// NewScalable returns a scalable Bloom filter starting at initialCap keys
// with a compound false-positive budget epsilon. Stage i gets capacity
// initialCap*2^i and FPR epsilon*(1-r)*r^i with tightening ratio r=0.5.
func NewScalable(initialCap int, epsilon float64) (*Scalable, error) {
	if initialCap < 1 {
		return nil, fmt.Errorf("bloom: scalable initial capacity %d must be positive", initialCap)
	}
	if !(epsilon > 0 && epsilon < 1) {
		return nil, fmt.Errorf("bloom: scalable FPR budget %v outside (0, 1)", epsilon)
	}
	return &Scalable{
		growth:     2,
		tightening: scalableTightening,
		stageEps:   epsilon * (1 - scalableTightening),
		initialCap: initialCap,
		epsilon:    epsilon,
	}, nil
}

// ScalableFromSpec builds an empty scalable filter from its construction
// parameters: Spec.N is the initial capacity and Spec.BitsPerKey carries
// the compound ε budget (see core.Spec).
func ScalableFromSpec(s core.Spec) (*Scalable, error) {
	if s.Type != core.TypeScalableBloom {
		return nil, fmt.Errorf("bloom: spec type %d is not TypeScalableBloom", s.Type)
	}
	return NewScalable(s.N, s.BitsPerKey)
}

func (s *Scalable) addStage() {
	cap := s.initialCap
	for range s.stages {
		cap *= s.growth
	}
	s.stages = append(s.stages, New(cap, s.stageEps))
	s.stageCap = append(s.stageCap, cap)
	s.stageEps *= s.tightening
}

// Insert adds key, opening a new stage when the current one reaches its
// design capacity. It never fails: growth is a new chain link.
func (s *Scalable) Insert(key uint64) error {
	if len(s.stages) == 0 || s.stages[len(s.stages)-1].Len() >= s.stageCap[len(s.stages)-1] {
		s.addStage()
	}
	s.n++
	return s.stages[len(s.stages)-1].Insert(key)
}

// Contains probes every stage in the chain (the linear query cost the
// tutorial attributes to chained expansion).
func (s *Scalable) Contains(key uint64) bool {
	for _, st := range s.stages {
		if st.Contains(key) {
			return true
		}
	}
	return false
}

// ContainsBatch probes every key, writing Contains(keys[i]) into out[i]
// (see core.BatchFilter). Per chunk it batches the whole chain stage by
// stage, compacting to the not-yet-found survivors between stages, so
// the common case — most keys answered by the newest stages — costs one
// batched pass instead of len(chain) scalar probes. It allocates
// nothing.
func (s *Scalable) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	var sub [core.BatchChunk]uint64
	var res [core.BatchChunk]bool
	var live [core.BatchChunk]uint16
	for base := 0; base < len(keys); base += core.BatchChunk {
		chunk := keys[base:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[base : base+len(chunk)]
		nl := len(chunk)
		for i := range chunk {
			live[i] = uint16(i)
			co[i] = false
		}
		// Newest stage first: it holds the most recent (and in many
		// workloads the most probed) keys, shrinking the survivor set
		// fastest.
		for si := len(s.stages) - 1; si >= 0 && nl > 0; si-- {
			for j := 0; j < nl; j++ {
				sub[j] = chunk[live[j]]
			}
			s.stages[si].ContainsBatch(sub[:nl], res[:nl])
			k := 0
			for j := 0; j < nl; j++ {
				if res[j] {
					co[live[j]] = true
				} else {
					live[k] = live[j]
					k++
				}
			}
			nl = k
		}
	}
}

// Stages returns the current chain length (query cost in probes).
func (s *Scalable) Stages() int { return len(s.stages) }

// Expansions returns the number of capacity doublings: chain links
// opened beyond the first.
func (s *Scalable) Expansions() int {
	if len(s.stages) == 0 {
		return 0
	}
	return len(s.stages) - 1
}

// FPRBudget returns the compound false-positive budget ε the tightening
// series converges to.
func (s *Scalable) FPRBudget() float64 { return s.epsilon }

// Len returns the number of inserted keys.
func (s *Scalable) Len() int { return s.n }

// SizeBits returns the total footprint of all stages.
func (s *Scalable) SizeBits() int {
	total := 0
	for _, st := range s.stages {
		total += st.SizeBits()
	}
	return total
}

var (
	_ core.GrowableFilter = (*Scalable)(nil)
	_ core.BatchFilter    = (*Scalable)(nil)
)
