package bloom

import (
	"math"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Counting is a counting Bloom filter: each of the m positions holds a
// fixed-width counter instead of a bit, so deletions and multiplicity
// queries are supported. As the tutorial notes (§2.6), fixed-width
// counters can saturate; a saturated counter is never decremented again
// (it "sticks"), which protects against false negatives but makes later
// counts at that cell permanently overestimate, and deletes elsewhere can
// no longer restore the advertised error rate. Saturations returns how
// many cells have stuck so callers can trigger RebuildWider.
type Counting struct {
	counters   *bitvec.Packed
	m          uint64
	k          uint
	width      uint // counter width in bits
	maxCount   uint64
	seed       uint64
	saturated  int
	totalCount uint64 // total multiplicity inserted minus removed
}

// NewCounting returns a counting Bloom filter sized for n distinct keys
// at false positive rate epsilon with counterWidth-bit counters
// (typically 4, per the classic construction).
func NewCounting(n int, epsilon float64, counterWidth uint) *Counting {
	if counterWidth == 0 || counterWidth > 32 {
		panic("bloom: counter width must be in [1,32]")
	}
	bitsPerKey := core.BloomBitsPerKey(epsilon)
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	if m < 64 {
		m = 64
	}
	return &Counting{
		counters: bitvec.NewPacked(int(m), counterWidth),
		m:        m,
		k:        uint(core.BloomOptimalK(bitsPerKey)),
		width:    counterWidth,
		maxCount: (1 << counterWidth) - 1,
		seed:     0x5EEDC0,
	}
}

func (c *Counting) positions(key uint64, fn func(pos int)) {
	h1, h2 := hashutil.SplitHash(hashutil.MixSeed(key, c.seed))
	for i := uint(0); i < c.k; i++ {
		fn(int(hashutil.Reduce(hashutil.KHash(h1, h2, i), c.m)))
	}
}

// Add inserts delta occurrences of key.
func (c *Counting) Add(key uint64, delta uint64) error {
	c.positions(key, func(pos int) {
		v := c.counters.Get(pos)
		nv := v + delta
		if nv > c.maxCount || nv < v {
			if v != c.maxCount {
				c.saturated++
			}
			nv = c.maxCount
		}
		c.counters.Set(pos, nv)
	})
	c.totalCount += delta
	return nil
}

// Insert adds one occurrence of key (core.MutableFilter).
func (c *Counting) Insert(key uint64) error { return c.Add(key, 1) }

// Remove deletes delta occurrences of key. Saturated counters are left
// untouched (decrementing them could create false negatives); this is the
// undercount hazard the tutorial describes.
func (c *Counting) Remove(key uint64, delta uint64) error {
	c.positions(key, func(pos int) {
		v := c.counters.Get(pos)
		if v == c.maxCount {
			return // stuck
		}
		if v < delta {
			v = delta // clamp; indicates a delete of a never-inserted key
		}
		c.counters.Set(pos, v-delta)
	})
	if c.totalCount >= delta {
		c.totalCount -= delta
	}
	return nil
}

// Delete removes one occurrence of key (core.DeletableFilter).
func (c *Counting) Delete(key uint64) error { return c.Remove(key, 1) }

// Count returns the estimated multiplicity of key: the minimum over its
// counter cells (the count-min style bound; never an underestimate while
// no counter involved has saturated-and-stuck below the true count).
func (c *Counting) Count(key uint64) uint64 {
	min := c.maxCount + 1
	c.positions(key, func(pos int) {
		if v := c.counters.Get(pos); v < min {
			min = v
		}
	})
	return min
}

// Contains reports whether key may be present (count > 0).
func (c *Counting) Contains(key uint64) bool { return c.Count(key) > 0 }

// Saturations returns the number of counter-saturation events so far.
func (c *Counting) Saturations() int { return c.saturated }

// SizeBits returns the footprint in bits.
func (c *Counting) SizeBits() int { return c.counters.SizeBits() }

// RebuildWider returns a new counting filter with counters one bit wider,
// repopulated from the exact multiset the caller supplies. This is the
// tutorial's remedy for saturation: "rebuilding the entire data structure
// with larger counters whenever one of the counters saturates".
func (c *Counting) RebuildWider(exact map[uint64]uint64) *Counting {
	nw := &Counting{
		counters: bitvec.NewPacked(int(c.m), c.width+1),
		m:        c.m,
		k:        c.k,
		width:    c.width + 1,
		maxCount: (1 << (c.width + 1)) - 1,
		seed:     c.seed,
	}
	for k, cnt := range exact {
		nw.Add(k, cnt)
	}
	return nw
}

var (
	_ core.CountingFilter  = (*Counting)(nil)
	_ core.DeletableFilter = (*Counting)(nil)
)
