package bloom

import (
	"fmt"
	"math"
	"math/bits"

	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// blockWords is the size of one probe block in 64-bit words: 8 words =
// 512 bits = one cache line on every mainstream CPU.
const blockWords = 8

// blockedMaxK caps the hash functions of a blocked filter. All probes
// share one 512-bit block, so beyond ~8 probes the marginal FPR gain is
// eaten by intra-block collisions — and 8 probes consume the 72 hash
// bits two mixes provide (9 bits each to address 512 positions).
const blockedMaxK = 8

// Blocked is a cache-line-blocked Bloom filter (Putze, Sanders &
// Singler): one hash picks a 512-bit block and all k probe bits land
// inside it, so a negative lookup costs one cache miss instead of up to
// k. The price is a slightly higher false-positive rate than a classic
// Bloom filter at equal bits/key, because keys are balls-into-bins
// distributed over blocks and the occasional overfull block saturates
// locally (≈0.5-1 extra bit/key to match a classic filter's ε; see
// DESIGN.md).
type Blocked struct {
	spec      core.Spec // construction parameters (capacity, bits/key, seed)
	words     []uint64
	numBlocks uint64
	k         uint
	n         int
}

// NewBlocked returns a blocked Bloom filter sized for n keys at the
// given bits-per-key budget.
func NewBlocked(n int, bitsPerKey float64) *Blocked {
	return NewBlockedSeeded(n, bitsPerKey, 0xB10CB10000000001)
}

// NewBlockedSeeded is NewBlocked with an explicit hash seed (see
// NewBitsSeeded for when layered structures need distinct seeds).
func NewBlockedSeeded(n int, bitsPerKey float64, seed uint64) *Blocked {
	f, err := BlockedFromSpec(core.Spec{Type: core.TypeBlockedBloom, N: n, BitsPerKey: bitsPerKey, Seed: seed})
	if err != nil {
		panic(err) // unreachable for the budgets the constructors pass
	}
	return f
}

// BlockedFromSpec builds an empty blocked Bloom filter from its
// construction parameters (see bloom.FromSpec).
func BlockedFromSpec(s core.Spec) (*Blocked, error) {
	if s.Type != core.TypeBlockedBloom {
		return nil, fmt.Errorf("bloom: spec type %d is not TypeBlockedBloom", s.Type)
	}
	if s.N < 1 {
		s.N = 1
	}
	if !(s.BitsPerKey > 0) || s.BitsPerKey > 1024 {
		return nil, fmt.Errorf("bloom: bits per key %v out of range", s.BitsPerKey)
	}
	totalBits := math.Ceil(float64(s.N) * s.BitsPerKey)
	numBlocks := uint64(math.Ceil(totalBits / (blockWords * 64)))
	if numBlocks < 1 {
		numBlocks = 1
	}
	k := uint(core.BloomOptimalK(s.BitsPerKey))
	if k > blockedMaxK {
		k = blockedMaxK
	}
	return &Blocked{
		spec:      s,
		words:     make([]uint64, numBlocks*blockWords),
		numBlocks: numBlocks,
		k:         k,
	}, nil
}

// Spec returns the filter's construction parameters.
func (f *Blocked) Spec() core.Spec { return f.spec }

// K returns the number of probe bits per key.
func (f *Blocked) K() uint { return f.k }

// hashState derives the block's base word index and the two mixed words
// the probe positions are cut from: probe i takes 9 bits (a position in
// [0,512)) from g1 for i < 7 and from g2 beyond.
func (f *Blocked) hashState(key uint64) (base uint64, g1, g2 uint64) {
	h := hashutil.MixSeed(key, f.spec.Seed)
	base = hashutil.Reduce(h, f.numBlocks) * blockWords
	g1 = hashutil.Mix64(h + 1)
	g2 = hashutil.Mix64(h + 2)
	return
}

// probePos returns probe i's bit position within the block.
func probePos(g1, g2 uint64, i uint) uint64 {
	if i < 7 {
		return g1 >> (9 * i) & 511
	}
	return g2 >> (9 * (i - 7)) & 511
}

// Insert adds key. It never fails; over-inserting degrades the
// false-positive rate like a classic Bloom filter, only block-locally.
func (f *Blocked) Insert(key uint64) error {
	base, g1, g2 := f.hashState(key)
	for i := uint(0); i < f.k; i++ {
		pos := probePos(g1, g2, i)
		f.words[base+pos>>6] |= 1 << (pos & 63)
	}
	f.n++
	return nil
}

// Contains reports whether key may have been inserted.
func (f *Blocked) Contains(key uint64) bool {
	base, g1, g2 := f.hashState(key)
	for i := uint(0); i < f.k; i++ {
		pos := probePos(g1, g2, i)
		if f.words[base+pos>>6]>>(pos&63)&1 == 0 {
			return false
		}
	}
	return true
}

// ContainsBatch probes every key (see core.BatchFilter). Hash state for
// a chunk is computed up front; a pure load loop then fetches every
// key's first probe word — one load per key, no branches between them,
// so each key's single potential cache miss is in flight at once — and
// a fully branchless resolve loop finishes the remaining probes out of
// the now-warm cache lines, AND-ing all k probe bits arithmetically.
// Resolving without an early exit does a few redundant L1 loads for
// keys whose first probe already missed, but removes the 50/50
// data-dependent branch whose mispredictions would flush the very
// pipeline the staged loads are trying to fill.
func (f *Blocked) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	words := f.words
	var bases, g1s, g2s, w0s [core.BatchChunk]uint64
	for start := 0; start < len(keys); start += core.BatchChunk {
		chunk := keys[start:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[start : start+len(chunk)]
		for i, k := range chunk {
			bases[i], g1s[i], g2s[i] = f.hashState(k)
		}
		for i := range chunk {
			w0s[i] = words[bases[i]+(g1s[i]&511)>>6]
		}
		k := f.k
		for i := range chunk {
			base, g1, g2 := bases[i], g1s[i], g2s[i]
			// Reslicing to the 8-word block lets the compiler prove
			// every pos>>6 index in range and drop the bounds checks
			// that would otherwise dominate this L1-resident loop.
			blk := words[base : base+blockWords : base+blockWords]
			hit := w0s[i] >> (g1 & 63)
			g := g1 >> 9
			for j := uint(1); j < k; j++ {
				pos := g & 511
				hit &= blk[pos>>6] >> (pos & 63)
				g >>= 9
				if j == 6 {
					g = g2 // probes 7+ take their 9 bits from the second mix
				}
			}
			co[i] = hit&1 != 0
		}
	}
}

// Len returns the number of inserted keys.
func (f *Blocked) Len() int { return f.n }

// SizeBits returns the filter's footprint in bits.
func (f *Blocked) SizeBits() int { return len(f.words) * 64 }

// FillRatio returns the fraction of set bits (diagnostic).
func (f *Blocked) FillRatio() float64 {
	ones := 0
	for _, w := range f.words {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(len(f.words)*64)
}

var (
	_ core.MutableFilter = (*Blocked)(nil)
	_ core.BatchFilter   = (*Blocked)(nil)
)
