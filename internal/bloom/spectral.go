package bloom

import (
	"math"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Spectral is a spectral-Bloom-style counting filter for skewed
// multisets (§2.6). It keeps narrow base counters and applies the
// minimum-increase (MI) heuristic: on insertion only the cells currently
// holding the minimum are incremented, which keeps small counters small
// under skew. Counts too large for the base width spill into an overflow
// table keyed by the cell index — standing in for the original's
// variable-width counter encoding while preserving its space behaviour
// on skewed input (few heavy hitters pay for big counters; the long tail
// stays narrow).
//
// Like the original spectral Bloom filter, Spectral supports deletions
// only of keys known to be present and may overestimate counts.
type Spectral struct {
	counters *bitvec.Packed
	overflow map[int]uint64 // cell -> full count, when >= baseMax
	m        uint64
	k        uint
	baseMax  uint64
	seed     uint64
}

// NewSpectral returns a spectral filter sized for n distinct keys at
// false-positive rate epsilon with baseWidth-bit base counters
// (typically 2-4 bits).
func NewSpectral(n int, epsilon float64, baseWidth uint) *Spectral {
	if baseWidth == 0 || baseWidth > 16 {
		panic("bloom: base width must be in [1,16]")
	}
	bitsPerKey := core.BloomBitsPerKey(epsilon)
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	if m < 64 {
		m = 64
	}
	return &Spectral{
		counters: bitvec.NewPacked(int(m), baseWidth),
		overflow: make(map[int]uint64),
		m:        m,
		k:        uint(core.BloomOptimalK(bitsPerKey)),
		baseMax:  (1 << baseWidth) - 1, // baseMax means "see overflow table"
		seed:     0x5EED5BEC,
	}
}

func (s *Spectral) cells(key uint64) []int {
	h1, h2 := hashutil.SplitHash(hashutil.MixSeed(key, s.seed))
	cells := make([]int, s.k)
	for i := uint(0); i < s.k; i++ {
		cells[i] = int(hashutil.Reduce(hashutil.KHash(h1, h2, i), s.m))
	}
	return cells
}

func (s *Spectral) cellCount(pos int) uint64 {
	v := s.counters.Get(pos)
	if v == s.baseMax {
		return s.overflow[pos]
	}
	return v
}

func (s *Spectral) setCellCount(pos int, v uint64) {
	if v >= s.baseMax {
		s.counters.Set(pos, s.baseMax)
		s.overflow[pos] = v
	} else {
		s.counters.Set(pos, v)
		delete(s.overflow, pos)
	}
}

// Add inserts delta occurrences of key using the minimum-increase
// heuristic. A bulk delta is equivalent to delta sequential unit MI
// increments, which leaves each cell at max(cell, min+delta): cells
// already above min+delta are untouched, everything lower is pulled up.
// (Raising only cells exactly at the minimum would underestimate for
// delta > 1: with cells (0,3) and delta 5 the estimate would read 3.)
func (s *Spectral) Add(key uint64, delta uint64) error {
	cells := s.cells(key)
	min := s.cellCount(cells[0])
	for _, c := range cells[1:] {
		if v := s.cellCount(c); v < min {
			min = v
		}
	}
	target := min + delta
	for _, c := range cells {
		if s.cellCount(c) < target {
			s.setCellCount(c, target)
		}
	}
	return nil
}

// Insert adds one occurrence of key.
func (s *Spectral) Insert(key uint64) error { return s.Add(key, 1) }

// Remove is unsupported: the minimum-increase heuristic sacrifices
// deletability (a cell skipped at insert time cannot safely be
// decremented later), exactly as in the original spectral Bloom filter's
// MI variant. It returns core.ErrImmutable.
func (s *Spectral) Remove(key uint64, delta uint64) error {
	return core.ErrImmutable
}

// Count returns the estimated multiplicity: the minimum over the key's
// cells, which with MI updates is a tight overestimate.
func (s *Spectral) Count(key uint64) uint64 {
	cells := s.cells(key)
	min := s.cellCount(cells[0])
	for _, c := range cells[1:] {
		if v := s.cellCount(c); v < min {
			min = v
		}
	}
	return min
}

// Contains reports whether key may be present.
func (s *Spectral) Contains(key uint64) bool { return s.Count(key) > 0 }

// SizeBits returns the footprint: base counters plus the overflow
// region. The Go map is an implementation convenience standing in for
// the original's variable-width counter encoding, so each overflow entry
// is charged what that encoding would pay: its counter's log2 width plus
// a small per-entry header (position coding + slack), rather than the
// map's actual machine cost.
func (s *Spectral) SizeBits() int {
	bits := s.counters.SizeBits()
	for _, c := range s.overflow {
		width := 1
		for c>>uint(width) != 0 {
			width++
		}
		bits += width + 8
	}
	return bits
}

var _ core.CountingFilter = (*Spectral)(nil)
