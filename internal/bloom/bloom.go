// Package bloom implements the Bloom filter family surveyed by the
// tutorial: the classic Bloom filter (§2, semi-dynamic), the counting
// Bloom filter with fixed-width counters, saturation detection and
// rebuild (§2.6), a spectral-style variant with the minimum-increase
// heuristic and an overflow table for skewed multisets (§2.6), and the
// scalable Bloom filter — a chain of geometrically growing filters with
// tightening false-positive rates (§2.2).
package bloom

import (
	"fmt"
	"math"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Filter is a classic Bloom filter over uint64 keys. It is semi-dynamic:
// insertions are supported, deletions are not, and the target capacity
// must be known at construction for the FPR guarantee to hold.
type Filter struct {
	spec core.Spec // construction parameters (capacity, bits/key, seed)
	bits *bitvec.Vector
	m    uint64 // number of bits
	k    uint   // hash functions
	n    int    // inserted keys (informational)
}

// New returns a Bloom filter sized for n keys at the target false
// positive rate epsilon, using the optimal k = ln2 * m/n hash functions.
func New(n int, epsilon float64) *Filter {
	bitsPerKey := core.BloomBitsPerKey(epsilon)
	return NewBits(n, bitsPerKey)
}

// NewBits returns a Bloom filter with the given bits-per-key budget.
func NewBits(n int, bitsPerKey float64) *Filter {
	return NewBitsSeeded(n, bitsPerKey, 0x5EEDB10000000001)
}

// NewBitsSeeded is NewBits with an explicit hash seed. Structures that
// layer several Bloom filters over related key sets (stacked filters,
// Rosetta, sequence Bloom trees) must give each layer its own seed, or
// inter-layer hash correlations inflate the compound false-positive
// rate.
func NewBitsSeeded(n int, bitsPerKey float64, seed uint64) *Filter {
	f, err := FromSpec(core.Spec{Type: core.TypeBloom, N: n, BitsPerKey: bitsPerKey, Seed: seed})
	if err != nil {
		panic(err) // unreachable for the budgets the constructors pass
	}
	return f
}

// FromSpec builds an empty Bloom filter from its construction
// parameters — the one code path every constructor, the registry, and
// the decoder share. N is clamped to at least 1 (matching the historic
// constructors); a non-positive bits-per-key budget is an error.
func FromSpec(s core.Spec) (*Filter, error) {
	if s.Type != core.TypeBloom {
		return nil, fmt.Errorf("bloom: spec type %d is not TypeBloom", s.Type)
	}
	if s.N < 1 {
		s.N = 1
	}
	if !(s.BitsPerKey > 0) || s.BitsPerKey > 1024 {
		return nil, fmt.Errorf("bloom: bits per key %v out of range", s.BitsPerKey)
	}
	m := uint64(math.Ceil(float64(s.N) * s.BitsPerKey))
	if m < 64 {
		m = 64
	}
	return &Filter{
		spec: s,
		bits: bitvec.New(int(m)),
		m:    m,
		k:    uint(core.BloomOptimalK(s.BitsPerKey)),
	}, nil
}

// Spec returns the filter's construction parameters.
func (f *Filter) Spec() core.Spec { return f.spec }

// K returns the number of hash functions in use.
func (f *Filter) K() uint { return f.k }

// Insert adds key to the filter. It never fails, but inserting beyond the
// sized capacity degrades the false-positive rate.
func (f *Filter) Insert(key uint64) error {
	h1, h2 := hashutil.SplitHash(hashutil.MixSeed(key, f.spec.Seed))
	for i := uint(0); i < f.k; i++ {
		f.bits.Set(int(hashutil.Reduce(hashutil.KHash(h1, h2, i), f.m)))
	}
	f.n++
	return nil
}

// Contains reports whether key may have been inserted.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := hashutil.SplitHash(hashutil.MixSeed(key, f.spec.Seed))
	for i := uint(0); i < f.k; i++ {
		if !f.bits.Bit(int(hashutil.Reduce(hashutil.KHash(h1, h2, i), f.m))) {
			return false
		}
	}
	return true
}

// ContainsBatch probes every key, writing Contains(keys[i]) into
// out[i]. The batch is processed in chunks: all hash state for a chunk
// is computed up front (hash-once), then each hash-function round runs
// three tight loops over the surviving keys (probe-many) — compute
// positions, issue all filter-word loads into a stack buffer, then test
// bits and compact survivors arithmetically. Keeping the load loop pure
// lets the round's cache misses all be in flight at once, and keeping
// the data-dependent compaction chain on the L1-resident buffers keeps
// it off the miss path — the scalar loop instead serializes each miss
// behind the previous key's early-exit branch.
func (f *Filter) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	words := f.bits.Words()
	var h1s, h2s, w [core.BatchChunk]uint64
	var pos [core.BatchChunk]uint64
	var live [core.BatchChunk]uint16
	for base := 0; base < len(keys); base += core.BatchChunk {
		chunk := keys[base:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[base : base+len(chunk)]
		for i, k := range chunk {
			h1s[i], h2s[i] = hashutil.SplitHash(hashutil.MixSeed(k, f.spec.Seed))
			co[i] = false
			live[i] = uint16(i)
		}
		n := len(chunk)
		for round := uint(0); round < f.k && n > 0; round++ {
			for s := 0; s < n; s++ {
				i := live[s]
				pos[s] = hashutil.Reduce(hashutil.KHash(h1s[i], h2s[i], round), f.m)
			}
			for s := 0; s < n; s++ {
				w[s] = words[pos[s]>>6]
			}
			nl := 0
			for s := 0; s < n; s++ {
				bit := w[s] >> (pos[s] & 63) & 1
				live[nl] = live[s]
				nl += int(bit)
			}
			n = nl
		}
		// Keys that survived every round are (possible) members.
		for s := 0; s < n; s++ {
			co[live[s]] = true
		}
	}
}

// Len returns the number of inserted keys.
func (f *Filter) Len() int { return f.n }

// SizeBits returns the filter's footprint in bits.
func (f *Filter) SizeBits() int { return f.bits.SizeBits() }

// FillRatio returns the fraction of set bits (diagnostic; ≈ 0.5 at design
// capacity with optimal k).
func (f *Filter) FillRatio() float64 {
	return float64(f.bits.OnesCount()) / float64(f.m)
}

var (
	_ core.MutableFilter = (*Filter)(nil)
	_ core.BatchFilter   = (*Filter)(nil)
)
