package bloom

import (
	"math"
	"testing"
	"testing/quick"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(10000, 1)
	f := New(len(keys), 0.01)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPRNearTarget(t *testing.T) {
	for _, eps := range []float64{0.05, 0.01, 0.001} {
		keys := workload.Keys(20000, 2)
		neg := workload.DisjointKeys(100000, 2)
		f := New(len(keys), eps)
		for _, k := range keys {
			f.Insert(k)
		}
		got := metrics.FPR(f, neg)
		if got > eps*2 {
			t.Errorf("eps=%g: measured FPR %g more than 2x target", eps, got)
		}
		if eps >= 0.01 && got < eps/10 {
			t.Errorf("eps=%g: measured FPR %g suspiciously low (size accounting bug?)", eps, got)
		}
	}
}

func TestFillRatioAtCapacity(t *testing.T) {
	keys := workload.Keys(50000, 3)
	f := New(len(keys), 0.01)
	for _, k := range keys {
		f.Insert(k)
	}
	if r := f.FillRatio(); math.Abs(r-0.5) > 0.05 {
		t.Errorf("fill ratio %f, want ≈0.5 at design capacity", r)
	}
}

func TestBitsPerKeyMatchesTheory(t *testing.T) {
	n := 10000
	f := New(n, 0.01)
	perKey := float64(f.SizeBits()) / float64(n)
	want := 1.44 * math.Log2(100)
	if perKey < want*0.95 || perKey > want*1.1 {
		t.Errorf("bits/key = %f, want ≈%f", perKey, want)
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		bf := New(len(keys)+1, 0.01)
		for _, k := range keys {
			bf.Insert(k)
		}
		for _, k := range keys {
			if !bf.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountingAddRemoveCount(t *testing.T) {
	c := NewCounting(1000, 0.01, 4)
	keys := workload.Keys(200, 5)
	for i, k := range keys {
		c.Add(k, uint64(i%3+1))
	}
	for i, k := range keys {
		want := uint64(i%3 + 1)
		if got := c.Count(k); got < want {
			t.Fatalf("Count(%d) = %d, underreports %d", k, got, want)
		}
	}
	// Remove everything; most counts should drop to zero (collisions may
	// leave residue, but residue can only overcount).
	for i, k := range keys {
		c.Remove(k, uint64(i%3+1))
	}
	zero := 0
	for _, k := range keys {
		if c.Count(k) == 0 {
			zero++
		}
	}
	if zero < len(keys)*9/10 {
		t.Errorf("after full removal only %d/%d keys at zero", zero, len(keys))
	}
}

func TestCountingSaturation(t *testing.T) {
	c := NewCounting(100, 0.01, 2) // counters max out at 3
	k := uint64(42)
	c.Add(k, 10)
	if c.Saturations() == 0 {
		t.Fatal("expected saturation events")
	}
	if got := c.Count(k); got != 3 {
		t.Fatalf("saturated count = %d, want clamp at 3", got)
	}
	// Removing from a saturated cell must not decrement (stuck) — the
	// undercount hazard is in *other* keys, not false negatives here.
	c.Remove(k, 1)
	if got := c.Count(k); got != 3 {
		t.Fatalf("saturated counter moved on Remove: %d", got)
	}
}

func TestCountingUndercountAfterSaturationScenario(t *testing.T) {
	// The tutorial's §2.6 hazard: after saturation and deletes, the filter
	// can no longer meet its error bound. We verify the mechanism: a
	// saturated cell never returns below max even when its true count
	// drops, i.e. the structure has lost delete fidelity.
	c := NewCounting(50, 0.05, 2)
	k := uint64(7)
	c.Add(k, 5)    // saturates at 3
	c.Remove(k, 5) // stuck at 3
	if c.Count(k) != 3 {
		t.Fatalf("expected stuck counter, got %d", c.Count(k))
	}
	// RebuildWider with the exact multiset restores fidelity.
	c2 := c.RebuildWider(map[uint64]uint64{k: 5})
	if got := c2.Count(k); got != 5 {
		t.Fatalf("after rebuild Count = %d, want 5", got)
	}
	c2.Remove(k, 5)
	if got := c2.Count(k); got != 0 {
		t.Fatalf("after rebuild+remove Count = %d, want 0", got)
	}
}

func TestCountingNeverUnderreportsProperty(t *testing.T) {
	f := func(seed uint8) bool {
		c := NewCounting(500, 0.01, 8)
		keys := workload.Keys(100, uint64(seed))
		truth := map[uint64]uint64{}
		for i, k := range keys {
			d := uint64(i%5 + 1)
			c.Add(k, d)
			truth[k] += d
		}
		for k, want := range truth {
			if c.Count(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCountingInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 should panic")
		}
	}()
	NewCounting(10, 0.01, 0)
}

func TestSpectralSkewedCounts(t *testing.T) {
	s := NewSpectral(2000, 0.01, 2)
	keys := workload.Keys(1000, 7)
	truth := workload.ZipfMultiset(keys, 50000, 1.5, 11)
	for k, c := range truth {
		s.Add(k, c)
	}
	under := 0
	for k, want := range truth {
		if s.Count(k) < want {
			under++
		}
	}
	if under > 0 {
		t.Fatalf("%d underreported counts", under)
	}
}

func TestSpectralMIKeepsTailSmall(t *testing.T) {
	// With minimum increase, a single huge key shouldn't inflate the
	// counts of unrelated keys much.
	s := NewSpectral(5000, 0.01, 2)
	s.Add(1, 1000000)
	inflated := 0
	others := workload.Keys(1000, 9)
	for _, k := range others {
		if s.Count(k) > 0 {
			inflated++
		}
	}
	if inflated > 50 {
		t.Errorf("%d/1000 unrelated keys inflated by one heavy hitter", inflated)
	}
}

func TestSpectralRemoveUnsupported(t *testing.T) {
	s := NewSpectral(100, 0.01, 2)
	if err := s.Remove(1, 1); err == nil {
		t.Fatal("Remove should be unsupported for MI spectral filter")
	}
}

func TestSpectralOverflow(t *testing.T) {
	s := NewSpectral(100, 0.01, 2)
	s.Add(5, 1000)
	if got := s.Count(5); got < 1000 {
		t.Fatalf("overflowed count = %d, want >= 1000", got)
	}
	if s.SizeBits() <= s.counters.SizeBits() {
		t.Error("overflow table not charged in SizeBits")
	}
}

func TestScalableGrowsAndKeepsFPR(t *testing.T) {
	s, err := NewScalable(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(50000, 13) // 50x initial capacity
	for _, k := range keys {
		s.Insert(k)
	}
	if s.Stages() < 4 {
		t.Fatalf("expected multiple stages, got %d", s.Stages())
	}
	if fn := metrics.FalseNegatives(s, keys); fn != 0 {
		t.Fatalf("%d false negatives after growth", fn)
	}
	neg := workload.DisjointKeys(100000, 13)
	if fpr := metrics.FPR(s, neg); fpr > 0.02 {
		t.Errorf("compound FPR %f exceeds budget 0.01 by >2x after growth", fpr)
	}
}

func TestScalableEmptyContains(t *testing.T) {
	s, err := NewScalable(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(1) {
		t.Fatal("empty scalable filter claims membership")
	}
}

func BenchmarkBloomInsert(b *testing.B) {
	f := New(b.N+1, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkBloomContains(b *testing.B) {
	f := New(1<<20, 0.01)
	for i := 0; i < 1<<20; i++ {
		f.Insert(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
