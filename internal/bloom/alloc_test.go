package bloom

import (
	"testing"

	"beyondbloom/internal/workload"
)

// The scalar and batched lookup paths are the hottest code in the
// library; they must not allocate, per key or per batch.

func TestContainsZeroAllocs(t *testing.T) {
	f := New(10000, 1.0/1024)
	keys := workload.Keys(10000, 5)
	for _, k := range keys {
		f.Insert(k)
	}
	if avg := testing.AllocsPerRun(100, func() {
		f.Contains(keys[0])
		f.Contains(0xDEADBEEF)
	}); avg != 0 {
		t.Fatalf("bloom.Contains allocates %v per run, want 0", avg)
	}
}

func TestContainsBatchZeroAllocs(t *testing.T) {
	f := New(10000, 1.0/1024)
	keys := workload.Keys(10000, 6)
	for _, k := range keys {
		f.Insert(k)
	}
	batch := keys[:300] // spans two chunks
	out := make([]bool, len(batch))
	if avg := testing.AllocsPerRun(100, func() {
		f.ContainsBatch(batch, out)
	}); avg != 0 {
		t.Fatalf("bloom.ContainsBatch allocates %v per run, want 0", avg)
	}
}

func TestBlockedZeroAllocs(t *testing.T) {
	f := NewBlocked(10000, 12)
	keys := workload.Keys(10000, 7)
	for _, k := range keys {
		f.Insert(k)
	}
	out := make([]bool, 300)
	if avg := testing.AllocsPerRun(100, func() {
		f.Contains(keys[0])
		f.ContainsBatch(keys[:300], out)
	}); avg != 0 {
		t.Fatalf("blocked bloom lookups allocate %v per run, want 0", avg)
	}
}
