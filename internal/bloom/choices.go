package bloom

import (
	"fmt"
	"math"
	"math/bits"

	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// choiceMix is XOR-ed into the key's mixed hash before deriving the
// second candidate block, making the two block choices independent
// while spending only one extra Mix64 per key.
const choiceMix = 0xC40CE5C40CE50001

// BlockedChoices is a blocked Bloom filter with two block choices
// (after Schmitz, Hübschle-Schneider & Sanders, "Blocked Bloom
// Filters with Choices"): every key hashes to two candidate 512-bit
// blocks, Insert sets its k bits in whichever candidate ends up
// emptier, and Contains accepts if either candidate holds all k. The
// power of two choices flattens the balls-into-bins load skew that
// makes plain blocked filters lose bits/key to overfull blocks.
//
// Know the trade before choosing this variant: because a lookup ORs
// two blocks, its false-positive rate is bounded below by roughly
// twice the per-block rate, so at moderate budgets (8-16 bits/key,
// where a plain 512-bit blocked filter is only 10-30% worse than
// classic) plain Blocked has strictly lower FPR. The choice pays off
// where the blocking penalty itself explodes — high bits/key budgets
// (≳20, where plain blocked is several times worse than classic and
// balancing recovers more than the second probe costs) or workloads
// with adversarially skewed block loads. E20 charts the exact
// frontier. The query price of the second cache line is hidden by the
// batch kernel, which issues both lines' loads back to back in its
// pure load loop, so a batched lookup costs nearly the same
// wall-clock as one miss.
type BlockedChoices struct {
	spec      core.Spec
	words     []uint64
	numBlocks uint64
	k         uint
	n         int
}

// NewBlockedChoices returns a two-choice blocked Bloom filter sized
// for n keys at the given bits-per-key budget.
func NewBlockedChoices(n int, bitsPerKey float64) *BlockedChoices {
	return NewBlockedChoicesSeeded(n, bitsPerKey, 0xB10CB10000000002)
}

// NewBlockedChoicesSeeded is NewBlockedChoices with an explicit hash
// seed.
func NewBlockedChoicesSeeded(n int, bitsPerKey float64, seed uint64) *BlockedChoices {
	f, err := BlockedChoicesFromSpec(core.Spec{Type: core.TypeBlockedChoices, N: n, BitsPerKey: bitsPerKey, Seed: seed})
	if err != nil {
		panic(err) // unreachable for the budgets the constructors pass
	}
	return f
}

// BlockedChoicesFromSpec builds an empty two-choice blocked Bloom
// filter from its construction parameters (see bloom.FromSpec).
func BlockedChoicesFromSpec(s core.Spec) (*BlockedChoices, error) {
	if s.Type != core.TypeBlockedChoices {
		return nil, fmt.Errorf("bloom: spec type %d is not TypeBlockedChoices", s.Type)
	}
	if s.N < 1 {
		s.N = 1
	}
	if !(s.BitsPerKey > 0) || s.BitsPerKey > 1024 {
		return nil, fmt.Errorf("bloom: bits per key %v out of range", s.BitsPerKey)
	}
	totalBits := math.Ceil(float64(s.N) * s.BitsPerKey)
	numBlocks := uint64(math.Ceil(totalBits / (blockWords * 64)))
	// Two distinct candidates need two blocks to choose between.
	if numBlocks < 2 {
		numBlocks = 2
	}
	k := uint(core.BloomOptimalK(s.BitsPerKey))
	if k > blockedMaxK {
		k = blockedMaxK
	}
	return &BlockedChoices{
		spec:      s,
		words:     make([]uint64, numBlocks*blockWords),
		numBlocks: numBlocks,
		k:         k,
	}, nil
}

// Spec returns the filter's construction parameters.
func (f *BlockedChoices) Spec() core.Spec { return f.spec }

// K returns the number of probe bits per key.
func (f *BlockedChoices) K() uint { return f.k }

// hashState derives both candidate blocks' base word indexes and the
// two mixed words the probe positions are cut from. The k probe
// positions are shared between the candidates (the choice picks a
// block, not a new probe pattern), exactly as in the register-blocked
// reference design.
func (f *BlockedChoices) hashState(key uint64) (base1, base2 uint64, g1, g2 uint64) {
	h := hashutil.MixSeed(key, f.spec.Seed)
	base1 = hashutil.Reduce(h, f.numBlocks) * blockWords
	base2 = hashutil.Reduce(hashutil.Mix64(h^choiceMix), f.numBlocks) * blockWords
	g1 = hashutil.Mix64(h + 1)
	g2 = hashutil.Mix64(h + 2)
	return
}

// blockLoad returns the number of set bits in the 8-word block at
// base. Counting on the fly keeps the choice exact under deletes-free
// churn without any side array of per-block counters.
func (f *BlockedChoices) blockLoad(base uint64) int {
	blk := f.words[base : base+blockWords : base+blockWords]
	c := 0
	for _, w := range blk {
		c += bits.OnesCount64(w)
	}
	return c
}

// newBits returns how many of the key's k probe bits are not yet set
// in the block at base — the number of ones this insert would add.
func (f *BlockedChoices) newBits(base uint64, g1, g2 uint64) int {
	c := 0
	for i := uint(0); i < f.k; i++ {
		pos := probePos(g1, g2, i)
		c += int(^f.words[base+pos>>6] >> (pos & 63) & 1)
	}
	return c
}

// Insert adds key, setting its k bits in whichever candidate block
// would be emptier AFTER the insert (current popcount plus the new
// bits this key would add; ties go to the first block). Judging the
// post-insert load rather than the current one folds in bit reuse —
// a candidate that already holds most of the key's probe bits is
// nearly free to use — and measures strictly better than the plain
// current-load rule at every bits/key budget we chart in E20. Insert
// never fails; over-inserting degrades the false-positive rate
// gracefully.
func (f *BlockedChoices) Insert(key uint64) error {
	base1, base2, g1, g2 := f.hashState(key)
	base := base1
	if f.blockLoad(base2)+f.newBits(base2, g1, g2) < f.blockLoad(base1)+f.newBits(base1, g1, g2) {
		base = base2
	}
	for i := uint(0); i < f.k; i++ {
		pos := probePos(g1, g2, i)
		f.words[base+pos>>6] |= 1 << (pos & 63)
	}
	f.n++
	return nil
}

// blockHas reports whether the block at base holds all k probe bits.
func (f *BlockedChoices) blockHas(base uint64, g1, g2 uint64) bool {
	for i := uint(0); i < f.k; i++ {
		pos := probePos(g1, g2, i)
		if f.words[base+pos>>6]>>(pos&63)&1 == 0 {
			return false
		}
	}
	return true
}

// Contains reports whether key may have been inserted: present iff
// either candidate block holds all k probe bits.
func (f *BlockedChoices) Contains(key uint64) bool {
	base1, base2, g1, g2 := f.hashState(key)
	return f.blockHas(base1, g1, g2) || f.blockHas(base2, g1, g2)
}

// ContainsBatch probes every key (see core.BatchFilter). The structure
// mirrors Blocked.ContainsBatch with one twist: the pure load loop
// issues BOTH candidate blocks' first probe words back to back, so the
// two cache misses a two-choice lookup risks are both in flight
// before any key resolves — the memory-level-parallelism window covers
// 2×BatchChunk lines instead of serializing choice two behind choice
// one. The resolve loop then finishes both candidates branchlessly out
// of the warm lines and ORs the verdicts.
func (f *BlockedChoices) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	words := f.words
	var b1s, b2s, g1s, g2s, w1s, w2s [core.BatchChunk]uint64
	for start := 0; start < len(keys); start += core.BatchChunk {
		chunk := keys[start:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[start : start+len(chunk)]
		for i, key := range chunk {
			b1s[i], b2s[i], g1s[i], g2s[i] = f.hashState(key)
		}
		for i := range chunk {
			off := (g1s[i] & 511) >> 6
			w1s[i] = words[b1s[i]+off]
			w2s[i] = words[b2s[i]+off]
		}
		k := f.k
		for i := range chunk {
			g1, g2 := g1s[i], g2s[i]
			blk1 := words[b1s[i] : b1s[i]+blockWords : b1s[i]+blockWords]
			blk2 := words[b2s[i] : b2s[i]+blockWords : b2s[i]+blockWords]
			hit1 := w1s[i] >> (g1 & 63)
			hit2 := w2s[i] >> (g1 & 63)
			g := g1 >> 9
			for j := uint(1); j < k; j++ {
				pos := g & 511
				hit1 &= blk1[pos>>6] >> (pos & 63)
				hit2 &= blk2[pos>>6] >> (pos & 63)
				g >>= 9
				if j == 6 {
					g = g2 // probes 7+ take their 9 bits from the second mix
				}
			}
			co[i] = (hit1|hit2)&1 != 0
		}
	}
}

// Len returns the number of inserted keys.
func (f *BlockedChoices) Len() int { return f.n }

// SizeBits returns the filter's footprint in bits.
func (f *BlockedChoices) SizeBits() int { return len(f.words) * 64 }

// FillRatio returns the fraction of set bits (diagnostic).
func (f *BlockedChoices) FillRatio() float64 {
	ones := 0
	for _, w := range f.words {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(len(f.words)*64)
}

var (
	_ core.MutableFilter = (*BlockedChoices)(nil)
	_ core.BatchFilter   = (*BlockedChoices)(nil)
)
