package bloom

import (
	"testing"

	"beyondbloom/internal/workload"
)

func TestBlockedNoFalseNegatives(t *testing.T) {
	const n = 50000
	keys := workload.Keys(n, 1)
	f := NewBlocked(n, 12)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
}

func TestBlockedFPRReasonable(t *testing.T) {
	const n = 50000
	keys := workload.Keys(n, 2)
	neg := workload.DisjointKeys(4*n, 2)
	f := NewBlocked(n, 12)
	for _, k := range keys {
		f.Insert(k)
	}
	fp := 0
	for _, k := range neg {
		if f.Contains(k) {
			fp++
		}
	}
	fpr := float64(fp) / float64(len(neg))
	// A classic filter at 12 bits/key gives ~3e-4; blocking costs a
	// small constant factor (block imbalance). Anything within ~10x of
	// the classic rate means the layout works; 1e-2 would mean broken
	// hashing.
	if fpr > 5e-3 {
		t.Fatalf("blocked FPR %v too high for 12 bits/key", fpr)
	}
}

func TestBlockedBatchMatchesScalar(t *testing.T) {
	const n = 20000
	keys := workload.Keys(n, 3)
	f := NewBlocked(n, 10)
	for _, k := range keys[:n/2] {
		f.Insert(k)
	}
	out := make([]bool, n)
	f.ContainsBatch(keys, out)
	for i, k := range keys {
		if out[i] != f.Contains(k) {
			t.Fatalf("batch/scalar disagree at %d", i)
		}
	}
}

func TestBlockedProbesStayInOneBlock(t *testing.T) {
	f := NewBlocked(1000, 16)
	for key := uint64(0); key < 1000; key++ {
		base, g1, g2 := f.hashState(key)
		if base%blockWords != 0 || base >= uint64(len(f.words)) {
			t.Fatalf("block base %d out of range", base)
		}
		for i := uint(0); i < f.k; i++ {
			pos := probePos(g1, g2, i)
			if pos >= blockWords*64 {
				t.Fatalf("probe position %d escapes the 512-bit block", pos)
			}
		}
	}
}
