package bloom

import (
	"io"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

func init() {
	core.Register(core.TypeBloom, "bloom",
		func() core.Persistent { return &Filter{} },
		func(s core.Spec) (core.Persistent, error) { return FromSpec(s) })
	core.Register(core.TypeBlockedBloom, "bloom.Blocked",
		func() core.Persistent { return &Blocked{} },
		func(s core.Spec) (core.Persistent, error) { return BlockedFromSpec(s) })
	core.Register(core.TypeBlockedChoices, "bloom.BlockedChoices",
		func() core.Persistent { return &BlockedChoices{} },
		func(s core.Spec) (core.Persistent, error) { return BlockedChoicesFromSpec(s) })
	core.Register(core.TypeScalableBloom, "bloom.Scalable",
		func() core.Persistent { return &Scalable{} },
		func(s core.Spec) (core.Persistent, error) { return ScalableFromSpec(s) })
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (f *Filter) TypeID() uint16 { return core.TypeBloom }

// WriteTo serializes the filter as one codec frame: the construction
// Spec, the derived geometry, and the nested bit-vector frame.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	f.spec.Encode(&e)
	e.U64(f.m)
	e.U32(uint32(f.k))
	e.U64(uint64(f.n))
	if _, err := f.bits.WriteTo(&e); err != nil {
		return 0, err
	}
	return codec.WriteFrame(w, core.TypeBloom, e.Bytes())
}

// ReadFrom restores a filter written by WriteTo into the receiver,
// validating the checksum, the Spec, and the geometry/payload
// consistency. On error the receiver is left unchanged.
func (f *Filter) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeBloom)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	m := d.U64()
	k := uint(d.U32())
	n := d.U64()
	var bits bitvec.Vector
	if d.Err() == nil {
		if _, err := bits.ReadFrom(d); err != nil {
			return 0, err
		}
	}
	if err := d.Finish(); err != nil {
		return 0, err
	}
	nf, err := FromSpec(spec)
	if err != nil {
		return 0, d.Corruptf("%v", err)
	}
	if nf.m != m || nf.k != k || uint64(bits.Len()) != m {
		return 0, d.Corruptf("bloom: geometry m=%d k=%d bits=%d disagrees with spec (m=%d k=%d)",
			m, k, bits.Len(), nf.m, nf.k)
	}
	f.spec = spec
	f.bits = &bits
	f.m = m
	f.k = k
	f.n = int(n)
	return int64(codec.HeaderSize + len(payload)), nil
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (f *Blocked) TypeID() uint16 { return core.TypeBlockedBloom }

// WriteTo serializes the filter as one codec frame: the construction
// Spec, the derived geometry, and the raw block words.
func (f *Blocked) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	f.spec.Encode(&e)
	e.U64(f.numBlocks)
	e.U32(uint32(f.k))
	e.U64(uint64(f.n))
	e.U64s(f.words)
	return codec.WriteFrame(w, core.TypeBlockedBloom, e.Bytes())
}

// ReadFrom restores a filter written by WriteTo into the receiver (see
// Filter.ReadFrom for the validation contract).
func (f *Blocked) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeBlockedBloom)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	numBlocks := d.U64()
	k := uint(d.U32())
	n := d.U64()
	words := d.U64s()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	nf, err := BlockedFromSpec(spec)
	if err != nil {
		return 0, d.Corruptf("%v", err)
	}
	if nf.numBlocks != numBlocks || nf.k != k || uint64(len(words)) != numBlocks*blockWords {
		return 0, d.Corruptf("bloom: blocked geometry blocks=%d k=%d words=%d disagrees with spec",
			numBlocks, k, len(words))
	}
	f.spec = spec
	f.words = words
	f.numBlocks = numBlocks
	f.k = k
	f.n = int(n)
	return int64(codec.HeaderSize + len(payload)), nil
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (f *BlockedChoices) TypeID() uint16 { return core.TypeBlockedChoices }

// WriteTo serializes the filter as one codec frame: the construction
// Spec, the derived geometry, and the raw block words.
func (f *BlockedChoices) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	f.spec.Encode(&e)
	e.U64(f.numBlocks)
	e.U32(uint32(f.k))
	e.U64(uint64(f.n))
	e.U64s(f.words)
	return codec.WriteFrame(w, core.TypeBlockedChoices, e.Bytes())
}

// ReadFrom restores a filter written by WriteTo into the receiver (see
// Filter.ReadFrom for the validation contract).
func (f *BlockedChoices) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeBlockedChoices)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	numBlocks := d.U64()
	k := uint(d.U32())
	n := d.U64()
	words := d.U64s()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	nf, err := BlockedChoicesFromSpec(spec)
	if err != nil {
		return 0, d.Corruptf("%v", err)
	}
	if nf.numBlocks != numBlocks || nf.k != k || uint64(len(words)) != numBlocks*blockWords {
		return 0, d.Corruptf("bloom: two-choice geometry blocks=%d k=%d words=%d disagrees with spec",
			numBlocks, k, len(words))
	}
	f.spec = spec
	f.words = words
	f.numBlocks = numBlocks
	f.k = k
	f.n = int(n)
	return int64(codec.HeaderSize + len(payload)), nil
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (s *Scalable) TypeID() uint16 { return core.TypeScalableBloom }

// WriteTo serializes the chain as one codec frame: the construction
// Spec (initial capacity + ε budget), the insert count, and the stages
// as nested bloom frames. Growth state — how many stages are open, each
// stage's geometry and fill — is exactly the chain itself, so a
// restored filter resumes growing where the original stopped.
func (s *Scalable) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	spec := core.Spec{Type: core.TypeScalableBloom, N: s.initialCap, BitsPerKey: s.epsilon}
	spec.Encode(&e)
	e.U64(uint64(s.n))
	e.U32(uint32(len(s.stages)))
	for _, st := range s.stages {
		if _, err := st.WriteTo(&e); err != nil {
			return 0, err
		}
	}
	return codec.WriteFrame(w, core.TypeScalableBloom, e.Bytes())
}

// ReadFrom restores a chain written by WriteTo into the receiver. The
// stage capacities and tightening schedule are recomputed from the Spec
// and cross-checked against the stored stages, so a corrupt or
// inconsistent chain is rejected rather than silently served.
func (s *Scalable) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeScalableBloom)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	n := d.U64()
	numStages := d.U32()
	if d.Err() != nil {
		return 0, d.Err()
	}
	if numStages > 62 {
		return 0, d.Corruptf("bloom: scalable stage count %d out of range", numStages)
	}
	ns, err := ScalableFromSpec(spec)
	if err != nil {
		return 0, d.Corruptf("%v", err)
	}
	sum := 0
	for i := uint32(0); i < numStages; i++ {
		var st Filter
		if _, err := st.ReadFrom(d); err != nil {
			return 0, err
		}
		ns.stages = append(ns.stages, &st)
		cap := ns.initialCap
		for range ns.stages[:i] {
			cap *= ns.growth
		}
		ns.stageCap = append(ns.stageCap, cap)
		ns.stageEps *= ns.tightening
		if i+1 < numStages && st.Len() < cap {
			return 0, d.Corruptf("bloom: scalable stage %d holds %d keys below its capacity %d but is not the newest", i, st.Len(), cap)
		}
		sum += st.Len()
	}
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if sum != int(n) {
		return 0, d.Corruptf("bloom: scalable stage lengths sum to %d, header says %d", sum, n)
	}
	ns.n = int(n)
	*s = *ns
	return int64(codec.HeaderSize + len(payload)), nil
}

var (
	_ core.Persistent = (*Filter)(nil)
	_ core.Persistent = (*Blocked)(nil)
	_ core.Persistent = (*BlockedChoices)(nil)
	_ core.Persistent = (*Scalable)(nil)
)
