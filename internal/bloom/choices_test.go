package bloom

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestChoicesNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1 << 10, 1 << 14} {
		f := NewBlockedChoices(n, 10)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			f.Insert(keys[i])
		}
		for i, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("n=%d: inserted key %d (%#x) reported absent", n, i, k)
			}
		}
		if f.Len() != n {
			t.Fatalf("Len() = %d, want %d", f.Len(), n)
		}
	}
}

func TestChoicesBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := NewBlockedChoices(1<<14, 10)
	keys := make([]uint64, 1<<15)
	for i := range keys {
		keys[i] = rng.Uint64()
		if i%2 == 0 {
			f.Insert(keys[i])
		}
	}
	for _, n := range []int{0, 1, 255, 256, 257, 1000, len(keys)} {
		batch := keys[:n]
		out := make([]bool, n)
		f.ContainsBatch(batch, out)
		for i, k := range batch {
			if want := f.Contains(k); out[i] != want {
				t.Fatalf("batch[%d] = %v, scalar = %v (len %d)", i, out[i], want, n)
			}
		}
	}
}

// measureFPR inserts n deterministic keys and probes 4n disjoint ones.
func measureFPR(f interface {
	Insert(uint64) error
	Contains(uint64) bool
}, n int) float64 {
	for i := 0; i < n; i++ {
		f.Insert(uint64(i)*0x9E3779B97F4A7C15 + 1)
	}
	probes := 4 * n
	fp := 0
	for i := 0; i < probes; i++ {
		if f.Contains(uint64(i)*0x9E3779B97F4A7C15 + 0xDEAD000000000001) {
			fp++
		}
	}
	return float64(fp) / float64(probes)
}

// TestFPRFrontierAtEqualSpace pins the three Bloom variants' relative
// false-positive rates at equal bits/key across sizes 2^10..2^20 — the
// ordering DESIGN.md §10 derives and E20 charts:
//
//   - classic is the space-optimal baseline;
//   - blocked pays a balls-into-bins convexity penalty (bounded ~1.5x
//     at these budgets) for its one-cache-miss probes;
//   - two-choice blocked pays the OR-of-two-blocks floor of ~2x the
//     per-block rate, which balancing offsets only partially, so it
//     lands between blocked and ~2.5x classic here (its win regime —
//     very high bits/key — is charted, not asserted, in E20).
//
// Bounds are deliberately loose (binomial noise at 2^10 is large); the
// test is a tripwire for structural regressions — a broken choice rule
// or probe kernel shows up as a multiple, not a few percent.
func TestFPRFrontierAtEqualSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size FPR sweep")
	}
	for _, lg := range []uint{10, 14, 17, 20} {
		n := 1 << lg
		const bpk = 10.0
		eClassic := measureFPR(NewBits(n, bpk), n)
		eBlocked := measureFPR(NewBlocked(n, bpk), n)
		eChoices := measureFPR(NewBlockedChoices(n, bpk), n)
		t.Logf("n=2^%d classic=%.5f blocked=%.5f choices=%.5f", lg, eClassic, eBlocked, eChoices)
		if eClassic <= 0 {
			// A classic Bloom filter at 10 bits/key has ~0.8% FPR; zero
			// false positives in 4n probes means a broken probe path
			// (except at the smallest size, where it is merely unlikely).
			if lg > 10 {
				t.Fatalf("n=2^%d: classic Bloom reported no false positives", lg)
			}
			continue
		}
		if eBlocked < 0.5*eClassic || eBlocked > 2.0*eClassic {
			t.Errorf("n=2^%d: blocked FPR %.5f outside [0.5,2.0]x classic %.5f", lg, eBlocked, eClassic)
		}
		if eChoices < 0.8*eClassic || eChoices > 3.0*eClassic {
			t.Errorf("n=2^%d: choices FPR %.5f outside [0.8,3.0]x classic %.5f", lg, eChoices, eClassic)
		}
		// The two-choice OR floor: choices can never beat classic at
		// equal space, and structurally sits above plain blocked at
		// moderate budgets.
		if eChoices < eClassic {
			t.Errorf("n=2^%d: choices FPR %.5f below classic %.5f (impossible for OR-of-two-blocks)",
				lg, eChoices, eClassic)
		}
	}
}

// TestChoicesBalancesLoads verifies the mechanism (not just the FPR):
// the spread of per-block popcounts must be tighter with two choices
// than with one.
func TestChoicesBalancesLoads(t *testing.T) {
	n := 1 << 16
	bl := NewBlocked(n, 10)
	ch := NewBlockedChoices(n, 10)
	for i := 0; i < n; i++ {
		k := uint64(i)*0x9E3779B97F4A7C15 + 7
		bl.Insert(k)
		ch.Insert(k)
	}
	variance := func(words []uint64, numBlocks uint64) float64 {
		var sum, sumSq float64
		for b := uint64(0); b < numBlocks; b++ {
			load := 0.0
			for _, w := range words[b*blockWords : (b+1)*blockWords] {
				load += float64(bits.OnesCount64(w))
			}
			sum += load
			sumSq += load * load
		}
		mean := sum / float64(numBlocks)
		return sumSq/float64(numBlocks) - mean*mean
	}
	vb := variance(bl.words, bl.numBlocks)
	vc := variance(ch.words, ch.numBlocks)
	t.Logf("per-block load variance: blocked=%.1f choices=%.1f", vb, vc)
	if vc >= vb {
		t.Fatalf("two choices did not reduce load variance (blocked %.1f, choices %.1f)", vb, vc)
	}
}
