package cuckoo

import (
	"beyondbloom/internal/core"
)

// Chained is a dynamic cuckoo filter (Chen et al., §2.2 of the
// tutorial's expansion taxonomy): a linked list of fixed-size cuckoo
// filters. When the active filter fills, a fresh one is appended; the
// set size never needs to be known in advance. Queries probe every link
// — the chain-growth query cost the tutorial contrasts with
// InfiniFilter-style expansion — and deletes work because each
// fingerprint lives in exactly one link.
type Chained struct {
	links   []*Filter
	linkCap int
	fpBits  uint
	n       int
}

// NewChained returns a chained cuckoo filter whose links each hold about
// linkCap keys with fpBits-bit fingerprints.
func NewChained(linkCap int, fpBits uint) *Chained {
	if linkCap < 8 {
		linkCap = 8
	}
	return &Chained{linkCap: linkCap, fpBits: fpBits}
}

// Insert adds key to the newest link, appending a new link when full.
func (c *Chained) Insert(key uint64) error {
	if len(c.links) == 0 {
		c.links = append(c.links, New(c.linkCap, c.fpBits))
	}
	last := c.links[len(c.links)-1]
	if err := last.Insert(key); err == nil {
		c.n++
		return nil
	}
	nf := New(c.linkCap, c.fpBits)
	if err := nf.Insert(key); err != nil {
		return err
	}
	c.links = append(c.links, nf)
	c.n++
	return nil
}

// Contains probes every link.
func (c *Chained) Contains(key uint64) bool {
	for _, l := range c.links {
		if l.Contains(key) {
			return true
		}
	}
	return false
}

// Delete removes one copy of key's fingerprint from the first link that
// holds it.
func (c *Chained) Delete(key uint64) error {
	for _, l := range c.links {
		if err := l.Delete(key); err == nil {
			c.n--
			return nil
		}
	}
	return core.ErrNotFound
}

// Links returns the chain length (per-query probe count).
func (c *Chained) Links() int { return len(c.links) }

// Len returns the number of stored fingerprints.
func (c *Chained) Len() int { return c.n }

// SizeBits sums the links.
func (c *Chained) SizeBits() int {
	total := 0
	for _, l := range c.links {
		total += l.SizeBits()
	}
	return total
}

var _ core.DeletableFilter = (*Chained)(nil)
