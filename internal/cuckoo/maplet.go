package cuckoo

import (
	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Maplet is a cuckoo-filter-based key-value filter (§2.4): each slot
// stores a value of vBits next to the fingerprint. Get returns the
// values of every slot whose fingerprint matches (PRS = 1+ε, NRS = ε).
type Maplet struct {
	slots      *bitvec.Packed // packed (fingerprint<<vBits | value); fp==0 means empty
	numBuckets uint64
	fpBits     uint
	vBits      uint
	seed       uint64
	n          int
	rngState   uint64
	// stash holds entries whose eviction walk failed (rare below 95%
	// load). Get and Delete consult it, preserving no-false-negative
	// semantics. A growing stash signals the table is effectively full.
	stash []stashEntry
}

type stashEntry struct {
	bucket uint64 // one of the entry's two home buckets
	fp     uint64
	val    uint64
}

const maxStash = 16

// NewMaplet returns a cuckoo maplet with capacity about n entries,
// fpBits-bit fingerprints and vBits-bit values.
func NewMaplet(n int, fpBits, vBits uint) *Maplet {
	if fpBits < 2 || vBits < 1 || fpBits+vBits > 58 {
		panic("cuckoo: invalid maplet geometry")
	}
	buckets := uint64(1)
	for float64(buckets*BucketSize)*0.95 < float64(n) {
		buckets <<= 1
	}
	return &Maplet{
		slots:      bitvec.NewPacked(int(buckets*BucketSize), fpBits+vBits),
		numBuckets: buckets,
		fpBits:     fpBits,
		vBits:      vBits,
		seed:       0xCAFE0001,
		rngState:   0xFEEDFACE87654321,
	}
}

func (m *Maplet) indexAndFP(key uint64) (uint64, uint64) {
	h := hashutil.MixSeed(key, m.seed)
	return (h >> 32) & (m.numBuckets - 1), hashutil.Fingerprint(h, m.fpBits)
}

func (m *Maplet) altIndex(i, fp uint64) uint64 {
	return (i ^ hashutil.Mix64(fp)) & (m.numBuckets - 1)
}

func (m *Maplet) get(bucket uint64, slot int) (fp, val uint64) {
	e := m.slots.Get(int(bucket)*BucketSize + slot)
	return e >> m.vBits, e & hashutil.Mask(m.vBits)
}

func (m *Maplet) set(bucket uint64, slot int, fp, val uint64) {
	m.slots.Set(int(bucket)*BucketSize+slot, fp<<m.vBits|val)
}

func (m *Maplet) tryInsertAt(bucket, fp, val uint64) bool {
	for s := 0; s < BucketSize; s++ {
		if gotFP, _ := m.get(bucket, s); gotFP == 0 {
			m.set(bucket, s, fp, val)
			return true
		}
	}
	return false
}

func (m *Maplet) nextRand() uint64 {
	x := m.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// Put associates value with key.
func (m *Maplet) Put(key, value uint64) error {
	value &= hashutil.Mask(m.vBits)
	i1, fp := m.indexAndFP(key)
	i2 := m.altIndex(i1, fp)
	if m.tryInsertAt(i1, fp, value) || m.tryInsertAt(i2, fp, value) {
		m.n++
		return nil
	}
	cur := i1
	if m.nextRand()&1 == 0 {
		cur = i2
	}
	curFP, curVal := fp, value
	for k := 0; k < maxKicks; k++ {
		s := int(m.nextRand() % BucketSize)
		vFP, vVal := m.get(cur, s)
		m.set(cur, s, curFP, curVal)
		curFP, curVal = vFP, vVal
		cur = m.altIndex(cur, curFP)
		if m.tryInsertAt(cur, curFP, curVal) {
			m.n++
			return nil
		}
	}
	// The displaced chain is already stored; only the last entry in hand
	// is homeless. Park it in the stash so nothing is lost.
	if len(m.stash) >= maxStash {
		return core.ErrFull
	}
	m.stash = append(m.stash, stashEntry{bucket: cur, fp: curFP, val: curVal})
	m.n++
	return nil
}

// Get returns the candidate values for key.
func (m *Maplet) Get(key uint64) []uint64 {
	i1, fp := m.indexAndFP(key)
	i2 := m.altIndex(i1, fp)
	var out []uint64
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < BucketSize; s++ {
			if gotFP, v := m.get(b, s); gotFP == fp {
				out = append(out, v)
			}
		}
		if i1 == i2 {
			break
		}
	}
	for _, e := range m.stash {
		if e.fp == fp && (e.bucket == i1 || e.bucket == i2) {
			out = append(out, e.val)
		}
	}
	return out
}

// Delete removes one (key, value) entry. Returns ErrNotFound if absent.
func (m *Maplet) Delete(key, value uint64) error {
	value &= hashutil.Mask(m.vBits)
	i1, fp := m.indexAndFP(key)
	i2 := m.altIndex(i1, fp)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < BucketSize; s++ {
			if gotFP, v := m.get(b, s); gotFP == fp && v == value {
				m.set(b, s, 0, 0)
				m.n--
				return nil
			}
		}
	}
	for i, e := range m.stash {
		if e.fp == fp && e.val == value && (e.bucket == i1 || e.bucket == i2) {
			m.stash = append(m.stash[:i], m.stash[i+1:]...)
			m.n--
			return nil
		}
	}
	return core.ErrNotFound
}

// Len returns the number of stored entries.
func (m *Maplet) Len() int { return m.n }

// SizeBits returns the table footprint in bits.
func (m *Maplet) SizeBits() int { return m.slots.SizeBits() }

var _ core.DeletableMaplet = (*Maplet)(nil)
