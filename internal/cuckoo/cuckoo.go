// Package cuckoo implements the cuckoo filter (Fan et al., §2.1 of the
// tutorial): a dynamic approximate set storing f-bit fingerprints in a
// 4-way associative table. Each key has two candidate buckets related by
// the partial-key XOR trick, so an item can be relocated ("kicked")
// without access to the original key. Supports deletion and duplicate
// insertion (multiset up to 2·bucketSize copies), plus a maplet variant
// that stores a value next to each fingerprint (§2.4).
package cuckoo

import (
	"fmt"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
	"beyondbloom/internal/swar"
)

const (
	// BucketSize is the set-associativity of the table. 4 is the paper's
	// choice, allowing 95% occupancy.
	BucketSize = 4
	// maxKicks bounds the eviction random walk before declaring the
	// filter full.
	maxKicks = 500
)

// Filter is a cuckoo filter over uint64 keys.
type Filter struct {
	spec       core.Spec      // construction parameters (capacity, fp bits, seed)
	slots      *bitvec.Packed // buckets * BucketSize fingerprints; 0 = empty
	numBuckets uint64
	fpBits     uint
	n          int
	rngState   uint64  // deterministic eviction-choice state
	victim     stashFP // one-entry victim cache for failed kick walks
}

// stashFP holds at most one evicted fingerprint together with one of its
// two home buckets (the reference implementation's "victim cache"). It
// preserves no-false-negative semantics when an insert's eviction walk
// fails: the last displaced fingerprint parks here instead of being
// dropped.
type stashFP struct {
	fp     uint64
	bucket uint64
	valid  bool
}

// New returns a cuckoo filter with capacity about n keys and fpBits-bit
// fingerprints (false-positive rate ≈ 2·BucketSize·2^-fpBits ≈ 8·2^-f).
func New(n int, fpBits uint) *Filter {
	f, err := FromSpec(core.Spec{Type: core.TypeCuckoo, N: n, FPBits: uint8(fpBits), Seed: 0xC0C0C0C0})
	if err != nil {
		panic(err)
	}
	return f
}

// FromSpec builds an empty cuckoo filter from its construction
// parameters — the one code path the constructors, the registry, and
// the decoder share.
func FromSpec(s core.Spec) (*Filter, error) {
	if s.Type != core.TypeCuckoo {
		return nil, fmt.Errorf("cuckoo: spec type %d is not TypeCuckoo", s.Type)
	}
	if s.FPBits < 2 || s.FPBits > 32 {
		return nil, fmt.Errorf("cuckoo: fingerprint bits %d must be in [2,32]", s.FPBits)
	}
	if s.N < 0 || s.N > 1<<40 {
		return nil, fmt.Errorf("cuckoo: capacity %d out of range", s.N)
	}
	// Size to 95% max load: buckets = next pow2 of n / (0.95*4).
	buckets := uint64(1)
	for float64(buckets*BucketSize)*0.95 < float64(s.N) {
		buckets <<= 1
	}
	return &Filter{
		spec:       s,
		slots:      bitvec.NewPacked(int(buckets*BucketSize), uint(s.FPBits)),
		numBuckets: buckets,
		fpBits:     uint(s.FPBits),
		rngState:   0xDEADBEEF12345678,
	}, nil
}

// Spec returns the filter's construction parameters.
func (f *Filter) Spec() core.Spec { return f.spec }

// NewForEpsilon sizes fingerprints for a target false-positive rate:
// f = ceil(log2(2·BucketSize/ε)).
func NewForEpsilon(n int, epsilon float64) *Filter {
	f := uint(2)
	for ; f < 32; f++ {
		if float64(2*BucketSize)/float64(uint64(1)<<f) <= epsilon {
			break
		}
	}
	return New(n, f)
}

func (f *Filter) indexAndFP(key uint64) (i1 uint64, fp uint64) {
	h := hashutil.MixSeed(key, f.spec.Seed)
	fp = hashutil.Fingerprint(h, f.fpBits)
	i1 = (h >> 32) & (f.numBuckets - 1)
	return
}

// altIndex derives the partner bucket from a bucket index and the
// fingerprint alone (the partial-key cuckoo trick).
func (f *Filter) altIndex(i, fp uint64) uint64 {
	return (i ^ hashutil.Mix64(fp)) & (f.numBuckets - 1)
}

func (f *Filter) bucketSlot(bucket uint64, slot int) uint64 {
	return f.slots.Get(int(bucket)*BucketSize + slot)
}

func (f *Filter) setBucketSlot(bucket uint64, slot int, v uint64) {
	f.slots.Set(int(bucket)*BucketSize+slot, v)
}

// tryInsertAt places fp into bucket if a free slot exists.
func (f *Filter) tryInsertAt(bucket, fp uint64) bool {
	for s := 0; s < BucketSize; s++ {
		if f.bucketSlot(bucket, s) == 0 {
			f.setBucketSlot(bucket, s, fp)
			return true
		}
	}
	return false
}

func (f *Filter) nextRand() uint64 {
	// xorshift64* — deterministic, no global rand dependency.
	x := f.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	f.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// Insert adds key. Duplicates are allowed (each occupies a slot) up to
// 2·BucketSize copies of one fingerprint. Returns ErrFull when the
// eviction walk fails, which happens near 95% occupancy.
func (f *Filter) Insert(key uint64) error {
	if f.victim.valid {
		// A previous walk already failed and its victim is parked; any
		// further displacement could drop a fingerprint. Refuse early.
		return core.ErrFull
	}
	i1, fp := f.indexAndFP(key)
	i2 := f.altIndex(i1, fp)
	if f.tryInsertAt(i1, fp) || f.tryInsertAt(i2, fp) {
		f.n++
		return nil
	}
	// Kick: random walk displacing fingerprints.
	cur := i1
	if f.nextRand()&1 == 0 {
		cur = i2
	}
	curFP := fp
	for k := 0; k < maxKicks; k++ {
		s := int(f.nextRand() % BucketSize)
		victim := f.bucketSlot(cur, s)
		f.setBucketSlot(cur, s, curFP)
		curFP = victim
		cur = f.altIndex(cur, curFP)
		if f.tryInsertAt(cur, curFP) {
			f.n++
			return nil
		}
	}
	// The walk failed. Every displaced fingerprint along the way was
	// re-inserted into a valid bucket except the final one in hand; park
	// it in the victim cache so membership is preserved, and report full.
	return f.stash(curFP, cur)
}

// stash parks fp (whose current home bucket is bucket) in the victim
// cache. If the cache is already taken the insert is refused outright —
// callers see ErrFull either way, but with an occupied cache the caller's
// key was never stored, so Insert re-reports full without side effects.
func (f *Filter) stash(fp, bucket uint64) error {
	if !f.victim.valid {
		f.victim = stashFP{fp: fp, bucket: bucket, valid: true}
		f.n++
	}
	return core.ErrFull
}

// victimMatches reports whether the victim cache holds fp homed at
// either of the two given buckets.
func (f *Filter) victimMatches(fp, i1, i2 uint64) bool {
	return f.victim.valid && f.victim.fp == fp &&
		(f.victim.bucket == i1 || f.victim.bucket == i2)
}

// Contains reports whether key's fingerprint is present in either of its
// buckets (or the victim cache).
func (f *Filter) Contains(key uint64) bool {
	i1, fp := f.indexAndFP(key)
	i2 := f.altIndex(i1, fp)
	return f.containsHashed(i1, i2, fp)
}

// containsHashed finishes a lookup whose hash state (both candidate
// buckets and the fingerprint) is already computed.
func (f *Filter) containsHashed(i1, i2, fp uint64) bool {
	for s := 0; s < BucketSize; s++ {
		if f.bucketSlot(i1, s) == fp || f.bucketSlot(i2, s) == fp {
			return true
		}
	}
	return f.victimMatches(fp, i1, i2)
}

// ContainsBatch probes every key (see core.BatchFilter). Both candidate
// bucket indices and the fingerprint are precomputed for a whole chunk
// (hash-once); then bucket 1 is probed for every key in a pure load
// loop — two indexed loads per key off the hoisted backing-words slice,
// no branch or compare in between, so the whole chunk's cache misses
// are in flight at once — a branchless SWAR resolve (swar.MatchNone4)
// compacts the misses arithmetically, and only those go on to a second
// staged load loop for bucket 2. The scalar path instead serializes
// each miss behind the previous key's early-exit branch.
func (f *Filter) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	if 4*f.fpBits > 64 {
		// A bucket no longer fits one 64-bit window; fall back to the
		// slot-by-slot probe (fingerprints this wide are unusual).
		f.containsBatchWide(keys, out)
		return
	}
	mask := uint64(1)<<f.fpBits - 1
	words := f.slots.RawWords()
	bucketBits := uint64(f.fpBits) * BucketSize
	var i1s, i2s, fps, wins [core.BatchChunk]uint64
	var live [core.BatchChunk]uint16
	for start := 0; start < len(keys); start += core.BatchChunk {
		chunk := keys[start:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[start : start+len(chunk)]
		for i, k := range chunk {
			i1, fp := f.indexAndFP(k)
			i1s[i], i2s[i], fps[i] = i1, f.altIndex(i1, fp), fp
		}
		// Round 1: every key probes its first bucket. The window reads
		// get a pure loop of their own — two indexed loads per key off
		// the hoisted words slice, nothing data-dependent in between —
		// so the whole chunk's cache misses are in flight together.
		for i := range chunk {
			bitPos := i1s[i] * bucketBits
			off := bitPos & 63
			wins[i] = words[bitPos>>6]>>off | words[bitPos>>6+1]<<(64-off)
		}
		// Branchless SWAR resolve + survivor compaction out of L1.
		n := 0
		for i := range chunk {
			miss := swar.MatchNone4(wins[i], fps[i], mask, f.fpBits)
			co[i] = miss == 0
			live[n] = uint16(i)
			n += int(miss)
		}
		// Round 2: only round-1 misses probe their second bucket (the
		// scalar path skips it on a bucket-1 hit too, so batching adds
		// no extra memory traffic — it only overlaps the misses).
		for s := 0; s < n; s++ {
			bitPos := i2s[live[s]] * bucketBits
			off := bitPos & 63
			wins[s] = words[bitPos>>6]>>off | words[bitPos>>6+1]<<(64-off)
		}
		for s := 0; s < n; s++ {
			i := live[s]
			co[i] = swar.MatchNone4(wins[s], fps[i], mask, f.fpBits) == 0
		}
		// Victim cache: only consulted for keys both buckets missed.
		if f.victim.valid {
			for s := 0; s < n; s++ {
				i := live[s]
				if !co[i] {
					co[i] = f.victimMatches(fps[i], i1s[i], i2s[i])
				}
			}
		}
	}
}

// containsBatchWide is the ContainsBatch fallback for fingerprints too
// wide to pack a bucket into one 64-bit window.
func (f *Filter) containsBatchWide(keys []uint64, out []bool) {
	var i1s, i2s, fps [core.BatchChunk]uint64
	for start := 0; start < len(keys); start += core.BatchChunk {
		chunk := keys[start:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[start : start+len(chunk)]
		for i, k := range chunk {
			i1, fp := f.indexAndFP(k)
			i1s[i], i2s[i], fps[i] = i1, f.altIndex(i1, fp), fp
		}
		for i := range chunk {
			co[i] = f.containsHashed(i1s[i], i2s[i], fps[i])
		}
	}
}

// Delete removes one copy of key's fingerprint. Returns ErrNotFound if
// absent. Deleting a never-inserted key can remove a colliding key's
// fingerprint.
func (f *Filter) Delete(key uint64) error {
	i1, fp := f.indexAndFP(key)
	i2 := f.altIndex(i1, fp)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < BucketSize; s++ {
			if f.bucketSlot(b, s) == fp {
				f.setBucketSlot(b, s, 0)
				f.n--
				f.reseatVictim()
				return nil
			}
		}
	}
	if f.victimMatches(fp, i1, i2) {
		f.victim.valid = false
		f.n--
		return nil
	}
	return core.ErrNotFound
}

// reseatVictim tries to move the cached victim into one of its home
// buckets after a delete freed space.
func (f *Filter) reseatVictim() {
	if !f.victim.valid {
		return
	}
	v := f.victim
	alt := f.altIndex(v.bucket, v.fp)
	if f.tryInsertAt(v.bucket, v.fp) || f.tryInsertAt(alt, v.fp) {
		f.victim.valid = false
	}
}

// Len returns the number of stored fingerprints.
func (f *Filter) Len() int { return f.n }

// LoadFactor returns occupied slots / total slots.
func (f *Filter) LoadFactor() float64 {
	return float64(f.n) / float64(f.numBuckets*BucketSize)
}

// SizeBits returns the table footprint in bits.
func (f *Filter) SizeBits() int { return f.slots.SizeBits() }

var (
	_ core.DeletableFilter = (*Filter)(nil)
	_ core.BatchFilter     = (*Filter)(nil)
)
