package cuckoo

import (
	"io"
	"math/bits"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

func init() {
	core.Register(core.TypeCuckoo, "cuckoo",
		func() core.Persistent { return &Filter{} },
		func(s core.Spec) (core.Persistent, error) { return FromSpec(s) })
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (f *Filter) TypeID() uint16 { return core.TypeCuckoo }

// WriteTo serializes the filter as one codec frame: the construction
// Spec, the derived geometry, the eviction-walk state (rng + victim
// cache), and the nested fingerprint-table frame.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	f.spec.Encode(&e)
	e.U64(f.numBuckets)
	e.U64(uint64(f.n))
	e.U64(f.rngState)
	e.U64(f.victim.fp)
	e.U64(f.victim.bucket)
	e.Bool(f.victim.valid)
	if _, err := f.slots.WriteTo(&e); err != nil {
		return 0, err
	}
	return codec.WriteFrame(w, core.TypeCuckoo, e.Bytes())
}

// ReadFrom restores a filter written by WriteTo into the receiver,
// validating the checksum, the Spec, and the geometry/payload
// consistency. On error the receiver is left unchanged.
func (f *Filter) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeCuckoo)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	numBuckets := d.U64()
	n := d.U64()
	rngState := d.U64()
	victim := stashFP{fp: d.U64(), bucket: d.U64(), valid: d.Bool()}
	var slots bitvec.Packed
	if d.Err() == nil {
		if _, err := slots.ReadFrom(d); err != nil {
			return 0, err
		}
	}
	if err := d.Finish(); err != nil {
		return 0, err
	}
	nf, err := FromSpec(spec)
	if err != nil {
		return 0, d.Corruptf("%v", err)
	}
	if nf.numBuckets != numBuckets || bits.OnesCount64(numBuckets) != 1 {
		return 0, d.Corruptf("cuckoo: bucket count %d disagrees with spec (want %d)", numBuckets, nf.numBuckets)
	}
	if uint64(slots.Len()) != numBuckets*BucketSize || slots.Width() != uint(spec.FPBits) {
		return 0, d.Corruptf("cuckoo: table %d slots × %d bits disagrees with geometry (%d buckets × %d, fp %d bits)",
			slots.Len(), slots.Width(), numBuckets, BucketSize, spec.FPBits)
	}
	fpMask := uint64(1)<<spec.FPBits - 1
	if victim.valid && (victim.bucket >= numBuckets || victim.fp == 0 || victim.fp&^fpMask != 0) {
		return 0, d.Corruptf("cuckoo: victim cache fp=%d bucket=%d out of range", victim.fp, victim.bucket)
	}
	f.spec = spec
	f.slots = &slots
	f.numBuckets = numBuckets
	f.fpBits = uint(spec.FPBits)
	f.n = int(n)
	f.rngState = rngState
	f.victim = victim
	return int64(codec.HeaderSize + len(payload)), nil
}

var _ core.Persistent = (*Filter)(nil)
