package cuckoo

import (
	"errors"
	"testing"
	"testing/quick"

	"beyondbloom/internal/core"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestInsertContains(t *testing.T) {
	keys := workload.Keys(10000, 1)
	f := New(len(keys), 12)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPRNearTarget(t *testing.T) {
	keys := workload.Keys(20000, 2)
	f := NewForEpsilon(len(keys), 0.01)
	for _, k := range keys {
		f.Insert(k)
	}
	neg := workload.DisjointKeys(200000, 2)
	if fpr := metrics.FPR(f, neg); fpr > 0.02 {
		t.Errorf("FPR %f exceeds 2x target 0.01", fpr)
	}
}

func TestDelete(t *testing.T) {
	keys := workload.Keys(5000, 3)
	f := New(len(keys), 14)
	for _, k := range keys {
		f.Insert(k)
	}
	for _, k := range keys[:2500] {
		if err := f.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(f, keys[2500:]); fn != 0 {
		t.Fatalf("%d false negatives among survivors", fn)
	}
	gone := 0
	for _, k := range keys[:2500] {
		if !f.Contains(k) {
			gone++
		}
	}
	if gone < 2400 {
		t.Errorf("only %d/2500 deleted keys gone", gone)
	}
	if err := f.Delete(keys[0]); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestDuplicates(t *testing.T) {
	f := New(100, 12)
	for i := 0; i < 5; i++ {
		if err := f.Insert(77); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 5 {
		t.Fatalf("Len = %d, want 5", f.Len())
	}
	for i := 0; i < 5; i++ {
		if err := f.Delete(77); err != nil {
			t.Fatalf("delete copy %d: %v", i, err)
		}
	}
	if f.Contains(77) {
		t.Fatal("still present after deleting all copies")
	}
}

func TestFillsToHighLoad(t *testing.T) {
	f := New(10000, 12)
	inserted := 0
	keys := workload.Keys(20000, 5)
	for _, k := range keys {
		if f.Insert(k) != nil {
			break
		}
		inserted++
	}
	if lf := f.LoadFactor(); lf < 0.90 {
		t.Errorf("filter declared full at load %f, want >= 0.90", lf)
	}
	// Everything inserted must still be found (victim cache check).
	if fn := metrics.FalseNegatives(f, keys[:inserted]); fn != 0 {
		t.Fatalf("%d false negatives at high load", fn)
	}
}

func TestInsertAfterFullRefused(t *testing.T) {
	f := New(64, 8)
	keys := workload.Keys(1000, 7)
	var full bool
	for _, k := range keys {
		if f.Insert(k) != nil {
			full = true
			// Subsequent inserts also fail fast while victim is parked.
			if err := f.Insert(k + 1); err == nil {
				t.Fatal("insert succeeded while victim parked")
			}
			break
		}
	}
	if !full {
		t.Skip("filter never filled (unexpected geometry)")
	}
}

func TestDeleteReseatsVictim(t *testing.T) {
	f := New(64, 8)
	keys := workload.Keys(1000, 9)
	var inserted []uint64
	for _, k := range keys {
		if f.Insert(k) != nil {
			break
		}
		inserted = append(inserted, k)
	}
	if !f.victim.valid {
		t.Skip("no victim parked")
	}
	// Delete a few keys; the victim should eventually re-seat.
	for _, k := range inserted[:10] {
		f.Delete(k)
	}
	if f.victim.valid {
		t.Error("victim not re-seated after deletes freed space")
	}
	// And inserts work again.
	if err := f.Insert(inserted[0]); err != nil {
		t.Errorf("insert after reseat: %v", err)
	}
}

func TestQuickMembershipModel(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := New(len(keys)+8, 16)
		for _, k := range keys {
			if f.Insert(k) != nil {
				return true // full is acceptable, skip
			}
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapletPutGetDelete(t *testing.T) {
	m := NewMaplet(5000, 14, 8)
	keys := workload.Keys(5000, 11)
	for i, k := range keys {
		if err := m.Put(k, uint64(i%256)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		vals := m.Get(k)
		found := false
		for _, v := range vals {
			if v == uint64(i%256) {
				found = true
			}
		}
		if !found {
			t.Fatalf("Get(%d) = %v missing %d", k, vals, i%256)
		}
	}
	for i, k := range keys[:1000] {
		if err := m.Delete(k, uint64(i%256)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", m.Len())
	}
}

func TestMapletNRS(t *testing.T) {
	m := NewMaplet(10000, 12, 8)
	keys := workload.Keys(10000, 13)
	for _, k := range keys {
		m.Put(k, k&0xFF)
	}
	neg := workload.DisjointKeys(50000, 13)
	total := 0
	for _, k := range neg {
		total += len(m.Get(k))
	}
	nrs := float64(total) / float64(len(neg))
	// ε ≈ 2*4/2^12 ≈ 0.002; allow 3x.
	if nrs > 0.006 {
		t.Errorf("NRS = %f, want ≈0.002", nrs)
	}
}

func TestMapletGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry should panic")
		}
	}()
	NewMaplet(10, 1, 1)
}

func TestFilterGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad fingerprint width should panic")
		}
	}()
	New(10, 1)
}

func BenchmarkCuckooInsert(b *testing.B) {
	f := New(b.N+16, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkCuckooContains(b *testing.B) {
	f := New(1<<20, 12)
	for i := 0; i < 900000; i++ {
		f.Insert(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}

func TestChainedGrowsWithoutLimit(t *testing.T) {
	c := NewChained(1000, 12)
	keys := workload.Keys(20000, 31)
	for _, k := range keys {
		if err := c.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	// Links round capacity up to a power-of-two bucket count, so each
	// holds ~2000 keys here.
	if c.Links() < 8 {
		t.Fatalf("expected ~10 links, got %d", c.Links())
	}
	if fn := metrics.FalseNegatives(c, keys); fn != 0 {
		t.Fatalf("%d false negatives across chain", fn)
	}
}

func TestChainedDelete(t *testing.T) {
	c := NewChained(500, 14)
	keys := workload.Keys(3000, 33)
	for _, k := range keys {
		c.Insert(k)
	}
	for _, k := range keys[:1500] {
		if err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(c, keys[1500:]); fn != 0 {
		t.Fatalf("%d false negatives after deletes", fn)
	}
	if c.Len() != 1500 {
		t.Fatalf("Len = %d", c.Len())
	}
	if err := c.Delete(workload.DisjointKeys(1, 33)[0]); err == nil {
		t.Log("delete of absent key hit a collision (possible at 14-bit fp)")
	}
}

func TestChainedFPRGrowsWithChain(t *testing.T) {
	// Each link contributes its own FPR, so the compound rate grows
	// roughly linearly with chain length — the chained-expansion cost.
	short := NewChained(10000, 10)
	long := NewChained(500, 10)
	keys := workload.Keys(10000, 35)
	for _, k := range keys {
		short.Insert(k)
		long.Insert(k)
	}
	neg := workload.DisjointKeys(100000, 35)
	fprShort := metrics.FPR(short, neg)
	fprLong := metrics.FPR(long, neg)
	if fprLong < fprShort*3 {
		t.Errorf("long chain FPR %g not well above single-link %g", fprLong, fprShort)
	}
}
