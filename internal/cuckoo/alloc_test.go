package cuckoo

import (
	"testing"

	"beyondbloom/internal/workload"
)

func TestContainsZeroAllocs(t *testing.T) {
	f := New(10000, 13)
	keys := workload.Keys(10000, 5)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		f.Contains(keys[0])
		f.Contains(0xDEADBEEF)
	}); avg != 0 {
		t.Fatalf("cuckoo.Contains allocates %v per run, want 0", avg)
	}
}

func TestContainsBatchZeroAllocs(t *testing.T) {
	f := New(10000, 13)
	keys := workload.Keys(10000, 6)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	batch := keys[:300]
	out := make([]bool, len(batch))
	if avg := testing.AllocsPerRun(100, func() {
		f.ContainsBatch(batch, out)
	}); avg != 0 {
		t.Fatalf("cuckoo.ContainsBatch allocates %v per run, want 0", avg)
	}
}
