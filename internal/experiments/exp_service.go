package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/server"
	"beyondbloom/internal/workload"
)

// runE21 measures the filter service end to end (§3.3, ROADMAP item 1):
// does coalescing concurrent point requests into hash-once/probe-many
// windows buy real capacity, and what does it cost in latency?
//
// The headline table is OPEN-LOOP: a Poisson arrival schedule is
// replayed against the engine at offered loads set relative to the
// measured scalar capacity, and each request's latency is measured
// from its *scheduled* arrival — so queueing delay counts, and a
// server that cannot keep up shows an exploding tail instead of a
// flattering throughput number. The scalar baseline is the same
// dispatcher paying one admission charge and one filter probe per
// request; the batched server is the engine's real coalescer
// (EnqueueAsync + sink). Batching raises the capacity ceiling, so past
// the scalar knee the batched tail stays bounded where the scalar tail
// diverges.
//
// The second table is CLOSED-LOOP with blocking requesters, reported
// for honesty: with a handful of goroutines on one core, a blocking
// request pays the coalescing window's deadline latency and goroutine
// wakeups, so the coalescer only approaches the batch kernels'
// throughput as fan-in grows. Open-loop arrival fan-in (the service
// case) is where the window pays off.
func runE21(cfg Config) []*metrics.Table {
	n := cfg.n(4 << 20)
	filter, err := concurrent.NewShardedMutable(2, func(int) core.MutableFilter {
		return bloom.NewBlocked(n/4+1, 12)
	})
	if err != nil {
		panic(err)
	}
	present := workload.Keys(n, 21)
	for _, k := range present {
		if err := filter.Insert(k); err != nil {
			panic(err)
		}
	}
	absent := workload.DisjointKeys(n, 21)

	// The query stream is Zipfian (s=1.1) over a mixed universe: half
	// the draws hit present keys, half absent ones — hot keys repeat,
	// as service traffic does.
	q := cfg.n(250000)
	idx := workload.Zipf(q, n, 1.1, 210)
	stream := make([]uint64, q)
	for i, j := range idx {
		if i&1 == 0 {
			stream[i] = present[j]
		} else {
			stream[i] = absent[j]
		}
	}
	expect := make([]bool, q)
	core.ContainsBatch(filter, stream, expect)

	capTable, capScalar, capBatched := e21Capacity(filter, stream)
	return []*metrics.Table{
		capTable,
		e21OpenLoop(cfg, filter, stream, expect, capScalar, capBatched),
		e21ClosedLoop(cfg, filter, stream),
	}
}

// e21Capacity measures the two probe kernels' saturation throughput
// over the stream: one scalar Contains per request vs one ContainsBatch
// per chunk. Their ratio is the capacity headroom coalescing can
// unlock for the service.
func e21Capacity(filter core.Filter, stream []uint64) (*metrics.Table, float64, float64) {
	const rounds = 4

	start := time.Now()
	sink := false
	for r := 0; r < rounds; r++ {
		for _, k := range stream {
			sink = sink != filter.Contains(k)
		}
	}
	scalar := float64(rounds*len(stream)) / time.Since(start).Seconds()

	out := make([]bool, core.BatchChunk)
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for off := 0; off < len(stream); off += core.BatchChunk {
			end := off + core.BatchChunk
			if end > len(stream) {
				end = len(stream)
			}
			core.ContainsBatch(filter, stream[off:end], out[:end-off])
		}
	}
	batched := float64(rounds*len(stream)) / time.Since(start).Seconds()
	_ = sink

	t := metrics.NewTable(
		fmt.Sprintf("E21: probe-engine capacity (stream=%d, GOMAXPROCS=%d)", len(stream), runtime.GOMAXPROCS(0)),
		"engine", "Mops_per_sec", "speedup_vs_scalar")
	t.AddRow("scalar", scalar/1e6, 1.0)
	t.AddRow("batched", batched/1e6, batched/scalar)
	return t, scalar, batched
}

// e21Server is one open-loop server shape: inject request i (nowNs is
// the dispatcher's cached clock; the return value refreshes the cache,
// so a server that reads the clock anyway shares the read with the
// pacer instead of paying twice).
type e21Server interface {
	inject(i int, key uint64, nowNs int64) int64
	drain() // block until every injected request has completed
	stats() server.CoalescerStats
}

// e21Replay paces the stream onto srv along arr (nanosecond offsets
// from start) and returns the wall-clock seconds the whole run took.
// When the dispatcher falls behind schedule it injects as fast as it
// can — open loop: the backlog becomes queueing latency, not a slower
// offered rate. Pacing spins (with Gosched, so the coalescer's
// deadline goroutine can run on one core) rather than sleeping, except
// far ahead of schedule: the sleeper's wake-up slack is milliseconds,
// which would inject phantom multi-ms tail latencies at low load.
func e21Replay(srv e21Server, stream []uint64, arr []int64, start time.Time) float64 {
	now := int64(0)
	for i, k := range stream {
		if now < arr[i] {
			for {
				now = time.Since(start).Nanoseconds()
				if now >= arr[i] {
					break
				}
				if ahead := arr[i] - now; ahead > 2_000_000 {
					time.Sleep(time.Duration(ahead - 1_000_000))
				} else {
					runtime.Gosched()
				}
			}
		}
		now = srv.inject(i, k, now)
	}
	srv.drain()
	return time.Since(start).Seconds()
}

// e21Scalar is the unbatched server: one synchronous probe per
// request, completion stored by request index (no locks on the hot
// path — every index is written once).
type e21Scalar struct {
	filter core.Filter
	lats   []int64
	arr    []int64
	expect []bool
	wrong  int64
	start  time.Time
}

func (s *e21Scalar) inject(i int, key uint64, _ int64) int64 {
	ok := s.filter.Contains(key)
	now := time.Since(s.start).Nanoseconds()
	if ok != s.expect[i] {
		s.wrong++
	}
	s.lats[i] = now - s.arr[i]
	return now
}

func (s *e21Scalar) drain()                       {}
func (s *e21Scalar) stats() server.CoalescerStats { return server.CoalescerStats{} }

// e21Batched is the engine's real coalescer driven through its async
// path; the sink stores completion latency against the scheduled
// arrival, indexed by tag (tags are unique, so concurrent flushers
// never write the same slot).
type e21Batched struct {
	engine *server.Engine
	st     server.CoalescerStats
}

func newE21Batched(filter core.Filter, arr []int64, expect []bool, lats []int64, start time.Time, wrong *atomic.Int64) *e21Batched {
	e, err := server.NewEngine(filter, nil, server.Config{
		MaxBatch: core.BatchChunk,
		Window:   200 * time.Microsecond,
		Sink: func(tag, _ uint64, found bool, err error) {
			now := time.Since(start).Nanoseconds()
			if err != nil || found != expect[tag] {
				wrong.Add(1)
			}
			lats[tag] = now - arr[tag]
		},
	})
	if err != nil {
		panic(err)
	}
	return &e21Batched{engine: e}
}

func (b *e21Batched) inject(i int, key uint64, nowNs int64) int64 {
	if err := b.engine.ContainsAsync(key, uint64(i)); err != nil {
		panic(err)
	}
	return nowNs
}

// drain closes the engine: Close flushes the open window, so every
// outstanding sink callback has run when it returns.
func (b *e21Batched) drain() {
	b.engine.Close()
	b.st = b.engine.MembershipStats()
}

func (b *e21Batched) stats() server.CoalescerStats { return b.st }

// e21OpenLoop sweeps offered load across the scalar capacity knee and
// reports the latency distribution both server shapes deliver.
func e21OpenLoop(cfg Config, filter core.Filter, stream []uint64, expect []bool, capScalar, capBatched float64) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E21a: open-loop Poisson sweep (q=%d, window=200us, maxbatch=%d; offered relative to scalar capacity %.1f Mops)",
			len(stream), core.BatchChunk, capScalar/1e6),
		"offered_x_cap", "mode", "offered_kops", "achieved_kops", "p50_us", "p99_us", "p999_us", "avg_batch", "wrong_results")
	for _, mult := range []float64{0.3, 0.6, 0.9, 1.1, 1.4} {
		rate := mult * capScalar
		arr := workload.PoissonArrivals(len(stream), rate, int64(2100+int(mult*100)))
		for _, mode := range []string{"scalar", "batched"} {
			lats := make([]int64, len(stream))
			var wrongAsync atomic.Int64
			var srv e21Server
			start := time.Now()
			if mode == "scalar" {
				srv = &e21Scalar{filter: filter, lats: lats, arr: arr, expect: expect, start: start}
			} else {
				srv = newE21Batched(filter, arr, expect, lats, start, &wrongAsync)
			}
			wall := e21Replay(srv, stream, arr, start)
			wrong := wrongAsync.Load()
			if s, ok := srv.(*e21Scalar); ok {
				wrong = s.wrong
			}
			st := srv.stats()
			avgBatch := 1.0
			if st.Windows > 0 {
				avgBatch = float64(st.Keys) / float64(st.Windows)
			}
			rec := workload.NewLatencyRecorder(0)
			rec.RecordAll(lats)
			t.AddRow(mult, mode,
				rate/1e3,
				float64(len(stream))/wall/1e3,
				float64(rec.Percentile(50))/1e3,
				float64(rec.Percentile(99))/1e3,
				float64(rec.Percentile(99.9))/1e3,
				avgBatch,
				wrong)
		}
	}
	return t
}

// e21ClosedLoop runs G blocking requesters through the coalescer and
// through the scalar path. This is the shape where coalescing is
// weakest on one core — a lone requester pays the whole window
// deadline — and the table says so rather than hiding it.
func e21ClosedLoop(cfg Config, filter core.Filter, stream []uint64) *metrics.Table {
	opsTotal := cfg.n(20000)
	t := metrics.NewTable(
		fmt.Sprintf("E21b: closed-loop blocking requesters (ops=%d, window=50us, GOMAXPROCS=%d)",
			opsTotal, runtime.GOMAXPROCS(0)),
		"goroutines", "mode", "kops_per_sec", "avg_batch")
	for _, g := range []int{1, 4, 16, 64} {
		opsEach := opsTotal / g
		if opsEach == 0 {
			opsEach = 1
		}
		// A lone blocking requester pays the full window deadline per op
		// (~ms on an idle core), so capping per-goroutine ops keeps the
		// low-fan-in points honest without letting them dominate the
		// experiment's wall clock. Throughput is a rate; fewer ops at the
		// same rate report the same number.
		opsEachCoal := opsEach
		if opsEachCoal > 1000 {
			opsEachCoal = 1000
		}

		// Scalar: every goroutine probes directly.
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var sink bool
				for i := 0; i < opsEach; i++ {
					sink = sink != filter.Contains(stream[(w*opsEach+i)%len(stream)])
				}
				_ = sink
			}(w)
		}
		wg.Wait()
		scalarKops := float64(g*opsEach) / time.Since(start).Seconds() / 1e3
		t.AddRow(g, "scalar", scalarKops, 1.0)

		// Coalesced: every goroutine blocks in Engine.Contains.
		e, err := server.NewEngine(filter, nil, server.Config{
			MaxBatch: core.BatchChunk,
			Window:   50 * time.Microsecond,
		})
		if err != nil {
			panic(err)
		}
		start = time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				for i := 0; i < opsEachCoal; i++ {
					if _, err := e.Contains(ctx, stream[(w*opsEachCoal+i)%len(stream)]); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		coalescedKops := float64(g*opsEachCoal) / time.Since(start).Seconds() / 1e3
		st := e.MembershipStats()
		e.Close()
		avgBatch := 0.0
		if st.Windows > 0 {
			avgBatch = float64(st.Keys) / float64(st.Windows)
		}
		t.AddRow(g, "coalesced", coalescedKops, avgBatch)
	}
	return t
}
