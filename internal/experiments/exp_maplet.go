package experiments

import (
	"beyondbloom/internal/bloomier"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
)

// runE5 reproduces §2.4's maplet result-size taxonomy: Bloomier has
// PRS = NRS = 1 (but a static key set); quotient/cuckoo maplets have
// PRS = 1+ε and NRS = ε with full dynamism; the SlimDB-style resolving
// maplet buys PRS = 1 with an auxiliary dictionary.
func runE5(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n, 5)
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i % 251)
	}
	neg := workload.DisjointKeys(n, 5)
	const eps = 1.0 / 256

	t := metrics.NewTable("E5: maplet result sizes (n="+itoa(n)+", eps=1/256, 8-bit values)",
		"maplet", "PRS", "NRS", "wrong_value_rate", "bits/key", "dynamic")

	measure := func(name string, get func(uint64) []uint64, bits int, dynamic string) {
		posTotal, wrong := 0, 0
		for i, k := range keys {
			vals := get(k)
			posTotal += len(vals)
			found := false
			for _, v := range vals {
				if v == values[i] {
					found = true
				}
			}
			if !found {
				wrong++
			}
		}
		negTotal := 0
		for _, k := range neg {
			negTotal += len(get(k))
		}
		t.AddRow(name,
			float64(posTotal)/float64(n),
			float64(negTotal)/float64(len(neg)),
			float64(wrong)/float64(n),
			float64(bits)/float64(n),
			dynamic)
	}

	bl, err := bloomier.New(keys, values, 8, 8)
	if err == nil {
		measure("bloomier", bl.Get, bl.SizeBits(), "values only")
	}

	qm := quotient.NewMapletForCapacity(n, eps, 8)
	for i, k := range keys {
		qm.Put(k, values[i])
	}
	measure("quotient", qm.Get, qm.SizeBits(), "yes")

	cm := cuckoo.NewMaplet(n, 11, 8)
	for i, k := range keys {
		cm.Put(k, values[i])
	}
	measure("cuckoo", cm.Get, cm.SizeBits(), "yes")

	rm := quotient.NewResolvingMaplet(n, eps, 8)
	for i, k := range keys {
		rm.Put(k, values[i])
	}
	measure("resolving(slimdb)", rm.Get, rm.SizeBits(), "yes")

	return []*metrics.Table{t}
}
