package experiments

import (
	"context"

	"beyondbloom/internal/adaptive"
	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// runE16 measures what the rest of the suite assumes away: how the
// filter-fronted systems behave when the backing store misbehaves.
//
// (a) The §2.3 adaptive repair loop against a remote that errs: with
// retries the loop still converges (repeat false positives get fixed,
// just a little later), and during a full outage it degrades to
// deferred repairs without ever losing the no-false-negative guarantee.
//
// (b) The §3.1 LSM store with faulty device and filter blocks: lookups
// stay exactly correct while the I/O counters show the degraded-mode
// premium (retries, replica recoveries, filter-fallback probes).
func runE16(cfg Config) []*metrics.Table {
	return []*metrics.Table{e16Adaptive(cfg), e16LSM(cfg)}
}

// e16Adaptive replays an adversarial false-positive attack for several
// rounds under different remote-fault policies.
func e16Adaptive(cfg Config) *metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n, 61)

	// Probe filter used only to discover attack keys.
	probe := adaptive.NewCuckoo(n, 10)
	truth := core.NewMapSet()
	for _, k := range keys {
		probe.Insert(k)
		truth.Insert(k)
	}
	var attack []uint64
	for _, k := range workload.DisjointKeys(500000, 61) {
		if probe.Contains(k) {
			if attack = append(attack, k); len(attack) == 50 {
				break
			}
		}
	}

	const rounds = 30
	type scenario struct {
		name  string
		rules []fault.Rule
		opts  func() adaptive.ResilientOptions
	}
	scenarios := []scenario{
		{"healthy", nil, func() adaptive.ResilientOptions { return adaptive.ResilientOptions{} }},
		{"err20%_no_retry", []fault.Rule{fault.Transient(0.2)},
			func() adaptive.ResilientOptions { return adaptive.ResilientOptions{} }},
		{"err20%_retry4", []fault.Rule{fault.Transient(0.2)},
			func() adaptive.ResilientOptions {
				return adaptive.ResilientOptions{
					Retrier: fault.NewRetrier(fault.RetryPolicy{MaxAttempts: 4, Sleep: fault.NoSleep}),
				}
			}},
		// Total outage for the first 5 rounds' worth of remote calls,
		// then recovery: repairs defer during the outage and complete
		// after it.
		{"outage_then_recover", []fault.Rule{fault.TransientBetween(1.0, 1, uint64(5*len(attack)+1))},
			func() adaptive.ResilientOptions { return adaptive.ResilientOptions{} }},
	}

	t := metrics.NewTable("E16a: adaptive repair under remote faults ("+
		itoa(len(attack))+" FPs x "+itoa(rounds)+" rounds)",
		"scenario", "positives_total", "rounds_to_clean", "remote_errors", "deferred", "repaired_late", "false_negatives")
	ctx := context.Background()
	for _, sc := range scenarios {
		f := adaptive.NewCuckoo(n, 10)
		for _, k := range keys {
			f.Insert(k)
		}
		remote := fault.NewFallibleSet(truth, fault.NewInjector(97, sc.rules...))
		r := adaptive.NewResilient(f, remote, sc.opts())

		positives, converged := 0, -1
		for round := 0; round < rounds; round++ {
			roundPos := 0
			for _, k := range attack {
				if r.Contains(ctx, k) {
					roundPos++ // absent key reported present (unverified or unrepaired)
				}
			}
			positives += roundPos
			if roundPos == 0 && converged < 0 {
				converged = round
			}
		}
		s := r.Stats() // snapshot before the sweep below adds accesses
		// The guarantee that must survive every fault policy.
		fns := 0
		for _, k := range keys[:cfg.n(20000)] {
			if !r.Contains(ctx, k) {
				fns++
			}
		}
		roundsTo := "never"
		if converged >= 0 {
			roundsTo = itoa(converged)
		}
		t.AddRow(sc.name, positives, roundsTo, int(s.RemoteErrors), int(s.Deferred), int(s.RepairedLater), fns)
	}
	return t
}

// e16LSM compares a healthy store against stores whose device and
// filter blocks fault, verifying exactness while charging degraded I/O.
func e16LSM(cfg Config) *metrics.Table {
	n := cfg.n(200000)
	keys := workload.Keys(n, 10)
	missQ := workload.DisjointKeys(cfg.n(50000), 10)
	hitQ := keys[:cfg.n(50000)]

	type scenario struct {
		name         string
		deviceFaults func() *fault.Injector
		filterFaults func() *fault.Injector
	}
	scenarios := []scenario{
		{"healthy", nil, nil},
		{"dev_err20%", func() *fault.Injector {
			return fault.NewInjector(201, fault.Transient(0.2))
		}, nil},
		{"filter_corrupt20%", nil, func() *fault.Injector {
			return fault.NewInjector(202, fault.BitFlip(0.2))
		}},
		{"dev_err20%+perm2%+filter10%", func() *fault.Injector {
			return fault.NewInjector(203, fault.Transient(0.2), fault.Permanent(0.02))
		}, func() *fault.Injector {
			return fault.NewInjector(204, fault.Transient(0.1))
		}},
	}

	t := metrics.NewTable("E16b: LSM lookups under device/filter faults (Monkey filters, n="+itoa(n)+")",
		"scenario", "io_per_miss", "io_per_hit", "filter_fallbacks", "replica_reads", "failed_ios", "wrong_answers")
	for _, sc := range scenarios {
		opts := lsm.Options{Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: 4}
		if sc.filterFaults != nil {
			opts.FilterFaults = sc.filterFaults()
		}
		s := lsm.New(opts)
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()
		// Faults start at lookup time so every scenario serves the same
		// tree shape; ingest-time faults are E-fault's test-suite half.
		if sc.deviceFaults != nil {
			s.Device().Faults = sc.deviceFaults()
		}

		wrong := 0
		before := s.Device().Reads()
		for _, k := range missQ {
			if _, ok := s.Get(k); ok {
				wrong++
			}
		}
		ioMiss := float64(s.Device().Reads()-before) / float64(len(missQ))
		before = s.Device().Reads()
		for _, k := range hitQ {
			v, ok := s.Get(k)
			if !ok || keys[v] != k {
				wrong++
			}
		}
		ioHit := float64(s.Device().Reads()-before) / float64(len(hitQ))
		d := s.Device()
		t.AddRow(sc.name, ioMiss, ioHit, s.FilterFallbacks(), d.ReplicaReads(),
			d.FailedReads()+d.FailedWrites(), wrong)
	}
	return t
}
