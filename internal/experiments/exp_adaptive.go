package experiments

import (
	"beyondbloom/internal/adaptive"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// runE4 reproduces §2.3: a static filter pays for the same false
// positive on every repetition; adaptive filters fix each discovered
// false positive, so an adversarial repeat attack costs O(1) per
// distinct negative, and total false positives over any query sequence
// stay O(εn).
func runE4(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n, 4)

	staticCF := cuckoo.New(n, 10)
	adaptCF := adaptive.NewCuckoo(n, 10)
	adaptQF := adaptive.NewQF(sizeQ(n), 10, adaptive.ExtendUntilDistinct)
	for _, k := range keys {
		staticCF.Insert(k)
		adaptCF.Insert(k)
		adaptQF.Insert(k)
	}

	// (a) Adversarial repeat: find FPs of the static filter, replay each
	// many times against every filter. The adaptive filters adapt on
	// each discovered FP (as their host application would).
	neg := workload.DisjointKeys(500000, 4)
	var attack []uint64
	for _, k := range neg {
		if staticCF.Contains(k) || adaptCF.Contains(k) || adaptQF.Contains(k) {
			attack = append(attack, k)
			if len(attack) == 50 {
				break
			}
		}
	}
	const repeats = 1000
	advT := metrics.NewTable("E4a: adversarial repeat attack ("+itoa(len(attack))+" FPs x "+itoa(repeats)+" repeats)",
		"filter", "false_positives", "fp_per_repeat")
	countFPs := func(contains func(uint64) bool, adapt func(uint64)) int {
		total := 0
		for r := 0; r < repeats; r++ {
			for _, k := range attack {
				if contains(k) {
					total++
					if adapt != nil {
						adapt(k)
					}
				}
			}
		}
		return total
	}
	fpStatic := countFPs(staticCF.Contains, nil)
	fpACF := countFPs(adaptCF.Contains, adaptCF.Adapt)
	fpAQF := countFPs(adaptQF.Contains, adaptQF.Adapt)
	// "To adapt or to cache?" (Bender et al.): instead of fixing the
	// filter, cache recently-seen false positives. A big-enough cache
	// also stops a repeat attack — its weakness (bounded size vs
	// unbounded distinct FPs) shows in part (b).
	cache := map[uint64]struct{}{}
	const cacheCap = 16
	fpCache := countFPs(func(k uint64) bool {
		if _, hit := cache[k]; hit {
			return false
		}
		return staticCF.Contains(k)
	}, func(k uint64) {
		if len(cache) >= cacheCap {
			for victim := range cache { // evict arbitrarily
				delete(cache, victim)
				break
			}
		}
		cache[k] = struct{}{}
	})
	denom := float64(repeats)
	advT.AddRow("static_cuckoo", fpStatic, float64(fpStatic)/denom)
	advT.AddRow("static+fp_cache16", fpCache, float64(fpCache)/denom)
	advT.AddRow("adaptive_cuckoo", fpACF, float64(fpACF)/denom)
	advT.AddRow("adaptive_qf", fpAQF, float64(fpAQF)/denom)

	// (b) Zipfian negative queries (skewed repetition, §2.3's motivating
	// distribution).
	zipfT := metrics.NewTable("E4b: Zipfian negative workload",
		"filter", "false_positives", "fp_rate")
	zneg := workload.DisjointKeys(20000, 44)
	idx := workload.Zipf(200000, len(zneg), 1.2, 45)
	zipfRun := func(contains func(uint64) bool, adapt func(uint64)) int {
		total := 0
		for _, i := range idx {
			k := zneg[i]
			if contains(k) {
				total++
				if adapt != nil {
					adapt(k)
				}
			}
		}
		return total
	}
	zStatic := zipfRun(staticCF.Contains, nil)
	// The FP cache handles the hot head but churns on the long tail of
	// distinct negatives — the bounded-cache weakness of [11]'s
	// comparison.
	zCacheSet := map[uint64]struct{}{}
	zCache := zipfRun(func(k uint64) bool {
		if _, hit := zCacheSet[k]; hit {
			return false
		}
		return staticCF.Contains(k)
	}, func(k uint64) {
		if len(zCacheSet) >= 16 {
			for victim := range zCacheSet {
				delete(zCacheSet, victim)
				break
			}
		}
		zCacheSet[k] = struct{}{}
	})
	zACF := zipfRun(adaptCF.Contains, adaptCF.Adapt)
	zAQF := zipfRun(adaptQF.Contains, adaptQF.Adapt)
	m := float64(len(idx))
	zipfT.AddRow("static_cuckoo", zStatic, float64(zStatic)/m)
	zipfT.AddRow("static+fp_cache16", zCache, float64(zCache)/m)
	zipfT.AddRow("adaptive_cuckoo", zACF, float64(zACF)/m)
	zipfT.AddRow("adaptive_qf", zAQF, float64(zAQF)/m)
	return []*metrics.Table{advT, zipfT}
}

func sizeQ(n int) uint {
	q := uint(1)
	for float64(uint64(1)<<q)*0.9 < float64(n) {
		q++
	}
	return q
}
