package experiments

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/learned"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/stacked"
	"beyondbloom/internal/workload"
)

// runE9 reproduces §2.8: with a sample of frequently-queried negatives,
// a stacked filter suppresses their false positives exponentially, at
// equal total space to a plain filter.
func runE9(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	pos := workload.Keys(n, 9)
	hotNeg := workload.DisjointKeys(n/10, 9)
	coldNeg := workload.DisjointKeys(n, 90)

	t := metrics.NewTable("E9: stacked vs plain filter (hot negatives known at build)",
		"filter", "bits/key", "fpr_hot_neg", "fpr_cold_neg")
	st := stacked.New(pos, hotNeg, 8, 3)
	plain := bloom.NewBits(n, float64(st.SizeBits())/float64(n))
	for _, k := range pos {
		plain.Insert(k)
	}
	t.AddRow("plain_bloom", float64(plain.SizeBits())/float64(n),
		metrics.FPR(plain, hotNeg), metrics.FPR(plain, coldNeg))
	t.AddRow("stacked(3)", float64(st.SizeBits())/float64(n),
		metrics.FPR(st, hotNeg), metrics.FPR(st, coldNeg))
	st5 := stacked.New(pos, hotNeg, 8, 5)
	t.AddRow("stacked(5)", float64(st5.SizeBits())/float64(n),
		metrics.FPR(st5, hotNeg), metrics.FPR(st5, coldNeg))

	// E9b: the section's other half — a classifier trained on a sample
	// of *positive* queries absorbs the hot positive head, shrinking the
	// backup filter. Compare space at matched FPR on a Zipf-skewed
	// positive workload.
	// Our stdlib classifier memorizes hot keys at ~16 bits each rather
	// than generalizing, so its saving per absorbed key is bounded by
	// (bitsPerKey - 16): visible at high-precision budgets, not at 10
	// bits/key. The papers' generalizing models shift that break-even.
	lt := metrics.NewTable("E9b: learned (classifier+backup) vs plain filter, 24 bits/key budget",
		"filter", "bits/key", "hot_keys_absorbed", "fpr_cold_neg")
	idx := workload.Zipf(n*5, n, 1.3, 91)
	sample := make([]uint64, len(idx))
	for i, j := range idx {
		sample[i] = pos[j]
	}
	const budget = 24
	lf := learned.New(pos, sample, 5, budget)
	plain24 := bloom.NewBits(n, budget)
	for _, k := range pos {
		plain24.Insert(k)
	}
	lt.AddRow("plain_bloom", float64(plain24.SizeBits())/float64(n), 0, metrics.FPR(plain24, coldNeg))
	lt.AddRow("learned(thr=5)", float64(lf.SizeBits())/float64(n), lf.HotKeys(), metrics.FPR(lf, coldNeg))
	return []*metrics.Table{t, lt}
}
