package experiments

import (
	"beyondbloom/internal/circlog"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// runE15 reproduces §3.1's circular-log storyline: a log-structured
// engine whose in-memory maplet must support updates, deletes, AND
// expansion ("no system that we are aware of uses maplets that meet
// these requirements"). The expandable quotient maplet meets them: the
// table tracks lookup I/O, GC write amplification, maplet memory and
// expansion count as the store grows and churns.
func runE15(cfg Config) []*metrics.Table {
	t := metrics.NewTable("E15: circular-log engine with an expandable maplet",
		"phase", "live_keys", "maplet_KiB", "expansions", "io_per_hit", "io_per_miss", "write_amp")
	s := circlog.New()
	n := cfg.n(100000)
	keys := workload.Keys(n, 15)
	miss := workload.DisjointKeys(cfg.n(20000), 15)

	measure := func(phase string, logicalWrites int) {
		before := s.Device().Reads
		// Probe keys from the tail half, which stays live through every
		// phase (phase 3 deletes the first half).
		probes := keys[n-min(5000, n/2):]
		for _, k := range probes {
			s.Get(k)
		}
		ioHit := float64(s.Device().Reads-before) / float64(len(probes))
		before = s.Device().Reads
		for _, k := range miss {
			s.Get(k)
		}
		ioMiss := float64(s.Device().Reads-before) / float64(len(miss))
		wa := 0.0
		if logicalWrites > 0 {
			wa = float64(s.Device().Writes) / float64(logicalWrites)
		}
		t.AddRow(phase, s.Live(), float64(s.MapletBits())/8/1024, s.Expansions(), ioHit, ioMiss, wa)
	}

	// Phase 1: initial load (expansion under growth).
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	measure("load", n)

	// Phase 2: heavy update churn (GC + maplet re-pointing).
	writes := n
	for round := 0; round < 4; round++ {
		for _, k := range keys[:n/2] {
			s.Put(k, k^uint64(round))
			writes++
		}
	}
	measure("update_churn", writes)

	// Phase 3: delete half (tombstones + GC shrink).
	for _, k := range keys[:n/2] {
		s.Delete(k)
	}
	s.GC()
	measure("after_deletes", writes)
	return []*metrics.Table{t}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
