package experiments

import (
	"sort"

	"beyondbloom/internal/arf"
	"beyondbloom/internal/core"
	"beyondbloom/internal/grafite"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/proteus"
	"beyondbloom/internal/rosetta"
	"beyondbloom/internal/snarf"
	"beyondbloom/internal/surf"
	"beyondbloom/internal/workload"
)

// runE6 reproduces §2.5's range-filter comparison. Expected shapes:
// Rosetta strong at short ranges, degrading quickly as ranges grow;
// Grafite flat near its ε for all supported lengths and robust under
// key-query correlation; SuRF in between, with its space blowing up on
// adversarial shared-prefix keys; SNARF strong on a smooth key CDF;
// trained ARF near-perfect on repeated workloads.
func runE6(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n, 6)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	anyIn := func(lo, hi uint64) bool {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
		return i < len(sorted) && sorted[i] <= hi
	}
	emptyRanges := func(length uint64, m int, seed int64) [][2]uint64 {
		qs := workload.UniformRanges(2*m, length, ^uint64(0)-2*length-2, seed)
		var out [][2]uint64
		for _, q := range qs {
			if !anyIn(q.Lo, q.Hi) {
				out = append(out, [2]uint64{q.Lo, q.Hi})
				if len(out) == m {
					break
				}
			}
		}
		return out
	}

	// Filters at comparable budgets (~16-20 bits/key).
	sample := workload.UniformRanges(1000, 256, ^uint64(0)-512, 60)
	filters := []struct {
		name string
		f    core.RangeFilter
	}{
		{"surf-real8", surf.New(keys, surf.SuffixReal, 8)},
		{"rosetta", buildRosetta(n, keys)},
		{"grafite", grafite.New(keys, 16, 1.0/256)},
		{"snarf", snarf.New(keys, 16)},
		{"proteus", proteus.New(keys, sample, 18)},
	}

	fprT := metrics.NewTable("E6a: empty-range FPR vs range length (n="+itoa(n)+")",
		"filter", "len=1", "len=16", "len=256", "len=4096", "len=65536", "bits/key")
	lengths := []uint64{1, 16, 256, 4096, 65536}
	queriesPerLen := cfg.n(3000)
	for _, fl := range filters {
		row := []any{fl.name}
		for _, L := range lengths {
			row = append(row, metrics.RangeFPR(fl.f, emptyRanges(L, queriesPerLen, int64(L))))
		}
		row = append(row, float64(fl.f.SizeBits())/float64(n))
		fprT.AddRow(row...)
	}

	// ARF separately: it needs training on the workload.
	arfF := arf.New(keys, n/2)
	trainQ := emptyRanges(256, queriesPerLen, 61)
	for _, q := range trainQ {
		if arfF.MayContainRange(q[0], q[1]) {
			arfF.Adapt(q[0], q[1])
		}
	}
	fprT.AddRow("arf(trained len=256)", "-", "-",
		metrics.RangeFPR(arfF, trainQ), "-", "-",
		float64(arfF.SizeBits())/float64(n))

	// E6b: correlated queries (gap 2 past a key).
	corT := metrics.NewTable("E6b: correlated empty queries (gap=2, len=16)",
		"filter", "fpr_uniform", "fpr_correlated")
	cors := workload.CorrelatedRanges(keys, 4*queriesPerLen, 16, 2, 63)
	var corEmpty [][2]uint64
	for _, q := range cors {
		if !anyIn(q.Lo, q.Hi) {
			corEmpty = append(corEmpty, [2]uint64{q.Lo, q.Hi})
		}
	}
	uni := emptyRanges(16, queriesPerLen, 64)
	for _, fl := range filters {
		corT.AddRow(fl.name, metrics.RangeFPR(fl.f, uni), metrics.RangeFPR(fl.f, corEmpty))
	}

	// E6c: adversarial shared-prefix keys blow up SuRF's space.
	advT := metrics.NewTable("E6c: SuRF space under adversarial keys",
		"key_set", "surf_bits/key", "grafite_bits/key")
	advKeys := workload.AdversarialPrefixKeys(n, 66)
	surfRnd := surf.New(keys, surf.SuffixNone, 0)
	surfAdv := surf.New(advKeys, surf.SuffixNone, 0)
	grafRnd := grafite.New(keys, 16, 1.0/256)
	grafAdv := grafite.New(advKeys, 16, 1.0/256)
	advT.AddRow("random", float64(surfRnd.SizeBits())/float64(n), float64(grafRnd.SizeBits())/float64(n))
	advT.AddRow("adversarial-prefix", float64(surfAdv.SizeBits())/float64(n), float64(grafAdv.SizeBits())/float64(n))

	return []*metrics.Table{fprT, corT, advT}
}

func buildRosetta(n int, keys []uint64) *rosetta.Filter {
	f := rosetta.New(n, 20, 16)
	for _, k := range keys {
		f.Insert(k)
	}
	return f
}
