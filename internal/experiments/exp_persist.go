package experiments

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
	"beyondbloom/internal/xorfilter"
)

// runE17 measures the persistence layer: (a) encode/decode throughput
// per registered filter type, (b) the headline durability win —
// reloading a static filter from its file versus rebuilding it from
// the key set — and (c) the same comparison for a whole LSM store.
// The tutorial's feature list puts serialization among the properties
// future filters need; the numbers here show why: a build is a
// hashing-and-construction pass over every key while a reload is a
// sequential read plus validation, so reload wins by an order of
// magnitude and the gap widens with filter size.
func runE17(cfg Config) []*metrics.Table {
	return []*metrics.Table{e17Throughput(cfg), e17ReloadVsRebuild(cfg), e17StoreReopen(cfg)}
}

// e17Throughput encodes and decodes each filter type, reporting MB/s.
func e17Throughput(cfg Config) *metrics.Table {
	n := cfg.n(1000000)
	keys := workload.Keys(n, 71)

	build := []struct {
		name string
		make func() core.Persistent
	}{
		{"bloom", func() core.Persistent {
			f := bloom.NewBits(n, 10)
			for _, k := range keys {
				f.Insert(k)
			}
			return f
		}},
		{"blocked", func() core.Persistent {
			f := bloom.NewBlocked(n, 10)
			for _, k := range keys {
				f.Insert(k)
			}
			return f
		}},
		{"cuckoo", func() core.Persistent {
			f := cuckoo.New(n, 12)
			for _, k := range keys {
				f.Insert(k)
			}
			return f
		}},
		{"quotient", func() core.Persistent {
			f := quotient.NewForCapacity(n, 1.0/4096)
			for _, k := range keys {
				f.Insert(k)
			}
			return f
		}},
		{"xor", func() core.Persistent {
			f, err := xorfilter.New(keys, 12)
			if err != nil {
				panic(err)
			}
			return f
		}},
		{"sharded(cuckoo,8)", func() core.Persistent {
			f, err := concurrent.NewSharded(3, func(int) core.DeletableFilter {
				return cuckoo.New(n/8+64, 12)
			})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				f.Insert(k)
			}
			return f
		}},
	}

	t := metrics.NewTable("E17a: codec throughput ("+itoa(n)+" keys)",
		"filter", "encoded_MB", "encode_ms", "encode_MB/s", "decode_ms", "decode_MB/s")
	for _, b := range build {
		f := b.make()
		var buf bytes.Buffer
		start := time.Now()
		if _, err := core.Save(&buf, f); err != nil {
			panic(err)
		}
		encSec := time.Since(start).Seconds()
		mb := float64(buf.Len()) / (1 << 20)

		raw := buf.Bytes()
		start = time.Now()
		if _, err := core.Load(bytes.NewReader(raw)); err != nil {
			panic(err)
		}
		decSec := time.Since(start).Seconds()
		t.AddRow(b.name,
			fmt.Sprintf("%.2f", mb),
			fmt.Sprintf("%.2f", encSec*1e3), fmt.Sprintf("%.0f", mb/encSec),
			fmt.Sprintf("%.2f", decSec*1e3), fmt.Sprintf("%.0f", mb/decSec))
	}
	return t
}

// e17ReloadVsRebuild times rebuilding a static XOR filter from its
// keys against reloading it from a saved file.
func e17ReloadVsRebuild(cfg Config) *metrics.Table {
	n := cfg.n(1 << 24)
	keys := workload.Keys(n, 73)

	start := time.Now()
	f, err := xorfilter.New(keys, 12)
	if err != nil {
		panic(err)
	}
	buildSec := time.Since(start).Seconds()

	dir, err := os.MkdirTemp("", "bbf-e17-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/xor.bbf"
	file, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if _, err := core.Save(file, f); err != nil {
		panic(err)
	}
	if err := file.Close(); err != nil {
		panic(err)
	}

	start = time.Now()
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	g, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		panic(err)
	}
	reloadSec := time.Since(start).Seconds()
	if !g.Contains(keys[0]) {
		panic("e17: reloaded filter lost a key")
	}

	t := metrics.NewTable("E17b: reload vs rebuild, xor filter ("+itoa(n)+" keys)",
		"path", "seconds", "speedup")
	t.AddRow("rebuild_from_keys", fmt.Sprintf("%.3f", buildSec), "1.0x")
	t.AddRow("reload_from_file", fmt.Sprintf("%.3f", reloadSec),
		fmt.Sprintf("%.1fx", buildSec/reloadSec))
	return t
}

// e17StoreReopen times rebuilding an LSM store with Puts against
// reopening its saved directory.
func e17StoreReopen(cfg Config) *metrics.Table {
	n := cfg.n(400000)
	keys := workload.Keys(n, 79)

	start := time.Now()
	s := lsm.New(lsm.Options{Policy: lsm.PolicyBloom, MemtableSize: 4096})
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	buildSec := time.Since(start).Seconds()

	dir, err := os.MkdirTemp("", "bbf-e17-lsm-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	if err := s.Save(dir); err != nil {
		panic(err)
	}

	start = time.Now()
	reopened, err := lsm.OpenStore(dir, lsm.Options{})
	if err != nil {
		panic(err)
	}
	reopenSec := time.Since(start).Seconds()
	reopenedReads, reopenedWrites := reopened.Device().Reads(), reopened.Device().Writes()
	if v, ok := reopened.Get(keys[0]); !ok || v != 0 {
		panic("e17: reopened store lost a key")
	}

	t := metrics.NewTable("E17c: reopen vs rebuild, LSM store ("+itoa(n)+" entries, PolicyBloom)",
		"path", "seconds", "speedup", "runs", "reads", "writes")
	t.AddRow("rebuild_with_puts", fmt.Sprintf("%.3f", buildSec), "1.0x",
		itoa(s.Runs()), itoa(s.Device().Reads()), itoa(s.Device().Writes()))
	t.AddRow("reopen_from_disk", fmt.Sprintf("%.3f", reopenSec),
		fmt.Sprintf("%.1fx", buildSec/reopenSec),
		itoa(reopened.Runs()), itoa(reopenedReads), itoa(reopenedWrites))
	return t
}
