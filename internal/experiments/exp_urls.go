package experiments

import (
	"math/rand"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
	"beyondbloom/internal/yesno"
)

// runE14 reproduces §3.3: blocking malicious URLs. Expected shapes: the
// plain Bloom blocker keeps paying the verification penalty on the same
// hot benign URLs forever; a static no-list protects exactly the benign
// sample known at build time; the adaptive filter converges — its
// false-block rate per window goes to ~zero as the no-list self-builds.
func runE14(cfg Config) []*metrics.Table {
	numMal := cfg.n(20000)
	urls := workload.URLs(numMal*3, 14)
	malicious := urls[:numMal]
	benign := urls[numMal:]
	hot := benign[:200]
	malSet := map[string]bool{}
	for _, u := range malicious {
		malSet[u] = true
	}
	rng := rand.New(rand.NewSource(140))
	streamLen := cfg.n(200000)
	stream := make([]string, streamLen)
	for i := range stream {
		switch r := rng.Float64(); {
		case r < 0.05:
			stream[i] = malicious[rng.Intn(len(malicious))]
		case r < 0.65:
			stream[i] = hot[rng.Intn(len(hot))]
		default:
			stream[i] = benign[rng.Intn(len(benign))]
		}
	}

	blockers := []struct {
		name string
		b    yesno.Blocker
	}{
		{"plain_bloom", yesno.NewPlainBloom(malicious, 8)},
		{"static_nolist", yesno.NewStaticNoList(malicious, hot, 8)},
		{"seesaw_dynamic", yesno.NewSeesaw(malicious, hot, 8)},
		{"adaptive_qf", yesno.NewAdaptive(malicious, sizeQ(numMal), 6)},
	}

	// Per-window false blocks: the adaptive blocker should converge.
	windows := 10
	winT := metrics.NewTable("E14a: benign false blocks per window ("+itoa(streamLen)+" requests)",
		rowHeaders(windows)...)
	// missed_malicious counts malicious requests that slipped through —
	// zero for every design except the seesaw's dynamic no-list, whose
	// cell-pressing can release malicious URLs (the documented hazard).
	sumT := metrics.NewTable("E14b: totals",
		"blocker", "false_blocks", "verifications", "malicious_blocked", "missed_malicious", "KiB")
	maliciousRequests := 0
	for _, u := range stream {
		if malSet[u] {
			maliciousRequests++
		}
	}
	winSize := streamLen / windows
	for _, bl := range blockers {
		row := []any{bl.name}
		var total yesno.Stats
		for w := 0; w < windows; w++ {
			st := yesno.Run(bl.b, stream[w*winSize:(w+1)*winSize], malSet)
			row = append(row, st.FalseBlocks)
			total.FalseBlocks += st.FalseBlocks
			total.Verifications += st.Verifications
			total.Blocked += st.Blocked
		}
		winT.AddRow(row...)
		sumT.AddRow(bl.name, total.FalseBlocks, total.Verifications, total.Blocked,
			maliciousRequests-total.Blocked,
			float64(bl.b.SizeBits())/8/1024)
	}
	return []*metrics.Table{winT, sumT}
}

func rowHeaders(windows int) []string {
	hs := []string{"blocker"}
	for w := 1; w <= windows; w++ {
		hs = append(hs, "w"+itoa(w))
	}
	return hs
}
