package experiments

import (
	"beyondbloom/internal/kmer"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/seqindex"
	"beyondbloom/internal/workload"
)

// runE12 reproduces §3.2's k-mer claims: the CQF counts skewed k-mer
// multisets compactly; the Bloom-backed de Bruijn graph keeps its
// large-scale structure until the FPR nears 0.15; removing the critical
// false positives makes navigation exact, and a cascading Bloom filter
// shrinks the removal structure.
func runE12(cfg Config) []*metrics.Table {
	genomeLen := cfg.n(100000)
	genome := workload.DNA(genomeLen, 12)
	reads := workload.Reads(genome, genomeLen/50, 100, 0.005, 13)
	const k = 17

	// E12a: counter comparison.
	cntT := metrics.NewTable("E12a: k-mer counting (k=17, genome "+itoa(genomeLen)+"bp)",
		"counter", "distinct_kmers", "bits/distinct", "exact")
	counter := kmer.NewCounter(k, genomeLen*2, 1.0/256)
	exact := kmer.NewExactCounter(k, genomeLen*2)
	naive := map[uint64]uint64{}
	for _, r := range reads {
		counter.AddRead(r)
		exact.AddRead(r)
		kmer.Iterate(r, k, func(code uint64) { naive[code]++ })
	}
	nd := len(naive)
	cntT.AddRow("cqf(approx)", counter.Distinct(), float64(counter.SizeBits())/float64(nd), "no")
	cntT.AddRow("cqf(exact fp)", exact.Distinct(), float64(exact.SizeBits())/float64(nd), "yes")
	cntT.AddRow("go_map(baseline)", nd, 128.0, "yes") // 2 words/entry, ignoring map overhead

	// E12b: de Bruijn graph structure vs Bloom FPR.
	codes := make([]uint64, 0, nd)
	for c := range naive {
		codes = append(codes, c)
	}
	dbgT := metrics.NewTable("E12b: de Bruijn graph vs Bloom bits (structure survives FPR < 0.15)",
		"bits/kmer", "bloom_fpr", "components", "phantom_neighbor_rate")
	trueSet := map[uint64]bool{}
	for _, c := range codes {
		trueSet[c] = true
	}
	for _, bpk := range []float64{16, 8, 4, 3, 2} {
		g := kmer.NewDeBruijn(k, codes, bpk)
		neg := workload.DisjointKeys(20000, 12)
		fpr := metrics.FPR(probeDBG{g}, neg)
		phantoms, checked := 0, 0
		for i, c := range codes {
			if i%7 != 0 {
				continue
			}
			for _, nb := range g.Neighbors(c) {
				checked++
				if !trueSet[nb] {
					phantoms++
				}
			}
		}
		rate := 0.0
		if checked > 0 {
			rate = float64(phantoms) / float64(checked)
		}
		dbgT.AddRow(bpk, fpr, g.Components(codes), rate)
	}

	// E12c: exactness structures.
	exT := metrics.NewTable("E12c: exact navigation structures (bloom 6 bits/kmer)",
		"structure", "critical_fps", "extra_bits", "bits/kmer")
	g := kmer.NewDeBruijn(k, codes, 6)
	cfps := g.CriticalFPs(codes)
	tableBits := g.InstallExactTable(cfps)
	g2 := kmer.NewDeBruijn(k, codes, 6)
	cascadeBits := g2.InstallCascade(codes, cfps, 10)
	exT.AddRow("exact_table(chikhi-rizk)", len(cfps), tableBits, float64(tableBits)/float64(nd))
	exT.AddRow("cascading_bloom(salikhov)", len(cfps), cascadeBits, float64(cascadeBits)/float64(nd))

	// E12d: deBGR-style self-correction of the weighted graph: the edge
	// invariant repairs most node-count overcounts of a coarse CQF.
	wT := metrics.NewTable("E12d: weighted de Bruijn graph (deBGR) self-correction",
		"node_cqf_delta", "raw_wrong_rate", "corrected_wrong_rate", "undercounts")
	for _, delta := range []float64{1.0 / 16, 1.0 / 64, 1.0 / 256} {
		w := kmer.NewWeighted(k, nd*2, delta)
		truth := map[uint64]uint64{}
		for _, r := range reads {
			w.AddRead(r)
			kmer.Iterate(r, k, func(code uint64) { truth[code]++ })
		}
		rawWrong, corrWrong, under := 0, 0, 0
		for code, want := range truth {
			if w.RawCount(code) != want {
				rawWrong++
			}
			got := w.Count(code)
			if got != want {
				corrWrong++
			}
			if got < want {
				under++
			}
		}
		tn := float64(len(truth))
		wT.AddRow(delta, float64(rawWrong)/tn, float64(corrWrong)/tn, under)
	}
	return []*metrics.Table{cntT, dbgT, exT, wT}
}

// probeDBG adapts a de Bruijn graph to the metrics.Prober interface over
// arbitrary key probes (masked into k-mer space).
type probeDBG struct{ g *kmer.DeBruijn }

func (p probeDBG) Contains(key uint64) bool {
	return p.g.Present(kmer.Canonical(key&(1<<(2*17)-1), 17))
}

// runE13 reproduces §3.2's index comparison: Mantis is exact and smaller
// than the SBT at comparable query quality.
func runE13(cfg Config) []*metrics.Table {
	numExp := 32
	genomeLen := cfg.n(20000)
	const k = 15
	backbone := workload.DNA(genomeLen, 131)
	sets := make([][]uint64, numExp)
	genomes := make([][]byte, numExp)
	for e := 0; e < numExp; e++ {
		g := append(append([]byte{}, backbone...), workload.DNA(genomeLen/4, 131+int64(e)+1)...)
		genomes[e] = g
		set := map[uint64]struct{}{}
		kmer.Iterate(g, k, func(code uint64) { set[code] = struct{}{} })
		codes := make([]uint64, 0, len(set))
		for c := range set {
			codes = append(codes, c)
		}
		sets[e] = codes
	}
	sbt := seqindex.NewSBT(sets, 12)
	mantis := seqindex.NewMantis(k, sets)

	t := metrics.NewTable("E13: SBT vs Mantis ("+itoa(numExp)+" experiments, theta=0.8)",
		"index", "MiB", "exact", "probes/query", "false_hits", "missed_hits")
	queries := 50
	truth := func(q []uint64) map[int]bool {
		need := int(0.8 * float64(len(q)))
		out := map[int]bool{}
		for e, codes := range sets {
			set := map[uint64]bool{}
			for _, c := range codes {
				set[c] = true
			}
			hits := 0
			for _, c := range q {
				if set[c] {
					hits++
				}
			}
			if hits >= need {
				out[e] = true
			}
		}
		return out
	}
	evaluate := func(query func([]uint64, float64) []int, probes *int) (falseHits, missed int, probesPerQ float64) {
		*probes = 0
		for i := 0; i < queries; i++ {
			e := i % numExp
			g := genomes[e]
			start := len(g) - 800 - (i%5)*37
			var q []uint64
			kmer.Iterate(g[start:start+600], k, func(c uint64) { q = append(q, c) })
			want := truth(q)
			got := query(q, 0.8)
			gotSet := map[int]bool{}
			for _, x := range got {
				gotSet[x] = true
				if !want[x] {
					falseHits++
				}
			}
			for w := range want {
				if !gotSet[w] {
					missed++
				}
			}
		}
		return falseHits, missed, float64(*probes) / float64(queries)
	}
	fh, ms, pq := evaluate(sbt.Query, &sbt.Probes)
	t.AddRow("sbt", float64(sbt.SizeBits())/8/1024/1024, "no", pq, fh, ms)
	fh, ms, pq = evaluate(mantis.Query, &mantis.Probes)
	t.AddRow("mantis", float64(mantis.SizeBits())/8/1024/1024, "yes", pq, fh, ms)
	return []*metrics.Table{t}
}
