// Package experiments implements the E1–E14 experiment suite indexed in
// DESIGN.md §2 — the stand-ins for the tutorial's (absent) tables and
// figures. Every experiment regenerates a table whose shape the paper's
// inline quantitative claims predict; EXPERIMENTS.md records paper-vs-
// measured for each. The same runners back `beyondbloom exp <id>` and
// the root bench suite.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"beyondbloom/internal/metrics"
)

// Config scales the experiment workloads. Scale 1.0 is the default
// (CLI) size; tests and benchmarks use smaller scales.
type Config struct {
	Scale float64
}

func (c Config) n(base int) int {
	if c.Scale == 0 {
		c.Scale = 1
	}
	n := int(float64(base) * c.Scale)
	if n < 100 {
		n = 100
	}
	return n
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) []*metrics.Table
}

// All returns the registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Space vs false-positive rate across filter classes (§2)", runE1},
		{"E2", "Dynamic filter throughput vs occupancy (§2.1)", runE2},
		{"E3", "Expansion strategies: FPR and query cost per doubling (§2.2)", runE3},
		{"E4", "Adaptivity under adversarial and skewed queries (§2.3)", runE4},
		{"E5", "Maplet positive/negative result sizes (§2.4)", runE5},
		{"E6", "Range filters: FPR vs range length, correlation, adversarial keys (§2.5)", runE6},
		{"E7", "Counting filters on skewed multisets (§2.6)", runE7},
		{"E8", "Static filters: space, build and query cost (§2.7)", runE8},
		{"E9", "Stacked filters on hot negative queries (§2.8)", runE9},
		{"E10", "LSM point lookups: filters, Monkey, maplet (§3.1)", runE10},
		{"E11", "LSM range scans with range filters (§3.1+§2.5)", runE11},
		{"E12", "k-mer counting and de Bruijn graphs (§3.2)", runE12},
		{"E13", "Sequence search: SBT vs Mantis (§3.2)", runE13},
		{"E14", "Malicious-URL yes/no lists (§3.3)", runE14},
		{"E15", "Circular-log engine with an expandable maplet (§3.1)", runE15},
		{"E16", "Fault injection: adaptivity and LSM lookups on an unreliable backing store (§2.3+§3.1)", runE16},
		{"E17", "Persistence: codec throughput and reload vs rebuild (§2.7+§3.1)", runE17},
		{"E18", "Concurrent LSM: read scaling under background compaction (§3.1)", runE18},
		{"E19", "Durable LSM: crash-point sweep and durability-mode put latency (§3.1)", runE19},
		{"E20", "Bloom variant frontier: classic vs blocked vs two-choice at equal bits/key (§2)", runE20},
		{"E21", "Filter service: open-loop coalescing sweep and closed-loop fan-in (§3.3)", runE21},
		{"E22", "Maplet-first LSM: device reads per lookup and the batched maplet probe path (§3.1)", runE22},
		{"E23", "Growable filters: FPR drift, bits/key and pause-free expansion 2^10 -> 2^26 (§2.2)", runE23},
	}
	sort.Slice(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return append(exps, ablations()...)
}

func idNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// opsPerSec times fn over n operations.
func opsPerSec(n int, fn func()) float64 {
	start := time.Now()
	fn()
	el := time.Since(start).Seconds()
	if el == 0 {
		return 0
	}
	return float64(n) / el
}

// nsPerOp times fn over n operations.
func nsPerOp(n int, fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}
