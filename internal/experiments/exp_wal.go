package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"beyondbloom/internal/fault"
	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
)

// runE19 measures the durability layer (ROADMAP item 1; the tutorial's
// systems pitch assumes the store under the filters survives crashes).
// E19a is the crash-point sweep: a scripted workload runs over the
// crash-simulating filesystem and is killed after every single
// mutating filesystem operation — mid-append, mid-rotation, mid-flush,
// mid-checkpoint, mid-retire — then recovered and byte-compared
// against the write history. E19b is the price of that durability: put
// latency percentiles per durability mode over the same simulated
// device, isolating protocol overhead (framing, group-commit
// coordination, checkpoint scheduling) from raw device fsync cost,
// which is reported separately as fsyncs per 1k puts.
func runE19(cfg Config) []*metrics.Table {
	return []*metrics.Table{e19CrashSweep(), e19Latency(cfg)}
}

// e19Script mirrors the workload of the lsm crash tests: overlapping
// puts and deletes over a small key space, sized so the tiny geometry
// (memtable 8, segment 256 B) forces flushes, rotations, compactions
// and checkpoints within a few dozen operations.
const e19KeySpace = 37

func e19Script() []lsm.Entry {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	script := make([]lsm.Entry, 0, 60)
	for i := 0; i < 60; i++ {
		k := next()%e19KeySpace + 1
		if next()%5 == 0 {
			script = append(script, lsm.Entry{Key: k, Tombstone: true})
		} else {
			script = append(script, lsm.Entry{Key: k, Value: next()})
		}
	}
	return script
}

func e19Opts(mode lsm.Durability, fs fault.FS) lsm.Options {
	return lsm.Options{
		MemtableSize:    8,
		Policy:          lsm.PolicyBloom,
		Durability:      mode,
		FS:              fs,
		WALSegmentBytes: 256,
	}
}

// e19CrashSweep is fixed-size (the sweep is a proof, not a scaling
// study): for every durability mode it kills the store at every
// op-window, recovers, and classifies the outcome. A recovered image
// must equal the write-history prefix at or past the last acknowledged
// operation (durable modes) or any clean prefix (buffered); anything
// else counts as lost or invented writes — both columns must read 0.
func e19CrashSweep() *metrics.Table {
	script := e19Script()
	models := make([]map[uint64]uint64, len(script)+1)
	models[0] = map[uint64]uint64{}
	for i, e := range script {
		m := make(map[uint64]uint64, len(models[i])+1)
		for k, v := range models[i] {
			m[k] = v
		}
		if e.Tombstone {
			delete(m, e.Key)
		} else {
			m[e.Key] = e.Value
		}
		models[i+1] = m
	}

	t := metrics.NewTable(
		fmt.Sprintf("E19a: crash-point sweep (%d ops, memtable=8, segment=256B)", len(script)),
		"mode", "crash_points", "recovered", "lost_acked", "invented", "torn_repairs")
	for _, mode := range []struct {
		name string
		d    lsm.Durability
	}{
		{"group", lsm.DurabilityGroup},
		{"always", lsm.DurabilityAlways},
		{"buffered", lsm.DurabilityBuffered},
	} {
		run := func(fs *fault.CrashFS) (acked int, openErr error) {
			s, err := lsm.OpenStore("db", e19Opts(mode.d, fs))
			if err != nil {
				return 0, err
			}
			for i, e := range script {
				if err := s.Apply(e); err != nil {
					return i, nil
				}
			}
			s.Close()
			return len(script), nil
		}
		dry := fault.NewCrashFS(99)
		if acked, err := run(dry); err != nil || acked != len(script) {
			panic(fmt.Sprintf("E19a dry run failed: %d acked, %v", acked, err))
		}
		total := dry.Ops()
		var recovered, lost, invented, torn int
		for k := 1; k <= total; k++ {
			fs := fault.NewCrashFS(99)
			fs.CrashAfter(k)
			acked, openErr := run(fs)
			r, err := lsm.OpenStore("db", e19Opts(mode.d, fs.Recover()))
			if err != nil {
				invented++ // unrecoverable counts as data loss of the worst kind
				continue
			}
			torn += int(r.WAL().Stats().TornRepairs)
			state := make(map[uint64]uint64)
			for key := uint64(1); key <= e19KeySpace; key++ {
				if v, ok := r.Get(key); ok {
					state[key] = v
				}
			}
			lo := acked
			if mode.d == lsm.DurabilityBuffered || openErr != nil {
				lo = 0
			}
			hi := acked + 1
			if hi > len(script) {
				hi = len(script)
			}
			equal := func(i int) bool {
				if len(state) != len(models[i]) {
					return false
				}
				for key, v := range models[i] {
					if sv, has := state[key]; !has || sv != v {
						return false
					}
				}
				return true
			}
			// Distinct prefixes can share a state (an overwrite or no-op
			// delete), so check the acceptable window before concluding the
			// image is a stale — lost-write — prefix.
			outcome := &invented
			for i := lo; i <= hi; i++ {
				if equal(i) {
					outcome = &recovered
					break
				}
			}
			if outcome == &invented {
				for i := 0; i < lo; i++ {
					if equal(i) {
						outcome = &lost
						break
					}
				}
			}
			*outcome++
		}
		t.AddRow(mode.name, total, recovered, lost, invented, torn)
	}
	return t
}

// e19Latency prices each durability mode: concurrent writers apply
// distinct keys to a Background store over the simulated device and
// record per-put latency. Group commit's promise is the p99.9 column:
// writers piggyback on each other's syncs, so the tail stays near the
// no-WAL baseline while fsyncs-per-1k-puts (the device-bound cost a
// real disk would charge ~100µs each for) collapses versus
// fsync-per-op mode.
func e19Latency(cfg Config) *metrics.Table {
	n := cfg.n(100000)
	const writers = 4
	perWriter := n / writers
	t := metrics.NewTable(
		fmt.Sprintf("E19b: put latency by durability mode (puts=%d, writers=%d)", perWriter*writers, writers),
		"mode", "Mputs_per_sec", "p50_us", "p99_us", "p99_9_us", "fsyncs_per_1k")
	for _, mode := range []struct {
		name string
		d    lsm.Durability
	}{
		{"no_wal", lsm.DurabilityNone},
		{"buffered", lsm.DurabilityBuffered},
		{"group_commit", lsm.DurabilityGroup},
		{"fsync_per_op", lsm.DurabilityAlways},
	} {
		fs := fault.NewCrashFS(1)
		opts := lsm.Options{
			MemtableSize: 1024, SizeRatio: 4, Policy: lsm.PolicyBloom,
			Background: true, L0RunBudget: 8,
		}
		var s *lsm.Store
		var err error
		if mode.d == lsm.DurabilityNone {
			s = lsm.New(opts)
		} else {
			opts.Durability = mode.d
			opts.FS = fs
			s, err = lsm.OpenStore("db", opts)
			if err != nil {
				panic(fmt.Sprintf("E19b open %s: %v", mode.name, err))
			}
		}
		lats := make([][]time.Duration, writers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lat := make([]time.Duration, perWriter)
				for i := 0; i < perWriter; i++ {
					k := uint64(w*perWriter + i + 1)
					t0 := time.Now()
					if err := s.Apply(lsm.Entry{Key: k, Value: k * 3}); err != nil {
						panic(fmt.Sprintf("E19b %s: %v", mode.name, err))
					}
					lat[i] = time.Since(t0)
				}
				lats[w] = lat
			}(w)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		var syncs uint64
		if wl := s.WAL(); wl != nil {
			syncs = wl.Stats().Syncs
		}
		s.Close()

		all := make([]time.Duration, 0, perWriter*writers)
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		us := func(q int) float64 { // q per mille
			return float64(all[len(all)*q/1000].Nanoseconds()) / 1e3
		}
		total := float64(len(all))
		t.AddRow(mode.name, total/el/1e6, us(500), us(990), us(999),
			float64(syncs)/total*1000)
	}
	return t
}
