package experiments

import (
	"math"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/prefixfilter"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/ribbon"
	"beyondbloom/internal/rsqf"
	"beyondbloom/internal/workload"
	"beyondbloom/internal/xorfilter"
)

// runE1 reproduces §2's space claims: bits/key against the lower bound
// lg(1/ε) for every filter class. Expected shape: Bloom pays 1.44×, the
// fingerprint filters pay an additive 2-3 bits (so Bloom wins only at
// large ε), XOR pays 1.23×, ribbon ≈1.05×.
func runE1(cfg Config) []*metrics.Table {
	// Snap n to ~93% of a power of two: table filters (quotient, cuckoo)
	// round capacity up to 2^q slots, and comparing space at an
	// arbitrary n would charge them for unused slack rather than their
	// structural overhead.
	n := cfg.n(200000)
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	n = pow * 93 / 100 * 2
	keys := workload.Keys(n, 1)
	neg := workload.DisjointKeys(n*2, 1)
	t := metrics.NewTable("E1: space vs false-positive rate (n="+itoa(n)+")",
		"filter", "target_eps", "bits/key", "lower_bound", "overhead_x", "measured_fpr")

	for _, logEps := range []uint{4, 8, 12, 16} {
		eps := 1.0 / float64(uint64(1)<<logEps)
		lower := float64(logEps)

		bf := bloom.New(n, eps)
		for _, k := range keys {
			bf.Insert(k)
		}
		addE1Row(t, "bloom", eps, bf, n, lower, neg)

		qf := quotient.NewForCapacity(n, eps)
		for _, k := range keys {
			qf.Insert(k)
		}
		addE1Row(t, "quotient(3bit)", eps, qf, n, lower, neg)

		// The RSQF block layout is the paper's 2.125-metadata-bit number.
		rq := rsqf.New(keys, logEps)
		addE1Row(t, "quotient(rsqf)", eps, rq, n, lower, neg)

		cf := cuckoo.NewForEpsilon(n, eps)
		for _, k := range keys {
			cf.Insert(k)
		}
		addE1Row(t, "cuckoo", eps, cf, n, lower, neg)

		pf := prefixfilter.New(n, logEps+5)
		for _, k := range keys {
			pf.Insert(k)
		}
		addE1Row(t, "prefix", eps, pf, n, lower, neg)

		if logEps <= 16 {
			xf, err := xorfilter.New(keys, logEps)
			if err == nil {
				addE1Row(t, "xor", eps, xf, n, lower, neg)
			}
			rf, err := ribbon.New(keys, logEps)
			if err == nil {
				addE1Row(t, "ribbon", eps, rf, n, lower, neg)
			}
		}
	}
	return []*metrics.Table{t}
}

func addE1Row(t *metrics.Table, name string, eps float64, f core.Filter, n int, lower float64, neg []uint64) {
	bpk := core.BitsPerKey(f, n)
	t.AddRow(name, eps, bpk, lower, bpk/math.Max(lower, 1), metrics.FPR(f, neg))
}

// runE2 reproduces §2.1's mechanics story: quotient (Robin Hood shifting)
// and cuckoo (kicking) both slow down as occupancy rises; cuckoo inserts
// start failing near 95%. The batch columns probe the same keys through
// ContainsBatch in 256-key batches — hash-once/probe-many lookups whose
// advantage grows with the filter's working set (see DESIGN.md).
func runE2(cfg Config) []*metrics.Table {
	n := cfg.n(200000)
	keys := workload.Keys(n+n/2, 2)
	t := metrics.NewTable("E2: dynamic filter ops/sec vs occupancy",
		"filter", "load", "insert_Mops", "lookup_Mops", "batch_Mops", "batch_speedup")

	// Quotient filter sized so n keys reach ~0.94 load.
	q := uint(1)
	for float64(uint64(1)<<q)*0.94 < float64(n) {
		q++
	}
	qf := quotient.New(q, 10)
	cf := cuckoo.New(n, 12)
	bands := []float64{0.5, 0.75, 0.9, 0.95}
	start := 0
	for _, band := range bands {
		target := int(band * float64(n))
		if target > len(keys) {
			target = len(keys)
		}
		count := target - start
		if count <= 0 {
			continue
		}
		batch := keys[start:target]
		insQF := opsPerSec(count, func() {
			for _, k := range batch {
				if qf.Insert(k) != nil {
					break
				}
			}
		}) / 1e6
		insCF := opsPerSec(count, func() {
			for _, k := range batch {
				if cf.Insert(k) != nil {
					break
				}
			}
		}) / 1e6
		probes := keys[:count]
		lookQF := bestOfRuns(count, func() {
			for _, k := range probes {
				qf.Contains(k)
			}
		}) / 1e6
		lookCF := bestOfRuns(count, func() {
			for _, k := range probes {
				cf.Contains(k)
			}
		}) / 1e6
		batchQF := batchLookupMops(qf, probes)
		batchCF := batchLookupMops(cf, probes)
		t.AddRow("quotient", band, insQF, lookQF, batchQF, batchQF/lookQF)
		t.AddRow("cuckoo", band, insCF, lookCF, batchCF, batchCF/lookCF)
		start = target
	}
	return []*metrics.Table{t}
}

// bestOfRuns times fn three times and returns the best ops/sec — only
// valid for idempotent work (lookups), where repetition squeezes out
// the scheduler noise a single sub-millisecond pass cannot.
func bestOfRuns(n int, fn func()) float64 {
	best := 0.0
	for r := 0; r < 3; r++ {
		if v := opsPerSec(n, fn); v > best {
			best = v
		}
	}
	return best
}

// batchLookupMops measures ContainsBatch throughput over probes in
// 256-key batches with a reused out slice, in millions of keys/sec.
func batchLookupMops(f core.BatchFilter, probes []uint64) float64 {
	const batchSize = 256
	out := make([]bool, batchSize)
	return bestOfRuns(len(probes), func() {
		for base := 0; base < len(probes); base += batchSize {
			end := base + batchSize
			if end > len(probes) {
				end = len(probes)
			}
			f.ContainsBatch(probes[base:end], out[:end-base])
		}
	}) / 1e6
}

// runE8 reproduces §2.7: static filters' build cost, query cost and
// space. Expected: ribbon smallest, xor close, bloom largest; ribbon
// queries slower than xor.
func runE8(cfg Config) []*metrics.Table {
	n := cfg.n(500000)
	keys := workload.Keys(n, 8)
	neg := workload.DisjointKeys(n, 8)
	t := metrics.NewTable("E8: static filters (n="+itoa(n)+", 8-bit fingerprints)",
		"filter", "bits/key", "build_ns/key", "query_ns/op", "measured_fpr")

	var bf *bloom.Filter
	buildBloom := nsPerOp(n, func() {
		bf = bloom.New(n, 1.0/256)
		for _, k := range keys {
			bf.Insert(k)
		}
	})
	queryBloom := nsPerOp(len(neg), func() {
		for _, k := range neg {
			bf.Contains(k)
		}
	})
	t.AddRow("bloom", core.BitsPerKey(bf, n), buildBloom, queryBloom, metrics.FPR(bf, neg))

	var xf *xorfilter.Filter
	buildXor := nsPerOp(n, func() {
		xf, _ = xorfilter.New(keys, 8)
	})
	queryXor := nsPerOp(len(neg), func() {
		for _, k := range neg {
			xf.Contains(k)
		}
	})
	t.AddRow("xor", core.BitsPerKey(xf, n), buildXor, queryXor, metrics.FPR(xf, neg))

	var rf *ribbon.Filter
	buildRibbon := nsPerOp(n, func() {
		rf, _ = ribbon.New(keys, 8)
	})
	queryRibbon := nsPerOp(len(neg), func() {
		for _, k := range neg {
			rf.Contains(k)
		}
	})
	t.AddRow("ribbon", core.BitsPerKey(rf, n), buildRibbon, queryRibbon, metrics.FPR(rf, neg))
	return []*metrics.Table{t}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
