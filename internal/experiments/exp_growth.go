package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
	"beyondbloom/internal/infini"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/taffy"
	"beyondbloom/internal/workload"
)

// runE23 measures the GrowableFilter contract end to end (§2.2 made
// first-class): a taffy filter grows online from 2^10 toward 2^26 keys
// while we track FPR drift against its compound budget and bits/key
// against chained (scalable Bloom), donating-without-lengthening
// (InfiniFilter) and rebuild-from-scratch baselines; then the
// insert-latency shape during growth — the whole point of amortized
// expansion is the absence of a rebuild pause — and finally growth
// under the E18-style chaos workload on the sharded wrapper, where
// wrong_results is a live correctness invariant.
func runE23(cfg Config) []*metrics.Table {
	return []*metrics.Table{e23Drift(cfg), e23Latency(cfg), e23Chaos(cfg)}
}

const (
	e23Eps   = 1.0 / 256
	e23Start = 1 << 10
	e23Seed  = uint64(23)
	// Baselines stop at 2^22 keys: past that the chained and rebuild
	// strategies dominate the run time without changing their curves,
	// while taffy continues alone to the full target.
	e23BaselineCapDoublings = 12
)

// e23Key is workload.Keys(n, e23Seed)[i] computed on the fly, so the
// 2^26-key stream never has to be materialized.
func e23Key(i int) uint64 { return hashutil.Mix64(uint64(i) + e23Seed<<32) }

// e23Doublings picks the checkpoint count: the largest d with
// e23Start<<d <= nFinal, at least 10 so even smoke scales exercise
// double-digit doubling rounds (2^10 start keeps that cheap).
func e23Doublings(nFinal int) int {
	d := 0
	for e23Start<<(d+1) <= nFinal {
		d++
	}
	if d < 10 {
		d = 10
	}
	return d
}

// e23Drift grows all four strategies checkpoint by checkpoint and
// records FPR and bits/key at every doubling. The rebuild baseline
// reconstructs a classic Bloom filter sized for the current n at each
// checkpoint — perfect space and FPR, paid for with a full-stop
// rebuild whose cost shows up in E23b.
func e23Drift(cfg Config) *metrics.Table {
	doublings := e23Doublings(cfg.n(1 << 26))
	nFinal := e23Start << doublings
	capN := e23Start << min(doublings, e23BaselineCapDoublings)
	neg := workload.DisjointKeys(1<<16, e23Seed)

	t := metrics.NewTable(
		fmt.Sprintf("E23: FPR and bits/key growing 2^10 -> n=%d (eps=1/256, budget_x1.5=%.5f, baseline_cap=%d)",
			nFinal, 1.5*e23Eps, capN),
		"n", "structure", "fpr", "bits_per_key", "expansions")

	tf, err := taffy.New(e23Start, e23Eps)
	if err != nil {
		panic(err) // parameters are statically valid
	}
	sb, err := bloom.NewScalable(e23Start, e23Eps)
	if err != nil {
		panic(err) // parameters are statically valid
	}
	inf, err := infini.New(8)
	if err != nil {
		panic(err) // parameters are statically valid
	}

	inserted := 0
	for d := 0; d <= doublings; d++ {
		target := e23Start << d
		for inserted < target {
			k := e23Key(inserted)
			tf.Insert(k)
			if target <= capN {
				sb.Insert(k)
				inf.Insert(k)
			}
			inserted++
		}
		t.AddRow(target, "taffy", metrics.FPR(tf, neg), core.BitsPerKey(tf, inserted), tf.Expansions())
		if target > capN {
			continue
		}
		t.AddRow(target, "scalable", metrics.FPR(sb, neg), core.BitsPerKey(sb, inserted), sb.Expansions())
		t.AddRow(target, "infini", metrics.FPR(inf, neg), core.BitsPerKey(inf, inserted), inf.Expansions())
		// Rebuild-from-scratch: a right-sized classic Bloom filter per
		// checkpoint. FPR holds at the budget by construction; the cost
		// is re-inserting every key ever seen, measured in E23b.
		rb := bloom.New(target, e23Eps)
		for i := 0; i < target; i++ {
			rb.Insert(e23Key(i))
		}
		t.AddRow(target, "rebuild", metrics.FPR(rb, neg), core.BitsPerKey(rb, target), d)
	}
	return t
}

// e23Latency measures the insert-latency shape during growth in
// 256-insert microbatches. For taffy every expansion is amortized a few
// bucket splits at a time, so the worst batch stays within a small
// multiple of the steady-state p99; the rebuild strategy pays the whole
// reconstruction inside whichever batch crosses a power of two, so its
// worst batch is orders of magnitude above its p99. pause_ratio =
// max_batch / p99_batch is the acceptance number (taffy must stay
// under 10).
//
// Each strategy runs e23LatTrials times and each batch offset keeps its
// fastest trial: a structure's own pauses (splits, rebuilds) recur at
// the same offset every trial, while GC assists and scheduler
// preemption land at different offsets each run, so the per-offset
// minimum isolates the deterministic algorithmic cost the acceptance
// criterion is about.
func e23Latency(cfg Config) *metrics.Table {
	doublings := e23Doublings(cfg.n(1 << 26))
	nTaffy := e23Start << doublings
	nRebuild := e23Start << min(doublings, e23BaselineCapDoublings)
	const batch = 256

	t := metrics.NewTable(
		fmt.Sprintf("E23b: insert latency during growth, %d-insert microbatches (taffy_n=%d, rebuild_n=%d)",
			batch, nTaffy, nRebuild),
		"strategy", "n", "p50_us", "p99_us", "max_batch_us", "pause_ratio")

	// Taffy: one structure, one uninterrupted insert stream.
	addE23Lat(t, "taffy", nTaffy, e23BestOfTrials(nTaffy, batch, func() func(uint64) {
		tf, err := taffy.New(e23Start, e23Eps)
		if err != nil {
			panic(err) // parameters are statically valid
		}
		return func(k uint64) { tf.Insert(k) }
	}))

	// Rebuild: inserts go to a right-sized Bloom filter; crossing a
	// power of two rebuilds it from scratch inside the current batch.
	addE23Lat(t, "rebuild", nRebuild, e23BestOfTrials(nRebuild, batch, func() func(uint64) {
		rb := bloom.New(e23Start, e23Eps)
		rbCap := e23Start
		i := 0
		return func(k uint64) {
			if i == rbCap {
				rbCap *= 2
				rb = bloom.New(rbCap, e23Eps)
				for j := 0; j < i; j++ {
					rb.Insert(e23Key(j))
				}
			}
			rb.Insert(k)
			i++
		}
	}))
	return t
}

const e23LatTrials = 3

// e23BestOfTrials runs newInsert's stream e23LatTrials times in
// batch-sized microbatches and returns each offset's fastest trial in
// nanoseconds.
func e23BestOfTrials(n, batch int, newInsert func() func(uint64)) []int64 {
	best := make([]int64, n/batch)
	for i := range best {
		best[i] = 1 << 62
	}
	for trial := 0; trial < e23LatTrials; trial++ {
		insert := newInsert()
		for off := 0; off+batch <= n; off += batch {
			t0 := time.Now()
			for i := off; i < off+batch; i++ {
				insert(e23Key(i))
			}
			if d := time.Since(t0).Nanoseconds(); d < best[off/batch] {
				best[off/batch] = d
			}
		}
	}
	return best
}

func addE23Lat(t *metrics.Table, name string, n int, batches []int64) {
	rec := workload.NewLatencyRecorder(len(batches))
	rec.RecordAll(batches)
	p50 := rec.Percentile(50)
	p99 := rec.Percentile(99)
	max := rec.Percentile(100)
	ratio := 0.0
	if p99 > 0 {
		ratio = float64(max) / float64(p99)
	}
	t.AddRow(name, n, float64(p50)/1e3, float64(p99)/1e3, float64(max)/1e3, ratio)
}

// e23Chaos drives the sharded taffy wrapper through the E18 chaos
// shape: writers push every shard through repeated doubling rounds
// while readers hammer batched probes of already-inserted keys. A key
// whose insert completed before the probe began must answer positive —
// wrong_results counts violations and must be zero.
func e23Chaos(cfg Config) *metrics.Table {
	n := cfg.n(1 << 20)
	const logShards = 3
	keys := workload.Keys(n, e23Seed)

	t := metrics.NewTable(
		fmt.Sprintf("E23c: sharded growth under chaos probes (n=%d, shards=%d)", n, 1<<logShards),
		"writers", "readers", "expansions", "Minserts_per_sec", "Mprobes_per_sec", "wrong_results")

	for _, rw := range []struct{ writers, readers int }{{2, 2}, {4, 4}} {
		s, err := concurrent.NewShardedMutable(logShards, func(int) core.MutableFilter {
			f, err := taffy.New(64, e23Eps)
			if err != nil {
				panic(err) // parameters are statically valid
			}
			return f
		})
		if err != nil {
			panic(err) // parameters are statically valid
		}

		inserted := make([]atomic.Bool, n)
		var done atomic.Bool
		var wrong, probes atomic.Int64
		var writeWG, readWG sync.WaitGroup
		per := n / rw.writers

		start := time.Now()
		for w := 0; w < rw.writers; w++ {
			writeWG.Add(1)
			go func(w int) {
				defer writeWG.Done()
				for i := w * per; i < (w+1)*per; i++ {
					s.Insert(keys[i])
					inserted[i].Store(true)
				}
			}(w)
		}
		for r := 0; r < rw.readers; r++ {
			readWG.Add(1)
			go func(r int) {
				defer readWG.Done()
				batch := make([]uint64, 256)
				out := make([]bool, 256)
				pre := make([]bool, 256)
				for round := 0; !done.Load(); round++ {
					base := (r*7919 + round*4099) % (n - len(batch))
					copy(batch, keys[base:base+len(batch)])
					for j := range batch {
						pre[j] = inserted[base+j].Load()
					}
					s.ContainsBatch(batch, out)
					probes.Add(int64(len(batch)))
					for j := range batch {
						if pre[j] && !out[j] {
							wrong.Add(1)
						}
					}
				}
			}(r)
		}
		writeWG.Wait()
		writeSecs := time.Since(start).Seconds()
		done.Store(true)
		readWG.Wait()
		totalSecs := time.Since(start).Seconds()

		t.AddRow(rw.writers, rw.readers, s.Expansions(),
			float64(rw.writers*per)/writeSecs/1e6,
			float64(probes.Load())/totalSecs/1e6,
			wrong.Load())
	}
	return t
}
