package experiments

import (
	"beyondbloom/internal/core"
	"beyondbloom/internal/grafite"
	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/rosetta"
	"beyondbloom/internal/surf"
	"beyondbloom/internal/workload"
)

// runE10 reproduces §3.1's point-lookup story: per-file Bloom filters
// skip files; Monkey's allocation turns the miss cost from O(ε·levels)
// into O(ε); a global maplet (Chucky/SlimDB) gets hits in ~1 I/O and
// misses in ~0.
func runE10(cfg Config) []*metrics.Table {
	n := cfg.n(200000)
	keys := workload.Keys(n, 10)
	missQ := workload.DisjointKeys(cfg.n(50000), 10)
	hitQ := keys[:cfg.n(50000)]

	t := metrics.NewTable("E10: LSM point lookups (n="+itoa(n)+", T=4)",
		"policy", "levels", "io_per_miss", "io_per_hit", "filter_MiB", "probes_per_miss")
	for _, pc := range []struct {
		name   string
		policy lsm.FilterPolicy
	}{
		{"none", lsm.PolicyNone},
		{"bloom_uniform", lsm.PolicyBloom},
		{"monkey", lsm.PolicyMonkey},
		{"maplet(chucky)", lsm.PolicyMaplet},
	} {
		s := lsm.New(lsm.Options{Policy: pc.policy, MemtableSize: 1024, SizeRatio: 4, BitsPerKey: 10})
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()

		probesBefore := s.FilterProbes()
		before := s.Device().Reads()
		for _, k := range missQ {
			s.Get(k)
		}
		ioMiss := float64(s.Device().Reads()-before) / float64(len(missQ))
		probesMiss := float64(s.FilterProbes()-probesBefore) / float64(len(missQ))

		before = s.Device().Reads()
		for _, k := range hitQ {
			s.Get(k)
		}
		ioHit := float64(s.Device().Reads()-before) / float64(len(hitQ))

		t.AddRow(pc.name, s.Levels(), ioMiss, ioHit,
			float64(s.FilterMemoryBits())/8/1024/1024, probesMiss)
	}

	// E10b: compaction policies (§3.1's Dostoevsky story): tiering and
	// lazy leveling trade read cost for write amplification. Reads use
	// Monkey filters so the comparison reflects filtered misses.
	ct := metrics.NewTable("E10b: compaction policy trade-offs (Monkey filters)",
		"compaction", "write_amp", "runs", "io_per_miss", "io_per_hit")
	dataBlocks := (n + 127) / 128
	for _, cc := range []struct {
		name string
		pol  lsm.CompactionPolicy
	}{
		{"leveling", lsm.Leveling},
		{"tiering", lsm.Tiering},
		{"lazy_leveling", lsm.LazyLeveling},
	} {
		s := lsm.New(lsm.Options{Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: 4, Compaction: cc.pol})
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()
		writeAmp := float64(s.Device().Writes()) / float64(dataBlocks)
		before := s.Device().Reads()
		for _, k := range missQ {
			s.Get(k)
		}
		ioMiss := float64(s.Device().Reads()-before) / float64(len(missQ))
		before = s.Device().Reads()
		for _, k := range hitQ {
			s.Get(k)
		}
		ioHit := float64(s.Device().Reads()-before) / float64(len(hitQ))
		ct.AddRow(cc.name, writeAmp, s.Runs(), ioMiss, ioHit)
	}
	return []*metrics.Table{t, ct}
}

// runE11 reproduces §3.1 + §2.5: range filters cut the I/O of empty
// range scans ("SELECT ... BETWEEN"). Expected: every range filter
// eliminates most empty-scan I/O, with Grafite/SuRF strongest at long
// ranges and Rosetta at short ones.
func runE11(cfg Config) []*metrics.Table {
	n := cfg.n(200000)
	// Keys on a sparse sequential 2^36 grid: gaps are enormous compared
	// to the scan length, and mid-gap probes sit beyond the SuRF trie's
	// truncation resolution, so every range filter has a fair shot at
	// proving emptiness.
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i+1) << 36
	}

	builders := []struct {
		name  string
		build lsm.RangeFilterBuilder
	}{
		{"none", nil},
		{"surf-real8", func(ks []uint64) core.RangeFilter {
			return surf.New(ks, surf.SuffixReal, 8)
		}},
		{"rosetta", func(ks []uint64) core.RangeFilter {
			f := rosetta.New(len(ks), 20, 16)
			for _, k := range ks {
				f.Insert(k)
			}
			return f
		}},
		{"grafite", func(ks []uint64) core.RangeFilter {
			return grafite.New(ks, 16, 1.0/256)
		}},
	}

	t := metrics.NewTable("E11: empty range scans (len=1024, mid-gap)",
		"range_filter", "io_per_empty_scan", "io_per_hit_scan")
	scans := cfg.n(5000)
	for _, b := range builders {
		s := lsm.New(lsm.Options{Policy: lsm.PolicyBloom, MemtableSize: 1024, RangeFilter: b.build})
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()

		// Empty scans probe mid-gap (half a grid step past a key).
		before := s.Device().Reads()
		for i := 0; i < scans; i++ {
			lo := keys[i%len(keys)] + 1<<35
			if got := s.Scan(lo, lo+1023); len(got) != 0 {
				panic("E11: mid-gap scan returned entries")
			}
		}
		ioEmpty := float64(s.Device().Reads()-before) / float64(scans)
		// Hit scans: anchored on real keys.
		before = s.Device().Reads()
		for i := 0; i < scans; i++ {
			lo := keys[i%len(keys)]
			s.Scan(lo, lo+1023)
		}
		ioHit := float64(s.Device().Reads()-before) / float64(scans)
		t.AddRow(b.name, ioEmpty, ioHit)
	}
	return []*metrics.Table{t}
}
