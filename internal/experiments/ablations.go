package experiments

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/rosetta"
	"beyondbloom/internal/stacked"
	"beyondbloom/internal/surf"
	"beyondbloom/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out. They are
// registered alongside E1-E14 with A-prefixed ids.

func ablations() []Experiment {
	return []Experiment{
		{"A1", "SuRF suffix mode ablation (none/hash/real, width)", runA1},
		{"A2", "Rosetta memory split ablation (geometric vs even)", runA2},
		{"A3", "Cuckoo fingerprint width ablation", runA3},
		{"A4", "Stacked filter depth ablation", runA4},
		{"A5", "LSM size ratio ablation (T=2/4/8)", runA5},
		{"A6", "Concurrency: sharded filter scaling with goroutines", runA6},
	}
}

// runA1: suffix bits trade space for point-query FPR; only real suffixes
// help range queries.
func runA1(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n, 101)
	neg := workload.DisjointKeys(n, 101)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var corEmpty [][2]uint64
	for _, q := range workload.CorrelatedRanges(keys, cfg.n(20000), 16, 2, 103) {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q.Lo })
		if i >= len(sorted) || sorted[i] > q.Hi {
			corEmpty = append(corEmpty, [2]uint64{q.Lo, q.Hi})
		}
	}
	t := metrics.NewTable("A1: SuRF suffix modes (n="+itoa(n)+")",
		"variant", "bits/key", "point_fpr", "correlated_range_fpr")
	for _, v := range []struct {
		name string
		mode surf.SuffixMode
		bits uint
	}{
		{"base(no suffix)", surf.SuffixNone, 0},
		{"hash4", surf.SuffixHash, 4},
		{"hash8", surf.SuffixHash, 8},
		{"real8", surf.SuffixReal, 8},
		{"real16", surf.SuffixReal, 16},
	} {
		f := surf.New(keys, v.mode, v.bits)
		t.AddRow(v.name, float64(f.SizeBits())/float64(n),
			metrics.FPR(f, neg), metrics.RangeFPR(f, corEmpty))
	}
	return []*metrics.Table{t}
}

// runA2: geometric (bottom-heavy) vs even Rosetta splits.
func runA2(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n, 107)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	emptyRanges := func(length uint64, m int, seed int64) [][2]uint64 {
		qs := workload.UniformRanges(2*m, length, ^uint64(0)-2*length-2, seed)
		var out [][2]uint64
		for _, q := range qs {
			i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q.Lo })
			if i >= len(sorted) || sorted[i] > q.Hi {
				out = append(out, [2]uint64{q.Lo, q.Hi})
				if len(out) == m {
					break
				}
			}
		}
		return out
	}
	t := metrics.NewTable("A2: Rosetta memory split at 20 bits/key",
		"split", "fpr_len16", "fpr_len1024", "fpr_len16384")
	geo := rosetta.New(n, 20, 16)
	even := rosetta.NewEvenSplit(n, 20, 16)
	for _, k := range keys {
		geo.Insert(k)
		even.Insert(k)
	}
	m := cfg.n(3000)
	for _, v := range []struct {
		name string
		f    *rosetta.Filter
	}{{"geometric", geo}, {"even", even}} {
		t.AddRow(v.name,
			metrics.RangeFPR(v.f, emptyRanges(16, m, 1)),
			metrics.RangeFPR(v.f, emptyRanges(1024, m, 2)),
			metrics.RangeFPR(v.f, emptyRanges(16384, m, 3)))
	}
	return []*metrics.Table{t}
}

// runA3: cuckoo fingerprint width: space vs FPR, and achievable load.
func runA3(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	keys := workload.Keys(n*2, 109)
	neg := workload.DisjointKeys(n, 109)
	t := metrics.NewTable("A3: cuckoo fingerprint width (n="+itoa(n)+")",
		"fp_bits", "bits/key", "measured_fpr", "achieved_load")
	for _, fp := range []uint{4, 8, 12, 16} {
		f := cuckoo.New(n, fp)
		inserted := 0
		for _, k := range keys {
			if f.Insert(k) != nil {
				break
			}
			inserted++
			if inserted >= n {
				break
			}
		}
		t.AddRow(fp, float64(f.SizeBits())/float64(inserted),
			metrics.FPR(f, neg), f.LoadFactor())
	}
	return []*metrics.Table{t}
}

// runA4: stacked depth: hot-negative suppression saturates after a few
// layers while cold FPR stays flat.
func runA4(cfg Config) []*metrics.Table {
	n := cfg.n(100000)
	pos := workload.Keys(n, 113)
	hotNeg := workload.DisjointKeys(n/10, 113)
	coldNeg := workload.DisjointKeys(n, 114)
	t := metrics.NewTable("A4: stacked filter depth at 8 bits/key/layer",
		"depth", "layers_built", "bits/key", "fpr_hot", "fpr_cold")
	for _, d := range []int{1, 3, 5, 7} {
		f := stacked.New(pos, hotNeg, 8, d)
		t.AddRow(d, f.Layers(), float64(f.SizeBits())/float64(n),
			metrics.FPR(f, hotNeg), metrics.FPR(f, coldNeg))
	}
	return []*metrics.Table{t}
}

// runA6: sharded quotient filter throughput vs goroutine count — the
// tutorial's §1 feature (6): filters that "scale with the number of
// threads".
func runA6(cfg Config) []*metrics.Table {
	n := cfg.n(400000)
	t := metrics.NewTable("A6: sharded quotient filter (64 shards), mixed 90/10 read/write, GOMAXPROCS="+
		itoa(runtime.GOMAXPROCS(0))+" (speedup bounded by available cores)",
		"goroutines", "Mops/sec", "speedup")
	keys := workload.Keys(n, 121)
	build := func() *concurrent.Sharded {
		s, err := concurrent.NewSharded(6, func(int) core.DeletableFilter {
			return quotient.NewForCapacity(n/64*2, 0.001)
		})
		if err != nil {
			panic(err) // 6 log-shards is statically valid
		}
		for _, k := range keys {
			s.Insert(k)
		}
		return s
	}
	opsPer := n / 2
	var base float64
	for _, g := range []int{1, 2, 4, 8} {
		s := build()
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer/g; i++ {
					k := keys[(i*g+w)%len(keys)]
					if i%10 == 0 {
						s.Insert(k + uint64(w)<<40)
					} else {
						s.Contains(k)
					}
				}
			}(w)
		}
		wg.Wait()
		mops := float64(opsPer) / time.Since(start).Seconds() / 1e6
		if g == 1 {
			base = mops
		}
		t.AddRow(g, mops, mops/base)
	}
	return []*metrics.Table{t}
}

// runA5: LSM size ratio: bigger T means fewer levels (fewer probes,
// lower miss cost) but more rewriting per level (higher write amp).
func runA5(cfg Config) []*metrics.Table {
	n := cfg.n(200000)
	keys := workload.Keys(n, 115)
	missQ := workload.DisjointKeys(cfg.n(20000), 115)
	t := metrics.NewTable("A5: LSM size ratio (leveling, Monkey filters)",
		"T", "levels", "write_amp", "io_per_miss")
	dataBlocks := (n + 127) / 128
	for _, T := range []int{2, 4, 8} {
		s := lsm.New(lsm.Options{Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: T})
		for i, k := range keys {
			s.Put(k, uint64(i))
		}
		s.Flush()
		writeAmp := float64(s.Device().Writes()) / float64(dataBlocks)
		before := s.Device().Reads()
		for _, k := range missQ {
			s.Get(k)
		}
		t.AddRow(T, s.Levels(), writeAmp,
			float64(s.Device().Reads()-before)/float64(len(missQ)))
	}
	return []*metrics.Table{t}
}
