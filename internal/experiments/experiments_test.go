package experiments

import (
	"strings"
	"testing"
)

// small runs every experiment at reduced scale: primarily a smoke test
// that each regenerates its tables, with shape assertions on the ones
// whose claims are deterministic enough to check cheaply.
const smallScale = 0.05

func TestAllRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 21 { // E1-E15 plus ablations A1-A6
		t.Fatalf("registry has %d experiments, want 21", len(exps))
	}
	for i, e := range exps[:15] {
		if e.ID != "E"+itoa(i+1) {
			t.Errorf("experiment %d has ID %s", i, e.ID)
		}
	}
	for _, e := range exps {
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Error("ByID(E7) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should fail")
	}
}

func runOne(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("missing %s", id)
	}
	tables := e.Run(Config{Scale: smallScale})
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var sb strings.Builder
	for _, tb := range tables {
		tb.Render(&sb)
		if !strings.Contains(sb.String(), "--") {
			t.Fatalf("%s produced an empty table", id)
		}
	}
	return sb.String()
}

func TestE1SpaceShape(t *testing.T) {
	out := runOne(t, "E1")
	for _, name := range []string{"bloom", "quotient", "cuckoo", "xor", "ribbon", "prefix"} {
		if !strings.Contains(out, name) {
			t.Errorf("E1 missing filter %s:\n%s", name, out)
		}
	}
}

func TestE2Runs(t *testing.T)  { runOne(t, "E2") }
func TestE3Runs(t *testing.T)  { runOne(t, "E3") }
func TestE4Runs(t *testing.T)  { runOne(t, "E4") }
func TestE5Runs(t *testing.T)  { runOne(t, "E5") }
func TestE6Runs(t *testing.T)  { runOne(t, "E6") }
func TestE7Runs(t *testing.T)  { runOne(t, "E7") }
func TestE8Runs(t *testing.T)  { runOne(t, "E8") }
func TestE9Runs(t *testing.T)  { runOne(t, "E9") }
func TestE10Runs(t *testing.T) { runOne(t, "E10") }
func TestE11Runs(t *testing.T) { runOne(t, "E11") }
func TestE12Runs(t *testing.T) { runOne(t, "E12") }
func TestE13Runs(t *testing.T) { runOne(t, "E13") }
func TestE14Runs(t *testing.T) { runOne(t, "E14") }
func TestE15Runs(t *testing.T) { runOne(t, "E15") }
func TestA1Runs(t *testing.T)  { runOne(t, "A1") }
func TestA2Runs(t *testing.T)  { runOne(t, "A2") }
func TestA3Runs(t *testing.T)  { runOne(t, "A3") }
func TestA4Runs(t *testing.T)  { runOne(t, "A4") }
func TestA5Runs(t *testing.T)  { runOne(t, "A5") }
func TestA6Runs(t *testing.T)  { runOne(t, "A6") }
