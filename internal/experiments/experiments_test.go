package experiments

import (
	"strings"
	"testing"
)

// small runs every experiment at reduced scale: primarily a smoke test
// that each regenerates its tables, with shape assertions on the ones
// whose claims are deterministic enough to check cheaply.
const smallScale = 0.05

func TestAllRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 29 { // E1-E23 plus ablations A1-A6
		t.Fatalf("registry has %d experiments, want 29", len(exps))
	}
	for i, e := range exps[:20] {
		if e.ID != "E"+itoa(i+1) {
			t.Errorf("experiment %d has ID %s", i, e.ID)
		}
	}
	for _, e := range exps {
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Error("ByID(E7) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should fail")
	}
}

func runOne(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("missing %s", id)
	}
	tables := e.Run(Config{Scale: smallScale})
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var sb strings.Builder
	for _, tb := range tables {
		tb.Render(&sb)
		if !strings.Contains(sb.String(), "--") {
			t.Fatalf("%s produced an empty table", id)
		}
	}
	return sb.String()
}

func TestE1SpaceShape(t *testing.T) {
	out := runOne(t, "E1")
	for _, name := range []string{"bloom", "quotient", "cuckoo", "xor", "ribbon", "prefix"} {
		if !strings.Contains(out, name) {
			t.Errorf("E1 missing filter %s:\n%s", name, out)
		}
	}
}

func TestE2Runs(t *testing.T)  { runOne(t, "E2") }
func TestE3Runs(t *testing.T)  { runOne(t, "E3") }
func TestE4Runs(t *testing.T)  { runOne(t, "E4") }
func TestE5Runs(t *testing.T)  { runOne(t, "E5") }
func TestE6Runs(t *testing.T)  { runOne(t, "E6") }
func TestE7Runs(t *testing.T)  { runOne(t, "E7") }
func TestE8Runs(t *testing.T)  { runOne(t, "E8") }
func TestE9Runs(t *testing.T)  { runOne(t, "E9") }
func TestE10Runs(t *testing.T) { runOne(t, "E10") }
func TestE11Runs(t *testing.T) { runOne(t, "E11") }
func TestE12Runs(t *testing.T) { runOne(t, "E12") }
func TestE13Runs(t *testing.T) { runOne(t, "E13") }
func TestE14Runs(t *testing.T) { runOne(t, "E14") }
func TestE15Runs(t *testing.T) { runOne(t, "E15") }

// TestE16FaultExperiment checks the acceptance claims of the fault
// experiment: under 20% transient remote errors the adaptive loop still
// converges with zero false negatives, and the LSM store answers every
// query correctly at strictly higher I/O than the healthy run.
func TestE16FaultExperiment(t *testing.T) {
	out := runOne(t, "E16")
	if !strings.Contains(out, "err20%_retry4") || !strings.Contains(out, "dev_err20%") {
		t.Fatalf("E16 missing fault scenarios:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// Every E16a row ends with its false-negative count; every E16b
		// row with its wrong-answer count. Both must be zero everywhere.
		switch fields[0] {
		case "healthy", "err20%_no_retry", "err20%_retry4", "outage_then_recover",
			"dev_err20%", "filter_corrupt20%", "dev_err20%+perm2%+filter10%":
			if fields[len(fields)-1] != "0" {
				t.Errorf("scenario %s reports wrong answers / false negatives:\n%s", fields[0], line)
			}
		}
		if fields[0] == "err20%_retry4" && fields[2] == "never" {
			t.Errorf("20%% transient errors with retry must still converge:\n%s", line)
		}
	}
}

// TestE17PersistExperiment checks the persistence experiment's shape:
// all filter types appear in the throughput table and both comparison
// tables report a reload/reopen row with a speedup column.
func TestE17PersistExperiment(t *testing.T) {
	out := runOne(t, "E17")
	for _, name := range []string{"bloom", "blocked", "cuckoo", "quotient", "xor", "sharded",
		"rebuild_from_keys", "reload_from_file", "rebuild_with_puts", "reopen_from_disk"} {
		if !strings.Contains(out, name) {
			t.Errorf("E17 missing row %s:\n%s", name, out)
		}
	}
}

// TestE18ConcurrentExperiment checks the concurrency experiment's
// invariant: every read-scaling row reports zero wrong results, with
// and without the churn writer.
func TestE18ConcurrentExperiment(t *testing.T) {
	out := runOne(t, "E18")
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || (fields[1] != "none" && fields[1] != "churn") {
			continue
		}
		rows++
		if fields[len(fields)-1] != "0" {
			t.Errorf("E18 row reports wrong results:\n%s", line)
		}
	}
	if rows != 8 {
		t.Errorf("E18 produced %d read-scaling rows, want 8:\n%s", rows, out)
	}
	for _, name := range []string{"sync_inline", "bg_budget=2", "bg_budget=16"} {
		if !strings.Contains(out, name) {
			t.Errorf("E18b missing mode %s:\n%s", name, out)
		}
	}
}

// TestE19DurableExperiment checks the durability experiment's
// invariant: the crash sweep reports zero lost acknowledged writes and
// zero invented writes in every mode, and the latency ablation covers
// all four durability modes.
func TestE19DurableExperiment(t *testing.T) {
	out := runOne(t, "E19")
	sweep, _, _ := strings.Cut(out, "E19b")
	rows := 0
	for _, line := range strings.Split(sweep, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 6 {
			continue
		}
		switch fields[0] {
		case "group", "always", "buffered":
			rows++
			if fields[3] != "0" || fields[4] != "0" {
				t.Errorf("E19a crash sweep lost or invented writes:\n%s", line)
			}
		}
	}
	if rows != 3 {
		t.Errorf("E19a produced %d sweep rows, want 3:\n%s", rows, out)
	}
	for _, name := range []string{"no_wal", "buffered", "group_commit", "fsync_per_op"} {
		if !strings.Contains(out, name) {
			t.Errorf("E19b missing mode %s:\n%s", name, out)
		}
	}
}

// TestE20FrontierExperiment checks the Bloom-variant frontier's shape:
// all three variants appear at every bits/key budget, and the overfill
// table covers both blocked variants.
func TestE20FrontierExperiment(t *testing.T) {
	out := runOne(t, "E20")
	rows := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		switch fields[1] {
		case "bloom", "blocked", "choices":
			rows[fields[1]]++
		}
	}
	// 6 bits/key budgets in the frontier table; blocked and choices also
	// appear in 4 overfill rows each.
	if rows["bloom"] != 6 || rows["blocked"] != 10 || rows["choices"] != 10 {
		t.Errorf("E20 row counts bloom=%d blocked=%d choices=%d, want 6/10/10:\n%s",
			rows["bloom"], rows["blocked"], rows["choices"], out)
	}
}

// TestE22MapletFirstExperiment checks the maplet-first experiment's
// invariant: every shape×policy cell answers with zero wrong results
// against the exact model, all three policies appear in all three tree
// shapes, and the batch table covers the sweep.
func TestE22MapletFirstExperiment(t *testing.T) {
	out := runOne(t, "E22")
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 7 {
			continue
		}
		switch fields[0] {
		case "uniform_leveling", "uniform_tiering", "churn_lazy_leveling":
			rows++
			if fields[6] != "0" {
				t.Errorf("E22 cell reports wrong results:\n%s", line)
			}
		}
	}
	if rows != 9 {
		t.Errorf("E22 produced %d point-read rows, want 9:\n%s", rows, out)
	}
	for _, name := range []string{"bloom_uniform", "monkey", "maplet_first", "E22b"} {
		if !strings.Contains(out, name) {
			t.Errorf("E22 missing %s:\n%s", name, out)
		}
	}
}

func TestA1Runs(t *testing.T) { runOne(t, "A1") }
func TestA2Runs(t *testing.T) { runOne(t, "A2") }
func TestA3Runs(t *testing.T) { runOne(t, "A3") }
func TestA4Runs(t *testing.T) { runOne(t, "A4") }
func TestA5Runs(t *testing.T) { runOne(t, "A5") }
func TestA6Runs(t *testing.T) { runOne(t, "A6") }
