package experiments

import (
	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// runE22 measures the maplet-first read path (the key→(run, block)
// primary index) against the per-run filter policies across the tree
// shapes E10/E11/E18 exercise: a uniform leveled tree, a many-run
// tiered tree, and a lazy-leveled tree under overwrite/delete churn.
// Every cell cross-checks each lookup against an exact model map, so
// wrong_results pins correctness, not just cost. E22b charts the
// native maplet GetBatch against scalar Gets on the same store.
func runE22(cfg Config) []*metrics.Table {
	n := cfg.n(200000)
	keys := workload.Keys(n, 10)
	missQ := workload.DisjointKeys(cfg.n(20000), 10)

	shapes := []struct {
		name  string
		comp  lsm.CompactionPolicy
		churn bool
	}{
		{"uniform_leveling", lsm.Leveling, false},
		{"uniform_tiering", lsm.Tiering, false},
		{"churn_lazy_leveling", lsm.LazyLeveling, true},
	}
	policies := []struct {
		name string
		p    lsm.FilterPolicy
	}{
		{"bloom_uniform", lsm.PolicyBloom},
		{"monkey", lsm.PolicyMonkey},
		{"maplet_first", lsm.PolicyMaplet},
	}
	t := metrics.NewTable("E22: maplet-first point reads vs per-run filters (n="+itoa(n)+", T=4)",
		"shape", "policy", "runs", "reads_per_hit", "reads_per_miss", "filter_bytes_per_key", "wrong_results")
	for _, sh := range shapes {
		for _, pc := range policies {
			s := lsm.New(lsm.Options{
				Policy: pc.p, MemtableSize: 1024, SizeRatio: 4,
				BitsPerKey: 10, Compaction: sh.comp,
			})
			model := make(map[uint64]uint64, n)
			for i, k := range keys {
				s.Put(k, uint64(i))
				model[k] = uint64(i)
			}
			if sh.churn {
				// Overwrite ~a third of the keys and delete a tenth, so the
				// maplet must track re-pointed and dropped keys through the
				// compactions the churn triggers.
				for i, k := range keys {
					switch i % 10 {
					case 0:
						s.Delete(k)
						delete(model, k)
					case 1, 2, 3:
						s.Put(k, uint64(i)*3)
						model[k] = uint64(i) * 3
					}
				}
			}
			s.Flush()

			hitQ := make([]uint64, 0, cfg.n(20000))
			for _, k := range keys {
				if _, ok := model[k]; ok {
					hitQ = append(hitQ, k)
					if len(hitQ) == cap(hitQ) {
						break
					}
				}
			}
			wrong := 0
			before := s.Device().Reads()
			for _, k := range hitQ {
				v, ok := s.Get(k)
				if !ok || v != model[k] {
					wrong++
				}
			}
			readsHit := float64(s.Device().Reads()-before) / float64(len(hitQ))
			before = s.Device().Reads()
			for _, k := range missQ {
				if _, ok := s.Get(k); ok {
					wrong++
				}
			}
			readsMiss := float64(s.Device().Reads()-before) / float64(len(missQ))
			t.AddRow(sh.name, pc.name, s.Runs(), readsHit, readsMiss,
				float64(s.FilterMemoryBits())/8/float64(n), wrong)
		}
	}

	// E22b: the native maplet batch path (one batched maplet probe, one
	// view walk per attempt) vs scalar Gets over the same half-present
	// half-absent stream. Timed best-of-3 to damp scheduler noise.
	bt := metrics.NewTable("E22b: PolicyMaplet GetBatch vs scalar Get (n="+itoa(n)+")",
		"batch", "scalar_mkeys_s", "batch_mkeys_s", "speedup")
	s := lsm.New(lsm.Options{Policy: lsm.PolicyMaplet, MemtableSize: 1024, SizeRatio: 4})
	for i, k := range keys {
		s.Put(k, uint64(i))
	}
	s.Flush()
	probe := make([]uint64, 0, 2*len(missQ))
	for i := range missQ {
		probe = append(probe, keys[i%len(keys)], missQ[i])
	}
	bestOf := func(fn func()) float64 {
		best := nsPerOp(len(probe), fn)
		for rep := 0; rep < 2; rep++ {
			if ns := nsPerOp(len(probe), fn); ns < best {
				best = ns
			}
		}
		return best
	}
	for _, bs := range []int{16, 64, 256, 1024} {
		values := make([]uint64, bs)
		found := make([]bool, bs)
		scalarNs := bestOf(func() {
			for _, k := range probe {
				s.Get(k)
			}
		})
		batchNs := bestOf(func() {
			for off := 0; off < len(probe); off += bs {
				end := off + bs
				if end > len(probe) {
					end = len(probe)
				}
				s.GetBatch(probe[off:end], values[:end-off], found[:end-off])
			}
		})
		bt.AddRow(bs, 1e3/scalarNs, 1e3/batchNs, scalarNs/batchNs)
	}
	return []*metrics.Table{t, bt}
}
