package experiments

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/dleft"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
)

// runE7 reproduces §2.6: counting filters on skewed multisets. Expected
// shapes: the counting Bloom filter's fixed counters saturate under skew
// (and lose delete fidelity); d-left uses roughly half a CBF's space;
// the spectral filter and the CQF absorb skew with variable-size
// counters, the CQF's space scaling with distinct keys rather than total
// multiplicity.
func runE7(cfg Config) []*metrics.Table {
	distinct := cfg.n(50000)
	total := distinct * 20
	keys := workload.Keys(distinct, 7)

	spaceT := metrics.NewTable("E7a: counting filters under Zipf skew ("+itoa(distinct)+" distinct, "+itoa(total)+" total)",
		"filter", "zipf_s", "bits/distinct_key", "wrong_count_rate", "failed_inserts", "saturations")
	for _, s := range []float64{1.1, 1.5, 2.0} {
		ms := workload.ZipfMultiset(keys, total, s, 70+int64(s*10))

		cbf := bloom.NewCounting(distinct, 1.0/256, 4)
		spec := bloom.NewSpectral(distinct, 1.0/256, 2)
		dl := dleft.New(distinct, 12, 8)
		// The CQF needs slots for counter digits on top of the distinct
		// keys; grow until the multiset fits (real deployments size for
		// the expected slot demand up front).
		cqf, cqfInserted := buildCQF(distinct, ms)

		// dleft is not resizable (a §2.6 limitation): failures count.
		dlFailed := 0
		inserted := map[uint64]bool{}
		for k, c := range ms {
			cbf.Add(k, c)
			spec.Add(k, c)
			if dl.Add(k, c) != nil {
				dlFailed++
			} else {
				inserted[k] = true
			}
		}
		// Accuracy over keys the filter actually holds.
		over := func(count func(uint64) uint64, holds func(uint64) bool) float64 {
			wrong, n := 0, 0
			for k, want := range ms {
				if !holds(k) {
					continue
				}
				n++
				if count(k) != want {
					wrong++
				}
			}
			if n == 0 {
				return 0
			}
			return float64(wrong) / float64(n)
		}
		all := func(uint64) bool { return true }
		nd := float64(len(ms))
		spaceT.AddRow("counting_bloom", s, float64(cbf.SizeBits())/nd, over(cbf.Count, all), 0, cbf.Saturations())
		spaceT.AddRow("spectral", s, float64(spec.SizeBits())/nd, over(spec.Count, all), 0, 0)
		spaceT.AddRow("dleft", s, float64(dl.SizeBits())/nd,
			over(dl.Count, func(k uint64) bool { return inserted[k] }), dlFailed, 0)
		spaceT.AddRow("cqf", s, float64(cqf.SizeBits())/nd,
			over(cqf.Count, func(k uint64) bool { return cqfInserted[k] }), len(ms)-len(cqfInserted), 0)
	}

	// E7b: the saturation/delete hazard. Insert a heavy key into narrow
	// CBF counters, then delete it: the count sticks (undercount hazard
	// for the error bound), while the CQF tracks exactly.
	hazT := metrics.NewTable("E7b: delete fidelity after saturation",
		"filter", "count_after_insert_100", "count_after_delete_100")
	cbf := bloom.NewCounting(1000, 1.0/256, 4)
	cqf := quotient.NewCountingForCapacity(1000, 1.0/256)
	cbf.Add(42, 100)
	cqf.Add(42, 100)
	a1, b1 := cbf.Count(42), cqf.Count(42)
	cbf.Remove(42, 100)
	cqf.Remove(42, 100)
	hazT.AddRow("counting_bloom(4bit)", a1, cbf.Count(42))
	hazT.AddRow("cqf", b1, cqf.Count(42))
	return []*metrics.Table{spaceT, hazT}
}

// buildCQF sizes a counting quotient filter with enough slots for the
// multiset's counter encoding, growing on overflow. Returns the filter
// and the set of keys it holds (all of them once a size fits).
func buildCQF(distinct int, ms map[uint64]uint64) (*quotient.Counting, map[uint64]bool) {
	q := uint(1)
	for float64(uint64(1)<<q)*0.95 < float64(distinct) {
		q++
	}
	for ; ; q++ {
		cqf := quotient.NewCounting(q, 8)
		inserted := make(map[uint64]bool, len(ms))
		ok := true
		for k, c := range ms {
			if cqf.Add(k, c) != nil {
				ok = false
				break
			}
			inserted[k] = true
		}
		if ok {
			return cqf, inserted
		}
	}
}
