package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"beyondbloom/internal/lsm"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// runE18 measures the concurrent LSM engine (§3.1 + the tutorial's
// concurrency desideratum): aggregate read throughput as reader
// goroutines scale, once over a quiescent store and once while a churn
// writer forces background flushes and compactions underneath them.
// Readers probe snapshots published by the engine, so every lookup of a
// stable key must return its exact value — the wrong_results column is
// a live correctness check, not just a throughput caveat. Absolute
// scaling depends on GOMAXPROCS (reported in the title; on a single
// hardware thread the goroutines time-slice), but the invariant the
// table demonstrates holds everywhere: adding a write load or more
// readers never blocks reads behind compaction, and never corrupts
// them.
func runE18(cfg Config) []*metrics.Table {
	return []*metrics.Table{e18ReadScaling(cfg), e18WriteStall(cfg)}
}

const e18ChurnBase = uint64(1) << 40 // churn keys live far above the read set

func e18Value(k uint64) uint64 { return k*2654435761 + 1 }

// e18ReadScaling runs R reader goroutines over a fixed key set, with
// and without a concurrent writer, and reports aggregate throughput
// plus any wrong or missing results.
func e18ReadScaling(cfg Config) *metrics.Table {
	n := cfg.n(200000)
	opsEach := cfg.n(200000)
	keys := workload.Keys(n, 18)

	t := metrics.NewTable(
		fmt.Sprintf("E18: concurrent LSM reads (n=%d, ops/reader=%d, GOMAXPROCS=%d)",
			n, opsEach, runtime.GOMAXPROCS(0)),
		"readers", "write_load", "Mreads_per_sec", "reads_per_sec_per_reader", "wrong_results")
	for _, readers := range []int{1, 2, 4, 8} {
		for _, withWrites := range []bool{false, true} {
			s := lsm.New(lsm.Options{
				Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: 4,
				Background: true, L0RunBudget: 8,
			})
			for _, k := range keys {
				s.Put(k, e18Value(k))
			}
			s.Flush()

			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			if withWrites {
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					k := e18ChurnBase
					for {
						select {
						case <-stop:
							return
						default:
						}
						s.Put(k, k)
						if k%3 == 0 {
							s.Delete(k)
						}
						k++
					}
				}()
			}

			var wrong atomic.Int64
			var readerWG sync.WaitGroup
			start := time.Now()
			for r := 0; r < readers; r++ {
				readerWG.Add(1)
				go func(seed int) {
					defer readerWG.Done()
					for i := 0; i < opsEach; i++ {
						k := keys[(i*7+seed*13)%len(keys)]
						if v, ok := s.Get(k); !ok || v != e18Value(k) {
							wrong.Add(1)
						}
					}
				}(r)
			}
			readerWG.Wait()
			el := time.Since(start).Seconds()
			close(stop)
			writerWG.Wait()
			s.Close()

			total := float64(readers * opsEach)
			load := "none"
			if withWrites {
				load = "churn"
			}
			t.AddRow(readers, load, total/el/1e6, total/el/float64(readers), wrong.Load())
		}
	}
	return t
}

// e18WriteStall shows what moving flush/compaction off the write path
// buys: in synchronous mode a Put that lands on a full memtable pays
// the whole flush-and-compact cascade inline, so put latency has a
// heavy tail; in Background mode Put returns after the memtable append
// and only stalls when the L0RunBudget backpressure binds, so the tail
// shrinks — and a tighter budget trades some of that hiding back for a
// bounded number of unmerged runs on the read path.
func e18WriteStall(cfg Config) *metrics.Table {
	n := cfg.n(200000)
	t := metrics.NewTable(
		fmt.Sprintf("E18b: put latency, inline vs background engine (puts=%d)", n),
		"mode", "Mputs_per_sec", "p99_9_us", "max_put_us")
	for _, mode := range []struct {
		name string
		opts lsm.Options
	}{
		{"sync_inline", lsm.Options{Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: 4}},
		{"bg_budget=2", lsm.Options{Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: 4, Background: true, L0RunBudget: 2}},
		{"bg_budget=16", lsm.Options{Policy: lsm.PolicyMonkey, MemtableSize: 1024, SizeRatio: 4, Background: true, L0RunBudget: 16}},
	} {
		s := lsm.New(mode.opts)
		lat := make([]time.Duration, n)
		start := time.Now()
		for k := uint64(0); k < uint64(n); k++ {
			t0 := time.Now()
			s.Put(k, e18Value(k))
			lat[k] = time.Since(t0)
		}
		el := time.Since(start).Seconds()
		s.Flush()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p999 := lat[len(lat)*999/1000]
		t.AddRow(mode.name, float64(n)/el/1e6,
			float64(p999.Nanoseconds())/1e3,
			float64(lat[len(lat)-1].Nanoseconds())/1e3)
		s.Close()
	}
	return t
}
