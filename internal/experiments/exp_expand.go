package experiments

import (
	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
	"beyondbloom/internal/cuckoo"
	"beyondbloom/internal/infini"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/quotient"
	"beyondbloom/internal/workload"
)

// runE3 reproduces §2.2: growing a filter from 2^12 keys by successive
// doublings. Expected shapes: quotient-filter doubling roughly doubles
// the FPR per expansion until it saturates; the scalable (chained) Bloom
// filter keeps its FPR but pays one extra probe per chain link; the
// InfiniFilter keeps FPR roughly flat with single-structure queries; a
// preallocated filter matches InfiniFilter but pays its full memory from
// the start.
func runE3(cfg Config) []*metrics.Table {
	start := cfg.n(4096)
	doublings := 6
	final := start << doublings
	keys := workload.Keys(final, 3)
	neg := workload.DisjointKeys(50000, 3)

	fprT := metrics.NewTable("E3: FPR per expansion (start n="+itoa(start)+")",
		"n", "qf_doubling", "scalable_bloom", "chained_cuckoo", "infinifilter", "prealloc_bloom")
	costT := metrics.NewTable("E3: query cost and memory at final size",
		"strategy", "query_ns", "bits/key", "chain_len")

	qf := quotient.NewForCapacity(start, 1.0/1024)
	qf.SetAutoExpand(true)
	sb, err := bloom.NewScalable(start, 1.0/1024)
	if err != nil {
		panic(err) // parameters are statically valid
	}
	cc := cuckoo.NewChained(start, 13)
	inf, err := infini.New(12)
	if err != nil {
		panic(err) // parameters are statically valid
	}
	pre := bloom.New(final, 1.0/1024) // knows the future size

	inserted := 0
	for d := 0; d <= doublings; d++ {
		target := start << d
		for inserted < target {
			k := keys[inserted]
			qf.Insert(k)
			sb.Insert(k)
			cc.Insert(k)
			inf.Insert(k)
			pre.Insert(k)
			inserted++
		}
		fprT.AddRow(target,
			metrics.FPR(qf, neg),
			metrics.FPR(sb, neg),
			metrics.FPR(cc, neg),
			metrics.FPR(inf, neg),
			metrics.FPR(pre, neg))
	}

	probes := neg[:20000]
	addCost := func(name string, f core.Filter, chain int) {
		ns := nsPerOp(len(probes), func() {
			for _, k := range probes {
				f.Contains(k)
			}
		})
		costT.AddRow(name, ns, core.BitsPerKey(f, inserted), chain)
	}
	addCost("qf_doubling", qf, 1)
	addCost("scalable_bloom", sb, sb.Stages())
	addCost("chained_cuckoo", cc, cc.Links())
	addCost("infinifilter", inf, 1)
	addCost("prealloc_bloom", pre, 1)
	return []*metrics.Table{fprT, costT}
}
