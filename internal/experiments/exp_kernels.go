package experiments

import (
	"fmt"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// runE20 charts the Bloom-variant frontier at equal space: classic
// Bloom (space-optimal, k cache misses per probe), blocked Bloom (one
// miss, balls-into-bins FPR penalty), and two-choice blocked Bloom
// (two misses issued together, load-balanced blocks but an
// OR-of-two-blocks FPR floor of ~2x the per-block rate). Sweeping
// bits/key exposes the regimes DESIGN.md §10 derives:
//
//   - at 8-12 bits/key blocked beats choices on FPR (the convexity
//     penalty it pays is smaller than the 2x floor choices pays);
//   - as bits/key grows the per-block FPR falls fast enough that the
//     2x floor stops mattering before blocked's skewed-block tail
//     does, and the choices/blocked ratio trends toward crossover;
//   - on speed both blocked variants beat classic at every budget,
//     and batching (hash-once/probe-many, misses overlapped) pays
//     most where the probe is miss-dominated.
//
// The second table fixes the geometry (sized for n at 12 bits/key)
// and overfills it. Measured: under uniform inserts the two degrade in
// near-lockstep (choices/blocked ratio flat at ~1.3-1.4 from 1x to 2x
// load) — the OR floor, not load variance, dominates the mean, and
// two-choice balancing buys tail control (tighter per-block load
// spread, see TestChoicesBalancesLoads) rather than mean-FPR rescue.
func runE20(cfg Config) []*metrics.Table {
	n := cfg.n(1 << 20)
	keys := workload.Keys(n, 20)
	neg := workload.DisjointKeys(4*n, 20)

	frontier := metrics.NewTable("E20: Bloom variant frontier at equal bits/key (n="+itoa(n)+")",
		"bits/key", "filter", "fpr", "fpr_vs_classic", "scalar_ns/key", "batch_ns/key", "batch_speedup")

	for _, bpk := range []float64{8, 10, 12, 16, 20, 24} {
		variants := []struct {
			name string
			f    interface {
				core.MutableFilter
				core.BatchFilter
			}
		}{
			{"bloom", bloom.NewBits(n, bpk)},
			{"blocked", bloom.NewBlocked(n, bpk)},
			{"choices", bloom.NewBlockedChoices(n, bpk)},
		}
		classicFPR := 0.0
		for _, v := range variants {
			for _, k := range keys {
				v.f.Insert(k)
			}
			fpr := metrics.FPR(v.f, neg)
			if v.name == "bloom" {
				classicFPR = fpr
			}
			ratio := 0.0
			if classicFPR > 0 {
				ratio = fpr / classicFPR
			}
			scalarMops := bestOfRuns(len(neg), func() {
				for _, k := range neg {
					v.f.Contains(k)
				}
			}) / 1e6
			batchMops := batchLookupMops(v.f, neg)
			scalarNs := 1e3 / scalarMops
			batchNs := 1e3 / batchMops
			frontier.AddRow(bpk, v.name,
				fmt.Sprintf("%.2e", fpr), fmt.Sprintf("%.2f", ratio),
				fmt.Sprintf("%.1f", scalarNs), fmt.Sprintf("%.1f", batchNs),
				fmt.Sprintf("%.2f", scalarNs/batchNs))
		}
	}

	overfill := metrics.NewTable("E20: overfill at fixed geometry (sized for n at 12 bits/key)",
		"load_factor", "filter", "fpr", "fpr_vs_blocked", "fill_ratio")
	extra := workload.Keys(2*n, 21)
	for _, load := range []float64{1.0, 1.25, 1.5, 2.0} {
		m := int(load * float64(n))
		blockedFPR := 0.0
		for _, v := range []struct {
			name string
			f    interface {
				core.MutableFilter
				FillRatio() float64
			}
		}{
			{"blocked", bloom.NewBlocked(n, 12)},
			{"choices", bloom.NewBlockedChoices(n, 12)},
		} {
			for _, k := range extra[:m] {
				v.f.Insert(k)
			}
			fpr := metrics.FPR(v.f, neg)
			if v.name == "blocked" {
				blockedFPR = fpr
			}
			ratio := 0.0
			if blockedFPR > 0 {
				ratio = fpr / blockedFPR
			}
			overfill.AddRow(fmt.Sprintf("%.2f", load), v.name,
				fmt.Sprintf("%.2e", fpr), fmt.Sprintf("%.2f", ratio),
				fmt.Sprintf("%.3f", v.f.FillRatio()))
		}
	}

	return []*metrics.Table{frontier, overfill}
}
