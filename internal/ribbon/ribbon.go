// Package ribbon implements the ribbon filter (Dillinger et al., §2.7 of
// the tutorial): a static filter that solves a banded linear system over
// GF(2). Each key contributes one equation: a 64-bit coefficient vector
// placed at a hash-derived start column, whose dot product with the
// solution matrix must equal the key's r-bit fingerprint. Incremental
// Gaussian elimination ("banding") inserts equations on the fly, and
// back-substitution produces the solution table. Space is within a few
// percent of n·r bits — the tutorial's ≈1.005·n·log(1/ε) claim — at the
// cost of queries somewhat slower than table-based filters.
package ribbon

import (
	"errors"
	"math/bits"

	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// ErrConstruction is returned when banding fails after all seed retries.
var ErrConstruction = errors.New("ribbon: construction failed")

// bandWidth is the ribbon width w: coefficient vectors span 64 columns.
const bandWidth = 64

// Filter is an immutable ribbon filter.
type Filter struct {
	sol   *bitvec.Packed // m entries of r bits (the solution matrix Z)
	m     uint64
	rBits uint
	seed  uint64
	n     int
}

// overhead is the slot over-provisioning factor; 1.05 gives reliable
// banding success for the sizes used here (the paper pushes this to
// 1.005 with smash/bumping, which we note as out of scope).
const overhead = 1.05

// New builds a ribbon filter over keys with rBits-bit fingerprints
// (false-positive rate 2^-rBits).
func New(keys []uint64, rBits uint) (*Filter, error) {
	if rBits < 1 || rBits > 32 {
		panic("ribbon: fingerprint bits must be in [1,32]")
	}
	keys = dedup(keys)
	n := len(keys)
	m := uint64(float64(n)*overhead) + bandWidth
	for attempt := uint64(1); attempt <= 64; attempt++ {
		f := &Filter{
			m:     m,
			rBits: rBits,
			seed:  attempt * 0xA5A5A5A5DEADBEEF,
			n:     n,
		}
		if f.build(keys) {
			return f, nil
		}
		m += m / 64 // grow slightly on retry
	}
	return nil, ErrConstruction
}

func dedup(keys []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	return out
}

// equation derives a key's start column, coefficient word (bit 0 always
// set, representing the start column), and r-bit result.
func (f *Filter) equation(key uint64) (start uint64, coeff uint64, result uint64) {
	h := hashutil.MixSeed(key, f.seed)
	start = hashutil.Reduce(h, f.m-bandWidth+1)
	coeff = hashutil.Mix64(h+1) | 1
	result = hashutil.Fingerprint(hashutil.Mix64(h+2), f.rBits)
	return
}

// build performs incremental banding followed by back-substitution.
func (f *Filter) build(keys []uint64) bool {
	coeffs := make([]uint64, f.m)
	results := make([]uint64, f.m)
	for _, k := range keys {
		s, c, b := f.equation(k)
		for {
			if coeffs[s] == 0 {
				coeffs[s] = c
				results[s] = b
				break
			}
			c ^= coeffs[s]
			b ^= results[s]
			if c == 0 {
				if b == 0 {
					break // redundant equation (duplicate fingerprint); fine
				}
				return false // inconsistent: retry with new seed
			}
			j := uint64(bits.TrailingZeros64(c))
			c >>= j
			s += j
			if s >= f.m {
				return false
			}
		}
	}
	// Back-substitution, highest row first.
	f.sol = bitvec.NewPacked(int(f.m), f.rBits)
	for i := int(f.m) - 1; i >= 0; i-- {
		c := coeffs[i]
		if c == 0 {
			continue // free variable; leave 0
		}
		z := results[i]
		rest := c >> 1
		col := i + 1
		for rest != 0 {
			j := bits.TrailingZeros64(rest)
			z ^= f.sol.Get(col + j)
			rest &= rest - 1
		}
		f.sol.Set(i, z)
	}
	return true
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key uint64) bool {
	s, c, b := f.equation(key)
	var acc uint64
	for c != 0 {
		j := bits.TrailingZeros64(c)
		acc ^= f.sol.Get(int(s) + j)
		c &= c - 1
	}
	return acc == b
}

// Len returns the number of keys the filter was built over.
func (f *Filter) Len() int { return f.n }

// SizeBits returns the footprint in bits.
func (f *Filter) SizeBits() int { return f.sol.SizeBits() }

var _ core.Filter = (*Filter)(nil)
