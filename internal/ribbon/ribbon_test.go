package ribbon

import (
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(100000, 1)
	f, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestFPRMatchesFingerprint(t *testing.T) {
	keys := workload.Keys(50000, 2)
	for _, r := range []uint{8, 12, 16} {
		f, err := New(keys, r)
		if err != nil {
			t.Fatal(err)
		}
		neg := workload.DisjointKeys(200000, 2)
		got := metrics.FPR(f, neg)
		want := 1.0 / float64(uint64(1)<<r)
		if got > want*2.5 {
			t.Errorf("r=%d: FPR %g, want ≈%g", r, got, want)
		}
	}
}

func TestSpaceNearOptimal(t *testing.T) {
	// Ribbon's headline: close to n·r bits — smaller than XOR's 1.23·n·r.
	keys := workload.Keys(200000, 3)
	f, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	perKey := float64(f.SizeBits()) / float64(len(keys))
	if perKey > 8*1.10 {
		t.Errorf("bits/key = %f, want < 8.8 (≈1.05 overhead)", perKey)
	}
	if perKey < 8 {
		t.Errorf("bits/key = %f below information content (accounting bug)", perKey)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	f, err := New(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Contains(42) {
		t.Error("empty filter claims membership")
	}
	f2, err := New([]uint64{7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Contains(7) {
		t.Error("singleton lost")
	}
}

func TestDuplicatesAndZero(t *testing.T) {
	f, err := New([]uint64{0, 0, 5, 5, 5}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	if !f.Contains(0) || !f.Contains(5) {
		t.Error("keys lost")
	}
}

func TestManySizes(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 65, 64, 63} {
		keys := workload.Keys(n, uint64(n))
		f, err := New(keys, 10)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if fn := metrics.FalseNegatives(f, keys); fn != 0 {
			t.Fatalf("n=%d: %d false negatives", n, fn)
		}
	}
}

func BenchmarkBuild100k(b *testing.B) {
	keys := workload.Keys(100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(keys, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	keys := workload.Keys(1000000, 5)
	f, err := New(keys, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
