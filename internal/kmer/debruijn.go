package kmer

import (
	"beyondbloom/internal/bloom"
)

// DeBruijn is a probabilistic de Bruijn graph (Pell et al., §3.2): the
// k-mer set lives in a Bloom filter, and edges are implied — node x
// connects to node y when they overlap in k-1 bases and both are
// "present". False positives add spurious nodes/edges; the tutorial's
// observation is that graph structure survives until the false-positive
// rate approaches 0.15.
//
// With an exact membership oracle installed (Chikhi & Rizk), navigation
// becomes exact: the oracle removes the critical false positives — the
// Bloom-positive k-mers adjacent to true k-mers.
type DeBruijn struct {
	K      int
	filter *bloom.Filter
	// exact, when non-nil, refines Bloom positives (critical-FP removal).
	exact func(code uint64) bool
}

// NewDeBruijn builds the probabilistic graph from the canonical k-mer
// codes of the data set.
func NewDeBruijn(k int, codes []uint64, bitsPerKey float64) *DeBruijn {
	f := bloom.NewBitsSeeded(max(len(codes), 1), bitsPerKey, 0xDEB4013)
	for _, c := range codes {
		f.Insert(c)
	}
	return &DeBruijn{K: k, filter: f}
}

// Present reports whether a canonical k-mer code is in the graph.
func (g *DeBruijn) Present(code uint64) bool {
	if !g.filter.Contains(code) {
		return false
	}
	if g.exact != nil {
		return g.exact(code)
	}
	return true
}

// Neighbors returns the canonical codes of present k-mers adjacent to
// code: the up-to-4 right extensions and up-to-4 left extensions.
func (g *DeBruijn) Neighbors(code uint64) []uint64 {
	// code is canonical; recover both orientations to extend.
	var out []uint64
	seen := map[uint64]bool{code: true}
	for _, orient := range [2]uint64{code, RevComp(code, g.K)} {
		mask := uint64(1)<<(2*g.K) - 1
		for b := uint64(0); b < 4; b++ {
			right := Canonical((orient<<2|b)&mask, g.K)
			if !seen[right] && g.Present(right) {
				seen[right] = true
				out = append(out, right)
			}
			left := Canonical(orient>>2|b<<(2*(g.K-1)), g.K)
			if !seen[left] && g.Present(left) {
				seen[left] = true
				out = append(out, left)
			}
		}
	}
	return out
}

// SizeBits returns the Bloom footprint (the exact oracle reports its own
// size separately).
func (g *DeBruijn) SizeBits() int { return g.filter.SizeBits() }

// CriticalFPs computes the critical false positives of the graph: probe
// every extension of every true k-mer; those the Bloom filter claims
// present but the true set lacks are exactly the FPs that affect
// navigation (Chikhi & Rizk's observation: eliminating them suffices for
// an exact traversal representation).
func (g *DeBruijn) CriticalFPs(trueCodes []uint64) []uint64 {
	trueSet := make(map[uint64]struct{}, len(trueCodes))
	for _, c := range trueCodes {
		trueSet[c] = struct{}{}
	}
	mask := uint64(1)<<(2*g.K) - 1
	var cfps []uint64
	emitted := map[uint64]bool{}
	for _, c := range trueCodes {
		for _, orient := range [2]uint64{c, RevComp(c, g.K)} {
			for b := uint64(0); b < 4; b++ {
				for _, ext := range [2]uint64{
					Canonical((orient<<2|b)&mask, g.K),
					Canonical(orient>>2|b<<(2*(g.K-1)), g.K),
				} {
					if emitted[ext] {
						continue
					}
					if _, isTrue := trueSet[ext]; isTrue {
						continue
					}
					if g.filter.Contains(ext) {
						emitted[ext] = true
						cfps = append(cfps, ext)
					}
				}
			}
		}
	}
	return cfps
}

// InstallExactTable makes the graph exact using a plain table of the
// critical false positives (Chikhi & Rizk): a Bloom positive is accepted
// unless it is a known critical FP.
func (g *DeBruijn) InstallExactTable(cfps []uint64) int {
	set := make(map[uint64]struct{}, len(cfps))
	for _, c := range cfps {
		set[c] = struct{}{}
	}
	g.exact = func(code uint64) bool {
		_, bad := set[code]
		return !bad
	}
	return len(cfps) * 64 // table cost in bits (one word per entry)
}

// InstallCascade makes the graph exact using a cascading Bloom filter
// (Salikhov et al.): B2 holds the critical FPs, B3 holds the true k-mers
// B2 wrongly claims, and a final exact list catches the residue. Returns
// the structure's cost in bits, typically far below the plain table's.
func (g *DeBruijn) InstallCascade(trueCodes, cfps []uint64, bitsPerKey float64) int {
	b2 := bloom.NewBitsSeeded(max(len(cfps), 1), bitsPerKey, 0xCA5CADE2)
	for _, c := range cfps {
		b2.Insert(c)
	}
	var wrongTrue []uint64
	for _, c := range trueCodes {
		if b2.Contains(c) {
			wrongTrue = append(wrongTrue, c)
		}
	}
	b3 := bloom.NewBitsSeeded(max(len(wrongTrue), 1), bitsPerKey, 0xCA5CADE3)
	for _, c := range wrongTrue {
		b3.Insert(c)
	}
	// Residue: critical FPs that pass b2 then also pass b3 — must be
	// rejected exactly.
	residue := map[uint64]struct{}{}
	for _, c := range cfps {
		if b3.Contains(c) {
			residue[c] = struct{}{}
		}
	}
	g.exact = func(code uint64) bool {
		if !b2.Contains(code) {
			return true // not a known FP
		}
		if !b3.Contains(code) {
			return false // in the FP filter, not rescued: reject
		}
		_, bad := residue[code]
		return !bad
	}
	return b2.SizeBits() + b3.SizeBits() + len(residue)*64
}

// Components counts connected components among the true k-mers by BFS
// over the (possibly probabilistic) graph. It is the structural-integrity
// metric for E12. At high false-positive rates the implied graph
// percolates through phantom nodes, so exploration is capped at a
// multiple of the true set size; a percolating blob counts as one
// component either way.
func (g *DeBruijn) Components(trueCodes []uint64) int {
	budget := len(trueCodes)*4 + 1000
	visited := make(map[uint64]bool, len(trueCodes))
	comps := 0
	for _, c := range trueCodes {
		if visited[c] {
			continue
		}
		comps++
		queue := []uint64{c}
		visited[c] = true
		for len(queue) > 0 && len(visited) < budget {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(cur) {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return comps
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
