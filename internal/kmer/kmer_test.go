package kmer

import (
	"testing"
	"testing/quick"

	"beyondbloom/internal/workload"
)

func TestEncodeDecode(t *testing.T) {
	cases := []string{"A", "ACGT", "TTTTTTT", "GATTACA", "ACGTACGTACGTACGTACGTACGTACGTACG"}
	for _, c := range cases {
		code, err := Encode([]byte(c))
		if err != nil {
			t.Fatal(err)
		}
		if got := string(Decode(code, len(c))); got != c {
			t.Fatalf("roundtrip %q -> %q", c, got)
		}
	}
	if _, err := Encode([]byte("ACGTN")); err == nil {
		t.Fatal("invalid base accepted")
	}
	if _, err := Encode(make([]byte, 32)); err == nil {
		t.Fatal("over-long k-mer accepted")
	}
}

func TestRevCompProperties(t *testing.T) {
	// revcomp(revcomp(x)) == x for all k-mers.
	f := func(raw uint32, kRaw uint8) bool {
		k := int(kRaw%28) + 3
		code := uint64(raw) & (1<<(2*k) - 1)
		return RevComp(RevComp(code, k), k) == code
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Known pair: revcomp(ACGT) == ACGT (palindrome).
	code, _ := Encode([]byte("ACGT"))
	if RevComp(code, 4) != code {
		t.Error("ACGT should be its own reverse complement")
	}
	// revcomp(AAAA) == TTTT.
	a4, _ := Encode([]byte("AAAA"))
	t4, _ := Encode([]byte("TTTT"))
	if RevComp(a4, 4) != t4 {
		t.Error("revcomp(AAAA) != TTTT")
	}
}

func TestCanonicalStrandIndependent(t *testing.T) {
	g := workload.DNA(1000, 1)
	k := 11
	Iterate(g, k, func(code uint64) {
		if Canonical(RevComp(code, k), k) != code {
			t.Fatal("canonical not strand independent")
		}
	})
}

func TestIterateCountsAndSkipsInvalid(t *testing.T) {
	n := 0
	Iterate([]byte("ACGTACGT"), 4, func(uint64) { n++ })
	if n != 5 {
		t.Fatalf("got %d k-mers from 8bp at k=4, want 5", n)
	}
	n = 0
	Iterate([]byte("ACGTNACGT"), 4, func(uint64) { n++ })
	if n != 2 {
		t.Fatalf("invalid base handling: got %d k-mers, want 2", n)
	}
}

func TestCounterMatchesNaive(t *testing.T) {
	genome := workload.DNA(20000, 3)
	reads := workload.Reads(genome, 500, 100, 0, 5)
	k := 15
	c := NewCounter(k, 60000, 1.0/1024)
	naive := map[uint64]uint64{}
	for _, r := range reads {
		if err := c.AddRead(r); err != nil {
			t.Fatal(err)
		}
		Iterate(r, k, func(code uint64) { naive[code]++ })
	}
	under := 0
	for code, want := range naive {
		if got := c.CountCode(code); got < want {
			under++
		}
	}
	if under > 0 {
		t.Fatalf("%d k-mers undercounted", under)
	}
	if c.Total() != sumValues(naive) {
		t.Fatalf("Total = %d, want %d", c.Total(), sumValues(naive))
	}
}

func sumValues(m map[uint64]uint64) uint64 {
	var s uint64
	for _, v := range m {
		s += v
	}
	return s
}

func TestExactCounterIsExact(t *testing.T) {
	genome := workload.DNA(30000, 7)
	reads := workload.Reads(genome, 800, 100, 0.01, 9)
	k := 17
	c := NewExactCounter(k, 100000)
	naive := map[uint64]uint64{}
	for _, r := range reads {
		if err := c.AddRead(r); err != nil {
			t.Fatal(err)
		}
		Iterate(r, k, func(code uint64) { naive[code]++ })
	}
	for code, want := range naive {
		if got := c.CountCode(code); got != want {
			t.Fatalf("exact counter wrong: code %d count %d want %d", code, got, want)
		}
	}
	// Absent k-mers must count zero.
	probe := workload.DNA(1000, 99)
	Iterate(probe, k, func(code uint64) {
		if _, present := naive[code]; !present {
			if c.CountCode(code) != 0 {
				t.Fatalf("phantom count for absent k-mer")
			}
		}
	})
}

func collectCodes(genome []byte, k int) []uint64 {
	set := map[uint64]struct{}{}
	Iterate(genome, k, func(code uint64) { set[code] = struct{}{} })
	out := make([]uint64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

func TestDeBruijnNavigation(t *testing.T) {
	genome := workload.DNA(5000, 11)
	k := 15
	codes := collectCodes(genome, k)
	g := NewDeBruijn(k, codes, 12)
	// Every true k-mer present; consecutive genome k-mers adjacent.
	for _, c := range codes {
		if !g.Present(c) {
			t.Fatal("true k-mer missing")
		}
	}
	var prev uint64
	first := true
	adjacencyChecked := 0
	Iterate(genome[:500], k, func(code uint64) {
		if !first {
			found := false
			for _, nb := range g.Neighbors(prev) {
				if nb == code {
					found = true
				}
			}
			if !found && prev != code {
				t.Fatalf("consecutive k-mers not adjacent in graph")
			}
			adjacencyChecked++
		}
		first = false
		prev = code
	})
	if adjacencyChecked == 0 {
		t.Fatal("no adjacency checked")
	}
}

func TestCriticalFPRemovalMakesExact(t *testing.T) {
	genome := workload.DNA(20000, 13)
	k := 13
	codes := collectCodes(genome, k)
	g := NewDeBruijn(k, codes, 6) // coarse filter: plenty of FPs
	cfps := g.CriticalFPs(codes)
	if len(cfps) == 0 {
		t.Skip("no critical FPs at this density")
	}
	g.InstallExactTable(cfps)
	// Navigation is now exact: every neighbor of a true k-mer is true.
	trueSet := map[uint64]bool{}
	for _, c := range codes {
		trueSet[c] = true
	}
	for _, c := range codes[:2000] {
		for _, nb := range g.Neighbors(c) {
			if !trueSet[nb] {
				t.Fatalf("phantom neighbor survived critical-FP removal")
			}
		}
	}
}

func TestCascadeMatchesExactTable(t *testing.T) {
	genome := workload.DNA(20000, 17)
	k := 13
	codes := collectCodes(genome, k)
	g1 := NewDeBruijn(k, codes, 6)
	cfps := g1.CriticalFPs(codes)
	if len(cfps) == 0 {
		t.Skip("no critical FPs")
	}
	tableBits := g1.InstallExactTable(cfps)

	g2 := NewDeBruijn(k, codes, 6)
	cascadeBits := g2.InstallCascade(codes, cfps, 10)

	// Same navigational behaviour on true k-mers and their extensions.
	trueSet := map[uint64]bool{}
	for _, c := range codes {
		trueSet[c] = true
	}
	for _, c := range codes[:2000] {
		n1 := g1.Neighbors(c)
		n2 := g2.Neighbors(c)
		if len(n1) != len(n2) {
			t.Fatalf("cascade diverges from exact table: %d vs %d neighbors", len(n1), len(n2))
		}
	}
	if cascadeBits >= tableBits {
		t.Logf("cascade bits %d vs table %d (cascade should usually win at scale)", cascadeBits, tableBits)
	}
}

func TestComponentsDegradeWithFPR(t *testing.T) {
	// A linear genome should be ~1 component. With a generous filter the
	// structure holds; the metric exists for E12's FPR sweep.
	genome := workload.DNA(3000, 19)
	k := 15
	codes := collectCodes(genome, k)
	g := NewDeBruijn(k, codes, 12)
	comps := g.Components(codes)
	if comps > len(codes)/10 {
		t.Errorf("too many components (%d) for a linear genome", comps)
	}
}

func BenchmarkAddRead(b *testing.B) {
	genome := workload.DNA(100000, 21)
	reads := workload.Reads(genome, 1000, 150, 0.01, 23)
	c := NewCounter(21, 1<<20, 1.0/256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddRead(reads[i%len(reads)])
	}
}

func TestWeightedSelfCorrection(t *testing.T) {
	// A coarse node CQF overcounts some k-mers; the edge invariant should
	// pull most corrected counts back to the truth.
	genome := workload.DNA(30000, 51)
	reads := workload.Reads(genome, 1500, 80, 0, 53)
	k := 13
	w := NewWeighted(k, 200000, 1.0/16) // deliberately coarse: collisions
	naive := map[uint64]uint64{}
	for _, r := range reads {
		if err := w.AddRead(r); err != nil {
			t.Fatal(err)
		}
		Iterate(r, k, func(code uint64) { naive[code]++ })
	}
	rawWrong, corrWrong, under := 0, 0, 0
	for code, want := range naive {
		if w.RawCount(code) != want {
			rawWrong++
		}
		got := w.Count(code)
		if got != want {
			corrWrong++
		}
		if got < want {
			under++
		}
	}
	if under > 0 {
		t.Fatalf("%d corrected counts undercount (invariant must never undercount)", under)
	}
	if rawWrong == 0 {
		t.Skip("no raw overcounts at this density")
	}
	if corrWrong*2 > rawWrong {
		t.Errorf("correction fixed too little: raw wrong %d, corrected wrong %d", rawWrong, corrWrong)
	}
}

func TestWeightedExactOnCleanData(t *testing.T) {
	genome := workload.DNA(5000, 55)
	reads := workload.Reads(genome, 300, 60, 0, 57)
	k := 13
	w := NewWeighted(k, 50000, 1.0/1024)
	naive := map[uint64]uint64{}
	for _, r := range reads {
		w.AddRead(r)
		Iterate(r, k, func(code uint64) { naive[code]++ })
	}
	wrong := 0
	for code, want := range naive {
		if w.Count(code) != want {
			wrong++
		}
	}
	if wrong > len(naive)/100 {
		t.Errorf("%d/%d wrong corrected counts with a fine CQF", wrong, len(naive))
	}
	// Absent k-mers are absent.
	foreign := workload.DNA(2000, 59)
	Iterate(foreign, k, func(code uint64) {
		if _, present := naive[code]; !present && w.Present(code) {
			// Possible via CQF collision; must be rare.
			t.Logf("phantom presence for foreign k-mer (collision)")
		}
	})
}

func TestWeightedRemove(t *testing.T) {
	w := NewWeighted(13, 1000, 1.0/1024)
	read := workload.DNA(100, 61)
	w.AddRead(read)
	var first uint64
	got := false
	Iterate(read, 13, func(code uint64) {
		if !got {
			first = code
			got = true
		}
	})
	before := w.RawCount(first)
	if before == 0 {
		t.Fatal("k-mer missing")
	}
	if err := w.Remove(first, before); err != nil {
		t.Fatal(err)
	}
	if w.RawCount(first) != 0 {
		t.Fatal("remove failed")
	}
}
