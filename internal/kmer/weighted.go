package kmer

import (
	"beyondbloom/internal/quotient"
)

// Weighted is a deBGR-style weighted de Bruijn graph (§3.2): node
// abundances live in an approximate counting quotient filter, and the
// structure exploits an abundance invariant of exact weighted de Bruijn
// graphs to self-correct the CQF's (rare) overcounts — "an algorithm
// that uses this approximate data representation to iteratively
// self-correct approximation errors".
//
// The invariant used here (a simplification of deBGR's, documented in
// DESIGN.md): every occurrence of a k-mer inside a read extends to
// exactly one (k+1)-mer on each side, so a node's true abundance is at
// most its incident (k+1)-mer (edge) abundance sum on either side, plus
// the occurrences that touch a read boundary. Node counts inflated by a
// fingerprint collision almost always exceed that bound and are clamped
// to it. Edges are stored in their own CQF with an independent hash, so
// a node-side collision and an edge-side collision on the same k-mer are
// vanishingly unlikely to conspire.
type Weighted struct {
	K     int
	nodes *quotient.Counting // k-mer abundances (approximate)
	edges *quotient.Counting // (k+1)-mer abundances (approximate)
	// boundary tracks read ends: occurrences not followed (resp.
	// preceded) by an edge. Stored exactly; reads are few relative to
	// k-mers and deBGR keeps equivalent end information.
	boundary map[uint64]uint64
}

// NewWeighted returns a weighted graph for about n distinct k-mers at
// CQF error rate delta.
func NewWeighted(k, n int, delta float64) *Weighted {
	if k < 2 || k > 30 {
		panic("kmer: weighted graph needs k in [2,30]")
	}
	return &Weighted{
		K:        k,
		nodes:    quotient.NewCountingForCapacity(n, delta),
		edges:    quotient.NewCountingForCapacity(n*2, delta),
		boundary: make(map[uint64]uint64),
	}
}

// AddRead ingests a read: every canonical k-mer is counted as a node and
// every canonical (k+1)-mer as an edge; the read's first and last k-mers
// are recorded as boundary occurrences.
func (w *Weighted) AddRead(read []byte) error {
	var firstSeen, lastCode uint64
	count := 0
	var err error
	Iterate(read, w.K, func(code uint64) {
		if err != nil {
			return
		}
		if count == 0 {
			firstSeen = code
		}
		lastCode = code
		count++
		err = w.nodes.Add(code, 1)
	})
	if err != nil {
		return err
	}
	Iterate(read, w.K+1, func(code uint64) {
		if err != nil {
			return
		}
		err = w.edges.Add(code, 1)
	})
	if err != nil {
		return err
	}
	if count > 0 {
		w.boundary[firstSeen]++
		w.boundary[lastCode]++
	}
	return nil
}

// RawCount returns the node CQF's abundance (may overcount on
// fingerprint collision).
func (w *Weighted) RawCount(code uint64) uint64 { return w.nodes.Count(code) }

// edgeSums sums the abundance of the up-to-8 incident (k+1)-mer edges:
// the four right extensions and four left extensions of the canonical
// k-mer. An occurrence in either strand orientation lands its two
// incident edges somewhere in this set after canonicalization.
func (w *Weighted) edgeSums(code uint64) (right, left uint64) {
	maskK1 := uint64(1)<<(2*(w.K+1)) - 1
	for b := uint64(0); b < 4; b++ {
		re := (code<<2 | b) & maskK1
		le := b<<(2*w.K) | code
		right += w.edgeWeight(re)
		left += w.edgeWeight(le)
	}
	return
}

// edgeWeight returns an edge's contribution to its endpoint's incidence
// sum. A palindromic (k+1)-mer (its own reverse complement — possible
// because k+1 is even) contains the node in both orientations, so each
// physical occurrence serves two incidences and counts double.
func (w *Weighted) edgeWeight(e uint64) uint64 {
	c := w.edges.Count(Canonical(e, w.K+1))
	if RevComp(e, w.K+1) == e {
		return 2 * c
	}
	return c
}

// Count returns the self-corrected abundance. The exact weighted de
// Bruijn graph satisfies left+right = 2·count − boundary (every
// occurrence has two incident edges except where it touches a read end),
// so (left+right+boundary)/2 bounds the true count; edge-side CQF
// overcounts only loosen the bound upward, so clamping never undercounts.
func (w *Weighted) Count(code uint64) uint64 {
	raw := w.nodes.Count(code)
	if raw == 0 {
		return 0
	}
	right, left := w.edgeSums(code)
	bound := (right + left + w.boundary[code] + 1) / 2
	if raw > bound {
		return bound
	}
	return raw
}

// Present reports whether the k-mer's corrected abundance is positive.
func (w *Weighted) Present(code uint64) bool { return w.Count(code) > 0 }

// Remove deletes occurrences of a k-mer (the partially-dynamic ability
// the tutorial highlights for tip removal and bubble popping). The
// caller supplies the read context via the incident edges to remove.
func (w *Weighted) Remove(code uint64, n uint64) error {
	return w.nodes.Remove(code, n)
}

// RemoveEdge deletes occurrences of a (k+1)-mer edge.
func (w *Weighted) RemoveEdge(code uint64, n uint64) error {
	return w.edges.Remove(code, n)
}

// SizeBits returns both CQFs plus the boundary table.
func (w *Weighted) SizeBits() int {
	return w.nodes.SizeBits() + w.edges.SizeBits() + len(w.boundary)*96
}
