// Package kmer implements the computational-biology substrate of §3.2:
// 2-bit DNA encoding, canonical k-mers, a Squeakr-style k-mer counter on
// the counting quotient filter, the probabilistic de Bruijn graph of Pell
// et al. (k-mer set in a Bloom filter), the exact navigational
// representation of Chikhi & Rizk (Bloom plus the critical false
// positives), and Salikhov et al.'s cascading-Bloom replacement for the
// exact table.
package kmer

import (
	"fmt"

	"beyondbloom/internal/quotient"
)

// Encode packs a DNA string (ACGT, case-sensitive) of length <= 31 into
// a uint64, 2 bits per base.
func Encode(seq []byte) (uint64, error) {
	if len(seq) > 31 {
		return 0, fmt.Errorf("kmer: length %d exceeds 31", len(seq))
	}
	var v uint64
	for _, b := range seq {
		c, err := baseCode(b)
		if err != nil {
			return 0, err
		}
		v = v<<2 | c
	}
	return v, nil
}

func baseCode(b byte) (uint64, error) {
	switch b {
	case 'A':
		return 0, nil
	case 'C':
		return 1, nil
	case 'G':
		return 2, nil
	case 'T':
		return 3, nil
	}
	return 0, fmt.Errorf("kmer: invalid base %q", b)
}

// Decode unpacks a k-mer code back into its DNA string.
func Decode(v uint64, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = "ACGT"[v&3]
		v >>= 2
	}
	return out
}

// RevComp returns the reverse complement of a k-mer code.
func RevComp(v uint64, k int) uint64 {
	var rc uint64
	for i := 0; i < k; i++ {
		rc = rc<<2 | (v & 3) ^ 3 // complement: A<->T (0<->3), C<->G (1<->2)
		v >>= 2
	}
	return rc
}

// Canonical returns the smaller of a k-mer and its reverse complement —
// the strand-independent representative used throughout genomics tools.
func Canonical(v uint64, k int) uint64 {
	if rc := RevComp(v, k); rc < v {
		return rc
	}
	return v
}

// Iterate calls fn for every canonical k-mer of seq. Invalid bases are
// skipped by restarting after them.
func Iterate(seq []byte, k int, fn func(code uint64)) {
	if k < 1 || k > 31 {
		panic("kmer: k must be in [1,31]")
	}
	mask := uint64(1)<<(2*k) - 1
	var cur uint64
	valid := 0
	for _, b := range seq {
		c, err := baseCode(b)
		if err != nil {
			valid = 0
			cur = 0
			continue
		}
		cur = (cur<<2 | c) & mask
		valid++
		if valid >= k {
			fn(Canonical(cur, k))
		}
	}
}

// Counter is a Squeakr-style k-mer counter: canonical k-mers counted in
// a counting quotient filter, supporting exact-or-overcount queries and
// iteration. The CQF's variable-length counters make highly repetitive
// genomes (skewed k-mer abundance) cheap — the tutorial's §2.6/§3.2
// motivation.
type Counter struct {
	K         int
	cqf       *quotient.Counting
	exactBits uint // nonzero in exact mode: codes pre-mixed bijectively
}

// NewCounter returns a counter for n distinct k-mers at error rate
// delta.
func NewCounter(k, n int, delta float64) *Counter {
	if k < 1 || k > 31 {
		panic("kmer: k must be in [1,31]")
	}
	return &Counter{K: k, cqf: quotient.NewCountingForCapacity(n, delta)}
}

// NewExactCounter returns a counter whose fingerprint covers the full
// 2k-bit k-mer code, so counts are exact — Squeakr's exact mode, and the
// property Mantis relies on ("an exact mapping by employing fingerprints
// that match the original key size"). Codes are spread over the quotient
// space by an odd-multiplier bijection on the 2k-bit domain (invertible,
// hence still exact).
func NewExactCounter(k, n int) *Counter {
	if k < 2 || k > 29 {
		panic("kmer: exact counter needs k in [2,29]")
	}
	q := uint(1)
	for float64(uint64(1)<<q)*0.95 < float64(n)*1.1 {
		q++
	}
	if q >= uint(2*k)-1 {
		q = uint(2*k) - 2
	}
	r := uint(2*k) - q
	c := &Counter{K: k, cqf: quotient.NewCountingIdentity(q, r)}
	c.exactBits = uint(2 * k)
	return c
}

// exactMixer is an odd constant; multiplication by it modulo 2^(2k) is a
// bijection, spreading consecutive codes across quotients.
const exactMixer = 0x9E3779B97F4A7C15

func (c *Counter) mix(code uint64) uint64 {
	if c.exactBits == 0 {
		return code
	}
	return (code * exactMixer) & (uint64(1)<<c.exactBits - 1)
}

// AddRead counts every canonical k-mer of the read.
func (c *Counter) AddRead(read []byte) error {
	var err error
	Iterate(read, c.K, func(code uint64) {
		if err == nil {
			err = c.cqf.Add(c.mix(code), 1)
		}
	})
	return err
}

// Count returns the abundance of a k-mer given as a string.
func (c *Counter) Count(seq []byte) (uint64, error) {
	if len(seq) != c.K {
		return 0, fmt.Errorf("kmer: query length %d != k %d", len(seq), c.K)
	}
	code, err := Encode(seq)
	if err != nil {
		return 0, err
	}
	return c.CountCode(Canonical(code, c.K)), nil
}

// CountCode returns the abundance of a canonical k-mer code.
func (c *Counter) CountCode(code uint64) uint64 { return c.cqf.Count(c.mix(code)) }

// Distinct returns the number of distinct k-mers seen.
func (c *Counter) Distinct() int { return c.cqf.Distinct() }

// Total returns the total k-mer occurrences counted.
func (c *Counter) Total() uint64 { return c.cqf.Total() }

// SizeBits returns the CQF footprint.
func (c *Counter) SizeBits() int { return c.cqf.SizeBits() }

// Pairs iterates all (canonical code, count) pairs.
func (c *Counter) Pairs() []struct{ Fingerprint, Count uint64 } { return c.cqf.Pairs() }
