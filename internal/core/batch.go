package core

// BatchChunk is the number of keys the native batched probes stage at a
// time. One chunk of precomputed hash state (a few stack-allocated
// arrays of 256 words) fits comfortably in L1, so the hash-once phase
// never evicts the filter data the probe-many phase is about to touch.
const BatchChunk = 256

// BatchFilter is a Filter with a native batched membership probe.
// ContainsBatch must be exactly equivalent to calling Contains on each
// key in order — same answers, including the no-false-negative
// guarantee — but is free to reorder and pipeline the underlying memory
// accesses. Implementations precompute all hash state for a chunk of
// keys up front (hash-once), then issue the probes in tight loops
// (probe-many) so cache misses overlap instead of serializing behind
// hash computation and per-key branch mispredictions.
type BatchFilter interface {
	Filter
	// ContainsBatch writes Contains(keys[i]) into out[i] for every i.
	// It panics if len(out) < len(keys). out is caller-owned and may be
	// reused across calls without clearing; every entry in
	// out[:len(keys)] is overwritten.
	ContainsBatch(keys []uint64, out []bool)
}

// ContainsBatch probes f with every key, dispatching to the native
// batched path when f implements BatchFilter and falling back to a
// scalar loop otherwise. Callers that hold a batch of lookups (LSM
// point reads, k-mer scans, URL checks) should always go through this
// instead of looping over Contains themselves.
func ContainsBatch(f Filter, keys []uint64, out []bool) {
	if bf, ok := f.(BatchFilter); ok {
		bf.ContainsBatch(keys, out)
		return
	}
	ContainsBatchScalar(f, keys, out)
}

// ContainsBatchScalar is the generic fallback: a plain scalar loop with
// the same contract as BatchFilter.ContainsBatch. Filters without a
// profitable batched layout can delegate to it to satisfy the
// interface.
func ContainsBatchScalar(f Filter, keys []uint64, out []bool) {
	_ = out[:len(keys)] // bounds check once, before any probe
	for i, k := range keys {
		out[i] = f.Contains(k)
	}
}
