package core

import "context"

// FallibleRemote is a Remote whose accesses can fail or be cancelled —
// the realistic model of the "dictionary on disk" (or over the network)
// that an adaptive filter fronts. Contains reports exact membership when
// err is nil; when err is non-nil the boolean is meaningless and the
// caller must degrade without compromising its own guarantees.
type FallibleRemote interface {
	Contains(ctx context.Context, key uint64) (bool, error)
}

// infallibleRemote adapts a Remote into a FallibleRemote that never
// fails (beyond context cancellation).
type infallibleRemote struct{ r Remote }

func (a infallibleRemote) Contains(ctx context.Context, key uint64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return a.r.Contains(key), nil
}

// AsFallible adapts an exact Remote to the fallible interface.
func AsFallible(r Remote) FallibleRemote { return infallibleRemote{r} }

// FailSafeRemote adapts a FallibleRemote back to the infallible Remote
// interface by answering "present" whenever the remote errs. That is the
// fail-safe direction for every caller in this repository: treating an
// unverifiable key as present costs a (possibly spurious) positive but
// can never introduce a false negative, and it never triggers an Adapt
// on a key the remote might actually hold.
type FailSafeRemote struct {
	R FallibleRemote
	// Errors counts accesses that fell back to the fail-safe answer.
	Errors int
}

// Contains reports membership, or true when the remote cannot say.
func (a *FailSafeRemote) Contains(key uint64) bool {
	ok, err := a.R.Contains(context.Background(), key)
	if err != nil {
		a.Errors++
		return true
	}
	return ok
}

var (
	_ FallibleRemote = infallibleRemote{}
	_ Remote         = (*FailSafeRemote)(nil)
)
