// Package core defines the common interfaces and shared plumbing of the
// filter library: the filter capability interfaces (the "modern filter
// API" the tutorial advocates), sentinel errors, and space/FPR accounting
// helpers used by the experiment harness.
//
// Keys are uint64 throughout the core API. Applications with byte-string
// keys (URLs, k-mers, ...) hash them at the edge with hashutil.Sum64;
// structures that need the original byte strings (the SuRF trie) expose
// their own []byte-keyed API in addition.
package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
)

// Sentinel errors returned by filter operations.
var (
	// ErrFull is returned by Insert when the structure cannot accept more
	// items at its configured capacity (e.g. a cuckoo filter whose kick
	// loop failed, or a quotient filter at maximum load).
	ErrFull = errors.New("filter: full")

	// ErrNotFound is returned by Delete when the key's fingerprint is not
	// present. Deleting a key that was never inserted is a caller bug for
	// most filters (it can remove another key's fingerprint), so callers
	// should only delete keys they know are present.
	ErrNotFound = errors.New("filter: not found")

	// ErrImmutable is returned by mutation methods on static filters.
	ErrImmutable = errors.New("filter: immutable")
)

// Filter is the minimal read-side interface: approximate membership with
// one-sided error. Contains must return true for every inserted key
// (no false negatives) and false with probability at least 1-ε for keys
// never inserted.
type Filter interface {
	// Contains reports whether key may be in the set.
	Contains(key uint64) bool
	// SizeBits returns the memory footprint of the structure in bits.
	SizeBits() int
}

// MutableFilter supports insertions after construction (the tutorial's
// semi-dynamic class when Delete is absent).
type MutableFilter interface {
	Filter
	Insert(key uint64) error
}

// DeletableFilter supports both insertions and deletions (the tutorial's
// dynamic class).
type DeletableFilter interface {
	MutableFilter
	Delete(key uint64) error
}

// GrowableFilter is a MutableFilter that never stops growing (the
// tutorial's §2.2 "future feature"): Insert must never fail for
// capacity reasons — the structure expands itself under live traffic
// instead. Implementations commit to a compound false-positive budget
// chosen at construction and report how many capacity doublings they
// have performed, so callers can watch bits/key and FPR drift as the
// set grows (experiment E23).
type GrowableFilter interface {
	MutableFilter
	// Expansions returns the number of capacity doublings performed
	// since construction.
	Expansions() int
	// FPRBudget returns the target compound false-positive rate the
	// filter was configured to maintain across growth. How tightly the
	// budget holds under unbounded expansion is implementation-specific
	// (taffy-style bit donation keeps it within a small constant;
	// InfiniFilter-style donation drifts linearly per doubling).
	FPRBudget() float64
}

// CountingFilter represents multisets: a query returns the number of
// times a key was inserted. Counts may overreport (by fingerprint
// collision) with probability at most δ, but must never underreport
// while within capacity.
type CountingFilter interface {
	Filter
	// Add inserts delta occurrences of key (delta >= 1).
	Add(key uint64, delta uint64) error
	// Remove deletes delta occurrences of key.
	Remove(key uint64, delta uint64) error
	// Count returns the (possibly overestimated) multiplicity of key.
	Count(key uint64) uint64
}

// Maplet associates a small value with each key (the tutorial §2.4).
// Get returns the set of candidate values: for a present key it includes
// the true value plus possibly extra collisions (expected positive result
// size PRS); for an absent key it returns collisions only (expected
// negative result size NRS).
type Maplet interface {
	// Put associates value with key.
	Put(key, value uint64) error
	// Get returns all candidate values for key.
	Get(key uint64) []uint64
	// SizeBits returns the memory footprint in bits.
	SizeBits() int
}

// DeletableMaplet additionally supports removing an association.
type DeletableMaplet interface {
	Maplet
	Delete(key, value uint64) error
}

// RangeFilter answers ε-approximate range-emptiness queries over uint64
// keys (the tutorial §2.5): MayContainRange must return true whenever
// [lo, hi] intersects the key set, and false with probability at least
// 1-ε otherwise.
type RangeFilter interface {
	// MayContainRange reports whether the closed interval [lo, hi] may
	// contain a key.
	MayContainRange(lo, hi uint64) bool
	// SizeBits returns the memory footprint in bits.
	SizeBits() int
}

// Remote is the exact backing representation an adaptive filter consults
// when fixing false positives (the "dictionary on disk" in the broom
// filter model). Accesses to it are what the filter is trying to avoid,
// so implementations used in experiments count them.
type Remote interface {
	// Contains reports exact membership of key.
	Contains(key uint64) bool
}

// AdaptiveFilter is a filter that repairs itself when told a positive
// answer was false, so that repeating the same negative query does not
// repeat the error (the tutorial §2.3).
type AdaptiveFilter interface {
	Filter
	// Adapt informs the filter that Contains(key) returned true but the
	// remote said the key is absent. The filter updates itself so a
	// subsequent Contains(key) returns false (monotone adaptivity may
	// take O(1) amortized structural work).
	Adapt(key uint64)
}

// MapSet is a trivial exact Remote backed by a Go map. It also counts
// accesses, standing in for disk I/Os in adaptivity experiments. It is
// safe for concurrent use: lookups share a read lock and the access
// counter is atomic, so a MapSet can mirror a concurrent store.
type MapSet struct {
	mu       sync.RWMutex
	m        map[uint64]struct{}
	accesses atomic.Int64
}

// NewMapSet returns an empty exact set.
func NewMapSet() *MapSet { return &MapSet{m: make(map[uint64]struct{})} }

// Insert adds key to the set.
func (s *MapSet) Insert(key uint64) {
	s.mu.Lock()
	s.m[key] = struct{}{}
	s.mu.Unlock()
}

// Delete removes key from the set.
func (s *MapSet) Delete(key uint64) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Contains reports exact membership and counts the access.
func (s *MapSet) Contains(key uint64) bool {
	s.accesses.Add(1)
	s.mu.RLock()
	_, ok := s.m[key]
	s.mu.RUnlock()
	return ok
}

// Accesses returns how many Contains calls the set has served.
func (s *MapSet) Accesses() int { return int(s.accesses.Load()) }

// Len returns the set cardinality.
func (s *MapSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// BitsPerKey returns the space of a filter normalized by the number of
// keys it holds.
func BitsPerKey(f Filter, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(f.SizeBits()) / float64(n)
}

// LowerBoundBits returns the information-theoretic lower bound
// log2(1/epsilon) in bits per key for a membership filter.
func LowerBoundBits(epsilon float64) float64 {
	return math.Log2(1 / epsilon)
}

// BloomBitsPerKey returns the bits/key a classic Bloom filter needs for a
// target false-positive rate: 1.44 * log2(1/epsilon).
func BloomBitsPerKey(epsilon float64) float64 {
	return math.Log2(math.E) * math.Log2(1/epsilon)
}

// BloomEpsForBits inverts BloomBitsPerKey: the false-positive rate a
// classic Bloom filter achieves with bitsPerKey bits per key,
// 2^(-bitsPerKey/log2(e)). Layers that historically configured filters
// by bits/key (the LSM store) use it to derive the equivalent ε budget
// when switching a run filter to a growable type.
func BloomEpsForBits(bitsPerKey float64) float64 {
	return math.Pow(2, -bitsPerKey/math.Log2(math.E))
}

// BloomOptimalK returns the optimal number of hash functions for a Bloom
// filter with bitsPerKey bits per key: k = ln(2) * bits/key.
func BloomOptimalK(bitsPerKey float64) int {
	k := int(math.Round(math.Ln2 * bitsPerKey))
	if k < 1 {
		k = 1
	}
	return k
}
