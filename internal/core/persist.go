package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"beyondbloom/internal/codec"
)

// TypeID values identify filter types on the wire. They are allocated
// here, in one table, so two packages can never claim the same id, and
// they are append-only: an id, once released, is never reused or
// renumbered (the golden-file tests pin them). Kinds 1–15 belong to the
// codec substrate containers.
const (
	TypeBloom          uint16 = 16 // bloom.Filter
	TypeBlockedBloom   uint16 = 17 // bloom.Blocked
	TypeCuckoo         uint16 = 18 // cuckoo.Filter
	TypeQuotient       uint16 = 19 // quotient.Filter
	TypeXor            uint16 = 20 // xorfilter.Filter
	TypeSharded        uint16 = 21 // concurrent.Sharded
	TypeBlockedChoices uint16 = 22 // bloom.BlockedChoices
	TypeScalableBloom  uint16 = 23 // bloom.Scalable
	TypeInfini         uint16 = 24 // infini.Filter
	TypeTaffy          uint16 = 25 // taffy.Filter

	// Application-layer kinds (not filters; decoded by their owners).
	TypeLSMManifest   uint16 = 32 // lsm store manifest, v1 layout (pre-durability)
	TypeLSMRun        uint16 = 33 // lsm run data file
	TypeLSMManifestV2 uint16 = 34 // lsm store manifest with durability fields
	TypeLSMManifestV3 uint16 = 35 // lsm store manifest with the growable-run-filter flag
)

// Persistent is a filter that can serialize its complete state to a
// stream and restore it bit-identically. WriteTo must emit exactly one
// top-level codec frame whose kind equals TypeID() (nested sub-frames
// live inside, or — for multi-part structures like sharded wrappers —
// follow as sibling frames that ReadFrom knows to consume). ReadFrom
// must work on the zero value of the implementing type and must
// validate everything it reads: feeding it corrupt bytes returns an
// error wrapping codec.ErrCorrupt, never a panic and never a filter
// with silently wrong answers.
type Persistent interface {
	Filter
	// TypeID returns the filter's stable wire-format type id.
	TypeID() uint16
	io.WriterTo
	io.ReaderFrom
}

// Spec describes a filter's construction parameters in one flat,
// serializable struct — the single source of truth that replaces
// per-constructor option plumbing. Not every field applies to every
// filter; unused fields are zero and each filter's FromSpec validates
// the ones it needs.
type Spec struct {
	// Type is the filter's TypeID (which registry entry builds it).
	Type uint16
	// N is the design capacity in keys (the initial capacity for
	// growable filters).
	N int
	// BitsPerKey is the space budget for Bloom-family filters. Growable
	// filter types (TypeScalableBloom, TypeTaffy) reuse this field for
	// their target compound false-positive budget ε — the two meanings
	// cannot collide, since a bits budget is ≥ 1 and an ε is < 1, and
	// each filter's FromSpec validates the range it needs.
	BitsPerKey float64
	// FPBits is the fingerprint width for cuckoo/xor filters.
	FPBits uint8
	// Q and R are the quotient filter geometry (log2 slots, remainder
	// bits).
	Q, R uint8
	// Seed is the hash seed.
	Seed uint64
	// LogShards is the shard count exponent for sharded wrappers.
	LogShards uint8
}

// Encode appends the spec's canonical encoding to e. The field set is
// fixed for format version 1; adding a field means bumping the codec
// version.
func (s Spec) Encode(e *codec.Enc) {
	e.U16(s.Type)
	e.U64(uint64(s.N))
	e.F64(s.BitsPerKey)
	e.U8(s.FPBits)
	e.U8(s.Q)
	e.U8(s.R)
	e.U64(s.Seed)
	e.U8(s.LogShards)
}

// DecodeSpec consumes a spec from d (errors accumulate in d).
func DecodeSpec(d *codec.Dec) Spec {
	var s Spec
	s.Type = d.U16()
	s.N = int(d.U64())
	s.BitsPerKey = d.F64()
	s.FPBits = d.U8()
	s.Q = d.U8()
	s.R = d.U8()
	s.Seed = d.U64()
	s.LogShards = d.U8()
	return s
}

// registryEntry is one registered filter type.
type registryEntry struct {
	name string
	// empty returns a zero-value filter ready for ReadFrom.
	empty func() Persistent
	// build constructs a fresh filter from a Spec (nil for filter types
	// whose construction needs more than parameters, e.g. static
	// filters built from a key set).
	build func(Spec) (Persistent, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[uint16]registryEntry{}
)

// Register adds a filter type to the persistence registry. It is called
// from the filter packages' init functions; registering the same id
// twice panics (it means two packages claimed one TypeID). build may be
// nil for types that cannot be constructed from a Spec alone.
func Register(id uint16, name string, empty func() Persistent, build func(Spec) (Persistent, error)) {
	if empty == nil {
		panic(fmt.Sprintf("core: Register(%d, %q) with nil empty factory", id, name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, dup := registry[id]; dup {
		panic(fmt.Sprintf("core: TypeID %d registered twice (%q and %q)", id, prev.name, name))
	}
	registry[id] = registryEntry{name: name, empty: empty, build: build}
}

// TypeName returns the registered name for a TypeID ("" if unknown).
func TypeName(id uint16) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[id].name
}

// RegisteredTypes returns the registered TypeIDs in ascending order.
func RegisteredTypes() []uint16 {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ids := make([]uint16, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func lookup(id uint16) (registryEntry, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ent, ok := registry[id]
	if !ok {
		return registryEntry{}, fmt.Errorf("%w: unregistered filter TypeID %d (is the filter's package imported?)", codec.ErrCorrupt, id)
	}
	return ent, nil
}

// Save writes f's complete state to w. It is WriteTo with the envelope
// contract spelled out: the stream starts with a frame whose kind is
// f.TypeID(), which is what Load dispatches on.
func Save(w io.Writer, f Persistent) (int64, error) {
	return f.WriteTo(w)
}

// Load reads one filter from r: it peeks the leading frame header,
// looks the TypeID up in the registry, and hands the stream (header
// replayed) to a zero value of the registered type. The reader is left
// positioned immediately after the filter's encoding, so several
// filters can be loaded from one stream back to back.
func Load(r io.Reader) (Persistent, error) {
	kind, hdr, err := codec.PeekKind(r)
	if err != nil {
		return nil, err
	}
	ent, err := lookup(kind)
	if err != nil {
		return nil, err
	}
	f := ent.empty()
	if _, err := f.ReadFrom(io.MultiReader(bytes.NewReader(hdr[:]), r)); err != nil {
		return nil, fmt.Errorf("loading %s: %w", ent.name, err)
	}
	return f, nil
}

// Build constructs a fresh, empty filter from its Spec via the
// registry. Filter types whose construction needs more than parameters
// (static filters built from a key set) return an error.
func Build(s Spec) (Persistent, error) {
	ent, err := lookup(s.Type)
	if err != nil {
		return nil, err
	}
	if ent.build == nil {
		return nil, fmt.Errorf("core: filter type %s (%d) cannot be built from a Spec alone", ent.name, s.Type)
	}
	return ent.build(s)
}
