package core

import (
	"math"
	"testing"
)

func TestMapSet(t *testing.T) {
	s := NewMapSet()
	s.Insert(1)
	s.Insert(2)
	if !s.Contains(1) || !s.Contains(2) || s.Contains(3) {
		t.Fatal("MapSet membership wrong")
	}
	if s.Accesses() != 3 {
		t.Fatalf("Accesses = %d, want 3", s.Accesses())
	}
	s.Delete(1)
	if s.Contains(1) {
		t.Fatal("Delete failed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestLowerBoundBits(t *testing.T) {
	if got := LowerBoundBits(1.0 / 256); math.Abs(got-8) > 1e-9 {
		t.Fatalf("LowerBoundBits(2^-8) = %f, want 8", got)
	}
}

func TestBloomBitsPerKey(t *testing.T) {
	// 1.44 * 8 ≈ 11.54 for ε = 2^-8.
	got := BloomBitsPerKey(1.0 / 256)
	if got < 11.5 || got > 11.6 {
		t.Fatalf("BloomBitsPerKey(2^-8) = %f, want ≈11.54", got)
	}
}

func TestBloomOptimalK(t *testing.T) {
	cases := []struct {
		bits float64
		want int
	}{
		{10, 7},
		{1, 1},
		{0.1, 1}, // floor at 1
		{14.4, 10},
	}
	for _, c := range cases {
		if got := BloomOptimalK(c.bits); got != c.want {
			t.Errorf("BloomOptimalK(%f) = %d, want %d", c.bits, got, c.want)
		}
	}
}

type fakeFilter struct{ bits int }

func (f fakeFilter) Contains(uint64) bool { return false }
func (f fakeFilter) SizeBits() int        { return f.bits }

func TestBitsPerKey(t *testing.T) {
	if got := BitsPerKey(fakeFilter{1000}, 100); got != 10 {
		t.Fatalf("BitsPerKey = %f, want 10", got)
	}
	if got := BitsPerKey(fakeFilter{1000}, 0); got != 0 {
		t.Fatalf("BitsPerKey with n=0 = %f, want 0", got)
	}
}
