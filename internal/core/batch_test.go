package core

import "testing"

// parityFilter is a toy exact filter (even keys are members) used to
// exercise the dispatch paths without importing a real filter package.
type parityFilter struct{ batched int }

func (p *parityFilter) Contains(key uint64) bool { return key%2 == 0 }
func (p *parityFilter) SizeBits() int            { return 0 }

// batchedParity additionally implements BatchFilter, counting how many
// times the native path was taken.
type batchedParity struct{ parityFilter }

func (p *batchedParity) ContainsBatch(keys []uint64, out []bool) {
	p.batched++
	ContainsBatchScalar(&p.parityFilter, keys, out)
}

func TestContainsBatchScalarFallback(t *testing.T) {
	f := &parityFilter{}
	keys := []uint64{0, 1, 2, 3, 4, 7}
	out := make([]bool, len(keys))
	ContainsBatch(f, keys, out)
	for i, k := range keys {
		if out[i] != f.Contains(k) {
			t.Errorf("out[%d] = %v, want %v", i, out[i], f.Contains(k))
		}
	}
}

func TestContainsBatchDispatchesNative(t *testing.T) {
	f := &batchedParity{}
	keys := []uint64{1, 2, 3}
	out := make([]bool, len(keys))
	ContainsBatch(f, keys, out)
	if f.batched != 1 {
		t.Fatalf("native ContainsBatch called %d times, want 1", f.batched)
	}
	if out[0] || !out[1] || out[2] {
		t.Fatalf("wrong answers: %v", out)
	}
}

func TestContainsBatchOutReuse(t *testing.T) {
	f := &parityFilter{}
	out := make([]bool, 8)
	for i := range out {
		out[i] = true // stale garbage from a previous batch
	}
	ContainsBatch(f, []uint64{1, 3}, out)
	if out[0] || out[1] {
		t.Fatal("stale out entries not overwritten")
	}
	// Entries past len(keys) are untouched.
	if !out[2] {
		t.Fatal("entry past len(keys) was clobbered")
	}
	// Empty and nil batches are no-ops.
	ContainsBatch(f, nil, nil)
	ContainsBatch(f, []uint64{}, out[:0])
}

func TestContainsBatchShortOutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short out slice")
		}
	}()
	ContainsBatchScalar(&parityFilter{}, []uint64{1, 2, 3}, make([]bool, 2))
}
