// Package wal is the write-ahead log beneath the durable LSM store: an
// append-only sequence of mutation records on the internal/codec framed
// CRC-32C wire format, split across size-capped segment files. Every
// record carries contiguous log sequence numbers (LSNs), so replay can
// both restore exactly the acknowledged suffix of the write history and
// reject anything the log never produced — a record only counts if its
// frame checksum verifies AND its LSNs continue the sequence.
//
// # Durability modes
//
//	ModeGroup    (default) appends are buffered; Sync writes and fsyncs the
//	             whole pending batch once, so concurrent writers share
//	             fsyncs (group commit) while every acknowledged write is
//	             on stable storage.
//	ModeAlways   every append performs its own write+fsync before
//	             returning: the naive fsync-per-op baseline.
//	ModeBuffered appends are written to the OS but never fsynced by
//	             Sync (rotation still syncs); a crash may lose the
//	             buffered tail. Acknowledgements promise ordering, not
//	             durability — the fast, weak end of the ablation.
//
// # Crash tolerance
//
// Segments are rotated sync-before-advance: the old segment is fsynced
// before the next is created, so only the final segment can ever hold a
// torn tail. Open scans every segment, verifies checksums and LSN
// continuity, truncates a torn or corrupt tail off the final segment
// (repair, not failure), and fails loudly on damage anywhere else.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/fault"
)

// Op is one logged mutation.
type Op struct {
	Key       uint64
	Value     uint64
	Tombstone bool
}

// Mode selects the durability contract (see the package comment).
type Mode int

const (
	// ModeGroup batches fsyncs across concurrent appends (group commit);
	// acknowledged writes are durable.
	ModeGroup Mode = iota
	// ModeAlways fsyncs every append before acknowledging it.
	ModeAlways
	// ModeBuffered writes without fsync; a crash may drop the tail.
	ModeBuffered
)

func (m Mode) String() string {
	switch m {
	case ModeGroup:
		return "group"
	case ModeAlways:
		return "always"
	case ModeBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure a Log.
type Options struct {
	// FS is the filesystem the log writes through (nil selects the real
	// OS disk). Crash tests substitute a fault.CrashFS.
	FS fault.FS
	// SegmentBytes caps a segment file; the log rotates to a fresh
	// segment when the next record would overflow it (default 1 MiB).
	SegmentBytes int
	// Mode selects the durability contract (default ModeGroup).
	Mode Mode
	// FloorLSN is the checkpoint watermark of the store opening the
	// log: LSNs at or below it are already durable elsewhere, so the
	// log never assigns them again — even when the segments' own tail
	// was lost in a crash.
	FloorLSN uint64
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// opBytes is the encoded size of one Op (key + value + flag byte).
const opBytes = 17

// segExt and segPrefix name segment files: wal-<firstLSN>.bbl. The
// number is an ordering key (zero-padded decimal); the LSNs inside the
// frames are authoritative.
const (
	segPrefix = "wal-"
	segExt    = ".bbl"
)

func segName(first uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, first, segExt) }

// Stats counts what the log has done. Syncs vs Ops is the group-commit
// ratio: how many operations each fsync amortized.
type Stats struct {
	Records     uint64 // records appended
	Ops         uint64 // individual operations appended
	Syncs       uint64 // fsyncs issued on segment files
	Rotations   uint64 // segment rotations
	BytesLogged uint64 // frame bytes written
	Replayed    uint64 // operations above the floor replayed at Open
	TornRepairs uint64 // torn/corrupt tails truncated at Open
	Retired     uint64 // segments deleted by Retire
}

// pendingFrame is one encoded record awaiting its flush.
type pendingFrame struct {
	data    []byte
	lastLSN uint64
}

// closedSeg is a finalized (rotated-away) segment awaiting retirement.
type closedSeg struct {
	name   string
	maxLSN uint64
}

// Log is a segmented write-ahead log. It is safe for concurrent use.
//
// Lock order: ioMu before mu, never the reverse. mu guards the LSN
// counters, the pending queue, stats and the sticky error; ioMu owns
// the file state (active handle, sizes, closed-segment list) and
// serializes all disk writes so frames land in LSN order.
type Log struct {
	dir  string
	opts Options
	fs   fault.FS

	mu      sync.Mutex
	lastLSN uint64 // last assigned
	written uint64 // last LSN handed to the OS
	durable uint64 // last LSN fsynced
	pending []pendingFrame
	err     error // sticky: the log is dead once any write fails
	closed  bool
	stats   Stats

	ioMu       sync.Mutex
	active     fault.File
	activeName string
	activeSize int
	activeLast uint64 // last LSN written to the active segment
	closedSegs []closedSeg
}

// Open opens (or creates) the log in dir, replaying every surviving
// record above Options.FloorLSN through fn in LSN order (records at or
// below the floor are covered by the caller's checkpoint and skipped).
// A torn or corrupt tail on the final segment is truncated off
// (counted in Stats.TornRepairs); corruption anywhere else fails with
// an error wrapping codec.ErrCorrupt.
func Open(dir string, opts Options, fn func(lsn uint64, op Op)) (*Log, error) {
	if opts.FS == nil {
		opts.FS = fault.Disk
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, lastLSN: opts.FloorLSN}
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	names, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, name := range names {
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segExt) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)

	prevLast := uint64(0)
	for i, name := range segs {
		path := filepath.Join(dir, name)
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		validLen, first, last, scanErr := ScanSegment(data, func(lsn uint64, op Op) error {
			if lsn > opts.FloorLSN {
				fn(lsn, op)
				l.stats.Replayed++
			}
			return nil
		})
		if scanErr != nil {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: segment %s (not the last — no crash leaves a torn middle): %w", name, scanErr)
			}
			// Torn tail on the final segment: a crash artifact, not
			// corruption. Truncate the damage off and keep appending.
			if err := l.fs.Truncate(path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: repairing %s: %w", name, err)
			}
			data = data[:validLen]
			l.stats.TornRepairs++
		}
		if first != 0 && prevLast != 0 && first != prevLast+1 {
			return nil, fmt.Errorf("%w: wal: segment %s starts at LSN %d, want %d", codec.ErrCorrupt, name, first, prevLast+1)
		}
		if last != 0 {
			prevLast = last
		}
		if i == len(segs)-1 {
			l.activeName = path
			l.activeSize = len(data)
		} else {
			l.closedSegs = append(l.closedSegs, closedSeg{name: path, maxLSN: last})
		}
	}
	if prevLast > l.lastLSN {
		l.lastLSN = prevLast
	}
	l.written, l.durable = l.lastLSN, l.lastLSN
	// Seed the active segment's max-LSN tracker. Using lastLSN (which
	// includes the floor) rather than the segment's scanned content is
	// safe: the floor is durable elsewhere, so a Retire watermark always
	// covers it.
	l.activeLast = l.lastLSN

	if l.activeName == "" {
		// Fresh log: create the first segment and make its directory
		// entry durable before anything is acknowledged out of it.
		l.activeName = filepath.Join(dir, segName(l.lastLSN+1))
		f, err := l.fs.Create(l.activeName)
		if err != nil {
			return nil, err
		}
		l.active = f
		if err := l.fs.SyncDir(dir); err != nil {
			return nil, err
		}
	} else {
		f, err := l.fs.Append(l.activeName)
		if err != nil {
			return nil, err
		}
		l.active = f
	}
	return l, nil
}

// ScanSegment parses one segment image, invoking fn for every
// operation of every valid record in order. It stops at the first
// damaged frame and returns the byte length of the valid prefix, the
// first and last LSN seen (zero when none), and the error that stopped
// the scan (nil for a cleanly exhausted segment). Records must carry
// contiguous LSNs; a checksum-valid frame that breaks the sequence is
// reported as corruption, so replay can never invent history.
func ScanSegment(data []byte, fn func(lsn uint64, op Op) error) (validLen int, first, last uint64, err error) {
	off := 0
	for off < len(data) {
		rd := bytes.NewReader(data[off:])
		payload, ferr := codec.ReadFrame(rd, codec.KindWALRecord)
		if ferr != nil {
			return off, first, last, ferr
		}
		consumed := (len(data) - off) - rd.Len()
		d := codec.NewDec(payload)
		firstLSN := d.U64()
		count := d.U32()
		if d.Err() == nil && (count == 0 || uint64(count) > uint64(d.Remaining())/opBytes) {
			return off, first, last, d.Corruptf("wal: record claims %d ops in %d payload bytes", count, d.Remaining())
		}
		if d.Err() == nil && last != 0 && firstLSN != last+1 {
			return off, first, last, d.Corruptf("wal: record starts at LSN %d, want %d", firstLSN, last+1)
		}
		ops := make([]Op, count)
		for i := range ops {
			ops[i] = Op{Key: d.U64(), Value: d.U64(), Tombstone: d.Bool()}
		}
		if err := d.Finish(); err != nil {
			return off, first, last, err
		}
		for i, op := range ops {
			if err := fn(firstLSN+uint64(i), op); err != nil {
				return off, first, last, err
			}
		}
		if first == 0 {
			first = firstLSN
		}
		last = firstLSN + uint64(count) - 1
		off += consumed
	}
	return off, first, last, nil
}

// encodeRecord frames ops as one record starting at firstLSN.
func encodeRecord(firstLSN uint64, ops []Op) []byte {
	var e codec.Enc
	e.U64(firstLSN)
	e.U32(uint32(len(ops)))
	for _, op := range ops {
		e.U64(op.Key)
		e.U64(op.Value)
		e.Bool(op.Tombstone)
	}
	var buf bytes.Buffer
	if _, err := codec.WriteFrame(&buf, codec.KindWALRecord, e.Bytes()); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}

// Enqueue assigns the next LSNs to ops and stages their record. It
// performs no I/O in ModeGroup/ModeBuffered — callers may hold their
// own locks — and returns the batch's last LSN, the Sync target that
// acknowledges it. In ModeAlways it writes and fsyncs inline, so the
// acknowledgement is implicit in a nil return.
func (l *Log) Enqueue(ops []Op) (uint64, error) {
	if len(ops) == 0 {
		return l.LastLSN(), nil
	}
	if l.opts.Mode == ModeAlways {
		return l.appendAlways(ops)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.deadLocked(); err != nil {
		return 0, err
	}
	first := l.lastLSN + 1
	frame := encodeRecord(first, ops)
	l.lastLSN = first + uint64(len(ops)) - 1
	l.pending = append(l.pending, pendingFrame{data: frame, lastLSN: l.lastLSN})
	l.stats.Records++
	l.stats.Ops += uint64(len(ops))
	return l.lastLSN, nil
}

// appendAlways is the fsync-per-op path: one serialized write+fsync
// per record, no batching — the ablation's naive baseline.
func (l *Log) appendAlways(ops []Op) (uint64, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if err := l.deadLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	first := l.lastLSN + 1
	frame := encodeRecord(first, ops)
	l.lastLSN = first + uint64(len(ops)) - 1
	target := l.lastLSN
	l.stats.Records++
	l.stats.Ops += uint64(len(ops))
	l.mu.Unlock()

	err := l.writeFrames([]pendingFrame{{data: frame, lastLSN: target}}, true)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return 0, err
	}
	l.written, l.durable = target, target
	return target, nil
}

// Sync is the acknowledgement barrier: it returns once every operation
// up to lsn is durable (ModeGroup/ModeAlways) or handed to the OS
// (ModeBuffered). Concurrent Sync calls share flushes: whichever
// caller wins the I/O lock writes and fsyncs the whole pending queue,
// and everyone whose LSN that covered returns without touching disk.
func (l *Log) Sync(lsn uint64) error {
	for {
		l.mu.Lock()
		if err := l.deadLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		if l.ackedLocked() >= lsn {
			l.mu.Unlock()
			return nil
		}
		l.mu.Unlock()

		l.ioMu.Lock()
		l.mu.Lock()
		if err := l.deadLocked(); err != nil {
			l.mu.Unlock()
			l.ioMu.Unlock()
			return err
		}
		if l.ackedLocked() >= lsn {
			l.mu.Unlock()
			l.ioMu.Unlock()
			return nil
		}
		frames := l.pending
		l.pending = nil
		l.mu.Unlock()

		doSync := l.opts.Mode != ModeBuffered
		err := l.writeFrames(frames, doSync)

		l.mu.Lock()
		if err != nil {
			if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
			l.ioMu.Unlock()
			return err
		}
		if n := len(frames); n > 0 {
			l.written = frames[n-1].lastLSN
			if doSync {
				l.durable = l.written
			}
		}
		l.mu.Unlock()
		l.ioMu.Unlock()
	}
}

// Append stages ops and waits for their acknowledgement: Enqueue
// followed by Sync.
func (l *Log) Append(ops []Op) (uint64, error) {
	lsn, err := l.Enqueue(ops)
	if err != nil {
		return 0, err
	}
	if l.opts.Mode == ModeAlways {
		return lsn, nil // already durable
	}
	return lsn, l.Sync(lsn)
}

// writeFrames writes frames to the active segment in order, rotating
// at the size cap. Callers hold ioMu. Rotation is sync-before-advance:
// the outgoing segment is fsynced before the new one is created, which
// is the invariant that confines torn tails to the final segment.
func (l *Log) writeFrames(frames []pendingFrame, doSync bool) error {
	for _, fr := range frames {
		if l.activeSize > 0 && l.activeSize+len(fr.data) > l.opts.SegmentBytes {
			if err := l.rotate(); err != nil {
				return err
			}
		}
		if _, err := l.active.Write(fr.data); err != nil {
			return err
		}
		l.activeSize += len(fr.data)
		l.activeLast = fr.lastLSN
		l.mu.Lock()
		l.stats.BytesLogged += uint64(len(fr.data))
		l.mu.Unlock()
	}
	if doSync && len(frames) > 0 {
		if err := l.active.Sync(); err != nil {
			return err
		}
		l.mu.Lock()
		l.stats.Syncs++
		l.mu.Unlock()
	}
	return nil
}

// rotate finalizes the active segment and opens the next one. Callers
// hold ioMu. The outgoing segment's max LSN is the last LSN actually
// written into it (the record triggering rotation lands entirely in
// the new segment), so Retire can drop it the moment a checkpoint
// covers its own contents; records carry contiguous LSNs, so the new
// segment's first record starts at activeLast+1, which names it.
func (l *Log) rotate() error {
	if err := l.active.Sync(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.mu.Lock()
	l.stats.Syncs++
	l.stats.Rotations++
	l.mu.Unlock()
	l.closedSegs = append(l.closedSegs, closedSeg{name: l.activeName, maxLSN: l.activeLast})
	name := filepath.Join(l.dir, segName(l.activeLast+1))
	f, err := l.fs.Create(name)
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	l.active = f
	l.activeName = name
	l.activeSize = 0
	return nil
}

// Retire deletes closed segments whose every record is at or below
// watermark — they are fully covered by a durable checkpoint. The
// active segment always survives; covered records still inside it are
// skipped by replay instead.
func (l *Log) Retire(watermark uint64) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if err := l.deadLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	kept := l.closedSegs[:0]
	removed := 0
	var firstErr error
	for i, seg := range l.closedSegs {
		if firstErr == nil && seg.maxLSN <= watermark {
			if err := l.fs.Remove(seg.name); err != nil {
				firstErr = err
				kept = append(kept, l.closedSegs[i:]...)
				break
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.closedSegs = kept
	if removed > 0 && firstErr == nil {
		firstErr = l.fs.SyncDir(l.dir)
	}
	l.mu.Lock()
	l.stats.Retired += uint64(removed)
	if firstErr != nil && l.err == nil {
		l.err = firstErr
	}
	l.mu.Unlock()
	return firstErr
}

// deadLocked reports the sticky failure state. Callers hold mu.
func (l *Log) deadLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// ackedLocked is the LSN through which appends count as acknowledged
// under the configured mode. Callers hold mu.
func (l *Log) ackedLocked() uint64 {
	if l.opts.Mode == ModeBuffered {
		return l.written
	}
	return l.durable
}

// LastLSN returns the last assigned LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// DurableLSN returns the last fsynced LSN.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Segments returns the number of live segment files (closed + active).
func (l *Log) Segments() int {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return len(l.closedSegs) + 1
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes and fsyncs everything written — pending frames and,
// in ModeBuffered, bytes earlier Syncs handed to the OS without an
// fsync — then closes the active segment: a clean Close leaves no
// acknowledged tail volatile in any mode. The log is unusable
// afterwards.
func (l *Log) Close() error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.err
	frames := l.pending
	l.pending = nil
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := l.writeFrames(frames, true); err != nil {
		return err
	}
	l.mu.Lock()
	if n := len(frames); n > 0 {
		l.written = frames[n-1].lastLSN
		l.durable = l.written
	}
	lag := l.written > l.durable
	l.mu.Unlock()
	if lag {
		// ModeBuffered with an empty pending queue: everything reached
		// the OS but the tail was never fsynced.
		if err := l.active.Sync(); err != nil {
			return err
		}
		l.mu.Lock()
		l.durable = l.written
		l.stats.Syncs++
		l.mu.Unlock()
	}
	return l.active.Close()
}
