package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/fault"
)

// collect replays a log directory into an ordered op list.
func collect(t *testing.T, dir string, opts Options) ([]Op, []uint64, *Log) {
	t.Helper()
	var ops []Op
	var lsns []uint64
	l, err := Open(dir, opts, func(lsn uint64, op Op) {
		ops = append(ops, op)
		lsns = append(lsns, lsn)
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return ops, lsns, l
}

func put(k, v uint64) Op { return Op{Key: k, Value: v} }
func del(k uint64) Op    { return Op{Key: k, Tombstone: true} }
func opsEq(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoundTrip: append batches in every mode, reopen, replay exactly.
func TestRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeGroup, ModeAlways, ModeBuffered} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Mode: mode}
			_, _, l := collect(t, dir, opts)
			want := []Op{put(1, 10), put(2, 20), del(1), put(3, 30)}
			if _, err := l.Append(want[:2]); err != nil {
				t.Fatalf("Append: %v", err)
			}
			lsn, err := l.Append(want[2:])
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			if lsn != 4 {
				t.Fatalf("last LSN = %d, want 4", lsn)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			got, lsns, l2 := collect(t, dir, opts)
			defer l2.Close()
			if !opsEq(got, want) {
				t.Fatalf("replay = %+v, want %+v", got, want)
			}
			for i, lsn := range lsns {
				if lsn != uint64(i+1) {
					t.Fatalf("lsn[%d] = %d", i, lsn)
				}
			}
			if next, err := l2.Enqueue([]Op{put(9, 9)}); err != nil || next != 5 {
				t.Fatalf("post-replay Enqueue = %d, %v; want 5", next, err)
			}
		})
	}
}

// TestRotation: a tiny segment cap produces multiple segments that all
// replay in order; rotation syncs are counted.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 128}
	_, _, l := collect(t, dir, opts)
	var want []Op
	for i := uint64(1); i <= 40; i++ {
		op := put(i, i*i)
		want = append(want, op)
		if _, err := l.Append([]Op{op}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations at SegmentBytes=128: %+v", st)
	}
	if l.Segments() != int(st.Rotations)+1 {
		t.Fatalf("Segments = %d, rotations = %d", l.Segments(), st.Rotations)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, l2 := collect(t, dir, opts)
	defer l2.Close()
	if !opsEq(got, want) {
		t.Fatalf("replay mismatch: %d ops, want %d", len(got), len(want))
	}
}

// TestRetire: segments fully covered by the watermark are deleted and
// the remainder still replays.
func TestRetire(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 128}
	_, _, l := collect(t, dir, opts)
	var want []Op
	for i := uint64(1); i <= 40; i++ {
		want = append(want, put(i, i))
		if _, err := l.Append(want[len(want)-1:]); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	watermark := uint64(20)
	if err := l.Retire(watermark); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if st := l.Stats(); st.Retired == 0 {
		t.Fatalf("retired nothing (segments before=%d)", before)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, lsns, l2 := collect(t, dir, opts)
	defer l2.Close()
	if len(got) == 0 || len(got) >= len(want) {
		t.Fatalf("replayed %d of %d ops after retire", len(got), len(want))
	}
	// Whatever survives must be a contiguous suffix ending at LSN 40,
	// and nothing above the watermark may be missing.
	if lsns[0] > watermark+1 {
		t.Fatalf("first surviving LSN %d lost ops above watermark %d", lsns[0], watermark)
	}
	if lsns[len(lsns)-1] != 40 {
		t.Fatalf("last surviving LSN = %d, want 40", lsns[len(lsns)-1])
	}
	for i, lsn := range lsns {
		if op := want[lsn-1]; got[i] != op {
			t.Fatalf("lsn %d replayed %+v, want %+v", lsn, got[i], op)
		}
	}
}

// TestFloorLSN: the floor keeps retired LSNs from being reassigned even
// when no segment survives to prove they existed.
func TestFloorLSN(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{FloorLSN: 100})
	lsn, err := l.Append([]Op{put(1, 1)})
	if err != nil || lsn != 101 {
		t.Fatalf("Append above floor = %d, %v; want 101", lsn, err)
	}
	l.Close()
}

// TestTornTailRepair: crash mid-write leaves a torn final record; Open
// truncates it and replays exactly the durable prefix.
func TestTornTailRepair(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		fs := fault.NewCrashFS(seed)
		opts := Options{FS: fs, SegmentBytes: 1 << 20}
		l, err := Open("w", opts, func(uint64, Op) {})
		if err != nil {
			t.Fatalf("seed %d: Open: %v", seed, err)
		}
		if _, err := l.Append([]Op{put(1, 1), put(2, 2)}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The next record crashes mid-write: a torn suffix of its frame
		// may land on disk, but it was never acknowledged.
		fs.CrashAfter(1)
		if _, err := l.Append([]Op{put(3, 3)}); !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("seed %d: expected crash, got %v", seed, err)
		}

		rec := fs.Recover()
		var got []Op
		l2, err := Open("w", Options{FS: rec}, func(_ uint64, op Op) { got = append(got, op) })
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if !opsEq(got, []Op{put(1, 1), put(2, 2)}) {
			t.Fatalf("seed %d: replay = %+v", seed, got)
		}
		// The log must keep working after the repair.
		if lsn, err := l2.Append([]Op{put(4, 4)}); err != nil || lsn != 3 {
			t.Fatalf("seed %d: post-repair Append = %d, %v", seed, lsn, err)
		}
		l2.Close()
	}
}

// TestTornMiddleFatal: damage in a non-final segment is corruption, not
// a repairable crash artifact.
func TestTornMiddleFatal(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 128}
	_, _, l := collect(t, dir, opts)
	for i := uint64(1); i <= 40; i++ {
		if _, err := l.Append([]Op{put(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want ≥3 segments, got %d", l.Segments())
	}
	l.Close()
	names, err := fault.Disk.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST segment.
	first := dir + "/" + names[0]
	data, err := fault.Disk.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	h, err := fault.Disk.Create(first)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(data)
	h.Close()
	if _, err := Open(dir, opts, func(uint64, Op) {}); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("corrupt middle segment: err = %v, want ErrCorrupt", err)
	}
}

// TestLSNGapRejected: a checksum-valid record that skips LSNs is
// corruption — replay can never invent or reorder history.
func TestLSNGapRejected(t *testing.T) {
	good := encodeRecord(1, []Op{put(1, 1)})
	gap := encodeRecord(3, []Op{put(3, 3)}) // should be 2
	data := append(append([]byte{}, good...), gap...)
	validLen, _, last, err := ScanSegment(data, func(uint64, Op) error { return nil })
	if !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("LSN gap: err = %v, want ErrCorrupt", err)
	}
	if validLen != len(good) || last != 1 {
		t.Fatalf("validLen = %d (want %d), last = %d", validLen, len(good), last)
	}
}

// TestScanSegmentGarbageSuffix: arbitrary trailing bytes never panic
// and never produce extra records.
func TestScanSegmentGarbageSuffix(t *testing.T) {
	want := []Op{put(1, 10), del(2), put(3, 30)}
	seg := append(encodeRecord(1, want[:2]), encodeRecord(3, want[2:])...)
	suffixes := [][]byte{
		{},
		{0x00},
		bytes.Repeat([]byte{0xFF}, 64),
		seg[:11],                          // torn copy of a real frame
		encodeRecord(99, []Op{put(9, 9)}), // valid frame, wrong LSN
	}
	for i, suf := range suffixes {
		data := append(append([]byte{}, seg...), suf...)
		var got []Op
		validLen, first, last, err := ScanSegment(data, func(_ uint64, op Op) error {
			got = append(got, op)
			return nil
		})
		if !opsEq(got, want) {
			t.Fatalf("suffix %d: replayed %+v, want %+v", i, got, want)
		}
		if validLen != len(seg) {
			t.Fatalf("suffix %d: validLen = %d, want %d", i, validLen, len(seg))
		}
		if first != 1 || last != 3 {
			t.Fatalf("suffix %d: first,last = %d,%d", i, first, last)
		}
		if len(suf) > 0 && err == nil {
			t.Fatalf("suffix %d: trailing garbage scanned cleanly", i)
		}
	}
}

// TestGroupCommitConcurrent: concurrent writers all get durable acks,
// replay holds every acknowledged op, and fsyncs are shared.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Mode: ModeGroup}
	_, _, l := collect(t, dir, opts)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := uint64(w*perWriter + i + 1)
				if _, err := l.Append([]Op{put(key, key)}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Ops != writers*perWriter {
		t.Fatalf("Ops = %d", st.Ops)
	}
	if st.Syncs >= st.Ops {
		t.Fatalf("no batching: %d syncs for %d ops", st.Syncs, st.Ops)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, l2 := collect(t, dir, opts)
	defer l2.Close()
	seen := map[uint64]bool{}
	for _, op := range got {
		seen[op.Key] = true
	}
	for k := uint64(1); k <= writers*perWriter; k++ {
		if !seen[k] {
			t.Fatalf("acknowledged key %d missing from replay", k)
		}
	}
}

// TestBufferedAcksWithoutFsync: ModeBuffered acknowledges at write,
// not fsync, and a crash may lose the buffered tail — but replay is
// still a clean prefix.
func TestBufferedAcksWithoutFsync(t *testing.T) {
	fs := fault.NewCrashFS(17)
	l, err := Open("w", Options{FS: fs, Mode: ModeBuffered}, func(uint64, Op) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if _, err := l.Append([]Op{put(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("buffered mode fsynced %d times", st.Syncs)
	}
	if l.DurableLSN() != 0 {
		t.Fatalf("DurableLSN = %d in buffered mode", l.DurableLSN())
	}
	fs.CrashAfter(1)
	l.Append([]Op{put(99, 99)})
	var got []Op
	l2, err := Open("w", Options{FS: fs.Recover()}, func(_ uint64, op Op) { got = append(got, op) })
	if err != nil {
		t.Fatalf("reopen after buffered crash: %v", err)
	}
	defer l2.Close()
	for i, op := range got {
		if want := put(uint64(i+1), uint64(i+1)); op != want {
			t.Fatalf("replay[%d] = %+v, want %+v (prefix consistency)", i, op, want)
		}
	}
}

// TestStickyError: after an I/O failure every subsequent call fails.
func TestStickyError(t *testing.T) {
	fs := fault.NewCrashFS(23)
	l, err := Open("w", Options{FS: fs}, func(uint64, Op) {})
	if err != nil {
		t.Fatal(err)
	}
	fs.CrashAfter(1)
	if _, err := l.Append([]Op{put(1, 1)}); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("crashing append: %v", err)
	}
	if _, err := l.Append([]Op{put(2, 2)}); err == nil {
		t.Fatal("append after failure succeeded")
	}
	if err := l.Sync(1); err == nil {
		t.Fatal("sync after failure succeeded")
	}
}

// TestClosedLog: operations on a closed log fail with ErrClosed.
func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Enqueue([]Op{put(1, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestCloseFlushesPending: enqueued-but-unsynced records survive a
// clean Close.
func TestCloseFlushesPending(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{})
	if _, err := l.Enqueue([]Op{put(1, 1), put(2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if !opsEq(got, []Op{put(1, 1), put(2, 2)}) {
		t.Fatalf("pending records lost on Close: %+v", got)
	}
}

// TestCloseBufferedFsyncsTail: in ModeBuffered earlier Syncs hand
// bytes to the OS without fsync; a clean Close must still fsync the
// tail, so even a post-Close machine crash loses nothing that was
// written. (Regression: Close skipped the fsync when the pending
// queue was empty.)
func TestCloseBufferedFsyncsTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Mode: ModeBuffered}
	_, _, l := collect(t, dir, opts)
	for i := uint64(1); i <= 5; i++ {
		if _, err := l.Append([]Op{put(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Append drained the pending queue (doSync=false): nothing pending,
	// nothing durable.
	if d := l.DurableLSN(); d != 0 {
		t.Fatalf("DurableLSN before Close = %d", d)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if d := l.DurableLSN(); d != 5 {
		t.Fatalf("DurableLSN after Close = %d, want 5", d)
	}
	if st := l.Stats(); st.Syncs == 0 {
		t.Fatal("clean Close issued no fsync in buffered mode")
	}
}

// TestRotationMaxLSNTight: the record that triggers a rotation lands
// entirely in the new segment, so the outgoing segment's max LSN is
// the last LSN actually written into it — and Retire at exactly that
// watermark drops it. (Regression: rotation recorded the triggering
// batch's last LSN minus one, overestimating by the batch size and
// delaying retirement.)
func TestRotationMaxLSNTight(t *testing.T) {
	dir := t.TempDir()
	// Each 5-op batch frame overflows the cap on its own, so every
	// batch after the first rotates: segment 1 holds exactly LSNs 1–5.
	opts := Options{SegmentBytes: 150}
	_, _, l := collect(t, dir, opts)
	for b := uint64(0); b < 3; b++ {
		ops := make([]Op, 5)
		for i := range ops {
			k := b*5 + uint64(i) + 1
			ops[i] = put(k, k)
		}
		if _, err := l.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	defer l.Close()
	if st := l.Stats(); st.Rotations != 2 {
		t.Fatalf("rotations = %d, want 2 (frame size vs cap drifted?)", st.Rotations)
	}
	// Watermark 5 covers everything in the first segment and nothing in
	// the second; exactly one segment must retire.
	if err := l.Retire(5); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Retired != 1 {
		t.Fatalf("Retired = %d at watermark 5, want 1", st.Retired)
	}
	// Watermark 9 is mid-second-segment: nothing more retires.
	if err := l.Retire(9); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Retired != 1 {
		t.Fatalf("Retired = %d at watermark 9, want 1", st.Retired)
	}
	if err := l.Retire(10); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Retired != 2 {
		t.Fatalf("Retired = %d at watermark 10, want 2", st.Retired)
	}
}
