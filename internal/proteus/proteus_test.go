package proteus

import (
	"math/rand"
	"sort"
	"testing"

	"beyondbloom/internal/workload"
)

func TestRangeNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(5000, 1)
	sample := workload.UniformRanges(500, 64, ^uint64(0)-64, 3)
	f := New(keys, sample, 16)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		k := keys[rng.Intn(len(keys))]
		span := rng.Uint64()%1000 + 1
		lo := k - rng.Uint64()%span
		if lo > k {
			lo = 0
		}
		hi := lo + span
		if hi < k {
			hi = k
		}
		if !f.MayContainRange(lo, hi) {
			t.Fatalf("range [%d,%d] contains %d but reported empty", lo, hi, k)
		}
	}
}

func TestSelfDesignPicksLowFPR(t *testing.T) {
	keys := workload.Keys(10000, 5)
	sample := workload.UniformRanges(2000, 256, ^uint64(0)-256, 7)
	best, evals := SelfDesign(keys, sample, 16)
	if len(evals) < 5 {
		t.Fatalf("too few designs evaluated: %d", len(evals))
	}
	for _, e := range evals {
		if e.FPR < best.FPR {
			t.Fatalf("SelfDesign missed better design %+v vs %+v", e, best)
		}
	}
}

func TestDesignAdaptsToWorkload(t *testing.T) {
	// Short point-ish queries vs long-range queries should not
	// necessarily pick the same design; at minimum both picks must be
	// sane (non-degenerate FPR on their own sample).
	keys := workload.Keys(10000, 9)
	shortQ := workload.UniformRanges(2000, 2, ^uint64(0)-2, 11)
	longQ := workload.UniformRanges(2000, 1<<16, ^uint64(0)-1<<17, 13)
	bestShort, _ := SelfDesign(keys, shortQ, 16)
	bestLong, _ := SelfDesign(keys, longQ, 16)
	if bestShort.FPR > 0.2 {
		t.Errorf("short-query design FPR %g too high", bestShort.FPR)
	}
	if bestLong.FPR > 0.6 {
		t.Errorf("long-query design FPR %g too high", bestLong.FPR)
	}
}

func TestPointQueries(t *testing.T) {
	keys := workload.Keys(5000, 15)
	sample := workload.UniformRanges(500, 2, ^uint64(0)-2, 17)
	f := New(keys, sample, 16)
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative %d", k)
		}
	}
}

func TestBuildExplicitDesigns(t *testing.T) {
	keys := workload.Keys(2000, 19)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range []struct{ l1, l2 uint }{{0, 32}, {16, 0}, {24, 48}, {0, 64}} {
		f := Build(keys, d.l1, d.l2, 16)
		for _, k := range keys[:200] {
			if !f.Contains(k) {
				t.Fatalf("design (%d,%d): false negative", d.l1, d.l2)
			}
		}
	}
}

func TestEmptyFilter(t *testing.T) {
	f := Build(nil, 16, 32, 16)
	if f.MayContainRange(1, 100) {
		t.Fatal("empty filter claims content")
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	keys := workload.Keys(100000, 21)
	f := Build(keys, 24, 40, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) * 0x9E3779B97F4A7C15
		f.MayContainRange(lo, lo+255)
	}
}
