// Package proteus implements a simplified Proteus (Knorr et al., §2.5 of
// the tutorial): a self-designing range filter combining a truncated trie
// over l1-bit key prefixes with a Bloom filter over l2-bit key prefixes
// (l2 > l1). The pair (l1, l2) is chosen by evaluating candidate designs
// against a sample of the query workload under a memory budget — the
// sample dependence is exactly the robustness caveat the tutorial notes
// (a workload shift requires re-tuning).
//
// Simplifications vs the paper (documented in DESIGN.md): l1 is byte
// granular (the trie is the package surf LOUDS-sparse trie over truncated
// keys), and the cost model is the measured false-positive rate on the
// sample rather than the closed-form CPFPR model.
package proteus

import (
	"sort"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/core"
	"beyondbloom/internal/surf"
	"beyondbloom/internal/workload"
)

// maxProbes caps per-query Bloom probes; prefix ranges wider than this
// rely on the trie alone.
const maxProbes = 64

// Filter is an immutable Proteus filter.
type Filter struct {
	trie   *surf.Filter // over keys >> (64-l1), compared at l1 bits
	prefix *bloom.Filter
	l1     uint // trie prefix bits (multiple of 8; 0 disables the trie)
	l2     uint // Bloom prefix bits (l1 < l2 <= 64; 0 disables the Bloom)
	n      int
}

// Design is a candidate (l1, l2) pair with its sampled FPR.
type Design struct {
	L1, L2 uint
	FPR    float64
}

// New builds a Proteus filter over keys, choosing (l1, l2) by evaluating
// candidates on sampleQueries under the bitsPerKey memory budget.
func New(keys []uint64, sampleQueries []workload.RangeQuery, bitsPerKey float64) *Filter {
	best, _ := SelfDesign(keys, sampleQueries, bitsPerKey)
	return Build(keys, best.L1, best.L2, bitsPerKey)
}

// SelfDesign evaluates candidate designs and returns the best plus the
// full evaluation (exposed for the experiment harness).
func SelfDesign(keys []uint64, sampleQueries []workload.RangeQuery, bitsPerKey float64) (Design, []Design) {
	var evals []Design
	best := Design{FPR: 2}
	for _, l1 := range []uint{0, 16, 24, 32, 40} {
		for _, l2 := range []uint{0, 24, 32, 40, 48, 64} {
			if l2 != 0 && l2 <= l1 {
				continue
			}
			if l1 == 0 && l2 == 0 {
				continue
			}
			f := Build(keys, l1, l2, bitsPerKey)
			fpr := sampleFPR(f, keys, sampleQueries)
			evals = append(evals, Design{L1: l1, L2: l2, FPR: fpr})
			if fpr < best.FPR {
				best = Design{L1: l1, L2: l2, FPR: fpr}
			}
		}
	}
	return best, evals
}

// sampleFPR measures the filter's positive rate on the empty sample
// queries (queries overlapping keys are skipped — they must and do
// return true).
func sampleFPR(f *Filter, keys []uint64, qs []workload.RangeQuery) float64 {
	if len(qs) == 0 {
		return 0
	}
	// Build a small sorted index for exact emptiness checks.
	idx := newSortedIndex(keys)
	empties, fps := 0, 0
	for _, q := range qs {
		if idx.anyIn(q.Lo, q.Hi) {
			continue
		}
		empties++
		if f.MayContainRange(q.Lo, q.Hi) {
			fps++
		}
	}
	if empties == 0 {
		return 0
	}
	return float64(fps) / float64(empties)
}

// Build constructs a Proteus with explicit design parameters, splitting
// the memory budget between trie and Bloom according to which are
// enabled.
func Build(keys []uint64, l1, l2 uint, bitsPerKey float64) *Filter {
	f := &Filter{l1: l1, l2: l2, n: len(keys)}
	if l1 > 0 {
		prefixes := make([]uint64, len(keys))
		for i, k := range keys {
			// Left-align the l1-bit prefix so surf's byte trie sees it.
			prefixes[i] = k >> (64 - l1) << (64 - l1)
		}
		f.trie = surf.New(prefixes, surf.SuffixNone, 0)
	}
	if l2 > 0 {
		bloomBits := bitsPerKey
		if l1 > 0 {
			bloomBits = bitsPerKey / 2
		}
		f.prefix = bloom.NewBitsSeeded(max(len(keys), 1), bloomBits, 0x9307E05)
		for _, k := range keys {
			f.prefix.Insert(k >> (64 - l2))
		}
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func newSortedIndex(keys []uint64) *sortedIndex {
	s := &sortedIndex{keys: make([]uint64, len(keys))}
	copy(s.keys, keys)
	sortU64(s.keys)
	return s
}

type sortedIndex struct{ keys []uint64 }

func (s *sortedIndex) anyIn(lo, hi uint64) bool {
	i, j := 0, len(s.keys)
	for i < j {
		m := (i + j) / 2
		if s.keys[m] < lo {
			i = m + 1
		} else {
			j = m
		}
	}
	return i < len(s.keys) && s.keys[i] <= hi
}

func sortU64(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// MayContainRange intersects the verdicts of both components.
func (f *Filter) MayContainRange(lo, hi uint64) bool {
	if lo > hi || f.n == 0 {
		return false
	}
	if f.trie != nil {
		// The trie stores left-aligned l1-bit prefixes; querying the raw
		// range works because prefix truncation only widens intervals.
		if !f.trie.MayContainRange(lo, hi) {
			return false
		}
	}
	if f.prefix != nil {
		shift := 64 - f.l2
		loP, hiP := lo>>shift, hi>>shift
		if hiP-loP+1 > maxProbes || hiP < loP {
			return true // too many probes; rely on the trie's answer
		}
		for p := loP; ; p++ {
			if f.prefix.Contains(p) {
				return true
			}
			if p == hiP {
				break
			}
		}
		return false
	}
	return true
}

// Contains is a point query.
func (f *Filter) Contains(key uint64) bool { return f.MayContainRange(key, key) }

// Design returns the chosen (l1, l2).
func (f *Filter) Design() (uint, uint) { return f.l1, f.l2 }

// SizeBits returns the combined footprint.
func (f *Filter) SizeBits() int {
	bits := 0
	if f.trie != nil {
		bits += f.trie.SizeBits()
	}
	if f.prefix != nil {
		bits += f.prefix.SizeBits()
	}
	return bits
}

var _ core.RangeFilter = (*Filter)(nil)
