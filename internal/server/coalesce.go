package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrShutdown is returned to requests that arrive after (or are in
// flight during a failed flush of) Close.
var ErrShutdown = errors.New("server: shutting down")

// FlushFunc answers one sealed window: it must fill found[i] (and, for
// KV backends, values[i]) for every keys[i]. It is called outside the
// coalescer lock, possibly from a request goroutine (capacity seal),
// the deadline goroutine, or Close. values and found are sized to
// keys. A non-nil error fails every request in the window.
type FlushFunc func(keys []uint64, values []uint64, found []bool) error

// SinkFunc receives the answers of asynchronously enqueued keys (the
// load generator's open-loop path). It is called once per async key,
// in window order, from whichever goroutine ran the flush.
type SinkFunc func(tag uint64, value uint64, found bool, err error)

// CoalescerStats is a snapshot of the coalescer's counters.
type CoalescerStats struct {
	Windows         int64 // sealed windows flushed
	Keys            int64 // keys across all flushed windows
	CapacityFlushes int64 // windows sealed by reaching MaxBatch
	DeadlineFlushes int64 // windows sealed by the window deadline
	CloseFlushes    int64 // windows sealed by Close
	EmptyDeadlines  int64 // deadline fires that found nothing to flush
	Rejected        int64 // requests refused after Close
}

// cwindow is one coalescing window: the shared batch the current
// burst of point requests lands in. Sync waiters block on done and
// read their slot afterwards; async slots are delivered to the sink by
// the flusher. A window that ever had a sync waiter is left to the GC
// (a waiter may still be reading its slot after done closes); pure
// async windows are pooled, so the open-loop hot path stays
// allocation-free at steady state.
type cwindow struct {
	keys   []uint64
	vals   []uint64
	found  []bool
	tags   []uint64
	async  []bool
	opened time.Time
	done   chan struct{}
	err    error
	sync   bool // a sync waiter joined; do not pool
}

// Coalescer batches concurrent point requests into windows answered by
// one FlushFunc call. A window seals when it reaches MaxBatch keys
// (the sealing request flushes it inline) or when it has been open for
// the window duration (a dedicated deadline goroutine flushes it), so
// a lone request waits at most one window deadline and a saturating
// stream pays one flush per MaxBatch keys.
type Coalescer struct {
	maxBatch int
	window   time.Duration
	flush    FlushFunc
	sink     SinkFunc

	mu     sync.Mutex
	cur    *cwindow
	closed bool
	timer  *time.Timer
	quit   chan struct{}
	wg     sync.WaitGroup
	pool   sync.Pool

	windows         atomic.Int64
	keys            atomic.Int64
	capacityFlushes atomic.Int64
	deadlineFlushes atomic.Int64
	closeFlushes    atomic.Int64
	emptyDeadlines  atomic.Int64
	rejected        atomic.Int64
}

// NewCoalescer builds a coalescer over flush. maxBatch <= 1 disables
// batching-by-count (every request seals its own window — useful for
// deterministic tests); window <= 0 selects 200µs. sink may be nil if
// EnqueueAsync is never used.
func NewCoalescer(maxBatch int, window time.Duration, flush FlushFunc, sink SinkFunc) *Coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if window <= 0 {
		window = 200 * time.Microsecond
	}
	c := &Coalescer{
		maxBatch: maxBatch,
		window:   window,
		flush:    flush,
		sink:     sink,
		quit:     make(chan struct{}),
	}
	c.timer = time.NewTimer(time.Hour)
	if !c.timer.Stop() {
		<-c.timer.C
	}
	c.wg.Add(1)
	go c.deadlineLoop()
	return c
}

// getWindow takes a window from the pool (or allocates one) and
// readies it for a fresh batch.
func (c *Coalescer) getWindow() *cwindow {
	w, _ := c.pool.Get().(*cwindow)
	if w == nil {
		w = &cwindow{}
	}
	w.keys = w.keys[:0]
	w.tags = w.tags[:0]
	w.async = w.async[:0]
	w.err = nil
	w.sync = false
	w.opened = time.Now()
	w.done = make(chan struct{})
	return w
}

// openLocked returns the current window, opening one (and arming the
// deadline timer) if none is open. Callers hold mu.
func (c *Coalescer) openLocked() *cwindow {
	if c.cur == nil {
		c.cur = c.getWindow()
		if c.maxBatch > 1 {
			c.timer.Reset(c.window)
		}
	}
	return c.cur
}

// enqueueLocked appends one key and seals the window if it is full.
// It returns the window, the key's slot, and whether the caller must
// run the flush (it sealed the window by filling it).
func (c *Coalescer) enqueueLocked(key, tag uint64, async bool) (w *cwindow, slot int, sealed bool) {
	w = c.openLocked()
	slot = len(w.keys)
	w.keys = append(w.keys, key)
	w.tags = append(w.tags, tag)
	w.async = append(w.async, async)
	if !async {
		w.sync = true
	}
	if len(w.keys) >= c.maxBatch {
		c.cur = nil // detach: requests arriving during the flush start a fresh window
		sealed = true
	}
	return w, slot, sealed
}

// Do submits one point request and blocks until its window is flushed
// or ctx is cancelled. A cancelled request simply abandons its slot:
// the window still probes the key and nobody reads the answer, so
// cancellation can never corrupt the shared batch. After Close, Do
// fails fast with ErrShutdown.
func (c *Coalescer) Do(ctx context.Context, key uint64) (value uint64, found bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.rejected.Add(1)
		return 0, false, ErrShutdown
	}
	w, slot, sealed := c.enqueueLocked(key, 0, false)
	c.mu.Unlock()
	if sealed {
		c.flushWindow(w, &c.capacityFlushes)
	}
	select {
	case <-w.done:
		if w.err != nil {
			return 0, false, w.err
		}
		return w.vals[slot], w.found[slot], nil
	case <-ctx.Done():
		return 0, false, ctx.Err()
	}
}

// EnqueueAsync submits one point request whose answer is delivered to
// the sink (with the given tag) when its window flushes. It never
// blocks beyond the window mutex.
func (c *Coalescer) EnqueueAsync(key, tag uint64) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.rejected.Add(1)
		return ErrShutdown
	}
	w, _, sealed := c.enqueueLocked(key, tag, true)
	c.mu.Unlock()
	if sealed {
		c.flushWindow(w, &c.capacityFlushes)
	}
	return nil
}

// flushWindow answers a sealed window: size the result slots, run the
// backend flush, wake the sync waiters, deliver the async slots, and
// pool the window if no waiter can still be reading it.
func (c *Coalescer) flushWindow(w *cwindow, cause *atomic.Int64) {
	n := len(w.keys)
	if cap(w.vals) < n {
		w.vals = make([]uint64, n)
		w.found = make([]bool, n)
	}
	w.vals = w.vals[:n]
	w.found = w.found[:n]
	for i := range w.vals {
		w.vals[i] = 0
		w.found[i] = false
	}
	w.err = c.flush(w.keys, w.vals, w.found)
	close(w.done)
	c.windows.Add(1)
	c.keys.Add(int64(n))
	cause.Add(1)
	hasAsync := false
	for i := range w.async {
		if w.async[i] {
			hasAsync = true
			c.sink(w.tags[i], w.vals[i], w.found[i], w.err)
		}
	}
	if hasAsync && !w.sync {
		c.pool.Put(w)
	}
}

// deadlineLoop seals windows that age past the deadline without
// filling. A fire can be stale (the window it was armed for already
// sealed at capacity, and a younger window is open): then the open
// window keeps its remaining time and the timer is re-armed. A fire
// with no open window is the "empty flush": counted, otherwise a
// no-op.
func (c *Coalescer) deadlineLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.quit:
			return
		case <-c.timer.C:
			c.mu.Lock()
			w := c.cur
			if w == nil {
				c.emptyDeadlines.Add(1)
				c.mu.Unlock()
				continue
			}
			if rem := c.window - time.Since(w.opened); rem > 0 {
				c.timer.Reset(rem)
				c.mu.Unlock()
				continue
			}
			c.cur = nil
			c.mu.Unlock()
			c.flushWindow(w, &c.deadlineFlushes)
		}
	}
}

// Close seals and flushes the open window — every in-flight waiter
// gets its real answer — then rejects all later requests with
// ErrShutdown. It is idempotent and returns once the deadline
// goroutine has exited, so no flush can run after Close returns.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	w := c.cur
	c.cur = nil
	c.timer.Stop()
	close(c.quit)
	c.mu.Unlock()
	c.wg.Wait() // after this no deadline flush can race the final flush
	if w != nil {
		c.flushWindow(w, &c.closeFlushes)
	}
}

// Stats snapshots the counters.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{
		Windows:         c.windows.Load(),
		Keys:            c.keys.Load(),
		CapacityFlushes: c.capacityFlushes.Load(),
		DeadlineFlushes: c.deadlineFlushes.Load(),
		CloseFlushes:    c.closeFlushes.Load(),
		EmptyDeadlines:  c.emptyDeadlines.Load(),
		Rejected:        c.rejected.Load(),
	}
}
