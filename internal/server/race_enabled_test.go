//go:build race

package server

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool intentionally drops items at random —
// so strict zero-allocation assertions over pooled paths are skipped
// (the plain-build test run still enforces them).
const raceEnabled = true
