package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// refFlush answers windows from a pure function so every test can
// check exact per-key answers: found = key divisible by 3, value =
// key*2. It records the size of every batch it was handed.
type refFlush struct {
	mu      sync.Mutex
	batches []int
	gate    chan struct{} // when non-nil, flush blocks until it closes
	started chan struct{} // signalled when a flush begins
}

func (r *refFlush) fn(keys []uint64, values []uint64, found []bool) error {
	if r.started != nil {
		select {
		case r.started <- struct{}{}:
		default:
		}
	}
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	r.batches = append(r.batches, len(keys))
	r.mu.Unlock()
	for i, k := range keys {
		values[i] = k * 2
		found[i] = k%3 == 0
	}
	return nil
}

func (r *refFlush) batchSizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.batches...)
}

func wantAnswer(t *testing.T, key, value uint64, found bool) {
	t.Helper()
	if value != key*2 || found != (key%3 == 0) {
		t.Fatalf("key %d: got (value=%d, found=%v), want (%d, %v)", key, value, found, key*2, key%3 == 0)
	}
}

// sinkRecorder collects async completions keyed by tag.
type sinkRecorder struct {
	mu   sync.Mutex
	got  map[uint64][3]uint64 // tag -> value, found, err!=nil
	errs map[uint64]error
}

func newSinkRecorder() *sinkRecorder {
	return &sinkRecorder{got: map[uint64][3]uint64{}, errs: map[uint64]error{}}
}

func (s *sinkRecorder) fn(tag uint64, value uint64, found bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := uint64(0)
	if found {
		f = 1
	}
	s.got[tag] = [3]uint64{value, f, 0}
	s.errs[tag] = err
}

func (s *sinkRecorder) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *sinkRecorder) check(t *testing.T, tag, key uint64) {
	t.Helper()
	s.mu.Lock()
	rec, ok := s.got[tag]
	err := s.errs[tag]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("tag %d: no completion delivered", tag)
	}
	if err != nil {
		t.Fatalf("tag %d: unexpected error %v", tag, err)
	}
	wantAnswer(t, key, rec[0], rec[1] == 1)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("condition not reached within %v", d)
}

// pendingKeys reads the open window's fill level (white-box).
func pendingKeys(c *Coalescer) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0
	}
	return len(c.cur.keys)
}

// TestCoalescerWindowEdges drives the coalescing window through its
// edge cases, one subtest per row. Single-key requests are enqueued
// asynchronously where determinism matters (the enqueue itself is
// synchronous; only the answer is deferred), so window fill order is
// exact, not scheduler-dependent.
func TestCoalescerWindowEdges(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"batch exactly at capacity flushes immediately", func(t *testing.T) {
			flush := &refFlush{}
			sink := newSinkRecorder()
			c := NewCoalescer(4, time.Hour, flush.fn, sink.fn)
			defer c.Close()
			for i := uint64(0); i < 3; i++ {
				if err := c.EnqueueAsync(10+i, i); err != nil {
					t.Fatal(err)
				}
			}
			if got := c.Stats().Windows; got != 0 {
				t.Fatalf("window flushed before capacity: %d windows", got)
			}
			// The 4th request seals the window and flushes it inline: its
			// answer returns without any deadline involvement (the window
			// deadline is an hour out).
			value, found, err := c.Do(context.Background(), 13)
			if err != nil {
				t.Fatal(err)
			}
			wantAnswer(t, 13, value, found)
			st := c.Stats()
			if st.Windows != 1 || st.CapacityFlushes != 1 || st.DeadlineFlushes != 0 {
				t.Fatalf("stats = %+v, want exactly one capacity flush", st)
			}
			if st.Keys != 4 {
				t.Fatalf("flushed %d keys, want 4", st.Keys)
			}
			for i := uint64(0); i < 3; i++ {
				sink.check(t, i, 10+i)
			}
		}},
		{"under-capacity window flushes on deadline", func(t *testing.T) {
			flush := &refFlush{}
			sink := newSinkRecorder()
			c := NewCoalescer(1024, 5*time.Millisecond, flush.fn, sink.fn)
			defer c.Close()
			for i := uint64(0); i < 3; i++ {
				if err := c.EnqueueAsync(20+i, i); err != nil {
					t.Fatal(err)
				}
			}
			waitFor(t, 2*time.Second, func() bool { return c.Stats().Windows == 1 })
			st := c.Stats()
			if st.DeadlineFlushes != 1 || st.CapacityFlushes != 0 {
				t.Fatalf("stats = %+v, want exactly one deadline flush", st)
			}
			if sizes := flush.batchSizes(); len(sizes) != 1 || sizes[0] != 3 {
				t.Fatalf("batch sizes = %v, want [3]", sizes)
			}
			for i := uint64(0); i < 3; i++ {
				sink.check(t, i, 20+i)
			}
		}},
		{"deadline firing with no open window is an empty no-op flush", func(t *testing.T) {
			flush := &refFlush{}
			sink := newSinkRecorder()
			c := NewCoalescer(2, 5*time.Millisecond, flush.fn, sink.fn)
			defer c.Close()
			// Fill to capacity instantly: the window seals before its
			// deadline, and the already-armed timer later fires into
			// nothing. That empty fire must not flush, error, or hang.
			c.EnqueueAsync(30, 0)
			c.EnqueueAsync(31, 1)
			waitFor(t, 2*time.Second, func() bool { return c.Stats().EmptyDeadlines >= 1 })
			st := c.Stats()
			if st.Windows != 1 || st.CapacityFlushes != 1 {
				t.Fatalf("stats = %+v, want the one capacity flush only", st)
			}
		}},
		{"request arriving during a flush starts a fresh window", func(t *testing.T) {
			flush := &refFlush{gate: make(chan struct{}), started: make(chan struct{}, 1)}
			sink := newSinkRecorder()
			c := NewCoalescer(2, 30*time.Millisecond, flush.fn, sink.fn)
			defer c.Close()
			c.EnqueueAsync(40, 0)
			go c.EnqueueAsync(41, 1) // seals the window, runs the (gated) flush
			<-flush.started
			// The flush is mid-flight; this request must land in a fresh
			// window, not the one being flushed.
			if err := c.EnqueueAsync(42, 2); err != nil {
				t.Fatal(err)
			}
			if got := pendingKeys(c); got != 1 {
				t.Fatalf("fresh window holds %d keys, want 1", got)
			}
			close(flush.gate)
			waitFor(t, 2*time.Second, func() bool { return sink.len() == 3 })
			if sizes := flush.batchSizes(); len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 1 {
				t.Fatalf("batch sizes = %v, want [2 1]", sizes)
			}
			for i := uint64(0); i < 3; i++ {
				sink.check(t, i, 40+i)
			}
		}},
		{"shutdown answers every in-flight waiter, then rejects", func(t *testing.T) {
			flush := &refFlush{}
			c := NewCoalescer(1024, time.Hour, flush.fn, nil)
			const waiters = 3
			type result struct {
				key   uint64
				value uint64
				found bool
				err   error
			}
			results := make(chan result, waiters)
			for i := uint64(0); i < waiters; i++ {
				go func(key uint64) {
					v, f, err := c.Do(context.Background(), key)
					results <- result{key, v, f, err}
				}(60 + i)
			}
			waitFor(t, 2*time.Second, func() bool { return pendingKeys(c) == waiters })
			c.Close()
			for i := 0; i < waiters; i++ {
				select {
				case r := <-results:
					if r.err != nil {
						t.Fatalf("waiter %d got error %v, want a real answer", r.key, r.err)
					}
					wantAnswer(t, r.key, r.value, r.found)
				case <-time.After(5 * time.Second):
					t.Fatal("waiter hung across shutdown")
				}
			}
			if st := c.Stats(); st.CloseFlushes != 1 {
				t.Fatalf("stats = %+v, want one close flush", st)
			}
			if _, _, err := c.Do(context.Background(), 99); !errors.Is(err, ErrShutdown) {
				t.Fatalf("post-close Do error = %v, want ErrShutdown", err)
			}
			if err := c.EnqueueAsync(99, 0); !errors.Is(err, ErrShutdown) {
				t.Fatalf("post-close EnqueueAsync error = %v, want ErrShutdown", err)
			}
		}},
		{"cancelled request abandons its slot without corrupting the batch", func(t *testing.T) {
			flush := &refFlush{}
			sink := newSinkRecorder()
			c := NewCoalescer(1024, time.Hour, flush.fn, sink.fn)
			ctx, cancel := context.WithCancel(context.Background())
			errCh := make(chan error, 1)
			go func() {
				_, _, err := c.Do(ctx, 70)
				errCh <- err
			}()
			waitFor(t, 2*time.Second, func() bool { return pendingKeys(c) == 1 })
			cancel()
			select {
			case err := <-errCh:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled Do error = %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancelled Do did not return")
			}
			// The abandoned slot stays in the window; a later request joins
			// the same batch and the flush sees both keys, in order.
			if err := c.EnqueueAsync(71, 1); err != nil {
				t.Fatal(err)
			}
			c.Close() // flushes the window with both keys
			if sizes := flush.batchSizes(); len(sizes) != 1 || sizes[0] != 2 {
				t.Fatalf("batch sizes = %v, want [2] (cancelled slot kept)", sizes)
			}
			sink.check(t, 1, 71)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t) })
	}
}

// TestCoalescerConcurrentExactness hammers one coalescer from many
// goroutines and checks every single answer against the reference
// function — any cross-slot mixup, lost wakeup, or double delivery
// fails loudly. Run under -race this is the coalescer's core safety
// proof.
func TestCoalescerConcurrentExactness(t *testing.T) {
	flush := &refFlush{}
	c := NewCoalescer(16, 100*time.Microsecond, flush.fn, nil)
	defer c.Close()
	const goroutines = 8
	const perG = 400
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := uint64(g*perG + i)
				value, found, err := c.Do(context.Background(), key)
				if err != nil || value != key*2 || found != (key%3 == 0) {
					wrong.Add(1)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent requests hung")
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong or failed answers", n)
	}
	st := c.Stats()
	if st.Keys != goroutines*perG {
		t.Fatalf("flushed %d keys, want %d", st.Keys, goroutines*perG)
	}
	if st.Windows >= goroutines*perG {
		t.Fatalf("no coalescing happened: %d windows for %d keys", st.Windows, st.Keys)
	}
}

// TestCoalescerCloseRace closes the coalescer while requests are
// arriving from many goroutines: every request must resolve to either
// a correct answer or ErrShutdown — never a hang, never a wrong
// answer.
func TestCoalescerCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		flush := &refFlush{}
		c := NewCoalescer(8, 50*time.Microsecond, flush.fn, nil)
		var wg sync.WaitGroup
		var wrong atomic.Int64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					key := uint64(g*1000 + i)
					value, found, err := c.Do(context.Background(), key)
					if err != nil {
						if !errors.Is(err, ErrShutdown) {
							wrong.Add(1)
						}
						continue
					}
					if value != key*2 || found != (key%3 == 0) {
						wrong.Add(1)
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		c.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("requests hung across Close")
		}
		if n := wrong.Load(); n != 0 {
			t.Fatalf("round %d: %d wrong answers", round, n)
		}
	}
}
