package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beyondbloom/internal/fault"
	"beyondbloom/internal/lsm"
)

const (
	svcChaosUnwritten = int32(iota)
	svcChaosWritten
	svcChaosDeleted
)

func svcChaosValue(k uint64) uint64 { return k*2654435761 + 1 }

// TestServiceChaos is the service's -race chaos test, in the mold of
// the store's TestChaosConcurrentStore but through the Engine: point
// reads ride the coalescing windows, batch reads the direct path,
// writes the admission-controlled Apply path — all while a reloader
// swaps the serving filter between two .bbf snapshots and the store's
// device and filter blocks fault on an injector schedule. Every
// operation with established ordering asserts its exact answer; the
// pass criterion is zero wrong results and zero hung requests.
func TestServiceChaos(t *testing.T) {
	const (
		writers       = 2
		keysPerWriter = 4000
		total         = writers * keysPerWriter
		deleteEvery   = 5
		// Membership keys live far above the KV keyspace and are present
		// in the initial filter and in both reload snapshots, so a
		// membership probe must find them no matter which generation
		// serves it.
		memBase  = uint64(1) << 32
		memCount = 512
	)

	store := lsm.New(lsm.Options{
		MemtableSize: 128,
		Background:   true,
		L0RunBudget:  6,
		DeviceFaults: fault.NewInjector(42, fault.Transient(0.05), fault.BitFlip(0.02)),
		FilterFaults: fault.NewInjector(43, fault.Transient(0.05)),
	})
	defer store.Close()

	memKeys := make([]uint64, memCount)
	for i := range memKeys {
		memKeys[i] = memBase + uint64(i)
	}
	filter := newTestFilter(t, 8192)
	for _, k := range memKeys {
		if err := filter.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	snaps := []string{
		saveFilterFile(t, dir, "gen-a.bbf", memKeys),
		saveFilterFile(t, dir, "gen-b.bbf", memKeys),
	}

	e, err := NewEngine(filter, store, Config{MaxBatch: 64, MaxInflightKeys: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close() // runs before store.Close: final flushes still have a backend
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	state := make([]atomic.Int32, total)
	var wrong atomic.Int64
	fail := func(format string, args ...any) {
		wrong.Add(1)
		t.Errorf(format, args...)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * keysPerWriter
			for i := 0; i < keysPerWriter; i++ {
				k := uint64(base + i)
				for {
					err := e.Apply(lsm.Entry{Key: k, Value: svcChaosValue(k)})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) {
						fail("Apply(%d) = %v", k, err)
						return
					}
				}
				state[base+i].Store(svcChaosWritten)
				if i%deleteEvery == 0 {
					if err := e.Apply(lsm.Entry{Key: k, Tombstone: true}); err != nil {
						fail("Delete(%d) = %v", k, err)
						return
					}
					state[base+i].Store(svcChaosDeleted)
				}
			}
		}(w)
	}
	// The run ends when the writers have finished their fixed work AND
	// every reader loop has completed a minimum number of operations —
	// on one core the writers can otherwise outrun readers that never
	// got scheduled, leaving nothing actually tested.
	const (
		nLoops     = 6 // kv point, kv batch, mem point, mem batch, http, reloader
		minimumOps = 200
	)
	var loopOps [nLoops]atomic.Int64
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	done := make(chan struct{})
	go func() {
		<-writersDone
		for {
			all := true
			for i := range loopOps {
				if loopOps[i].Load() < minimumOps {
					all = false
				}
			}
			if all {
				close(done)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	deleteEligible := func(k uint64) bool { return (k%keysPerWriter)%deleteEvery == 0 }
	checkKV := func(k, v uint64, ok, observed bool, st int32) {
		switch {
		case observed && st == svcChaosWritten && !deleteEligible(k):
			if !ok {
				fail("false negative: key %d written but not found", k)
			} else if v != svcChaosValue(k) {
				fail("key %d = %d, want %d", k, v, svcChaosValue(k))
			}
		case observed && st == svcChaosDeleted:
			if ok {
				fail("key %d deleted but still found (=%d)", k, v)
			}
		default:
			if ok && v != svcChaosValue(k) {
				fail("key %d = %d, want %d", k, v, svcChaosValue(k))
			}
		}
	}

	var readers sync.WaitGroup

	// Coalesced KV point reader: the window path must stay exact while
	// its backing store compacts, faults, and stalls.
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := uint64(1)
		for {
			select {
			case <-done:
				return
			default:
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			k := rng % total
			st := state[k].Load() // observe BEFORE the read
			v, ok, err := e.Get(context.Background(), k)
			if err != nil {
				fail("Get(%d) = %v", k, err)
				return
			}
			checkKV(k, v, ok, st != svcChaosUnwritten, st)
			if loopOps[0].Add(1) >= minimumOps {
				time.Sleep(200 * time.Microsecond) // met quota: yield the core to straggler loops
			}
		}
	}()

	// Direct KV batch reader.
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := uint64(2)
		keys := make([]uint64, 32)
		vals := make([]uint64, 32)
		found := make([]bool, 32)
		sts := make([]int32, 32)
		for {
			select {
			case <-done:
				return
			default:
			}
			for i := range keys {
				rng = rng*6364136223846793005 + 1442695040888963407
				keys[i] = rng % total
				sts[i] = state[keys[i]].Load()
			}
			if err := e.GetBatch(keys, vals, found); err != nil {
				fail("GetBatch = %v", err)
				return
			}
			for i := range keys {
				checkKV(keys[i], vals[i], found[i], sts[i] != svcChaosUnwritten, sts[i])
			}
			if loopOps[1].Add(1) >= minimumOps {
				time.Sleep(200 * time.Microsecond) // met quota: yield the core to straggler loops
			}
		}
	}()

	// Coalesced membership point reader: every membership key is in
	// every filter generation, so a false negative is a wrong result no
	// matter when the reload lands.
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := uint64(3)
		for {
			select {
			case <-done:
				return
			default:
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			k := memKeys[rng%memCount]
			ok, err := e.Contains(context.Background(), k)
			if err != nil {
				fail("Contains(%d) = %v", k, err)
				return
			}
			if !ok {
				fail("membership key %d lost (filter gen %d)", k, e.Filter().Gen)
			}
			if loopOps[2].Add(1) >= minimumOps {
				time.Sleep(200 * time.Microsecond) // met quota: yield the core to straggler loops
			}
		}
	}()

	// Direct membership batch reader.
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := uint64(4)
		keys := make([]uint64, 64)
		out := make([]bool, 64)
		for {
			select {
			case <-done:
				return
			default:
			}
			for i := range keys {
				rng = rng*6364136223846793005 + 1442695040888963407
				keys[i] = memKeys[rng%memCount]
			}
			if err := e.ContainsBatch(keys, out); err != nil {
				fail("ContainsBatch = %v", err)
				return
			}
			for i, ok := range out {
				if !ok {
					fail("membership key %d lost in batch", keys[i])
				}
			}
			if loopOps[3].Add(1) >= minimumOps {
				time.Sleep(200 * time.Microsecond) // met quota: yield the core to straggler loops
			}
		}
	}()

	// HTTP prober: the same invariant through the full stack.
	readers.Add(1)
	go func() {
		defer readers.Done()
		rng := uint64(5)
		for {
			select {
			case <-done:
				return
			default:
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			k := memKeys[rng%memCount]
			code, body := post(t, ts, "/v1/contains", "application/json",
				`{"key": `+itoa(k)+`}`)
			if code != http.StatusOK || !strings.Contains(body, `"found":true`) {
				fail("HTTP contains(%d): %d %s", k, code, strings.TrimSpace(body))
				return
			}
			if loopOps[4].Add(1) >= minimumOps {
				time.Sleep(200 * time.Microsecond) // met quota: yield the core to straggler loops
			}
		}
	}()

	// Reloader: swap the serving snapshot as fast as it will go.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := e.Reload(snaps[i%2]); err != nil {
				fail("Reload = %v", err)
				return
			}
			if loopOps[5].Add(1) >= minimumOps {
				time.Sleep(200 * time.Microsecond) // met quota: yield the core to straggler loops
			}
		}
	}()

	<-done
	readers.Wait()

	if n := wrong.Load(); n != 0 {
		t.Fatalf("chaos run produced %d wrong results, want 0", n)
	}
	reloads := loopOps[5].Load()
	if gen := e.Filter().Gen; gen < 2 {
		t.Fatalf("filter generation %d after %d reloads", gen, reloads)
	}
	if st := e.MembershipStats(); st.Windows == 0 || st.Keys == 0 {
		t.Fatalf("membership coalescer never flushed: %+v", st)
	}
	stats := store.Device().Counters()
	if stats.FailedReads+stats.FailedWrites == 0 {
		t.Fatal("device fault injector never fired — the chaos test is not testing chaos")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
