package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"beyondbloom/internal/lsm"
)

// maxJSONBody caps JSON request bodies; the binary cap is implied by
// MaxWireBatch. Both are enforced before parsing.
const maxJSONBody = 1 << 20

// Server is the HTTP front: thin, synchronous handlers over the
// Engine. JSON endpoints serve humans and tests; /v1/probe speaks the
// binary frame format for hot clients, through pooled scratch buffers
// so the handler body allocates nothing per request at steady state.
type Server struct {
	e       *Engine
	mux     *http.ServeMux
	scratch sync.Pool // *probeScratch
}

// probeScratch is the reusable state of one binary probe: the request
// body, the decoded request, result slots, and the response frame.
type probeScratch struct {
	body  []byte
	req   Request
	vals  []uint64
	found []bool
	resp  []byte
}

// New builds the HTTP layer over an engine.
func New(e *Engine) *Server {
	s := &Server{e: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/contains", s.handleContains)
	s.mux.HandleFunc("POST /v1/get", s.handleGet)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/put", s.handlePut)
	s.mux.HandleFunc("POST /v1/delete", s.handleDelete)
	s.mux.HandleFunc("POST /v1/probe", s.handleProbe)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the service core (tests and cmd/filterd use it).
func (s *Server) Engine() *Engine { return s.e }

// fail maps a service error to its HTTP status and counts it.
func (s *Server) fail(w http.ResponseWriter, err error) {
	m := s.e.Metrics()
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrMalformed):
		m.ErrMalformed.Add(1)
		status = http.StatusBadRequest
	case errors.Is(err, ErrTooLarge):
		m.ErrTooLarge.Add(1)
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded):
		m.ErrOverload.Add(1)
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrShutdown):
		m.ErrShutdown.Add(1)
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNoStore):
		status = http.StatusNotImplemented
	case errors.Is(err, ErrReadOnly):
		status = http.StatusConflict
	default:
		m.ErrInternal.Add(1)
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		s.fail(w, fmt.Errorf("%w: reading body: %v", ErrMalformed, err))
		return nil, false
	}
	if int64(len(body)) > limit {
		s.fail(w, fmt.Errorf("%w: body over %d bytes", ErrTooLarge, limit))
		return nil, false
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleContains answers membership: {"key": k} goes through the
// coalescing window, {"keys": [...]} through the direct batch path.
func (s *Server) handleContains(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var req Request
	if err := DecodeJSONKeys(OpContains, body, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Keys) == 1 {
		found, err := s.e.Contains(r.Context(), req.Keys[0])
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, map[string]bool{"found": found})
		return
	}
	out := make([]bool, len(req.Keys))
	if err := s.e.ContainsBatch(req.Keys, out); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, map[string][]bool{"found": out})
}

// handleGet answers LSM point lookups, coalesced for single keys and
// direct for batches, mirroring handleContains.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var req Request
	if err := DecodeJSONKeys(OpGet, body, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Keys) == 1 {
		value, found, err := s.e.Get(r.Context(), req.Keys[0])
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, map[string]any{"value": value, "found": found})
		return
	}
	values := make([]uint64, len(req.Keys))
	found := make([]bool, len(req.Keys))
	if err := s.e.GetBatch(req.Keys, values, found); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, map[string]any{"values": values, "found": found})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var req Request
	if err := DecodeJSONKeys(OpContains, body, &req); err != nil {
		s.fail(w, err)
		return
	}
	for _, k := range req.Keys {
		if err := s.e.Insert(k); err != nil {
			s.fail(w, err)
			return
		}
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// jsonEntry is one mutation in a /v1/put body.
type jsonEntry struct {
	Key       uint64 `json:"key"`
	Value     uint64 `json:"value"`
	Tombstone bool   `json:"tombstone"`
}

type jsonPut struct {
	Key     *uint64     `json:"key"`
	Value   uint64      `json:"value"`
	Entries []jsonEntry `json:"entries"`
}

// handlePut applies {"key": k, "value": v} or a batched
// {"entries": [...]} — the batch becomes one atomic WAL record on
// durable stores (group commit does the rest).
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var req jsonPut
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, fmt.Errorf("%w: %v", ErrMalformed, err))
		return
	}
	var entries []lsm.Entry
	switch {
	case req.Key != nil && req.Entries == nil:
		entries = []lsm.Entry{{Key: *req.Key, Value: req.Value}}
	case req.Key == nil && len(req.Entries) > 0:
		if len(req.Entries) > MaxWireBatch {
			s.fail(w, fmt.Errorf("%w: %d entries", ErrTooLarge, len(req.Entries)))
			return
		}
		entries = make([]lsm.Entry, len(req.Entries))
		for i, e := range req.Entries {
			entries[i] = lsm.Entry{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}
		}
	default:
		s.fail(w, fmt.Errorf(`%w: body needs "key" or a non-empty "entries"`, ErrMalformed))
		return
	}
	if err := s.e.Apply(entries...); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var req Request
	if err := DecodeJSONKeys(OpGet, body, &req); err != nil {
		s.fail(w, err)
		return
	}
	entries := make([]lsm.Entry, len(req.Keys))
	for i, k := range req.Keys {
		entries[i] = lsm.Entry{Key: k, Tombstone: true}
	}
	if err := s.e.Apply(entries...); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// handleProbe is the binary hot path: one frame in, one frame out,
// through pooled scratch. See probeFrame for the allocation contract.
func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); ct != BinaryContentType {
		http.Error(w, "use Content-Type "+BinaryContentType, http.StatusUnsupportedMediaType)
		return
	}
	s.e.Metrics().ReqProbeBinary.Add(1)
	sc, _ := s.scratch.Get().(*probeScratch)
	if sc == nil {
		sc = &probeScratch{}
	}
	defer s.scratch.Put(sc)
	limit := int64(reqHeaderLen + 8*MaxWireBatch)
	var err error
	sc.body, err = readInto(sc.body[:0], r.Body, limit+1)
	if err != nil {
		s.fail(w, fmt.Errorf("%w: reading body: %v", ErrMalformed, err))
		return
	}
	if int64(len(sc.body)) > limit {
		s.fail(w, fmt.Errorf("%w: frame over %d bytes", ErrTooLarge, limit))
		return
	}
	frame, err := s.probeFrame(sc)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", BinaryContentType)
	w.Write(frame)
}

// probeFrame decodes sc.body, probes, and encodes the response into
// sc.resp. This is the steady-state zero-allocation path the
// AllocsPerRun regression test pins: decode reuses sc.req.Keys, the
// result slots and response frame reuse sc's slices, and the batch
// probe itself is allocation-free.
func (s *Server) probeFrame(sc *probeScratch) ([]byte, error) {
	if err := DecodeBinaryRequest(sc.body, &sc.req); err != nil {
		return nil, err
	}
	n := len(sc.req.Keys)
	if cap(sc.found) < n {
		sc.found = make([]bool, n)
		sc.vals = make([]uint64, n)
	}
	sc.found = sc.found[:n]
	sc.vals = sc.vals[:n]
	switch sc.req.Op {
	case OpContains:
		if err := s.e.ContainsBatch(sc.req.Keys, sc.found); err != nil {
			return nil, err
		}
	case OpGet:
		for i := range sc.vals {
			sc.vals[i] = 0
		}
		if err := s.e.GetBatch(sc.req.Keys, sc.vals, sc.found); err != nil {
			return nil, err
		}
	}
	sc.resp = AppendBinaryResponse(sc.resp[:0], sc.req.Op, sc.found, sc.vals)
	return sc.resp, nil
}

// readInto is io.ReadAll into a reusable buffer.
func readInto(dst []byte, r io.Reader, max int64) ([]byte, error) {
	for int64(len(dst)) < max {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

type jsonReload struct {
	Path string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var req jsonReload
	if err := json.Unmarshal(body, &req); err != nil || req.Path == "" {
		s.fail(w, fmt.Errorf(`%w: body needs "path"`, ErrMalformed))
		return
	}
	snap, err := s.e.Reload(req.Path)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"ok":        true,
		"gen":       snap.Gen,
		"path":      snap.Path,
		"size_bits": snap.SizeBits,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.e.MetricsText(w)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.e.DebugVars(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "gen": s.e.Filter().Gen})
}
