package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"beyondbloom/internal/core"
	"beyondbloom/internal/lsm"
)

// Service-level request failures. The HTTP layer maps these to status
// codes; direct embedders (the experiment harness, tests) match on
// them with errors.Is.
var (
	// ErrOverloaded means admission control refused the request: the
	// in-flight key budget is exhausted (reads) or too many writes are
	// already queued behind the LSM write stall (writes).
	ErrOverloaded = errors.New("server: overloaded")
	// ErrNoStore means a KV endpoint was hit on a membership-only server.
	ErrNoStore = errors.New("server: no KV store configured")
	// ErrReadOnly means an insert was attempted while the serving filter
	// is not a concurrency-safe mutable (sharded) filter.
	ErrReadOnly = errors.New("server: serving filter is read-only")
)

// Config sizes the service core. The zero value selects the defaults.
type Config struct {
	// MaxBatch is the coalescing window capacity (default 256 — one
	// core.BatchChunk, so a full window is exactly one hash-once/
	// probe-many pass).
	MaxBatch int
	// Window is the coalescing deadline: the longest a lone point
	// request waits for company before its window is flushed anyway
	// (default 200µs).
	Window time.Duration
	// MaxInflightKeys is the read admission budget: the total keys
	// admitted and not yet answered, across point and batch requests
	// (default 65536). Excess requests fail fast with ErrOverloaded.
	MaxInflightKeys int
	// MaxInflightWrites bounds writes concurrently blocked in the
	// store's write path (default 1024). The LSM write stall is the
	// backpressure mechanism; this budget converts "stalled too deep"
	// into fast 429s instead of unbounded goroutine pileup.
	MaxInflightWrites int
	// Sink receives async probe completions (see Engine.ContainsAsync).
	// Only the load generator uses it; nil is fine for servers.
	Sink SinkFunc
}

func (c *Config) fill() {
	if c.MaxBatch == 0 {
		c.MaxBatch = core.BatchChunk
	}
	if c.Window == 0 {
		c.Window = 200 * time.Microsecond
	}
	if c.MaxInflightKeys == 0 {
		c.MaxInflightKeys = 65536
	}
	if c.MaxInflightWrites == 0 {
		c.MaxInflightWrites = 1024
	}
}

// Engine is the service core: the membership filter behind an atomic
// reload handle, an optional LSM KV store, one coalescer per read op,
// and admission control in front of both. The HTTP layer (server.go)
// and the load generator drive the same Engine methods, so what the
// experiment measures is what the server serves.
type Engine struct {
	cfg   Config
	m     Metrics
	fh    filterHandle
	store *lsm.Store

	membership *Coalescer
	kv         *Coalescer

	inflightKeys   atomic.Int64
	inflightWrites atomic.Int64
	closed         atomic.Bool
	reloadMu       sync.Mutex
	start          time.Time
}

// NewEngine builds the service core over a serving filter (required)
// and an optional KV store (nil disables the KV endpoints). The store
// is borrowed, not owned: Close shuts the coalescers down but leaves
// the store to its creator.
func NewEngine(filter core.Filter, store *lsm.Store, cfg Config) (*Engine, error) {
	if filter == nil {
		return nil, fmt.Errorf("server: nil serving filter")
	}
	cfg.fill()
	e := &Engine{cfg: cfg, store: store, start: time.Now()}
	e.fh.install(filter, "")
	e.membership = NewCoalescer(cfg.MaxBatch, cfg.Window, e.flushMembership, cfg.Sink)
	if store != nil {
		e.kv = NewCoalescer(cfg.MaxBatch, cfg.Window, e.flushKV, cfg.Sink)
	}
	return e, nil
}

// flushMembership answers one membership window against a single
// filter snapshot — a reload mid-window cannot split the batch.
func (e *Engine) flushMembership(keys []uint64, _ []uint64, found []bool) error {
	core.ContainsBatch(e.fh.load().Filter, keys, found)
	return nil
}

// flushKV answers one KV window via the store's batched read path.
func (e *Engine) flushKV(keys []uint64, values []uint64, found []bool) error {
	e.store.GetBatch(keys, values, found)
	return nil
}

// admitKeys charges n keys against the read budget; the caller must
// releaseKeys(n) when the request completes. Over budget, the request
// is rejected without queueing — fail fast is the point.
func (e *Engine) admitKeys(n int) bool {
	if e.inflightKeys.Add(int64(n)) > int64(e.cfg.MaxInflightKeys) {
		e.inflightKeys.Add(int64(-n))
		e.m.RejectedRead.Add(1)
		return false
	}
	return true
}

func (e *Engine) releaseKeys(n int) { e.inflightKeys.Add(int64(-n)) }

// Contains reports membership of key, coalesced into the current
// window.
func (e *Engine) Contains(ctx context.Context, key uint64) (bool, error) {
	e.m.ReqContains.Add(1)
	if !e.admitKeys(1) {
		return false, ErrOverloaded
	}
	defer e.releaseKeys(1)
	_, found, err := e.membership.Do(ctx, key)
	return found, err
}

// ContainsAsync coalesces key like Contains but delivers the answer to
// cfg.Sink with tag instead of blocking. It bypasses admission — the
// open-loop load generator is the admission experiment.
func (e *Engine) ContainsAsync(key, tag uint64) error {
	return e.membership.EnqueueAsync(key, tag)
}

// ContainsBatch probes a whole batch directly against the current
// filter snapshot (the caller already amortized its fan-in). out must
// be at least len(keys) long. The hot path allocates nothing.
func (e *Engine) ContainsBatch(keys []uint64, out []bool) error {
	e.m.ReqContainsBatch.Add(1)
	if e.closed.Load() {
		return ErrShutdown
	}
	if !e.admitKeys(len(keys)) {
		return ErrOverloaded
	}
	core.ContainsBatch(e.fh.load().Filter, keys, out[:len(keys)])
	e.releaseKeys(len(keys))
	return nil
}

// Get performs one coalesced LSM point lookup.
func (e *Engine) Get(ctx context.Context, key uint64) (uint64, bool, error) {
	e.m.ReqGet.Add(1)
	if e.store == nil {
		return 0, false, ErrNoStore
	}
	if !e.admitKeys(1) {
		return 0, false, ErrOverloaded
	}
	defer e.releaseKeys(1)
	return e.kv.Do(ctx, key)
}

// GetBatch performs a batch of LSM point lookups directly.
func (e *Engine) GetBatch(keys []uint64, values []uint64, found []bool) error {
	e.m.ReqGetBatch.Add(1)
	if e.store == nil {
		return ErrNoStore
	}
	if e.closed.Load() {
		return ErrShutdown
	}
	if !e.admitKeys(len(keys)) {
		return ErrOverloaded
	}
	e.store.GetBatch(keys, values[:len(keys)], found[:len(keys)])
	e.releaseKeys(len(keys))
	return nil
}

// Apply applies KV mutations through the store's write path. The
// store's write-stall machinery is the backpressure: when the flush
// backlog is over budget, Apply blocks, blocked writers accumulate
// against MaxInflightWrites, and writes beyond that budget are
// rejected fast with ErrOverloaded instead of piling up goroutines.
func (e *Engine) Apply(entries ...lsm.Entry) error {
	if len(entries) == 1 && entries[0].Tombstone {
		e.m.ReqDelete.Add(1)
	} else {
		e.m.ReqPut.Add(1)
	}
	if e.store == nil {
		return ErrNoStore
	}
	if e.closed.Load() {
		return ErrShutdown
	}
	if e.inflightWrites.Add(1) > int64(e.cfg.MaxInflightWrites) {
		e.inflightWrites.Add(-1)
		e.m.RejectedWrite.Add(1)
		return ErrOverloaded
	}
	err := e.store.Apply(entries...)
	e.inflightWrites.Add(-1)
	if err != nil {
		e.m.ErrInternal.Add(1)
	}
	return err
}

// Insert adds key to the serving filter, if it is mutable (a sharded
// wrapper, whose per-shard locks make concurrent Insert+Contains
// safe). Filters loaded read-only report ErrReadOnly.
func (e *Engine) Insert(key uint64) error {
	e.m.ReqInsert.Add(1)
	if e.closed.Load() {
		return ErrShutdown
	}
	sh := e.fh.load().Mutable()
	if sh == nil {
		return ErrReadOnly
	}
	return sh.Insert(key)
}

// Reload loads a .bbf file and atomically hands the serving filter
// over to it. In-flight windows finish against the snapshot they
// started with; the next window probes the new generation. Reloads
// are serialized but never block the read path.
func (e *Engine) Reload(path string) (*FilterSnapshot, error) {
	e.m.ReqReload.Add(1)
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	f, err := LoadFilterFile(path)
	if err != nil {
		return nil, err
	}
	snap := e.fh.install(f, path)
	e.m.Reloads.Add(1)
	return snap, nil
}

// Filter returns the current serving snapshot.
func (e *Engine) Filter() *FilterSnapshot { return e.fh.load() }

// Store returns the KV backend (nil for membership-only engines).
func (e *Engine) Store() *lsm.Store { return e.store }

// Metrics returns the counter block.
func (e *Engine) Metrics() *Metrics { return &e.m }

// MembershipStats returns the membership coalescer's counters.
func (e *Engine) MembershipStats() CoalescerStats { return e.membership.Stats() }

// Close drains the coalescers: open windows are flushed so every
// in-flight waiter gets a real answer, then all later requests fail
// fast with ErrShutdown. The store, if any, stays open — its owner
// closes it after the engine so final flushes still have a backend.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.membership.Close()
	if e.kv != nil {
		e.kv.Close()
	}
}

// gatherAll collects every metric point: server counters, per-role
// coalescer counters, filter snapshot gauges, and (when a store is
// attached) the store's device and filter counters.
func (e *Engine) gatherAll() []metricPoint {
	points := e.m.gather()
	points = append(points, gatherCoalescer("membership", e.membership.Stats())...)
	if e.kv != nil {
		points = append(points, gatherCoalescer("kv", e.kv.Stats())...)
	}
	snap := e.fh.load()
	points = append(points,
		metricPoint{"filterd_filter_generation", "", "", int64(snap.Gen)},
		metricPoint{"filterd_filter_size_bits", "", "", int64(snap.SizeBits)},
	)
	if e.store != nil {
		c := e.store.Device().Counters()
		points = append(points,
			metricPoint{"filterd_store_device_reads_total", "", "", int64(c.Reads)},
			metricPoint{"filterd_store_device_writes_total", "", "", int64(c.Writes)},
			metricPoint{"filterd_store_filter_probes_total", "", "", int64(e.store.FilterProbes())},
			metricPoint{"filterd_store_filter_fallbacks_total", "", "", int64(e.store.FilterFallbacks())},
			metricPoint{"filterd_store_maplet_delete_misses_total", "", "", int64(e.store.MapletDeleteMisses())},
			metricPoint{"filterd_store_maplet_fallbacks_total", "", "", int64(e.store.MapletFallbacks())},
		)
	}
	return points
}

// MetricsText renders /metrics (Prometheus text format).
func (e *Engine) MetricsText(w io.Writer) {
	writeProm(w, e.gatherAll())
}

// DebugVars renders /debug/vars (flat JSON). Unlike /metrics it also
// includes non-deterministic runtime gauges, so the golden test pins
// /metrics only.
func (e *Engine) DebugVars(w io.Writer) {
	extra := []metricPoint{
		{"filterd_uptime_ms", "", "", time.Since(e.start).Milliseconds()},
		{"filterd_inflight_keys", "", "", e.inflightKeys.Load()},
		{"filterd_inflight_writes", "", "", e.inflightWrites.Load()},
	}
	writeVars(w, e.gatherAll(), extra)
}
