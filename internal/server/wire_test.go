package server

import (
	"bytes"
	"errors"
	"testing"
)

func TestBinaryRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		op   byte
		keys []uint64
	}{
		{"contains empty", OpContains, nil},
		{"contains one", OpContains, []uint64{42}},
		{"contains several", OpContains, []uint64{0, 1, ^uint64(0), 1 << 63}},
		{"get", OpGet, []uint64{7, 8, 9}},
		{"max batch", OpContains, make([]uint64, MaxWireBatch)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := AppendBinaryRequest(nil, tc.op, tc.keys)
			var req Request
			if err := DecodeBinaryRequest(frame, &req); err != nil {
				t.Fatal(err)
			}
			if req.Op != tc.op || len(req.Keys) != len(tc.keys) {
				t.Fatalf("decoded (op=%d, %d keys), want (op=%d, %d keys)", req.Op, len(req.Keys), tc.op, len(tc.keys))
			}
			for i := range tc.keys {
				if req.Keys[i] != tc.keys[i] {
					t.Fatalf("key %d = %d, want %d", i, req.Keys[i], tc.keys[i])
				}
			}
			// Re-encoding the decoded request must reproduce the frame
			// byte for byte — the format is canonical.
			if again := AppendBinaryRequest(nil, req.Op, req.Keys); !bytes.Equal(again, frame) {
				t.Fatal("re-encoded frame differs from original")
			}
		})
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		op     byte
		found  []bool
		values []uint64
	}{
		{"contains empty", OpContains, nil, nil},
		{"contains seven", OpContains, []bool{true, false, true, true, false, false, true}, nil},
		{"contains eight", OpContains, []bool{false, true, false, true, false, true, false, true}, nil},
		{"contains nine", OpContains, []bool{true, true, true, true, true, true, true, true, true}, nil},
		{"get", OpGet, []bool{true, false, true}, []uint64{11, 0, 33}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := AppendBinaryResponse(nil, tc.op, tc.found, tc.values)
			var resp Response
			if err := DecodeBinaryResponse(frame, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Op != tc.op || len(resp.Found) != len(tc.found) {
				t.Fatalf("decoded (op=%d, %d answers), want (op=%d, %d)", resp.Op, len(resp.Found), tc.op, len(tc.found))
			}
			for i := range tc.found {
				if resp.Found[i] != tc.found[i] {
					t.Fatalf("found[%d] = %v, want %v", i, resp.Found[i], tc.found[i])
				}
			}
			if tc.op == OpGet {
				for i := range tc.values {
					if resp.Values[i] != tc.values[i] {
						t.Fatalf("values[%d] = %d, want %d", i, resp.Values[i], tc.values[i])
					}
				}
			}
		})
	}
}

func TestBinaryRequestRejects(t *testing.T) {
	valid := AppendBinaryRequest(nil, OpContains, []uint64{1, 2})
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name    string
		frame   []byte
		wantErr error
	}{
		{"empty", nil, ErrMalformed},
		{"short header", valid[:reqHeaderLen-1], ErrMalformed},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrMalformed},
		{"bad version", mutate(func(b []byte) []byte { b[2] = 9; return b }), ErrMalformed},
		{"bad op", mutate(func(b []byte) []byte { b[3] = 77; return b }), ErrMalformed},
		{"truncated keys", valid[:len(valid)-3], ErrMalformed},
		{"trailing bytes", append(append([]byte(nil), valid...), 0), ErrMalformed},
		{"count over batch cap", mutate(func(b []byte) []byte {
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0, 0 // count = 65535 > MaxWireBatch
			return b
		}), ErrTooLarge},
		{"count lies about length", mutate(func(b []byte) []byte { b[4] = 3; return b }), ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req Request
			if err := DecodeBinaryRequest(tc.frame, &req); !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeJSONKeys(t *testing.T) {
	cases := []struct {
		name     string
		body     string
		wantErr  error
		wantKeys []uint64
	}{
		{"single key", `{"key": 7}`, nil, []uint64{7}},
		{"key zero", `{"key": 0}`, nil, []uint64{0}},
		{"batch", `{"keys": [1, 2, 3]}`, nil, []uint64{1, 2, 3}},
		{"not json", `{`, ErrMalformed, nil},
		{"wrong type", `{"key": "seven"}`, ErrMalformed, nil},
		{"both key and keys", `{"key": 1, "keys": [2]}`, ErrMalformed, nil},
		{"neither", `{}`, ErrMalformed, nil},
		{"empty keys", `{"keys": []}`, ErrMalformed, nil},
		{"negative key", `{"key": -1}`, ErrMalformed, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req Request
			err := DecodeJSONKeys(OpContains, []byte(tc.body), &req)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("error = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(req.Keys) != len(tc.wantKeys) {
				t.Fatalf("got %d keys, want %d", len(req.Keys), len(tc.wantKeys))
			}
			for i := range tc.wantKeys {
				if req.Keys[i] != tc.wantKeys[i] {
					t.Fatalf("key %d = %d, want %d", i, req.Keys[i], tc.wantKeys[i])
				}
			}
		})
	}
}

func TestDecodeJSONKeysTooLarge(t *testing.T) {
	body := []byte(`{"keys": [`)
	for i := 0; i <= MaxWireBatch; i++ {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, '1')
	}
	body = append(body, `]}`...)
	var req Request
	if err := DecodeJSONKeys(OpContains, body, &req); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
}

// TestDecodeRequestDispatch checks the content-type switch: the binary
// parser owns its op byte, the JSON parser takes the route's.
func TestDecodeRequestDispatch(t *testing.T) {
	var req Request
	frame := AppendBinaryRequest(nil, OpGet, []uint64{5})
	if err := DecodeRequest(BinaryContentType, OpContains, frame, &req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpGet {
		t.Fatalf("binary decode op = %d, want the frame's op %d", req.Op, OpGet)
	}
	if err := DecodeRequest("application/json", OpContains, []byte(`{"key": 5}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpContains {
		t.Fatalf("json decode op = %d, want the route's op %d", req.Op, OpContains)
	}
}
