package server

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beyondbloom/internal/lsm"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestMetricsGolden pins the full /metrics page for a fixed request
// sequence. Every piece is deterministic by construction: the filter
// seeds are fixed, the store is synchronous (bit-identical I/O replay),
// and MaxBatch=1 disables the deadline timer, so every coalesced
// request seals its own window. Any change to a counter name, label,
// render order, or to which requests bump which counters shows up as a
// diff here.
func TestMetricsGolden(t *testing.T) {
	store, err := lsm.NewStore(lsm.Options{MemtableSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	e, err := NewEngine(newTestFilter(t, 4096), store, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	reloadPath := saveFilterFile(t, t.TempDir(), "gen2.bbf", []uint64{500, 501})

	// The pinned sequence. Status codes are asserted so a behavior
	// change cannot silently re-pin the golden to different semantics.
	steps := []struct {
		path, contentType, body string
		wantStatus              int
	}{
		{"/v1/insert", "application/json", `{"keys": [10, 11, 12]}`, 200},
		{"/v1/contains", "application/json", `{"key": 10}`, 200},
		{"/v1/contains", "application/json", `{"key": 999}`, 200},
		{"/v1/contains", "application/json", `{"keys": [10, 11, 999]}`, 200},
		{"/v1/put", "application/json", `{"key": 1, "value": 100}`, 200},
		{"/v1/put", "application/json", `{"entries": [{"key": 2, "value": 200}, {"key": 3, "value": 300}, {"key": 4, "value": 400}, {"key": 5, "value": 500}, {"key": 6, "value": 600}]}`, 200},
		{"/v1/get", "application/json", `{"key": 1}`, 200},
		{"/v1/get", "application/json", `{"keys": [1, 2, 999]}`, 200},
		{"/v1/delete", "application/json", `{"key": 2}`, 200},
		{"/v1/probe", BinaryContentType, string(AppendBinaryRequest(nil, OpContains, []uint64{10, 999})), 200},
		{"/v1/probe", BinaryContentType, string(AppendBinaryRequest(nil, OpGet, []uint64{1, 2})), 200},
		{"/admin/reload", "application/json", `{"path": "` + reloadPath + `"}`, 200},
		{"/v1/contains", "application/json", `{"key": 500}`, 200},
		{"/v1/contains", "application/json", `not json`, 400},
		{"/v1/probe", BinaryContentType, "BQ", 400},
	}
	for i, st := range steps {
		code, body := post(t, ts, st.path, st.contentType, st.body)
		if code != st.wantStatus {
			t.Fatalf("step %d (%s): status %d (%s), want %d", i, st.path, code, strings.TrimSpace(body), st.wantStatus)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	checkGolden(t, "metrics.golden", buf.Bytes())
}

// TestWireFormatGolden pins the binary wire format byte for byte. If
// these goldens ever need -update, the format changed and every client
// breaks: bump wireVersion instead.
func TestWireFormatGolden(t *testing.T) {
	reqContains := AppendBinaryRequest(nil, OpContains, []uint64{1, 2, 1 << 40})
	checkGolden(t, "wire_request_contains.golden", reqContains)
	reqGet := AppendBinaryRequest(nil, OpGet, []uint64{7})
	checkGolden(t, "wire_request_get.golden", reqGet)
	respContains := AppendBinaryResponse(nil, OpContains, []bool{true, false, true, true, false, false, false, false, true}, nil)
	checkGolden(t, "wire_response_contains.golden", respContains)
	respGet := AppendBinaryResponse(nil, OpGet, []bool{true, false}, []uint64{0xdeadbeef, 0})
	checkGolden(t, "wire_response_get.golden", respGet)
}
