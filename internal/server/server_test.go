package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beyondbloom/internal/bloom"
	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
	"beyondbloom/internal/lsm"
)

// newTestFilter builds the serving filter the way cmd/filterd does: a
// sharded blocked-Bloom wrapper, so concurrent Insert+Contains is
// legal.
func newTestFilter(t *testing.T, n int) *concurrent.Sharded {
	t.Helper()
	sh, err := concurrent.NewShardedMutable(2, func(int) core.MutableFilter {
		return bloom.NewBlocked(n, 12)
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// newTestEngine builds an engine over a fresh sharded filter and, when
// withStore is set, a synchronous in-memory LSM store.
func newTestEngine(t *testing.T, withStore bool, cfg Config) *Engine {
	t.Helper()
	var store *lsm.Store
	if withStore {
		var err error
		store, err = lsm.NewStore(lsm.Options{MemtableSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
	}
	e, err := NewEngine(newTestFilter(t, 4096), store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// post sends body to path and returns the status and response body.
func post(t *testing.T, ts *httptest.Server, path, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	return post(t, ts, path, "application/json", body)
}

// saveFilterFile persists a filter containing exactly keys to a .bbf
// under dir and returns its path.
func saveFilterFile(t *testing.T, dir, name string, keys []uint64) string {
	t.Helper()
	f := bloom.NewBlocked(len(keys)+1, 12)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, name)
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(file)
	if _, err := core.Save(w, f); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHTTPRoundTrip(t *testing.T) {
	e := newTestEngine(t, true, Config{MaxBatch: 1})
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	if code, body := postJSON(t, ts, "/v1/insert", `{"keys": [10, 11, 12]}`); code != 200 {
		t.Fatalf("insert: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/contains", `{"key": 10}`); code != 200 || !strings.Contains(body, `"found":true`) {
		t.Fatalf("contains hit: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/contains", `{"key": 999999}`); code != 200 || !strings.Contains(body, `"found":false`) {
		t.Fatalf("contains miss: %d %s", code, body)
	}
	code, body := postJSON(t, ts, "/v1/contains", `{"keys": [10, 11, 999999]}`)
	if code != 200 {
		t.Fatalf("contains batch: %d %s", code, body)
	}
	var batch struct{ Found []bool }
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Found) != 3 || !batch.Found[0] || !batch.Found[1] || batch.Found[2] {
		t.Fatalf("contains batch found = %v, want [true true false]", batch.Found)
	}

	if code, body := postJSON(t, ts, "/v1/put", `{"key": 5, "value": 50}`); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/put", `{"entries": [{"key": 6, "value": 60}, {"key": 7, "value": 70}]}`); code != 200 {
		t.Fatalf("put batch: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/get", `{"key": 5}`); code != 200 || !strings.Contains(body, `"value":50`) {
		t.Fatalf("get: %d %s", code, body)
	}
	code, body = postJSON(t, ts, "/v1/get", `{"keys": [5, 6, 7, 8]}`)
	if code != 200 {
		t.Fatalf("get batch: %d %s", code, body)
	}
	var got struct {
		Values []uint64
		Found  []bool
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	want := []uint64{50, 60, 70, 0}
	for i, v := range want {
		if got.Values[i] != v || got.Found[i] != (v != 0) {
			t.Fatalf("get batch = %+v, want values %v", got, want)
		}
	}
	if code, body := postJSON(t, ts, "/v1/delete", `{"key": 6}`); code != 200 {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/get", `{"key": 6}`); code != 200 || !strings.Contains(body, `"found":false`) {
		t.Fatalf("get after delete: %d %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not flat JSON: %v", err)
	}
	resp.Body.Close()
	if vars["filterd_requests_total.contains"] != 2 {
		t.Fatalf("vars counter contains = %d, want 2", vars["filterd_requests_total.contains"])
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `filterd_requests_total{op="contains"} 2`) {
		t.Fatalf("/metrics missing contains counter:\n%s", buf.String())
	}
}

func TestHTTPBinaryProbe(t *testing.T) {
	e := newTestEngine(t, true, Config{})
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	for _, k := range []uint64{100, 101} {
		if err := e.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Apply(lsm.Entry{Key: 100, Value: 1000}); err != nil {
		t.Fatal(err)
	}

	probe := func(op byte, keys []uint64) Response {
		t.Helper()
		frame := AppendBinaryRequest(nil, op, keys)
		resp, err := http.Post(ts.URL+"/v1/probe", BinaryContentType, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("probe: status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		var out Response
		if err := DecodeBinaryResponse(buf.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	r := probe(OpContains, []uint64{100, 101, 424242})
	if !r.Found[0] || !r.Found[1] || r.Found[2] {
		t.Fatalf("binary contains = %v, want [true true false]", r.Found)
	}
	r = probe(OpGet, []uint64{100, 424242})
	if !r.Found[0] || r.Values[0] != 1000 || r.Found[1] || r.Values[1] != 0 {
		t.Fatalf("binary get = %+v, want (1000, found) (0, absent)", r)
	}

	// Wrong content type is refused before any parsing.
	resp, err := http.Post(ts.URL+"/v1/probe", "application/json", strings.NewReader(`{"key": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("json to /v1/probe: status %d, want 415", resp.StatusCode)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	e := newTestEngine(t, false, Config{MaxInflightKeys: 4})
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	cases := []struct {
		name, path, contentType, body string
		wantStatus                    int
	}{
		{"malformed json", "/v1/contains", "application/json", `{`, 400},
		{"empty body", "/v1/contains", "application/json", `{}`, 400},
		{"over read budget", "/v1/contains", "application/json", `{"keys": [1,2,3,4,5]}`, 429},
		{"kv without store", "/v1/get", "application/json", `{"key": 1}`, 501},
		{"put without store", "/v1/put", "application/json", `{"key": 1, "value": 2}`, 501},
		{"binary garbage", "/v1/probe", BinaryContentType, "not a frame", 400},
		{"reload missing path", "/admin/reload", "application/json", `{}`, 400},
		{"reload bad file", "/admin/reload", "application/json", `{"path": "/nonexistent.bbf"}`, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code, body := post(t, ts, tc.path, tc.contentType, tc.body); code != tc.wantStatus {
				t.Fatalf("status = %d (%s), want %d", code, strings.TrimSpace(body), tc.wantStatus)
			}
		})
	}

	// A batch over MaxWireBatch answers 413, not 400.
	var big strings.Builder
	big.WriteString(`{"keys": [`)
	for i := 0; i <= MaxWireBatch; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteByte('1')
	}
	big.WriteString(`]}`)
	if code, _ := postJSON(t, ts, "/v1/contains", big.String()); code != 413 {
		t.Fatalf("oversized batch: status %d, want 413", code)
	}
}

func TestInsertReadOnlyFilter(t *testing.T) {
	// A bare (unsharded) filter serves read-only: Insert must refuse
	// rather than race unlocked writes against concurrent probes.
	e, err := NewEngine(bloom.NewBlocked(128, 12), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Insert(1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert on read-only filter = %v, want ErrReadOnly", err)
	}
	ts := httptest.NewServer(New(e))
	defer ts.Close()
	if code, _ := postJSON(t, ts, "/v1/insert", `{"key": 1}`); code != 409 {
		t.Fatalf("insert status = %d, want 409", code)
	}
}

func TestHTTPReload(t *testing.T) {
	dir := t.TempDir()
	pathA := saveFilterFile(t, dir, "a.bbf", []uint64{1, 2, 3})
	pathB := saveFilterFile(t, dir, "b.bbf", []uint64{1000, 2000})

	e := newTestEngine(t, false, Config{})
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	if gen := e.Filter().Gen; gen != 1 {
		t.Fatalf("initial generation = %d, want 1", gen)
	}
	code, body := postJSON(t, ts, "/admin/reload", `{"path": "`+pathA+`"}`)
	if code != 200 || !strings.Contains(body, `"gen":2`) {
		t.Fatalf("reload A: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/contains", `{"key": 2}`); code != 200 || !strings.Contains(body, `"found":true`) {
		t.Fatalf("contains after reload A: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/admin/reload", `{"path": "`+pathB+`"}`); code != 200 || !strings.Contains(body, `"gen":3`) {
		t.Fatalf("reload B: %d %s", code, body)
	}
	if code, body := postJSON(t, ts, "/v1/contains", `{"keys": [1000, 2000]}`); code != 200 || strings.Count(body, "true") != 2 {
		t.Fatalf("contains after reload B: %d %s", code, body)
	}
	// The loaded filter is a bare blocked Bloom: generation 3 is
	// read-only even though generation 1 accepted inserts.
	if code, _ := postJSON(t, ts, "/v1/insert", `{"key": 9}`); code != 409 {
		t.Fatalf("insert after reload should be 409")
	}
}

func TestLoadFilterFileRejectsTrailing(t *testing.T) {
	dir := t.TempDir()
	path := saveFilterFile(t, dir, "x.bbf", []uint64{1})
	if _, err := LoadFilterFile(path); err != nil {
		t.Fatalf("clean file: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde})
	f.Close()
	if _, err := LoadFilterFile(path); err == nil {
		t.Fatal("file with trailing bytes loaded")
	}
}

func TestWriteAdmission(t *testing.T) {
	e := newTestEngine(t, true, Config{MaxInflightWrites: 2})
	// Fill the write budget by hand (white-box): the next Apply must be
	// rejected fast instead of queueing behind the stall.
	e.inflightWrites.Store(2)
	if err := e.Apply(lsm.Entry{Key: 1, Value: 1}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Apply over budget = %v, want ErrOverloaded", err)
	}
	e.inflightWrites.Store(0)
	if err := e.Apply(lsm.Entry{Key: 1, Value: 1}); err != nil {
		t.Fatalf("Apply under budget = %v", err)
	}
	if got := e.Metrics().RejectedWrite.Load(); got != 1 {
		t.Fatalf("RejectedWrite = %d, want 1", got)
	}
}
