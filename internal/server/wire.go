// Package server is the network front-end of the library: a batched,
// backpressured membership/KV service over concurrent.Sharded filters
// and the lsm.Store (ROADMAP item 1, the tutorial's §3.3 serving
// story). The pieces compose bottom-up:
//
//   - wire.go: the request/response wire formats — JSON for humans and
//     a pinned little-endian binary frame for hot clients.
//   - coalesce.go: the request coalescer, which batches concurrent
//     point lookups into ContainsBatch/GetBatch windows so the
//     hash-once/probe-many kernels pay off under fan-in.
//   - reload.go: zero-downtime filter reload by atomic snapshot
//     hand-off from .bbf files.
//   - metrics.go: atomic counters rendered at /metrics and /debug/vars.
//   - engine.go: the service core — admission control, backpressure
//     riding the LSM write-stall path, and the two backends.
//   - server.go: the HTTP layer (cmd/filterd is a thin main around it).
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Binary wire format v1 (pinned by the golden tests in testdata/):
//
//	request:  'B' 'Q' ver=1 op count:u32le count x key:u64le
//	response: 'B' 'R' ver=1 op count:u32le bitmap:ceil(count/8) bytes
//	          [count x value:u64le when op == OpGet]
//
// The found bitmap is LSB-first: key i's answer is bit i&7 of byte
// i>>3. Values of absent keys are encoded as zero. Frames are
// fixed-size given (op, count), carry no padding, and reject trailing
// garbage — a frame is the whole body, so a truncated or oversized
// request can never be half-read as a smaller valid one.
const (
	wireVersion = 1

	// OpContains probes the membership filter.
	OpContains byte = 1
	// OpGet performs LSM point lookups.
	OpGet byte = 2
)

// MaxWireBatch caps the keys in one request (JSON or binary). Larger
// batches are rejected at decode time, before any allocation sized by
// untrusted input.
const MaxWireBatch = 4096

// BinaryContentType selects the binary frame parser on /v1/probe.
const BinaryContentType = "application/x-bbf1"

// Wire decode failures. ErrTooLarge is split out so the HTTP layer can
// answer 413 instead of 400.
var (
	ErrMalformed = errors.New("server: malformed request")
	ErrTooLarge  = errors.New("server: batch exceeds MaxWireBatch")
)

const (
	reqHeaderLen  = 8 // magic(2) ver(1) op(1) count(4)
	respHeaderLen = 8
)

// Request is one decoded probe request: an op and its keys. Keys is
// reused across decodes into the same Request, so steady-state parsing
// does not allocate.
type Request struct {
	Op   byte
	Keys []uint64
}

// Response is a decoded binary response (client side and tests).
type Response struct {
	Op     byte
	Found  []bool
	Values []uint64 // nil unless Op == OpGet
}

func validOp(op byte) bool { return op == OpContains || op == OpGet }

// DecodeBinaryRequest parses one binary request frame into req,
// reusing req.Keys. The frame must span data exactly: truncated input,
// trailing bytes, an unknown version or op, and counts above
// MaxWireBatch are all rejected (wrapping ErrMalformed/ErrTooLarge)
// before any key is read.
func DecodeBinaryRequest(data []byte, req *Request) error {
	if len(data) < reqHeaderLen {
		return fmt.Errorf("%w: frame truncated at %d bytes", ErrMalformed, len(data))
	}
	if data[0] != 'B' || data[1] != 'Q' {
		return fmt.Errorf("%w: bad request magic %q", ErrMalformed, data[:2])
	}
	if data[2] != wireVersion {
		return fmt.Errorf("%w: unsupported wire version %d", ErrMalformed, data[2])
	}
	op := data[3]
	if !validOp(op) {
		return fmt.Errorf("%w: unknown op %d", ErrMalformed, op)
	}
	count := binary.LittleEndian.Uint32(data[4:8])
	if count > MaxWireBatch {
		return fmt.Errorf("%w: %d keys", ErrTooLarge, count)
	}
	want := reqHeaderLen + 8*int(count)
	if len(data) != want {
		return fmt.Errorf("%w: frame is %d bytes, op/count say %d", ErrMalformed, len(data), want)
	}
	req.Op = op
	req.Keys = req.Keys[:0]
	for off := reqHeaderLen; off < want; off += 8 {
		req.Keys = append(req.Keys, binary.LittleEndian.Uint64(data[off:off+8]))
	}
	return nil
}

// AppendBinaryRequest appends the canonical encoding of (op, keys) to
// dst and returns the extended slice.
func AppendBinaryRequest(dst []byte, op byte, keys []uint64) []byte {
	dst = append(dst, 'B', 'Q', wireVersion, op)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return dst
}

// AppendBinaryResponse appends a response frame for (op, found) — plus
// values when op is OpGet — to dst. len(values) must equal len(found)
// for OpGet; values is ignored for OpContains.
func AppendBinaryResponse(dst []byte, op byte, found []bool, values []uint64) []byte {
	dst = append(dst, 'B', 'R', wireVersion, op)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(found)))
	var b byte
	for i, ok := range found {
		if ok {
			b |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, b)
			b = 0
		}
	}
	if len(found)&7 != 0 {
		dst = append(dst, b)
	}
	if op == OpGet {
		for _, v := range values[:len(found)] {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// DecodeBinaryResponse parses a response frame into resp, reusing its
// slices. Validation mirrors DecodeBinaryRequest.
func DecodeBinaryResponse(data []byte, resp *Response) error {
	if len(data) < respHeaderLen {
		return fmt.Errorf("%w: response truncated at %d bytes", ErrMalformed, len(data))
	}
	if data[0] != 'B' || data[1] != 'R' {
		return fmt.Errorf("%w: bad response magic %q", ErrMalformed, data[:2])
	}
	if data[2] != wireVersion {
		return fmt.Errorf("%w: unsupported wire version %d", ErrMalformed, data[2])
	}
	op := data[3]
	if !validOp(op) {
		return fmt.Errorf("%w: unknown op %d", ErrMalformed, op)
	}
	count := binary.LittleEndian.Uint32(data[4:8])
	if count > MaxWireBatch {
		return fmt.Errorf("%w: %d answers", ErrTooLarge, count)
	}
	n := int(count)
	want := respHeaderLen + (n+7)/8
	if op == OpGet {
		want += 8 * n
	}
	if len(data) != want {
		return fmt.Errorf("%w: response is %d bytes, op/count say %d", ErrMalformed, len(data), want)
	}
	resp.Op = op
	resp.Found = resp.Found[:0]
	resp.Values = resp.Values[:0]
	for i := 0; i < n; i++ {
		resp.Found = append(resp.Found, data[respHeaderLen+i>>3]>>(i&7)&1 == 1)
	}
	if op == OpGet {
		off := respHeaderLen + (n+7)/8
		for i := 0; i < n; i++ {
			resp.Values = append(resp.Values, binary.LittleEndian.Uint64(data[off+8*i:]))
		}
	}
	return nil
}

// jsonKeys is the JSON request body of the probe endpoints: exactly one
// of "key" or "keys" must be present.
type jsonKeys struct {
	Key  *uint64  `json:"key"`
	Keys []uint64 `json:"keys"`
}

// DecodeJSONKeys parses a {"key": k} or {"keys": [...]} body into req
// (the op comes from the route, not the body). It enforces the same
// MaxWireBatch bound as the binary parser and rejects bodies with
// both, neither, or an empty key list.
func DecodeJSONKeys(op byte, data []byte, req *Request) error {
	var body jsonKeys
	if err := json.Unmarshal(data, &body); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	switch {
	case body.Key != nil && body.Keys != nil:
		return fmt.Errorf(`%w: body has both "key" and "keys"`, ErrMalformed)
	case body.Key != nil:
		req.Op = op
		req.Keys = append(req.Keys[:0], *body.Key)
		return nil
	case len(body.Keys) > MaxWireBatch:
		return fmt.Errorf("%w: %d keys", ErrTooLarge, len(body.Keys))
	case len(body.Keys) > 0:
		req.Op = op
		req.Keys = append(req.Keys[:0], body.Keys...)
		return nil
	default:
		return fmt.Errorf(`%w: body needs "key" or a non-empty "keys"`, ErrMalformed)
	}
}

// DecodeRequest dispatches on content type: BinaryContentType selects
// the binary frame parser (which carries its own op); anything else is
// parsed as JSON with the route-supplied op. This is the single entry
// point the fuzz harness drives.
func DecodeRequest(contentType string, op byte, data []byte, req *Request) error {
	if contentType == BinaryContentType {
		return DecodeBinaryRequest(data, req)
	}
	return DecodeJSONKeys(op, data, req)
}
