package server

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRequestDecode throws arbitrary bytes at the single request-decode
// entry point (binary frames and JSON bodies) and checks the parser's
// contract: it either rejects with a typed error or returns a request
// that is in-bounds, canonical (binary re-encodes to the input bytes),
// and round-trips through the response encoder. The checked-in corpus
// under testdata/fuzz/FuzzRequestDecode seeds the interesting shapes:
// truncated frames, lying counts, oversized batches, malformed JSON.
func FuzzRequestDecode(f *testing.F) {
	// Valid inputs.
	f.Add([]byte(`{"key": 7}`), false)
	f.Add([]byte(`{"keys": [1, 2, 3]}`), false)
	f.Add(AppendBinaryRequest(nil, OpContains, []uint64{1, 2}), true)
	f.Add(AppendBinaryRequest(nil, OpGet, []uint64{^uint64(0)}), true)
	f.Add(AppendBinaryRequest(nil, OpContains, nil), true)
	// Malformed inputs.
	f.Add([]byte(`{`), false)
	f.Add([]byte(`{"key": 1, "keys": [2]}`), false)
	f.Add([]byte(`{"keys": []}`), false)
	f.Add([]byte("BQ"), true)
	f.Add(AppendBinaryRequest(nil, OpContains, []uint64{1, 2})[:12], true)         // truncated keys
	f.Add(append(AppendBinaryRequest(nil, OpContains, []uint64{1}), 0xee), true)   // trailing byte
	f.Add([]byte{'B', 'Q', wireVersion, OpContains, 0xff, 0xff, 0xff, 0xff}, true) // count = 4B keys
	f.Add([]byte{'B', 'R', wireVersion, OpContains, 1, 0, 0, 0, 1}, true)          // response magic as request
	f.Add([]byte{'B', 'Q', 99, OpContains, 0, 0, 0, 0}, true)                      // future version
	f.Add([]byte{'B', 'Q', wireVersion, 99, 0, 0, 0, 0}, true)                     // unknown op

	f.Fuzz(func(t *testing.T, data []byte, binary bool) {
		contentType := "application/json"
		if binary {
			contentType = BinaryContentType
		}
		req := Request{Keys: make([]uint64, 0, 8)} // exercise slice reuse
		err := DecodeRequest(contentType, OpContains, data, &req)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		if !validOp(req.Op) {
			t.Fatalf("accepted request with invalid op %d", req.Op)
		}
		if len(req.Keys) > MaxWireBatch {
			t.Fatalf("accepted %d keys, cap is %d", len(req.Keys), MaxWireBatch)
		}
		if !binary && len(req.Keys) == 0 {
			t.Fatal("JSON decode accepted an empty key set")
		}
		if binary {
			// The binary format is canonical: what decoded must re-encode
			// to the exact input bytes, or two different frames could mean
			// the same request.
			if again := AppendBinaryRequest(nil, req.Op, req.Keys); !bytes.Equal(again, data) {
				t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, again)
			}
		}
		// Any accepted request's answer must round-trip the response
		// frame exactly.
		found := make([]bool, len(req.Keys))
		values := make([]uint64, len(req.Keys))
		for i, k := range req.Keys {
			found[i] = k&1 == 1
			if req.Op == OpGet && found[i] {
				values[i] = k
			}
		}
		frame := AppendBinaryResponse(nil, req.Op, found, values)
		var resp Response
		if err := DecodeBinaryResponse(frame, &resp); err != nil {
			t.Fatalf("encoded response does not decode: %v", err)
		}
		if resp.Op != req.Op || len(resp.Found) != len(found) {
			t.Fatalf("response round trip changed shape: %+v", resp)
		}
		for i := range found {
			if resp.Found[i] != found[i] {
				t.Fatalf("found[%d] flipped across the wire", i)
			}
			if req.Op == OpGet && resp.Values[i] != values[i] {
				t.Fatalf("values[%d] corrupted across the wire", i)
			}
		}
	})
}
