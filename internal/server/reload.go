package server

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"beyondbloom/internal/concurrent"
	"beyondbloom/internal/core"
)

// FilterSnapshot is one immutable generation of the serving filter.
// Probes grab the current snapshot once and use it for a whole window,
// so a reload never splits a batch across two filters; old snapshots
// drain naturally as their in-flight windows finish.
type FilterSnapshot struct {
	Filter   core.Filter
	Gen      uint64 // monotonically increasing generation
	Path     string // source .bbf file ("" for the built-in filter)
	LoadedAt time.Time
	SizeBits int
}

// Mutable reports whether live inserts are allowed into this
// snapshot. Only the sharded wrapper is safe for concurrent
// Insert+Contains (each shard carries its own lock); a bare filter
// loaded from a .bbf serves read-only.
func (s *FilterSnapshot) Mutable() *concurrent.Sharded {
	sh, _ := s.Filter.(*concurrent.Sharded)
	return sh
}

// filterHandle hands the serving filter off atomically: readers Load a
// snapshot pointer, Reload publishes a new one. There is no lock on
// the read path.
type filterHandle struct {
	cur atomic.Pointer[FilterSnapshot]
}

func (h *filterHandle) load() *FilterSnapshot { return h.cur.Load() }

// install publishes f as the next generation and returns its snapshot.
func (h *filterHandle) install(f core.Filter, path string) *FilterSnapshot {
	gen := uint64(1)
	if prev := h.cur.Load(); prev != nil {
		gen = prev.Gen + 1
	}
	snap := &FilterSnapshot{
		Filter:   f,
		Gen:      gen,
		Path:     path,
		LoadedAt: time.Now(),
		SizeBits: f.SizeBits(),
	}
	h.cur.Store(snap)
	return snap
}

// LoadFilterFile reads exactly one persisted filter from a .bbf file
// via the core registry. Trailing bytes after the filter's encoding
// are rejected — a half-written or concatenated file must not load as
// a smaller valid filter.
func LoadFilterFile(path string) (core.Persistent, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	r := bufio.NewReader(file)
	f, err := core.Load(r)
	if err != nil {
		return nil, fmt.Errorf("server: loading %s: %w", path, err)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("server: %s has trailing bytes after the filter frame", path)
	}
	return f, nil
}
