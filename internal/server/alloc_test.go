package server

import (
	"testing"
	"time"

	"beyondbloom/internal/lsm"
)

// TestProbeFrameZeroAlloc pins the binary probe handler's allocation
// contract: at steady state (scratch warm), decoding a frame, probing
// the batch, and encoding the response allocates nothing — the whole
// request is slice reuse over pooled buffers.
func TestProbeFrameZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	store, err := lsm.NewStore(lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	e, err := NewEngine(newTestFilter(t, 1<<16), store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := New(e)

	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i) * 7
		if i%2 == 0 {
			if err := e.Insert(keys[i]); err != nil {
				t.Fatal(err)
			}
		}
		if i%4 == 0 {
			if err := e.Apply(lsm.Entry{Key: keys[i], Value: keys[i] + 1}); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, tc := range []struct {
		name string
		op   byte
	}{
		{"contains", OpContains},
		{"get", OpGet},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := &probeScratch{}
			frame := AppendBinaryRequest(nil, tc.op, keys)
			run := func() {
				sc.body = append(sc.body[:0], frame...)
				if _, err := s.probeFrame(sc); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the scratch slices
			if avg := testing.AllocsPerRun(100, run); avg != 0 {
				t.Fatalf("probeFrame(%s) allocates %.1f times per request at steady state, want 0", tc.name, avg)
			}
		})
	}
}

// TestEngineContainsBatchZeroAlloc pins the direct batch path the JSON
// batch handler and the experiment harness share.
func TestEngineContainsBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	e, err := NewEngine(newTestFilter(t, 1<<16), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	keys := make([]uint64, 256)
	out := make([]bool, 256)
	for i := range keys {
		keys[i] = uint64(i) * 13
	}
	run := func() {
		if err := e.ContainsBatch(keys, out); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("ContainsBatch allocates %.1f times per call, want 0", avg)
	}
}

// TestCoalescerAsyncAmortizedAllocs pins the open-loop coalescer path:
// windows are pooled, so per-request allocation at steady state is a
// small fraction of an allocation (the occasional pool refill), not
// one-plus per request.
func TestCoalescerAsyncAmortizedAllocs(t *testing.T) {
	c := NewCoalescer(256, time.Hour, func(keys, values []uint64, found []bool) error {
		for i := range keys {
			found[i] = keys[i]&1 == 1
		}
		return nil
	}, func(tag, value uint64, found bool, err error) {})
	defer c.Close()

	run := func() { // exactly one capacity-sealed window per run
		for i := uint64(0); i < 256; i++ {
			if err := c.EnqueueAsync(i, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	run()
	avg := testing.AllocsPerRun(100, run)
	if perReq := avg / 256; perReq > 0.05 {
		t.Fatalf("async coalescing allocates %.3f per request at steady state (%.1f per window), want amortized ~0", perReq, avg)
	}
}
