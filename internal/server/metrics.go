package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the service's counter block: plain atomics bumped on the
// hot paths (no locks, no maps, no allocation) and rendered on demand
// at /metrics (Prometheus text format) and /debug/vars (JSON). Every
// counter is monotonic, so the rendered output for a fixed request
// sequence is deterministic — the golden test pins it.
type Metrics struct {
	ReqContains      atomic.Int64
	ReqContainsBatch atomic.Int64
	ReqGet           atomic.Int64
	ReqGetBatch      atomic.Int64
	ReqPut           atomic.Int64
	ReqDelete        atomic.Int64
	ReqInsert        atomic.Int64
	ReqProbeBinary   atomic.Int64
	ReqReload        atomic.Int64

	ErrMalformed  atomic.Int64
	ErrTooLarge   atomic.Int64
	ErrOverload   atomic.Int64
	ErrShutdown   atomic.Int64
	ErrInternal   atomic.Int64
	RejectedRead  atomic.Int64
	RejectedWrite atomic.Int64

	Reloads atomic.Int64
}

// metricPoint is one rendered sample: a name, optional label pair, and
// value. Both renderers iterate the same gather slice, so /metrics and
// /debug/vars can never disagree on a counter.
type metricPoint struct {
	name        string
	label, lval string
	value       int64
}

// gather lists the server-owned counters in render order.
func (m *Metrics) gather() []metricPoint {
	return []metricPoint{
		{"filterd_requests_total", "op", "contains", m.ReqContains.Load()},
		{"filterd_requests_total", "op", "contains_batch", m.ReqContainsBatch.Load()},
		{"filterd_requests_total", "op", "get", m.ReqGet.Load()},
		{"filterd_requests_total", "op", "get_batch", m.ReqGetBatch.Load()},
		{"filterd_requests_total", "op", "put", m.ReqPut.Load()},
		{"filterd_requests_total", "op", "delete", m.ReqDelete.Load()},
		{"filterd_requests_total", "op", "insert", m.ReqInsert.Load()},
		{"filterd_requests_total", "op", "probe_binary", m.ReqProbeBinary.Load()},
		{"filterd_requests_total", "op", "reload", m.ReqReload.Load()},
		{"filterd_errors_total", "kind", "malformed", m.ErrMalformed.Load()},
		{"filterd_errors_total", "kind", "too_large", m.ErrTooLarge.Load()},
		{"filterd_errors_total", "kind", "overloaded", m.ErrOverload.Load()},
		{"filterd_errors_total", "kind", "shutdown", m.ErrShutdown.Load()},
		{"filterd_errors_total", "kind", "internal", m.ErrInternal.Load()},
		{"filterd_admission_rejected_total", "class", "read", m.RejectedRead.Load()},
		{"filterd_admission_rejected_total", "class", "write", m.RejectedWrite.Load()},
		{"filterd_reloads_total", "", "", m.Reloads.Load()},
	}
}

// gatherCoalescer flattens one coalescer's stats under a role label.
func gatherCoalescer(role string, s CoalescerStats) []metricPoint {
	prefix := "filterd_coalesce_"
	return []metricPoint{
		{prefix + "windows_total", "role", role, s.Windows},
		{prefix + "keys_total", "role", role, s.Keys},
		{prefix + "capacity_flushes_total", "role", role, s.CapacityFlushes},
		{prefix + "deadline_flushes_total", "role", role, s.DeadlineFlushes},
		{prefix + "close_flushes_total", "role", role, s.CloseFlushes},
		{prefix + "empty_deadline_fires_total", "role", role, s.EmptyDeadlines},
		{prefix + "rejected_total", "role", role, s.Rejected},
	}
}

// writeProm renders points in Prometheus text exposition format.
func writeProm(w io.Writer, points []metricPoint) {
	for _, p := range points {
		if p.label == "" {
			fmt.Fprintf(w, "%s %d\n", p.name, p.value)
		} else {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", p.name, p.label, p.lval, p.value)
		}
	}
}

// writeVars renders points as a flat JSON object, one
// "name.labelvalue" key per sample, matching expvar's spirit without
// its per-counter allocation. Points arrive in gather order, which is
// fixed, so the output is deterministic too.
func writeVars(w io.Writer, points []metricPoint, extra []metricPoint) {
	io.WriteString(w, "{")
	first := true
	emit := func(key string, v int64) {
		if !first {
			io.WriteString(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n  %q: %d", key, v)
	}
	for _, p := range append(points, extra...) {
		key := p.name
		if p.label != "" {
			key += "." + p.lval
		}
		emit(key, p.value)
	}
	io.WriteString(w, "\n}\n")
}
