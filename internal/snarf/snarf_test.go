package snarf

import (
	"math/rand"
	"sort"
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestRangeNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(10000, 1)
	f := New(keys, 8)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		k := keys[rng.Intn(len(keys))]
		span := rng.Uint64()%100000 + 1
		lo := k - rng.Uint64()%span
		if lo > k {
			lo = 0
		}
		hi := lo + span
		if hi < k {
			hi = k
		}
		if !f.MayContainRange(lo, hi) {
			t.Fatalf("range [%d,%d] contains %d but reported empty", lo, hi, k)
		}
	}
}

func TestPointNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(20000, 3)
	f := New(keys, 8)
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestEmptyRangeFiltering(t *testing.T) {
	// Uniform keys have a smooth CDF: SNARF's best case.
	keys := workload.Keys(20000, 5)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	f := New(keys, 8)
	qs := workload.UniformRanges(10000, 1<<30, ^uint64(0)-1<<31, 7)
	var empties [][2]uint64
	for _, q := range qs {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q.Lo })
		if i >= len(sorted) || sorted[i] > q.Hi {
			empties = append(empties, [2]uint64{q.Lo, q.Hi})
		}
	}
	if len(empties) < 100 {
		t.Skip("not enough empty queries at this density")
	}
	if fpr := metrics.RangeFPR(f, empties); fpr > 0.35 {
		t.Errorf("empty-range FPR %g — SNARF should filter most", fpr)
	}
}

func TestExpansionTradesSpaceForFPR(t *testing.T) {
	keys := workload.Keys(20000, 9)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	emptyQueries := func() [][2]uint64 {
		qs := workload.UniformRanges(10000, 1<<28, ^uint64(0)-1<<29, 11)
		var out [][2]uint64
		for _, q := range qs {
			i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q.Lo })
			if i >= len(sorted) || sorted[i] > q.Hi {
				out = append(out, [2]uint64{q.Lo, q.Hi})
			}
		}
		return out
	}()
	small := New(keys, 2)
	big := New(keys, 16)
	fprSmall := metrics.RangeFPR(small, emptyQueries)
	fprBig := metrics.RangeFPR(big, emptyQueries)
	if fprBig >= fprSmall {
		t.Errorf("expansion 16 FPR %g not below expansion 2 FPR %g", fprBig, fprSmall)
	}
	if big.SizeBits() <= small.SizeBits() {
		t.Errorf("larger expansion should cost more space")
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := New(nil, 8)
	if empty.Contains(1) || empty.MayContainRange(0, ^uint64(0)) {
		t.Fatal("empty filter claims content")
	}
	single := New([]uint64{42}, 8)
	if !single.Contains(42) {
		t.Fatal("singleton lost")
	}
	if !single.MayContainRange(40, 50) {
		t.Fatal("covering range reported empty")
	}
	dup := New([]uint64{5, 5, 5, 9}, 8)
	if dup.Len() != 2 {
		t.Fatalf("Len = %d", dup.Len())
	}
}

func TestInvertedRange(t *testing.T) {
	f := New([]uint64{10}, 8)
	if f.MayContainRange(20, 10) {
		t.Fatal("inverted range must be empty")
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	keys := workload.Keys(1<<20, 13)
	f := New(keys, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i) * 0x9E3779B97F4A7C15
		f.MayContainRange(lo, lo+1<<20)
	}
}
