// Package snarf implements SNARF (Vaidya et al., §2.5 of the tutorial):
// a "learned" range filter. A monotone linear-spline model of the keys'
// cumulative distribution maps every key to a position in a sparse bit
// array of m = n·expansion slots; the positions of set bits are stored
// compressed (Elias–Fano). A range query maps its endpoints through the
// same model and reports empty iff no stored position falls between
// them. Monotonicity of the model guarantees no false negatives; the
// expansion factor controls the false-positive rate (about 1/expansion
// per unit of range after mapping). SNARF shines when the key
// distribution is smooth — the model then spreads keys uniformly — which
// is the "learned" trade-off the tutorial describes.
package snarf

import (
	"sort"

	"beyondbloom/internal/core"
	"beyondbloom/internal/ef"
)

// splineSample is the model granularity: one knot per this many keys.
const splineSample = 64

// Filter is an immutable SNARF.
type Filter struct {
	knotKeys []uint64 // spline knot x-coordinates (sorted keys)
	knotPos  []uint64 // cumulative rank at each knot
	bits     *ef.Sequence
	m        uint64 // sparse bit-array size
	n        int
}

// New builds a SNARF over keys with the given expansion factor (bit-array
// slots per key; typical values 4-16, trading space for FPR).
func New(keys []uint64, expansion float64) *Filter {
	if expansion < 1 {
		panic("snarf: expansion must be >= 1")
	}
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sorted = dedupSorted(sorted)
	n := len(sorted)
	f := &Filter{n: n, m: uint64(float64(n)*expansion) + 1}
	if n == 0 {
		f.bits = ef.New(nil, 1)
		return f
	}
	// Spline knots: every splineSample-th key plus the extremes.
	for i := 0; i < n; i += splineSample {
		f.knotKeys = append(f.knotKeys, sorted[i])
		f.knotPos = append(f.knotPos, uint64(i))
	}
	if f.knotKeys[len(f.knotKeys)-1] != sorted[n-1] {
		f.knotKeys = append(f.knotKeys, sorted[n-1])
		f.knotPos = append(f.knotPos, uint64(n-1))
	}
	// Map every key through the model into the sparse array.
	positions := make([]uint64, n)
	for i, k := range sorted {
		positions[i] = f.position(k)
	}
	// Model monotonicity makes positions non-decreasing already.
	f.bits = ef.New(positions, f.m+1)
	return f
}

func dedupSorted(keys []uint64) []uint64 {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

// position maps a key through the spline CDF model to a slot in [0, m].
func (f *Filter) position(key uint64) uint64 {
	nk := len(f.knotKeys)
	if key <= f.knotKeys[0] {
		if key < f.knotKeys[0] {
			return 0
		}
		return f.rankToPos(f.knotPos[0])
	}
	if key >= f.knotKeys[nk-1] {
		if key > f.knotKeys[nk-1] {
			return f.m
		}
		return f.rankToPos(f.knotPos[nk-1])
	}
	// Binary search for the knot interval containing key (now strictly
	// inside the knot span, so 1 <= i <= nk-1).
	i := sort.Search(nk, func(i int) bool { return f.knotKeys[i] >= key })
	x0, x1 := f.knotKeys[i-1], f.knotKeys[i]
	r0, r1 := f.knotPos[i-1], f.knotPos[i]
	frac := float64(key-x0) / float64(x1-x0)
	rank := float64(r0) + frac*float64(r1-r0)
	return f.rankToPos64(rank)
}

func (f *Filter) rankToPos(rank uint64) uint64 {
	return f.rankToPos64(float64(rank))
}

func (f *Filter) rankToPos64(rank float64) uint64 {
	pos := uint64(rank / float64(f.n) * float64(f.m))
	if pos > f.m {
		pos = f.m
	}
	return pos
}

// MayContainRange reports whether [lo, hi] may contain a key.
func (f *Filter) MayContainRange(lo, hi uint64) bool {
	if lo > hi || f.n == 0 {
		return false
	}
	return !f.bits.RangeEmpty(f.position(lo), f.position(hi))
}

// Contains is a point query: the mapped slot must be occupied.
func (f *Filter) Contains(key uint64) bool {
	return f.MayContainRange(key, key)
}

// Len returns the number of distinct keys encoded.
func (f *Filter) Len() int { return f.n }

// SizeBits returns the Elias–Fano payload plus the spline model (two
// 64-bit words per knot).
func (f *Filter) SizeBits() int {
	return f.bits.SizeBits() + len(f.knotKeys)*128
}

var _ core.RangeFilter = (*Filter)(nil)
