package adaptive

import (
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
	"beyondbloom/internal/quotient"
)

// ExtendPolicy selects how far an adaptivity extension grows per fix.
type ExtendPolicy int

const (
	// ExtendUntilDistinct grows the stored fingerprint's extension to the
	// first bit separating it from the querying key in one correction —
	// the broom filter's policy, giving monotone adaptivity.
	ExtendUntilDistinct ExtendPolicy = iota
	// ExtendOneBit grows the extension one bit per correction — the
	// telescoping filter's incremental policy (cheaper per fix, may need
	// several fixes for one colliding pair).
	ExtendOneBit
)

// maxExtBits caps extension length (bits of hash above the fingerprint).
const maxExtBits = 32

// ext is an adaptivity extension for one stored key sharing a
// fingerprint: bits of the stored key's hash directly above the
// fingerprint bits.
type ext struct {
	key  uint64 // the stored key (lives in the remote representation)
	bits uint32
	len  uint8
}

// QF is an adaptive quotient filter: a quotient filter plus an extension
// table holding adaptivity bits for fingerprints that have produced
// false positives. Its remote representation (the original keys grouped
// by fingerprint) lets Adapt compute extensions; remote accesses are
// counted so experiments can report the cost adaptivity is saving.
type QF struct {
	qf     *quotient.Filter
	policy ExtendPolicy
	// remote maps fingerprint -> stored keys with that fingerprint. This
	// stands in for the dictionary's own storage (not charged to the
	// filter's size).
	remote map[uint64][]uint64
	// extensions maps fingerprint -> extensions (parallel to remote,
	// possibly shorter: keys with no collisions yet have no extension).
	extensions map[uint64][]ext
	q, r       uint
	seed       uint64
	adapts     int
	extBits    int // total adaptivity bits stored (space accounting)
}

// NewQF returns an adaptive quotient filter with 2^q slots and r-bit
// remainders.
func NewQF(q, r uint, policy ExtendPolicy) *QF {
	const seed = 0xADAF7
	return &QF{
		// The underlying filter shares our seed so its fingerprint space
		// is exactly fingerprintOf's: extensions then cover every
		// fingerprint-level collision the filter can produce.
		qf:         quotient.NewWithSeed(q, r, seed),
		policy:     policy,
		remote:     make(map[uint64][]uint64),
		extensions: make(map[uint64][]ext),
		q:          q,
		r:          r,
		seed:       seed,
	}
}

// fingerprint mirrors the quotient filter's key hashing but is computed
// here so extension bits can come from the same hash stream.
func (a *QF) hash(key uint64) uint64 { return hashutil.MixSeed(key, a.seed) }

func (a *QF) fingerprintOf(key uint64) uint64 {
	return a.hash(key) & hashutil.Mask(a.q+a.r)
}

// extOf returns length bits of key's hash directly above the fingerprint.
func (a *QF) extOf(key uint64, length uint8) uint32 {
	return uint32((a.hash(key) >> (a.q + a.r)) & hashutil.Mask(uint(length)))
}

// Insert adds key.
func (a *QF) Insert(key uint64) error {
	if err := a.qf.Insert(key); err != nil {
		return err
	}
	fp := a.fingerprintOf(key)
	a.remote[fp] = append(a.remote[fp], key)
	return nil
}

// Contains reports whether key may be present, consulting extensions.
func (a *QF) Contains(key uint64) bool {
	if !a.qf.Contains(key) {
		return false
	}
	fp := a.fingerprintOf(key)
	exts := a.extensions[fp]
	if len(exts) == 0 {
		return true
	}
	// The fingerprint matched and extensions exist: key matches only if
	// some stored key's extension agrees with key's hash at that length.
	for _, e := range exts {
		if a.extOf(key, e.len) == e.bits {
			return true
		}
	}
	// Keys in the remote without an extension entry still match on the
	// bare fingerprint.
	return len(exts) < len(a.remote[fp])
}

// Adapt fixes a false positive: every stored key sharing key's
// fingerprint gets (or grows) an extension so that Contains(key) becomes
// false. Each fix consults the remote representation.
func (a *QF) Adapt(key uint64) {
	fp := a.fingerprintOf(key)
	stored := a.remote[fp]
	if len(stored) == 0 {
		return // genuine fingerprint-level false positive with no owner:
		// nothing to extend; cannot occur when all inserts go through us.
	}
	exts := a.extensions[fp]
	// Index extensions by stored key.
	byKey := make(map[uint64]int, len(exts))
	for i, e := range exts {
		byKey[e.key] = i
	}
	for _, sk := range stored {
		if sk == key {
			continue // true positive
		}
		idx, has := byKey[sk]
		var cur ext
		if has {
			cur = exts[idx]
		} else {
			cur = ext{key: sk}
		}
		newLen := cur.len
		switch a.policy {
		case ExtendOneBit:
			if a.extOf(key, newLen) == a.extOf(sk, newLen) && newLen < maxExtBits {
				newLen++
			}
		case ExtendUntilDistinct:
			for newLen < maxExtBits && a.extOf(key, newLen) == a.extOf(sk, newLen) {
				newLen++
			}
		}
		a.extBits += int(newLen - cur.len)
		cur.len = newLen
		cur.bits = uint32(a.extOf(sk, newLen))
		if has {
			exts[idx] = cur
		} else {
			exts = append(exts, cur)
		}
	}
	a.extensions[fp] = exts
	a.adapts++
}

// Delete removes key.
func (a *QF) Delete(key uint64) error {
	fp := a.fingerprintOf(key)
	stored := a.remote[fp]
	found := -1
	for i, sk := range stored {
		if sk == key {
			found = i
			break
		}
	}
	if found < 0 {
		return core.ErrNotFound
	}
	a.remote[fp] = append(stored[:found], stored[found+1:]...)
	if len(a.remote[fp]) == 0 {
		delete(a.remote, fp)
		delete(a.extensions, fp)
		return a.qf.Delete(key)
	}
	// Other keys share the fingerprint: keep it in the filter, drop this
	// key's extension if any.
	exts := a.extensions[fp]
	for i, e := range exts {
		if e.key == key {
			a.extBits -= int(e.len)
			a.extensions[fp] = append(exts[:i], exts[i+1:]...)
			break
		}
	}
	return nil
}

// Adaptations returns how many Adapt calls did structural work.
func (a *QF) Adaptations() int { return a.adapts }

// Len returns the number of stored keys.
func (a *QF) Len() int {
	n := 0
	for _, ks := range a.remote {
		n += len(ks)
	}
	return n
}

// SizeBits charges the quotient filter plus the adaptivity bits (the
// broom filter keeps those in a compact side table; we charge the bits
// themselves plus a small per-extension header, not the Go map).
func (a *QF) SizeBits() int {
	nExts := 0
	for _, e := range a.extensions {
		nExts += len(e)
	}
	return a.qf.SizeBits() + a.extBits + nExts*8
}

var _ core.AdaptiveFilter = (*QF)(nil)
