package adaptive

import (
	"context"
	"testing"
	"time"

	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

// buildResilient inserts keys into a fresh adaptive cuckoo filter and an
// exact remote, wrapped with the given injector and options.
func buildResilient(t *testing.T, n int, in *fault.Injector, opts ResilientOptions) (*Resilient, []uint64) {
	t.Helper()
	f := NewCuckoo(n, 10)
	set := core.NewMapSet()
	keys := workload.Keys(n, 21)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
		set.Insert(k)
	}
	return NewResilient(f, fault.NewFallibleSet(set, in), opts), keys
}

func TestResilientNoFalseNegativesUnderTotalFailure(t *testing.T) {
	// Even with every remote call failing, inserted keys must stay
	// present: degradation is fail-safe.
	r, keys := buildResilient(t, 5000, fault.NewInjector(2, fault.Transient(1.0)), ResilientOptions{})
	ctx := context.Background()
	for _, k := range keys {
		if !r.Contains(ctx, k) {
			t.Fatalf("false negative on %d under total remote failure", k)
		}
	}
	if s := r.Stats(); s.RemoteErrors == 0 || s.Adapts != 0 {
		t.Fatalf("stats = %+v: expected errors and no adapts", s)
	}
}

func TestResilientRepairsFalsePositives(t *testing.T) {
	r, _ := buildResilient(t, 5000, fault.NewInjector(2), ResilientOptions{})
	ctx := context.Background()
	neg := workload.DisjointKeys(50000, 21)
	for _, k := range neg {
		if r.Contains(ctx, k) {
			t.Fatalf("healthy remote: Contains must return ground truth for %d", k)
		}
	}
	s := r.Stats()
	if s.Adapts == 0 {
		t.Fatal("no false positives discovered at this size/seed")
	}
	// Every discovered false positive was adapted away: a replay of the
	// same negatives barely touches the remote.
	for _, k := range neg {
		r.Contains(ctx, k)
	}
	s2 := r.Stats()
	if replay := s2.RemoteAccesses - s.RemoteAccesses; replay >= s.Adapts {
		t.Fatalf("replay hit the remote %d times, first pass repaired %d", replay, s.Adapts)
	}
}

func TestResilientDeferredRepairCompletesOnRetry(t *testing.T) {
	// Find a false positive with a clean probe filter, then query it
	// through a remote that fails exactly once.
	f := NewCuckoo(2000, 8)
	set := core.NewMapSet()
	for _, k := range workload.Keys(2000, 31) {
		f.Insert(k)
		set.Insert(k)
	}
	var fp uint64
	found := false
	for _, k := range workload.DisjointKeys(200000, 31) {
		if f.Contains(k) {
			fp, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no false positive found")
	}
	// First remote call fails, all later ones succeed.
	in := fault.NewInjector(3, fault.TransientBetween(1.0, 1, 2))
	r := NewResilient(f, fault.NewFallibleSet(set, in), ResilientOptions{})
	ctx := context.Background()
	if !r.Contains(ctx, fp) {
		t.Fatal("unverifiable positive must be reported present")
	}
	if r.PendingRepairs() != 1 {
		t.Fatalf("PendingRepairs = %d, want 1", r.PendingRepairs())
	}
	if r.Contains(ctx, fp) {
		t.Fatal("second hit should verify and repair")
	}
	s := r.Stats()
	if s.RepairedLater != 1 || s.Adapts != 1 || r.PendingRepairs() != 0 {
		t.Fatalf("stats = %+v pending=%d", s, r.PendingRepairs())
	}
	if r.Contains(ctx, fp) {
		t.Fatal("repaired key resurfaced")
	}
}

func TestResilientRetrierMasksTransients(t *testing.T) {
	// 30% transient errors, 4 attempts: almost every verification
	// succeeds, so false positives get repaired and negatives converge.
	in := fault.NewInjector(11, fault.Transient(0.3))
	r, keys := buildResilient(t, 5000, in, ResilientOptions{
		Retrier: fault.NewRetrier(fault.RetryPolicy{MaxAttempts: 4, Sleep: fault.NoSleep}),
	})
	ctx := context.Background()
	neg := workload.DisjointKeys(20000, 77)
	for _, k := range neg {
		r.Contains(ctx, k)
	}
	s := r.Stats()
	if s.Adapts == 0 {
		t.Fatalf("no repairs happened: %+v", s)
	}
	// With retries, ultimate failures should be far rarer than the raw
	// 30% error rate (p^4 ~ 0.8%).
	if float64(s.RemoteErrors) > 0.05*float64(s.RemoteAccesses) {
		t.Fatalf("retry not masking transients: %d/%d failed", s.RemoteErrors, s.RemoteAccesses)
	}
	for _, k := range keys {
		if !r.Contains(ctx, k) {
			t.Fatalf("false negative on %d", k)
		}
	}
}

func TestResilientBreakerShedsLoad(t *testing.T) {
	clk := time.Unix(0, 0)
	in := fault.NewInjector(13, fault.Transient(1.0))
	br := fault.NewBreaker(fault.BreakerOptions{
		FailureThreshold: 5,
		Cooldown:         time.Hour, // never half-opens during this test
		Now:              func() time.Time { return clk },
	})
	f := NewCuckoo(2000, 8)
	set := core.NewMapSet()
	for _, k := range workload.Keys(2000, 41) {
		f.Insert(k)
		set.Insert(k)
	}
	fs := fault.NewFallibleSet(set, in)
	r := NewResilient(f, fs, ResilientOptions{Breaker: br})
	ctx := context.Background()
	// Positives keep arriving; after 5 failures the breaker opens and
	// the remote stops being called at all.
	keys := workload.Keys(2000, 41)
	for _, k := range keys[:200] {
		if !r.Contains(ctx, k) {
			t.Fatalf("false negative on %d", k)
		}
	}
	if br.State() != fault.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}
	if got := in.Stats().Ops; got != 5 {
		t.Fatalf("remote saw %d calls, want exactly the 5 pre-trip ones", got)
	}
	if s := br.Stats(); s.Rejections != 195 {
		t.Fatalf("rejections = %d, want 195", s.Rejections)
	}
}

func TestResilientMatchesPlainAdaptiveWhenHealthy(t *testing.T) {
	// With a clean injector the resilient loop must behave exactly like
	// the bare filter + exact remote.
	n := 3000
	plain := NewCuckoo(n, 10)
	set := core.NewMapSet()
	keys := workload.Keys(n, 51)
	for _, k := range keys {
		plain.Insert(k)
		set.Insert(k)
	}
	r := NewResilient(plain, core.AsFallible(set), ResilientOptions{})
	ctx := context.Background()
	neg := workload.DisjointKeys(10000, 52)
	for _, k := range neg {
		if r.Contains(ctx, k) {
			t.Fatalf("ground-truth negative %d reported present", k)
		}
	}
	if fn := metrics.FalseNegatives(plain, keys); fn != 0 {
		t.Fatalf("%d false negatives after repairs", fn)
	}
}
