// Package adaptive implements the adaptive filters of §2.3: filters that
// repair themselves when a false positive is discovered, so that no
// negative query — even one chosen adversarially and repeated — keeps
// paying the false-positive cost. Two designs are provided:
//
//   - Cuckoo: the adaptive cuckoo filter (Mitzenmacher et al.): each slot
//     carries a small selector choosing among several fingerprint
//     functions; fixing a false positive re-fingerprints the colliding
//     stored item with the next selector.
//
//   - QF: a broom-filter-style adaptive quotient filter (Bender et al.;
//     Wen et al.'s practical AQF): the filter keeps the quotient filter's
//     fingerprints and, when a false positive is found, extends the
//     colliding stored fingerprint with adaptivity bits taken from the
//     stored key's own hash until it no longer matches the querying key.
//     With ExtendOneBit the extension grows one bit per correction — the
//     telescoping filter's policy; with ExtendUntilDistinct it grows to
//     the first separating bit in one shot — the broom filter's.
//
// Both designs need access to the stored keys to re-fingerprint or
// extend: that is the "remote representation" of the broom-filter model
// (the dictionary on disk that the filter guards). Here the remote is
// kept inline as a fingerprint-indexed map of original keys; its space
// is *not* charged to SizeBits, exactly as a filter does not get charged
// for the database it fronts.
package adaptive

import (
	"beyondbloom/internal/bitvec"
	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// Cuckoo is an adaptive cuckoo filter.
type Cuckoo struct {
	slots      *bitvec.Packed // fingerprint<<2 | selector; fp 0 = empty
	stored     [][]uint64     // original key per slot (the remote representation)
	numBuckets uint64
	fpBits     uint
	seed       uint64
	n          int
	rngState   uint64
	adapts     int
}

const (
	bucketSize   = 4
	maxKicks     = 500
	numSelectors = 4 // 2 selector bits per slot
)

// NewCuckoo returns an adaptive cuckoo filter for about n keys with
// fpBits-bit fingerprints.
func NewCuckoo(n int, fpBits uint) *Cuckoo {
	if fpBits < 2 || fpBits > 30 {
		panic("adaptive: fingerprint bits must be in [2,30]")
	}
	buckets := uint64(1)
	for float64(buckets*bucketSize)*0.95 < float64(n) {
		buckets <<= 1
	}
	return &Cuckoo{
		slots:      bitvec.NewPacked(int(buckets*bucketSize), fpBits+2),
		stored:     make([][]uint64, buckets*bucketSize/8+1),
		numBuckets: buckets,
		fpBits:     fpBits,
		seed:       0xADA97,
		rngState:   0x1234567890ABCDEF,
	}
}

func (c *Cuckoo) bucketOf(key uint64) uint64 {
	return (hashutil.MixSeed(key, c.seed) >> 32) & (c.numBuckets - 1)
}

// fpOf computes key's fingerprint under selector s.
func (c *Cuckoo) fpOf(key uint64, s uint64) uint64 {
	return hashutil.Fingerprint(hashutil.MixSeed(key, c.seed^(s+1)*0xF00D), c.fpBits)
}

func (c *Cuckoo) altIndex(i, fp uint64) uint64 {
	// The partner bucket must not depend on the (mutable) selector, so it
	// is derived from the slot-independent base hash... but kicking only
	// has the fingerprint. ACF sidesteps this by keeping the stored keys;
	// we do the same: relocation recomputes buckets from the stored key.
	return (i ^ hashutil.Mix64(fp)) & (c.numBuckets - 1)
}

func (c *Cuckoo) slotKey(idx int) uint64 {
	return c.storedGet(idx)
}

// stored keys live in a flat array parallel to slots.
func (c *Cuckoo) storedGet(idx int) uint64 {
	blk, off := idx/8, idx%8
	if c.stored[blk] == nil {
		return 0
	}
	return c.stored[blk][off]
}

func (c *Cuckoo) storedSet(idx int, key uint64) {
	blk, off := idx/8, idx%8
	if c.stored[blk] == nil {
		c.stored[blk] = make([]uint64, 8)
	}
	c.stored[blk][off] = key
}

func (c *Cuckoo) getSlot(bucket uint64, s int) (fp, sel uint64) {
	v := c.slots.Get(int(bucket)*bucketSize + s)
	return v >> 2, v & 3
}

func (c *Cuckoo) setSlot(bucket uint64, s int, fp, sel uint64) {
	c.slots.Set(int(bucket)*bucketSize+s, fp<<2|sel)
}

func (c *Cuckoo) nextRand() uint64 {
	x := c.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// bucketsFor returns the two candidate buckets of a key.
func (c *Cuckoo) bucketsFor(key uint64) (uint64, uint64) {
	i1 := c.bucketOf(key)
	// The pair is derived from the selector-0 fingerprint so it is stable
	// across selector swaps.
	fp0 := c.fpOf(key, 0)
	return i1, c.altIndex(i1, fp0)
}

func (c *Cuckoo) tryInsertAt(bucket uint64, key uint64) bool {
	for s := 0; s < bucketSize; s++ {
		if fp, _ := c.getSlot(bucket, s); fp == 0 {
			c.setSlot(bucket, s, c.fpOf(key, 0), 0)
			c.storedSet(int(bucket)*bucketSize+s, key)
			return true
		}
	}
	return false
}

// Insert adds key.
func (c *Cuckoo) Insert(key uint64) error {
	i1, i2 := c.bucketsFor(key)
	if c.tryInsertAt(i1, key) || c.tryInsertAt(i2, key) {
		c.n++
		return nil
	}
	cur := i1
	if c.nextRand()&1 == 0 {
		cur = i2
	}
	curKey := key
	for k := 0; k < maxKicks; k++ {
		s := int(c.nextRand() % bucketSize)
		victim := c.slotKey(int(cur)*bucketSize + s)
		c.setSlot(cur, s, c.fpOf(curKey, 0), 0)
		c.storedSet(int(cur)*bucketSize+s, curKey)
		curKey = victim
		b1, b2 := c.bucketsFor(curKey)
		next := b1
		if next == cur {
			next = b2
		}
		cur = next
		if c.tryInsertAt(cur, curKey) {
			c.n++
			return nil
		}
	}
	return core.ErrFull
}

// Contains reports whether key may be present, honoring per-slot
// selectors.
func (c *Cuckoo) Contains(key uint64) bool {
	i1, i2 := c.bucketsFor(key)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < bucketSize; s++ {
			fp, sel := c.getSlot(b, s)
			if fp == 0 {
				continue
			}
			if fp == c.fpOf(key, sel) {
				return true
			}
		}
		if i1 == i2 {
			break
		}
	}
	return false
}

// Adapt fixes a false positive for key: every slot currently matching
// key's fingerprint is re-fingerprinted from its stored key with the
// next selector, after which Contains(key) is false (unless the stored
// key still collides under the new selector, probability 2^-fpBits per
// slot).
func (c *Cuckoo) Adapt(key uint64) {
	i1, i2 := c.bucketsFor(key)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < bucketSize; s++ {
			fp, sel := c.getSlot(b, s)
			if fp == 0 || fp != c.fpOf(key, sel) {
				continue
			}
			storedKey := c.slotKey(int(b)*bucketSize + s)
			if storedKey == key {
				continue // true positive, nothing to fix
			}
			newSel := (sel + 1) % numSelectors
			c.setSlot(b, s, c.fpOf(storedKey, newSel), newSel)
			c.adapts++
		}
		if i1 == i2 {
			break
		}
	}
}

// Delete removes key if its slot holds exactly this key.
func (c *Cuckoo) Delete(key uint64) error {
	i1, i2 := c.bucketsFor(key)
	for _, b := range [2]uint64{i1, i2} {
		for s := 0; s < bucketSize; s++ {
			idx := int(b)*bucketSize + s
			if fp, _ := c.getSlot(b, s); fp != 0 && c.slotKey(idx) == key {
				c.setSlot(b, s, 0, 0)
				c.storedSet(idx, 0)
				c.n--
				return nil
			}
		}
		if i1 == i2 {
			break
		}
	}
	return core.ErrNotFound
}

// Adaptations returns how many selector swaps have occurred.
func (c *Cuckoo) Adaptations() int { return c.adapts }

// Len returns the number of stored keys.
func (c *Cuckoo) Len() int { return c.n }

// SizeBits charges the filter table only (fingerprints + selectors); the
// stored-key array models the remote dictionary, which the application
// pays for anyway.
func (c *Cuckoo) SizeBits() int { return c.slots.SizeBits() }

var _ core.AdaptiveFilter = (*Cuckoo)(nil)
