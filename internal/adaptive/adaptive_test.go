package adaptive

import (
	"testing"

	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func TestCuckooNoFalseNegatives(t *testing.T) {
	keys := workload.Keys(10000, 1)
	c := NewCuckoo(len(keys), 12)
	for _, k := range keys {
		if err := c.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(c, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestCuckooAdaptFixesRepeatedFP(t *testing.T) {
	keys := workload.Keys(20000, 2)
	c := NewCuckoo(len(keys), 10) // coarse fingerprints: FPs findable
	for _, k := range keys {
		c.Insert(k)
	}
	neg := workload.DisjointKeys(500000, 2)
	var fpKey uint64
	found := false
	for _, k := range neg {
		if c.Contains(k) {
			fpKey = k
			found = true
			break
		}
	}
	if !found {
		t.Skip("no false positive found to adapt away")
	}
	c.Adapt(fpKey)
	if c.Contains(fpKey) {
		t.Fatal("false positive survived Adapt")
	}
	// Stored keys must all still be present after the selector swap.
	if fn := metrics.FalseNegatives(c, keys); fn != 0 {
		t.Fatalf("%d false negatives introduced by Adapt", fn)
	}
}

func TestCuckooAdversarialRepeatAttack(t *testing.T) {
	// The §2.3 scenario: an adversary finds one FP and repeats it. An
	// adaptive filter pays O(1) total, a static one pays every time.
	keys := workload.Keys(20000, 3)
	c := NewCuckoo(len(keys), 10)
	for _, k := range keys {
		c.Insert(k)
	}
	neg := workload.DisjointKeys(500000, 3)
	var fpKey uint64
	found := false
	for _, k := range neg {
		if c.Contains(k) {
			fpKey = k
			found = true
			break
		}
	}
	if !found {
		t.Skip("no FP found")
	}
	falseHits := 0
	for i := 0; i < 1000; i++ {
		if c.Contains(fpKey) {
			falseHits++
			c.Adapt(fpKey) // application fixes on discovery
		}
	}
	if falseHits > 4 {
		t.Errorf("repeated attack produced %d false hits; adaptive filter should stop after ~1", falseHits)
	}
}

func TestCuckooDelete(t *testing.T) {
	keys := workload.Keys(1000, 5)
	c := NewCuckoo(len(keys), 12)
	for _, k := range keys {
		c.Insert(k)
	}
	for _, k := range keys[:500] {
		if err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(c, keys[500:]); fn != 0 {
		t.Fatalf("%d false negatives after deletes", fn)
	}
	if c.Len() != 500 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestQFNoFalseNegatives(t *testing.T) {
	a := NewQF(14, 8, ExtendUntilDistinct)
	keys := workload.Keys(10000, 7)
	for _, k := range keys {
		if err := a.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(a, keys); fn != 0 {
		t.Fatalf("%d false negatives", fn)
	}
}

func TestQFAdaptBothPolicies(t *testing.T) {
	for _, policy := range []ExtendPolicy{ExtendUntilDistinct, ExtendOneBit} {
		a := NewQF(14, 6, policy) // coarse: FPs easy to find
		keys := workload.Keys(12000, 11)
		for _, k := range keys {
			a.Insert(k)
		}
		neg := workload.DisjointKeys(200000, 11)
		var fpKey uint64
		found := false
		for _, k := range neg {
			if a.Contains(k) {
				fpKey = k
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("policy %d: no FP found at r=6", policy)
		}
		// ExtendOneBit may need several rounds; UntilDistinct should fix
		// in one.
		rounds := 0
		for a.Contains(fpKey) && rounds < 64 {
			a.Adapt(fpKey)
			rounds++
		}
		if a.Contains(fpKey) {
			t.Fatalf("policy %d: FP never fixed", policy)
		}
		if policy == ExtendUntilDistinct && rounds > 1 {
			t.Errorf("broom policy took %d rounds, want 1", rounds)
		}
		// No false negatives introduced.
		if fn := metrics.FalseNegatives(a, keys); fn != 0 {
			t.Fatalf("policy %d: %d false negatives after adapt", policy, fn)
		}
	}
}

func TestQFMonotoneUnderAttack(t *testing.T) {
	// Total false positives over an adversarial stream stays O(distinct
	// FPs), i.e. adapting is permanent.
	a := NewQF(13, 6, ExtendUntilDistinct)
	keys := workload.Keys(6000, 13)
	for _, k := range keys {
		a.Insert(k)
	}
	neg := workload.DisjointKeys(3000, 13)
	totalFP := 0
	for round := 0; round < 10; round++ {
		for _, k := range neg {
			if a.Contains(k) {
				totalFP++
				a.Adapt(k)
			}
		}
	}
	// Every negative can fire at most a couple of times (first discovery
	// plus rare re-collision at longer extensions).
	if totalFP > len(neg)/2 {
		t.Errorf("total FPs %d over repeated scans — adaptivity not sticking", totalFP)
	}
}

func TestQFDelete(t *testing.T) {
	a := NewQF(12, 8, ExtendUntilDistinct)
	keys := workload.Keys(2000, 17)
	for _, k := range keys {
		a.Insert(k)
	}
	for _, k := range keys[:1000] {
		if err := a.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(a, keys[1000:]); fn != 0 {
		t.Fatalf("%d false negatives after deletes", fn)
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func BenchmarkCuckooAdapt(b *testing.B) {
	keys := workload.Keys(100000, 21)
	c := NewCuckoo(len(keys), 12)
	for _, k := range keys {
		c.Insert(k)
	}
	neg := workload.DisjointKeys(b.N, 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Contains(neg[i]) {
			c.Adapt(neg[i])
		}
	}
}
