package adaptive

import (
	"context"
	"sync"
	"time"

	"beyondbloom/internal/core"
	"beyondbloom/internal/fault"
)

// ResilientOptions configure the lookup-and-repair loop.
type ResilientOptions struct {
	// Retrier retries transient remote failures (nil: single attempt).
	Retrier *fault.Retrier
	// Breaker sheds remote load after repeated failures (nil: none).
	// While the circuit is open, positives go unverified and their
	// repairs are deferred instead of hammering a sick remote.
	Breaker *fault.Breaker
	// Timeout bounds each remote attempt (0: none).
	Timeout time.Duration
	// MaxDeferred caps the deferred-repair set (default 1024). Keys
	// evicted from a full set are simply re-deferred on their next hit,
	// so the cap bounds memory, not correctness.
	MaxDeferred int
}

// ResilientStats counts the loop's behavior.
type ResilientStats struct {
	Lookups         uint64 // Contains calls
	FilterNegatives uint64 // lookups the filter rejected outright
	RemoteAccesses  uint64 // verification calls issued to the remote
	RemoteErrors    uint64 // verifications that ultimately failed
	Adapts          uint64 // false positives repaired
	Deferred        uint64 // repairs postponed because the remote erred
	RepairedLater   uint64 // deferred repairs completed on a later hit
	DroppedDeferred uint64 // deferrals not recorded (set at MaxDeferred)
}

// Resilient is the adaptive-filter repair loop of §2.3 made robust to an
// unreliable remote: it verifies every filter positive against a
// FallibleRemote and repairs discovered false positives via Adapt, but
// when the remote errs it degrades gracefully — the positive is reported
// as-is (fail-safe), the repair is deferred, and a later hit on the same
// key retries the verification. Degradation never introduces a false
// negative: the filter is only consulted for negatives, and Adapt only
// runs after the remote definitively reports the key absent.
type Resilient struct {
	mu       sync.Mutex
	filter   core.AdaptiveFilter
	remote   core.FallibleRemote
	opts     ResilientOptions
	deferred map[uint64]struct{}
	stats    ResilientStats
}

// NewResilient wraps filter and remote with the given resilience policy.
func NewResilient(filter core.AdaptiveFilter, remote core.FallibleRemote, opts ResilientOptions) *Resilient {
	if opts.MaxDeferred == 0 {
		opts.MaxDeferred = 1024
	}
	return &Resilient{
		filter:   filter,
		remote:   remote,
		opts:     opts,
		deferred: make(map[uint64]struct{}),
	}
}

// verify asks the remote about key through the configured combinators:
// breaker outermost (an open circuit skips the retries entirely), then
// retry, then per-attempt timeout.
func (r *Resilient) verify(ctx context.Context, key uint64) (bool, error) {
	var present bool
	attempt := func(ctx context.Context) error {
		return fault.Timeout(ctx, r.opts.Timeout, func(ctx context.Context) error {
			ok, err := r.remote.Contains(ctx, key)
			if err == nil {
				present = ok
			}
			return err
		})
	}
	withRetry := attempt
	if r.opts.Retrier != nil {
		withRetry = func(ctx context.Context) error { return r.opts.Retrier.Do(ctx, attempt) }
	}
	var err error
	if r.opts.Breaker != nil {
		err = r.opts.Breaker.Do(ctx, withRetry)
	} else {
		err = withRetry(ctx)
	}
	return present, err
}

// Contains runs the full lookup: filter probe, remote verification of
// positives, repair (or deferred repair) of false positives. The answer
// is the ground truth whenever the remote is reachable, and the filter's
// (fail-safe) positive when it is not.
func (r *Resilient) Contains(ctx context.Context, key uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Lookups++
	if !r.filter.Contains(key) {
		r.stats.FilterNegatives++
		return false
	}
	r.stats.RemoteAccesses++
	r.mu.Unlock()
	present, err := r.verify(ctx, key)
	r.mu.Lock()
	if err != nil {
		r.stats.RemoteErrors++
		r.defer_(key)
		return true // unverifiable: fail safe, repair later
	}
	if present {
		// A definitive hit needs no repair; clear any stale deferral.
		delete(r.deferred, key)
		return true
	}
	r.filter.Adapt(key)
	r.stats.Adapts++
	if _, was := r.deferred[key]; was {
		delete(r.deferred, key)
		r.stats.RepairedLater++
	}
	return false
}

// defer_ records a pending repair; caller holds the lock.
func (r *Resilient) defer_(key uint64) {
	r.stats.Deferred++
	if _, ok := r.deferred[key]; ok {
		return
	}
	if len(r.deferred) >= r.opts.MaxDeferred {
		r.stats.DroppedDeferred++
		return
	}
	r.deferred[key] = struct{}{}
}

// PendingRepairs returns how many keys currently await a deferred
// repair.
func (r *Resilient) PendingRepairs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.deferred)
}

// Stats returns a snapshot of the loop counters.
func (r *Resilient) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// SizeBits reports the wrapped filter's footprint.
func (r *Resilient) SizeBits() int { return r.filter.SizeBits() }
