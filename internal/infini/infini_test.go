package infini

import (
	"errors"
	"testing"

	"beyondbloom/internal/core"
	"beyondbloom/internal/metrics"
	"beyondbloom/internal/workload"
)

func mustNew(t testing.TB, q uint) *Filter {
	t.Helper()
	f, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNoFalseNegativesAcrossExpansions(t *testing.T) {
	f := mustNew(t, 8) // 256 buckets; will expand ~8 times for 50k keys
	keys := workload.Keys(50000, 1)
	for _, k := range keys {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.Expansions() < 7 {
		t.Fatalf("expected many expansions, got %d", f.Expansions())
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives after %d expansions", fn, f.Expansions())
	}
}

func TestFPRStableAcrossExpansions(t *testing.T) {
	// The InfiniFilter headline: FPR stays roughly flat as the filter
	// doubles, unlike plain quotient-filter doubling.
	f := mustNew(t, 10)
	neg := workload.DisjointKeys(100000, 2)
	var rates []float64
	keyIdx := 0
	keys := workload.Keys(1<<17, 2)
	for target := 1 << 10; target <= 1<<16; target <<= 2 {
		for keyIdx < target {
			f.Insert(keys[keyIdx])
			keyIdx++
		}
		rates = append(rates, metrics.FPR(f, neg))
	}
	first, last := rates[0], rates[len(rates)-1]
	if first == 0 {
		first = 1e-6
	}
	if last > first*8 {
		t.Errorf("FPR grew from %g to %g across expansions — not stable", first, last)
	}
	if last > 0.01 {
		t.Errorf("final FPR %g too high for 16-bit fresh fingerprints", last)
	}
}

func TestDelete(t *testing.T) {
	f := mustNew(t, 6)
	keys := workload.Keys(2000, 3) // forces expansions
	for _, k := range keys {
		f.Insert(k)
	}
	for _, k := range keys[:1000] {
		if err := f.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if fn := metrics.FalseNegatives(f, keys[1000:]); fn != 0 {
		t.Fatalf("%d false negatives among survivors", fn)
	}
	if err := f.Delete(workload.DisjointKeys(1, 3)[0]); !errors.Is(err, core.ErrNotFound) {
		t.Logf("delete of absent key: %v (collision possible)", err)
	}
}

func TestVoidHandling(t *testing.T) {
	// Tiny fresh fingerprints aren't configurable, so force voids by
	// expanding more than FreshBits times: start at q=1 and insert
	// enough keys that entries survive >16 doublings.
	f := mustNew(t, 1)
	keys := workload.Keys(300000, 5)
	for _, k := range keys {
		f.Insert(k)
	}
	// q grew from 1 to ~19: early entries crossed 16 expansions.
	if f.Expansions() <= int(FreshBits) {
		t.Skip("not enough expansions to create voids")
	}
	if f.Voids() == 0 {
		t.Error("expected void entries after exhausting fingerprint bits")
	}
	if fn := metrics.FalseNegatives(f, keys); fn != 0 {
		t.Fatalf("%d false negatives with voids present", fn)
	}
}

func TestSizeGrowsLinearly(t *testing.T) {
	f := mustNew(t, 8)
	keys := workload.Keys(100000, 7)
	for _, k := range keys {
		f.Insert(k)
	}
	perKey := float64(f.SizeBits()) / float64(f.Len())
	if perKey > 30 {
		t.Errorf("bits/entry = %f, want around FreshBits+overhead", perKey)
	}
}

func BenchmarkInsertWithExpansion(b *testing.B) {
	f := mustNew(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := mustNew(b, 8)
	for i := 0; i < 1<<20; i++ {
		f.Insert(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
