package infini

import (
	"io"

	"beyondbloom/internal/codec"
	"beyondbloom/internal/core"
)

func init() {
	core.Register(core.TypeInfini, "infini",
		func() core.Persistent { return &Filter{} },
		func(s core.Spec) (core.Persistent, error) { return FromSpec(s) })
}

// TypeID returns the stable wire-format id (see core.Persistent).
func (f *Filter) TypeID() uint16 { return core.TypeInfini }

// WriteTo serializes the filter as one codec frame: the construction
// Spec (initial q + seed), the growth counters, and every bucket's
// (fingerprint, length) entries. The current table width is implied —
// q = Spec.Q + Expansions — so growth state survives the trip.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	spec := core.Spec{Type: core.TypeInfini, Q: uint8(f.q - uint(f.exps)), Seed: f.seed}
	spec.Encode(&e)
	e.U32(uint32(f.exps))
	e.U64(uint64(f.n))
	e.U64(uint64(f.voids))
	e.F64(f.maxLoad)
	// Buckets are short (maxLoad < 1 entry/bucket on average), so counts
	// are a byte with an escape, and fingerprints fit 16 bits by
	// construction (FreshBits wide at most).
	for _, bucket := range f.buckets {
		if len(bucket) < 255 {
			e.U8(uint8(len(bucket)))
		} else {
			e.U8(255)
			e.U64(uint64(len(bucket)))
		}
		for _, ent := range bucket {
			e.U16(uint16(ent.fp))
			e.U8(ent.len)
		}
	}
	return codec.WriteFrame(w, core.TypeInfini, e.Bytes())
}

// ReadFrom restores a filter written by WriteTo into the receiver,
// revalidating every entry (length within FreshBits, fingerprint within
// its length) and cross-checking the counters against the stored
// buckets. On error the receiver is left unchanged.
func (f *Filter) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, core.TypeInfini)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	spec := core.DecodeSpec(d)
	exps := int(d.U32())
	n := int(d.U64())
	voids := int(d.U64())
	maxLoad := d.F64()
	if d.Err() != nil {
		return 0, d.Err()
	}
	nf, err := FromSpec(spec)
	if err != nil {
		return 0, d.Corruptf("%v", err)
	}
	q := uint(spec.Q) + uint(exps)
	if q > 40 || n < 0 || voids < 0 || voids > n || !(maxLoad > 0 && maxLoad <= 1) {
		return 0, d.Corruptf("infini: header (q0=%d exps=%d n=%d voids=%d maxLoad=%v) invalid",
			spec.Q, exps, n, voids, maxLoad)
	}
	nf.q = q
	nf.exps = exps
	nf.maxLoad = maxLoad
	nf.buckets = make([][]entry, uint64(1)<<q)
	gotN, gotVoids := 0, 0
	for b := range nf.buckets {
		cnt := uint64(d.U8())
		if cnt == 255 {
			cnt = d.U64()
		}
		if d.Err() != nil {
			return 0, d.Err()
		}
		if cnt > uint64(n-gotN) {
			return 0, d.Corruptf("infini: bucket %d entry count %d exceeds remaining keys", b, cnt)
		}
		if cnt == 0 {
			continue
		}
		bucket := make([]entry, cnt)
		for i := range bucket {
			fp := uint32(d.U16())
			l := d.U8()
			if l > FreshBits || uint64(fp)>>l != 0 {
				return 0, d.Corruptf("infini: bucket %d entry %d (fp=%#x len=%d) malformed", b, i, fp, l)
			}
			bucket[i] = entry{fp: fp, len: l}
			if l == 0 {
				gotVoids++
			}
		}
		nf.buckets[b] = bucket
		gotN += int(cnt)
	}
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if gotN != n || gotVoids != voids {
		return 0, d.Corruptf("infini: stored entries (n=%d voids=%d) disagree with header (n=%d voids=%d)",
			gotN, gotVoids, n, voids)
	}
	nf.n = n
	nf.voids = voids
	*f = *nf
	return int64(codec.HeaderSize + len(payload)), nil
}

var _ core.Persistent = (*Filter)(nil)
