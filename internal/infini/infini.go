// Package infini implements an InfiniFilter-style expandable filter
// (Dayan et al., §2.2 of the tutorial). The core idea: fingerprints have
// variable length. When the filter doubles, every fingerprint donates its
// lowest bit to address the larger table (so existing entries need no
// access to their original keys), while entries inserted after the
// expansion get full fresh fingerprints. The result is expansion to an
// effectively unbounded set size with a stable false-positive rate — the
// property experiment E3 contrasts against plain quotient-filter doubling
// (whose FPR doubles per expansion) and chained filters (whose query cost
// grows per link).
//
// Representation note (see DESIGN.md §3.4): the original packs
// variable-length fingerprints into quotient-filter slots with unary
// padding; here each bucket holds its entries as (fingerprint, length)
// pairs, and SizeBits accounts for the bits the paper's layout would use.
// Behaviour — FPR trajectory, expansion mechanics, deletes, void
// handling — is preserved.
package infini

import (
	"fmt"
	"math"

	"beyondbloom/internal/core"
	"beyondbloom/internal/hashutil"
)

// FreshBits is the fingerprint length assigned to newly inserted entries.
// An entry loses one bit per doubling and becomes "void" (matches every
// query in its bucket) after FreshBits expansions.
const FreshBits = 16

type entry struct {
	fp  uint32
	len uint8
}

// Filter is an expandable filter over uint64 keys.
type Filter struct {
	buckets [][]entry
	q       uint // log2 bucket count
	seed    uint64
	n       int
	exps    int
	maxLoad float64
	voids   int
}

const defaultSeed = 0x1F1F1F1F

// New returns a filter with 2^q initial buckets.
func New(q uint) (*Filter, error) {
	if q < 1 || q > 40 {
		return nil, fmt.Errorf("infini: q=%d outside [1, 40]", q)
	}
	return &Filter{
		buckets: make([][]entry, uint64(1)<<q),
		q:       q,
		seed:    defaultSeed,
		maxLoad: 0.9,
	}, nil
}

// FromSpec builds an empty filter from its construction parameters:
// Spec.Q is the initial log2 bucket count, Spec.Seed the hash seed
// (0 selects the default).
func FromSpec(s core.Spec) (*Filter, error) {
	if s.Type != core.TypeInfini {
		return nil, fmt.Errorf("infini: spec type %d is not TypeInfini", s.Type)
	}
	f, err := New(uint(s.Q))
	if err != nil {
		return nil, err
	}
	if s.Seed != 0 {
		f.seed = s.Seed
	}
	return f, nil
}

func (f *Filter) hash(key uint64) uint64 { return hashutil.MixSeed(key, f.seed) }

func (f *Filter) bucketOf(h uint64) uint64 { return h & hashutil.Mask(f.q) }

// freshFP extracts a FreshBits fingerprint adjacent to the current
// quotient bits, exactly as a newly inserted entry would store it.
func (f *Filter) freshFP(h uint64) uint32 {
	return uint32((h >> f.q) & hashutil.Mask(FreshBits))
}

// Insert adds key, doubling first if at the load threshold.
func (f *Filter) Insert(key uint64) error {
	if float64(f.n+1) > f.maxLoad*float64(len(f.buckets)) {
		f.expand()
	}
	h := f.hash(key)
	b := f.bucketOf(h)
	f.buckets[b] = append(f.buckets[b], entry{fp: f.freshFP(h), len: FreshBits})
	f.n++
	return nil
}

// Contains reports whether key may be present: an entry matches if its
// stored fingerprint equals the corresponding bits of the key's hash,
// compared at the entry's own length (void entries match everything).
func (f *Filter) Contains(key uint64) bool {
	h := f.hash(key)
	b := f.bucketOf(h)
	probe := (h >> f.q) & hashutil.Mask(FreshBits)
	for _, e := range f.buckets[b] {
		if uint64(e.fp) == probe&hashutil.Mask(uint(e.len)) {
			return true
		}
	}
	return false
}

// Delete removes one matching entry. Returns ErrNotFound if no entry
// matches.
func (f *Filter) Delete(key uint64) error {
	h := f.hash(key)
	b := f.bucketOf(h)
	probe := (h >> f.q) & hashutil.Mask(FreshBits)
	bucket := f.buckets[b]
	// Prefer deleting the longest (most specific) match so void or short
	// entries — which stand in for many keys — survive longest.
	best := -1
	for i, e := range bucket {
		if uint64(e.fp) == probe&hashutil.Mask(uint(e.len)) {
			if best < 0 || e.len > bucket[best].len {
				best = i
			}
		}
	}
	if best < 0 {
		return core.ErrNotFound
	}
	if bucket[best].len == 0 {
		f.voids--
	}
	f.buckets[b] = append(bucket[:best], bucket[best+1:]...)
	f.n--
	return nil
}

// expand doubles the bucket array. Each entry moves to the child bucket
// selected by its lowest fingerprint bit and gets one bit shorter. Void
// entries (length already 0) have no bit to donate: they are duplicated
// into both children, preserving no-false-negative semantics for the
// unbounded-universe case, as in InfiniFilter's void handling.
func (f *Filter) expand() {
	old := f.buckets
	f.q++
	f.buckets = make([][]entry, uint64(1)<<f.q)
	topBit := uint64(1) << (f.q - 1)
	f.n = 0
	f.voids = 0
	for b, bucket := range old {
		for _, e := range bucket {
			if e.len == 0 {
				f.buckets[uint64(b)] = append(f.buckets[uint64(b)], e)
				f.buckets[uint64(b)|topBit] = append(f.buckets[uint64(b)|topBit], e)
				f.n += 2
				f.voids += 2
				continue
			}
			child := uint64(b)
			if e.fp&1 == 1 {
				child |= topBit
			}
			ne := entry{fp: e.fp >> 1, len: e.len - 1}
			if ne.len == 0 {
				f.voids++
			}
			f.buckets[child] = append(f.buckets[child], ne)
			f.n++
		}
	}
	f.exps++
}

// ContainsBatch probes every key, writing Contains(keys[i]) into
// out[i] (see core.BatchFilter): one pure pass hashes the chunk and
// resolves buckets, a second stages the bucket slices so their header
// loads overlap, then the entry scans run. It allocates nothing.
func (f *Filter) ContainsBatch(keys []uint64, out []bool) {
	_ = out[:len(keys)]
	var probes [core.BatchChunk]uint64
	var bks [core.BatchChunk][]entry
	fpMask := hashutil.Mask(FreshBits)
	for base := 0; base < len(keys); base += core.BatchChunk {
		chunk := keys[base:]
		if len(chunk) > core.BatchChunk {
			chunk = chunk[:core.BatchChunk]
		}
		co := out[base : base+len(chunk)]
		for i, k := range chunk {
			h := f.hash(k)
			probes[i] = (h >> f.q) & fpMask
			bks[i] = f.buckets[f.bucketOf(h)]
		}
		for i := range chunk {
			hit := false
			for _, e := range bks[i] {
				if uint64(e.fp) == probes[i]&hashutil.Mask(uint(e.len)) {
					hit = true
					break
				}
			}
			co[i] = hit
		}
	}
}

// Expansions returns the number of doublings so far.
func (f *Filter) Expansions() int { return f.exps }

// FPRBudget returns the filter's nominal false-positive rate at the
// configured load: maxLoad·2^(-FreshBits) — the rate fresh entries
// provide. Unlike taffy, InfiniFilter's realized FPR drifts upward
// linearly with each doubling as fingerprints shorten (the trajectory
// experiments E3 and E23 measure); the budget is the floor, not a bound
// held across unbounded growth.
func (f *Filter) FPRBudget() float64 {
	return f.maxLoad * math.Pow(2, -FreshBits)
}

// Voids returns the number of void (zero-length) entries.
func (f *Filter) Voids() int { return f.voids }

// Len returns the number of stored entries.
func (f *Filter) Len() int { return f.n }

// LoadFactor returns entries / buckets.
func (f *Filter) LoadFactor() float64 { return float64(f.n) / float64(len(f.buckets)) }

// SizeBits reports the space the paper's packed layout would use: each
// entry costs its fingerprint length plus ~3 metadata bits plus ~2 bits
// of unary length padding, over 2^q slots.
func (f *Filter) SizeBits() int {
	bits := 0
	for _, bucket := range f.buckets {
		for _, e := range bucket {
			bits += int(e.len) + 5
		}
	}
	// Unoccupied slots still cost their metadata in the packed layout.
	bits += (len(f.buckets) - f.n) * 5
	return bits
}

var (
	_ core.DeletableFilter = (*Filter)(nil)
	_ core.GrowableFilter  = (*Filter)(nil)
	_ core.BatchFilter     = (*Filter)(nil)
)
