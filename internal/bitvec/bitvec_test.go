package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorSetClear(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if v.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Bit(i), want)
		}
	}
	v.Clear(0)
	if v.Bit(0) {
		t.Fatal("Clear(0) failed")
	}
	v.SetTo(1, true)
	if !v.Bit(1) {
		t.Fatal("SetTo(1,true) failed")
	}
}

func TestVectorAppend(t *testing.T) {
	var v Vector
	pattern := []bool{true, false, true, true, false, false, true}
	for i := 0; i < 500; i++ {
		v.Append(pattern[i%len(pattern)])
	}
	if v.Len() != 500 {
		t.Fatalf("Len = %d, want 500", v.Len())
	}
	for i := 0; i < 500; i++ {
		if v.Bit(i) != pattern[i%len(pattern)] {
			t.Fatalf("bit %d wrong after Append", i)
		}
	}
}

func TestRankSelectAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 1000, 4096} {
		v := New(n)
		ones := []int{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
				ones = append(ones, i)
			}
		}
		rs := NewRankSelect(v)
		if rs.Ones() != len(ones) {
			t.Fatalf("n=%d: Ones=%d want %d", n, rs.Ones(), len(ones))
		}
		// Rank at every position, vs running count.
		cnt := 0
		for i := 0; i <= n; i++ {
			if rs.Rank1(i) != cnt {
				t.Fatalf("n=%d: Rank1(%d)=%d want %d", n, i, rs.Rank1(i), cnt)
			}
			if rs.Rank0(i) != i-cnt {
				t.Fatalf("n=%d: Rank0(%d) wrong", n, i)
			}
			if i < n && v.Bit(i) {
				cnt++
			}
		}
		// Select of every one.
		for k, pos := range ones {
			if got := rs.Select1(k); got != pos {
				t.Fatalf("n=%d: Select1(%d)=%d want %d", n, k, got, pos)
			}
		}
		// Select0 of every zero.
		zi := 0
		for i := 0; i < n; i++ {
			if !v.Bit(i) {
				if got := rs.Select0(zi); got != i {
					t.Fatalf("n=%d: Select0(%d)=%d want %d", n, zi, got, i)
				}
				zi++
			}
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	v := New(10)
	v.Set(3)
	rs := NewRankSelect(v)
	defer func() {
		if recover() == nil {
			t.Fatal("Select1 out of range should panic")
		}
	}()
	rs.Select1(1)
}

func TestRankSelectInverse(t *testing.T) {
	// Property: Rank1(Select1(k)) == k and Bit(Select1(k)) == true.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(2000)
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				v.Set(i)
			}
		}
		rs := NewRankSelect(v)
		for k := 0; k < rs.Ones(); k += 7 {
			p := rs.Select1(k)
			if !v.Bit(p) || rs.Rank1(p) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPackedRoundTrip(t *testing.T) {
	for _, w := range []uint{1, 3, 7, 8, 9, 13, 16, 21, 32, 33, 48, 63, 64} {
		n := 300
		p := NewPacked(n, w)
		rng := rand.New(rand.NewSource(int64(w)))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & maskW(w)
			p.Set(i, vals[i])
		}
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("w=%d: Get(%d)=%#x want %#x", w, i, got, want)
			}
		}
		// Overwrite in reverse order; neighbours must be untouched.
		for i := n - 1; i >= 0; i-- {
			vals[i] = rng.Uint64() & maskW(w)
			p.Set(i, vals[i])
		}
		for i, want := range vals {
			if got := p.Get(i); got != want {
				t.Fatalf("w=%d after overwrite: Get(%d)=%#x want %#x", w, i, got, want)
			}
		}
	}
}

func TestPackedTruncates(t *testing.T) {
	p := NewPacked(4, 4)
	p.Set(2, 0x123)
	if got := p.Get(2); got != 0x3 {
		t.Fatalf("expected truncation to 4 bits, got %#x", got)
	}
	if p.Get(1) != 0 || p.Get(3) != 0 {
		t.Fatal("neighbours disturbed")
	}
}

func TestPackedInvalidWidth(t *testing.T) {
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPacked width %d should panic", w)
				}
			}()
			NewPacked(1, w)
		}()
	}
}

func BenchmarkRank1(b *testing.B) {
	v := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < v.Len(); i += 2 {
		if rng.Intn(2) == 0 {
			v.Set(i)
		}
	}
	rs := NewRankSelect(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Rank1(int(uint(i*2654435761) % uint(v.Len())))
	}
}

func BenchmarkSelect1(b *testing.B) {
	v := New(1 << 20)
	for i := 0; i < v.Len(); i += 3 {
		v.Set(i)
	}
	rs := NewRankSelect(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Select1(int(uint(i*2654435761) % uint(rs.Ones())))
	}
}

func BenchmarkPackedGet(b *testing.B) {
	p := NewPacked(1<<20, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(int(uint(i*2654435761) % uint(p.Len())))
	}
}
