package bitvec

import (
	"io"

	"beyondbloom/internal/codec"
)

// WriteTo serializes the vector as one codec frame (bit count followed
// by the length-prefixed backing words). It implements io.WriterTo.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	e.U64(uint64(v.n))
	e.U64s(v.words)
	return codec.WriteFrame(w, codec.KindVector, e.Bytes())
}

// ReadFrom replaces the vector's contents with a frame written by
// WriteTo, validating the checksum and the bit-count/word-count
// consistency. It implements io.ReaderFrom; on error the receiver is
// left unchanged.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, codec.KindVector)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	n := d.U64()
	words := d.U64s()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if n > uint64(len(words))*64 || (n+63)/64 != uint64(len(words)) {
		return 0, d.Corruptf("bitvec: %d bits disagrees with %d words", n, len(words))
	}
	v.words = words
	v.n = int(n)
	return int64(codec.HeaderSize + len(payload)), nil
}

// WriteTo serializes the packed array as one codec frame (element
// count, element width, then the payload words — the Window64 padding
// word is not stored). It implements io.WriterTo.
func (p *Packed) WriteTo(w io.Writer) (int64, error) {
	var e codec.Enc
	e.U64(uint64(p.n))
	e.U8(uint8(p.w))
	e.U64s(p.words[:p.payloadWords])
	return codec.WriteFrame(w, codec.KindPacked, e.Bytes())
}

// ReadFrom replaces the packed array's contents with a frame written by
// WriteTo, validating width and geometry; the Window64 padding word is
// reallocated zero. It implements io.ReaderFrom; on error the receiver
// is left unchanged.
func (p *Packed) ReadFrom(r io.Reader) (int64, error) {
	payload, err := codec.ReadFrame(r, codec.KindPacked)
	if err != nil {
		return 0, err
	}
	d := codec.NewDec(payload)
	n := d.U64()
	w := uint(d.U8())
	words := d.U64s()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	if w == 0 || w > 64 {
		return 0, d.Corruptf("bitvec: packed element width %d out of range", w)
	}
	// n*w must not overflow and must match the stored word count.
	if n > uint64(codec.MaxPayload)*8/uint64(w) {
		return 0, d.Corruptf("bitvec: packed element count %d too large", n)
	}
	if (n*uint64(w)+63)/64 != uint64(len(words)) {
		return 0, d.Corruptf("bitvec: %d %d-bit elements disagrees with %d words", n, w, len(words))
	}
	p.words = append(words, 0) // restore the Window64 padding word
	p.n = int(n)
	p.w = w
	p.payloadWords = len(words)
	return int64(codec.HeaderSize + len(payload)), nil
}
