// Package bitvec provides the packed bit-level containers used throughout
// the library: a growable bit vector, a rank/select index over it, and a
// packed array of fixed-width integers. These are the physical storage for
// the quotient filter's slots, the succinct trie in SuRF, Elias–Fano
// sequences, and the sparse arrays in SNARF.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-capacity bit vector. The zero value is an empty
// vector; use New to allocate capacity up front.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a Vector with n bits, all zero.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Bit reports whether bit i is set.
func (v *Vector) Bit(i int) bool {
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) { v.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) { v.words[i>>6] &^= 1 << (uint(i) & 63) }

// SetTo sets bit i to b.
func (v *Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Append adds a bit at the end, growing the vector.
func (v *Vector) Append(b bool) {
	if v.n>>6 >= len(v.words) {
		v.words = append(v.words, 0)
	}
	if b {
		v.words[v.n>>6] |= 1 << (uint(v.n) & 63)
	}
	v.n++
}

// OnesCount returns the total number of set bits.
func (v *Vector) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SizeBits returns the memory footprint of the payload in bits.
func (v *Vector) SizeBits() int { return len(v.words) * 64 }

// Words exposes the backing 64-bit words as a read-only view for
// batched probing: bit i lives at Words()[i>>6] bit (i&63). Callers
// must not mutate the returned slice; it aliases the vector's storage
// and stays valid until the next Append.
func (v *Vector) Words() []uint64 { return v.words }

// word returns the i-th 64-bit word (for the rank index).
func (v *Vector) word(i int) uint64 { return v.words[i] }

// RankSelect is an immutable rank/select index over a Vector snapshot.
// Rank1 is O(1) via per-word cumulative counts sampled every superblock;
// Select1 is O(log n) by binary search on the rank samples.
//
// The index must be rebuilt (NewRankSelect) after the vector is mutated.
type RankSelect struct {
	v *Vector
	// cum[i] = number of ones in words [0, i). One entry per word keeps
	// the implementation simple; the space cost (64 bits per 64 bits) is
	// acceptable for the structure sizes in this library and is excluded
	// from "succinct space" accounting where relevant callers track their
	// own budgets.
	cum []uint32
	// total number of ones.
	ones int
}

// NewRankSelect builds a rank/select index over v. The caller must not
// mutate v afterwards.
func NewRankSelect(v *Vector) *RankSelect {
	rs := &RankSelect{v: v, cum: make([]uint32, len(v.words)+1)}
	c := uint32(0)
	for i, w := range v.words {
		rs.cum[i] = c
		c += uint32(bits.OnesCount64(w))
	}
	rs.cum[len(v.words)] = c
	rs.ones = int(c)
	return rs
}

// Ones returns the total number of set bits.
func (rs *RankSelect) Ones() int { return rs.ones }

// Rank1 returns the number of set bits in positions [0, i). i may equal
// Len(), giving the total count.
func (rs *RankSelect) Rank1(i int) int {
	w := i >> 6
	r := int(rs.cum[w])
	if rem := uint(i) & 63; rem != 0 {
		r += bits.OnesCount64(rs.v.words[w] & ((1 << rem) - 1))
	}
	return r
}

// Rank0 returns the number of zero bits in positions [0, i).
func (rs *RankSelect) Rank0(i int) int { return i - rs.Rank1(i) }

// Select1 returns the position of the (k+1)-th set bit (k is 0-based).
// It panics if k >= Ones().
func (rs *RankSelect) Select1(k int) int {
	if k < 0 || k >= rs.ones {
		panic(fmt.Sprintf("bitvec: Select1(%d) out of range (ones=%d)", k, rs.ones))
	}
	// Binary search for the word containing the target bit.
	lo, hi := 0, len(rs.v.words)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(rs.cum[mid]) <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	w := rs.v.words[lo]
	rem := k - int(rs.cum[lo])
	return lo<<6 + selectInWord(w, rem)
}

// Select0 returns the position of the (k+1)-th zero bit (k is 0-based).
func (rs *RankSelect) Select0(k int) int {
	zeros := rs.v.n - rs.ones
	if k < 0 || k >= zeros {
		panic(fmt.Sprintf("bitvec: Select0(%d) out of range (zeros=%d)", k, zeros))
	}
	lo, hi := 0, len(rs.v.words)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid<<6-int(rs.cum[mid]) <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	w := ^rs.v.words[lo]
	rem := k - (lo<<6 - int(rs.cum[lo]))
	return lo<<6 + selectInWord(w, rem)
}

// selectInWord returns the position (0-63) of the (r+1)-th set bit in w.
func selectInWord(w uint64, r int) int {
	for i := 0; i < r; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// SizeBits returns the footprint of the index itself (not the vector).
func (rs *RankSelect) SizeBits() int { return len(rs.cum) * 32 }

// Packed is an array of n fixed-width (w-bit) unsigned integers stored
// contiguously in 64-bit words. It is the backing store for remainders in
// the quotient filter, fingerprints in table filters, and Elias–Fano low
// bits.
type Packed struct {
	words        []uint64
	n            int
	w            uint // bits per element, 0 < w <= 64
	payloadWords int  // words holding elements; words has one extra pad
}

// NewPacked returns a Packed array of n elements, each w bits, all zero.
// One padding word is allocated past the payload so Window64 can always
// read two adjacent words without a bounds branch; SizeBits still
// reports only the payload.
func NewPacked(n int, w uint) *Packed {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("bitvec: invalid element width %d", w))
	}
	totalBits := n * int(w)
	payload := (totalBits + 63) / 64
	return &Packed{words: make([]uint64, payload+1), n: n, w: w, payloadWords: payload}
}

// Window64 returns 64 bits of the array starting at element i's first
// bit: element i sits in the low w bits, element i+1 in the next w, and
// so on as far as 64 bits reach. It reads exactly two adjacent words
// with no data-dependent branch, which makes it the building block for
// batched probes that must not stall the pipeline (a cuckoo bucket of
// 4 fingerprints ≤ 16 bits wide is one Window64 call).
func (p *Packed) Window64(i int) uint64 {
	bitPos := uint64(i) * uint64(p.w)
	word := bitPos >> 6
	off := bitPos & 63
	// Go defines x<<64 as 0, so off == 0 contributes nothing from the
	// neighbour word and the blend needs no branch.
	return p.words[word]>>off | p.words[word+1]<<(64-off)
}

// RawWords exposes the backing words (payload plus the one pad word) as
// a read-only view for batched probing: batch kernels hoist the slice
// out of their pure load loops so each window read is two indexed loads
// with no pointer chase through the Packed header. Element i's window
// starts at bit i*Width(): word i*Width()>>6, offset i*Width()&63, and
// the pad word guarantees word+1 is always in range for payload
// windows. Callers must not mutate the returned slice.
func (p *Packed) RawWords() []uint64 { return p.words }

// Len returns the number of elements.
func (p *Packed) Len() int { return p.n }

// Width returns the element width in bits.
func (p *Packed) Width() uint { return p.w }

// Get returns element i.
func (p *Packed) Get(i int) uint64 {
	bitPos := uint64(i) * uint64(p.w)
	word := bitPos >> 6
	off := bitPos & 63
	mask := maskW(p.w)
	v := p.words[word] >> off
	if off+uint64(p.w) > 64 {
		v |= p.words[word+1] << (64 - off)
	}
	return v & mask
}

// Set stores x (truncated to w bits) at element i.
func (p *Packed) Set(i int, x uint64) {
	bitPos := uint64(i) * uint64(p.w)
	word := bitPos >> 6
	off := bitPos & 63
	mask := maskW(p.w)
	x &= mask
	p.words[word] = p.words[word]&^(mask<<off) | x<<off
	if off+uint64(p.w) > 64 {
		rem := 64 - off
		p.words[word+1] = p.words[word+1]&^(mask>>rem) | x>>rem
	}
}

// SizeBits returns the payload footprint in bits (excluding the
// Window64 padding word).
func (p *Packed) SizeBits() int { return p.payloadWords * 64 }

func maskW(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}
