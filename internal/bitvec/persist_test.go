package bitvec

import (
	"bytes"
	"errors"
	"testing"

	"beyondbloom/internal/codec"
)

func TestVectorRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		v := New(n)
		for i := 0; i < n; i += 3 {
			v.Set(i)
		}
		var buf bytes.Buffer
		wn, err := v.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if wn != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d, wrote %d", wn, buf.Len())
		}
		var got Vector
		rn, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if rn != wn {
			t.Fatalf("ReadFrom consumed %d, want %d", rn, wn)
		}
		if got.Len() != n {
			t.Fatalf("Len = %d, want %d", got.Len(), n)
		}
		for i := 0; i < n; i++ {
			if got.Bit(i) != v.Bit(i) {
				t.Fatalf("n=%d bit %d differs", n, i)
			}
		}
		// Bit-identical re-encoding.
		var buf2 bytes.Buffer
		got.WriteTo(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("n=%d re-encoding differs", n)
		}
	}
}

func TestVectorReadFromRejectsCorruption(t *testing.T) {
	v := New(100)
	v.Set(5)
	var buf bytes.Buffer
	v.WriteTo(&buf)
	good := buf.Bytes()
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x10
		var got Vector
		if _, err := got.ReadFrom(bytes.NewReader(bad)); !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v", i, err)
		}
	}
}

func TestPackedPersistRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n int
		w uint
	}{{0, 7}, {1, 1}, {10, 13}, {100, 64}, {257, 5}} {
		p := NewPacked(tc.n, tc.w)
		for i := 0; i < tc.n; i++ {
			p.Set(i, uint64(i)*0x9E3779B97F4A7C15)
		}
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		var got Packed
		if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if got.Len() != tc.n || got.Width() != tc.w {
			t.Fatalf("geometry %d×%d, want %d×%d", got.Len(), got.Width(), tc.n, tc.w)
		}
		for i := 0; i < tc.n; i++ {
			if got.Get(i) != p.Get(i) {
				t.Fatalf("n=%d w=%d element %d differs", tc.n, tc.w, i)
			}
		}
		// Window64 still works (padding word restored).
		if tc.n > 0 {
			_ = got.Window64(tc.n - 1)
		}
		var buf2 bytes.Buffer
		got.WriteTo(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("n=%d w=%d re-encoding differs", tc.n, tc.w)
		}
	}
}

func TestPackedReadFromRejectsBadWidth(t *testing.T) {
	var e codec.Enc
	e.U64(4)
	e.U8(0) // invalid width
	e.U64s([]uint64{0})
	var buf bytes.Buffer
	codec.WriteFrame(&buf, codec.KindPacked, e.Bytes())
	var got Packed
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("width 0: err = %v", err)
	}
}
